package codecdb

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestWaveMatchesSerial: a wave of mixed terminals returns exactly what
// the solo query API returns for each member.
func TestWaveMatchesSerial(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 6000)

	qs := []WaveQuery{
		{Terminal: TerminalCount},
		{Pred: ColEq("status", "ERROR"), Terminal: TerminalCount},
		{Pred: Col("level", Ge, 3), Terminal: TerminalRowIDs},
		{Pred: ColEq("status", "RETRY"), Terminal: TerminalSum, Col: "latency"},
		{Pred: Col("level", Lt, 4), Terminal: TerminalGroupCount, Col: "status"},
	}
	res, err := tbl.Wave(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("member %d: %v", i, r.Err)
		}
	}

	if n, _ := tbl.All().Count(); res[0].Count != n {
		t.Fatalf("count = %d, want %d", res[0].Count, n)
	}
	if n, _ := tbl.Where("status", Eq, "ERROR").Count(); res[1].Count != n {
		t.Fatalf("ERROR count = %d, want %d", res[1].Count, n)
	}
	ids, _ := tbl.Where("level", Ge, 3).RowIDs()
	if !reflect.DeepEqual(res[2].RowIDs, ids) {
		t.Fatal("rowids differ from solo query")
	}
	sum, _ := tbl.Where("status", Eq, "RETRY").SumFloat("latency")
	if res[3].Sum != sum {
		t.Fatalf("sum = %v, want %v", res[3].Sum, sum)
	}
	groups, _ := tbl.Where("level", Lt, 4).GroupCount("status")
	if !reflect.DeepEqual(res[4].Groups, groups) {
		t.Fatalf("groups = %v, want %v", res[4].Groups, groups)
	}
}

// TestWaveMemberErrorIsolated: a bad member fails alone.
func TestWaveMemberErrorIsolated(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 2000)
	res, err := tbl.Wave(context.Background(), []WaveQuery{
		{Pred: ColEq("nope", "x"), Terminal: TerminalCount},
		{Terminal: TerminalCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Fatal("bad predicate did not error")
	}
	if res[1].Err != nil || res[1].Count != 2000 {
		t.Fatalf("healthy member: %+v", res[1])
	}
}

// TestSumFloatTypeChecked: summing a non-float column is a clear typed
// error everywhere it can be asked — the solo query, a wave member, and
// ColumnType itself — never a page-level decode failure or garbage from
// reinterpreting int/string pages as float bits.
func TestSumFloatTypeChecked(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 1000)

	if typ, ok := tbl.ColumnType("latency"); !ok || typ != "FLOAT64" {
		t.Fatalf("ColumnType(latency) = %q,%v", typ, ok)
	}
	if typ, ok := tbl.ColumnType("level"); !ok || typ != "INT64" {
		t.Fatalf("ColumnType(level) = %q,%v", typ, ok)
	}
	if typ, ok := tbl.ColumnType("status"); !ok || typ != "STRING" {
		t.Fatalf("ColumnType(status) = %q,%v", typ, ok)
	}
	if _, ok := tbl.ColumnType("nope"); ok {
		t.Fatal("ColumnType(nope) reported ok")
	}

	for _, col := range []string{"level", "status"} {
		if _, err := tbl.All().SumFloat(col); err == nil {
			t.Fatalf("SumFloat(%q) did not error", col)
		}
		res, err := tbl.Wave(context.Background(), []WaveQuery{
			{Terminal: TerminalSum, Col: col},
			{Terminal: TerminalCount},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Err == nil {
			t.Fatalf("wave sum over %q did not error", col)
		}
		if res[1].Err != nil || res[1].Count != 1000 {
			t.Fatalf("healthy member alongside bad sum: %+v", res[1])
		}
	}
}

// TestWaveOnIngestTable: the sequential-fallback arm answers correctly.
func TestWaveOnIngestTable(t *testing.T) {
	db := openTestDB(t)
	tbl, err := db.CreateIngestTable("logs", []Field{
		{Name: "level", Type: Int64Field},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tbl.Append(int64(i % 5)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tbl.Wave(context.Background(), []WaveQuery{
		{Pred: Col("level", Ge, 3), Terminal: TerminalCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Count != 40 {
		t.Fatalf("ingest wave: %+v", res[0])
	}
}

// TestEpochAdvancesOnIngest: appends and flushes move the epoch; static
// tables report a stable one.
func TestEpochAdvancesOnIngest(t *testing.T) {
	db := openTestDB(t)
	static := loadEvents(t, db, 500)
	if static.Epoch() != static.Epoch() {
		t.Fatal("static epoch unstable")
	}
	tbl, err := db.CreateIngestTable("el", []Field{{Name: "v", Type: Int64Field}})
	if err != nil {
		t.Fatal(err)
	}
	e0 := tbl.Epoch()
	if err := tbl.Append(int64(1)); err != nil {
		t.Fatal(err)
	}
	e1 := tbl.Epoch()
	if e1 <= e0 {
		t.Fatalf("epoch did not advance on append: %d -> %d", e0, e1)
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if tbl.Epoch() <= e1 {
		t.Fatalf("epoch did not advance on flush: %d -> %d", e1, tbl.Epoch())
	}
}

// TestWithExecDeadline: an already-expired ExecOptions deadline stops the
// terminal with DeadlineExceeded.
func TestWithExecDeadline(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 2000)
	q := tbl.All().WithExec(ExecOptions{Deadline: time.Now().Add(-time.Second)})
	if _, err := q.Count(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// A generous deadline changes nothing.
	q = tbl.All().WithExec(ExecOptions{Deadline: time.Now().Add(time.Minute)})
	if n, err := q.Count(); err != nil || n != 2000 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

// TestWithExecEngineAndWorkers: engine choice and worker caps agree with
// defaults result-for-result.
func TestWithExecEngineAndWorkers(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 3000)
	base := tbl.Where("status", Eq, "ERROR").And("level", Ge, 2)
	want, err := base.Count()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []ExecOptions{
		{Engine: EnginePipeline},
		{Engine: EngineLegacy},
		{DisablePrefetch: true},
		{MaxWorkers: 1},
		{MaxWorkers: 2, DisablePrefetch: true},
	} {
		n, err := base.WithExec(o).Count()
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if n != want {
			t.Fatalf("%+v: count %d, want %d", o, n, want)
		}
	}
}

// TestPageCacheOption: with PageCacheBytes set, a repeat query does no
// page reads or decompression; epoch-tagged stats surface hits.
func TestPageCacheOption(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{PageCacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := loadEvents(t, db, 4000)
	if _, err := tbl.Where("status", Eq, "ERROR").Count(); err != nil {
		t.Fatal(err)
	}
	st1 := tbl.IOStats()
	if _, err := tbl.Where("status", Eq, "ERROR").Count(); err != nil {
		t.Fatal(err)
	}
	st2 := tbl.IOStats()
	if st2.PagesRead != st1.PagesRead || st2.BytesDecompressed != st1.BytesDecompressed {
		t.Fatalf("warm query did IO: %+v -> %+v", st1, st2)
	}
	if st2.PageCacheHits == st1.PageCacheHits {
		t.Fatal("warm query recorded no cache hits")
	}
	if db.PageCacheStats().Hits == 0 {
		t.Fatal("cache stats empty")
	}
}
