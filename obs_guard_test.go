package codecdb

// Guards for the observability layer's "unmeasurable when off" promise:
// the instrumented ApplyFilter entry point must add zero allocations over
// the raw ApplyCtx call when no span is in the context, and the traced
// benchmarks in obs_bench_test.go track the wall-time cost of both modes.

import (
	"context"
	"path/filepath"
	"testing"

	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

// guardTable writes a small Q6-shaped dict table for the alloc guard.
func guardTable(t *testing.T, n int) *colstore.Reader {
	t.Helper()
	dates := make([]int64, n)
	for i := range dates {
		dates[i] = int64(i * 2000 / n)
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "shipdate", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
	}}
	path := filepath.Join(t.TempDir(), "guard.cdb")
	if err := colstore.WriteFile(path, schema, []colstore.ColumnData{{Ints: dates}},
		colstore.Options{RowGroupRows: 16384, PageRows: 4096}); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestApplyFilterNoTracerAddsZeroAllocs asserts the pooled DictFilter
// scan pays nothing for the instrumentation when no tracer is attached:
// routing through ops.ApplyFilter (the instrumented seam) must allocate
// exactly as much as calling the filter's ApplyCtx directly. Pool size 1
// keeps goroutine scheduling deterministic.
func TestApplyFilterNoTracerAddsZeroAllocs(t *testing.T) {
	const n = 1 << 16
	r := guardTable(t, n)
	pool := exec.NewPool(1)
	f := &ops.DictFilter{Col: "shipdate", Op: sboost.OpLt, IntValue: 40}
	ctx := context.Background()

	// Warm lazily-initialised state (dictionary cache, arena pools).
	if _, err := ops.ApplyFilter(ctx, f, r, pool, nil); err != nil {
		t.Fatal(err)
	}

	direct := testing.AllocsPerRun(100, func() {
		if _, err := f.ApplyCtx(ctx, r, pool); err != nil {
			t.Fatal(err)
		}
	})
	wrapped := testing.AllocsPerRun(100, func() {
		if _, err := ops.ApplyFilter(ctx, f, r, pool, nil); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped > direct {
		t.Fatalf("ApplyFilter with no tracer allocates more than ApplyCtx: %.1f > %.1f allocs/op",
			wrapped, direct)
	}
}
