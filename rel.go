package codecdb

import (
	"fmt"
	"sort"
	"time"

	"codecdb/internal/colstore"
	"codecdb/internal/obs"
	"codecdb/internal/ops"
	"codecdb/internal/relq"
)

// This file is the public relational surface of the Query API: joins,
// multi-column group-by, and order-by/limit, compiled through the same
// relq builder the TPC-H and SSB suites use and executed as per-row-group
// stages on the morsel pipeline. Equi-joins between dictionary-encoded
// columns run on dictionary codes — the build side is translated into the
// probe side's key space once, and neither build nor probe ever decodes a
// string value.

// joinSpec records one declared join against a build-side query.
type joinSpec struct {
	kind     ops.RelJoinKind
	other    *Query
	leftCol  string
	rightCol string
}

// orderSpec is one output ordering key.
type orderSpec struct {
	col  string
	desc bool
}

// Join declares an inner equi-join with another single-table query on a
// column both tables share by name. The other query's predicates filter
// the build side; its table's columns become referencable in Rows,
// GroupBy, OrderBy, and AggRows. Joins on dictionary-encoded columns
// probe on dictionary keys and never decode the joined values.
func (q *Query) Join(other *Query, on string) *Query {
	return q.JoinOn(other, on, on)
}

// JoinOn is Join with differently named columns: leftCol on this query's
// table, rightCol on the other's.
func (q *Query) JoinOn(other *Query, leftCol, rightCol string) *Query {
	return q.addJoin(ops.RelInner, other, leftCol, rightCol)
}

// SemiJoin keeps rows whose leftCol value appears in the other query's
// rightCol (EXISTS). The other table's columns are not referencable.
func (q *Query) SemiJoin(other *Query, leftCol, rightCol string) *Query {
	return q.addJoin(ops.RelSemi, other, leftCol, rightCol)
}

// AntiJoin keeps rows whose leftCol value does not appear in the other
// query's rightCol (NOT EXISTS).
func (q *Query) AntiJoin(other *Query, leftCol, rightCol string) *Query {
	return q.addJoin(ops.RelAnti, other, leftCol, rightCol)
}

func (q *Query) addJoin(kind ops.RelJoinKind, other *Query, leftCol, rightCol string) *Query {
	cp := q.clone()
	if cp.err != nil {
		return cp
	}
	switch {
	case other == nil:
		cp.err = fmt.Errorf("codecdb: join with a nil query")
	case other.err != nil:
		cp.err = other.err
	case other.rel():
		cp.err = fmt.Errorf("codecdb: the build side of a join must be a single-table query")
	case other.t.inner.S != nil || q.t.inner.S != nil:
		cp.err = fmt.Errorf("codecdb: joins are not supported on ingest tables")
	default:
		if _, ok := q.t.ColumnType(leftCol); !ok {
			cp.err = fmt.Errorf("codecdb: join column %q not in table %s", leftCol, q.t.Name())
		} else if _, ok := other.t.ColumnType(rightCol); !ok {
			cp.err = fmt.Errorf("codecdb: join column %q not in table %s", rightCol, other.t.Name())
		}
	}
	if cp.err == nil {
		cp.joins = append(cp.joins, joinSpec{kind: kind, other: other, leftCol: leftCol, rightCol: rightCol})
	}
	return cp
}

// GroupBy sets the grouping keys for AggRows. Columns may live on this
// table or on an inner-joined table.
func (q *Query) GroupBy(cols ...string) *Query {
	cp := q.clone()
	cp.groupCols = append(cp.groupCols, cols...)
	return cp
}

// OrderBy appends an output ordering key (applies to Rows and AggRows).
func (q *Query) OrderBy(col string, desc bool) *Query {
	cp := q.clone()
	cp.orders = append(cp.orders, orderSpec{col: col, desc: desc})
	return cp
}

// Limit truncates the ordered output to k rows. On an ungrouped Rows
// query with an ORDER BY this engages the pipeline's top-K short-circuit:
// each worker keeps only a bounded candidate buffer instead of
// materializing the full sort input.
func (q *Query) Limit(k int) *Query {
	cp := q.clone()
	if k <= 0 {
		cp.err = fmt.Errorf("codecdb: Limit needs k > 0, got %d", k)
		return cp
	}
	cp.limitN = k
	return cp
}

// Rows holds a relational result: column names and one []any per row
// (int64, float64, or string values).
type Rows struct {
	Cols []string
	Data [][]any
}

// AggSpec names one aggregate for AggRows.
type AggSpec struct {
	kind ops.RelAggKind
	col  string
	name string
}

// CountAll counts rows per group (column name "count").
func CountAll() AggSpec { return AggSpec{kind: ops.RelAggCount, name: "count"} }

// Sum sums a column per group (int or float, named "sum_<col>").
func Sum(col string) AggSpec { return AggSpec{kind: ops.RelAggSumFloat, col: col, name: "sum_" + col} }

// Min keeps a column's minimum per group.
func Min(col string) AggSpec { return AggSpec{kind: ops.RelAggMinFloat, col: col, name: "min_" + col} }

// Max keeps a column's maximum per group.
func Max(col string) AggSpec { return AggSpec{kind: ops.RelAggMaxFloat, col: col, name: "max_" + col} }

// As renames the aggregate's output column.
func (a AggSpec) As(name string) AggSpec { a.name = name; return a }

// relCompiler resolves column references across the probe table and the
// joined build tables, materializes build sides, and assembles the relq
// query.
type relCompiler struct {
	q      *Query
	rq     *relq.Q
	stages []string            // stage name per join
	pay    []map[string]bool   // payload columns each join must carry
	decode map[string]string   // output name -> probe dict column to decode
}

// colRef resolves one column name to a relq input reference. Probe-table
// columns win; otherwise the first inner join whose build table has the
// column claims it (and learns it must carry it as payload).
func (c *relCompiler) colRef(col string) (string, error) {
	if typ, ok := c.q.t.ColumnType(col); ok {
		if typ == "STRING" {
			if _, cc, err := c.q.t.inner.R.Column(col); err == nil &&
				(cc.Encoding == Dictionary || cc.Encoding == DictRLE) {
				c.decode[col] = col
				return "#" + col, nil
			}
		}
		return col, nil
	}
	for i, j := range c.q.joins {
		if j.kind != ops.RelInner && j.kind != ops.RelLeft {
			continue
		}
		if _, ok := j.other.t.ColumnType(col); ok {
			c.pay[i][col] = true
			return c.stages[i] + "." + col, nil
		}
	}
	return "", fmt.Errorf("codecdb: column %q not found in %s or any joined table", col, c.q.t.Name())
}

// buildSide materializes one join's build table: the translated key
// vector plus any payload columns later references claimed. When bs is
// non-nil the other table's queries are traced as its children.
func (c *relCompiler) buildSide(i int, bs *obs.Span) ([]int64, *ops.Batch, string, error) {
	j := c.q.joins[i]
	r := c.q.t.inner.R
	_, lc, err := r.Column(j.leftCol)
	if err != nil {
		return nil, nil, "", err
	}
	other := j.other
	if bs != nil {
		other = other.WithContext(obs.ContextWithSpan(c.q.context(), bs))
	} else if c.q.ctx != nil {
		other = other.WithContext(c.q.ctx)
	}
	var keys []int64
	probeRef := j.leftCol
	dictLeft := lc.Encoding == Dictionary || lc.Encoding == DictRLE
	switch {
	case lc.Type == colstore.TypeString && dictLeft:
		vals, err := other.Strings(j.rightCol)
		if err != nil {
			return nil, nil, "", err
		}
		keys, err = relq.TranslateStr(r, j.leftCol, vals)
		if err != nil {
			return nil, nil, "", err
		}
		probeRef = "#" + j.leftCol
	case lc.Type == colstore.TypeString:
		return nil, nil, "", fmt.Errorf("codecdb: join on non-dictionary string column %q", j.leftCol)
	case dictLeft:
		vals, err := other.Ints(j.rightCol)
		if err != nil {
			return nil, nil, "", err
		}
		keys, err = relq.TranslateInt(r, j.leftCol, vals)
		if err != nil {
			return nil, nil, "", err
		}
		probeRef = "#" + j.leftCol
	default:
		keys, err = other.Ints(j.rightCol)
		if err != nil {
			return nil, nil, "", err
		}
	}
	var pay *ops.Batch
	if len(c.pay[i]) > 0 {
		pay = &ops.Batch{}
		cols := make([]string, 0, len(c.pay[i]))
		for col := range c.pay[i] {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			typ, _ := other.t.ColumnType(col)
			switch typ {
			case "INT64":
				vals, err := other.Ints(col)
				if err != nil {
					return nil, nil, "", err
				}
				pay.AddInts(col, vals)
			case "FLOAT64":
				vals, err := other.Floats(col)
				if err != nil {
					return nil, nil, "", err
				}
				pay.AddFloats(col, vals)
			default:
				vals, err := other.Strings(col)
				if err != nil {
					return nil, nil, "", err
				}
				pay.AddStrs(col, vals)
			}
		}
	}
	return keys, pay, probeRef, nil
}

// compile assembles the relq query: probe filters, then one stage per
// declared join with its build side materialized and key-translated.
func (q *Query) compileRel(refs []string) (*relCompiler, []string, error) {
	if q.err != nil {
		return nil, nil, q.err
	}
	if q.t.inner.S != nil {
		return nil, nil, fmt.Errorf("codecdb: relational queries are not supported on ingest tables")
	}
	c := &relCompiler{
		q:      q,
		stages: make([]string, len(q.joins)),
		pay:    make([]map[string]bool, len(q.joins)),
		decode: map[string]string{},
	}
	for i := range q.joins {
		c.stages[i] = fmt.Sprintf("j%d", i+1)
		c.pay[i] = map[string]bool{}
	}
	sp := obs.SpanFrom(q.context())
	probeR := q.t.inner.R
	var planBefore colstore.IOStats
	if sp != nil {
		planBefore = probeR.Stats()
	}
	// Resolve every referenced column first so each join knows which
	// payload columns to carry before its build side materializes.
	resolved := make([]string, len(refs))
	for i, col := range refs {
		ref, err := c.colRef(col)
		if err != nil {
			return nil, nil, err
		}
		resolved[i] = ref
	}
	rq := relq.Scan(q.t.inner.R, q.t.db.inner.DataPool())
	if len(q.conjuncts) > 0 {
		root, err := q.t.bindPred(AllOf(q.conjuncts...))
		if err != nil {
			return nil, nil, err
		}
		rq.WherePred(root)
	}
	if sp != nil {
		// Ref resolution and predicate binding can load dictionaries
		// (string Eq lookups, dict-code views); when they did, book that
		// IO on a Bind child so the span tree still sums to the tables'
		// IOStats deltas. Conjunct ordering books under the pipeline's
		// own Plan child.
		if d := ioStatsDelta(planBefore, probeR.Stats()); d != (obs.SpanIO{}) {
			ps := sp.StartChild("Bind")
			ps.AddIO(d)
			ps.End()
		}
	}
	for i := range q.joins {
		// The Build span wraps build-side preparation: the other table's
		// scan/gather nests under it, and its own IO books every page the
		// preparation touched on either reader — including the probe-side
		// dictionary pages the key translation loads — so the trace's
		// per-stage IO still sums exactly to the tables' IOStats deltas.
		var bs *obs.Span
		var probeBefore, otherBefore colstore.IOStats
		otherR := q.joins[i].other.t.inner.R
		if sp != nil {
			bs = sp.StartChild("Build[" + c.stages[i] + "]")
			probeBefore = probeR.Stats()
			otherBefore = otherR.Stats()
		}
		keys, pay, probeRef, err := c.buildSide(i, bs)
		if bs != nil {
			io := ioStatsDelta(probeBefore, probeR.Stats())
			if otherR != probeR {
				io = addIOStats(io, ioStatsDelta(otherBefore, otherR.Stats()))
			}
			bs.AddIO(io)
			bs.SetRows(int64(len(keys)), int64(len(keys)))
			if len(probeRef) > 0 && probeRef[0] == '#' {
				bs.AddDetail("build keys translated into %s's dictionary space", q.joins[i].leftCol)
			}
			bs.End()
		}
		if err != nil {
			return nil, nil, err
		}
		switch q.joins[i].kind {
		case ops.RelSemi:
			rq.Semi(c.stages[i], keys, probeRef)
		case ops.RelAnti:
			rq.Anti(c.stages[i], keys, probeRef)
		case ops.RelLeft:
			rq.LeftJoin(c.stages[i], keys, pay, probeRef)
		default:
			rq.Join(c.stages[i], keys, pay, probeRef)
		}
	}
	c.rq = rq
	return c, resolved, nil
}

// refName is the output column name a resolved ref produces.
func refName(ref string) string {
	if len(ref) > 0 && ref[0] == '#' {
		return ref[1:]
	}
	if dot := indexByte(ref, '.'); dot >= 0 {
		return ref[dot+1:]
	}
	return ref
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// relRecord wraps a relational terminal with the same metrics and flight
// recorder treatment scalar terminals get.
func (q *Query) relRecord(label string, fn func(*Query) (*ops.Batch, error)) (*ops.Batch, error) {
	ectx, cancel := q.execContext()
	defer cancel()
	if err := ectx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	rctx, fin := q.record(ectx, label)
	cq := q.clone()
	cq.ctx = rctx
	b, err := fn(cq)
	queriesTotal.Inc()
	queryLatency.Observe(time.Since(start).Seconds())
	var out int64
	if b != nil {
		out = int64(b.N)
	}
	fin(out, err)
	return b, err
}

// Rows executes the relational query and returns the named columns at the
// surviving rows, ordered by OrderBy (Limit engages the top-K path).
// Without joins or ordering it is a plain multi-column projection of the
// filtered table.
func (q *Query) Rows(cols ...string) (*Rows, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("codecdb: Rows needs at least one column")
	}
	if len(q.groupCols) > 0 {
		return nil, fmt.Errorf("codecdb: grouped queries return rows via AggRows")
	}
	b, err := q.relRecord("Rel[rows]", func(cq *Query) (*ops.Batch, error) {
		c, refs, err := cq.compileRel(cols)
		if err != nil {
			return nil, err
		}
		rq := c.rq.WithContext(cq.context())
		var by []relq.SortBy
		for _, o := range cq.orders {
			ref, err := c.colRef(o.col)
			if err != nil {
				return nil, err
			}
			found := false
			for _, have := range refs {
				if have == ref {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("codecdb: OrderBy column %q must be selected", o.col)
			}
			by = append(by, relq.SortBy{Ref: ref, Desc: o.desc})
		}
		var batch *ops.Batch
		switch {
		case cq.limitN > 0 && len(by) > 0:
			batch, err = rq.TopK(refs, cq.limitN, by...)
		case len(by) > 0:
			batch, err = rq.Sorted(refs, by...)
		default:
			batch, err = rq.Rows(refs...)
		}
		if err != nil {
			return nil, err
		}
		if cq.limitN > 0 && len(by) == 0 && batch.N > cq.limitN {
			truncateBatch(batch, cq.limitN)
		}
		for name, col := range c.decode {
			if batch.Col(name) >= 0 {
				if err := relq.DecodeBatchKeys(cq.t.inner.R, batch, name, col); err != nil {
					return nil, err
				}
			}
		}
		return batch, nil
	})
	if err != nil {
		return nil, err
	}
	return batchRows(b), nil
}

// AggRows executes the grouped relational query: one output row per
// distinct GroupBy key tuple, key columns then one column per aggregate,
// ordered by OrderBy (default: ascending by key tuple) and truncated by
// Limit.
func (q *Query) AggRows(aggs ...AggSpec) (*Rows, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("codecdb: AggRows needs at least one aggregate")
	}
	b, err := q.relRecord("Rel[group]", func(cq *Query) (*ops.Batch, error) {
		aggCols := make([]string, 0, len(aggs))
		for _, a := range aggs {
			if a.col != "" {
				aggCols = append(aggCols, a.col)
			}
		}
		c, refs, err := cq.compileRel(append(append([]string{}, cq.groupCols...), aggCols...))
		if err != nil {
			return nil, err
		}
		rq := c.rq.WithContext(cq.context())
		gkeys := make([]relq.GKey, len(cq.groupCols))
		for i, col := range cq.groupCols {
			gkeys[i] = relq.GKey{Name: col, Ref: refs[i]}
		}
		gaggs := make([]relq.GAgg, len(aggs))
		ai := len(cq.groupCols)
		for i, a := range aggs {
			ga := relq.GAgg{Name: a.name, Kind: a.kind}
			if a.col != "" {
				ref := refs[ai]
				ai++
				typ, _ := colTypeAnywhere(cq, a.col)
				if typ == "INT64" {
					switch a.kind {
					case ops.RelAggSumFloat:
						ga.Kind = ops.RelAggSumInt
					case ops.RelAggMinFloat:
						ga.Kind = ops.RelAggMinInt
					case ops.RelAggMaxFloat:
						ga.Kind = ops.RelAggMaxInt
					}
				}
				ga.Ref = ref
			}
			gaggs[i] = ga
		}
		batch, err := rq.GroupBy(gkeys, gaggs)
		if err != nil {
			return nil, err
		}
		for name, col := range c.decode {
			if batch.Col(name) >= 0 {
				if err := relq.DecodeBatchKeys(cq.t.inner.R, batch, name, col); err != nil {
					return nil, err
				}
			}
		}
		if len(cq.orders) > 0 {
			if err := sortBatchByNames(batch, cq.orders); err != nil {
				return nil, err
			}
		}
		if cq.limitN > 0 && batch.N > cq.limitN {
			truncateBatch(batch, cq.limitN)
		}
		return batch, nil
	})
	if err != nil {
		return nil, err
	}
	return batchRows(b), nil
}

// relCount counts rows surviving the relational stages.
func (q *Query) relCount() (int64, error) {
	if len(q.groupCols) > 0 || len(q.orders) > 0 || q.limitN > 0 {
		return 0, fmt.Errorf("codecdb: Count does not compose with GroupBy/OrderBy/Limit; use AggRows or Rows")
	}
	b, err := q.relRecord("Rel[count]", func(cq *Query) (*ops.Batch, error) {
		c, _, err := cq.compileRel(nil)
		if err != nil {
			return nil, err
		}
		n, err := c.rq.WithContext(cq.context()).Count()
		if err != nil {
			return nil, err
		}
		return (&ops.Batch{}).AddInts("count", []int64{n}), nil
	})
	if err != nil {
		return 0, err
	}
	return b.Ints[0][0], nil
}

// colTypeAnywhere resolves a column's type across the probe table and
// joined build tables.
func colTypeAnywhere(q *Query, col string) (string, bool) {
	if typ, ok := q.t.ColumnType(col); ok {
		return typ, true
	}
	for _, j := range q.joins {
		if typ, ok := j.other.t.ColumnType(col); ok {
			return typ, true
		}
	}
	return "", false
}

// sortBatchByNames stable-sorts a result batch by named output columns.
func sortBatchByNames(b *ops.Batch, orders []orderSpec) error {
	keys := make([]ops.RelSortKey, len(orders))
	for i, o := range orders {
		j := b.Col(o.col)
		if j < 0 {
			return fmt.Errorf("codecdb: OrderBy column %q is not in the output", o.col)
		}
		keys[i] = ops.RelSortKey{Input: j, Desc: o.desc}
	}
	ops.SortBatch(b, keys)
	return nil
}

func truncateBatch(b *ops.Batch, k int) {
	b.N = k
	for j := range b.Names {
		switch {
		case b.Ints[j] != nil:
			b.Ints[j] = b.Ints[j][:k]
		case b.Floats[j] != nil:
			b.Floats[j] = b.Floats[j][:k]
		default:
			b.Strs[j] = b.Strs[j][:k]
		}
	}
}

// ioStatsDelta converts a reader-stats delta to the span IO shape.
func ioStatsDelta(before, after colstore.IOStats) obs.SpanIO {
	return obs.SpanIO{
		PagesRead:         after.PagesRead - before.PagesRead,
		PagesPruned:       after.PagesPruned - before.PagesPruned,
		PagesSkipped:      after.PagesSkipped - before.PagesSkipped,
		BytesRead:         after.BytesRead - before.BytesRead,
		BytesDecompressed: after.BytesDecompressed - before.BytesDecompressed,
	}
}

func addIOStats(a, b obs.SpanIO) obs.SpanIO {
	return obs.SpanIO{
		PagesRead:         a.PagesRead + b.PagesRead,
		PagesPruned:       a.PagesPruned + b.PagesPruned,
		PagesSkipped:      a.PagesSkipped + b.PagesSkipped,
		BytesRead:         a.BytesRead + b.BytesRead,
		BytesDecompressed: a.BytesDecompressed + b.BytesDecompressed,
	}
}

// batchRows converts an internal batch to the public Rows shape.
func batchRows(b *ops.Batch) *Rows {
	out := &Rows{Cols: append([]string(nil), b.Names...), Data: make([][]any, b.N)}
	for i := 0; i < b.N; i++ {
		row := make([]any, len(b.Names))
		for j := range b.Names {
			switch {
			case b.Ints[j] != nil:
				row[j] = b.Ints[j][i]
			case b.Floats[j] != nil:
				row[j] = b.Floats[j][i]
			default:
				row[j] = string(b.Strs[j][i])
			}
		}
		out.Data[i] = row
	}
	return out
}
