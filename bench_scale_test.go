package codecdb

import (
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"codecdb/internal/colstore"
	"codecdb/internal/core"
	"codecdb/internal/vfs"
)

// peakRSSBytes reads the process high-water RSS (VmHWM) from the kernel.
// Returns 0 on platforms without /proc.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// resetPeakRSS asks the kernel to reset VmHWM to the current RSS, so a
// later peakRSSBytes reads the high-water mark of just the phase in
// between — the query phase, not the dataset-generation phase whose
// value arrays dwarf anything the scan touches. No-op without procfs.
func resetPeakRSS() {
	f, err := os.OpenFile("/proc/self/clear_refs", os.O_WRONLY, 0)
	if err != nil {
		return
	}
	defer f.Close()
	f.Write([]byte("5"))
}

// scaleTable loads a bench-scale dataset: sf copies of a 512Ki-row base
// unit (SF 10 ≈ 5.2M rows) with small pages so each row group spans many
// pages — the shape where read coalescing matters.
func scaleTable(b *testing.B, db *DB, sf int) *Table {
	b.Helper()
	n := sf << 19
	tag := make([][]byte, n)
	level := make([]int64, n)
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		level[i] = int64(i % 8)
		score[i] = float64(i%1000) / 10
		if i%97 == 0 {
			tag[i] = []byte("rare")
		} else {
			tag[i] = []byte("common")
		}
	}
	tbl, err := db.LoadTable(fmt.Sprintf("scale%d", sf), []Column{
		{Name: "tag", Strings: tag, ForceEncoding: Dictionary, Forced: true},
		{Name: "level", Ints: level, ForceEncoding: Dictionary, Forced: true},
		{Name: "score", Floats: score},
	}, LoadOptions{RowGroupRows: 16384, PageRows: 512})
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

// BenchmarkScaleScan sweeps dataset scale factors 1→10 and runs a
// full-table-scan terminal (SumFloat over every row) with the async
// page prefetcher on and off. Reported per variant:
//
//	ns/row          — scan cost normalized by dataset size
//	peakRSS-bytes   — query-phase high-water RSS (VmHWM, reset before
//	                  the timed loop): with prefetch on this must track
//	                  the bytes-in-flight budget, not the table size
//	maxInFlight-bytes — highest bytes-in-flight gauge reading sampled
//	                  during the run (0 with prefetch off)
//
// The table is built before timing; FreeOSMemory returns the generation
// arrays to the kernel so they do not pollute the query-phase RSS.
func BenchmarkScaleScan(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for _, sf := range []int{1, 2, 5, 10} {
		sf := sf
		b.Run(fmt.Sprintf("SF%d", sf), func(b *testing.B) {
			tbl := scaleTable(b, db, sf)
			rows := float64(tbl.NumRows())
			var wantSum float64
			if s, err := tbl.All().SumFloat("score"); err != nil {
				b.Fatal(err)
			} else {
				wantSum = s
			}
			for _, mode := range []struct {
				name string
				wrap func(*Query) *Query
			}{
				{"Prefetch", func(q *Query) *Query { return q }},
				{"NoPrefetch", func(q *Query) *Query { return q.withoutPrefetch() }},
			} {
				mode := mode
				b.Run(mode.name, func(b *testing.B) {
					debug.FreeOSMemory()
					resetPeakRSS()

					// Sample the bytes-in-flight gauge while the scan runs:
					// its maximum shows the prefetcher honouring its budget.
					var maxInFlight atomic.Int64
					stop := make(chan struct{})
					done := make(chan struct{})
					go func() {
						defer close(done)
						tick := time.NewTicker(200 * time.Microsecond)
						defer tick.Stop()
						for {
							select {
							case <-stop:
								return
							case <-tick.C:
								if v := colstore.GlobalStats().BytesInFlight; v > maxInFlight.Load() {
									maxInFlight.Store(v)
								}
							}
						}
					}()

					q := mode.wrap(tbl.All())
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						got, err := q.SumFloat("score")
						if err != nil {
							b.Fatal(err)
						}
						if got != wantSum {
							b.Fatalf("sum = %v, want %v", got, wantSum)
						}
					}
					b.StopTimer()
					close(stop)
					<-done

					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*rows), "ns/row")
					b.ReportMetric(float64(peakRSSBytes()), "peakRSS-bytes")
					b.ReportMetric(float64(maxInFlight.Load()), "maxInFlight-bytes")
				})
			}
		})
	}
}

// BenchmarkScaleScanColdIO is the beyond-RAM variant: the table is read
// through a vfs layer charging a fixed per-ReadAt latency, modelling a
// device where every read request costs a seek-scale constant (cold
// cache, network block storage) — the regime the warm-cache benchmark
// cannot reach because tmpfs reads are free. Here the two prefetch
// mechanisms both pay off directly: coalescing turns each row group's
// 32 page reads into one charged request, and the background walk
// overlaps those requests with decompression and scanning, so the
// full-scan terminal's wall clock drops toward max(I/O, compute)
// instead of their sum.
//
// The charge is 1ms per request — spinning-disk / cold-fabric seek
// scale, and coarse enough that time.Sleep delivers it faithfully
// (sub-100µs sleeps round up unpredictably under scheduler load,
// which would make the model's "fixed cost" a fiction).
func BenchmarkScaleScanColdIO(b *testing.B) {
	const latency = time.Millisecond
	ffs := vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Latency: latency})
	ffs.SetEnabled(true)
	inner, err := core.Open(b.TempDir(), core.Options{FS: ffs})
	if err != nil {
		b.Fatal(err)
	}
	db := &DB{inner: inner}
	b.Cleanup(func() { db.Close() })
	const sf = 2
	tbl := scaleTable(b, db, sf)
	rows := float64(tbl.NumRows())
	wantSum, err := tbl.All().SumFloat("score")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		wrap func(*Query) *Query
	}{
		{"Prefetch", func(q *Query) *Query { return q }},
		{"NoPrefetch", func(q *Query) *Query { return q.withoutPrefetch() }},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			q := mode.wrap(tbl.All())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := q.SumFloat("score")
				if err != nil {
					b.Fatal(err)
				}
				if got != wantSum {
					b.Fatalf("sum = %v, want %v", got, wantSum)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*rows), "ns/row")
		})
	}
}
