package codecdb

import (
	"strings"
	"testing"
)

// TestQueryBuilderCopyOnWrite is the regression test for the shared-slice
// builder bug: extending a query prefix twice must produce two independent
// queries, not have the second extension clobber the first.
func TestQueryBuilderCopyOnWrite(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 4000)

	base := tbl.Where("status", Eq, "ERROR")
	high := base.And("level", Ge, 4)
	low := base.And("level", Lt, 2)

	nHigh, err := high.Count()
	if err != nil {
		t.Fatal(err)
	}
	nLow, err := low.Count()
	if err != nil {
		t.Fatal(err)
	}
	nBase, err := base.Count()
	if err != nil {
		t.Fatal(err)
	}
	// status cycles OK,ERROR,RETRY,TIMEOUT and level cycles 0..4, so
	// ERROR rows have level ≡ (4k+1) mod 5: each level equally often.
	if nBase != 1000 {
		t.Fatalf("base count = %d, want 1000 (prefix was mutated by extension)", nBase)
	}
	if nHigh != 200 {
		t.Fatalf("high count = %d, want 200", nHigh)
	}
	if nLow != 400 {
		t.Fatalf("low count = %d, want 400 (second extension saw the first's conjunct)", nLow)
	}
}

// TestQueryErrSurfacesAtBuildTime checks malformed predicates are caught
// when the builder runs — against metadata only — and reported through
// both Err and any terminal.
func TestQueryErrSurfacesAtBuildTime(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 1000)

	cases := []struct {
		name string
		q    *Query
		want string
	}{
		{"missing column", tbl.Where("nope", Eq, 1), "nope"},
		{"type mismatch int on string", tbl.Where("status", Eq, 7), "integer predicate"},
		{"type mismatch string on int", tbl.Where("level", Eq, "three"), "string predicate"},
		{"float on int column", tbl.Where("level", Eq, 1.5), "float predicate"},
		{"IN on non-dict column", tbl.All().AndIn("ts", 1, 2), "dictionary-encoded"},
		{"IN cross-typed values", tbl.All().AndIn("status", "OK", 3), "integer IN values for string column"},
		{"IN unsupported value type", tbl.All().AndIn("status", 1.5), "unsupported IN value"},
		{"LIKE on int column", tbl.All().AndLike("level", func([]byte) bool { return true }), "string column"},
		{"LIKE nil match", tbl.All().AndLike("status", nil), "non-nil match"},
		{"two-column without shared dict", tbl.All().AndColumns("status", Eq, "level"), "share a dictionary"},
		{"Not of composite", tbl.Query(Not(AllOf(ColEq("level", 1), ColEq("level", 2)))), "De Morgan"},
		{"empty AnyOf", tbl.Query(AnyOf()), "at least one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.q.Err()
			if err == nil {
				t.Fatal("Err() = nil, want a build-time error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Err() = %v, want substring %q", err, tc.want)
			}
			if _, cErr := tc.q.Count(); cErr == nil {
				t.Fatal("Count() succeeded on an invalid query")
			}
		})
	}

	// A bad conjunct poisons the query but must not poison the prefix it
	// was built from.
	good := tbl.Where("level", Ge, 3)
	bad := good.And("missing", Eq, 1)
	if bad.Err() == nil {
		t.Fatal("extension with bad column must error")
	}
	if good.Err() != nil {
		t.Fatalf("prefix inherited the extension's error: %v", good.Err())
	}
	if _, err := good.Count(); err != nil {
		t.Fatalf("prefix no longer runs: %v", err)
	}
}

// TestPredTreeQueries exercises the composed-predicate API end to end:
// AnyOf unions, AllOf intersects, Not complements, and the same counts
// fall out as the hand-computed row cycle.
func TestPredTreeQueries(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 4000)

	// status cycles OK,ERROR,RETRY,TIMEOUT; level cycles 0..4.
	n, err := tbl.Query(AnyOf(ColEq("status", "ERROR"), ColEq("status", "RETRY"))).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("AnyOf count = %d, want 2000", n)
	}

	n, err = tbl.Query(AllOf(
		In("status", "ERROR", "RETRY"),
		Col("level", Ge, 3),
	)).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 800 {
		t.Fatalf("AllOf count = %d, want 800", n)
	}

	n, err = tbl.Query(Not(ColEq("status", "OK"))).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3000 {
		t.Fatalf("Not count = %d, want 3000", n)
	}

	// Nested: ERROR or (RETRY and level < 2).
	n, err = tbl.Query(AnyOf(
		ColEq("status", "ERROR"),
		AllOf(ColEq("status", "RETRY"), Col("level", Lt, 2)),
	)).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1400 {
		t.Fatalf("nested count = %d, want 1400", n)
	}
}
