package codecdb

import (
	"context"
	"testing"

	"codecdb/internal/obs"
)

// pipelineAcceptanceTable loads the 8+ row-group table the executor
// acceptance checks run against (5000 rows / 512-row groups = 10 groups).
func pipelineAcceptanceTable(t *testing.T, name string) *Table {
	t.Helper()
	db := openTestDB(t)
	propTable(t, db, name, 5000, 0)
	tbl, err := db.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	if n := tbl.inner.R.NumRowGroups(); n < 8 {
		t.Fatalf("acceptance table has %d row groups, want >= 8", n)
	}
	return tbl
}

// TestPipelinePagesReadAtMostOnce is the executor's IO acceptance check:
// with two conjuncts on an 8+ row-group table, each terminal reads every
// selected page at most once — the whole-query page count never exceeds
// the touched columns' total page count (a page re-read per operator
// would) and never exceeds what the operator-at-a-time engine reads.
func TestPipelinePagesReadAtMostOnce(t *testing.T) {
	tbl := pipelineAcceptanceTable(t, "accept_io")
	r := tbl.inner.R

	// colPages counts each named column's pages once: the reread-free
	// ceiling for a query touching exactly those columns.
	colPages := func(cols ...string) int64 {
		var total int64
		for _, name := range cols {
			ci, _, err := r.Column(name)
			if err != nil {
				t.Fatal(err)
			}
			for rg := 0; rg < r.NumRowGroups(); rg++ {
				total += int64(r.Chunk(rg, ci).NumPages())
			}
		}
		return total
	}

	cases := []struct {
		name string
		run  func(q *Query) error
		cols []string
	}{
		{"Count", func(q *Query) error { _, err := q.Count(); return err }, []string{"cat", "small"}},
		{"SumFloat", func(q *Query) error { _, err := q.SumFloat("score"); return err }, []string{"cat", "small", "score"}},
		{"GroupCount", func(q *Query) error { _, err := q.GroupCount("grade"); return err }, []string{"cat", "small", "grade"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			q := tbl.Where("cat", Eq, "alpha").And("small", Lt, 500)

			tbl.ResetIOStats()
			if err := tc.run(q); err != nil {
				t.Fatal(err)
			}
			read := tbl.IOStats().PagesRead
			if read == 0 {
				t.Fatal("query read no pages; instrumentation or selection is broken")
			}
			if ceiling := colPages(tc.cols...); read > ceiling {
				t.Fatalf("query read %d pages, but its columns only hold %d — some page was read more than once", read, ceiling)
			}

			tbl.ResetIOStats()
			if err := tc.run(q.withLegacyEngine()); err != nil {
				t.Fatal(err)
			}
			legacyRead := tbl.IOStats().PagesRead
			if read > legacyRead {
				t.Fatalf("pipelined read %d pages, legacy barrier read %d", read, legacyRead)
			}
		})
	}
}

// TestPipelineTraceIOSumsAcrossTerminals extends the EXPLAIN ANALYZE
// invariant to every pipelined terminal: the root span's direct children
// (Plan + Pipeline) sum exactly to the IOStats delta of the run, and the
// pipeline's stage children account every page of the pipeline's own
// delta.
func TestPipelineTraceIOSumsAcrossTerminals(t *testing.T) {
	tbl := pipelineAcceptanceTable(t, "accept_trace")

	terminals := []struct {
		name string
		run  func(q *Query) error
	}{
		{"Count", func(q *Query) error { _, err := q.Count(); return err }},
		{"SumFloat", func(q *Query) error { _, err := q.SumFloat("score"); return err }},
		{"GroupCount", func(q *Query) error { _, err := q.GroupCount("grade"); return err }},
		{"Ints", func(q *Query) error { _, err := q.Ints("small"); return err }},
		{"RowIDs", func(q *Query) error { _, err := q.RowIDs(); return err }},
	}
	for _, tc := range terminals {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			root := obs.NewSpan("terminal")
			q := tbl.Where("cat", Eq, "alpha").And("small", Lt, 500).
				WithContext(obs.ContextWithSpan(context.Background(), root))

			before := tbl.IOStats()
			if err := tc.run(q); err != nil {
				t.Fatal(err)
			}
			after := tbl.IOStats()
			root.End()

			delta := obs.SpanIO{
				PagesRead:         after.PagesRead - before.PagesRead,
				PagesPruned:       after.PagesPruned - before.PagesPruned,
				PagesSkipped:      after.PagesSkipped - before.PagesSkipped,
				BytesRead:         after.BytesRead - before.BytesRead,
				BytesDecompressed: after.BytesDecompressed - before.BytesDecompressed,
			}
			if sum := root.SumIO(); sum != delta {
				t.Fatalf("root children IO sum %+v != IOStats delta %+v\n%s", sum, delta, root.Render())
			}
			pipe := findSpan(root, "Pipeline[")
			if pipe == nil {
				t.Fatalf("no pipeline span in trace:\n%s", root.Render())
			}
			if sum := pipe.SumIO(); sum != pipe.IO() {
				t.Fatalf("pipeline stage IO sum %+v != pipeline delta %+v\n%s", sum, pipe.IO(), root.Render())
			}
		})
	}
}
