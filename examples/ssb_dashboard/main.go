// SSB dashboard: run the Star Schema Benchmark flights on the three
// engines — CodecDB, the MorphStore-like eager-materialization engine,
// and the decode-first baseline — and report both time and intermediate
// memory, the paper's Fig 10 comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"codecdb/internal/colstore"
	"codecdb/internal/core"
	"codecdb/internal/ssb"
)

func main() {
	dir, err := os.MkdirTemp("", "codecdb-ssb")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const sf = 0.01
	fmt.Printf("generating SSB at SF %.2f ...\n", sf)
	data := ssb.Generate(sf, 7)
	fmt.Printf("  lineorder: %d rows\n\n", len(data.Lineorder.OrderKey))

	db, err := core.Open(dir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := ssb.LoadCodecDB(db, data, colstore.Options{}); err != nil {
		log.Fatal(err)
	}
	ts, err := ssb.OpenTables(db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-5s %10s %10s %10s %14s %14s\n",
		"Q", "Codec ms", "Morph ms", "Obliv ms", "Codec interKB", "Morph interKB")
	for _, q := range ssb.QueryIDs() {
		timed := func(run func(string) (ssb.Result, error)) (ssb.Result, float64) {
			start := time.Now()
			res, err := run(q)
			if err != nil {
				log.Fatalf("%s: %v", q, err)
			}
			return res, float64(time.Since(start).Microseconds()) / 1000
		}
		rc, tc := timed(ts.CodecDB)
		rm, tm := timed(ts.Morph)
		ro, to := timed(ts.Oblivious)
		if rc.Table.NumRows() != rm.Table.NumRows() || rc.Table.NumRows() != ro.Table.NumRows() {
			log.Fatalf("%s: engines disagree", q)
		}
		fmt.Printf("%-5s %10.2f %10.2f %10.2f %14.1f %14.1f\n",
			q, tc, tm, to,
			float64(rc.IntermediateBytes)/1024, float64(rm.IntermediateBytes)/1024)
	}

	// Show the Q2.1 revenue-by-brand result head.
	res, err := ts.CodecDB("2.1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ2.1 revenue by (year, brand), first rows:")
	for i := 0; i < res.Table.NumRows() && i < 5; i++ {
		row := res.Table.Row(i)
		fmt.Printf("  %v %s %d\n", row[0], row[1], row[2])
	}
}
