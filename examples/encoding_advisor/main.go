// Encoding advisor: train the data-driven selector on the synthetic
// corpus and compare its choices against the rule-based baselines and the
// exhaustive optimum — the storage half of the paper in one program.
package main

import (
	"fmt"
	"log"

	"codecdb/internal/corpus"
	"codecdb/internal/encoding"
	"codecdb/internal/selector"
)

func main() {
	fmt.Println("generating training corpus ...")
	cols := corpus.Generate(corpus.Config{Seed: 11, Rows: 2500, PerCat: 12})
	train, _, test := corpus.Split(cols, 1)

	var intCols [][]int64
	var strCols [][][]byte
	for i := range train {
		if train[i].IsInt() {
			intCols = append(intCols, train[i].Ints)
		} else {
			strCols = append(strCols, train[i].Strings)
		}
	}
	fmt.Printf("training on %d int + %d string columns ...\n", len(intCols), len(strCols))
	learned, err := selector.TrainLearned(intCols, strCols, selector.TrainOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	var learnedBytes, parquetBytes, abadiBytes, bestBytes, plainBytes int64
	correct, total := 0, 0
	for i := range test {
		c := &test[i]
		if !c.IsInt() {
			continue
		}
		sizes, err := selector.SizesInt(c.Ints, encoding.IntCandidates())
		if err != nil {
			log.Fatal(err)
		}
		sizes[encoding.KindPlain] = selector.PlainSizeInt(c.Ints)
		best, bestSize, err := selector.BestInt(c.Ints)
		if err != nil {
			log.Fatal(err)
		}
		pick := learned.SelectInt(c.Ints)
		if pick == best || float64(sizes[pick]) <= 1.02*float64(bestSize) {
			correct++
		}
		total++
		learnedBytes += int64(sizes[pick])
		parquetBytes += int64(sizes[selector.ParquetSelectInt(c.Ints)])
		abadiBytes += int64(sizes[selector.AbadiSelectInt(c.Ints)])
		bestBytes += int64(bestSize)
		plainBytes += int64(sizes[encoding.KindPlain])
		fmt.Printf("  %-40s profile=%-12s pick=%-20v best=%-20v\n",
			c.Name, c.Profile, pick, best)
	}
	fmt.Printf("\nheld-out integer columns: %d\n", total)
	fmt.Printf("selection accuracy: %.1f%%\n", 100*float64(correct)/float64(total))
	fmt.Printf("total size — plain: %d, Abadi: %d, Parquet: %d, learned: %d, exhaustive: %d\n",
		plainBytes, abadiBytes, parquetBytes, learnedBytes, bestBytes)
	fmt.Printf("learned selector compresses to %.1f%% of plain (exhaustive floor: %.1f%%)\n",
		100*float64(learnedBytes)/float64(plainBytes),
		100*float64(bestBytes)/float64(plainBytes))
}
