// TPC-H analytics: generate a small TPC-H instance, load it with
// CodecDB's encodings, and run a selection of queries with both the
// encoding-aware plans and the decode-first baseline — the query half of
// the paper in one program.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"codecdb/internal/colstore"
	"codecdb/internal/core"
	"codecdb/internal/exec"
	"codecdb/internal/tpch"
)

func main() {
	dir, err := os.MkdirTemp("", "codecdb-tpch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const sf = 0.01
	fmt.Printf("generating TPC-H at SF %.2f ...\n", sf)
	data := tpch.Generate(sf, 42)
	fmt.Printf("  lineitem: %d rows, orders: %d rows\n",
		len(data.Lineitem.OrderKey), len(data.Orders.OrderKey))

	db, err := core.Open(dir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := tpch.LoadCodecDB(db, data, colstore.Options{}); err != nil {
		log.Fatal(err)
	}
	encs, _ := db.Encodings("lineitem")
	fmt.Printf("  l_shipdate encoded as %s (order-preserving, shared dict with commit/receipt)\n\n",
		encs["l_shipdate"])

	ts, err := tpch.OpenTables(db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s %-30s %12s %12s %9s\n", "Q", "shape", "CodecDB ms", "oblivious ms", "speedup")
	shapes := map[int]string{
		1:  "scan+filter+group (dict dates)",
		3:  "3-way join, top-n",
		4:  "two-column compare + semijoin",
		6:  "range filter + sum",
		12: "IN + two two-col compares",
		14: "LIKE rewrite on dictionary",
	}
	for _, q := range []int{1, 3, 4, 6, 12, 14} {
		// Warm the page cache and dictionaries so the timing compares
		// execution strategies, not cold-start IO.
		if _, err := ts.CodecDB(q); err != nil {
			log.Fatal(err)
		}
		if _, err := ts.Oblivious(q); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		aware, err := ts.CodecDB(q)
		if err != nil {
			log.Fatal(err)
		}
		awareMs := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		obliv, err := ts.Oblivious(q)
		if err != nil {
			log.Fatal(err)
		}
		oblivMs := float64(time.Since(start).Microseconds()) / 1000
		if aware.NumRows() != obliv.NumRows() {
			log.Fatalf("Q%d: plans disagree", q)
		}
		fmt.Printf("q%-3d %-30s %12.2f %12.2f %8.1fx\n",
			q, shapes[q], awareMs, oblivMs, oblivMs/awareMs)
	}

	// The same query as a DAG of pipeline stages (paper §5.2, Figure 3):
	// the customer and lineitem stages run in parallel.
	opPool := exec.NewPool(0)
	if _, err := ts.Q3Pipelined(opPool); err != nil { // warm
		log.Fatal(err)
	}
	start := time.Now()
	piped, err := ts.Q3Pipelined(opPool)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ3 as a pipeline-stage DAG: %.2f ms (%d result rows, identical to the sequential plan)\n",
		float64(time.Since(start).Microseconds())/1000, piped.NumRows())

	// Show one actual result: the Q1 pricing summary.
	res, err := ts.CodecDB(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ1 pricing summary (returnflag, linestatus, sum_qty, count):")
	for i := 0; i < res.NumRows(); i++ {
		row := res.Row(i)
		fmt.Printf("  %s %s %12.0f %10d\n", row[0], row[1], row[2], row[9])
	}
}
