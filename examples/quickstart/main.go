// Quickstart: load a table with automatic encoding selection, then run
// encoding-aware queries through the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"codecdb"
)

func main() {
	dir, err := os.MkdirTemp("", "codecdb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := codecdb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A web-log shaped table: sorted timestamps, low-cardinality statuses,
	// bounded latencies. Encodings are selected per column from the data.
	const n = 100_000
	ts := make([]int64, n)
	status := make([][]byte, n)
	latency := make([]float64, n)
	codes := [][]byte{[]byte("200"), []byte("301"), []byte("404"), []byte("500")}
	for i := 0; i < n; i++ {
		ts[i] = int64(1_700_000_000 + i)
		status[i] = codes[(i*7)%len(codes)]
		latency[i] = float64((i*13)%500) / 10
	}
	if _, err := db.LoadTable("requests", []codecdb.Column{
		{Name: "ts", Ints: ts},
		{Name: "status", Strings: status},
		{Name: "latency_ms", Floats: latency},
	}); err != nil {
		log.Fatal(err)
	}

	encs, err := db.Encodings("requests")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected encodings:")
	for col, enc := range encs {
		fmt.Printf("  %-12s %s\n", col, enc)
	}

	tbl, err := db.Table("requests")
	if err != nil {
		log.Fatal(err)
	}

	// Dictionary predicate evaluated on packed keys, no rows decoded.
	errors, err := tbl.Where("status", codecdb.Eq, "500").Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n500 responses: %d\n", errors)

	// Group-by over dictionary codes via array aggregation.
	byStatus, err := tbl.All().GroupCount("status")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("requests by status:")
	for code, count := range byStatus {
		fmt.Printf("  %s: %d\n", code, count)
	}

	// Late materialization: only the matching rows' latencies are decoded.
	slow, err := tbl.Where("status", codecdb.Eq, "200").SumFloat("latency_ms")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total 200-response latency: %.1f ms\n", slow)
}
