package codecdb

import (
	"fmt"
	"os"
	"path/filepath"

	"codecdb/internal/corpus"
	"codecdb/internal/selector"
)

// Selector is a trained data-driven encoding selector (paper §4): a
// neural ranking model that predicts, from a column's feature vector, the
// compression ratio of every candidate encoding and picks the best.
type Selector struct {
	inner *selector.Learned
}

// TrainOptions tunes selector training.
type TrainOptions struct {
	Hidden int   // hidden layer width (default 64)
	Epochs int   // training epochs (default 120)
	Seed   int64 // deterministic training seed
}

// TrainSelector trains a selector on the given columns. Columns with
// Ints set train the integer model; columns with Strings set train the
// string model. Ground truth comes from exhaustively encoding each
// training column.
func TrainSelector(cols []Column, opts ...TrainOptions) (*Selector, error) {
	var o TrainOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	var intCols [][]int64
	var strCols [][][]byte
	for _, c := range cols {
		if c.Ints != nil {
			intCols = append(intCols, c.Ints)
		}
		if c.Strings != nil {
			strCols = append(strCols, c.Strings)
		}
	}
	inner, err := selector.TrainLearned(intCols, strCols,
		selector.TrainOptions{Hidden: o.Hidden, Epochs: o.Epochs, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	return &Selector{inner: inner}, nil
}

// TrainDefaultSelector trains on the built-in synthetic corpus — the
// ready-to-use path when no training data is at hand (the paper's
// "default provided dataset", §3).
func TrainDefaultSelector(seed int64) (*Selector, error) {
	cols := corpus.Generate(corpus.Config{Seed: seed, Rows: 2000, PerCat: 12})
	api := make([]Column, 0, len(cols))
	for i := range cols {
		api = append(api, Column{Name: cols[i].Name, Ints: cols[i].Ints, Strings: cols[i].Strings})
	}
	return TrainSelector(api)
}

// SelectInt predicts the best encoding for an integer column.
func (s *Selector) SelectInt(vals []int64) Encoding { return s.inner.SelectInt(vals) }

// SelectString predicts the best encoding for a string column.
func (s *Selector) SelectString(vals [][]byte) Encoding { return s.inner.SelectString(vals) }

// Save persists the trained model to path. The write is atomic: the model
// goes to a temporary file in the same directory first and is renamed into
// place, so a crash mid-save never leaves a truncated model where a valid
// one stood.
func (s *Selector) Save(path string) error {
	data, err := s.inner.Marshal()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("codecdb: save model: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("codecdb: save model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("codecdb: save model: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSelector restores a model saved with Save.
func LoadSelector(path string) (*Selector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	inner, err := selector.UnmarshalLearned(data)
	if err != nil {
		return nil, err
	}
	return &Selector{inner: inner}, nil
}
