package codecdb

import (
	"context"
	"fmt"
	"time"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

// CmpOp is a relational operator for Where predicates.
type CmpOp = sboost.Op

// Relational operators.
const (
	Eq = sboost.OpEq
	Ne = sboost.OpNe
	Lt = sboost.OpLt
	Le = sboost.OpLe
	Gt = sboost.OpGt
	Ge = sboost.OpGe
)

// Query is a fluent predicate pipeline over one table. Building a Query
// does no work; terminal calls (Count, Rows, Ints, ...) evaluate all
// accumulated predicates — the lazy evaluation of paper §5.2 — choosing
// the encoding-aware operator when the column's encoding allows it and
// the decode-first path otherwise.
type Query struct {
	t       *Table
	ctx     context.Context
	filters []ops.Filter
	err     error
}

// WithContext attaches ctx to the query: terminal calls stop promptly with
// ctx.Err() when it is cancelled or its deadline passes, including mid-scan
// between row groups.
func (q *Query) WithContext(ctx context.Context) *Query {
	q.ctx = ctx
	return q
}

// context returns the query's context, defaulting to Background.
func (q *Query) context() context.Context {
	if q.ctx != nil {
		return q.ctx
	}
	return context.Background()
}

// Where starts a query with `col op value`. Value may be int64, int,
// float64, string, or []byte. Dictionary-encoded columns are filtered in
// place on the packed keys; others fall back to decode-and-test.
func (t *Table) Where(col string, op CmpOp, value any) *Query {
	q := &Query{t: t}
	return q.And(col, op, value)
}

// All starts a query with no predicate (full selection).
func (t *Table) All() *Query { return &Query{t: t} }

// And adds another conjunct.
func (q *Query) And(col string, op CmpOp, value any) *Query {
	if q.err != nil {
		return q
	}
	f, err := q.t.filterFor(col, op, value)
	if err != nil {
		q.err = err
		return q
	}
	q.filters = append(q.filters, f)
	return q
}

// AndIn adds `col IN (values...)`; values must be strings or []bytes for
// string columns, integers for integer columns.
func (q *Query) AndIn(col string, values ...any) *Query {
	if q.err != nil {
		return q
	}
	var strs [][]byte
	var ints []int64
	for _, v := range values {
		switch x := v.(type) {
		case string:
			strs = append(strs, []byte(x))
		case []byte:
			strs = append(strs, x)
		case int:
			ints = append(ints, int64(x))
		case int64:
			ints = append(ints, x)
		default:
			q.err = fmt.Errorf("codecdb: unsupported IN value %T", v)
			return q
		}
	}
	q.filters = append(q.filters, &ops.DictInFilter{Col: col, StrValues: strs, IntValues: ints})
	return q
}

// AndLike adds a dictionary-rewritten pattern predicate: match is
// evaluated once per distinct value.
func (q *Query) AndLike(col string, match func([]byte) bool) *Query {
	if q.err != nil {
		return q
	}
	q.filters = append(q.filters, &ops.DictLikeFilter{Col: col, Match: match})
	return q
}

// AndColumns adds a two-column comparison; both columns must share an
// order-preserving dictionary (load them with the same DictGroup).
func (q *Query) AndColumns(colA string, op CmpOp, colB string) *Query {
	if q.err != nil {
		return q
	}
	q.filters = append(q.filters, &ops.TwoColumnFilter{ColA: colA, ColB: colB, Op: op})
	return q
}

func (t *Table) filterFor(col string, op CmpOp, value any) (ops.Filter, error) {
	ci, c, err := t.inner.R.Column(col)
	if err != nil {
		return nil, err
	}
	_ = ci
	switch v := value.(type) {
	case int:
		return t.intFilter(c.Encoding, col, op, int64(v)), nil
	case int64:
		return t.intFilter(c.Encoding, col, op, v), nil
	case string:
		return t.strFilter(c.Encoding, col, op, []byte(v)), nil
	case []byte:
		return t.strFilter(c.Encoding, col, op, v), nil
	case float64:
		return &ops.FloatPredicateFilter{Col: col, Pred: floatPred(op, v)}, nil
	default:
		return nil, fmt.Errorf("codecdb: unsupported predicate value %T", value)
	}
}

func (t *Table) intFilter(enc Encoding, col string, op CmpOp, v int64) ops.Filter {
	switch enc {
	case Dictionary:
		return &ops.DictFilter{Col: col, Op: op, IntValue: v}
	case Delta:
		return &ops.DeltaFilter{Col: col, Op: op, Value: v}
	case BitPacked:
		return &ops.BitPackedFilter{Col: col, Op: op, Value: v}
	default:
		return &ops.IntPredicateFilter{Col: col, Pred: intPred(op, v)}
	}
}

func (t *Table) strFilter(enc Encoding, col string, op CmpOp, v []byte) ops.Filter {
	if enc == Dictionary || enc == DictRLE {
		return &ops.DictFilter{Col: col, Op: op, StrValue: v}
	}
	return &ops.StrPredicateFilter{Col: col, Pred: bytesPred(op, v)}
}

func intPred(op CmpOp, target int64) func(int64) bool {
	return func(v int64) bool { return cmpMatch(compareInt(v, target), op) }
}

func floatPred(op CmpOp, target float64) func(float64) bool {
	return func(v float64) bool {
		switch {
		case v < target:
			return cmpMatch(-1, op)
		case v > target:
			return cmpMatch(1, op)
		default:
			return cmpMatch(0, op)
		}
	}
}

func bytesPred(op CmpOp, target []byte) func([]byte) bool {
	return func(v []byte) bool {
		c := 0
		if string(v) < string(target) {
			c = -1
		} else if string(v) > string(target) {
			c = 1
		}
		return cmpMatch(c, op)
	}
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpMatch(c int, op CmpOp) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// eval runs all predicates and intersects their bitmaps, observing the
// per-query metrics (count + latency histogram) around the pipeline.
func (q *Query) eval() (*bitutil.SectionalBitmap, error) {
	start := time.Now()
	sel, err := q.evalFilters()
	queriesTotal.Inc()
	queryLatency.Observe(time.Since(start).Seconds())
	return sel, err
}

func (q *Query) evalFilters() (*bitutil.SectionalBitmap, error) {
	if q.err != nil {
		return nil, q.err
	}
	ctx := q.context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool := q.t.db.inner.DataPool()
	if len(q.filters) == 0 {
		return ops.FullTableBitmap(q.t.inner.R), nil
	}
	var acc *bitutil.SectionalBitmap
	for _, f := range q.filters {
		bm, err := ops.ApplyFilter(ctx, f, q.t.inner.R, pool)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = bm
		} else {
			acc.And(bm)
		}
	}
	return acc, nil
}

// Count evaluates the query and returns the matching row count.
func (q *Query) Count() (int64, error) {
	sel, err := q.eval()
	if err != nil {
		return 0, err
	}
	return int64(sel.Cardinality()), nil
}

// RowIDs evaluates the query and returns the matching row positions.
func (q *Query) RowIDs() ([]int64, error) {
	sel, err := q.eval()
	if err != nil {
		return nil, err
	}
	return ops.SelectedRows(sel), nil
}

// Ints evaluates the query and gathers an integer column at the matching
// rows (late materialization with data skipping).
func (q *Query) Ints(col string) ([]int64, error) {
	sel, err := q.eval()
	if err != nil {
		return nil, err
	}
	return ops.GatherIntsCtx(q.context(), q.t.inner.R, col, sel, q.t.db.inner.DataPool())
}

// Floats gathers a float column at the matching rows.
func (q *Query) Floats(col string) ([]float64, error) {
	sel, err := q.eval()
	if err != nil {
		return nil, err
	}
	return ops.GatherFloatsCtx(q.context(), q.t.inner.R, col, sel, q.t.db.inner.DataPool())
}

// Strings gathers a string column at the matching rows. The returned
// slices alias internal buffers; do not mutate them.
func (q *Query) Strings(col string) ([][]byte, error) {
	sel, err := q.eval()
	if err != nil {
		return nil, err
	}
	return ops.GatherStringsCtx(q.context(), q.t.inner.R, col, sel, q.t.db.inner.DataPool())
}

// GroupCount evaluates the query and counts matching rows per distinct
// value of a dictionary-encoded column, using array aggregation over the
// dictionary codes.
func (q *Query) GroupCount(col string) (map[string]int64, error) {
	sel, err := q.eval()
	if err != nil {
		return nil, err
	}
	r := q.t.inner.R
	pool := q.t.db.inner.DataPool()
	ci, c, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	if c.Encoding != Dictionary && c.Encoding != DictRLE {
		return nil, fmt.Errorf("codecdb: GroupCount needs a dictionary column, %s is %v", col, c.Encoding)
	}
	keys, err := ops.GatherKeysCtx(q.context(), r, col, sel, pool)
	if err != nil {
		return nil, err
	}
	var labels []string
	switch {
	case c.Type == colstore.TypeInt64:
		dict, err := r.IntDict(ci)
		if err != nil {
			return nil, err
		}
		labels = make([]string, len(dict))
		for i, v := range dict {
			labels[i] = fmt.Sprint(v)
		}
	default:
		dict, err := r.StrDict(ci)
		if err != nil {
			return nil, err
		}
		labels = make([]string, len(dict))
		for i, v := range dict {
			labels[i] = string(v)
		}
	}
	res, err := ops.ArrayAggregate(pool, keys, len(labels), []ops.VecAgg{{Kind: ops.AggCount}})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, res.NumGroups())
	for g, k := range res.Keys {
		out[labels[k]] = res.Counts[g]
	}
	return out, nil
}

// SumFloat evaluates the query and sums a float column at matching rows.
func (q *Query) SumFloat(col string) (float64, error) {
	vals, err := q.Floats(col)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s, nil
}
