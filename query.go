package codecdb

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"time"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/obs"
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

// CmpOp is a relational operator for Where predicates.
type CmpOp = sboost.Op

// Relational operators.
const (
	Eq = sboost.OpEq
	Ne = sboost.OpNe
	Lt = sboost.OpLt
	Le = sboost.OpLe
	Gt = sboost.OpGt
	Ge = sboost.OpGe
)

// Query is a predicate pipeline over one table. Building a Query does no
// work; terminal calls (Count, RowIDs, Ints, ...) plan and evaluate all
// accumulated predicates — the lazy evaluation of paper §5.2. The planner
// orders conjuncts by estimated selectivity per unit cost and threads each
// filter's result selection into the next, so later filters never touch
// row groups or pages earlier predicates already eliminated.
//
// Builder methods are copy-on-write: each returns a new Query, so a prefix
// can be extended into several independent queries:
//
//	base := t.Where("status", codecdb.Eq, "ERROR")
//	a := base.And("level", codecdb.Ge, 4)
//	b := base.And("level", codecdb.Lt, 2) // does not disturb a
type Query struct {
	t         *Table
	ctx       context.Context
	conjuncts []Pred
	err       error
	// exec carries the per-query execution budgets and engine choice
	// (see ExecOptions); the zero value is the default behavior.
	exec ExecOptions
	// relational extensions (see rel.go): join stages against build-side
	// queries, group-by keys, and output ordering. When any is set,
	// terminals compile a relational plan onto the same morsel pipeline.
	joins     []joinSpec
	groupCols []string
	orders    []orderSpec
	limitN    int
}

// rel reports whether the query carries relational structure and must
// compile through the relational planner.
func (q *Query) rel() bool {
	return len(q.joins) > 0 || len(q.groupCols) > 0 || len(q.orders) > 0 || q.limitN > 0
}

// legacy reports whether terminals route through the operator-at-a-time
// barrier path instead of the morsel pipeline.
func (q *Query) legacy() bool { return q.exec.Engine == EngineLegacy }

// WithContext attaches ctx to the query: terminal calls stop promptly with
// ctx.Err() when it is cancelled or its deadline passes, including mid-scan
// between row groups. Like the predicate builders, WithContext is
// copy-on-write and returns a new Query. (It historically modified the
// receiver in place; callers relying on that must now use the returned
// value.)
func (q *Query) WithContext(ctx context.Context) *Query {
	cp := q.clone()
	cp.ctx = ctx
	return cp
}

// withLegacyEngine returns a copy that evaluates terminals with the
// pre-pipeline barrier strategy — shorthand for WithExec with
// EngineLegacy. The two engines must agree byte-for-byte on every
// terminal (see the engine property tests).
func (q *Query) withLegacyEngine() *Query {
	o := q.exec
	o.Engine = EngineLegacy
	return q.WithExec(o)
}

// withoutPrefetch returns a copy whose terminals run the pipeline with
// the page prefetcher disabled — shorthand for WithExec with
// DisablePrefetch. Prefetch on and off must agree byte-for-byte on every
// terminal.
func (q *Query) withoutPrefetch() *Query {
	o := q.exec
	o.DisablePrefetch = true
	return q.WithExec(o)
}

// context returns the query's context, defaulting to Background.
func (q *Query) context() context.Context {
	if q.ctx != nil {
		return q.ctx
	}
	return context.Background()
}

// clone returns a copy with its own conjunct storage, so extending the
// copy never aliases — and can never clobber — the receiver's predicates.
func (q *Query) clone() *Query {
	cp := *q
	cp.conjuncts = append([]Pred(nil), q.conjuncts...)
	cp.joins = append([]joinSpec(nil), q.joins...)
	cp.groupCols = append([]string(nil), q.groupCols...)
	cp.orders = append([]orderSpec(nil), q.orders...)
	return &cp
}

// withPred validates p against the table (metadata only) and returns a new
// Query with it appended as a conjunct.
func (q *Query) withPred(p Pred) *Query {
	cp := q.clone()
	if cp.err != nil {
		return cp
	}
	if _, err := cp.t.bindPred(p); err != nil {
		cp.err = err
		return cp
	}
	cp.conjuncts = append(cp.conjuncts, p)
	return cp
}

// Err reports the first predicate-construction error, letting callers
// validate a built query before running a terminal. Terminals return the
// same error.
func (q *Query) Err() error { return q.err }

// Where starts a query with `col op value`. Value may be int64, int,
// float64, string, or []byte and must match the column type.
// Dictionary-encoded columns are filtered in place on the packed keys;
// others fall back to decode-and-test.
func (t *Table) Where(col string, op CmpOp, value any) *Query {
	return t.All().And(col, op, value)
}

// All starts a query with no predicate (full selection).
func (t *Table) All() *Query { return &Query{t: t} }

// Query starts a query from a composed predicate tree (see Col, ColEq, In,
// Like, Cols, AllOf, AnyOf, Not). The predicate is validated against the
// table immediately; check Err or any terminal for the result.
func (t *Table) Query(p Pred) *Query {
	return t.All().withPred(p)
}

// And adds another conjunct: `col op value`.
func (q *Query) And(col string, op CmpOp, value any) *Query {
	return q.withPred(Col(col, op, value))
}

// AndPred adds a composed predicate tree as a conjunct.
func (q *Query) AndPred(p Pred) *Query { return q.withPred(p) }

// AndIn adds `col IN (values...)`; values must be strings or []bytes for
// string columns, integers for integer columns, and the column must be
// dictionary-encoded.
func (q *Query) AndIn(col string, values ...any) *Query {
	return q.withPred(In(col, values...))
}

// AndLike adds a dictionary-rewritten pattern predicate: match is
// evaluated once per distinct value.
func (q *Query) AndLike(col string, match func([]byte) bool) *Query {
	return q.withPred(Like(col, match))
}

// AndColumns adds a two-column comparison; both columns must share an
// order-preserving dictionary (load them with the same DictGroup).
func (q *Query) AndColumns(colA string, op CmpOp, colB string) *Query {
	return q.withPred(Cols(colA, op, colB))
}

func filterFor(r *colstore.Reader, col string, op CmpOp, value any) (ops.Filter, error) {
	_, c, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	switch v := value.(type) {
	case int:
		return intFilterChecked(c, col, op, int64(v))
	case int64:
		return intFilterChecked(c, col, op, v)
	case string:
		return strFilterChecked(c, col, op, []byte(v))
	case []byte:
		return strFilterChecked(c, col, op, v)
	case float64:
		if c.Type != colstore.TypeFloat64 {
			return nil, fmt.Errorf("codecdb: float predicate on %v column %q", c.Type, col)
		}
		return &ops.FloatPredicateFilter{Col: col, Pred: floatPred(op, v)}, nil
	default:
		return nil, fmt.Errorf("codecdb: unsupported predicate value %T", value)
	}
}

func intFilterChecked(c *colstore.Column, col string, op CmpOp, v int64) (ops.Filter, error) {
	if c.Type != colstore.TypeInt64 {
		return nil, fmt.Errorf("codecdb: integer predicate on %v column %q", c.Type, col)
	}
	switch c.Encoding {
	case Dictionary:
		return &ops.DictFilter{Col: col, Op: op, IntValue: v}, nil
	case Delta:
		return &ops.DeltaFilter{Col: col, Op: op, Value: v}, nil
	case BitPacked:
		return &ops.BitPackedFilter{Col: col, Op: op, Value: v}, nil
	default:
		return &ops.IntPredicateFilter{Col: col, Pred: intPred(op, v)}, nil
	}
}

func strFilterChecked(c *colstore.Column, col string, op CmpOp, v []byte) (ops.Filter, error) {
	if c.Type != colstore.TypeString {
		return nil, fmt.Errorf("codecdb: string predicate on %v column %q", c.Type, col)
	}
	if c.Encoding == Dictionary || c.Encoding == DictRLE {
		return &ops.DictFilter{Col: col, Op: op, StrValue: v}, nil
	}
	return &ops.StrPredicateFilter{Col: col, Pred: bytesPred(op, v)}, nil
}

func intPred(op CmpOp, target int64) func(int64) bool {
	return func(v int64) bool { return cmpMatch(compareInt(v, target), op) }
}

func floatPred(op CmpOp, target float64) func(float64) bool {
	return func(v float64) bool {
		switch {
		case v < target:
			return cmpMatch(-1, op)
		case v > target:
			return cmpMatch(1, op)
		default:
			return cmpMatch(0, op)
		}
	}
}

func bytesPred(op CmpOp, target []byte) func([]byte) bool {
	return func(v []byte) bool { return cmpMatch(bytes.Compare(v, target), op) }
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpMatch(c int, op CmpOp) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// plan binds the accumulated conjuncts into the operator-layer predicate
// IR and builds the ordered execution plan. Metadata only — Explain calls
// this without reading any page.
func (q *Query) plan() (*ops.Plan, error) {
	if q.err != nil {
		return nil, q.err
	}
	root, err := q.t.bindPred(AllOf(q.conjuncts...))
	if err != nil {
		return nil, err
	}
	return ops.BuildPlan(root, q.t.inner.R), nil
}

// eval plans and runs the predicate pipeline, observing the per-query
// metrics (count + latency histogram) and the flight recorder around it.
func (q *Query) eval() (*bitutil.SectionalBitmap, error) {
	start := time.Now()
	ectx, cancel := q.execContext()
	defer cancel()
	ctx, fin := q.record(ectx, "Eval[legacy]")
	cp := q.clone()
	cp.ctx = ctx
	sel, err := cp.evalFilters()
	queriesTotal.Inc()
	queryLatency.Observe(time.Since(start).Seconds())
	var out int64
	if sel != nil {
		out = int64(sel.Cardinality())
	}
	fin(out, err)
	return sel, err
}

func (q *Query) evalFilters() (*bitutil.SectionalBitmap, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.t.inner.S != nil {
		return nil, fmt.Errorf("codecdb: the legacy engine does not support ingest tables")
	}
	ctx := q.context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(q.conjuncts) == 0 {
		return ops.FullTableBitmap(q.t.inner.R), nil
	}
	pl, err := q.planTraced(ctx)
	if err != nil {
		return nil, err
	}
	return pl.Execute(ctx, q.t.inner.R, q.t.db.inner.DataPool())
}

// planTraced builds the plan, and — when the context carries a span —
// records the chosen order under a Plan child span along with any metadata
// IO the estimator caused (lazily faulted dictionaries), so the span
// tree's per-node IO still sums exactly to the reader's IOStats delta.
func (q *Query) planTraced(ctx context.Context) (*ops.Plan, error) {
	sp := obs.SpanFrom(ctx)
	if sp == nil {
		return q.plan()
	}
	child := sp.StartChild("Plan")
	before := q.t.inner.R.Stats()
	pl, err := q.plan()
	if err == nil {
		for _, line := range pl.Describe() {
			child.AddDetail("%s", line)
		}
	}
	after := q.t.inner.R.Stats()
	child.AddIO(obs.SpanIO{
		PagesRead:         after.PagesRead - before.PagesRead,
		PagesPruned:       after.PagesPruned - before.PagesPruned,
		PagesSkipped:      after.PagesSkipped - before.PagesSkipped,
		BytesRead:         after.BytesRead - before.BytesRead,
		BytesDecompressed: after.BytesDecompressed - before.BytesDecompressed,
	})
	child.End()
	return pl, err
}

// run plans the accumulated conjuncts and drives the morsel pipeline for
// one terminal, observing the per-query metrics (count + latency
// histogram) around the whole evaluation. A query with no predicate runs
// the terminal over every row (nil plan).
func (q *Query) run(term ops.TermKind, col string) (res *ops.PipelineResult, err error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.t.inner.S != nil {
		return q.runSharded(term, col)
	}
	ctx, cancel := q.execContext()
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, fin := q.record(ctx, term.String())
	defer func() {
		queriesTotal.Inc()
		queryLatency.Observe(time.Since(start).Seconds())
		var out int64
		if res != nil {
			out = res.Count
		}
		fin(out, err)
	}()
	var pl *ops.Plan
	if len(q.conjuncts) > 0 {
		pl, err = q.planTraced(ctx)
		if err != nil {
			return nil, err
		}
	}
	return ops.RunPipeline(ctx, q.t.inner.R, q.t.db.inner.DataPool(), pl, term, col)
}

// Count evaluates the query and returns the matching row count.
func (q *Query) Count() (int64, error) {
	if q.rel() {
		return q.relCount()
	}
	if q.legacy() {
		sel, err := q.eval()
		if err != nil {
			return 0, err
		}
		return int64(sel.Cardinality()), nil
	}
	res, err := q.run(ops.TermCount, "")
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// RowIDs evaluates the query and returns the matching row positions.
func (q *Query) RowIDs() ([]int64, error) {
	if q.legacy() {
		sel, err := q.eval()
		if err != nil {
			return nil, err
		}
		return ops.SelectedRows(sel), nil
	}
	res, err := q.run(ops.TermRowIDs, "")
	if err != nil {
		return nil, err
	}
	return res.RowIDs, nil
}

// Ints evaluates the query and gathers an integer column at the matching
// rows (late materialization with data skipping).
func (q *Query) Ints(col string) ([]int64, error) {
	if q.legacy() {
		sel, err := q.eval()
		if err != nil {
			return nil, err
		}
		return ops.GatherIntsCtx(q.context(), q.t.inner.R, col, sel, q.t.db.inner.DataPool())
	}
	res, err := q.run(ops.TermInts, col)
	if err != nil {
		return nil, err
	}
	return res.Ints, nil
}

// Floats gathers a float column at the matching rows.
func (q *Query) Floats(col string) ([]float64, error) {
	if q.legacy() {
		sel, err := q.eval()
		if err != nil {
			return nil, err
		}
		return ops.GatherFloatsCtx(q.context(), q.t.inner.R, col, sel, q.t.db.inner.DataPool())
	}
	res, err := q.run(ops.TermFloats, col)
	if err != nil {
		return nil, err
	}
	return res.Floats, nil
}

// Strings gathers a string column at the matching rows. The returned
// slices alias internal buffers; do not mutate them.
func (q *Query) Strings(col string) ([][]byte, error) {
	if q.legacy() {
		sel, err := q.eval()
		if err != nil {
			return nil, err
		}
		return ops.GatherStringsCtx(q.context(), q.t.inner.R, col, sel, q.t.db.inner.DataPool())
	}
	res, err := q.run(ops.TermStrings, col)
	if err != nil {
		return nil, err
	}
	return res.Strings, nil
}

// groupLabels renders a dictionary column's entries as result-map keys.
func (q *Query) groupLabels(col string) (int, *colstore.Column, []string, error) {
	return groupLabelsOn(q.t.inner.R, col)
}

func groupLabelsOn(r *colstore.Reader, col string) (int, *colstore.Column, []string, error) {
	ci, c, err := r.Column(col)
	if err != nil {
		return 0, nil, nil, err
	}
	if c.Encoding != Dictionary && c.Encoding != DictRLE {
		return 0, nil, nil, fmt.Errorf("codecdb: GroupCount needs a dictionary column, %s is %v", col, c.Encoding)
	}
	var labels []string
	switch {
	case c.Type == colstore.TypeInt64:
		dict, err := r.IntDict(ci)
		if err != nil {
			return 0, nil, nil, err
		}
		labels = make([]string, len(dict))
		for i, v := range dict {
			labels[i] = strconv.FormatInt(v, 10)
		}
	default:
		dict, err := r.StrDict(ci)
		if err != nil {
			return 0, nil, nil, err
		}
		labels = make([]string, len(dict))
		for i, v := range dict {
			labels[i] = string(v)
		}
	}
	return ci, c, labels, nil
}

// GroupCount evaluates the query and counts matching rows per distinct
// value of a dictionary-encoded column: each worker accumulates partial
// counts over the dictionary codes of its row groups, and the partial
// tables merge at the end.
func (q *Query) GroupCount(col string) (map[string]int64, error) {
	if q.t.inner.S != nil {
		return q.groupCountSharded(col)
	}
	if q.legacy() {
		sel, err := q.eval()
		if err != nil {
			return nil, err
		}
		pool := q.t.db.inner.DataPool()
		_, _, labels, err := q.groupLabels(col)
		if err != nil {
			return nil, err
		}
		keys, err := ops.GatherKeysCtx(q.context(), q.t.inner.R, col, sel, pool)
		if err != nil {
			return nil, err
		}
		res, err := ops.ArrayAggregate(pool, keys, len(labels), []ops.VecAgg{{Kind: ops.AggCount}})
		if err != nil {
			return nil, err
		}
		return groupMap(res, labels), nil
	}
	if q.err != nil {
		return nil, q.err
	}
	// Validate the encoding on metadata alone, but build the label table
	// only after the run: the pipeline faults the dictionary inside its
	// Prepare window, so reading it here is a cache hit and the traced IO
	// sums stay exact.
	_, c, err := q.t.inner.R.Column(col)
	if err != nil {
		return nil, err
	}
	if c.Encoding != Dictionary && c.Encoding != DictRLE {
		return nil, fmt.Errorf("codecdb: GroupCount needs a dictionary column, %s is %v", col, c.Encoding)
	}
	res, err := q.run(ops.TermGroupCount, col)
	if err != nil {
		return nil, err
	}
	_, _, labels, err := q.groupLabels(col)
	if err != nil {
		return nil, err
	}
	return groupMap(res.Group, labels), nil
}

func groupMap(res *ops.AggResult, labels []string) map[string]int64 {
	out := make(map[string]int64, res.NumGroups())
	for g, k := range res.Keys {
		out[labels[k]] = res.Counts[g]
	}
	return out
}

// SumFloat evaluates the query and sums a float column at matching rows.
// The pipelined path never materializes the full value vector: each worker
// folds its row groups' gathered values into a running sum. Non-float
// columns are rejected up front (the gather path would otherwise
// reinterpret their pages as float bits).
func (q *Query) SumFloat(col string) (float64, error) {
	if typ, ok := q.t.ColumnType(col); ok && typ != "FLOAT64" {
		return 0, fmt.Errorf("codecdb: SumFloat needs a FLOAT64 column, %q is %s", col, typ)
	}
	if q.legacy() {
		vals, err := q.Floats(col)
		if err != nil {
			return 0, err
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		return s, nil
	}
	res, err := q.run(ops.TermSumFloat, col)
	if err != nil {
		return 0, err
	}
	return res.Sum, nil
}
