package codecdb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"codecdb/internal/obs"
)

// Flight-recorder plumbing for query terminals. Every terminal (both
// engines, both table kinds) registers with the process recorder: an ID
// and a live entry at start, a completed QueryRecord at finish whose IO
// fields are the Table.IOStats delta across the run — the same delta an
// external observer snapshotting around the call would measure.

// FlightRecorder returns the process-wide query flight recorder, for
// embedding callers that want the debug endpoints or snapshots without
// the codecdb serve command.
func FlightRecorder() *obs.Recorder { return obs.DefaultRecorder() }

// record registers one terminal evaluation with the flight recorder. It
// returns a context carrying the live entry (so the pipeline reports
// morsel progress) and a finish closure the terminal must call exactly
// once with the selected-row count and the terminal error. When the
// recorder is disabled both returns are no-ops.
func (q *Query) record(ctx context.Context, terminal string) (context.Context, func(rowsOut int64, err error)) {
	fr := obs.DefaultRecorder()
	if !fr.Enabled() {
		return ctx, func(int64, error) {}
	}
	lq := fr.Begin(obs.KindQuery, q.t.Name(), terminal, summarizeConjuncts(q.conjuncts))
	if lq == nil {
		return ctx, func(int64, error) {}
	}
	ctx = obs.ContextWithQuery(ctx, lq)
	before := q.t.IOStats()
	rowsIn := q.t.NumRows()
	sp := obs.SpanFrom(ctx)
	return ctx, func(rowsOut int64, err error) {
		after := q.t.IOStats()
		rec := &obs.QueryRecord{
			Wall:    time.Since(lq.Start),
			IORead:  time.Duration(after.IONanos - before.IONanos),
			RowsIn:  rowsIn,
			RowsOut: rowsOut,
			IO: obs.RecordIO{
				PagesRead:      after.PagesRead - before.PagesRead,
				PagesPruned:    after.PagesPruned - before.PagesPruned,
				PagesSkipped:   after.PagesSkipped - before.PagesSkipped,
				PagesCoalesced: after.PagesCoalesced - before.PagesCoalesced,
				BytesRead:      after.BytesRead - before.BytesRead,
				BytesDecomp:    after.BytesDecompressed - before.BytesDecompressed,
				PrefetchHits:   after.PrefetchHits - before.PrefetchHits,
				PrefetchMisses: after.PrefetchMisses - before.PrefetchMisses,
			},
		}
		wait, dec := lq.IOTimes()
		rec.Wait = time.Duration(wait)
		rec.Decompress = time.Duration(dec)
		if sp != nil {
			rec.TraceRoot = sp
			rec.AllocBytes = int64(sp.AllocBytes())
		}
		if err != nil {
			rec.Err = err.Error()
			rec.Cancelled = errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		}
		fr.Finish(lq, rec)
	}
}

// summarizeConjuncts renders the accumulated conjuncts for the
// recorder's predicate field.
func summarizeConjuncts(conjuncts []Pred) string {
	if len(conjuncts) == 0 {
		return ""
	}
	return predSummary(AllOf(conjuncts...))
}

// predSummary renders a predicate tree compactly: `status = "ERROR" AND
// (level >= 4 OR region IN ("eu-west", "eu-north"))`.
func predSummary(p Pred) string {
	switch p.kind {
	case predZero:
		return ""
	case predCmp:
		return fmt.Sprintf("%s %s %s", p.col, opSymbol(p.op), valueSummary(p.value))
	case predIn:
		vals := make([]string, 0, len(p.values))
		for i, v := range p.values {
			if i == 8 {
				vals = append(vals, fmt.Sprintf("… +%d", len(p.values)-i))
				break
			}
			vals = append(vals, valueSummary(v))
		}
		return fmt.Sprintf("%s IN (%s)", p.col, strings.Join(vals, ", "))
	case predLike:
		return p.col + " LIKE <fn>"
	case predCols:
		return fmt.Sprintf("%s %s %s", p.col, opSymbol(p.op), p.colB)
	case predAll:
		return joinKids(p.kids, " AND ")
	case predAny:
		return "(" + joinKids(p.kids, " OR ") + ")"
	case predNot:
		return "NOT " + predSummary(p.kids[0])
	case predRaw:
		return fmt.Sprintf("raw[%T]", p.raw)
	}
	return "?"
}

func joinKids(kids []Pred, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = predSummary(k)
	}
	return strings.Join(parts, sep)
}

func opSymbol(op CmpOp) string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

func valueSummary(v any) string {
	switch x := v.(type) {
	case string:
		return fmt.Sprintf("%q", x)
	case []byte:
		return fmt.Sprintf("%q", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}
