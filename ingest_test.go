package codecdb

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

func ingestFields() []Field {
	return []Field{
		{Name: "id", Type: Int64Field},
		{Name: "score", Type: Float64Field},
		{Name: "status", Type: StringField},
	}
}

var statuses = []string{"OK", "WARN", "ERROR"}

func appendRows(t *testing.T, tbl *Table, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := tbl.Append(int64(i), float64(i)/2, statuses[i%3]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// TestIngestQueryAcrossShardsAndTail: the same query must see flushed
// shards and the in-memory tail as one table, with global row ids.
func TestIngestQueryAcrossShardsAndTail(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateIngestTable("events", ingestFields())
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.IsIngest() {
		t.Fatal("IsIngest = false")
	}
	appendRows(t, tbl, 0, 200)
	if err := tbl.Flush(); err != nil { // shard 1
		t.Fatal(err)
	}
	appendRows(t, tbl, 200, 100)
	if err := tbl.Flush(); err != nil { // shard 2
		t.Fatal(err)
	}
	appendRows(t, tbl, 300, 57) // tail
	const total = 357

	if n := tbl.NumRows(); n != total {
		t.Fatalf("NumRows = %d, want %d", n, total)
	}

	// Count + RowIDs across the whole snapshot.
	n, err := tbl.Where("status", Eq, "ERROR").Count()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < total; i++ {
		if i%3 == 2 {
			want++
		}
	}
	if n != want {
		t.Fatalf("Count = %d, want %d", n, want)
	}
	ids, err := tbl.Where("status", Eq, "ERROR").RowIDs()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(ids)) != want {
		t.Fatalf("RowIDs: %d, want %d", len(ids), want)
	}
	for _, id := range ids {
		if id%3 != 2 {
			t.Fatalf("row id %d is not an ERROR row", id)
		}
	}

	// Gather + conjunction spanning the shard/tail boundary.
	vals, err := tbl.Where("id", Ge, 195).And("id", Lt, 305).Ints("id")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 110 {
		t.Fatalf("gathered %d ids, want 110", len(vals))
	}
	for i, v := range vals {
		if v != int64(195+i) {
			t.Fatalf("vals[%d] = %d, want %d (snapshot order broken)", i, v, 195+i)
		}
	}

	// SumFloat, IN (dictionary on shards, set probe on the tail), LIKE.
	sum, err := tbl.Where("id", Lt, 10).SumFloat("score")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := 0.0
	for i := 0; i < 10; i++ {
		wantSum += float64(i) / 2
	}
	if sum != wantSum {
		t.Fatalf("SumFloat = %v, want %v", sum, wantSum)
	}
	nIn, err := tbl.All().AndIn("status", "WARN", "ERROR").Count()
	if err != nil {
		t.Fatal(err)
	}
	nLike, err := tbl.All().AndLike("status", func(v []byte) bool { return bytes.HasPrefix(v, []byte("W")) }).Count()
	if err != nil {
		t.Fatal(err)
	}
	wantWarn, wantErr := int64(0), int64(0)
	for i := 0; i < total; i++ {
		switch i % 3 {
		case 1:
			wantWarn++
		case 2:
			wantErr++
		}
	}
	if nIn != wantWarn+wantErr {
		t.Fatalf("IN = %d, want %d", nIn, wantWarn+wantErr)
	}
	if nLike != wantWarn {
		t.Fatalf("LIKE = %d, want %d", nLike, wantWarn)
	}

	// GroupCount merges per-shard dictionary aggregation with the tail.
	groups, err := tbl.Where("id", Ge, 0).GroupCount("status")
	if err != nil {
		t.Fatal(err)
	}
	if groups["WARN"] != wantWarn || groups["ERROR"] != wantErr || groups["OK"] != int64(total)-wantWarn-wantErr {
		t.Fatalf("GroupCount = %v", groups)
	}

	// Strings gather.
	strs, err := tbl.Where("id", Eq, 300).Strings("status")
	if err != nil {
		t.Fatal(err)
	}
	if len(strs) != 1 || string(strs[0]) != statuses[300%3] {
		t.Fatalf("Strings = %q", strs)
	}

	// The write path is traced like the read path.
	if tr := tbl.FlushTrace(); tr == "" {
		t.Fatal("FlushTrace empty after Flush")
	}
	if _, err := tbl.Where("status", Eq, "ERROR").ExplainAnalyze(); err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	if err := db.Verify(context.Background()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rep, err := tbl.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 2 || len(rep.Quarantined) != 0 {
		t.Fatalf("scrub report: %+v", rep)
	}
}

// TestIngestReopen: rows appended but never flushed must survive a
// clean close/reopen via WAL replay, and the selector-chosen encodings
// must be queryable again.
func TestIngestReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateIngestTable("events", ingestFields())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, tbl, 0, 120)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	appendRows(t, tbl, 120, 30) // unflushed tail
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err = db.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	if n := tbl.NumRows(); n != 150 {
		t.Fatalf("NumRows after reopen = %d, want 150", n)
	}
	ids, err := tbl.All().Ints("id")
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("ids[%d] = %d after reopen", i, id)
		}
	}
	enc, err := db.Encodings("events")
	if err != nil {
		t.Fatal(err)
	}
	if enc["status"] == "" {
		t.Fatalf("no recorded encoding for status: %v", enc)
	}
}

// TestIngestValidation: schema violations fail at build/append time with
// errors, never panics, and never reach the WAL.
func TestIngestValidation(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateIngestTable("events", ingestFields())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(int64(1), 2.0); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tbl.Append("x", 2.0, "OK"); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if q := tbl.Where("missing", Eq, 1); q.Err() == nil {
		t.Fatal("unknown column accepted")
	}
	if q := tbl.Where("id", Eq, "str"); q.Err() == nil {
		t.Fatal("type-mismatched predicate accepted")
	}
	if q := tbl.All().AndColumns("status", Eq, "status"); q.Err() == nil {
		t.Fatal("two-column predicate must be rejected on ingest tables")
	}
	if _, err := db.LoadTable("events2", []Column{{Name: "a", Ints: []int64{1}}}); err != nil {
		t.Fatal(err)
	}
	st, err := db.Table("events2")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(int64(1)); err == nil {
		t.Fatal("Append on a static table accepted")
	}
	// Appends concurrent with flushes and queries must stay coherent.
	if err := tbl.Append(int64(1), 0.5, "OK"); err != nil {
		t.Fatal(err)
	}
	n, err := tbl.All().Count()
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

// TestIngestPerShardEncodings: two flushes with very different data
// should be queryable even when the selector picks different encodings
// per shard (the per-shard rebinding path).
func TestIngestPerShardEncodings(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateIngestTable("mix", []Field{
		{Name: "k", Type: Int64Field},
		{Name: "s", Type: StringField},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1: tiny dictionary-friendly strings, constant ints.
	for i := 0; i < 300; i++ {
		if err := tbl.Append(int64(i%4), fmt.Sprintf("v%d", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Shard 2: high-cardinality strings, increasing ints.
	for i := 0; i < 300; i++ {
		if err := tbl.Append(int64(1000+i), fmt.Sprintf("unique-%08d-%08d", i, i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	// IN uses the dictionary fast path where available and rewrites to
	// OR-of-equality elsewhere; both shards must contribute.
	n, err := tbl.All().AndIn("s", "v1", "unique-00000002-00000004").Count()
	if err != nil {
		t.Fatal(err)
	}
	wantN := int64(100 + 1) // i%3==1 in shard 1, one exact match in shard 2
	if n != wantN {
		t.Fatalf("IN across differently-encoded shards = %d, want %d", n, wantN)
	}
	nk, err := tbl.Where("k", Ge, 1000).Count()
	if err != nil {
		t.Fatal(err)
	}
	if nk != 300 {
		t.Fatalf("int predicate across shards = %d, want 300", nk)
	}
}
