package codecdb

import (
	"fmt"
	"strings"

	"codecdb/internal/colstore"
	"codecdb/internal/obs"
	"codecdb/internal/ops"
)

// Explain builds the query's plan and renders the predicate tree in its
// chosen execution order, with each node's estimated selectivity and cost
// and the plan choices each filter will make — dictionary predicate
// rewrites, the SBoost kernel selected, zone-map applicability — without
// executing anything or reading any page.
func (q *Query) Explain() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	if q.t.inner.S != nil {
		return "", fmt.Errorf("codecdb: Explain is per-reader; ingest tables plan per shard at run time (use ExplainAnalyze)")
	}
	pl, err := q.plan()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Query(%s)  rows=%d filters=%d\n", q.t.Name(), q.t.NumRows(), len(q.conjuncts))
	kids := []*ops.PlanNode{pl.Root}
	if pl.Root.Pred.Kind == ops.PredAnd {
		kids = pl.Root.Kids
		if len(kids) > 1 {
			fmt.Fprintf(&b, "planned order: %d conjuncts, most selective per cost first  est-sel=%.4f\n",
				len(kids), pl.Root.Est.Sel)
		}
	}
	for i, n := range kids {
		head, tail := "├─ ", "│  "
		if i == len(kids)-1 {
			head, tail = "└─ ", "   "
		}
		explainNode(&b, n, head, tail, q.t.inner.R)
	}
	return b.String(), nil
}

// explainNode renders one plan node with tree connectors: leaves carry the
// filter's static plan choices, composites recurse in planned order.
func explainNode(b *strings.Builder, n *ops.PlanNode, head, tail string, r *colstore.Reader) {
	switch n.Pred.Kind {
	case ops.PredLeaf, ops.PredNot:
		name := "Filter[" + ops.FilterName(n.Pred.Leaf) + "]"
		if n.Pred.Kind == ops.PredNot {
			name = "Filter[Not " + ops.FilterName(n.Pred.Leaf) + "]"
		}
		fmt.Fprintf(b, "%s%s  est-sel=%.4f cost=%.0f\n", head, name, n.Est.Sel, n.Est.Cost)
		for _, d := range ops.DescribeFilter(n.Pred.Leaf, r) {
			b.WriteString(tail + "    " + d + "\n")
		}
	case ops.PredAnd:
		fmt.Fprintf(b, "%sAnd[%d conjuncts, planned order]  est-sel=%.4f\n", head, len(n.Kids), n.Est.Sel)
		explainKids(b, n, tail, r)
	case ops.PredOr:
		fmt.Fprintf(b, "%sOr[%d branches, cheap-first]  est-sel=%.4f\n", head, len(n.Kids), n.Est.Sel)
		explainKids(b, n, tail, r)
	}
}

func explainKids(b *strings.Builder, n *ops.PlanNode, tail string, r *colstore.Reader) {
	for i, k := range n.Kids {
		head2, tail2 := tail+"├─ ", tail+"│  "
		if i == len(n.Kids)-1 {
			head2, tail2 = tail+"└─ ", tail+"   "
		}
		explainNode(b, k, head2, tail2, r)
	}
}

// ExplainAnalyze executes the query under a tracer and renders the
// operator tree with per-node wall time, row counts, page-level IO,
// pool task counts, allocation bytes, and each planned conjunct's
// estimated vs actual selectivity. Evaluation runs the filter pipeline
// to completion (the equivalent of Count); gathers only appear when a
// terminal that materializes columns runs under AnalyzeTrace's context
// instead.
func (q *Query) ExplainAnalyze() (string, error) {
	root, _, err := q.AnalyzeTrace()
	if err != nil {
		return "", err
	}
	return root.Render(), nil
}

// AnalyzeTrace is ExplainAnalyze returning the raw span tree and the
// match count for programmatic consumers: the root span is the query,
// with a Plan child for the chosen conjunct order and a Pipeline child
// whose stage children (Prepare, one per filter, the terminal) carry the
// measured stats.
func (q *Query) AnalyzeTrace() (*obs.Span, int64, error) {
	if q.err != nil {
		return nil, 0, q.err
	}
	root := obs.NewSpan(fmt.Sprintf("Query(%s)", q.t.Name()))
	cq := q.WithContext(obs.ContextWithSpan(q.context(), root))
	n, err := cq.Count()
	if err != nil {
		return nil, 0, err
	}
	root.SetRows(q.t.NumRows(), n)
	root.End()
	return root, n, nil
}
