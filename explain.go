package codecdb

import (
	"fmt"
	"strings"

	"codecdb/internal/obs"
	"codecdb/internal/ops"
)

// Explain renders the query's operator tree and the plan choices each
// operator will make — dictionary predicate rewrites, the SBoost kernel
// selected, zone-map applicability — without executing anything.
func (q *Query) Explain() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Query(%s)  rows=%d filters=%d\n", q.t.Name(), q.t.NumRows(), len(q.filters))
	for i, f := range q.filters {
		head, tail := "├─ ", "│  "
		if i == len(q.filters)-1 {
			head, tail = "└─ ", "   "
		}
		b.WriteString(head + "Filter[" + ops.FilterName(f) + "]\n")
		for _, d := range ops.DescribeFilter(f, q.t.inner.R) {
			b.WriteString(tail + "    " + d + "\n")
		}
	}
	return b.String(), nil
}

// ExplainAnalyze executes the query under a tracer and renders the
// operator tree with per-node wall time, row counts, page-level IO,
// pool task counts, and allocation bytes. Evaluation runs the filter
// pipeline to completion (the equivalent of Count); gathers only appear
// when a terminal that materializes columns runs under AnalyzeTrace's
// context instead.
func (q *Query) ExplainAnalyze() (string, error) {
	root, _, err := q.AnalyzeTrace()
	if err != nil {
		return "", err
	}
	return root.Render(), nil
}

// AnalyzeTrace is ExplainAnalyze returning the raw span tree and the
// match count for programmatic consumers: the root span is the query,
// each filter and gather is a child carrying its plan details and
// measured stats.
func (q *Query) AnalyzeTrace() (*obs.Span, int64, error) {
	if q.err != nil {
		return nil, 0, q.err
	}
	root := obs.NewSpan(fmt.Sprintf("Query(%s)", q.t.Name()))
	prev := q.ctx
	q.ctx = obs.ContextWithSpan(q.context(), root)
	sel, err := q.eval()
	q.ctx = prev
	if err != nil {
		return nil, 0, err
	}
	n := int64(sel.Cardinality())
	root.SetRows(q.t.NumRows(), n)
	root.End()
	return root, n, nil
}
