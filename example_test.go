package codecdb_test

import (
	"fmt"
	"os"
	"sort"

	"codecdb"
)

// Example shows the end-to-end flow: open a database, load a table with
// automatic encoding selection, and query it through the encoding-aware
// operators.
func Example() {
	dir, _ := os.MkdirTemp("", "codecdb-example")
	defer os.RemoveAll(dir)
	db, _ := codecdb.Open(dir)
	defer db.Close()

	statuses := [][]byte{}
	codes := []string{"OK", "ERROR", "OK", "OK", "RETRY", "ERROR"}
	for _, c := range codes {
		statuses = append(statuses, []byte(c))
	}
	tbl, _ := db.LoadTable("events", []codecdb.Column{
		{Name: "id", Ints: []int64{1, 2, 3, 4, 5, 6}},
		{Name: "status", Strings: statuses},
	})

	n, _ := tbl.Where("status", codecdb.Eq, "ERROR").Count()
	fmt.Println("errors:", n)

	ids, _ := tbl.Where("status", codecdb.Eq, "ERROR").Ints("id")
	fmt.Println("error ids:", ids)
	// Output:
	// errors: 2
	// error ids: [2 6]
}

// ExampleQuery_GroupCount groups matching rows by a dictionary column
// using array aggregation over dictionary codes.
func ExampleQuery_GroupCount() {
	dir, _ := os.MkdirTemp("", "codecdb-example")
	defer os.RemoveAll(dir)
	db, _ := codecdb.Open(dir)
	defer db.Close()

	modes := [][]byte{}
	for i := 0; i < 90; i++ {
		modes = append(modes, []byte([]string{"AIR", "RAIL", "SHIP"}[i%3]))
	}
	qty := make([]int64, 90)
	for i := range qty {
		qty[i] = int64(i)
	}
	tbl, _ := db.LoadTable("shipments", []codecdb.Column{
		{Name: "mode", Strings: modes},
		{Name: "qty", Ints: qty},
	})

	groups, _ := tbl.Where("qty", codecdb.Lt, 30).GroupCount("mode")
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, groups[k])
	}
	// Output:
	// AIR=10
	// RAIL=10
	// SHIP=10
}

// ExampleTrainSelector trains the data-driven encoding selector on a few
// columns and applies it to new data.
func ExampleTrainSelector() {
	sorted := make([]int64, 2000)
	lowCard := make([]int64, 2000)
	for i := range sorted {
		sorted[i] = int64(i)
		lowCard[i] = int64((i * 7) % 3)
	}
	sel, _ := codecdb.TrainSelector([]codecdb.Column{
		{Name: "sorted", Ints: sorted},
		{Name: "lowCard", Ints: lowCard},
	}, codecdb.TrainOptions{Hidden: 16, Epochs: 60, Seed: 1})

	fmt.Println("sorted column  →", sel.SelectInt(sorted))
	fmt.Println("lowCard column →", sel.SelectInt(lowCard))
	// Output:
	// sorted column  → DELTA_BINARY_PACKED
	// lowCard column → DICTIONARY
}
