package codecdb

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"codecdb/internal/exec"
	"codecdb/internal/ops"
)

func robustnessDB(t *testing.T) (*DB, *Table) {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	n := 20000
	ints := make([]int64, n)
	strs := make([][]byte, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(i % 97)
		strs[i] = []byte{byte('a' + i%7)}
	}
	// Small row groups: cancellation is polled between row groups, so the
	// row-group size bounds how promptly a deadline can take effect.
	tbl, err := db.LoadTable("t", []Column{
		{Name: "v", Ints: ints},
		{Name: "s", Strings: strs},
	}, LoadOptions{RowGroupRows: 64, PageRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// TestQueryCancellation covers the acceptance criterion: a query whose
// context is already cancelled returns context.Canceled, and a deadline
// that expires mid-scan surfaces context.DeadlineExceeded — no hang, no
// partial result.
func TestQueryCancellation(t *testing.T) {
	_, tbl := robustnessDB(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tbl.Where("v", Eq, 3).WithContext(ctx).Count(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
	}
	if _, err := tbl.All().WithContext(ctx).Ints("v"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled gather: err = %v, want context.Canceled", err)
	}

	// A filter slow enough that the deadline always lands mid-scan.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer dcancel()
	slow := tbl.All().WithContext(dctx).AndPred(rawPred(&ops.IntPredicateFilter{
		Col: "v",
		Pred: func(v int64) bool {
			time.Sleep(50 * time.Microsecond)
			return v == 3
		},
	}))
	start := time.Now()
	_, err := slow.Count()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline mid-scan: err = %v, want context.DeadlineExceeded", err)
	}
	// "Promptly": the full scan takes tens of seconds at this sleep rate;
	// the deadline must cut the scan off after at most one row group per
	// worker (sleep granularity makes each predicate call ~1ms, so one
	// 64-row group costs well under a second).
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
}

// TestWorkerPanicBecomesError covers the acceptance criterion: a panic
// inside pool-executed work surfaces as an error carrying the panic value
// and a stack trace — the process does not crash.
func TestWorkerPanicBecomesError(t *testing.T) {
	_, tbl := robustnessDB(t)
	q := tbl.All().AndPred(rawPred(&ops.IntPredicateFilter{
		Col:  "v",
		Pred: func(v int64) bool { panic("predicate exploded") },
	}))
	_, err := q.Count()
	if err == nil {
		t.Fatal("panicking predicate must surface as an error")
	}
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *exec.PanicError", err, err)
	}
	if pe.Value != "predicate exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("PanicError must carry a stack trace")
	}
}

// TestTableVerifyCleanAndCancelled checks the public scrub entry points.
func TestTableVerifyCleanAndCancelled(t *testing.T) {
	db, tbl := robustnessDB(t)
	if err := tbl.Verify(context.Background()); err != nil {
		t.Fatalf("clean table failed Verify: %v", err)
	}
	if err := db.Verify(context.Background()); err != nil {
		t.Fatalf("clean db failed Verify: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tbl.Verify(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Verify: err = %v, want context.Canceled", err)
	}
}
