package codecdb

import (
	"context"
	"testing"

	"codecdb/internal/exec"
	"codecdb/internal/obs"
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

// BenchmarkFilterHotPathTraced runs the BenchmarkFilterHotPath scans
// through the instrumented ops.ApplyFilter seam: the Off variants use a
// bare context (the production default — one context lookup, no span),
// the On variants attach a fresh span per op and pay the full per-node
// accounting including the ReadMemStats alloc snapshots. BENCH_PR3.json
// records both sections so the tracer's cost stays visible across PRs.
func BenchmarkFilterHotPathTraced(b *testing.B) {
	const n = 1 << 19
	r := q6Table(b, n)
	pool := exec.NewPool(0)
	run := func(f ops.Filter, traced bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := context.Background()
				var root *obs.Span
				if traced {
					root = obs.NewSpan("bench")
					ctx = obs.ContextWithSpan(ctx, root)
				}
				if _, err := ops.ApplyFilter(ctx, f, r, pool, nil); err != nil {
					b.Fatal(err)
				}
				root.End()
			}
			reportPageStats(b, r)
		}
	}
	dict := &ops.DictFilter{Col: "shipdate", Op: sboost.OpLt, IntValue: 40}
	packed := &ops.BitPackedFilter{Col: "quantity", Op: sboost.OpLt, Value: 24}
	b.Run("DictLt/Off", run(dict, false))
	b.Run("DictLt/On", run(dict, true))
	b.Run("BitPackedLt/Off", run(packed, false))
	b.Run("BitPackedLt/On", run(packed, true))
}
