package codecdb

import (
	"strings"
	"testing"

	"codecdb/internal/obs"
)

// TestExplainStatic checks Explain renders the operator tree and the
// plan choices — dict rewrite, kernel, zone-map use — without executing.
func TestExplainStatic(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 2000)
	io := tbl.IOStats()

	out, err := tbl.Where("status", Eq, "ERROR").And("level", Lt, 3).Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Query(events)",
		"filters=2",
		`DictFilter(status = "ERROR")`,
		"DictFilter(level < 3)",
		"dict rewrite",
		"kernel=sboost.ScanPacked",
		"zone-maps=key-domain",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
	// Explain must not have touched any pages (dictionaries are cached
	// metadata; page counters must be untouched).
	if after := tbl.IOStats(); after.PagesRead != io.PagesRead {
		t.Fatalf("Explain read pages: before=%+v after=%+v", io, after)
	}
}

// TestExplainAnalyzeConsistentWithIOStats is the acceptance check: on a
// two-predicate query, the per-operator page counters in the rendered
// span tree must sum to exactly the Table.IOStats() delta of the run.
func TestExplainAnalyzeConsistentWithIOStats(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 4000)

	tbl.ResetIOStats()
	before := tbl.IOStats()
	root, n, err := tbl.Where("status", Eq, "ERROR").And("level", Lt, 2).AnalyzeTrace()
	if err != nil {
		t.Fatal(err)
	}
	after := tbl.IOStats()

	if rowsIn, rowsOut := root.Rows(); rowsIn != 4000 || rowsOut != n {
		t.Fatalf("root rows = %d→%d, want 4000→%d", rowsIn, rowsOut, n)
	}
	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("children = %d, want Plan + Pipeline", len(kids))
	}
	if kids[0].Name() != "Plan" {
		t.Fatalf("first child = %s, want the Plan span", kids[0].Name())
	}
	pipe := kids[1]
	if !strings.HasPrefix(pipe.Name(), "Pipeline[") {
		t.Fatalf("second child = %s, want the Pipeline span", pipe.Name())
	}
	// The pipeline's stage children: Prepare, one per planned filter, the
	// terminal.
	stages := pipe.Children()
	if len(stages) != 4 {
		t.Fatalf("pipeline stages = %d, want Prepare + 2 filters + Count", len(stages))
	}
	if stages[0].Name() != "Prepare" {
		t.Fatalf("first stage = %s, want Prepare", stages[0].Name())
	}
	var filters []*obs.Span
	for _, s := range stages[1:] {
		if strings.HasPrefix(s.Name(), "Filter[") {
			filters = append(filters, s)
		}
	}
	if len(filters) != 2 {
		t.Fatalf("filter stages = %d, want 2", len(filters))
	}
	for _, c := range filters {
		if c.Duration() <= 0 {
			t.Errorf("span %s has no busy time", c.Name())
		}
	}
	// Selection pushdown, now per row group: the first planned filter sees
	// the whole table, every later filter sees exactly the previous
	// filter's survivors.
	in0, out0 := filters[0].Rows()
	if in0 != 4000 {
		t.Errorf("span %s rows in = %d, want 4000", filters[0].Name(), in0)
	}
	if in1, _ := filters[1].Rows(); in1 != out0 {
		t.Errorf("selection not pushed: span %s rows in = %d, want %d (previous filter's rows out)",
			filters[1].Name(), in1, out0)
	}
	// The invariant, now at two levels: the root's direct children (Plan +
	// Pipeline) sum to the IOStats delta, and within the pipeline the
	// stage children account every page of the pipeline's own delta.
	delta := obs.SpanIO{
		PagesRead:         after.PagesRead - before.PagesRead,
		PagesPruned:       after.PagesPruned - before.PagesPruned,
		PagesSkipped:      after.PagesSkipped - before.PagesSkipped,
		BytesRead:         after.BytesRead - before.BytesRead,
		BytesDecompressed: after.BytesDecompressed - before.BytesDecompressed,
	}
	if sum := root.SumIO(); sum != delta {
		t.Fatalf("span IO sum %+v != IOStats delta %+v (before=%+v after=%+v)", sum, delta, before, after)
	}
	if sum := pipe.SumIO(); sum != pipe.IO() {
		t.Fatalf("pipeline stage IO sum %+v != pipeline delta %+v", sum, pipe.IO())
	}
	if pipe.IO().PagesRead == 0 {
		t.Fatal("trace recorded no page reads; instrumentation is not wired")
	}

	out := root.Render()
	for _, want := range []string{"Query(events)", "Pipeline[count]", "Prepare", "├─ Filter[", "time=", "pages[read=", "selectivity est=", "selection-pushed:", "morsels="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeGather checks gathers run under AnalyzeTrace's
// context appear... gathers run in terminals, which ExplainAnalyze does
// not invoke; instead verify the traced gather path directly through a
// terminal driven with a span-carrying context.
func TestTracedGatherSpans(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 2000)

	root := obs.NewSpan("terminal")
	q := tbl.Where("status", Eq, "RETRY")
	q = q.WithContext(obs.ContextWithSpan(q.context(), root))
	vals, err := q.Ints("ts")
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	// The gather is now the pipeline's terminal stage, nested under the
	// Pipeline child span.
	gather := findSpan(root, "Gather[ts]")
	if gather == nil {
		t.Fatalf("no gather span in tree: %s", root.Render())
	}
	if _, out := gather.Rows(); out != int64(len(vals)) {
		t.Fatalf("gather rows out = %d, want %d", out, len(vals))
	}
}

// findSpan returns the first span in the tree whose name has the prefix.
func findSpan(s *obs.Span, prefix string) *obs.Span {
	if strings.HasPrefix(s.Name(), prefix) {
		return s
	}
	for _, c := range s.Children() {
		if found := findSpan(c, prefix); found != nil {
			return found
		}
	}
	return nil
}

// TestQueryMetricsObserved checks eval() feeds the process-wide query
// counter and latency histogram.
func TestQueryMetricsObserved(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 1000)
	before := queriesTotal.Value()
	hBefore := queryLatency.Count()
	if _, err := tbl.Where("level", Ge, 3).Count(); err != nil {
		t.Fatal(err)
	}
	if queriesTotal.Value() != before+1 {
		t.Fatalf("queriesTotal = %d, want %d", queriesTotal.Value(), before+1)
	}
	if queryLatency.Count() != hBefore+1 {
		t.Fatalf("latency histogram count = %d, want %d", queryLatency.Count(), hBefore+1)
	}
}

// TestEncodingDecisionEvents checks LoadTable emits one structured
// selector event per auto-encoded column, carrying features and scores.
func TestEncodingDecisionEvents(t *testing.T) {
	var got []obs.Event
	prev := obs.SetEventSink(func(e obs.Event) { got = append(got, e) })
	defer obs.SetEventSink(prev)

	db := openTestDB(t)
	loadEvents(t, db, 1000) // ts and latency auto-encode; status/level forced

	decisions := map[string]obs.Event{}
	for _, e := range got {
		if e.Name == "encoding_decision" {
			decisions[e.Fields["column"].(string)] = e
		}
	}
	e, ok := decisions["ts"]
	if !ok {
		t.Fatalf("no encoding_decision for ts; events = %+v", got)
	}
	if e.Fields["mode"] != "exhaustive" {
		t.Fatalf("mode = %v", e.Fields["mode"])
	}
	if e.Fields["chosen"] != "DELTA_BINARY_PACKED" {
		t.Fatalf("chosen = %v", e.Fields["chosen"])
	}
	feats, ok := e.Fields["features"].([]float64)
	if !ok || len(feats) == 0 {
		t.Fatalf("features = %v", e.Fields["features"])
	}
	scores, ok := e.Fields["scores"].(map[string]float64)
	if !ok || len(scores) == 0 {
		t.Fatalf("scores = %v", e.Fields["scores"])
	}
	if _, ok := decisions["status"]; ok {
		t.Fatal("forced column must not emit a selection decision")
	}
}
