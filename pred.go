package codecdb

import (
	"fmt"

	"codecdb/internal/colstore"
	"codecdb/internal/ops"
)

// Pred is a composable predicate specification: leaves compare one column
// (or two dictionary-sharing columns), and AllOf/AnyOf/Not compose them
// into a tree. A Pred is an inert value — it binds to a table's schema
// only when passed to Table.Query, which validates every referenced
// column and plans an execution order from the table's metadata:
//
//	q := t.Query(codecdb.AllOf(
//	    codecdb.ColEq("status", "ERROR"),
//	    codecdb.AnyOf(
//	        codecdb.Col("level", codecdb.Ge, 4),
//	        codecdb.In("region", "eu-west", "eu-north"),
//	    ),
//	))
//
// The fluent Where/And builders construct the same trees under the hood.
type Pred struct {
	kind   predKind
	col    string
	colB   string
	op     CmpOp
	value  any
	values []any
	match  func([]byte) bool
	raw    ops.Filter
	kids   []Pred
}

type predKind int

const (
	predZero predKind = iota // zero Pred: matches everything
	predCmp
	predIn
	predLike
	predCols
	predAll
	predAny
	predNot
	predRaw
)

// Col compares a column against a constant: `col op value`. Value may be
// int, int64, float64, string, or []byte and must match the column type.
func Col(col string, op CmpOp, value any) Pred {
	return Pred{kind: predCmp, col: col, op: op, value: value}
}

// ColEq is Col with the equality operator.
func ColEq(col string, value any) Pred { return Col(col, Eq, value) }

// In matches rows whose column value is one of values. The column must be
// dictionary-encoded; values must be strings/[]byte for string columns and
// integers for integer columns.
func In(col string, values ...any) Pred {
	return Pred{kind: predIn, col: col, values: values}
}

// Like matches rows of a dictionary-encoded string column whose value
// satisfies match; match runs once per distinct dictionary entry, not once
// per row.
func Like(col string, match func([]byte) bool) Pred {
	return Pred{kind: predLike, col: col, match: match}
}

// Cols compares two columns row-by-row: `colA op colB`. Both columns must
// share one order-preserving dictionary (load them with the same
// DictGroup).
func Cols(colA string, op CmpOp, colB string) Pred {
	return Pred{kind: predCols, col: colA, op: op, colB: colB}
}

// AllOf is the conjunction of preds. The planner reorders the conjuncts by
// estimated selectivity per unit cost; an empty AllOf matches every row.
func AllOf(preds ...Pred) Pred {
	if len(preds) == 1 {
		return preds[0]
	}
	return Pred{kind: predAll, kids: preds}
}

// AnyOf is the disjunction of preds, evaluated per row group with bitmap
// union and branch short-circuiting. An empty AnyOf matches no row.
func AnyOf(preds ...Pred) Pred {
	if len(preds) == 1 {
		return preds[0]
	}
	return Pred{kind: predAny, kids: preds}
}

// Not negates a leaf predicate (Col/ColEq/In/Like/Cols). Negating a
// composite reports an error at Query time; rewrite with De Morgan's laws
// instead.
func Not(p Pred) Pred { return Pred{kind: predNot, kids: []Pred{p}} }

// rawPred wraps a prebuilt operator-layer filter directly, bypassing the
// public constructors' validation. Test hook for injecting behaviors (slow
// or panicking predicates) the public surface refuses to build.
func rawPred(f ops.Filter) Pred { return Pred{kind: predRaw, raw: f} }

// bindPred validates p against the table's schema and encodings and lowers
// it to the operator-layer predicate IR. All validation happens here — at
// build time, against metadata only — so malformed predicates surface from
// Query/And* (via Query.Err) rather than mid-scan with a worse message.
//
// Sharded (ingest) tables have no single reader, so binding there only
// validates against the schema; terminals re-bind per shard (each shard's
// encodings may differ) and evaluate the in-memory tail row-wise.
func (t *Table) bindPred(p Pred) (*ops.Pred, error) {
	if t.inner.S != nil {
		if err := validateShardedPred(t.inner.S.Cols(), p); err != nil {
			return nil, err
		}
		return ops.AndPred(), nil // placeholder; sharded terminals bind per shard
	}
	return bindPredOn(t.inner.R, p, false)
}

// bindPredOn lowers p against one reader. perShard enables the sharded
// fallbacks for encoding-dependent predicates: IN rewrites to an OR of
// equality filters on shards whose column the selector did not
// dictionary-encode, and LIKE falls back to a row-wise string filter —
// each shard gets the fastest plan its own encodings allow.
func bindPredOn(r *colstore.Reader, p Pred, perShard bool) (*ops.Pred, error) {
	switch p.kind {
	case predZero:
		return ops.AndPred(), nil // empty conjunction: all rows
	case predRaw:
		return ops.LeafPred(p.raw), nil
	case predCmp:
		f, err := filterFor(r, p.col, p.op, p.value)
		if err != nil {
			return nil, err
		}
		return ops.LeafPred(f), nil
	case predIn:
		f, err := inFilterFor(r, p.col, p.values)
		if err != nil {
			if !perShard {
				return nil, err
			}
			kids := make([]*ops.Pred, len(p.values))
			for i, v := range p.values {
				ef, err := filterFor(r, p.col, Eq, v)
				if err != nil {
					return nil, err
				}
				kids[i] = ops.LeafPred(ef)
			}
			if len(kids) == 0 {
				return nil, fmt.Errorf("codecdb: IN on %s needs at least one value", p.col)
			}
			return ops.OrPred(kids...), nil
		}
		return ops.LeafPred(f), nil
	case predLike:
		f, err := likeFilterFor(r, p.col, p.match)
		if err != nil {
			if !perShard {
				return nil, err
			}
			_, c, cerr := r.Column(p.col)
			if cerr != nil || c.Type != colstore.TypeString || p.match == nil {
				return nil, err
			}
			return ops.LeafPred(&ops.StrPredicateFilter{Col: p.col, Pred: p.match}), nil
		}
		return ops.LeafPred(f), nil
	case predCols:
		f, err := twoColFilterFor(r, p.col, p.op, p.colB)
		if err != nil {
			return nil, err
		}
		return ops.LeafPred(f), nil
	case predAll:
		kids := make([]*ops.Pred, len(p.kids))
		for i, k := range p.kids {
			kp, err := bindPredOn(r, k, perShard)
			if err != nil {
				return nil, err
			}
			kids[i] = kp
		}
		return ops.AndPred(kids...), nil
	case predAny:
		if len(p.kids) == 0 {
			return nil, fmt.Errorf("codecdb: AnyOf needs at least one predicate")
		}
		kids := make([]*ops.Pred, len(p.kids))
		for i, k := range p.kids {
			kp, err := bindPredOn(r, k, perShard)
			if err != nil {
				return nil, err
			}
			kids[i] = kp
		}
		return ops.OrPred(kids...), nil
	case predNot:
		inner, err := bindPredOn(r, p.kids[0], perShard)
		if err != nil {
			return nil, err
		}
		if inner.Kind != ops.PredLeaf {
			return nil, fmt.Errorf("codecdb: Not supports only leaf predicates (Col/In/Like/Cols); rewrite composites with De Morgan's laws")
		}
		return ops.NotPred(inner.Leaf), nil
	}
	return nil, fmt.Errorf("codecdb: invalid predicate")
}

// inFilterFor validates an IN predicate at build time — column exists, is
// dictionary-encoded, and the value types match the column type — and
// constructs the filter.
func inFilterFor(r *colstore.Reader, col string, values []any) (ops.Filter, error) {
	_, c, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	if c.Encoding != Dictionary && c.Encoding != DictRLE {
		return nil, fmt.Errorf("codecdb: IN needs a dictionary-encoded column; %s is %v", col, c.Encoding)
	}
	var strs [][]byte
	var ints []int64
	for _, v := range values {
		switch x := v.(type) {
		case string:
			strs = append(strs, []byte(x))
		case []byte:
			strs = append(strs, x)
		case int:
			ints = append(ints, int64(x))
		case int64:
			ints = append(ints, x)
		default:
			return nil, fmt.Errorf("codecdb: unsupported IN value %T for column %s", v, col)
		}
	}
	switch {
	case c.Type == colstore.TypeInt64 && len(strs) > 0:
		return nil, fmt.Errorf("codecdb: string IN values for integer column %s", col)
	case c.Type == colstore.TypeString && len(ints) > 0:
		return nil, fmt.Errorf("codecdb: integer IN values for string column %s", col)
	}
	return &ops.DictInFilter{Col: col, StrValues: strs, IntValues: ints}, nil
}

// likeFilterFor validates a LIKE predicate at build time: the column must
// exist and be a dictionary-encoded string column.
func likeFilterFor(r *colstore.Reader, col string, match func([]byte) bool) (ops.Filter, error) {
	_, c, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	if c.Type != colstore.TypeString {
		return nil, fmt.Errorf("codecdb: LIKE needs a string column; %s is %v", col, c.Type)
	}
	if c.Encoding != Dictionary && c.Encoding != DictRLE {
		return nil, fmt.Errorf("codecdb: LIKE needs a dictionary-encoded column; %s is %v", col, c.Encoding)
	}
	if match == nil {
		return nil, fmt.Errorf("codecdb: LIKE on %s needs a non-nil match function", col)
	}
	return &ops.DictLikeFilter{Col: col, Match: match}, nil
}

// twoColFilterFor validates a two-column comparison at build time: both
// columns must exist and share one order-preserving dictionary.
func twoColFilterFor(r *colstore.Reader, colA string, op CmpOp, colB string) (ops.Filter, error) {
	ca, _, err := r.Column(colA)
	if err != nil {
		return nil, err
	}
	cb, _, err := r.Column(colB)
	if err != nil {
		return nil, err
	}
	if !r.SharedDict(ca, cb) {
		return nil, fmt.Errorf("codecdb: %s and %s do not share a dictionary (load both with the same DictGroup)", colA, colB)
	}
	return &ops.TwoColumnFilter{ColA: colA, ColB: colB, Op: op}, nil
}
