package codecdb

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"codecdb/internal/colstore"
)

// checkPrefetchAgree runs every terminal with the page prefetcher on and
// off and fails on any mismatch. Unlike the engine-equivalence check,
// both sides run the same pipelined plan, so every terminal — SumFloat
// included — must be byte-identical: prefetching may only change how
// bytes arrive, never which rows they decode to.
func checkPrefetchAgree(t *testing.T, iter int, q *Query) {
	t.Helper()
	nq := q.withoutPrefetch()

	gotN, err := q.Count()
	if err != nil {
		t.Fatalf("iter %d: prefetch Count: %v", iter, err)
	}
	wantN, err := nq.Count()
	if err != nil {
		t.Fatalf("iter %d: no-prefetch Count: %v", iter, err)
	}
	if gotN != wantN {
		t.Fatalf("iter %d: Count = %d, no-prefetch = %d", iter, gotN, wantN)
	}

	gotIDs, err := q.RowIDs()
	if err != nil {
		t.Fatalf("iter %d: prefetch RowIDs: %v", iter, err)
	}
	wantIDs, err := nq.RowIDs()
	if err != nil {
		t.Fatalf("iter %d: no-prefetch RowIDs: %v", iter, err)
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("iter %d: RowIDs diverge: prefetch %d rows, no-prefetch %d rows", iter, len(gotIDs), len(wantIDs))
	}

	gotInts, err := q.Ints("small")
	if err != nil {
		t.Fatalf("iter %d: prefetch Ints: %v", iter, err)
	}
	wantInts, err := nq.Ints("small")
	if err != nil {
		t.Fatalf("iter %d: no-prefetch Ints: %v", iter, err)
	}
	if !reflect.DeepEqual(gotInts, wantInts) {
		t.Fatalf("iter %d: Ints diverge: prefetch %d vals, no-prefetch %d vals", iter, len(gotInts), len(wantInts))
	}

	gotStrs, err := q.Strings("cat")
	if err != nil {
		t.Fatalf("iter %d: prefetch Strings: %v", iter, err)
	}
	wantStrs, err := nq.Strings("cat")
	if err != nil {
		t.Fatalf("iter %d: no-prefetch Strings: %v", iter, err)
	}
	if len(gotStrs) != len(wantStrs) {
		t.Fatalf("iter %d: Strings diverge: prefetch %d vals, no-prefetch %d vals", iter, len(gotStrs), len(wantStrs))
	}
	for i := range gotStrs {
		if string(gotStrs[i]) != string(wantStrs[i]) {
			t.Fatalf("iter %d: Strings[%d] = %q, no-prefetch %q", iter, i, gotStrs[i], wantStrs[i])
		}
	}

	gotG, err := q.GroupCount("cat")
	if err != nil {
		t.Fatalf("iter %d: prefetch GroupCount: %v", iter, err)
	}
	wantG, err := nq.GroupCount("cat")
	if err != nil {
		t.Fatalf("iter %d: no-prefetch GroupCount: %v", iter, err)
	}
	if !reflect.DeepEqual(gotG, wantG) {
		t.Fatalf("iter %d: GroupCount = %v, no-prefetch = %v", iter, gotG, wantG)
	}

	gotS, err := q.SumFloat("score")
	if err != nil {
		t.Fatalf("iter %d: prefetch SumFloat: %v", iter, err)
	}
	wantS, err := nq.SumFloat("score")
	if err != nil {
		t.Fatalf("iter %d: no-prefetch SumFloat: %v", iter, err)
	}
	if math.Float64bits(gotS) != math.Float64bits(wantS) {
		t.Fatalf("iter %d: SumFloat = %v, no-prefetch = %v", iter, gotS, wantS)
	}
}

// TestPrefetchMatchesSynchronous is the prefetch-equivalence property:
// for random predicate trees over every encoding, every terminal with
// async page prefetch enabled agrees with the same pipeline reading
// synchronously — on v2.1 files and on legacy v1 files. After each
// round the bytes-in-flight gauge must be back at zero: every pooled
// buffer the fetcher staged was released.
func TestPrefetchMatchesSynchronous(t *testing.T) {
	const n = 3000
	db := openTestDB(t)
	formats := []struct {
		name    string
		version int
	}{
		{"v2.1", 0},
		{"v1", colstore.FormatV1},
	}
	for fi, f := range formats {
		f := f
		t.Run(f.name, func(t *testing.T) {
			d := propTable(t, db, fmt.Sprintf("preprop%d", fi), n, f.version)
			tbl, err := db.Table(fmt.Sprintf("preprop%d", fi))
			if err != nil {
				t.Fatal(err)
			}
			before := colstore.GlobalStats()
			// The degenerate query: no predicate, terminal-only prefetch.
			checkPrefetchAgree(t, -1, tbl.All())
			for iter := 0; iter < 25; iter++ {
				rng := rand.New(rand.NewSource(int64(9000*fi + iter)))
				p, _ := genPred(rng, d, 1+rng.Intn(2))
				q := tbl.Query(p)
				if err := q.Err(); err != nil {
					t.Fatalf("iter %d: build error: %v", iter, err)
				}
				checkPrefetchAgree(t, iter, q)
			}
			after := colstore.GlobalStats()
			if after.BytesInFlight != 0 {
				t.Fatalf("bytes-in-flight gauge = %d after all queries, want 0", after.BytesInFlight)
			}
			// Guard against the property passing vacuously: the fetcher
			// must have served (or at least raced for) pages.
			if served := (after.PrefetchHits + after.PrefetchMisses) - (before.PrefetchHits + before.PrefetchMisses); served == 0 {
				t.Fatal("prefetcher never engaged: 0 hits and 0 misses across all iterations")
			}
		})
	}
}
