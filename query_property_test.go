package codecdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestQueryEquivalenceProperty loads randomly generated tables with
// randomly assigned encodings and checks that every predicate the public
// API can express returns exactly what a naive in-memory evaluation
// returns — regardless of which operator path (in-situ dictionary scan,
// delta filter, decode-and-test) the engine picked.
func TestQueryEquivalenceProperty(t *testing.T) {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) + 100))
			n := 500 + rng.Intn(3000)

			ints := make([]int64, n)
			strs := make([][]byte, n)
			vocab := make([][]byte, 2+rng.Intn(20))
			for i := range vocab {
				vocab[i] = []byte(fmt.Sprintf("val-%02d", i*3))
			}
			sorted := rng.Intn(2) == 0
			for i := 0; i < n; i++ {
				if sorted {
					ints[i] = int64(i / (1 + rng.Intn(3)))
				} else {
					ints[i] = rng.Int63n(200)
				}
				strs[i] = vocab[rng.Intn(len(vocab))]
			}
			encs := []Encoding{Dictionary, Delta, BitPacked, Plain, RLE}
			intEnc := encs[rng.Intn(len(encs))]

			db, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.LoadTable("t", []Column{
				{Name: "num", Ints: ints, ForceEncoding: intEnc, Forced: true},
				{Name: "tag", Strings: strs, ForceEncoding: Dictionary, Forced: true},
			}, LoadOptions{RowGroupRows: 512 + rng.Intn(1024), PageRows: 64 + rng.Intn(256)})
			if err != nil {
				t.Fatal(err)
			}

			for probe := 0; probe < 12; probe++ {
				op := ops[rng.Intn(len(ops))]
				target := rng.Int63n(220) - 10 // includes out-of-domain values
				got, err := tbl.Where("num", op, target).Count()
				if err != nil {
					t.Fatalf("enc=%v op=%v target=%d: %v", intEnc, op, target, err)
				}
				var want int64
				for _, v := range ints {
					if matchRef(v, op, target) {
						want++
					}
				}
				if got != want {
					t.Fatalf("enc=%v num %v %d: got %d, want %d", intEnc, op, target, got, want)
				}

				sv := vocab[rng.Intn(len(vocab))]
				gotS, err := tbl.Where("tag", op, string(sv)).Count()
				if err != nil {
					t.Fatal(err)
				}
				var wantS int64
				for _, v := range strs {
					if matchRefStr(string(v), op, string(sv)) {
						wantS++
					}
				}
				if gotS != wantS {
					t.Fatalf("tag %v %q: got %d, want %d", op, sv, gotS, wantS)
				}

				// Conjunction across both columns.
				gotC, err := tbl.Where("num", op, target).And("tag", Eq, string(sv)).Count()
				if err != nil {
					t.Fatal(err)
				}
				var wantC int64
				for i := range ints {
					if matchRef(ints[i], op, target) && string(strs[i]) == string(sv) {
						wantC++
					}
				}
				if gotC != wantC {
					t.Fatalf("conjunction: got %d, want %d", gotC, wantC)
				}
			}

			// Gathered values must correspond row-for-row.
			rowsGot, err := tbl.Where("tag", Eq, string(vocab[0])).Ints("num")
			if err != nil {
				t.Fatal(err)
			}
			var rowsWant []int64
			for i := range strs {
				if string(strs[i]) == string(vocab[0]) {
					rowsWant = append(rowsWant, ints[i])
				}
			}
			if len(rowsGot) != len(rowsWant) {
				t.Fatalf("gather length %d, want %d", len(rowsGot), len(rowsWant))
			}
			for i := range rowsWant {
				if rowsGot[i] != rowsWant[i] {
					t.Fatalf("gather row %d: %d, want %d", i, rowsGot[i], rowsWant[i])
				}
			}
		})
	}
}

func matchRef(v int64, op CmpOp, t int64) bool {
	switch op {
	case Eq:
		return v == t
	case Ne:
		return v != t
	case Lt:
		return v < t
	case Le:
		return v <= t
	case Gt:
		return v > t
	default:
		return v >= t
	}
}

func matchRefStr(v string, op CmpOp, t string) bool {
	switch op {
	case Eq:
		return v == t
	case Ne:
		return v != t
	case Lt:
		return v < t
	case Le:
		return v <= t
	case Gt:
		return v > t
	default:
		return v >= t
	}
}
