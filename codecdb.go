// Package codecdb is an encoding-aware columnar database engine — a Go
// implementation of CodecDB (Jiang et al., SIGMOD 2021, "Good to the Last
// Bit: Data-Driven Encoding with CodecDB").
//
// CodecDB couples the storage and query layers to the data encoding
// schemes. On the storage side, a learned selector picks the lightweight
// encoding (bit-packing, RLE, delta, order-preserving dictionary, ...)
// with the best compression ratio for each column from a head sample of
// its data. On the query side, filter, aggregation, and join operators
// work directly on the encoded representation: predicates are rewritten
// to dictionary keys and evaluated on bit-packed streams without decoding
// a single row, aggregations index flat arrays with dictionary codes, and
// selections flow between operators as bitmaps with block-, page-, and
// row-level data skipping.
//
// # Quick start
//
//	db, _ := codecdb.Open(dir)
//	db.LoadTable("events", []codecdb.Column{
//	    {Name: "ts", Ints: timestamps},        // encoding picked per column
//	    {Name: "status", Strings: statuses},
//	})
//	t, _ := db.Table("events")
//	n, _ := t.Where("status", codecdb.Eq, "ERROR").Count()
//
// The internal packages contain the full machinery: the columnar file
// format (internal/colstore), the codecs (internal/encoding), the SWAR
// scan kernels (internal/sboost), the feature extraction and neural
// ranking model (internal/features, internal/mlp, internal/selector), the
// operators (internal/ops), and the TPC-H / SSB reproduction harnesses
// (internal/tpch, internal/ssb).
package codecdb

import (
	"context"
	"fmt"

	"codecdb/internal/colstore"
	"codecdb/internal/core"
	"codecdb/internal/encoding"
	"codecdb/internal/memtable"
	"codecdb/internal/selector"
	"codecdb/internal/vfs"
)

// CorruptionError is the typed error readers return when stored data fails
// checksum verification; it names the file, column, row group, and page.
// Use errors.As to detect it.
type CorruptionError = colstore.CorruptionError

// Encoding names a column encoding scheme for forced choices and reports.
type Encoding = encoding.Kind

// Re-exported encoding schemes.
const (
	Plain       = encoding.KindPlain
	BitPacked   = encoding.KindBitPacked
	RLE         = encoding.KindRLE
	Delta       = encoding.KindDelta
	Dictionary  = encoding.KindDict
	DictRLE     = encoding.KindDictRLE
	BitVector   = encoding.KindBitVector
	DeltaLength = encoding.KindDeltaLength
	XorFloat    = encoding.KindXorFloat
)

// DB is a CodecDB database rooted at a directory.
type DB struct {
	inner *core.DB
}

// Options configures Open.
type Options struct {
	// Threads bounds operator and data parallelism (default GOMAXPROCS).
	Threads int
	// Selector is a trained encoding selector (see TrainSelector); nil
	// falls back to exhaustive selection on the head sample.
	Selector *Selector
	// Logger receives the engine's structured events — flush,
	// quarantine, recovery, torn-tail truncation, slow queries — as one
	// JSON-friendly record each, carrying the query/flush ID that joins
	// logs with metrics and traces. Nil drops every event (the
	// instrumented paths are nil-safe, like the tracer). Build one with
	// NewJSONLogger or wrap an existing *slog.Logger with NewLogger.
	Logger *Logger
	// PageCacheBytes, when positive, sizes a byte-budgeted cache of
	// decompressed page bodies shared by every table this DB opens:
	// repeat scans of hot pages skip both the read and the decompress.
	// Zero disables it (the historical default). The serving layer turns
	// this on so concurrent queries over the same table decompress each
	// page once.
	PageCacheBytes int64
	// FS routes every file the engine touches through a virtual
	// filesystem; nil selects the real one. Test seam for fault and
	// latency injection (see internal/vfs.FaultFS).
	FS vfs.FS
}

// Open opens or creates a database at dir.
func Open(dir string, opts ...Options) (*DB, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	var learned *selector.Learned
	if o.Selector != nil {
		learned = o.Selector.inner
	}
	inner, err := core.Open(dir, core.Options{
		OperatorThreads: o.Threads,
		DataThreads:     o.Threads,
		Selector:        learned,
		Logger:          o.Logger,
		FS:              o.FS,
		PageCacheBytes:  o.PageCacheBytes,
	})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Close releases the database.
func (db *DB) Close() error { return db.inner.Close() }

// Column is one column of data being loaded. Exactly one of Ints, Floats,
// Strings must be set. Leave Encoding zero to let the data-driven selector
// choose; set ForceEncoding to pin a scheme.
type Column struct {
	Name    string
	Ints    []int64
	Floats  []float64
	Strings [][]byte
	// ForceEncoding pins the scheme instead of running selection.
	ForceEncoding Encoding
	// Forced reports whether ForceEncoding is meaningful (distinguishes
	// an intentional Plain from the zero value).
	Forced bool
	// DictGroup joins dictionary-encoded columns that must share one
	// order-preserving dictionary (enables two-column comparisons).
	DictGroup string
	// Compression optionally names a page compressor: "snappy" or "gzip".
	Compression string
}

func (c Column) colType() (colstore.Type, colstore.ColumnData, error) {
	set := 0
	if c.Ints != nil {
		set++
	}
	if c.Floats != nil {
		set++
	}
	if c.Strings != nil {
		set++
	}
	if set != 1 {
		return 0, colstore.ColumnData{}, fmt.Errorf("codecdb: column %q must set exactly one of Ints/Floats/Strings", c.Name)
	}
	switch {
	case c.Ints != nil:
		return colstore.TypeInt64, colstore.ColumnData{Ints: c.Ints}, nil
	case c.Floats != nil:
		return colstore.TypeFloat64, colstore.ColumnData{Floats: c.Floats}, nil
	default:
		return colstore.TypeString, colstore.ColumnData{Strings: c.Strings}, nil
	}
}

// LoadOptions tunes table layout.
type LoadOptions struct {
	RowGroupRows  int // rows per row group (default 65536)
	PageRows      int // rows per page (default 8192)
	FormatVersion int // on-disk format version to write (0 = current)
}

// LoadTable encodes and persists a table. Columns without a forced
// encoding go through data-driven selection on a head sample.
func (db *DB) LoadTable(name string, cols []Column, opts ...LoadOptions) (*Table, error) {
	var lo LoadOptions
	if len(opts) > 0 {
		lo = opts[0]
	}
	specs := make([]core.ColumnSpec, len(cols))
	data := make([]colstore.ColumnData, len(cols))
	for i, c := range cols {
		typ, cd, err := c.colType()
		if err != nil {
			return nil, err
		}
		specs[i] = core.ColumnSpec{
			Name: c.Name, Type: typ,
			Encoding:   c.ForceEncoding,
			AutoEncode: !c.Forced,
			DictGroup:  c.DictGroup, Compression: c.Compression,
		}
		data[i] = cd
	}
	t, err := db.inner.LoadTable(name, specs, data,
		colstore.Options{RowGroupRows: lo.RowGroupRows, PageRows: lo.PageRows, FormatVersion: lo.FormatVersion})
	if err != nil {
		return nil, err
	}
	return &Table{db: db, inner: t}, nil
}

// Table opens a catalogued table.
func (db *DB) Table(name string) (*Table, error) {
	t, err := db.inner.Table(name)
	if err != nil {
		return nil, err
	}
	return &Table{db: db, inner: t}, nil
}

// TableNames lists catalogued tables.
func (db *DB) TableNames() []string { return db.inner.TableNames() }

// Encodings reports the per-column encoding chosen at load time.
func (db *DB) Encodings(table string) (map[string]string, error) {
	return db.inner.Encodings(table)
}

// Table is an opened table handle.
type Table struct {
	db    *DB
	inner *core.Table
}

// Name returns the table name.
func (t *Table) Name() string { return t.inner.Name }

// NumRows returns the row count; for ingest tables that is live shards
// plus every in-memory row.
func (t *Table) NumRows() int64 {
	if t.inner.S != nil {
		return t.inner.S.NumRows()
	}
	return t.inner.R.NumRows()
}

// Columns lists column names in schema order.
func (t *Table) Columns() []string {
	if t.inner.S != nil {
		cols := t.inner.S.Cols()
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = c.Name
		}
		return out
	}
	s := t.inner.R.Schema()
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// ColumnType reports a column's logical type name — "INT64", "FLOAT64",
// or "STRING" — and whether the column exists. Terminal validation
// (SumFloat needs FLOAT64, GroupCount needs a dictionary column) keys
// off this, so callers building requests dynamically can check up front.
func (t *Table) ColumnType(col string) (string, bool) {
	if t.inner.S != nil {
		for _, c := range t.inner.S.Cols() {
			if c.Name != col {
				continue
			}
			switch c.Type {
			case memtable.ColInt64:
				return "INT64", true
			case memtable.ColFloat64:
				return "FLOAT64", true
			case memtable.ColBinary:
				return "STRING", true
			}
			return "", false
		}
		return "", false
	}
	s := t.inner.R.Schema()
	for i := range s.Columns {
		if s.Columns[i].Name == col {
			return s.Columns[i].Type.String(), true
		}
	}
	return "", false
}

// IOStats is a snapshot of a table reader's IO instrumentation: pages
// fetched, pages pruned by page-level zone maps (never fetched), pages
// skipped by row selection, bytes read, and wall time spent in reads.
type IOStats = colstore.IOStats

// IOStats returns the table's accumulated IO instrumentation; for
// ingest tables, summed over the live shard readers.
func (t *Table) IOStats() IOStats {
	if t.inner.S != nil {
		var sum IOStats
		for _, sv := range t.inner.S.Snapshot().Shards {
			st := sv.Reader.Stats()
			sum.PagesRead += st.PagesRead
			sum.PagesPruned += st.PagesPruned
			sum.PagesSkipped += st.PagesSkipped
			sum.BytesRead += st.BytesRead
			sum.BytesDecompressed += st.BytesDecompressed
			sum.IONanos += st.IONanos
			sum.PagesCoalesced += st.PagesCoalesced
			sum.PrefetchHits += st.PrefetchHits
			sum.PrefetchMisses += st.PrefetchMisses
			sum.BytesInFlight += st.BytesInFlight
			sum.PageCacheHits += st.PageCacheHits
			sum.PageCacheMisses += st.PageCacheMisses
		}
		return sum
	}
	return t.inner.R.Stats()
}

// PageCacheStats reports the shared decompressed-page cache's counters;
// the zero value when no cache is configured.
func (db *DB) PageCacheStats() colstore.PageCacheStats {
	return db.inner.PageCache().Stats()
}

// ResetIOStats zeroes the table's IO instrumentation counters.
func (t *Table) ResetIOStats() {
	if t.inner.S != nil {
		for _, sv := range t.inner.S.Snapshot().Shards {
			sv.Reader.ResetStats()
		}
		return
	}
	t.inner.R.ResetStats()
}

// Verify scrubs the table's file: every page and dictionary blob is read
// and its checksum checked, without decoding values. It returns nil for
// clean files (including legacy checksum-less files, where it only proves
// readability), a *CorruptionError naming the damaged object, or ctx.Err()
// if cancelled mid-scrub.
func (t *Table) Verify(ctx context.Context) error {
	if t.inner.S != nil {
		// Quarantined shards are already excluded and are reported by
		// Scrub, not failed here: Verify answers "is the live data
		// clean", and Open's contract is to serve around damage.
		_, err := t.inner.S.Scrub(ctx)
		return err
	}
	return t.inner.R.Verify(ctx)
}

// Verify scrubs every catalogued table, stopping at the first damaged or
// unreadable one.
func (db *DB) Verify(ctx context.Context) error {
	for _, name := range db.inner.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return fmt.Errorf("codecdb: verify %s: %w", name, err)
		}
		if err := t.Verify(ctx); err != nil {
			return err
		}
	}
	return nil
}
