package codecdb

// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md
// for the experiment index). The benchmarks reuse the entry points in
// internal/experiments, so `go test -bench .` regenerates the numbers the
// same way `cmd/expt` does. Scale factors are kept small so the full
// suite runs in minutes; pass -sf via cmd/expt for larger runs.

import (
	"fmt"
	"sync"
	"testing"

	"codecdb/internal/corpus"
	"codecdb/internal/encoding"
	"codecdb/internal/experiments"
	"codecdb/internal/sboost"
	"codecdb/internal/selector"
	"codecdb/internal/ssb"
	"codecdb/internal/tpch"
	"codecdb/internal/xcompress"

	"codecdb/internal/bitutil"
)

var benchCorpus = experiments.CorpusConfig{Seed: 42, Rows: 2000, PerCat: 8}

// ---- Figure 1a ----

func BenchmarkFig1aCompressionRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig1a(benchCorpus)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("int ratios %v", rep.IntR)
		}
	}
}

// ---- Figure 1b ----

func BenchmarkFig1bThroughput(b *testing.B) {
	addrs := corpus.GenerateIPv6(100_000, 1)
	plainBuf, _ := encoding.PlainString{}.Encode(addrs)
	b.Run("DictionaryEncode", func(b *testing.B) {
		b.SetBytes(int64(len(plainBuf)))
		for i := 0; i < b.N; i++ {
			if _, err := (encoding.DictString{}).Encode(addrs); err != nil {
				b.Fatal(err)
			}
		}
	})
	dictBuf, _ := encoding.DictString{}.Encode(addrs)
	b.Run("DictionaryDecode", func(b *testing.B) {
		b.SetBytes(int64(len(plainBuf)))
		for i := 0; i < b.N; i++ {
			if _, err := (encoding.DictString{}).Decode(nil, dictBuf); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, comp := range []xcompress.Compressor{xcompress.Snappy{}, xcompress.Gzip{}} {
		comp := comp
		b.Run(comp.Name()+"Encode", func(b *testing.B) {
			b.SetBytes(int64(len(plainBuf)))
			for i := 0; i < b.N; i++ {
				if _, err := comp.Compress(plainBuf); err != nil {
					b.Fatal(err)
				}
			}
		})
		compBuf, _ := comp.Compress(plainBuf)
		b.Run(comp.Name()+"Decode", func(b *testing.B) {
			b.SetBytes(int64(len(plainBuf)))
			for i := 0; i < b.N; i++ {
				if _, err := comp.Decompress(compBuf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Table 2 ----

func BenchmarkTable2CorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(benchCorpus)
	}
}

// ---- Figure 5a / 5b ----

var (
	selOnce    sync.Once
	selLearned *selector.Learned
	selTest    []corpus.Column
)

func selectorSetup(b *testing.B) {
	selOnce.Do(func() {
		cols := corpus.Generate(corpus.Config{Seed: 42, Rows: 2000, PerCat: 10})
		train, _, test := corpus.Split(cols, 1)
		var intCols [][]int64
		var strCols [][][]byte
		for i := range train {
			if train[i].IsInt() {
				intCols = append(intCols, train[i].Ints)
			} else {
				strCols = append(strCols, train[i].Strings)
			}
		}
		var err error
		selLearned, err = selector.TrainLearned(intCols, strCols, selector.TrainOptions{Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		selTest = test
	})
}

func BenchmarkFig5aSelectionAccuracy(b *testing.B) {
	selectorSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correct, total := 0, 0
		for j := range selTest {
			c := &selTest[j]
			if c.IsInt() {
				best, _, _ := selector.BestInt(c.Ints)
				if selLearned.SelectInt(c.Ints) == best {
					correct++
				}
			} else {
				best, _, _ := selector.BestString(c.Strings)
				if selLearned.SelectString(c.Strings) == best {
					correct++
				}
			}
			total++
		}
		if i == 0 {
			b.Logf("strict accuracy %d/%d", correct, total)
		}
	}
}

func BenchmarkFig5bEncodedSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig5b(benchCorpus)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("int bytes %v", rep.IntBytes)
		}
	}
}

// ---- §6.2.3 selection overhead ----

func BenchmarkS623SelectionVsExhaustive(b *testing.B) {
	selectorSetup(b)
	vals := make([]int64, 500_000)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	b.Run("DataDrivenSampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selLearned.SelectInt(vals[:20_000]) // ~1MB-head equivalent
		}
	})
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := selector.BestInt(vals); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- TPC-H environment (Figs 6-9) ----

var (
	tpchOnce sync.Once
	tpchEnv  *experiments.TPCHEnv
	tpchErr  error
)

func tpchSetup(b *testing.B) *experiments.TPCHEnv {
	tpchOnce.Do(func() {
		tpchEnv, tpchErr = experiments.SetupTPCH(0.01, 42, "")
	})
	if tpchErr != nil {
		b.Fatal(tpchErr)
	}
	return tpchEnv
}

func BenchmarkFig6Operators(b *testing.B) {
	env := tpchSetup(b)
	for op := tpch.MicroOp(0); op < tpch.NumMicroOps; op++ {
		op := op
		b.Run(fmt.Sprintf("%v/CodecDB", op), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Codec.RunMicro(op); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/Oblivious", op), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Codec.RunMicroOblivious(op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig7TPCH(b *testing.B) {
	env := tpchSetup(b)
	for q := 1; q <= tpch.QueryCount; q++ {
		q := q
		b.Run(fmt.Sprintf("Q%02d/CodecDB", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Codec.CodecDB(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%02d/PrestoLike", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Codec.Oblivious(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%02d/DBMSXLayout", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.DBMSX.Oblivious(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8TimeBreakdown(b *testing.B) {
	env := tpchSetup(b)
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig8(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("codec cpu %v io %v", rep.CodecCPU, rep.CodecIO)
		}
	}
}

func BenchmarkFig9MemoryFootprint(b *testing.B) {
	env := tpchSetup(b)
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig9(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("codec MB %v oblivious MB %v", rep.CodecMB, rep.ObliviousMB)
		}
	}
}

// ---- Figure 10: SSB ----

var (
	ssbOnce sync.Once
	ssbEnv  *experiments.SSBEnv
	ssbErr  error
)

func ssbSetup(b *testing.B) *experiments.SSBEnv {
	ssbOnce.Do(func() {
		ssbEnv, ssbErr = experiments.SetupSSB(0.01, 42, "")
	})
	if ssbErr != nil {
		b.Fatal(ssbErr)
	}
	return ssbEnv
}

func BenchmarkFig10SSB(b *testing.B) {
	env := ssbSetup(b)
	for _, q := range ssb.QueryIDs() {
		q := q
		b.Run("Q"+q+"/CodecDB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := env.Tables.CodecDB(q)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.IntermediateBytes), "interB")
				}
			}
		})
		b.Run("Q"+q+"/MorphLike", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := env.Tables.Morph(q)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.IntermediateBytes), "interB")
				}
			}
		})
		b.Run("Q"+q+"/Oblivious", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Tables.Oblivious(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Substrate micro-benchmarks (support the figures above) ----

func BenchmarkSBoostScanVsScalar(b *testing.B) {
	const n = 1 << 20
	const width = 10
	w := bitutil.NewWriter()
	for i := 0; i < n; i++ {
		w.WriteBits(uint64(i)&1023, width)
	}
	data := append(w.Bytes(), make([]byte, 16)...)
	b.Run("SWAR", func(b *testing.B) {
		b.SetBytes(n * width / 8)
		for i := 0; i < b.N; i++ {
			sboost.ScanPacked(data, n, width, sboost.OpLe, 511)
		}
	})
	b.Run("DecodeThenCompare", func(b *testing.B) {
		b.SetBytes(n * width / 8)
		for i := 0; i < b.N; i++ {
			r := bitutil.NewReader(data)
			bm := bitutil.NewBitmap(n)
			for j := 0; j < n; j++ {
				if r.ReadBits(width) <= 511 {
					bm.Set(j)
				}
			}
		}
	})
}

func BenchmarkEncodings(b *testing.B) {
	sorted := make([]int64, 100_000)
	lowCard := make([]int64, 100_000)
	for i := range sorted {
		sorted[i] = int64(1_000_000 + i)
		lowCard[i] = int64(i % 16)
	}
	cases := []struct {
		name string
		kind encoding.Kind
		vals []int64
	}{
		{"Delta/sorted", encoding.KindDelta, sorted},
		{"BitPacked/lowCard", encoding.KindBitPacked, lowCard},
		{"RLE/lowCard", encoding.KindRLE, lowCard},
		{"Dict/lowCard", encoding.KindDict, lowCard},
	}
	for _, c := range cases {
		codec, _ := encoding.IntCodecFor(c.kind)
		b.Run(c.name+"/Encode", func(b *testing.B) {
			b.SetBytes(int64(8 * len(c.vals)))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Encode(c.vals); err != nil {
					b.Fatal(err)
				}
			}
		})
		buf, _ := codec.Encode(c.vals)
		b.Run(c.name+"/Decode", func(b *testing.B) {
			b.SetBytes(int64(8 * len(c.vals)))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
