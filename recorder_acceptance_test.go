package codecdb

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"codecdb/internal/obs"
	"codecdb/internal/ops"
)

// Acceptance tests for the query flight recorder: in-flight visibility
// with morsel progress, recorded IO equal to the Table.IOStats delta,
// cancellation draining the live registry, and the Chrome trace export
// carrying the same span tree ExplainAnalyze renders.

// loadSerial loads a table of sequential ints with rgRows-row groups
// into a single-threaded DB, so the morsel pipeline scans row groups in
// index order with one worker.
func loadSerial(t testing.TB, name string, n, rgRows int) *Table {
	t.Helper()
	db, err := Open(t.TempDir(), Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	tbl, err := db.LoadTable(name, []Column{{Name: "v", Ints: v}},
		LoadOptions{RowGroupRows: rgRows, PageRows: rgRows / 4})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// newestRecordFor returns the most recent flight-recorder entry for the
// named table, or nil.
func newestRecordFor(table string) *obs.QueryRecord {
	for _, rec := range FlightRecorder().Recent() {
		if rec.Table == table {
			return rec
		}
	}
	return nil
}

// TestRecorderInFlightProgress pins the headline behaviour: while a
// query executes it is visible in the in-flight registry with
// morsel-level progress, and when it finishes it has moved to the ring
// with the progress fields settled. A predicate blocks on the first row
// of the last row group, so with one worker and serial morsel order the
// snapshot must show exactly total-1 morsels done.
func TestRecorderInFlightProgress(t *testing.T) {
	const n, rgRows = 4096, 1024 // 4 row groups
	tbl := loadSerial(t, "fr_live", n, rgRows)

	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	q := tbl.All().AndPred(rawPred(&ops.IntPredicateFilter{
		Col: "v",
		Pred: func(v int64) bool {
			if v == n-rgRows { // first row of the last row group
				once.Do(func() {
					close(reached)
					<-release
				})
			}
			return v == n-rgRows
		},
	}))

	type result struct {
		n   int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		cnt, err := q.Count()
		done <- result{cnt, err}
	}()

	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the last row group")
	}

	var snap *obs.LiveSnapshot
	for _, ls := range FlightRecorder().InFlight() {
		if ls.Table == "fr_live" {
			cp := ls
			snap = &cp
			break
		}
	}
	if snap == nil {
		t.Fatal("running query not visible in InFlight()")
	}
	if snap.Kind != "query" || snap.Terminal != "Count" {
		t.Fatalf("snapshot identity = %+v", snap)
	}
	if !strings.Contains(snap.Predicate, "raw[") {
		t.Fatalf("predicate summary = %q", snap.Predicate)
	}
	if snap.MorselsTotal != 4 || snap.MorselsDone != 3 {
		t.Fatalf("progress = %d/%d, want 3/4", snap.MorselsDone, snap.MorselsTotal)
	}

	close(release)
	res := <-done
	if res.err != nil || res.n != 1 {
		t.Fatalf("count = %d, %v", res.n, res.err)
	}

	// Drained from the registry, recorded in the ring.
	for _, ls := range FlightRecorder().InFlight() {
		if ls.Table == "fr_live" {
			t.Fatal("finished query still in the live registry")
		}
	}
	rec := newestRecordFor("fr_live")
	if rec == nil {
		t.Fatal("finished query missing from the ring")
	}
	if rec.RowsIn != n || rec.RowsOut != 1 || rec.Err != "" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.MorselsDone != 4 || rec.MorselsTotal != 4 {
		t.Fatalf("final progress = %d/%d, want 4/4", rec.MorselsDone, rec.MorselsTotal)
	}
	if rec.Wall <= 0 || rec.Workers != 1 {
		t.Fatalf("wall=%v workers=%d", rec.Wall, rec.Workers)
	}
}

// TestRecorderIOMatchesTableDelta is the acceptance criterion that a
// record's IO fields equal the Table.IOStats delta an external observer
// measures around the query.
func TestRecorderIOMatchesTableDelta(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 4000)

	before := tbl.IOStats()
	if n, err := tbl.Where("status", Eq, "ERROR").And("level", Lt, 3).Count(); err != nil || n == 0 {
		t.Fatalf("count = %d, %v", n, err)
	}
	after := tbl.IOStats()

	rec := newestRecordFor("events")
	if rec == nil {
		t.Fatal("query missing from the ring")
	}
	want := obs.RecordIO{
		PagesRead:      after.PagesRead - before.PagesRead,
		PagesPruned:    after.PagesPruned - before.PagesPruned,
		PagesSkipped:   after.PagesSkipped - before.PagesSkipped,
		PagesCoalesced: after.PagesCoalesced - before.PagesCoalesced,
		BytesRead:      after.BytesRead - before.BytesRead,
		BytesDecomp:    after.BytesDecompressed - before.BytesDecompressed,
		PrefetchHits:   after.PrefetchHits - before.PrefetchHits,
		PrefetchMisses: after.PrefetchMisses - before.PrefetchMisses,
	}
	if rec.IO != want {
		t.Fatalf("record IO = %+v, want the IOStats delta %+v", rec.IO, want)
	}
	if want.PagesRead == 0 {
		t.Fatal("test read no pages; delta comparison is vacuous")
	}
	if rec.Predicate == "" || !strings.Contains(rec.Predicate, `status = "ERROR"`) {
		t.Fatalf("predicate summary = %q", rec.Predicate)
	}
	if rec.IORead < 0 || rec.Scan < 0 || rec.IORead+rec.Scan > 2*rec.Wall {
		t.Fatalf("time split io=%v scan=%v wall=%v", rec.IORead, rec.Scan, rec.Wall)
	}
}

// TestRecorderCancellationDrains: cancelled queries must leave the live
// registry empty and publish records flagged as cancelled.
func TestRecorderCancellationDrains(t *testing.T) {
	const n, rgRows = 4096, 64
	tbl := loadSerial(t, "fr_cancel", n, rgRows)

	const queries = 6
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, queries)
	var wg sync.WaitGroup
	errs := make([]error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var once sync.Once
			q := tbl.All().WithContext(ctx).AndPred(rawPred(&ops.IntPredicateFilter{
				Col: "v",
				Pred: func(v int64) bool {
					once.Do(func() { started <- struct{}{} })
					time.Sleep(20 * time.Microsecond)
					return v%7 == 0
				},
			}))
			_, errs[i] = q.Count()
		}(i)
	}
	for i := 0; i < queries; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("queries never started scanning")
		}
	}
	cancel()
	wg.Wait()

	for _, ls := range FlightRecorder().InFlight() {
		if ls.Table == "fr_cancel" {
			t.Fatal("live registry did not drain after cancellation")
		}
	}
	cancelled := 0
	for _, rec := range FlightRecorder().Recent() {
		if rec.Table == "fr_cancel" && rec.Cancelled {
			cancelled++
			if rec.Err == "" {
				t.Fatal("cancelled record must carry the error string")
			}
		}
	}
	for i, err := range errs {
		if err != nil && !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
		if err != nil && cancelled == 0 {
			t.Fatal("cancellation surfaced to the caller but no record is flagged cancelled")
		}
	}
}

// TestChromeTraceMatchesAnalyzeTree: the exported trace must contain
// exactly the span tree ExplainAnalyze renders — one "X" event per
// span, same names — with the flight-recorder identity in the metadata.
func TestChromeTraceMatchesAnalyzeTree(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 4000)
	q := tbl.Where("status", Eq, "ERROR").And("level", Lt, 3)

	root, count, err := q.AnalyzeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("query matched nothing")
	}

	// The traced run published a record whose TraceRoot is this tree.
	var rec *obs.QueryRecord
	for _, r := range FlightRecorder().Recent() {
		if r.TraceRoot == root {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Fatal("traced run did not publish its span tree to the recorder")
	}
	if rec.RowsOut != count {
		t.Fatalf("record rows out = %d, want %d", rec.RowsOut, count)
	}

	var buf strings.Builder
	if err := obs.WriteChromeTrace(&buf, root, rec); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &tf); err != nil {
		t.Fatal(err)
	}

	wantNames := map[string]int{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		wantNames[s.Name()]++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)

	gotNames := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			gotNames[ev.Name]++
		}
	}
	if len(gotNames) != len(wantNames) {
		t.Fatalf("trace names = %v, span names = %v", gotNames, wantNames)
	}
	for name, cnt := range wantNames {
		if gotNames[name] != cnt {
			t.Fatalf("span %q: %d events, want %d", name, gotNames[name], cnt)
		}
	}
	// Every span name also appears in the rendered analyze tree.
	rendered := root.Render()
	for name := range wantNames {
		if !strings.Contains(rendered, name) {
			t.Fatalf("rendered tree missing span %q:\n%s", name, rendered)
		}
	}
	if id, _ := tf.Metadata["queryId"].(float64); uint64(id) != rec.ID {
		t.Fatalf("trace metadata queryId = %v, want %d", tf.Metadata["queryId"], rec.ID)
	}
}

// TestRecorderFlushAndRecoveryRecords: ingest flushes and the recovery
// pass at open register in the same ring with the same ID sequence.
func TestRecorderFlushAndRecoveryRecords(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateIngestTable("fr_ingest", ingestFields())
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, tbl, 0, 200)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	flushRec := newestRecordFor("fr_ingest")
	if flushRec == nil || flushRec.Kind != obs.KindFlush {
		t.Fatalf("flush record = %+v", flushRec)
	}
	if flushRec.RowsIn != 200 || flushRec.RowsOut != 200 || flushRec.Err != "" {
		t.Fatalf("flush record rows = %+v", flushRec)
	}
	appendRows(t, tbl, 200, 50) // unflushed tail for recovery to replay
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Table("fr_ingest"); err != nil {
		t.Fatal(err)
	}
	recRec := newestRecordFor("fr_ingest")
	if recRec == nil || recRec.Kind != obs.KindRecovery {
		t.Fatalf("recovery record = %+v", recRec)
	}
	if recRec.RowsIn != 50 {
		t.Fatalf("recovery replayed %d records, want 50", recRec.RowsIn)
	}
	if recRec.ID <= flushRec.ID {
		t.Fatal("IDs must stay monotonic across kinds")
	}
}
