package codecdb

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"time"

	"codecdb/internal/colstore"
	"codecdb/internal/memtable"
	"codecdb/internal/ops"
	"codecdb/internal/shard"
)

// This file executes queries over ingest (sharded) tables. A terminal
// takes one consistent snapshot — the live shards in ingest order plus
// the in-memory tail (sealed memtables and a frozen view of the active
// buffer) — then runs the normal planned pipeline over each shard with
// predicates re-bound to that shard's own encodings, evaluates the tail
// row-wise, and merges. Row IDs are global over the snapshot order, so
// results read as one table.

// validateShardedPred type-checks p against an ingest table's schema.
// Encoding-dependent validation (dictionaries) is deliberately absent:
// encodings vary per shard, and binding handles each shard's reality.
func validateShardedPred(cols []shard.Column, p Pred) error {
	colOf := func(name string) (shard.Column, error) {
		for _, c := range cols {
			if c.Name == name {
				return c, nil
			}
		}
		return shard.Column{}, fmt.Errorf("codecdb: no column %q", name)
	}
	switch p.kind {
	case predZero:
		return nil
	case predRaw:
		return fmt.Errorf("codecdb: raw filters bind to a single reader and cannot run on ingest tables")
	case predCmp:
		c, err := colOf(p.col)
		if err != nil {
			return err
		}
		switch p.value.(type) {
		case int, int64:
			if c.Type != memtable.ColInt64 {
				return fmt.Errorf("codecdb: integer predicate on column %q", p.col)
			}
		case float64:
			if c.Type != memtable.ColFloat64 {
				return fmt.Errorf("codecdb: float predicate on column %q", p.col)
			}
		case string, []byte:
			if c.Type != memtable.ColBinary {
				return fmt.Errorf("codecdb: string predicate on column %q", p.col)
			}
		default:
			return fmt.Errorf("codecdb: unsupported predicate value %T", p.value)
		}
		return nil
	case predIn:
		c, err := colOf(p.col)
		if err != nil {
			return err
		}
		if len(p.values) == 0 {
			return fmt.Errorf("codecdb: IN on %s needs at least one value", p.col)
		}
		for _, v := range p.values {
			switch v.(type) {
			case int, int64:
				if c.Type != memtable.ColInt64 {
					return fmt.Errorf("codecdb: integer IN values for column %s", p.col)
				}
			case string, []byte:
				if c.Type != memtable.ColBinary {
					return fmt.Errorf("codecdb: string IN values for column %s", p.col)
				}
			default:
				return fmt.Errorf("codecdb: unsupported IN value %T for column %s", v, p.col)
			}
		}
		return nil
	case predLike:
		c, err := colOf(p.col)
		if err != nil {
			return err
		}
		if c.Type != memtable.ColBinary {
			return fmt.Errorf("codecdb: LIKE needs a string column; %s is not", p.col)
		}
		if p.match == nil {
			return fmt.Errorf("codecdb: LIKE on %s needs a non-nil match function", p.col)
		}
		return nil
	case predCols:
		// Two-column dictionary comparison needs one shared
		// order-preserving dictionary; shards are encoded independently,
		// so no such dictionary can exist across them.
		return fmt.Errorf("codecdb: two-column predicates are not supported on ingest tables")
	case predAll:
		for _, k := range p.kids {
			if err := validateShardedPred(cols, k); err != nil {
				return err
			}
		}
		return nil
	case predAny:
		if len(p.kids) == 0 {
			return fmt.Errorf("codecdb: AnyOf needs at least one predicate")
		}
		for _, k := range p.kids {
			if err := validateShardedPred(cols, k); err != nil {
				return err
			}
		}
		return nil
	case predNot:
		inner := p.kids[0]
		switch inner.kind {
		case predCmp, predIn, predLike:
			return validateShardedPred(cols, inner)
		}
		return fmt.Errorf("codecdb: Not supports only leaf predicates (Col/In/Like); rewrite composites with De Morgan's laws")
	}
	return fmt.Errorf("codecdb: invalid predicate")
}

// runSharded is the sharded counterpart of Query.run: same terminals,
// same metrics, results merged across the snapshot.
func (q *Query) runSharded(term ops.TermKind, col string) (res *ops.PipelineResult, err error) {
	ctx, cancel := q.execContext()
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, fin := q.record(ctx, term.String())
	defer func() {
		queriesTotal.Inc()
		queryLatency.Observe(time.Since(start).Seconds())
		var out int64
		if res != nil {
			out = res.Count
		}
		fin(out, err)
	}()
	view := q.t.inner.S.Snapshot()
	root := AllOf(q.conjuncts...)
	out := &ops.PipelineResult{}
	base := int64(0)
	for _, sv := range view.Shards {
		var pl *ops.Plan
		if len(q.conjuncts) > 0 {
			bp, err := bindPredOn(sv.Reader, root, true)
			if err != nil {
				return nil, err
			}
			pl = ops.BuildPlan(bp, sv.Reader)
		}
		res, err := ops.RunPipeline(ctx, sv.Reader, q.t.db.inner.DataPool(), pl, term, col)
		if err != nil {
			return nil, err
		}
		mergeShardResult(out, res, base)
		base += sv.Rows
	}
	for _, mem := range view.Tail {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := q.evalTail(mem, root, term, col, base, out); err != nil {
			return nil, err
		}
		base += int64(mem.NumRows())
	}
	return out, nil
}

func mergeShardResult(out, res *ops.PipelineResult, base int64) {
	out.Count += res.Count
	for _, id := range res.RowIDs {
		out.RowIDs = append(out.RowIDs, id+base)
	}
	out.Ints = append(out.Ints, res.Ints...)
	out.Floats = append(out.Floats, res.Floats...)
	out.Strings = append(out.Strings, res.Strings...)
	out.Sum += res.Sum
}

// evalTail runs one terminal over a memtable: compile the predicate to
// a row closure, walk the rows, fold matches into out.
func (q *Query) evalTail(mem *memtable.ColumnTable, root Pred, term ops.TermKind, col string, base int64, out *ops.PipelineResult) error {
	match, err := compileTailPred(mem, root)
	if err != nil {
		return err
	}
	var ints []int64
	var flts []float64
	var bins []memtable.Binary
	if col != "" {
		ci := mem.ColIndex(col)
		if ci < 0 {
			return fmt.Errorf("codecdb: no column %q", col)
		}
		switch term {
		case ops.TermInts:
			if mem.Types()[ci] != memtable.ColInt64 {
				return fmt.Errorf("codecdb: %s is not an integer column", col)
			}
			ints = mem.Ints(ci)
		case ops.TermFloats, ops.TermSumFloat:
			if mem.Types()[ci] != memtable.ColFloat64 {
				return fmt.Errorf("codecdb: %s is not a float column", col)
			}
			flts = mem.Floats(ci)
		case ops.TermStrings:
			if mem.Types()[ci] != memtable.ColBinary {
				return fmt.Errorf("codecdb: %s is not a string column", col)
			}
			bins = mem.Binaries(ci)
		}
	}
	for row := 0; row < mem.NumRows(); row++ {
		if !match(row) {
			continue
		}
		switch term {
		case ops.TermCount:
			out.Count++
		case ops.TermRowIDs:
			out.RowIDs = append(out.RowIDs, base+int64(row))
		case ops.TermInts:
			out.Ints = append(out.Ints, ints[row])
		case ops.TermFloats:
			out.Floats = append(out.Floats, flts[row])
		case ops.TermStrings:
			out.Strings = append(out.Strings, bins[row])
		case ops.TermSumFloat:
			out.Sum += flts[row]
		default:
			return fmt.Errorf("codecdb: terminal %d not supported on the ingest tail", term)
		}
	}
	return nil
}

// compileTailPred lowers a predicate tree to one row closure over a
// memtable's column vectors. Validation already ran at build time;
// lookups here defend against schema drift only.
func compileTailPred(mem *memtable.ColumnTable, p Pred) (func(int) bool, error) {
	switch p.kind {
	case predZero:
		return func(int) bool { return true }, nil
	case predCmp:
		ci := mem.ColIndex(p.col)
		if ci < 0 {
			return nil, fmt.Errorf("codecdb: no column %q", p.col)
		}
		op := p.op
		switch mem.Types()[ci] {
		case memtable.ColInt64:
			var target int64
			switch v := p.value.(type) {
			case int:
				target = int64(v)
			case int64:
				target = v
			default:
				return nil, fmt.Errorf("codecdb: integer predicate on %q needs an integer value", p.col)
			}
			vals := mem.Ints(ci)
			return func(row int) bool { return cmpMatch(compareInt(vals[row], target), op) }, nil
		case memtable.ColFloat64:
			target, ok := p.value.(float64)
			if !ok {
				return nil, fmt.Errorf("codecdb: float predicate on %q needs a float value", p.col)
			}
			pred := floatPred(op, target)
			vals := mem.Floats(ci)
			return func(row int) bool { return pred(vals[row]) }, nil
		default:
			var target []byte
			switch v := p.value.(type) {
			case string:
				target = []byte(v)
			case []byte:
				target = v
			default:
				return nil, fmt.Errorf("codecdb: string predicate on %q needs a string value", p.col)
			}
			vals := mem.Binaries(ci)
			return func(row int) bool { return cmpMatch(bytes.Compare(vals[row], target), op) }, nil
		}
	case predIn:
		ci := mem.ColIndex(p.col)
		if ci < 0 {
			return nil, fmt.Errorf("codecdb: no column %q", p.col)
		}
		if mem.Types()[ci] == memtable.ColInt64 {
			set := make(map[int64]struct{}, len(p.values))
			for _, v := range p.values {
				switch x := v.(type) {
				case int:
					set[int64(x)] = struct{}{}
				case int64:
					set[x] = struct{}{}
				default:
					return nil, fmt.Errorf("codecdb: unsupported IN value %T for column %s", v, p.col)
				}
			}
			vals := mem.Ints(ci)
			return func(row int) bool { _, ok := set[vals[row]]; return ok }, nil
		}
		set := make(map[string]struct{}, len(p.values))
		for _, v := range p.values {
			switch x := v.(type) {
			case string:
				set[x] = struct{}{}
			case []byte:
				set[string(x)] = struct{}{}
			default:
				return nil, fmt.Errorf("codecdb: unsupported IN value %T for column %s", v, p.col)
			}
		}
		vals := mem.Binaries(ci)
		return func(row int) bool { _, ok := set[string(vals[row])]; return ok }, nil
	case predLike:
		ci := mem.ColIndex(p.col)
		if ci < 0 {
			return nil, fmt.Errorf("codecdb: no column %q", p.col)
		}
		vals := mem.Binaries(ci)
		match := p.match
		return func(row int) bool { return match(vals[row]) }, nil
	case predAll:
		kids, err := compileTailKids(mem, p.kids)
		if err != nil {
			return nil, err
		}
		return func(row int) bool {
			for _, k := range kids {
				if !k(row) {
					return false
				}
			}
			return true
		}, nil
	case predAny:
		kids, err := compileTailKids(mem, p.kids)
		if err != nil {
			return nil, err
		}
		return func(row int) bool {
			for _, k := range kids {
				if k(row) {
					return true
				}
			}
			return false
		}, nil
	case predNot:
		inner, err := compileTailPred(mem, p.kids[0])
		if err != nil {
			return nil, err
		}
		return func(row int) bool { return !inner(row) }, nil
	}
	return nil, fmt.Errorf("codecdb: predicate not supported on the ingest tail")
}

func compileTailKids(mem *memtable.ColumnTable, preds []Pred) ([]func(int) bool, error) {
	kids := make([]func(int) bool, len(preds))
	for i, k := range preds {
		fn, err := compileTailPred(mem, k)
		if err != nil {
			return nil, err
		}
		kids[i] = fn
	}
	return kids, nil
}

// groupCountSharded merges per-shard GroupCounts with a row-wise count
// over the tail. Shards whose column the selector dictionary-encoded
// use the array-aggregation fast path; others fall back to gathering
// the selected values. Labels render identically on both paths, so the
// maps merge cleanly.
func (q *Query) groupCountSharded(col string) (counts map[string]int64, err error) {
	if q.err != nil {
		return nil, q.err
	}
	ctx := q.context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var isInt bool
	found := false
	for _, c := range q.t.inner.S.Cols() {
		if c.Name == col {
			found = true
			switch c.Type {
			case memtable.ColInt64:
				isInt = true
			case memtable.ColBinary:
				isInt = false
			default:
				return nil, fmt.Errorf("codecdb: GroupCount needs an integer or string column, %s is float", col)
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("codecdb: no column %q", col)
	}
	start := time.Now()
	ctx, fin := q.record(ctx, ops.TermGroupCount.String())
	defer func() {
		queriesTotal.Inc()
		queryLatency.Observe(time.Since(start).Seconds())
		var out int64
		for _, n := range counts {
			out += n
		}
		fin(out, err)
	}()
	view := q.t.inner.S.Snapshot()
	root := AllOf(q.conjuncts...)
	counts = map[string]int64{}
	for _, sv := range view.Shards {
		if err := q.groupCountShard(ctx, sv.Reader, root, col, isInt, counts); err != nil {
			return nil, err
		}
	}
	for _, mem := range view.Tail {
		match, err := compileTailPred(mem, root)
		if err != nil {
			return nil, err
		}
		ci := mem.ColIndex(col)
		if ci < 0 {
			return nil, fmt.Errorf("codecdb: no column %q", col)
		}
		if isInt {
			vals := mem.Ints(ci)
			for row := range vals {
				if match(row) {
					counts[strconv.FormatInt(vals[row], 10)]++
				}
			}
		} else {
			vals := mem.Binaries(ci)
			for row := range vals {
				if match(row) {
					counts[string(vals[row])]++
				}
			}
		}
	}
	return counts, nil
}

func (q *Query) groupCountShard(ctx context.Context, r *colstore.Reader, root Pred, col string, isInt bool, counts map[string]int64) error {
	var pl *ops.Plan
	if len(q.conjuncts) > 0 {
		bp, err := bindPredOn(r, root, true)
		if err != nil {
			return err
		}
		pl = ops.BuildPlan(bp, r)
	}
	pool := q.t.db.inner.DataPool()
	_, c, err := r.Column(col)
	if err != nil {
		return err
	}
	if c.Encoding == Dictionary || c.Encoding == DictRLE {
		res, err := ops.RunPipeline(ctx, r, pool, pl, ops.TermGroupCount, col)
		if err != nil {
			return err
		}
		_, _, labels, err := groupLabelsOn(r, col)
		if err != nil {
			return err
		}
		for g, k := range res.Group.Keys {
			counts[labels[k]] += res.Group.Counts[g]
		}
		return nil
	}
	if isInt {
		res, err := ops.RunPipeline(ctx, r, pool, pl, ops.TermInts, col)
		if err != nil {
			return err
		}
		for _, v := range res.Ints {
			counts[strconv.FormatInt(v, 10)]++
		}
		return nil
	}
	res, err := ops.RunPipeline(ctx, r, pool, pl, ops.TermStrings, col)
	if err != nil {
		return err
	}
	for _, v := range res.Strings {
		counts[string(v)]++
	}
	return nil
}
