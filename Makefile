GO ?= go

.PHONY: check build test vet race fuzz bench

# check is the tier-1 verification gate: everything must compile, pass
# vet, and pass the full test suite under the race detector.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench refreshes the "current" section of BENCH_PR2.json with the scan
# hot-path benchmarks (ns/op, B/op, allocs/op, pages pruned/read/skipped
# per op); the checked-in "baseline" section is preserved.
BENCHOUT ?= BENCH_PR2.json
bench:
	$(GO) test -run xxx -bench 'BenchmarkAblationDataSkipping|BenchmarkSBoostScanVsScalar|BenchmarkFig7TPCH|BenchmarkFilterHotPath' \
		-benchmem . | $(GO) run ./cmd/benchjson -o $(BENCHOUT) -section current

# fuzz gives the colstore Open fuzzer a short budget; extend FUZZTIME for
# longer campaigns.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/colstore/ -run xxx -fuzz FuzzOpen -fuzztime $(FUZZTIME)
