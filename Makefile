GO ?= go

.PHONY: check build test vet race fuzz

# check is the tier-1 verification gate: everything must compile, pass
# vet, and pass the full test suite under the race detector.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz gives the colstore Open fuzzer a short budget; extend FUZZTIME for
# longer campaigns.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/colstore/ -run xxx -fuzz FuzzOpen -fuzztime $(FUZZTIME)
