GO ?= go

.PHONY: check build test vet race race-obs race-pipeline race-prefetch race-serve race-join crash guard-obs fuzz bench bench-obs bench-planner bench-planner-smoke bench-pipeline bench-scale bench-serve bench-tpch bench-tpch-smoke serve-demo

# check is the tier-1 verification gate: everything must compile, pass
# vet, and pass the full test suite under the race detector, with the
# observability-layer, morsel-executor, prefetch, serving-layer, and
# relational-executor race tests called out explicitly, the crash-point
# matrix for the durable write path, the observability overhead guards,
# plus one iteration of the planner pipeline and engine-vs-legacy
# benchmarks as smoke tests.
check: vet build race race-obs race-pipeline race-prefetch race-serve race-join crash guard-obs bench-planner-smoke bench-tpch-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-obs focuses the race detector on the observability surfaces: the
# metrics registry and tracer, the flight recorder (concurrent
# begin/progress/finish vs snapshot readers), the pool counters, and the
# atomic reader stats with concurrent Stats/ResetStats.
race-obs:
	$(GO) test -race -count=1 ./internal/obs/ ./internal/exec/ ./internal/colstore/
	$(GO) test -race -count=1 -run 'TestRecorder' .

# guard-obs runs the observability overhead guards outside the race
# detector (alloc counts change under -race): the tracer's zero-alloc
# guard on the filter seam and the flight recorder's
# constant-per-query alloc guard (recorder on vs off; the constant must
# not scale with morsel count).
guard-obs:
	$(GO) test -count=1 -run 'TestApplyFilterNoTracerAddsZeroAllocs|TestQueryRecorderConstantAllocOverhead' .

# race-pipeline focuses the race detector on the morsel executor: the
# worker-local-state scheduler tests and the pipelined-vs-legacy
# equivalence, fallback, and acceptance tests.
race-pipeline:
	$(GO) test -race -count=1 -run TestParallelMorsels ./internal/exec/
	$(GO) test -race -count=1 -run 'TestPipeline|TestExplainAnalyze|TestTracedGatherSpans' .

# race-prefetch focuses the race detector on the async page fetcher:
# concurrent queries with mid-scan cancellation sharing the prefetch
# machinery, the prefetch-on ≡ prefetch-off equivalence property, and
# the fetcher's fault-injection fallback test.
race-prefetch:
	$(GO) test -race -count=1 -run 'TestPrefetch' .
	$(GO) test -race -count=1 -run 'TestPrefetch' ./internal/colstore/

# race-serve focuses the race detector on the serving layer: admission
# control (concurrent acquire/release/timeout/cancel against the
# round-robin dispatcher), the wave batcher (concurrent clients group-
# committing onto shared scans), the result cache, and the root wave /
# exec-options / page-cache API tests.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 -run 'TestWave|TestEpoch|TestWithExec|TestPageCacheOption' .

# race-join focuses the race detector on the relational executor: the
# join/group/sort kernels and their oracle property tests, the
# engine-compiled ≡ legacy equivalence suites for TPC-H and SSB, and
# the public relational Query API (joins, order-by/limit, trace spans).
race-join:
	$(GO) test -race -count=1 -run 'TestHashJoin|TestRel|TestExternalSort|TestSortRows|TestTopN' ./internal/ops/
	$(GO) test -race -count=1 -run 'TestEngineMatchesLegacy' ./internal/tpch/ ./internal/ssb/
	$(GO) test -race -count=1 -run 'TestQueryJoin|TestQuerySemiAnti|TestQueryRows|TestExplainAnalyzeRel|TestTracedTopK|TestRelDict' .

# crash runs the write-path fault-injection suite under the race
# detector: the crash-point matrix (every write-side filesystem
# operation fails in turn; recovery must restore exactly the acked
# state), the double-crash variant (a second crash during the recovery
# flush), and the shard-layer WAL/manifest/quarantine tests.
crash:
	$(GO) test -race -count=1 -run 'TestCrashPointMatrix|TestCrashMatrixDoubleCrash|TestIngest' .
	$(GO) test -race -count=1 ./internal/shard/ ./internal/wal/ ./internal/memtable/

# bench refreshes the "current" section of BENCH_PR2.json with the scan
# hot-path benchmarks (ns/op, B/op, allocs/op, pages pruned/read/skipped
# per op); the checked-in "baseline" section is preserved.
BENCHOUT ?= BENCH_PR2.json
bench:
	$(GO) test -run xxx -bench 'BenchmarkAblationDataSkipping|BenchmarkSBoostScanVsScalar|BenchmarkFig7TPCH|BenchmarkFilterHotPath$$' \
		-benchmem . | $(GO) run ./cmd/benchjson -o $(BENCHOUT) -section current

# bench-obs writes BENCH_PR3.json: the filter hot path through the
# instrumented ApplyFilter seam, tracer off (bare context) vs tracer on
# (span per op), plus the end-to-end count with the flight recorder off
# vs on, so the observability overhead stays visible across PRs.
OBSBENCHOUT ?= BENCH_PR3.json
bench-obs:
	$(GO) test -run xxx -bench 'BenchmarkFilterHotPathTraced/.*/Off' -benchmem . \
		| $(GO) run ./cmd/benchjson -o $(OBSBENCHOUT) -section tracer-off
	$(GO) test -run xxx -bench 'BenchmarkFilterHotPathTraced/.*/On' -benchmem . \
		| $(GO) run ./cmd/benchjson -o $(OBSBENCHOUT) -section tracer-on
	$(GO) test -run xxx -bench 'BenchmarkQueryRecorder/Off' -benchmem . \
		| $(GO) run ./cmd/benchjson -o $(OBSBENCHOUT) -section recorder-off
	$(GO) test -run xxx -bench 'BenchmarkQueryRecorder/On' -benchmem . \
		| $(GO) run ./cmd/benchjson -o $(OBSBENCHOUT) -section recorder-on

# bench-planner writes BENCH_PR4.json: the selection-threaded planned
# pipeline with the selective conjunct written first vs last (the planner
# normalizes both to the same page IO), the filter-at-a-time baseline
# (every filter scans the full table), and an AND+OR mix — pagesRead/op
# makes the pushdown visible.
PLANNERBENCHOUT ?= BENCH_PR4.json
bench-planner:
	$(GO) test -run xxx -bench BenchmarkPlannerPipeline -benchmem . \
		| $(GO) run ./cmd/benchjson -o $(PLANNERBENCHOUT) -section current

# bench-pipeline writes BENCH_PR5.json: the same two-conjunct query on
# an 8+ row-group table through the morsel pipeline vs the
# operator-at-a-time barrier engine, for Count, SumFloat, and
# GroupCount — wall time, allocs/op, and pagesRead/op side by side.
# One invocation measures both engines so the comparison shares process
# state.
PIPELINEBENCHOUT ?= BENCH_PR5.json
bench-pipeline:
	$(GO) test -run xxx -bench BenchmarkPipelineVsBarrier -benchmem . \
		| $(GO) run ./cmd/benchjson -o $(PIPELINEBENCHOUT) -section current

# bench-scale writes BENCH_PR7.json: the SF 1→10 full-scan sweep with
# the async page prefetcher on vs off (ns/row, query-phase peak RSS,
# max bytes-in-flight), the cold-I/O variant charging seek-scale
# latency per read request (where coalescing + overlap dominate), and
# the two-lane vs one-lane SWAR kernel micro-benchmark. benchjson
# surfaces the section's peak RSS as a synthetic "_peakRSS" entry.
SCALEBENCHOUT ?= BENCH_PR7.json
bench-scale:
	$(GO) test -run xxx -bench 'BenchmarkScaleScan/SF' -benchtime 5x -timeout 1800s . \
		| $(GO) run ./cmd/benchjson -o $(SCALEBENCHOUT) -section scale
	$(GO) test -run xxx -bench BenchmarkScaleScanColdIO -benchtime 3x -timeout 1800s . \
		| $(GO) run ./cmd/benchjson -o $(SCALEBENCHOUT) -section cold-io
	$(GO) test -run xxx -bench BenchmarkScanLanes ./internal/sboost/ \
		| $(GO) run ./cmd/benchjson -o $(SCALEBENCHOUT) -section swar-lanes
	$(GO) test -run xxx -bench BenchmarkParallelDictReaders -cpu 1,4 ./internal/colstore/ \
		| $(GO) run ./cmd/benchjson -o $(SCALEBENCHOUT) -section dict-readers

# bench-serve writes BENCH_PR9.json: K=1/8/64 concurrent clients
# looping mixed terminals through the full serving path (admission,
# wave batching, page cache), reporting p50/p99 latency, the shed
# rate, and pages read per request — the sharing signal is
# pagesRead/req falling as K grows while each wave stays one scan.
SERVEBENCHOUT ?= BENCH_PR9.json
bench-serve:
	$(GO) test -run xxx -bench BenchmarkServeConcurrency -benchtime 50x ./internal/serve/ \
		| $(GO) run ./cmd/benchjson -o $(SERVEBENCHOUT) -section current

# bench-tpch writes BENCH_PR10.json: every TPC-H query and SSB flight
# through the engine-compiled relational plan (relq + morsel pipeline)
# vs the legacy hand-coded operator-at-a-time plan — ns/op, allocs/op,
# and pagesRead/op side by side. The engine must match or beat legacy
# on pages read for the filter-heavy queries.
TPCHBENCHOUT ?= BENCH_PR10.json
bench-tpch:
	$(GO) test -run xxx -bench BenchmarkTPCHEngineVsLegacy -benchmem -benchtime 10x -timeout 1800s ./internal/tpch/ \
		| $(GO) run ./cmd/benchjson -o $(TPCHBENCHOUT) -section tpch
	$(GO) test -run xxx -bench BenchmarkSSBEngineVsLegacy -benchmem -benchtime 10x -timeout 1800s ./internal/ssb/ \
		| $(GO) run ./cmd/benchjson -o $(TPCHBENCHOUT) -section ssb

# bench-tpch-smoke runs one iteration of every engine-vs-legacy pair
# (each plan self-checks by executing end to end, so this doubles as a
# correctness gate in check).
bench-tpch-smoke:
	$(GO) test -run xxx -bench BenchmarkTPCHEngineVsLegacy -benchtime 1x ./internal/tpch/
	$(GO) test -run xxx -bench BenchmarkSSBEngineVsLegacy -benchtime 1x ./internal/ssb/

# bench-planner-smoke runs one iteration of each planner pipeline
# benchmark (they self-check counts, so this doubles as a correctness
# gate in check).
bench-planner-smoke:
	$(GO) test -run xxx -bench BenchmarkPlannerPipeline -benchtime 1x .

# serve-demo loads a TPC-H sample into ./demodb and serves /metrics,
# /debug/vars, and /debug/pprof on :8080 until interrupted.
serve-demo:
	$(GO) run ./cmd/datagen -kind tpch -sf 0.01 -out ./demodb
	$(GO) run ./cmd/codecdb serve -db ./demodb -metrics :8080 -warm

# fuzz gives the colstore Open fuzzer a short budget; extend FUZZTIME for
# longer campaigns.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/colstore/ -run xxx -fuzz FuzzOpen -fuzztime $(FUZZTIME)
