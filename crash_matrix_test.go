package codecdb

import (
	"context"
	"testing"

	"codecdb/internal/core"
	"codecdb/internal/vfs"
)

// The crash-point matrix is the write path's acceptance test: one fixed
// workload runs once per possible crash point k — the k-th write-side
// filesystem operation (create, write, sync, rename, remove, syncdir)
// fails, a write failing mid-record persists a deterministic torn
// prefix, and every later write-side operation fails like a dead disk.
// Reopening through the real filesystem must then recover exactly the
// acknowledged state:
//
//   - every acknowledged append is present, in order (acked ⊆ recovered);
//   - anything extra is a prefix of what was submitted — rows whose WAL
//     write reached disk but whose ack was lost (recovered ⊆ submitted);
//   - no torn, corrupt, or reordered row is visible anywhere;
//   - verification and scrub come back clean, with nothing quarantined.

const crashRows = 24

// crashWorkload drives a fixed single-threaded ingest session against
// fsys: append 24 rows with two explicit flushes in between, then close.
// It returns how many appends were acknowledged. Errors after the crash
// point are expected and deliberately ignored — a crashing process does
// not get to act on them either.
func crashWorkload(t *testing.T, fsys vfs.FS, dir string) (acked int) {
	t.Helper()
	inner, err := core.Open(dir, core.Options{FS: fsys, OperatorThreads: 2, DataThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	db := &DB{inner: inner}
	defer db.Close()
	tbl, err := db.CreateIngestTable("ev", ingestFields())
	if err != nil {
		return 0 // crashed before the table existed; nothing acked
	}
	for i := 0; i < crashRows; i++ {
		if err := tbl.Append(int64(i), float64(i)/2, statuses[i%3]); err != nil {
			return acked
		}
		acked++
		if i == 7 || i == 15 {
			_ = tbl.Flush() // flush failure does not retract acked rows
		}
	}
	return acked
}

func TestCrashPointMatrix(t *testing.T) {
	// Dry run on a fault-free FaultFS to size the matrix.
	dry := vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Seed: 1})
	if got := crashWorkload(t, dry, t.TempDir()); got != crashRows {
		t.Fatalf("dry run acked %d of %d appends", got, crashRows)
	}
	totalOps := dry.WriteOps()
	if totalOps < 20 {
		t.Fatalf("workload issued only %d write ops; matrix would prove nothing", totalOps)
	}

	for k := int64(1); k <= totalOps; k++ {
		dir := t.TempDir()
		fs := vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Seed: k})
		fs.CrashAfterWriteOps(k)
		acked := crashWorkload(t, fs, dir)
		if !fs.Crashed() {
			t.Fatalf("k=%d: crash point never reached (workload now issues %d ops?)", k, fs.WriteOps())
		}

		// Reopen through the real filesystem, as a restarted process would.
		inner, err := core.Open(dir, core.Options{OperatorThreads: 2, DataThreads: 2})
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		db := &DB{inner: inner}
		tbl, err := db.Table("ev")
		if err != nil {
			// The crash predated the catalog entry; then nothing may have
			// been acknowledged.
			if acked != 0 {
				t.Fatalf("k=%d: table lost but %d appends acked", k, acked)
			}
			db.Close()
			continue
		}

		ids, err := tbl.All().Ints("id")
		if err != nil {
			t.Fatalf("k=%d: query recovered table: %v", k, err)
		}
		scores, err := tbl.All().Floats("score")
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// acked ⊆ recovered ⊆ submitted, in submission order, no torn rows.
		if len(ids) < acked || len(ids) > crashRows {
			t.Fatalf("k=%d: recovered %d rows, acked %d, submitted %d", k, len(ids), acked, crashRows)
		}
		for i, id := range ids {
			if id != int64(i) {
				t.Fatalf("k=%d: recovered ids[%d] = %d (lost or reordered)", k, i, id)
			}
			if scores[i] != float64(i)/2 {
				t.Fatalf("k=%d: row %d has corrupt score %v", k, i, scores[i])
			}
		}
		if n, err := tbl.Where("status", Eq, "ERROR").Count(); err != nil {
			t.Fatalf("k=%d: predicate over recovered table: %v", k, err)
		} else {
			want := int64(0)
			for i := 0; i < len(ids); i++ {
				if i%3 == 2 {
					want++
				}
			}
			if n != want {
				t.Fatalf("k=%d: predicate count %d, want %d", k, n, want)
			}
		}
		if err := tbl.Verify(context.Background()); err != nil {
			t.Fatalf("k=%d: verify after recovery: %v", k, err)
		}
		rep, err := tbl.Scrub(context.Background())
		if err != nil {
			t.Fatalf("k=%d: scrub after recovery: %v", k, err)
		}
		if len(rep.Quarantined) != 0 {
			// A pure crash (no bit rot) must never quarantine: shards are
			// published by rename only after a successful sync.
			t.Fatalf("k=%d: crash quarantined shards: %+v", k, rep.Quarantined)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}
	}
	t.Logf("crash matrix: %d crash points, all recovered to the acked state", totalOps)
}

// TestCrashMatrixDoubleCrash re-crashes during the recovery flush: after
// a first crash mid-flush, the reopened table flushes its replayed rows
// while a second crash point is armed. The second recovery must still
// hold every acked row exactly once.
func TestCrashMatrixDoubleCrash(t *testing.T) {
	// First pass: find how many ops the post-crash recovery flush issues.
	dir := t.TempDir()
	fs := vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Seed: 7})
	// Crash mid-first-flush: flush of rows 0..7 starts around the tmp
	// create; pick a point well inside the workload.
	fs.CrashAfterWriteOps(20)
	acked := crashWorkload(t, fs, dir)
	if !fs.Crashed() {
		t.Skip("crash point 20 beyond workload; covered by the matrix")
	}

	reopenAndFlush := func(fsys vfs.FS) (int, error) {
		inner, err := core.Open(dir, core.Options{FS: fsys, OperatorThreads: 2, DataThreads: 2})
		if err != nil {
			return 0, err
		}
		db := &DB{inner: inner}
		defer db.Close()
		tbl, err := db.Table("ev")
		if err != nil {
			return 0, err
		}
		_ = tbl.Flush() // may crash again; acked rows must survive regardless
		ids, err := tbl.All().Ints("id")
		if err != nil {
			return 0, err
		}
		return len(ids), nil
	}

	dry := vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Seed: 8})
	if _, err := reopenAndFlush(dry); err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	for k := int64(1); k <= dry.WriteOps(); k++ {
		fs2 := vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Seed: 100 + k})
		fs2.CrashAfterWriteOps(k)
		_, _ = reopenAndFlush(fs2) // second crash, possibly mid-recovery-flush

		inner, err := core.Open(dir, core.Options{OperatorThreads: 2, DataThreads: 2})
		if err != nil {
			t.Fatalf("k=%d: final reopen: %v", k, err)
		}
		db := &DB{inner: inner}
		tbl, err := db.Table("ev")
		if err != nil {
			t.Fatalf("k=%d: table lost after double crash: %v", k, err)
		}
		ids, err := tbl.All().Ints("id")
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(ids) < acked {
			t.Fatalf("k=%d: double crash lost acked rows: %d < %d", k, len(ids), acked)
		}
		for i, id := range ids {
			if id != int64(i) {
				t.Fatalf("k=%d: ids[%d] = %d after double crash", k, i, id)
			}
		}
		if err := tbl.Verify(context.Background()); err != nil {
			t.Fatalf("k=%d: verify: %v", k, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}
	}
}
