package codecdb

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/ops"
)

// checkEnginesAgree runs every terminal on both engines and fails on any
// mismatch. Count, Ints, and GroupCount must be byte-identical; SumFloat
// is compared to within float reassociation error, since the pipelined
// path folds per-row-group partial sums (in deterministic row-group
// order) while the legacy path sums one flat vector.
func checkEnginesAgree(t *testing.T, iter int, q *Query) {
	t.Helper()
	lq := q.withLegacyEngine()

	gotN, err := q.Count()
	if err != nil {
		t.Fatalf("iter %d: pipelined Count: %v", iter, err)
	}
	wantN, err := lq.Count()
	if err != nil {
		t.Fatalf("iter %d: legacy Count: %v", iter, err)
	}
	if gotN != wantN {
		t.Fatalf("iter %d: Count = %d, legacy = %d", iter, gotN, wantN)
	}

	gotIDs, err := q.RowIDs()
	if err != nil {
		t.Fatalf("iter %d: pipelined RowIDs: %v", iter, err)
	}
	wantIDs, err := lq.RowIDs()
	if err != nil {
		t.Fatalf("iter %d: legacy RowIDs: %v", iter, err)
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("iter %d: RowIDs diverge: pipelined %d rows, legacy %d rows", iter, len(gotIDs), len(wantIDs))
	}

	gotInts, err := q.Ints("small")
	if err != nil {
		t.Fatalf("iter %d: pipelined Ints: %v", iter, err)
	}
	wantInts, err := lq.Ints("small")
	if err != nil {
		t.Fatalf("iter %d: legacy Ints: %v", iter, err)
	}
	if !reflect.DeepEqual(gotInts, wantInts) {
		t.Fatalf("iter %d: Ints diverge: pipelined %d vals, legacy %d vals", iter, len(gotInts), len(wantInts))
	}

	gotStrs, err := q.Strings("cat")
	if err != nil {
		t.Fatalf("iter %d: pipelined Strings: %v", iter, err)
	}
	wantStrs, err := lq.Strings("cat")
	if err != nil {
		t.Fatalf("iter %d: legacy Strings: %v", iter, err)
	}
	if len(gotStrs) != len(wantStrs) {
		t.Fatalf("iter %d: Strings diverge: pipelined %d vals, legacy %d vals", iter, len(gotStrs), len(wantStrs))
	}
	for i := range gotStrs {
		if string(gotStrs[i]) != string(wantStrs[i]) {
			t.Fatalf("iter %d: Strings[%d] = %q, legacy %q", iter, i, gotStrs[i], wantStrs[i])
		}
	}

	gotG, err := q.GroupCount("cat")
	if err != nil {
		t.Fatalf("iter %d: pipelined GroupCount: %v", iter, err)
	}
	wantG, err := lq.GroupCount("cat")
	if err != nil {
		t.Fatalf("iter %d: legacy GroupCount: %v", iter, err)
	}
	if !reflect.DeepEqual(gotG, wantG) {
		t.Fatalf("iter %d: GroupCount = %v, legacy = %v", iter, gotG, wantG)
	}

	gotS, err := q.SumFloat("score")
	if err != nil {
		t.Fatalf("iter %d: pipelined SumFloat: %v", iter, err)
	}
	wantS, err := lq.SumFloat("score")
	if err != nil {
		t.Fatalf("iter %d: legacy SumFloat: %v", iter, err)
	}
	if tol := 1e-9 * math.Max(1, math.Abs(wantS)); math.Abs(gotS-wantS) > tol {
		t.Fatalf("iter %d: SumFloat = %v, legacy = %v (diff %v > tol %v)", iter, gotS, wantS, gotS-wantS, tol)
	}
}

// TestPipelineMatchesLegacyEngine is the executor-equivalence property:
// for random predicate trees over every encoding, every terminal of the
// morsel pipeline agrees with the operator-at-a-time barrier engine — on
// v2.1 files and on legacy v1 files.
func TestPipelineMatchesLegacyEngine(t *testing.T) {
	const n = 3000
	db := openTestDB(t)
	formats := []struct {
		name    string
		version int
	}{
		{"v2.1", 0},
		{"v1", colstore.FormatV1},
	}
	for fi, f := range formats {
		f := f
		t.Run(f.name, func(t *testing.T) {
			d := propTable(t, db, fmt.Sprintf("pipeprop%d", fi), n, f.version)
			tbl, err := db.Table(fmt.Sprintf("pipeprop%d", fi))
			if err != nil {
				t.Fatal(err)
			}
			// The degenerate query: no predicate at all.
			checkEnginesAgree(t, -1, tbl.All())
			for iter := 0; iter < 25; iter++ {
				rng := rand.New(rand.NewSource(int64(7000*fi + iter)))
				p, _ := genPred(rng, d, 1+rng.Intn(2))
				q := tbl.Query(p)
				if err := q.Err(); err != nil {
					t.Fatalf("iter %d: build error: %v", iter, err)
				}
				checkEnginesAgree(t, iter, q)
			}
		})
	}
}

// nonKernelFilter hides its inner filter's row-group kernel, so the
// pipeline cannot compile it and must fall back to the barrier selection
// pass (the path external Filter implementations take).
type nonKernelFilter struct{ inner ops.Filter }

func (f *nonKernelFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.inner.Apply(r, pool)
}

// TestPipelineFallbackForExternalFilters checks a predicate tree holding
// a filter with no kernel still runs every terminal correctly: the
// selection comes from the legacy pass, the terminal still runs
// morsel-wise, and both engines agree.
func TestPipelineFallbackForExternalFilters(t *testing.T) {
	const n = 2500
	db := openTestDB(t)
	d := propTable(t, db, "pipefall", n, 0)
	_ = d
	tbl, err := db.Table("pipefall")
	if err != nil {
		t.Fatal(err)
	}
	raw := rawPred(&nonKernelFilter{inner: &ops.IntPredicateFilter{
		Col:  "small",
		Pred: func(v int64) bool { return v%3 == 0 },
	}})
	for iter, q := range []*Query{
		tbl.Query(raw),
		tbl.Query(raw).And("grade", Ge, 2),
		tbl.Where("cat", Eq, "alpha").AndPred(raw),
	} {
		checkEnginesAgree(t, iter, q)
	}
}
