// Command benchjson converts `go test -bench` output on stdin into a
// JSON document keyed by benchmark name, and merges it into an existing
// report file under a named section so before/after runs live side by
// side:
//
//	go test -bench Foo -benchmem | benchjson -o BENCH.json -section current
//
// Each benchmark records its iteration count and every reported metric
// (ns/op, B/op, allocs/op, and custom b.ReportMetric units such as
// pagesPruned/op). Sections other than the one being written are
// preserved, so a checked-in "baseline" survives refreshes of "current".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output JSON file (default stdout)")
	section := flag.String("section", "current", "top-level key to write results under")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	addPeakRSS(results)

	doc := map[string]map[string]benchResult{}
	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(prev, &doc); err != nil {
				fatal(fmt.Errorf("existing %s is not a benchjson report: %w", *out, err))
			}
		}
	}
	doc[*section] = results

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parseBench reads go-bench lines: name-P iterations then repeated
// "value unit" metric pairs, e.g.
//
//	BenchmarkX/sub-8  100  12345 ns/op  67 B/op  8 allocs/op
func parseBench(f *os.File) (map[string]benchResult, error) {
	results := map[string]benchResult{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip -GOMAXPROCS suffix
			}
		}
		name = strings.TrimPrefix(name, "Benchmark")
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		results[name] = benchResult{Iterations: iters, Metrics: metrics}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// addPeakRSS surfaces the section's memory high-water mark: benchmarks
// that sample the process RSS report it as a peakRSS-bytes metric, and
// the maximum across the section lands in a synthetic "_peakRSS" entry
// so the bound is readable at the top of the report without scanning
// every benchmark. Sections with no RSS-reporting benchmarks are
// unchanged.
func addPeakRSS(results map[string]benchResult) {
	var peak float64
	for _, r := range results {
		if v, ok := r.Metrics["peakRSS-bytes"]; ok && v > peak {
			peak = v
		}
	}
	if peak > 0 {
		results["_peakRSS"] = benchResult{Iterations: 1, Metrics: map[string]float64{"peakRSS-bytes": peak}}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
