// Command datagen generates the benchmark datasets and loads them into a
// CodecDB database directory:
//
//	datagen -kind tpch -sf 0.05 -out ./tpchdb        # 8 TPC-H tables
//	datagen -kind ssb -sf 0.05 -out ./ssbdb          # 5 SSB tables
//	datagen -kind corpus -out ./corpusdb             # selector training corpus
package main

import (
	"flag"
	"fmt"
	"os"

	"codecdb/internal/colstore"
	"codecdb/internal/core"
	"codecdb/internal/corpus"
	"codecdb/internal/ssb"
	"codecdb/internal/tpch"
)

func main() {
	kind := flag.String("kind", "tpch", "dataset: tpch|ssb|corpus")
	sf := flag.Float64("sf", 0.01, "scale factor for tpch/ssb")
	seed := flag.Int64("seed", 42, "deterministic seed")
	out := flag.String("out", "", "output database directory (required)")
	rows := flag.Int("rows", 4000, "rows per corpus column")
	perCat := flag.Int("percat", 24, "columns per corpus category")
	dbmsx := flag.Bool("dbmsx", false, "load TPC-H in the plain+gzip DBMS-X layout")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	if err := generate(*kind, *sf, *seed, *out, *rows, *perCat, *dbmsx); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func generate(kind string, sf float64, seed int64, out string, rows, perCat int, dbmsx bool) error {
	db, err := core.Open(out, core.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	opts := colstore.Options{}
	switch kind {
	case "tpch":
		data := tpch.Generate(sf, seed)
		if dbmsx {
			err = tpch.LoadDBMSX(db, data, opts)
		} else {
			err = tpch.LoadCodecDB(db, data, opts)
		}
		if err != nil {
			return err
		}
		fmt.Printf("loaded TPC-H SF %.3f: %d lineitem rows into %s\n",
			sf, len(data.Lineitem.OrderKey), out)
	case "ssb":
		data := ssb.Generate(sf, seed)
		if err := ssb.LoadCodecDB(db, data, opts); err != nil {
			return err
		}
		fmt.Printf("loaded SSB SF %.3f: %d lineorder rows into %s\n",
			sf, len(data.Lineorder.OrderKey), out)
	case "corpus":
		cols := corpus.Generate(corpus.Config{Seed: seed, Rows: rows, PerCat: perCat})
		for i := range cols {
			c := &cols[i]
			spec := core.ColumnSpec{Name: "value", AutoEncode: true}
			var data colstore.ColumnData
			if c.IsInt() {
				spec.Type = colstore.TypeInt64
				data = colstore.ColumnData{Ints: c.Ints}
			} else {
				spec.Type = colstore.TypeString
				data = colstore.ColumnData{Strings: c.Strings}
			}
			if _, err := db.LoadTable(c.Name, []core.ColumnSpec{spec}, []colstore.ColumnData{data}, opts); err != nil {
				return err
			}
		}
		fmt.Printf("loaded %d corpus columns into %s\n", len(cols), out)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	return nil
}
