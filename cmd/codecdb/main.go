// Command codecdb inspects and queries CodecDB databases:
//
//	codecdb tables -db ./tpchdb                  # list tables
//	codecdb schema -db ./tpchdb -table lineitem  # columns + encodings
//	codecdb count -db ./tpchdb -table lineitem -col l_shipmode -eq MAIL
//	codecdb scrub -db ./tpchdb                   # verify checksums of all tables
//	codecdb advise -db any -csvcol 1,2,3,4,...   # suggest an encoding
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"codecdb"
	"codecdb/internal/encoding"
	"codecdb/internal/obs"
	"codecdb/internal/selector"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dbDir := fs.String("db", "", "database directory")
	table := fs.String("table", "", "table name")
	col := fs.String("col", "", "column name")
	eq := fs.String("eq", "", "equality predicate value")
	csvcol := fs.String("csvcol", "", "comma-separated values to advise on")
	out := fs.String("out", "", "output path (train: model.json, trace: trace.json)")
	seed := fs.Int64("seed", 42, "training seed")
	stats := fs.Bool("stats", false, "print page-level IO statistics")
	metrics := fs.String("metrics", ":8080", "listen address for /metrics, /debug/vars, /debug/pprof")
	warm := fs.Bool("warm", false, "run one full count per table before serving so counters are non-zero")
	pageCache := fs.Int64("page-cache", 256<<20, "serve: decompressed-page cache budget in bytes (0 disables)")
	resultCache := fs.Int64("result-cache", 64<<20, "serve: result cache budget in bytes (0 disables)")
	admitConcurrent := fs.Int("admit-concurrent", 0, "serve: max concurrently executing queries (0 = 4)")
	admitQueued := fs.Int("admit-queued", 0, "serve: max queued queries before shedding (0 = 64)")
	admitMemory := fs.Int64("admit-memory", 0, "serve: admitted-query memory budget in bytes (0 = 1GiB)")
	admitWait := fs.Duration("admit-wait", 0, "serve: max admission queue wait (0 = 2s)")
	logJSON := fs.Bool("log", false, "emit structured JSON logs (flush, recovery, slow queries) to stderr")
	analyze := fs.Bool("analyze", false, "execute the query and report per-operator stats")
	var wheres whereFlags
	fs.Var(&wheres, "where", `predicate "col op value", "col in v1,v2", or " or "-joined disjuncts (repeatable, ANDed; op: = != < <= > >=)`)
	fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "tables":
		err = withDB(*dbDir, func(db *codecdb.DB) error {
			for _, n := range db.TableNames() {
				fmt.Println(n)
			}
			return nil
		})
	case "schema":
		err = withDB(*dbDir, func(db *codecdb.DB) error {
			encs, err := db.Encodings(*table)
			if err != nil {
				return err
			}
			t, err := db.Table(*table)
			if err != nil {
				return err
			}
			fmt.Printf("%s: %d rows\n", *table, t.NumRows())
			for _, c := range t.Columns() {
				fmt.Printf("  %-20s %s\n", c, encs[c])
			}
			return nil
		})
	case "count":
		err = withDB(*dbDir, func(db *codecdb.DB) error {
			t, err := db.Table(*table)
			if err != nil {
				return err
			}
			q := t.All()
			if *eq != "" {
				if iv, e := strconv.ParseInt(*eq, 10, 64); e == nil {
					q = t.Where(*col, codecdb.Eq, iv)
				} else {
					q = t.Where(*col, codecdb.Eq, *eq)
				}
			}
			t.ResetIOStats()
			n, err := q.Count()
			if err != nil {
				return err
			}
			fmt.Println(n)
			if *stats {
				printIOStats(t.IOStats())
			}
			return nil
		})
	case "scrub":
		err = withDB(*dbDir, func(db *codecdb.DB) error { return scrub(db, *table, *stats) })
	case "serve":
		err = serve(*dbDir, *metrics, *warm, *logJSON, serveConfig{
			pageCacheBytes:   *pageCache,
			resultCacheBytes: *resultCache,
			admitConcurrent:  *admitConcurrent,
			admitQueued:      *admitQueued,
			admitMemory:      *admitMemory,
			admitWait:        *admitWait,
		})
	case "explain":
		err = withDB(*dbDir, func(db *codecdb.DB) error {
			return explain(db, *table, wheres, *analyze, *stats)
		})
	case "trace":
		err = withDB(*dbDir, func(db *codecdb.DB) error {
			return traceCmd(db, *table, wheres, *out)
		})
	case "advise":
		err = advise(*csvcol)
	case "train":
		err = train(*out, *seed)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "codecdb:", err)
		os.Exit(1)
	}
}

func withDB(dir string, fn func(*codecdb.DB) error) error {
	if dir == "" {
		return fmt.Errorf("-db is required")
	}
	db, err := codecdb.Open(dir)
	if err != nil {
		return err
	}
	defer db.Close()
	return fn(db)
}

// printIOStats reports the reader's page-level IO counters: pruned pages
// were rejected by zone maps and never fetched; skipped pages had no
// selected rows. The prefetch line only appears when the async fetcher
// ran — coalesced pages rode along in a neighbour's read, hits were
// served from prefetched buffers, misses raced ahead of the fetcher.
func printIOStats(st codecdb.IOStats) {
	fmt.Printf("pages: %d read, %d pruned, %d skipped; %d bytes read\n",
		st.PagesRead, st.PagesPruned, st.PagesSkipped, st.BytesRead)
	if st.PagesCoalesced != 0 || st.PrefetchHits != 0 || st.PrefetchMisses != 0 {
		fmt.Printf("prefetch: %d hits, %d misses, %d pages coalesced; %d bytes in flight\n",
			st.PrefetchHits, st.PrefetchMisses, st.PagesCoalesced, st.BytesInFlight)
	}
}

// scrub verifies the checksums of one table (or all tables) and reports
// corruption precisely; interruptible with ^C. Ingest tables get the
// full write-path scrub — manifest, shards, and WAL segments — with
// quarantined shards reported rather than failing the run.
func scrub(db *codecdb.DB, table string, stats bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	verify := func(name string) error {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if t.IsIngest() {
			rep, err := t.Scrub(ctx)
			if err != nil {
				fmt.Printf("%-20s CORRUPT: %v\n", name, err)
				return err
			}
			fmt.Printf("%-20s ok  manifest seq=%d, %d shards, %d wal segments (%d records, %d torn tails)\n",
				name, rep.ManifestSeq, rep.Shards, rep.WalSegments, rep.WalRecords, rep.WalTorn)
			for _, qs := range rep.Quarantined {
				fmt.Printf("%-20s QUARANTINED %s: %s\n", name, qs.File, qs.Err)
			}
			return nil
		}
		t.ResetIOStats()
		err = t.Verify(ctx)
		var ce *codecdb.CorruptionError
		switch {
		case errors.As(err, &ce):
			fmt.Printf("%-20s CORRUPT: %v\n", name, err)
			return err
		case err != nil:
			return err
		}
		fmt.Printf("%-20s ok\n", name)
		if stats {
			printIOStats(t.IOStats())
		}
		return nil
	}
	if table != "" {
		if err := verify(table); err != nil {
			return err
		}
		printWriteHistograms()
		return nil
	}
	for _, name := range db.TableNames() {
		if err := verify(name); err != nil {
			return err
		}
	}
	printWriteHistograms()
	return nil
}

// printWriteHistograms summarises the write-path latency histograms
// accumulated in this process (WAL fsync barriers during ingest or
// recovery, memtable flush durations). Quantiles are estimated by
// linear interpolation inside the matching bucket. A freshly opened
// read-only process reports n=0; ingesting processes (and `serve
// -metrics` scrapes) carry the live distribution.
func printWriteHistograms() {
	printHistSummary("wal fsync", "codecdb_wal_fsync_seconds")
	printHistSummary("flush", "codecdb_flush_seconds")
}

func printHistSummary(label, name string) {
	h := codecdb.Metrics().FindHistogram(name)
	if h == nil {
		return
	}
	if h.Count() == 0 {
		fmt.Printf("%-20s n=0 (no observations this process)\n", label)
		return
	}
	fmt.Printf("%-20s n=%-6d mean=%-10s p50=%-10s p99=%s\n",
		label, h.Count(), fmtSeconds(h.Mean()),
		fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.99)))
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// traceCmd executes a query under the tracer and writes its span tree —
// the same tree ExplainAnalyze renders — as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func traceCmd(db *codecdb.DB, table string, wheres whereFlags, out string) error {
	if table == "" {
		return fmt.Errorf("-table is required")
	}
	if out == "" {
		out = "trace.json"
	}
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	q := t.All()
	for _, w := range wheres {
		q = q.AndPred(w)
	}
	if err := q.Err(); err != nil {
		return err
	}
	root, n, err := q.AnalyzeTrace()
	if err != nil {
		return err
	}
	// The traced run published a flight-recorder record whose TraceRoot
	// is this tree; riding its identity and IO delta into the export
	// gives the trace metadata the query ID that joins logs and metrics.
	var rec *obs.QueryRecord
	for _, r := range codecdb.FlightRecorder().Recent() {
		if r.TraceRoot == root {
			rec = r
			break
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, root, rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Print(root.Render())
	fmt.Printf("%d rows matched; trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n", n, out)
	return nil
}

// advise runs exhaustive selection on an inline column and prints the
// per-encoding sizes with the winner.
func advise(csv string) error {
	if csv == "" {
		return fmt.Errorf("-csvcol is required")
	}
	parts := strings.Split(csv, ",")
	ints := make([]int64, 0, len(parts))
	isInt := true
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			isInt = false
			break
		}
		ints = append(ints, v)
	}
	if isInt {
		sizes, err := selector.SizesInt(ints, encoding.IntCandidates())
		if err != nil {
			return err
		}
		best, _, err := selector.BestInt(ints)
		if err != nil {
			return err
		}
		fmt.Printf("plain: %d bytes\n", selector.PlainSizeInt(ints))
		for _, k := range encoding.IntCandidates() {
			marker := " "
			if k == best {
				marker = "*"
			}
			fmt.Printf("%s %-22s %d bytes\n", marker, k, sizes[k])
		}
		return nil
	}
	strs := make([][]byte, len(parts))
	for i, p := range parts {
		strs[i] = []byte(strings.TrimSpace(p))
	}
	sizes, err := selector.SizesString(strs, encoding.StringCandidates())
	if err != nil {
		return err
	}
	best, _, err := selector.BestString(strs)
	if err != nil {
		return err
	}
	fmt.Printf("plain: %d bytes\n", selector.PlainSizeString(strs))
	for _, k := range encoding.StringCandidates() {
		marker := " "
		if k == best {
			marker = "*"
		}
		fmt.Printf("%s %-22s %d bytes\n", marker, k, sizes[k])
	}
	return nil
}

// train fits the data-driven selector on the built-in corpus and saves
// the model; a database opened with this model uses it for automatic
// encoding selection.
func train(out string, seed int64) error {
	if out == "" {
		out = "model.json"
	}
	fmt.Println("training encoding selector on the built-in corpus ...")
	sel, err := codecdb.TrainDefaultSelector(seed)
	if err != nil {
		return err
	}
	if err := sel.Save(out); err != nil {
		return err
	}
	fmt.Printf("model saved to %s\n", out)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: codecdb <command> [flags]
commands:
  tables  -db DIR                         list tables
  schema  -db DIR -table T                show columns and encodings
  count   -db DIR -table T [-col C -eq V] count rows (optionally filtered)
          [-stats]                        ... and print page IO statistics
  scrub   -db DIR [-table T] [-stats]     verify stored checksums (+ write-path latency histograms)
  explain -db DIR -table T                render the query plan in planned order
          [-where "col op value"]...      ... predicates (repeatable, ANDed)
          [-where "col in v1,v2"]         ... dictionary IN predicate
          [-where "a = x or b >= 2"]      ... " or "-joined disjunction
          [-analyze] [-stats]             ... execute and report per-operator stats
  trace   -db DIR -table T [-where ...]   execute under the tracer, write Chrome trace-event
          [-out trace.json]               ... JSON (Perfetto / chrome://tracing)
  serve   -db DIR [-metrics :8080]        serve POST /v1/query (JSON query API with admission
          [-warm] [-log]                  control, shared scans, result cache), /metrics,
          [-page-cache N] [-result-cache N]  /debug/vars, /debug/pprof, /debug/queries{,/recent,
          [-admit-concurrent N]           /slow,/trace}, /healthz, and the deprecated GET /query;
          [-admit-queued N]               -log emits structured JSON logs to stderr
          [-admit-memory N] [-admit-wait D]
  advise  -csvcol v1,v2,...               suggest an encoding for a column
  train   [-out model.json] [-seed N]     train the encoding selector`)
	os.Exit(2)
}
