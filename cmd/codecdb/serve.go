package main

import (
	"context"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"codecdb"
	"codecdb/internal/obs"
	qserve "codecdb/internal/serve"
)

// serveConfig carries the serving-layer tunables from the command line.
type serveConfig struct {
	pageCacheBytes   int64
	resultCacheBytes int64
	admitConcurrent  int
	admitQueued      int
	admitMemory      int64
	admitWait        time.Duration
}

// serve mounts the multi-user query API and the engine's observability
// endpoints over one database: POST /v1/query (the versioned JSON query
// API with admission control, cooperative shared scans, and the result
// cache), the deprecated GET /query alias, /metrics (Prometheus text
// exposition of the codecdb_* registry), /debug/vars (the same registry
// published through expvar), the standard /debug/pprof profiling
// handlers, the flight-recorder views (/debug/queries live progress,
// /recent ring, /slow, /trace Perfetto export), and a /healthz
// readiness probe. It blocks until interrupted.
func serve(dir, addr string, warm, logJSON bool, sc serveConfig) error {
	if dir == "" {
		return fmt.Errorf("-db is required")
	}
	opts := codecdb.Options{PageCacheBytes: sc.pageCacheBytes}
	if logJSON {
		opts.Logger = codecdb.NewJSONLogger(os.Stderr)
	}
	db, err := codecdb.Open(dir, opts)
	if err != nil {
		return err
	}
	defer db.Close()
	return func(db *codecdb.DB) error {
		if warm {
			// Touch every table with a full count (moves the query
			// counters) and a checksum scrub (reads every page, moving
			// the page and byte counters) so the first scrape is live.
			for _, name := range db.TableNames() {
				t, err := db.Table(name)
				if err != nil {
					return err
				}
				if _, err := t.All().Count(); err != nil {
					return err
				}
				if err := t.Verify(context.Background()); err != nil {
					return err
				}
			}
		}
		reg := codecdb.Metrics()
		reg.PublishExpvar("codecdb")
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

		fr := codecdb.FlightRecorder()
		mux.HandleFunc("/debug/queries", fr.HandleInFlight)
		mux.HandleFunc("/debug/queries/recent", fr.HandleRecent)
		mux.HandleFunc("/debug/queries/slow", fr.HandleSlow)
		mux.HandleFunc("/debug/queries/trace", fr.HandleTrace)
		mux.HandleFunc("/healthz", obs.HealthzHandler(fr))

		api := qserve.New(db, qserve.Config{
			Admit: qserve.AdmitConfig{
				MaxConcurrent: sc.admitConcurrent,
				MaxQueued:     sc.admitQueued,
				MaxMemory:     sc.admitMemory,
				MaxWait:       sc.admitWait,
			},
			ResultCacheBytes: sc.resultCacheBytes,
		})
		defer api.Close()
		api.Register(mux)
		// The pre-v1 count endpoint survives as a deprecated alias; new
		// clients should POST /v1/query.
		mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</v1/query>; rel="successor-version"`)
			serveQuery(db, w, r)
		})

		srv := &http.Server{Addr: addr, Handler: mux}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe() }()
		fmt.Printf("serving /v1/query, /metrics, /debug/vars, /debug/pprof, /debug/queries{,/recent,/slow,/trace}, /healthz, /query (deprecated) on %s (tables: %s)\n",
			addr, strings.Join(db.TableNames(), ", "))
		select {
		case err := <-errc:
			return err
		case <-ctx.Done():
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}(db)
}

// serveQuery runs a count over ?table=T with repeatable ?where=
// predicates (same grammar as the -where flag). While it executes, the
// query is visible in /debug/queries with row-group progress; once done
// it lands in /debug/queries/recent.
func serveQuery(db *codecdb.DB, w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	if name == "" {
		http.Error(w, "table parameter is required", http.StatusBadRequest)
		return
	}
	t, err := db.Table(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	q := t.All().WithContext(r.Context())
	for _, s := range r.URL.Query()["where"] {
		p, err := parseWhere(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q = q.AndPred(p)
	}
	n, err := q.Count()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d\n", n)
}

// whereFlags collects repeatable -where flags, each parsed into a
// predicate tree. The flags AND together; within one flag, " or " joins
// disjuncts.
type whereFlags []codecdb.Pred

func (w *whereFlags) String() string {
	return fmt.Sprintf("%d predicates", len(*w))
}

// Set parses one -where expression: " or "-separated disjuncts, each
// either `col op value` or `col in v1,v2,...`.
func (w *whereFlags) Set(s string) error {
	p, err := parseWhere(s)
	if err != nil {
		return err
	}
	*w = append(*w, p)
	return nil
}

// parseWhere parses a -where expression into a predicate tree:
//
//	"level >= 4"                      → Col comparison
//	"status in ERROR,FATAL"           → dictionary IN
//	"level >= 4 or status = ERROR"    → AnyOf of the above
func parseWhere(s string) (codecdb.Pred, error) {
	tokens := strings.Fields(s)
	var branches []codecdb.Pred
	start := 0
	for i := 0; i <= len(tokens); i++ {
		if i < len(tokens) && !strings.EqualFold(tokens[i], "or") {
			continue
		}
		leaf, err := parseLeaf(tokens[start:i])
		if err != nil {
			return codecdb.Pred{}, fmt.Errorf("%v in %q", err, s)
		}
		branches = append(branches, leaf)
		start = i + 1
	}
	if len(branches) == 0 {
		return codecdb.Pred{}, fmt.Errorf(`empty predicate %q`, s)
	}
	return codecdb.AnyOf(branches...), nil
}

// parseLeaf parses one disjunct: `col op value` or `col in v1,v2,...`.
// Integer-looking values compare as integers, decimal-looking values as
// floats, anything else as a string.
func parseLeaf(parts []string) (codecdb.Pred, error) {
	if len(parts) != 3 {
		return codecdb.Pred{}, fmt.Errorf(`want "col op value" or "col in v1,v2"`)
	}
	if strings.EqualFold(parts[1], "in") {
		var vals []any
		for _, v := range strings.Split(parts[2], ",") {
			vals = append(vals, coerceValue(v))
		}
		return codecdb.In(parts[0], vals...), nil
	}
	op, err := parseOp(parts[1])
	if err != nil {
		return codecdb.Pred{}, err
	}
	return codecdb.Col(parts[0], op, coerceValue(parts[2])), nil
}

func coerceValue(s string) any {
	if iv, err := strconv.ParseInt(s, 10, 64); err == nil {
		return iv
	}
	if fv, err := strconv.ParseFloat(s, 64); err == nil {
		return fv
	}
	return s
}

func parseOp(s string) (codecdb.CmpOp, error) {
	switch strings.ToLower(s) {
	case "=", "==", "eq":
		return codecdb.Eq, nil
	case "!=", "<>", "ne":
		return codecdb.Ne, nil
	case "<", "lt":
		return codecdb.Lt, nil
	case "<=", "le":
		return codecdb.Le, nil
	case ">", "gt":
		return codecdb.Gt, nil
	case ">=", "ge":
		return codecdb.Ge, nil
	}
	return 0, fmt.Errorf("unknown comparison operator %q", s)
}

// explain renders the plan for a query assembled from -where flags:
// the static operator tree with plan choices, or, with -analyze, the
// executed tree with per-node wall time, rows, page IO, and allocations.
func explain(db *codecdb.DB, table string, wheres whereFlags, analyze, stats bool) error {
	if table == "" {
		return fmt.Errorf("-table is required")
	}
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	q := t.All()
	for _, w := range wheres {
		q = q.AndPred(w)
	}
	if err := q.Err(); err != nil {
		return err
	}
	var out string
	if analyze {
		t.ResetIOStats()
		out, err = q.ExplainAnalyze()
	} else {
		out, err = q.Explain()
	}
	if err != nil {
		return err
	}
	fmt.Print(out)
	if analyze && stats {
		printIOStats(t.IOStats())
	}
	return nil
}
