package main

import (
	"context"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"codecdb"
)

// serve mounts the engine's observability endpoints over one database:
// /metrics (Prometheus text exposition of the codecdb_* registry),
// /debug/vars (the same registry published through expvar), and the
// standard /debug/pprof profiling handlers. It blocks until interrupted.
func serve(dir, addr string, warm bool) error {
	return withDB(dir, func(db *codecdb.DB) error {
		if warm {
			// Touch every table with a full count (moves the query
			// counters) and a checksum scrub (reads every page, moving
			// the page and byte counters) so the first scrape is live.
			for _, name := range db.TableNames() {
				t, err := db.Table(name)
				if err != nil {
					return err
				}
				if _, err := t.All().Count(); err != nil {
					return err
				}
				if err := t.Verify(context.Background()); err != nil {
					return err
				}
			}
		}
		reg := codecdb.Metrics()
		reg.PublishExpvar("codecdb")
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

		srv := &http.Server{Addr: addr, Handler: mux}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe() }()
		fmt.Printf("serving /metrics, /debug/vars, /debug/pprof on %s (tables: %s)\n",
			addr, strings.Join(db.TableNames(), ", "))
		select {
		case err := <-errc:
			return err
		case <-ctx.Done():
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	})
}

// whereClause is one parsed -where predicate.
type whereClause struct {
	col string
	op  codecdb.CmpOp
	val any
}

// whereFlags collects repeatable -where "col op value" flags.
type whereFlags []whereClause

func (w *whereFlags) String() string {
	return fmt.Sprintf("%d predicates", len(*w))
}

// Set parses `col op value`; op is a SQL comparison (=, !=, <>, <, <=,
// >, >=) or its word form (eq, ne, lt, le, gt, ge). Integer-looking
// values compare as integers, decimal-looking values as floats, anything
// else as a string.
func (w *whereFlags) Set(s string) error {
	parts := strings.Fields(s)
	if len(parts) != 3 {
		return fmt.Errorf(`want "col op value", got %q`, s)
	}
	op, err := parseOp(parts[1])
	if err != nil {
		return err
	}
	var val any = parts[2]
	if iv, e := strconv.ParseInt(parts[2], 10, 64); e == nil {
		val = iv
	} else if fv, e := strconv.ParseFloat(parts[2], 64); e == nil {
		val = fv
	}
	*w = append(*w, whereClause{col: parts[0], op: op, val: val})
	return nil
}

func parseOp(s string) (codecdb.CmpOp, error) {
	switch strings.ToLower(s) {
	case "=", "==", "eq":
		return codecdb.Eq, nil
	case "!=", "<>", "ne":
		return codecdb.Ne, nil
	case "<", "lt":
		return codecdb.Lt, nil
	case "<=", "le":
		return codecdb.Le, nil
	case ">", "gt":
		return codecdb.Gt, nil
	case ">=", "ge":
		return codecdb.Ge, nil
	}
	return 0, fmt.Errorf("unknown comparison operator %q", s)
}

// explain renders the plan for a query assembled from -where flags:
// the static operator tree with plan choices, or, with -analyze, the
// executed tree with per-node wall time, rows, page IO, and allocations.
func explain(db *codecdb.DB, table string, wheres whereFlags, analyze, stats bool) error {
	if table == "" {
		return fmt.Errorf("-table is required")
	}
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	q := t.All()
	for _, w := range wheres {
		q = q.And(w.col, w.op, w.val)
	}
	var out string
	if analyze {
		t.ResetIOStats()
		out, err = q.ExplainAnalyze()
	} else {
		out, err = q.Explain()
	}
	if err != nil {
		return err
	}
	fmt.Print(out)
	if analyze && stats {
		printIOStats(t.IOStats())
	}
	return nil
}
