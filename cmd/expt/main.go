// Command expt regenerates the paper's tables and figures (see DESIGN.md
// for the experiment index). Each -run target prints one artifact:
//
//	expt -run fig1a                  # compression ratio comparison
//	expt -run fig7 -sf 0.05          # TPC-H query times at SF 0.05
//	expt -run all                    # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"codecdb/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment: fig1a|fig1b|table1|table2|fig5a|fig5b|ablation|sampling|overhead|models|fig6|fig7|fig8|fig9|fig10|all")
	sf := flag.Float64("sf", 0.02, "TPC-H / SSB scale factor for query experiments")
	rows := flag.Int("rows", 3000, "rows per corpus column for storage experiments")
	perCat := flag.Int("percat", 16, "columns per corpus category")
	seed := flag.Int64("seed", 42, "deterministic seed")
	dir := flag.String("dir", "", "data directory for query experiments (temp when empty)")
	flag.Parse()

	cfg := experiments.CorpusConfig{Seed: *seed, Rows: *rows, PerCat: *perCat}
	if err := dispatch(*run, cfg, *sf, *seed, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "expt:", err)
		os.Exit(1)
	}
}

func dispatch(run string, cfg experiments.CorpusConfig, sf float64, seed int64, dir string) error {
	out := os.Stdout
	storage := map[string]func() error{
		"fig1a": func() error {
			rep, err := experiments.Fig1a(cfg)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
		"fig1b": func() error {
			rep, err := experiments.Fig1b(200_000, seed)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
		"table1": func() error { experiments.Table1(out); return nil },
		"table2": func() error { experiments.Table2(cfg).Print(out); return nil },
		"fig5a": func() error {
			rep, err := experiments.Fig5a(cfg)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
		"fig5b": func() error {
			rep, err := experiments.Fig5b(cfg)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
		"ablation": func() error {
			rep, err := experiments.Ablation(cfg)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
		"sampling": func() error {
			rep, err := experiments.Sampling(cfg)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
		"overhead": func() error {
			rep, err := experiments.Overhead(2_000_000, seed)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
		"models": func() error {
			rep, err := experiments.Models(cfg)
			if err != nil {
				return err
			}
			rep.Print(out)
			return nil
		},
	}
	tpchExps := map[string]bool{"fig6": true, "fig7": true, "fig8": true, "fig9": true}

	names := []string{"fig1a", "fig1b", "table1", "table2", "fig5a", "fig5b",
		"ablation", "sampling", "overhead", "models", "fig6", "fig7", "fig8", "fig9", "fig10"}
	selected := []string{}
	if run == "all" {
		selected = names
	} else {
		selected = []string{run}
	}

	var tpchEnv *experiments.TPCHEnv
	defer func() {
		if tpchEnv != nil {
			tpchEnv.Close()
		}
	}()
	for _, name := range selected {
		switch {
		case storage[name] != nil:
			if err := storage[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case tpchExps[name]:
			if tpchEnv == nil {
				fmt.Fprintf(out, "[loading TPC-H at SF %.3f ...]\n", sf)
				var err error
				tpchEnv, err = experiments.SetupTPCH(sf, seed, dir)
				if err != nil {
					return err
				}
			}
			if err := runTPCH(name, tpchEnv, out); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case name == "fig10":
			fmt.Fprintf(out, "[loading SSB at SF %.3f ...]\n", sf)
			env, err := experiments.SetupSSB(sf, seed, dir)
			if err != nil {
				return err
			}
			rep, err := experiments.Fig10(env)
			env.Close()
			if err != nil {
				return err
			}
			rep.Print(out)
		default:
			return fmt.Errorf("unknown experiment %q (want one of %v)", name, names)
		}
		fmt.Fprintln(out)
	}
	return nil
}

func runTPCH(name string, env *experiments.TPCHEnv, out *os.File) error {
	switch name {
	case "fig6":
		rep, err := experiments.Fig6(env)
		if err != nil {
			return err
		}
		rep.Print(out)
	case "fig7":
		rep, err := experiments.Fig7(env)
		if err != nil {
			return err
		}
		rep.Print(out)
	case "fig8":
		rep, err := experiments.Fig8(env)
		if err != nil {
			return err
		}
		rep.Print(out)
	case "fig9":
		rep, err := experiments.Fig9(env)
		if err != nil {
			return err
		}
		rep.Print(out)
	}
	return nil
}
