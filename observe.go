package codecdb

import (
	"io"
	"log/slog"

	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
	"codecdb/internal/xcompress"
)

// Registry wiring: the engine's process-wide counters (colstore page IO,
// exec pool tasks, per-codec decompression) are exposed through the
// default obs registry as live functions, so `codecdb serve -metrics`
// scrapes them with no polling loop. Per-query metrics (count + latency
// histogram) are observed directly in eval.

var (
	queriesTotal = obs.Default().Counter(
		"codecdb_queries_total", "Queries evaluated (filter pipelines run to completion).")
	queryLatency = obs.Default().Histogram(
		"codecdb_query_seconds", "Query evaluation latency in seconds.", obs.DefBuckets)
)

func init() {
	r := obs.Default()
	r.CounterFunc("codecdb_pages_read_total",
		"Pages fetched across all readers since process start.",
		func() float64 { return float64(colstore.GlobalStats().PagesRead) })
	r.CounterFunc("codecdb_pages_pruned_total",
		"Pages disposed by zone maps without being fetched.",
		func() float64 { return float64(colstore.GlobalStats().PagesPruned) })
	r.CounterFunc("codecdb_pages_skipped_total",
		"Pages skipped by row selection.",
		func() float64 { return float64(colstore.GlobalStats().PagesSkipped) })
	r.CounterFunc("codecdb_read_bytes_total",
		"Bytes read from table files.",
		func() float64 { return float64(colstore.GlobalStats().BytesRead) })
	r.CounterFunc("codecdb_decompressed_bytes_total",
		"Page bytes produced by decompression in readers.",
		func() float64 { return float64(colstore.GlobalStats().BytesDecompressed) })
	r.CounterFunc("codecdb_read_seconds_total",
		"Wall time spent in file reads, in seconds.",
		func() float64 { return float64(colstore.GlobalStats().IONanos) / 1e9 })
	r.CounterFunc("codecdb_pages_coalesced_total",
		"Pages that rode along in a neighbouring page's coalesced read.",
		func() float64 { return float64(colstore.GlobalStats().PagesCoalesced) })
	r.CounterFunc("codecdb_prefetch_hits_total",
		"Pages served from prefetched buffers.",
		func() float64 { return float64(colstore.GlobalStats().PrefetchHits) })
	r.CounterFunc("codecdb_prefetch_misses_total",
		"Pages a consumer claimed before the prefetcher reached them.",
		func() float64 { return float64(colstore.GlobalStats().PrefetchMisses) })
	r.GaugeFunc("codecdb_prefetch_bytes_inflight",
		"Bytes currently staged in prefetch buffers awaiting consumption.",
		func() float64 { return float64(colstore.GlobalStats().BytesInFlight) })
	r.CounterFunc("codecdb_page_cache_hits_total",
		"Page bodies served from the decompressed-page cache (no read, no decompress).",
		func() float64 { return float64(colstore.GlobalStats().PageCacheHits) })
	r.CounterFunc("codecdb_page_cache_misses_total",
		"Page-cache lookups that fell through to the read path.",
		func() float64 { return float64(colstore.GlobalStats().PageCacheMisses) })

	r.GaugeFunc("codecdb_exec_tasks_inflight",
		"Worker-pool tasks currently executing.",
		func() float64 { return float64(exec.GlobalStats().InFlight) })
	r.CounterFunc("codecdb_exec_tasks_completed_total",
		"Worker-pool tasks finished since process start.",
		func() float64 { return float64(exec.GlobalStats().Completed) })
	r.CounterFunc("codecdb_exec_worker_panics_total",
		"Worker panics recovered by the pools.",
		func() float64 { return float64(exec.GlobalStats().Panics) })

	for i, cs := range xcompress.DecompressStats() {
		idx := i
		// SeriesName escapes the label value per text-format 0.0.4
		// (fmt's %q escapes Go-style, which diverges from the spec on
		// control characters).
		r.CounterFunc(obs.SeriesName("codecdb_codec_decompressions_total", "codec", cs.Codec),
			"Decompression calls per codec.",
			func() float64 { return float64(xcompress.DecompressStats()[idx].Decompressions) })
		r.CounterFunc(obs.SeriesName("codecdb_codec_decompressed_bytes_total", "codec", cs.Codec),
			"Decompressed output bytes per codec.",
			func() float64 { return float64(xcompress.DecompressStats()[idx].DecompressedBytes) })
	}
}

// Metrics returns the process-wide metrics registry, for embedding
// callers that want to serve or snapshot the engine's counters without
// the codecdb serve command.
func Metrics() *obs.Registry { return obs.Default() }

// Logger is the engine's nil-safe structured logger (a thin wrapper
// over log/slog). Inject one via Options.Logger to receive flush,
// quarantine, recovery, torn-tail, and slow-query events.
type Logger = obs.Logger

// NewJSONLogger returns a Logger emitting one JSON object per line.
func NewJSONLogger(w io.Writer) *Logger { return obs.NewJSONLogger(w) }

// NewLogger wraps an existing slog logger.
func NewLogger(s *slog.Logger) *Logger { return obs.NewLogger(s) }
