package codecdb

import (
	"math"
	"testing"
)

// pipelineBenchTable loads the executor benchmark's table: 1<<18 rows in
// 8192-row groups (32 row groups), a dictionary string column where the
// two-conjunct query keeps roughly 3/4 of rows, a dictionary int column
// doubling as the group-by key, and a float column for the sum terminal.
func pipelineBenchTable(b *testing.B, n int) (tbl *Table, want int64, wantSum float64) {
	b.Helper()
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	tag := make([][]byte, n)
	level := make([]int64, n)
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		level[i] = int64(i % 8)
		score[i] = float64(i%1000) / 10
		if i%97 == 0 {
			tag[i] = []byte("rare")
		} else {
			tag[i] = []byte("common")
			if level[i] < 6 {
				want++
				wantSum += score[i]
			}
		}
	}
	tbl, err = db.LoadTable("pipebench", []Column{
		{Name: "tag", Strings: tag, ForceEncoding: Dictionary, Forced: true},
		{Name: "level", Ints: level, ForceEncoding: Dictionary, Forced: true},
		{Name: "score", Floats: score},
	}, LoadOptions{RowGroupRows: 8192, PageRows: 1024})
	if err != nil {
		b.Fatal(err)
	}
	return tbl, want, wantSum
}

// BenchmarkPipelineVsBarrier runs the same two-conjunct query through
// both engines for each terminal: the morsel pipeline (one pass per row
// group, worker-local state, partials merged at the end) against the
// operator-at-a-time barrier path (full-table filter pass, then a
// full-table gather/aggregate pass). pagesRead/op makes the single-touch
// property visible; ns/op and allocs/op carry the pipelining win.
func BenchmarkPipelineVsBarrier(b *testing.B) {
	const n = 1 << 18
	tbl, want, wantSum := pipelineBenchTable(b, n)
	if g := tbl.inner.R.NumRowGroups(); g < 8 {
		b.Fatalf("bench table has %d row groups, want >= 8", g)
	}

	query := func() *Query { return tbl.Where("tag", Eq, "common").And("level", Lt, 6) }
	engines := []struct {
		name string
		wrap func(*Query) *Query
	}{
		{"Pipelined", func(q *Query) *Query { return q }},
		{"Barrier", func(q *Query) *Query { return q.withLegacyEngine() }},
	}

	run := func(b *testing.B, q *Query, step func(*Query) error) {
		b.Helper()
		tbl.ResetIOStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := step(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportQueryIO(b, tbl)
	}

	// Each terminal runs its two engines back to back, so every
	// pipelined-vs-barrier pair compares adjacent measurements.
	for _, eng := range engines {
		eng := eng
		b.Run("Count/"+eng.name, func(b *testing.B) {
			run(b, eng.wrap(query()), func(q *Query) error {
				got, err := q.Count()
				if err == nil && got != want {
					b.Fatalf("count = %d, want %d", got, want)
				}
				return err
			})
		})
	}
	for _, eng := range engines {
		eng := eng
		b.Run("SumFloat/"+eng.name, func(b *testing.B) {
			run(b, eng.wrap(query()), func(q *Query) error {
				got, err := q.SumFloat("score")
				if err == nil && math.Abs(got-wantSum) > 1e-6*wantSum {
					b.Fatalf("sum = %v, want %v", got, wantSum)
				}
				return err
			})
		})
	}
	for _, eng := range engines {
		eng := eng
		b.Run("GroupCount/"+eng.name, func(b *testing.B) {
			run(b, eng.wrap(query()), func(q *Query) error {
				got, err := q.GroupCount("level")
				if err == nil {
					var total int64
					for _, c := range got {
						total += c
					}
					if total != want {
						b.Fatalf("group total = %d, want %d", total, want)
					}
				}
				return err
			})
		})
	}
}

// BenchmarkPipelineVsBarrierClustered is the zone-map complement to
// BenchmarkPipelineVsBarrier: that table's values are uniformly
// interleaved, so every page is mixed and pagesPruned/op stays at zero —
// the pruning path never runs. Here both filter columns are clustered
// (tag in one leading block, level monotone across the file), so page
// zone maps dispose most pages without reading them and the benchmark
// exercises the prune branches of the kernels and the prefetch
// scheduler's page-list prediction.
func BenchmarkPipelineVsBarrierClustered(b *testing.B) {
	const n = 1 << 18
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	tag := make([][]byte, n)
	level := make([]int64, n)
	score := make([]float64, n)
	var want int64
	for i := 0; i < n; i++ {
		level[i] = int64(i * 8 / n) // monotone 0..7: zone maps cut level<6
		score[i] = float64(i%1000) / 10
		if i < n/8 {
			tag[i] = []byte("rare") // clustered block: whole pages dispose
		} else {
			tag[i] = []byte("common")
			if level[i] < 6 {
				want++
			}
		}
	}
	tbl, err := db.LoadTable("pipeclust", []Column{
		{Name: "tag", Strings: tag, ForceEncoding: Dictionary, Forced: true},
		{Name: "level", Ints: level, ForceEncoding: Dictionary, Forced: true},
		{Name: "score", Floats: score},
	}, LoadOptions{RowGroupRows: 8192, PageRows: 1024})
	if err != nil {
		b.Fatal(err)
	}

	query := func() *Query { return tbl.Where("tag", Eq, "common").And("level", Lt, 6) }

	// The clustered layout must actually engage the zone maps, or this
	// benchmark silently degenerates into the uniform one.
	tbl.ResetIOStats()
	if got, err := query().Count(); err != nil {
		b.Fatal(err)
	} else if got != want {
		b.Fatalf("count = %d, want %d", got, want)
	}
	if st := tbl.IOStats(); st.PagesPruned == 0 {
		b.Fatalf("clustered table pruned no pages: %+v", st)
	}

	for _, eng := range []struct {
		name string
		wrap func(*Query) *Query
	}{
		{"Pipelined", func(q *Query) *Query { return q }},
		{"Barrier", func(q *Query) *Query { return q.withLegacyEngine() }},
	} {
		eng := eng
		b.Run("Count/"+eng.name, func(b *testing.B) {
			q := eng.wrap(query())
			tbl.ResetIOStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := q.Count()
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("count = %d, want %d", got, want)
				}
			}
			b.StopTimer()
			reportQueryIO(b, tbl)
		})
	}
}
