package codecdb

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// pair (or sweep) isolates one mechanism — data skipping, stripe fan-out,
// batch column-read caching, the phase-concurrent hash table, sectional
// bitmap compression — against its naive alternative.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

// reportPageStats attaches the reader's per-operation page-skipping
// counters to the benchmark and resets them for the next subtest.
func reportPageStats(b *testing.B, r *colstore.Reader) {
	io := r.Stats()
	b.ReportMetric(float64(io.PagesRead)/float64(b.N), "pagesRead/op")
	b.ReportMetric(float64(io.PagesPruned)/float64(b.N), "pagesPruned/op")
	b.ReportMetric(float64(io.PagesSkipped)/float64(b.N), "pagesSkipped/op")
	r.ResetStats()
}

// ablationTable writes a single-column table used by the skipping bench.
func ablationTable(b *testing.B, n int) *colstore.Reader {
	b.Helper()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 2000)
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "v", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
	}}
	path := filepath.Join(b.TempDir(), "t.cdb")
	if err := colstore.WriteFile(path, schema, []colstore.ColumnData{{Ints: vals}},
		colstore.Options{RowGroupRows: 65536, PageRows: 4096}); err != nil {
		b.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r
}

// BenchmarkAblationDataSkipping compares gathering 0.1% of rows with the
// skipping reader against decoding the full column and indexing it — the
// value of page- and row-level skipping (§5.2).
func BenchmarkAblationDataSkipping(b *testing.B) {
	const n = 1 << 19
	r := ablationTable(b, n)
	pool := exec.NewPool(0)
	sel := bitutil.NewSectionalBitmap(n, 65536)
	rng := rand.New(rand.NewSource(1))
	var rows []int
	for i := 0; i < n/1000; i++ {
		row := rng.Intn(n)
		sel.Set(row)
		rows = append(rows, row)
	}
	b.Run("WithSkipping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.GatherInts(r, "v", sel, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DecodeAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			all, err := ops.ReadAllInts(r, "v", pool)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]int64, 0, len(rows))
			for _, row := range rows {
				out = append(out, all[row])
			}
		}
	})
}

// q6Table writes a TPC-H Q6-shaped table: a sorted dictionary "shipdate"
// column and a bit-packed "quantity" column. Sorted data gives each page a
// narrow value range, the layout page-level zone maps are built for.
func q6Table(b *testing.B, n int) *colstore.Reader {
	b.Helper()
	dates := make([]int64, n)
	qtys := make([]int64, n)
	rng := rand.New(rand.NewSource(6))
	for i := range dates {
		dates[i] = int64(i * 2000 / n) // sorted: ~2000 distinct "dates"
		qtys[i] = rng.Int63n(50)
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "shipdate", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
		{Name: "quantity", Type: colstore.TypeInt64, Encoding: encoding.KindBitPacked},
	}}
	path := filepath.Join(b.TempDir(), "q6.cdb")
	if err := colstore.WriteFile(path, schema,
		[]colstore.ColumnData{{Ints: dates}, {Ints: qtys}},
		colstore.Options{RowGroupRows: 65536, PageRows: 4096}); err != nil {
		b.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r
}

// BenchmarkFilterHotPath measures the steady-state filter hot path on a
// selective TPC-H Q6-shaped scan (shipdate < constant, ~2% selectivity):
// ns/op and allocs/op are the numbers BENCH_PR2.json tracks across PRs.
func BenchmarkFilterHotPath(b *testing.B) {
	const n = 1 << 19
	r := q6Table(b, n)
	pool := exec.NewPool(0)
	b.Run("DictLt", func(b *testing.B) {
		f := &ops.DictFilter{Col: "shipdate", Op: sboost.OpLt, IntValue: 40}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bm, err := f.Apply(r, pool)
			if err != nil {
				b.Fatal(err)
			}
			if bm.Cardinality() == 0 {
				b.Fatal("empty selection")
			}
		}
		reportPageStats(b, r)
	})
	b.Run("BitPackedLt", func(b *testing.B) {
		f := &ops.BitPackedFilter{Col: "quantity", Op: sboost.OpLt, Value: 24}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Apply(r, pool); err != nil {
				b.Fatal(err)
			}
		}
		reportPageStats(b, r)
	})
}

// BenchmarkAblationStripeCount sweeps the stripe fan-out of stripe hash
// aggregation; 1 stripe degenerates to a single hash table.
func BenchmarkAblationStripeCount(b *testing.B) {
	const n = 1 << 19
	rng := rand.New(rand.NewSource(2))
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 18)
		vals[i] = rng.Int63n(100)
	}
	specs := []ops.VecAgg{{Kind: ops.AggSumInt, Ints: vals}}
	pool := exec.NewPool(0)
	for _, stripes := range []int{1, 4, 16, 32, 128} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ops.StripeHashAggregateN(pool, keys, specs, stripes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("singleHashMap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.HashAggregate(keys, specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBatchCache measures the batch execution feature
// (§5.2): eight operators reading the same column with and without the
// shared cache.
func BenchmarkAblationBatchCache(b *testing.B) {
	const n = 1 << 18
	r := ablationTable(b, n)
	pool := exec.NewPool(0)
	const readers = 8
	b.Run("WithCache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := exec.NewBatchCache()
			var wg sync.WaitGroup
			for k := 0; k < readers; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, err := cache.Load("v", func() (any, error) {
						return ops.ReadAllInts(r, "v", pool)
					})
					if err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	})
	b.Run("WithoutCache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for k := 0; k < readers; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := ops.ReadAllInts(r, "v", pool); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	})
}

// BenchmarkAblationPCHBuild compares the lock-free phase-concurrent build
// against a mutex-guarded Go map under the same parallelism (§5.5).
func BenchmarkAblationPCHBuild(b *testing.B) {
	const n = 1 << 18
	keys := make([]int64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = rng.Int63n(1 << 30)
	}
	pool := exec.NewPool(0)
	b.Run("PhaseConcurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.HashJoinBuild(pool, keys, nil)
		}
	})
	b.Run("MutexMap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := make(map[int64][]int64, n)
			var mu sync.Mutex
			pool.ParallelChunks(n, func(start, end int) {
				for j := start; j < end; j++ {
					mu.Lock()
					m[keys[j]] = append(m[keys[j]], int64(j))
					mu.Unlock()
				}
			})
		}
	})
	b.Run("SingleThreadMap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := make(map[int64][]int64, n)
			for j, k := range keys {
				m[k] = append(m[k], int64(j))
			}
		}
	})
}

// BenchmarkAblationSectionalCompression measures RLE-compressing bitmap
// sections: the memory trade (§5.1) costs compress/decompress time.
func BenchmarkAblationSectionalCompression(b *testing.B) {
	const n = 1 << 20
	s := bitutil.NewSectionalBitmap(n, 65536)
	for i := 0; i+1 < n; i += 3 { // runs of 2 with gaps: RLE-friendly enough
		s.Set(i)
		s.Set(i + 1)
	}
	b.Run("CompressAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := bitutil.NewSectionalBitmap(n, 65536)
			s.ForEach(func(j int) { c.Set(j) })
			for sec := 0; sec < c.NumSections(); sec++ {
				c.Compress(sec)
			}
		}
	})
	b.Run("Cardinality/Uncompressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Cardinality()
		}
	})
}
