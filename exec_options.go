package codecdb

import (
	"context"
	"time"

	"codecdb/internal/ops"
)

// Engine selects the terminal evaluation strategy.
type Engine int

const (
	// EngineAuto (the zero value) is the default: the morsel-driven
	// pipelined executor.
	EngineAuto Engine = iota
	// EnginePipeline forces the morsel pipeline explicitly.
	EnginePipeline
	// EngineLegacy evaluates through the operator-at-a-time barrier path.
	// Kept for the property tests that compare the two engines
	// result-for-result; ingest tables are not supported.
	EngineLegacy
)

// ExecOptions are per-query execution budgets and switches. The zero
// value means "current defaults": pipelined engine, prefetch on, no
// worker cap, no deadline. A serving layer threads its admission-control
// budgets (deadline, worker cap, memory hint) through this same struct,
// so a query behaves identically whether the budget came from the caller
// or from the server.
type ExecOptions struct {
	// Engine picks the evaluation strategy (zero = pipelined).
	Engine Engine
	// DisablePrefetch turns off async page prefetch; every page is read
	// synchronously at first touch.
	DisablePrefetch bool
	// MaxWorkers caps how many pool workers this query may occupy
	// (0 = no cap beyond the pool size). The knob a multi-user server
	// turns so one scan cannot monopolise the shared pool.
	MaxWorkers int
	// Deadline, when non-zero, bounds the whole terminal evaluation: the
	// run stops with context.DeadlineExceeded at the next morsel
	// boundary. This is THE one place a deadline enters query execution —
	// WithContext deadlines work too, and when both are set the earlier
	// one wins (context semantics).
	Deadline time.Time
	// MemoryBytes is the query's declared working-set budget. The
	// executor does not enforce it; admission control uses it to decide
	// how many queries may run at once.
	MemoryBytes int64
}

// WithExec returns a copy of the query carrying the given execution
// options. Like the predicate builders it is copy-on-write; the receiver
// is not modified. The zero ExecOptions restores defaults.
func (q *Query) WithExec(o ExecOptions) *Query {
	cp := q.clone()
	cp.exec = o
	return cp
}

// Context lowers the options onto ctx: deadline, prefetch switch, and
// worker cap all travel as context values/deadlines so every layer below
// (pipeline, shared wave, sharded fan-out, legacy barrier) sees one
// consistent budget. This is the entry point for APIs that take a
// context rather than a Query (Table.Wave). The returned cancel must be
// called when the work finishes to release the deadline timer.
func (o ExecOptions) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	cancel := func() {}
	if !o.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, o.Deadline)
	}
	if o.DisablePrefetch {
		ctx = ops.ContextWithoutPrefetch(ctx)
	}
	if o.MaxWorkers > 0 {
		ctx = ops.ContextWithMaxWorkers(ctx, o.MaxWorkers)
	}
	return ctx, cancel
}

// execContext applies the query's ExecOptions to its own context.
func (q *Query) execContext() (context.Context, context.CancelFunc) {
	return q.exec.Context(q.context())
}
