package codecdb

import (
	"context"
	"fmt"
	"time"

	"codecdb/internal/ops"
)

// Terminal names what a wave query returns.
type Terminal int

const (
	// TerminalCount returns the matching row count.
	TerminalCount Terminal = iota
	// TerminalRowIDs returns matching row positions.
	TerminalRowIDs
	// TerminalSum sums a float column over the matches.
	TerminalSum
	// TerminalGroupCount counts matches per distinct value of a
	// dictionary-encoded column.
	TerminalGroupCount
)

// String names the terminal (wire format, flight recorder).
func (t Terminal) String() string {
	switch t {
	case TerminalCount:
		return "count"
	case TerminalRowIDs:
		return "rowids"
	case TerminalSum:
		return "sum"
	case TerminalGroupCount:
		return "group_count"
	}
	return "?"
}

func (t Terminal) term() (ops.TermKind, bool) {
	switch t {
	case TerminalCount:
		return ops.TermCount, true
	case TerminalRowIDs:
		return ops.TermRowIDs, true
	case TerminalSum:
		return ops.TermSumFloat, true
	case TerminalGroupCount:
		return ops.TermGroupCount, true
	}
	return 0, false
}

// WaveQuery is one member of a cooperative scan wave: a predicate (the
// zero Pred selects every row) and the terminal it feeds. Col names the
// measured column for TerminalSum and TerminalGroupCount.
type WaveQuery struct {
	Pred     Pred
	Terminal Terminal
	Col      string
}

// WaveResult is one member's answer. Exactly the field matching the
// query's terminal is populated; Err is that member's failure (bad
// predicate, unknown column, mid-scan IO error) and leaves the others
// unaffected.
type WaveResult struct {
	Count  int64
	RowIDs []int64
	Sum    float64
	Groups map[string]int64
	Err    error
}

// Wave evaluates several queries against the table in one cooperative
// scan: all members run as a single morsel-driven pass, so each page is
// fetched and decompressed once per wave, not once per query (with a
// page cache configured, repeat waves skip even that). This is the
// decompress-once primitive a multi-user serving layer batches
// concurrent queries onto.
//
// Budgets (deadline, worker cap, prefetch) travel on ctx the same way
// ExecOptions lowers them — use ExecOptions.Context to derive one.
// Ingest tables have no single shared reader; their members currently
// evaluate sequentially through the regular per-query path, preserving
// the API contract if not the IO bound.
func (t *Table) Wave(ctx context.Context, qs []WaveQuery) ([]WaveResult, error) {
	out := make([]WaveResult, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	if t.inner.S != nil {
		return t.waveSharded(ctx, qs)
	}
	start := time.Now()
	items := make([]ops.SharedItem, len(qs))
	for i, wq := range qs {
		term, ok := wq.Terminal.term()
		if !ok {
			out[i].Err = fmt.Errorf("codecdb: unknown terminal %d", wq.Terminal)
			continue
		}
		items[i] = ops.SharedItem{Term: term, Col: wq.Col}
		if wq.Terminal == TerminalSum {
			// Reject non-float measures before the scan; the shared gather
			// would otherwise reinterpret their pages as float bits.
			typ, ok := t.ColumnType(wq.Col)
			if !ok {
				out[i].Err = fmt.Errorf("codecdb: unknown column %q", wq.Col)
				continue
			}
			if typ != "FLOAT64" {
				out[i].Err = fmt.Errorf("codecdb: SumFloat needs a FLOAT64 column, %q is %s", wq.Col, typ)
				continue
			}
		}
		if wq.Terminal == TerminalGroupCount {
			// Validate the encoding up front so the member fails with the
			// same message the solo path gives.
			if _, _, _, err := groupLabelsOn(t.inner.R, wq.Col); err != nil {
				out[i].Err = err
				continue
			}
		}
		if !isZeroPred(wq.Pred) {
			bp, err := bindPredOn(t.inner.R, wq.Pred, false)
			if err != nil {
				out[i].Err = err
				continue
			}
			items[i].Plan = ops.BuildPlan(bp, t.inner.R)
		}
	}
	// Members that failed validation sit the wave out as no-op items.
	run := make([]ops.SharedItem, 0, len(items))
	runIdx := make([]int, 0, len(items))
	for i := range items {
		if out[i].Err == nil {
			run = append(run, items[i])
			runIdx = append(runIdx, i)
		}
	}
	results, errs, fatal := ops.RunShared(ctx, t.inner.R, t.db.inner.DataPool(), run)
	if fatal != nil {
		return out, fatal
	}
	for j, i := range runIdx {
		if errs[j] != nil {
			out[i].Err = errs[j]
			continue
		}
		out[i] = waveResultFrom(t, qs[i], results[j])
	}
	queriesTotal.Add(int64(len(qs)))
	queryLatency.Observe(time.Since(start).Seconds())
	return out, nil
}

// waveResultFrom lowers one pipeline result into the member's terminal
// shape.
func waveResultFrom(t *Table, wq WaveQuery, res *ops.PipelineResult) WaveResult {
	wr := WaveResult{Count: res.Count}
	switch wq.Terminal {
	case TerminalRowIDs:
		wr.RowIDs = res.RowIDs
	case TerminalSum:
		wr.Sum = res.Sum
	case TerminalGroupCount:
		_, _, labels, err := groupLabelsOn(t.inner.R, wq.Col)
		if err != nil {
			wr.Err = err
			break
		}
		wr.Groups = groupMap(res.Group, labels)
	}
	return wr
}

// waveSharded is the ingest-table arm: no shared static reader exists,
// so members evaluate sequentially through the regular sharded path.
func (t *Table) waveSharded(ctx context.Context, qs []WaveQuery) ([]WaveResult, error) {
	out := make([]WaveResult, len(qs))
	for i, wq := range qs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		q := t.All().WithContext(ctx)
		if !isZeroPred(wq.Pred) {
			q = q.AndPred(wq.Pred)
		}
		switch wq.Terminal {
		case TerminalCount:
			out[i].Count, out[i].Err = q.Count()
		case TerminalRowIDs:
			out[i].RowIDs, out[i].Err = q.RowIDs()
			out[i].Count = int64(len(out[i].RowIDs))
		case TerminalSum:
			out[i].Sum, out[i].Err = q.SumFloat(wq.Col)
		case TerminalGroupCount:
			out[i].Groups, out[i].Err = q.GroupCount(wq.Col)
		default:
			out[i].Err = fmt.Errorf("codecdb: unknown terminal %d", wq.Terminal)
		}
	}
	return out, nil
}

// isZeroPred reports whether p is the match-everything zero value (or an
// empty conjunction, which means the same).
func isZeroPred(p Pred) bool {
	return p.kind == predZero || (p.kind == predAll && len(p.kids) == 0)
}

// Epoch identifies the table's current data version. Two calls returning
// the same epoch saw the same rows, so epoch-keyed caches (results,
// decompressed pages) may serve stale-free hits; ingest tables bump the
// epoch on every durable append and flush. For static tables the epoch
// is the open reader's identity.
func (t *Table) Epoch() uint64 {
	if t.inner.S != nil {
		return t.inner.S.Epoch()
	}
	return t.inner.R.ID()
}
