package codecdb

import (
	"context"
	"fmt"

	"codecdb/internal/colstore"
	"codecdb/internal/core"
	"codecdb/internal/shard"
)

// FieldType is a column type for ingest-table schemas.
type FieldType uint8

// Ingest-table column types.
const (
	Int64Field FieldType = iota
	Float64Field
	StringField
)

// Field declares one column of an ingest table.
type Field struct {
	Name string
	Type FieldType
}

// IngestOptions tunes an ingest table.
type IngestOptions struct {
	// SealBytes is the memtable flush threshold in payload bytes
	// (default 8 MiB). Small values flush eagerly — useful in tests.
	SealBytes int
}

// QuarantinedShard names a shard that failed verification when the
// table was opened and is excluded from queries; its rows are the only
// ones an ingest table can lose, and Scrub reports it rather than Open
// failing.
type QuarantinedShard = shard.QuarantinedShard

// ScrubReport summarises a full integrity scrub of an ingest table.
type ScrubReport = shard.ScrubReport

// CreateIngestTable creates an empty WAL-backed table for row-at-a-time
// ingestion. Append is durable on return (group-committed fsync);
// sealed memtables are encoded in the background — each flush re-runs
// data-driven encoding selection on its own rows — into immutable
// shards governed by a checksummed manifest. Reopening the database
// after a crash recovers the table to exactly the acknowledged state.
func (db *DB) CreateIngestTable(name string, fields []Field, opts ...IngestOptions) (*Table, error) {
	var o IngestOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	fm := make([]core.FieldMeta, len(fields))
	for i, f := range fields {
		typ, err := f.colType()
		if err != nil {
			return nil, err
		}
		fm[i] = core.FieldMeta{Name: f.Name, Type: typ}
	}
	t, err := db.inner.CreateShardedTable(name, fm, shard.Options{SealBytes: o.SealBytes})
	if err != nil {
		return nil, err
	}
	return &Table{db: db, inner: t}, nil
}

func (f Field) colType() (colstore.Type, error) {
	switch f.Type {
	case Int64Field:
		return colstore.TypeInt64, nil
	case Float64Field:
		return colstore.TypeFloat64, nil
	case StringField:
		return colstore.TypeString, nil
	}
	return 0, fmt.Errorf("codecdb: field %q has unknown type %d", f.Name, f.Type)
}

// IsIngest reports whether this is a WAL-backed ingest table (as
// opposed to a static table written once by LoadTable).
func (t *Table) IsIngest() bool { return t.inner.S != nil }

// Append durably adds one row to an ingest table, in schema order.
// Values may be int/int64, float64, and string/[]byte, matching the
// column types. When Append returns nil the row has been fsynced into
// the write-ahead log and is visible to queries; on error nothing is
// acknowledged.
func (t *Table) Append(vals ...any) error {
	if t.inner.S == nil {
		return fmt.Errorf("codecdb: %s is a static table; use LoadTable to build it", t.inner.Name)
	}
	return t.inner.S.Append(vals...)
}

// Flush seals the ingest table's memtable and blocks until everything
// sealed so far is encoded into shards and committed to the manifest.
// Queries do not need Flush — they already see unflushed rows — but it
// bounds recovery replay and makes the rows scannable in encoded form.
func (t *Table) Flush() error {
	if t.inner.S == nil {
		return fmt.Errorf("codecdb: %s is a static table; nothing to flush", t.inner.Name)
	}
	return t.inner.S.Flush()
}

// FlushTrace returns the rendered span tree (Encode → Publish →
// Manifest → Trim) of the ingest table's most recent committed flush,
// "" before the first. The EXPLAIN ANALYZE of the write path.
func (t *Table) FlushTrace() string {
	if t.inner.S == nil {
		return ""
	}
	return t.inner.S.LastFlushTrace()
}

// Quarantined lists shards excluded when the table was opened because
// they failed verification. Empty for healthy tables and for static
// tables.
func (t *Table) Quarantined() []QuarantinedShard {
	if t.inner.S == nil {
		return nil
	}
	return t.inner.S.Quarantined()
}

// Scrub runs a full integrity pass over an ingest table: the manifest
// is re-read and checksum-verified, every live shard's pages and
// dictionaries are scrubbed, and every sealed WAL segment's records are
// CRC-checked. Corruption in live data is returned as an error;
// quarantined shards are reported in the result instead.
func (t *Table) Scrub(ctx context.Context) (ScrubReport, error) {
	if t.inner.S == nil {
		return ScrubReport{}, fmt.Errorf("codecdb: %s is a static table; use Verify", t.inner.Name)
	}
	return t.inner.S.Scrub(ctx)
}
