module codecdb

go 1.22
