package codecdb

import (
	"strings"
	"testing"
)

// reorderTable loads a table where predicate order matters: "tag" has a
// needle value clustered in the first rows (zone maps make an equality on
// it nearly free and highly selective), and "level" is uniform (a range
// on it keeps most rows and must scan everything when run first).
func reorderTable(t *testing.T, db *DB, n int) *Table {
	t.Helper()
	tag := make([][]byte, n)
	level := make([]int64, n)
	for i := 0; i < n; i++ {
		tag[i] = []byte("common")
		if i < n/200 {
			tag[i] = []byte("needle")
		}
		level[i] = int64(i % 8)
	}
	tbl, err := db.LoadTable("reorder", []Column{
		{Name: "tag", Strings: tag, ForceEncoding: Dictionary, Forced: true},
		{Name: "level", Ints: level, ForceEncoding: Dictionary, Forced: true},
	}, LoadOptions{RowGroupRows: 2048, PageRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestPlannerReorders is the acceptance check: a two-conjunct query with
// the selective predicate listed last must cost the same as listing it
// first — the planner reorders, so page IO is identical either way — and
// the selection-pushed pipeline must read strictly fewer pages than
// running each filter independently over the full table.
func TestPlannerReorders(t *testing.T) {
	const n = 40960
	db := openTestDB(t)
	tbl := reorderTable(t, db, n)

	run := func(q *Query) (int64, IOStats) {
		t.Helper()
		tbl.ResetIOStats()
		got, err := q.Count()
		if err != nil {
			t.Fatal(err)
		}
		return got, tbl.IOStats()
	}

	selFirst, ioFirst := run(tbl.Where("tag", Eq, "needle").And("level", Ge, 1))
	selLast, ioLast := run(tbl.Where("level", Ge, 1).And("tag", Eq, "needle"))
	if selFirst != selLast {
		t.Fatalf("counts differ by order: %d vs %d", selFirst, selLast)
	}
	want := int64(n / 200 * 7 / 8)
	if selFirst != want {
		t.Fatalf("count = %d, want %d", selFirst, want)
	}
	if ioFirst.PagesRead != ioLast.PagesRead ||
		ioFirst.PagesPruned != ioLast.PagesPruned ||
		ioFirst.PagesSkipped != ioLast.PagesSkipped {
		t.Fatalf("planner did not normalize order: first=%+v last=%+v", ioFirst, ioLast)
	}

	// Baseline: evaluate each conjunct independently (no selection pushed)
	// and intersect. The planned pipeline must read strictly fewer pages.
	naive := func() IOStats {
		t.Helper()
		tbl.ResetIOStats()
		if _, err := tbl.Where("level", Ge, 1).Count(); err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.Where("tag", Eq, "needle").Count(); err != nil {
			t.Fatal(err)
		}
		return tbl.IOStats()
	}
	ioNaive := naive()
	if ioLast.PagesRead >= ioNaive.PagesRead {
		t.Fatalf("selection pushdown read no fewer pages: planned=%d naive=%d",
			ioLast.PagesRead, ioNaive.PagesRead)
	}
	if ioLast.PagesSkipped == 0 {
		t.Fatal("no pages skipped; the selection was not threaded into the second filter")
	}

	// The plan itself must list the selective conjunct first regardless of
	// the order the user wrote.
	out, err := tbl.Where("level", Ge, 1).And("tag", Eq, "needle").Explain()
	if err != nil {
		t.Fatal(err)
	}
	tagAt := strings.Index(out, `DictFilter(tag = "needle")`)
	levelAt := strings.Index(out, "DictFilter(level >= 1)")
	if tagAt < 0 || levelAt < 0 {
		t.Fatalf("Explain missing filters:\n%s", out)
	}
	if tagAt > levelAt {
		t.Fatalf("selective conjunct not planned first:\n%s", out)
	}
}
