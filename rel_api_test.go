package codecdb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"codecdb/internal/obs"
)

// relAPITables loads an orders/customers pair for relational API tests.
func relAPITables(t *testing.T) (*Table, *Table, []string, []int64, []float64, map[string]string) {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(5))
	const nc, no = 30, 4000
	names := make([][]byte, nc)
	nations := make([][]byte, nc)
	nationOf := map[string]string{}
	for i := range names {
		names[i] = []byte(fmt.Sprintf("cust#%02d", i))
		nations[i] = []byte(fmt.Sprintf("NATION%d", i%5))
		nationOf[string(names[i])] = string(nations[i])
	}
	if _, err := db.LoadTable("customers", []Column{
		{Name: "c_name", Strings: names},
		{Name: "c_nation", Strings: nations},
	}); err != nil {
		t.Fatal(err)
	}
	cust := make([]string, no)
	year := make([]int64, no)
	price := make([]float64, no)
	oCust := make([][]byte, no)
	for i := 0; i < no; i++ {
		// Orders reference customers 0..39: a quarter dangle (no customer).
		cust[i] = fmt.Sprintf("cust#%02d", rng.Intn(40))
		oCust[i] = []byte(cust[i])
		year[i] = int64(1992 + rng.Intn(7))
		price[i] = float64(rng.Intn(100000)) / 100
	}
	if _, err := db.LoadTable("orders", []Column{
		{Name: "o_cust", Strings: oCust},
		{Name: "o_year", Ints: year},
		{Name: "o_price", Floats: price},
	}, LoadOptions{RowGroupRows: 512, PageRows: 128}); err != nil {
		t.Fatal(err)
	}
	ot, err := db.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := db.Table("customers")
	if err != nil {
		t.Fatal(err)
	}
	return ot, ct, cust, year, price, nationOf
}

func TestQueryJoinGroupByAggRows(t *testing.T) {
	ot, ct, cust, year, price, nationOf := relAPITables(t)
	got, err := ot.Where("o_year", Ge, 1995).
		JoinOn(ct.All(), "o_cust", "c_name").
		GroupBy("c_nation").
		AggRows(CountAll(), Sum("o_price"))
	if err != nil {
		t.Fatal(err)
	}
	wantCount := map[string]int64{}
	wantSum := map[string]float64{}
	for i := range cust {
		nation, ok := nationOf[cust[i]]
		if !ok || year[i] < 1995 {
			continue
		}
		wantCount[nation]++
		wantSum[nation] += price[i]
	}
	if len(got.Data) != len(wantCount) {
		t.Fatalf("groups = %d, want %d", len(got.Data), len(wantCount))
	}
	if want := []string{"c_nation", "count", "sum_o_price"}; strings.Join(got.Cols, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v, want %v", got.Cols, want)
	}
	for _, row := range got.Data {
		nation := row[0].(string)
		if row[1].(int64) != wantCount[nation] {
			t.Errorf("%s count = %d, want %d", nation, row[1], wantCount[nation])
		}
		if d := row[2].(float64) - wantSum[nation]; d > 1e-6 || d < -1e-6 {
			t.Errorf("%s sum = %v, want %v", nation, row[2], wantSum[nation])
		}
	}
}

func TestQueryRowsOrderByLimit(t *testing.T) {
	ot, _, _, year, price, _ := relAPITables(t)
	got, err := ot.Where("o_year", Eq, 1993).
		OrderBy("o_price", true).
		Limit(10).
		Rows("o_price", "o_cust")
	if err != nil {
		t.Fatal(err)
	}
	type pr struct {
		p float64
		i int
	}
	var want []pr
	for i := range price {
		if year[i] == 1993 {
			want = append(want, pr{price[i], i})
		}
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].p > want[b].p })
	if len(got.Data) != 10 {
		t.Fatalf("rows = %d, want 10", len(got.Data))
	}
	for i, row := range got.Data {
		if row[0].(float64) != want[i].p {
			t.Fatalf("row %d price = %v, want %v", i, row[0], want[i].p)
		}
	}
}

func TestQuerySemiAntiJoinCount(t *testing.T) {
	ot, ct, cust, _, _, nationOf := relAPITables(t)
	nation0 := ct.Where("c_nation", Eq, "NATION0")
	semi, err := ot.All().SemiJoin(nation0, "o_cust", "c_name").Count()
	if err != nil {
		t.Fatal(err)
	}
	anti, err := ot.All().AntiJoin(nation0, "o_cust", "c_name").Count()
	if err != nil {
		t.Fatal(err)
	}
	var wantSemi int64
	for i := range cust {
		if nationOf[cust[i]] == "NATION0" {
			wantSemi++
		}
	}
	if semi != wantSemi {
		t.Fatalf("semi count = %d, want %d", semi, wantSemi)
	}
	if semi+anti != int64(len(cust)) {
		t.Fatalf("semi %d + anti %d != total %d", semi, anti, len(cust))
	}
}

func TestQueryJoinValidation(t *testing.T) {
	ot, ct, _, _, _, _ := relAPITables(t)
	if _, err := ot.All().JoinOn(ct.All(), "no_such_col", "c_name").Count(); err == nil {
		t.Fatal("missing probe column not rejected")
	}
	if _, err := ot.All().JoinOn(ct.All(), "o_cust", "no_such_col").Count(); err == nil {
		t.Fatal("missing build column not rejected")
	}
	if _, err := ot.All().Limit(-1).Rows("o_cust"); err == nil {
		t.Fatal("negative limit not rejected")
	}
	if _, err := ot.All().GroupBy("o_year").Rows("o_year"); err == nil {
		t.Fatal("Rows on grouped query not rejected")
	}
	// Build side with its own join is rejected.
	nested := ct.All().JoinOn(ot.All(), "c_name", "o_cust")
	if _, err := ot.All().JoinOn(nested, "o_cust", "c_name").Count(); err == nil {
		t.Fatal("nested relational build side not rejected")
	}
}

// relSpanDelta converts an IOStats delta to the span IO shape.
func relSpanDelta(before, after IOStats) obs.SpanIO {
	return obs.SpanIO{
		PagesRead:         after.PagesRead - before.PagesRead,
		PagesPruned:       after.PagesPruned - before.PagesPruned,
		PagesSkipped:      after.PagesSkipped - before.PagesSkipped,
		BytesRead:         after.BytesRead - before.BytesRead,
		BytesDecompressed: after.BytesDecompressed - before.BytesDecompressed,
	}
}

func addSpanIO(a, b obs.SpanIO) obs.SpanIO {
	return obs.SpanIO{
		PagesRead:         a.PagesRead + b.PagesRead,
		PagesPruned:       a.PagesPruned + b.PagesPruned,
		PagesSkipped:      a.PagesSkipped + b.PagesSkipped,
		BytesRead:         a.BytesRead + b.BytesRead,
		BytesDecompressed: a.BytesDecompressed + b.BytesDecompressed,
	}
}

// TestExplainAnalyzeRelIOConsistent extends the IO-sum acceptance check
// to relational plans: on a joined query, the span tree's page counters
// must account exactly for the IOStats deltas of BOTH tables — the
// build-side scan against the dimension table and the probe pipeline
// against the fact table — and within the probe pipeline the stage
// children (Prepare, filters, Join, sink) must sum to the pipeline's own
// delta.
func TestExplainAnalyzeRelIOConsistent(t *testing.T) {
	ot, ct, _, _, _, _ := relAPITables(t)
	ot.ResetIOStats()
	ct.ResetIOStats()
	oBefore, cBefore := ot.IOStats(), ct.IOStats()
	root, n, err := ot.Where("o_year", Ge, 1995).
		JoinOn(ct.All(), "o_cust", "c_name").
		AnalyzeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("joined count is zero; the check would be vacuous")
	}
	delta := addSpanIO(relSpanDelta(oBefore, ot.IOStats()), relSpanDelta(cBefore, ct.IOStats()))
	if sum := root.SumIO(); sum != delta {
		t.Fatalf("span IO sum %+v != combined IOStats delta %+v\n%s", sum, delta, root.Render())
	}
	pipe := findSpan(root, "Pipeline[relational]")
	if pipe == nil {
		t.Fatalf("no relational pipeline span:\n%s", root.Render())
	}
	if sum := pipe.SumIO(); sum != pipe.IO() {
		t.Fatalf("pipeline stage IO sum %+v != pipeline delta %+v\n%s", sum, pipe.IO(), root.Render())
	}
	if pipe.IO().PagesRead == 0 {
		t.Fatal("relational pipeline recorded no page reads")
	}
	join := findSpan(pipe, "Join[j1 inner]")
	if join == nil {
		t.Fatalf("no join stage span:\n%s", root.Render())
	}
	if in, out := join.Rows(); in == 0 || out != n {
		t.Fatalf("join rows = %d→%d, want →%d", in, out, n)
	}
}

// TestTracedTopKSortSpan checks an ordered, limited Rows query renders
// the top-K sort sink with its row flow.
func TestTracedTopKSortSpan(t *testing.T) {
	ot, _, _, _, _, _ := relAPITables(t)
	root := obs.NewSpan("terminal")
	q := ot.Where("o_year", Eq, 1993).OrderBy("o_price", true).Limit(10)
	q = q.WithContext(obs.ContextWithSpan(q.context(), root))
	rows, err := q.Rows("o_price", "o_cust")
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	sortSpan := findSpan(root, "Sort[top 10]")
	if sortSpan == nil {
		t.Fatalf("no top-K sort span in tree:\n%s", root.Render())
	}
	if _, out := sortSpan.Rows(); out != int64(len(rows.Data)) {
		t.Fatalf("sort rows out = %d, want %d", out, len(rows.Data))
	}
}

// TestExplainAnalyzeRendersJoin checks the flight-path: a joined Count
// traced through ExplainAnalyze shows the Join stage and sink as pipeline
// stages.
func TestExplainAnalyzeRendersJoin(t *testing.T) {
	ot, ct, _, _, _, _ := relAPITables(t)
	out, err := ot.Where("o_year", Ge, 1995).
		JoinOn(ct.All(), "o_cust", "c_name").
		ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Join[j1 inner]") {
		t.Fatalf("ExplainAnalyze missing Join stage:\n%s", out)
	}
	if !strings.Contains(out, "GroupBy[") {
		t.Fatalf("ExplainAnalyze missing GroupBy sink:\n%s", out)
	}
	if !strings.Contains(out, "build rows=") {
		t.Fatalf("ExplainAnalyze missing build row count:\n%s", out)
	}
}
