package codecdb

import (
	"bytes"
	"path/filepath"
	"testing"
)

func openTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func loadEvents(t *testing.T, db *DB, n int) *Table {
	t.Helper()
	ts := make([]int64, n)
	status := make([][]byte, n)
	level := make([]int64, n)
	lat := make([]float64, n)
	codes := [][]byte{[]byte("OK"), []byte("ERROR"), []byte("RETRY"), []byte("TIMEOUT")}
	for i := 0; i < n; i++ {
		ts[i] = int64(1_700_000_000 + i)
		status[i] = codes[i%len(codes)]
		level[i] = int64(i % 5)
		lat[i] = float64(i%100) / 10
	}
	tbl, err := db.LoadTable("events", []Column{
		{Name: "ts", Ints: ts},
		{Name: "status", Strings: status, ForceEncoding: Dictionary, Forced: true},
		{Name: "level", Ints: level, ForceEncoding: Dictionary, Forced: true},
		{Name: "latency", Floats: lat},
	}, LoadOptions{RowGroupRows: 1024, PageRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestOpenLoadQuery(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 4000)
	if tbl.NumRows() != 4000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	cols := tbl.Columns()
	if len(cols) != 4 || cols[1] != "status" {
		t.Fatalf("columns = %v", cols)
	}
	// Auto-encoding: the sorted ts column must have selected delta.
	encs, err := db.Encodings("events")
	if err != nil {
		t.Fatal(err)
	}
	if encs["ts"] != "DELTA_BINARY_PACKED" {
		t.Fatalf("ts encoding = %s", encs["ts"])
	}

	n, err := tbl.Where("status", Eq, "ERROR").Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("ERROR count = %d, want 1000", n)
	}
	// Conjunction across encodings: dict + dict int.
	n, err = tbl.Where("status", Eq, "ERROR").And("level", Lt, 2).Count()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 4000; i++ {
		if i%4 == 1 && i%5 < 2 {
			want++
		}
	}
	if n != int64(want) {
		t.Fatalf("conjunction = %d, want %d", n, want)
	}
}

func TestQueryGathersAndAggregates(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 2000)
	vals, err := tbl.Where("status", Eq, "RETRY").Ints("ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 500 {
		t.Fatalf("gathered %d", len(vals))
	}
	for i, v := range vals {
		if (v-1_700_000_000)%4 != 2 {
			t.Fatalf("row %d value %d is not a RETRY row", i, v)
		}
	}
	strs, err := tbl.Where("level", Eq, 0).Strings("status")
	if err != nil {
		t.Fatal(err)
	}
	if len(strs) != 400 {
		t.Fatalf("gathered %d strings", len(strs))
	}
	groups, err := tbl.All().GroupCount("status")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 || groups["OK"] != 500 {
		t.Fatalf("groups = %v", groups)
	}
	sum, err := tbl.Where("latency", Lt, 1.0).SumFloat("latency")
	if err != nil {
		t.Fatal(err)
	}
	if sum <= 0 {
		t.Fatalf("sum = %v", sum)
	}
	ids, err := tbl.Where("status", Eq, "ERROR").RowIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 500 || ids[0] != 1 {
		t.Fatalf("row ids start %v", ids[:3])
	}
}

func TestQueryINAndLike(t *testing.T) {
	db := openTestDB(t)
	tbl := loadEvents(t, db, 2000)
	n, err := tbl.All().AndIn("status", "ERROR", "TIMEOUT").Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("IN count = %d", n)
	}
	n, err = tbl.All().AndLike("status", func(e []byte) bool {
		return bytes.HasSuffix(e, []byte("Y")) // RETRY
	}).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("LIKE count = %d", n)
	}
}

func TestTwoColumnComparison(t *testing.T) {
	db := openTestDB(t)
	n := 1500
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i % 100)
		b[i] = int64((i + 37) % 100)
	}
	tbl, err := db.LoadTable("pair", []Column{
		{Name: "a", Ints: a, ForceEncoding: Dictionary, Forced: true, DictGroup: "g"},
		{Name: "b", Ints: b, ForceEncoding: Dictionary, Forced: true, DictGroup: "g"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.All().AndColumns("a", Lt, "b").Count()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := range a {
		if a[i] < b[i] {
			want++
		}
	}
	if got != want {
		t.Fatalf("two-column count = %d, want %d", got, want)
	}
}

func TestCatalogSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	loadEvents(t, db, 500)
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl, err := db2.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d after reopen", tbl.NumRows())
	}
	if names := db2.TableNames(); len(names) != 1 {
		t.Fatalf("names = %v", names)
	}
}

func TestSelectorTrainSaveLoad(t *testing.T) {
	sorted := make([]int64, 1500)
	runs := make([]int64, 1500)
	lowCard := make([]int64, 1500)
	for i := range sorted {
		sorted[i] = int64(i)
		runs[i] = int64(i / 100)
		lowCard[i] = int64((i * 13) % 4)
	}
	strs := make([][]byte, 1500)
	for i := range strs {
		strs[i] = []byte{byte('a' + i%3)}
	}
	sel, err := TrainSelector([]Column{
		{Name: "sorted", Ints: sorted},
		{Name: "runs", Ints: runs},
		{Name: "lowCard", Ints: lowCard},
		{Name: "strs", Strings: strs},
	}, TrainOptions{Hidden: 16, Epochs: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := sel.Save(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSelector(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SelectInt(sorted) != sel.SelectInt(sorted) {
		t.Fatal("restored selector disagrees")
	}
	// A DB opened with the selector uses it for auto encoding.
	db, err := Open(t.TempDir(), Options{Selector: restored})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.LoadTable("t", []Column{{Name: "v", Ints: sorted}}); err != nil {
		t.Fatal(err)
	}
}

func TestTableNameAndXorFloat(t *testing.T) {
	db := openTestDB(t)
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = 20 + float64(i/50)/4
	}
	tbl, err := db.LoadTable("sensor", []Column{
		{Name: "temp", Floats: vals, ForceEncoding: XorFloat, Forced: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "sensor" {
		t.Fatalf("Name = %q", tbl.Name())
	}
	encs, _ := db.Encodings("sensor")
	if encs["temp"] != "XOR_FLOAT" {
		t.Fatalf("temp encoding = %s", encs["temp"])
	}
	sum, err := tbl.Where("temp", Lt, 21.0).SumFloat("temp")
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, v := range vals {
		if v < 21.0 {
			want += v
		}
	}
	if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum %v, want %v", sum, want)
	}
}

func TestPlainStringPredicates(t *testing.T) {
	// Strings on a plain (non-dictionary) column take the decode-and-test
	// path; results must match the dictionary path semantics exactly.
	db := openTestDB(t)
	n := 600
	strs := make([][]byte, n)
	for i := range strs {
		strs[i] = []byte{byte('a' + i%26)}
	}
	tbl, err := db.LoadTable("p", []Column{
		{Name: "s", Strings: strs, ForceEncoding: Plain, Forced: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		op   CmpOp
		v    string
		want func(string) bool
	}{
		{Eq, "c", func(s string) bool { return s == "c" }},
		{Lt, "d", func(s string) bool { return s < "d" }},
		{Ge, "x", func(s string) bool { return s >= "x" }},
		{Ne, "a", func(s string) bool { return s != "a" }},
		{Le, "b", func(s string) bool { return s <= "b" }},
		{Gt, "y", func(s string) bool { return s > "y" }},
	} {
		got, err := tbl.Where("s", c.op, c.v).Count()
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, s := range strs {
			if c.want(string(s)) {
				want++
			}
		}
		if got != want {
			t.Fatalf("op %v %q: got %d, want %d", c.op, c.v, got, want)
		}
	}
}

func TestDefaultSelectorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training in short mode")
	}
	sel, err := TrainDefaultSelector(1)
	if err != nil {
		t.Fatal(err)
	}
	sorted := make([]int64, 2000)
	for i := range sorted {
		sorted[i] = int64(i)
	}
	if got := sel.SelectInt(sorted); got != Delta {
		t.Logf("default selector picked %v for sorted data", got)
	}
	strs := make([][]byte, 1000)
	for i := range strs {
		strs[i] = []byte{byte('a' + i%3)}
	}
	if got := sel.SelectString(strs); got != Dictionary && got != DictRLE {
		t.Fatalf("default selector picked %v for low-card strings", got)
	}
}

func TestBadInputsError(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.LoadTable("bad", []Column{{Name: "x"}}); err == nil {
		t.Fatal("column with no data should error")
	}
	if _, err := db.LoadTable("bad2", []Column{{Name: "x", Ints: []int64{1}, Floats: []float64{1}}}); err == nil {
		t.Fatal("column with two data kinds should error")
	}
	tbl := loadEvents(t, db, 100)
	if _, err := tbl.Where("missing", Eq, 1).Count(); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := tbl.Where("ts", Eq, struct{}{}).Count(); err == nil {
		t.Fatal("unsupported value type should error")
	}
	if _, err := tbl.All().GroupCount("latency"); err == nil {
		t.Fatal("GroupCount on non-dict column should error")
	}
}
