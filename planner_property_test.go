package codecdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"codecdb/internal/colstore"
)

// propData holds the raw arrays behind the property-test table, so the
// reference evaluator can full-scan them in memory.
type propData struct {
	cat, tag     [][]byte
	grade, small []int64
	seq          []int64
	score        []float64
}

var propCats = [][]byte{
	[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte("delta"), []byte("omega"),
}

// propTable loads a table covering every planner-relevant encoding: two
// dictionary string columns sharing one dictionary (two-column compares),
// a dictionary int, a delta int, a bit-packed int, and a float column.
func propTable(t *testing.T, db *DB, name string, n, formatVersion int) *propData {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	d := &propData{
		cat: make([][]byte, n), tag: make([][]byte, n),
		grade: make([]int64, n), small: make([]int64, n),
		seq: make([]int64, n), score: make([]float64, n),
	}
	seq := int64(100)
	for i := 0; i < n; i++ {
		d.cat[i] = propCats[rng.Intn(len(propCats))]
		d.tag[i] = propCats[rng.Intn(len(propCats))]
		d.grade[i] = int64(rng.Intn(7))
		d.small[i] = rng.Int63n(1000)
		seq += rng.Int63n(5)
		d.seq[i] = seq
		d.score[i] = float64(rng.Intn(100)) / 10
	}
	_, err := db.LoadTable(name, []Column{
		{Name: "cat", Strings: d.cat, ForceEncoding: Dictionary, Forced: true, DictGroup: "g"},
		{Name: "tag", Strings: d.tag, ForceEncoding: Dictionary, Forced: true, DictGroup: "g"},
		{Name: "grade", Ints: d.grade, ForceEncoding: Dictionary, Forced: true},
		{Name: "seq", Ints: d.seq, ForceEncoding: Delta, Forced: true},
		{Name: "small", Ints: d.small, ForceEncoding: BitPacked, Forced: true},
		{Name: "score", Floats: d.score},
	}, LoadOptions{RowGroupRows: 512, PageRows: 128, FormatVersion: formatVersion})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// genLeaf draws one random leaf predicate together with its reference
// row evaluator over the raw arrays. Values sometimes land off-domain so
// provably-empty/all rewrites get exercised too.
func genLeaf(rng *rand.Rand, d *propData) (Pred, func(i int) bool) {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	op := ops[rng.Intn(len(ops))]
	switch rng.Intn(8) {
	case 0: // dict string compare, occasionally off-dictionary
		v := propCats[rng.Intn(len(propCats))]
		if rng.Intn(5) == 0 {
			v = []byte("zzz")
		}
		pred := bytesPred(op, v)
		return Col("cat", op, string(v)), func(i int) bool { return pred(d.cat[i]) }
	case 1: // dict int compare
		v := int64(rng.Intn(9) - 1)
		pred := intPred(op, v)
		return Col("grade", op, v), func(i int) bool { return pred(d.grade[i]) }
	case 2: // delta compare
		v := d.seq[rng.Intn(len(d.seq))] + int64(rng.Intn(7)-3)
		pred := intPred(op, v)
		return Col("seq", op, v), func(i int) bool { return pred(d.seq[i]) }
	case 3: // bit-packed compare
		v := int64(rng.Intn(1200) - 100)
		pred := intPred(op, v)
		return Col("small", op, v), func(i int) bool { return pred(d.small[i]) }
	case 4: // oblivious float compare
		v := float64(rng.Intn(110)) / 10
		pred := floatPred(op, v)
		return Col("score", op, v), func(i int) bool { return pred(d.score[i]) }
	case 5: // dictionary IN
		k := 1 + rng.Intn(3)
		vals := make([]any, k)
		set := make(map[string]bool, k)
		for j := 0; j < k; j++ {
			v := propCats[rng.Intn(len(propCats))]
			vals[j] = string(v)
			set[string(v)] = true
		}
		return In("cat", vals...), func(i int) bool { return set[string(d.cat[i])] }
	case 6: // LIKE over the dictionary
		letter := []byte{byte('a' + rng.Intn(26))}
		match := func(v []byte) bool { return bytes.Contains(v, letter) }
		return Like("cat", match), func(i int) bool { return match(d.cat[i]) }
	default: // two-column compare through the shared dictionary
		pred := func(i int) bool { return cmpMatch(bytes.Compare(d.cat[i], d.tag[i]), op) }
		return Cols("cat", op, "tag"), pred
	}
}

// genPred draws a random predicate tree of bounded depth with its
// reference evaluator.
func genPred(rng *rand.Rand, d *propData, depth int) (Pred, func(i int) bool) {
	if depth == 0 {
		if rng.Intn(6) == 0 { // NOT of a leaf
			p, ref := genLeaf(rng, d)
			return Not(p), func(i int) bool { return !ref(i) }
		}
		return genLeaf(rng, d)
	}
	switch rng.Intn(5) {
	case 0, 1:
		return genPred(rng, d, 0)
	case 2, 3: // conjunction
		k := 2 + rng.Intn(2)
		kids := make([]Pred, k)
		refs := make([]func(i int) bool, k)
		for j := range kids {
			kids[j], refs[j] = genPred(rng, d, depth-1)
		}
		return AllOf(kids...), func(i int) bool {
			for _, r := range refs {
				if !r(i) {
					return false
				}
			}
			return true
		}
	default: // disjunction
		k := 2 + rng.Intn(2)
		kids := make([]Pred, k)
		refs := make([]func(i int) bool, k)
		for j := range kids {
			kids[j], refs[j] = genPred(rng, d, depth-1)
		}
		return AnyOf(kids...), func(i int) bool {
			for _, r := range refs {
				if r(i) {
					return true
				}
			}
			return false
		}
	}
}

// TestPlannerMatchesNaiveFullScan is the planner's correctness property:
// for random AND/OR/NOT trees over every encoding, the planned, selection-
// threaded, reordered execution returns bit-identical row sets to a naive
// in-memory full scan — on v2.1 files (page statistics drive estimates and
// skipping) and on legacy v1 files (no page stats, estimator falls back to
// structural heuristics).
func TestPlannerMatchesNaiveFullScan(t *testing.T) {
	const n = 3000
	db := openTestDB(t)
	formats := []struct {
		name    string
		version int
	}{
		{"v2.1", 0}, // 0 = current format: checksums + page statistics
		{"v1", colstore.FormatV1},
	}
	for fi, f := range formats {
		f := f
		t.Run(f.name, func(t *testing.T) {
			d := propTable(t, db, fmt.Sprintf("prop%d", fi), n, f.version)
			tbl, err := db.Table(fmt.Sprintf("prop%d", fi))
			if err != nil {
				t.Fatal(err)
			}
			for iter := 0; iter < 60; iter++ {
				rng := rand.New(rand.NewSource(int64(1000*fi + iter)))
				p, ref := genPred(rng, d, 1+rng.Intn(2))
				q := tbl.Query(p)
				if err := q.Err(); err != nil {
					t.Fatalf("iter %d: build error: %v", iter, err)
				}
				got, err := q.RowIDs()
				if err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
				var want []int64
				for i := 0; i < n; i++ {
					if ref(i) {
						want = append(want, int64(i))
					}
				}
				if len(got) != len(want) {
					t.Fatalf("iter %d: planned rows = %d, naive rows = %d", iter, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("iter %d: row %d: planned %d, naive %d", iter, j, got[j], want[j])
					}
				}
			}
		})
	}
}
