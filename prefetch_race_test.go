package codecdb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"codecdb/internal/colstore"
)

// TestPrefetchUnderConcurrentQueries hammers one table from many
// goroutines with the prefetcher active, interleaving queries whose
// context is cancelled mid-scan. Run under -race (make check wires it
// in): the fetcher's background goroutine shares page buffers with
// consumer workers, and cancellation can land at any point in the
// fetch/serve/release cycle. Every query must end in a correct result
// or context.Canceled — and once the storm passes, the bytes-in-flight
// gauge must read zero: cancelled fetchers released every buffer.
func TestPrefetchUnderConcurrentQueries(t *testing.T) {
	const n = 3000
	db := openTestDB(t)
	propTable(t, db, "preflight", n, 0)
	tbl, err := db.Table("preflight")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tbl.Where("grade", Ge, 1).Count()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 30; i++ {
				q := tbl.Where("grade", Ge, 1)
				cancelled := i%3 == 0
				if cancelled {
					// A deadline somewhere inside the scan: the query may
					// finish first or die mid-morsel, both are legal.
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(rng.Intn(200))*time.Microsecond)
					q = q.WithContext(ctx)
					defer cancel()
				}
				got, err := q.Count()
				switch {
				case err == nil:
					if got != want {
						errs <- fmt.Errorf("goroutine %d iter %d: count = %d, want %d", g, i, got, want)
						return
					}
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					// expected for the cancelled fraction
				default:
					errs <- fmt.Errorf("goroutine %d iter %d: unexpected error: %v", g, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if bif := colstore.GlobalStats().BytesInFlight; bif != 0 {
		t.Fatalf("bytes-in-flight gauge = %d after concurrent storm, want 0", bif)
	}
}

