package codecdb

import (
	"testing"
)

// Guards for the flight recorder's bounded-overhead promise, mirroring
// the tracer guard in obs_guard_test.go: with the recorder on (the
// production default), an untraced query pays a small constant number
// of allocations over a recorder-off run — and that constant must not
// scale with the number of morsels, i.e. the per-morsel hot path
// (progress hooks, context lookup) allocates nothing.

// recorderAllocDelta measures allocs/op of a two-conjunct count with
// the recorder on minus recorder off.
func recorderAllocDelta(t testing.TB, tbl *Table) float64 {
	fr := FlightRecorder()
	run := func() {
		if _, err := tbl.Where("v", Lt, 10).Count(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm lazily-initialised state under both modes
	fr.SetEnabled(false)
	defer fr.SetEnabled(true)
	run()
	off := testing.AllocsPerRun(50, run)
	fr.SetEnabled(true)
	run()
	on := testing.AllocsPerRun(50, run)
	return on - off
}

func TestQueryRecorderConstantAllocOverhead(t *testing.T) {
	small := loadSerial(t, "fr_guard_small", 1024, 1024) // 1 morsel
	large := loadSerial(t, "fr_guard_large", 8192, 1024) // 8 morsels

	dSmall := recorderAllocDelta(t, small)
	dLarge := recorderAllocDelta(t, large)

	// The recorder's per-query cost: LiveQuery + context + record +
	// finish closure — a small constant.
	const maxPerQuery = 24.0
	if dSmall > maxPerQuery || dLarge > maxPerQuery {
		t.Fatalf("recorder adds %.1f (1 morsel) / %.1f (8 morsels) allocs/query, want <= %.0f",
			dSmall, dLarge, maxPerQuery)
	}
	// Zero extra allocs on the per-morsel path: eight times the morsels
	// must not grow the delta beyond measurement jitter.
	if dLarge-dSmall > 4 {
		t.Fatalf("recorder overhead scales with morsels: %.1f allocs at 1 morsel, %.1f at 8",
			dSmall, dLarge)
	}
}

// BenchmarkQueryRecorder measures the end-to-end cost of the always-on
// recorder around a short count: Off is the recorder disabled, On is
// the production default. bench-obs records both sections in
// BENCH_PR3.json so the overhead stays visible across PRs.
func BenchmarkQueryRecorder(b *testing.B) {
	tbl := loadSerial(b, "fr_bench", 65536, 8192)
	fr := FlightRecorder()
	run := func(on bool) func(b *testing.B) {
		return func(b *testing.B) {
			fr.SetEnabled(on)
			defer fr.SetEnabled(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tbl.Where("v", Lt, 1000).Count(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("Off", run(false))
	b.Run("On", run(true))
}
