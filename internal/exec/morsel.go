package exec

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ParallelMorsels is the morsel-driven scheduling primitive (paper §5.2's
// block-level parallelism taken to its pipelined conclusion): up to
// pool-size workers each build one private state with newState, then
// repeatedly claim the next unprocessed morsel index and run fn(state,
// morsel) until the morsels run out. Dynamic claiming balances skew —
// a worker stuck on an expensive morsel does not hold back the others —
// and the private state never crosses goroutines, so fn may use it
// without synchronization (scratch arenas, partial aggregate tables,
// partial result buffers).
//
// The worker states are returned for the caller's merge phase — also on
// error, so resources held by states (pooled scratch) can be released;
// workers that never started leave a zero S in their slot. The first
// error wins and cancels the remaining workers at their next morsel
// boundary; a panicking morsel surfaces as a *PanicError.
func ParallelMorsels[S any](ctx context.Context, p *Pool, n int, newState func(worker int) S, fn func(ctx context.Context, state S, morsel int) error) ([]S, error) {
	return ParallelMorselsHooked(ctx, p, n, newState, fn, MorselHooks{})
}

// MorselHooks observe the morsel lifecycle. OnDone runs on the worker's
// goroutine immediately after fn returns for a morsel — whether fn
// succeeded or failed — so per-morsel resources scheduled ahead of time
// (prefetched pages) can be released the moment the morsel is finished
// with them. Hooks must be safe for concurrent use; a nil hook is
// skipped.
type MorselHooks struct {
	OnDone func(morsel int)
}

func (h *MorselHooks) done(m int) {
	if h.OnDone != nil {
		h.OnDone(m)
	}
}

// ParallelMorselsHooked is ParallelMorsels with lifecycle hooks.
func ParallelMorselsHooked[S any](ctx context.Context, p *Pool, n int, newState func(worker int) S, fn func(ctx context.Context, state S, morsel int) error, hooks MorselHooks) ([]S, error) {
	return ParallelMorselsLimited(ctx, p, n, 0, newState, fn, hooks)
}

// ParallelMorselsLimited is ParallelMorselsHooked with an explicit
// worker cap: at most limit workers run regardless of pool size (0 means
// pool size). This is the per-query parallelism budget a serving layer
// imposes so one query cannot monopolise the shared pool.
func ParallelMorselsLimited[S any](ctx context.Context, p *Pool, n, limit int, newState func(worker int) S, fn func(ctx context.Context, state S, morsel int) error, hooks MorselHooks) ([]S, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.Size()
	if limit > 0 && workers > limit {
		workers = limit
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return morselsSerial(ctx, p, n, newState, fn, hooks)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next   atomic.Int64
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
		states = make([]S, workers)
	)
	setErr := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		err := p.SubmitCtx(cctx, func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// This recover fires before run's, so run never sees
					// the panic; count it here to keep Panics complete.
					p.recordPanic()
					setErr(&PanicError{Value: r, Stack: debug.Stack()})
				}
			}()
			states[w] = newState(w)
			for {
				m := int(next.Add(1)) - 1
				if m >= n {
					return
				}
				if cctx.Err() != nil {
					return
				}
				err := fn(cctx, states[w], m)
				hooks.done(m)
				if err != nil {
					setErr(err)
					return
				}
			}
		})
		if err != nil {
			wg.Done()
			setErr(err)
			break
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return states, first
	}
	return states, ctx.Err()
}

// morselsSerial is the single-worker degeneration: with no second worker
// to coordinate, the morsel loop runs inline on the caller — no
// goroutine, no cancel context, no lock — with the same error, panic,
// and cancellation contract.
func morselsSerial[S any](ctx context.Context, p *Pool, n int, newState func(worker int) S, fn func(ctx context.Context, state S, morsel int) error, hooks MorselHooks) (states []S, err error) {
	states = make([]S, 1)
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	states[0] = newState(0)
	for m := 0; m < n; m++ {
		if err := ctx.Err(); err != nil {
			return states, err
		}
		err := fn(ctx, states[0], m)
		hooks.done(m)
		if err != nil {
			return states, err
		}
	}
	return states, ctx.Err()
}
