// Package exec is CodecDB's execution framework (paper §5.2): worker
// pools for operator- and block-level parallelism, a demand-driven stream
// abstraction with map/foreach, a lazily evaluated operator DAG grouped
// into pipeline stages, and a batch cache that lets operators reading the
// same column share one disk read.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into an error: the recovered
// value plus the goroutine stack at the panic site. A panicking task must
// surface as a query error, never crash the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: worker panic: %v\n%s", e.Value, e.Stack)
}

// Pool is a fixed-size worker pool. CodecDB uses two: an operator pool
// (one worker task per query operator) and a data pool shared by all
// operators, sized to bound per-query memory (§5.2).
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	inFlight  atomic.Int64
	completed atomic.Int64
	panics    atomic.Int64

	mu  sync.Mutex
	err error // first panic captured from a Submit task, cleared by Wait
}

// NewPool creates a pool running at most size tasks concurrently; size <= 0
// defaults to GOMAXPROCS.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, size)}
}

// Size returns the concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// InFlight returns the number of tasks currently executing on the pool.
func (p *Pool) InFlight() int64 { return p.inFlight.Load() }

// Completed returns the cumulative count of tasks that have finished on
// the pool, including ones that panicked.
func (p *Pool) Completed() int64 { return p.completed.Load() }

// Panics returns the cumulative count of worker panics recovered on the
// pool, whether captured by run or by ParallelChunksErr's per-chunk
// recover.
func (p *Pool) Panics() int64 { return p.panics.Load() }

func (p *Pool) recordPanic() {
	p.panics.Add(1)
	totals.panics.Add(1)
}

// Submit schedules fn; it blocks while the pool is saturated. The
// semaphore is acquired before the worker goroutine is spawned, so a
// saturated pool exerts backpressure on the submitter instead of
// accumulating one parked goroutine per pending task. A panic in fn is
// captured and reported by Wait.
func (p *Pool) Submit(fn func()) {
	p.wg.Add(1)
	p.sem <- struct{}{}
	go p.run(fn)
}

// SubmitCtx is Submit that gives up waiting for a free worker slot when
// ctx is cancelled, returning ctx.Err() without running fn.
func (p *Pool) SubmitCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.wg.Add(1)
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		p.wg.Done()
		return ctx.Err()
	}
	go p.run(fn)
	return nil
}

func (p *Pool) run(fn func()) {
	p.inFlight.Add(1)
	totals.inFlight.Add(1)
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic()
			p.mu.Lock()
			if p.err == nil {
				p.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
			p.mu.Unlock()
		}
		p.inFlight.Add(-1)
		totals.inFlight.Add(-1)
		p.completed.Add(1)
		totals.completed.Add(1)
		<-p.sem
		p.wg.Done()
	}()
	fn()
}

// Wait blocks until every submitted task has finished and returns the
// first captured worker panic as a *PanicError (nil if none). The
// recorded error is cleared so the pool can be reused.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.err
	p.err = nil
	return err
}

// chunkRanges partitions [0, n) into roughly pool-size ranges.
func (p *Pool) chunkSize(n int) int {
	workers := cap(p.sem)
	if workers > n {
		workers = n
	}
	return (n + workers - 1) / workers
}

// ParallelChunksErr partitions [0, n) into roughly pool-size ranges and
// runs fn(start, end) for each on the pool, blocking until all complete.
// It is the block-level parallelism primitive: operators split their input
// into data blocks and process blocks concurrently (§5.2). The first
// error wins (later chunks are not launched), a panicking chunk is
// captured as a *PanicError, and a cancelled ctx stops the fan-out and
// returns ctx.Err(). fn should itself poll ctx between blocks for prompt
// mid-chunk cancellation.
func (p *Pool) ParallelChunksErr(ctx context.Context, n int, fn func(start, end int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	chunk := p.chunkSize(n)
	var (
		mu    sync.Mutex
		first error
		wg    sync.WaitGroup
	)
	setErr := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}
	for start := 0; start < n && !failed(); start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		s, e := start, end
		wg.Add(1)
		err := p.SubmitCtx(ctx, func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// This recover fires before run's, so run never sees
					// the panic; count it here to keep Panics complete.
					p.recordPanic()
					setErr(&PanicError{Value: r, Stack: debug.Stack()})
				}
			}()
			setErr(fn(s, e))
		})
		if err != nil {
			wg.Done()
			setErr(err)
			break
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// ParallelChunks is ParallelChunksErr without error plumbing, kept for
// callers whose block function cannot fail. A chunk panic is re-raised on
// the caller's goroutine (matching the pre-pool-capture behavior) so it
// is never silently swallowed.
func (p *Pool) ParallelChunks(n int, fn func(start, end int)) {
	err := p.ParallelChunksErr(context.Background(), n, func(start, end int) error {
		fn(start, end)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// ParallelMap applies fn to each index of items on the pool, preserving
// order in the result. A panicking element surfaces as a *PanicError.
func ParallelMap[T, S any](p *Pool, items []T, fn func(T) S) ([]S, error) {
	out := make([]S, len(items))
	err := p.ParallelChunksErr(context.Background(), len(items), func(start, end int) error {
		for i := start; i < end; i++ {
			out[i] = fn(items[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
