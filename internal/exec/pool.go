// Package exec is CodecDB's execution framework (paper §5.2): worker
// pools for operator- and block-level parallelism, a demand-driven stream
// abstraction with map/foreach, a lazily evaluated operator DAG grouped
// into pipeline stages, and a batch cache that lets operators reading the
// same column share one disk read.
package exec

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool. CodecDB uses two: an operator pool
// (one worker task per query operator) and a data pool shared by all
// operators, sized to bound per-query memory (§5.2).
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewPool creates a pool running at most size tasks concurrently; size <= 0
// defaults to GOMAXPROCS.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, size)}
}

// Size returns the concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// Submit schedules fn; it blocks only while the pool is saturated with
// not-yet-started tasks.
func (p *Pool) Submit(fn func()) {
	p.wg.Add(1)
	go func() {
		p.sem <- struct{}{}
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every submitted task has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// ParallelChunks partitions [0, n) into roughly pool-size ranges and runs
// fn(start, end) for each on the pool, blocking until all complete. It is
// the block-level parallelism primitive: operators split their input into
// data blocks and process blocks concurrently (§5.2).
func (p *Pool) ParallelChunks(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers := cap(p.sem)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		s, e := start, end
		p.Submit(func() {
			defer wg.Done()
			fn(s, e)
		})
	}
	wg.Wait()
}

// ParallelMap applies fn to each index of items on the pool, preserving
// order in the result.
func ParallelMap[T, S any](p *Pool, items []T, fn func(T) S) []S {
	out := make([]S, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		i := i
		p.Submit(func() {
			defer wg.Done()
			out[i] = fn(items[i])
		})
	}
	wg.Wait()
	return out
}
