package exec_test

import (
	"fmt"

	"codecdb/internal/bitutil"
	"codecdb/internal/exec"
)

// Example_streamPipeline reproduces the paper's §5.2 walkthrough: build a
// demand-driven pipeline that scans integer blocks into bitmaps of
// positive positions, then folds the bitmap cardinalities into a count.
// Nothing executes until the terminal Reduce call.
func Example_streamPipeline() {
	blocks := [][]int64{
		{3, -1, 4, -1, 5},
		{-9, 2, -6, 5, -3},
		{5, 8, -9, 7, 9},
	}
	// Stage 1: stream the data blocks.
	s := exec.FromSlice(blocks)
	// Stage 2: map each block to a bitmap marking positive values.
	bitmaps := exec.Map(s, func(block []int64) *bitutil.Bitmap {
		bm := bitutil.NewBitmap(len(block))
		for i, v := range block {
			if v > 0 {
				bm.Set(i)
			}
		}
		return bm
	})
	// Terminal stage: fold cardinalities; this triggers the pipeline.
	total := exec.Reduce(bitmaps, 0, func(acc int, bm *bitutil.Bitmap) int {
		return acc + bm.Cardinality()
	})
	fmt.Println("positive values:", total)
	// Output:
	// positive values: 9
}

// Example_operatorGraph shows the Figure 3 shape: two independent scan
// stages feed a blocking join stage, which feeds an aggregation stage.
// Independent stages run in parallel on the operator pool.
func Example_operatorGraph() {
	g := exec.NewGraph()
	var left, right, joined int
	g.AddStage("scanLeft", func() error { left = 3; return nil })
	g.AddStage("scanRight", func() error { right = 4; return nil })
	g.AddStage("join", func() error { joined = left * right; return nil }, "scanLeft", "scanRight")
	g.AddStage("aggregate", func() error {
		fmt.Println("result:", joined)
		return nil
	}, "join")
	if err := g.Run(exec.NewPool(4)); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// result: 12
}
