package exec

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAll(t *testing.T) {
	p := NewPool(4)
	var count int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 100 {
		t.Fatalf("ran %d tasks", count)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var cur, max int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		p.Submit(func() {
			c := atomic.AddInt64(&cur, 1)
			mu.Lock()
			if c > max {
				max = c
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -1)
		})
	}
	p.Wait()
	if max > 3 {
		t.Fatalf("observed %d concurrent tasks in pool of 3", max)
	}
}

func TestParallelChunksCoversRange(t *testing.T) {
	p := NewPool(4)
	covered := make([]int32, 1000)
	p.ParallelChunks(1000, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	p.ParallelChunks(0, func(int, int) { t.Fatal("empty range should not call fn") })
}

func TestParallelMapPreservesOrder(t *testing.T) {
	p := NewPool(8)
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	out := ParallelMap(p, in, func(v int) int { return v * v })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestStreamLazyAndFused(t *testing.T) {
	calls := 0
	s := Map(Generate(10, func(i int) int { calls++; return i }), func(v int) int { return v * 2 })
	if calls != 0 {
		t.Fatal("building a pipeline must not evaluate it (lazy)")
	}
	sum := Reduce(s, 0, func(a, v int) int { return a + v })
	if sum != 90 {
		t.Fatalf("sum = %d", sum)
	}
	if calls != 10 {
		t.Fatalf("generator called %d times", calls)
	}
}

func TestStreamFilterCollect(t *testing.T) {
	got := Filter(FromSlice([]int{1, 2, 3, 4, 5, 6}), func(v int) bool { return v%2 == 0 }).Collect()
	if len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestStreamParallelForEach(t *testing.T) {
	p := NewPool(4)
	var sum int64
	FromSlice([]int{1, 2, 3, 4, 5}).ParallelForEach(p, func(v int) {
		atomic.AddInt64(&sum, int64(v))
	})
	if sum != 15 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestGraphRespectsDependencies(t *testing.T) {
	g := NewGraph()
	var mu sync.Mutex
	var order []string
	record := func(id string) func() error {
		return func() error {
			time.Sleep(time.Millisecond)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	// The Figure 3 shape: two independent scan stages feed a join stage,
	// which feeds an aggregation stage.
	g.AddStage("scanA", record("scanA"))
	g.AddStage("scanB", record("scanB"))
	g.AddStage("join", record("join"), "scanA", "scanB")
	g.AddStage("agg", record("agg"), "join")
	if err := g.Run(NewPool(4)); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != 4 {
		t.Fatalf("ran %d stages", len(order))
	}
	if pos["join"] < pos["scanA"] || pos["join"] < pos["scanB"] || pos["agg"] < pos["join"] {
		t.Fatalf("bad order %v", order)
	}
	d := g.StageDurations()
	if d["join"] <= 0 {
		t.Fatal("durations not recorded")
	}
}

func TestGraphErrorSkipsDependents(t *testing.T) {
	g := NewGraph()
	ran := false
	g.AddStage("bad", func() error { return errors.New("boom") })
	g.AddStage("after", func() error { ran = true; return nil }, "bad")
	err := g.Run(NewPool(2))
	if err == nil {
		t.Fatal("expected error")
	}
	if ran {
		t.Fatal("dependent of failed stage must not run")
	}
}

func TestGraphUnknownDepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph().AddStage("x", func() error { return nil }, "missing")
}

func TestBatchCacheSingleLoad(t *testing.T) {
	c := NewBatchCache()
	var loads int64
	p := NewPool(8)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			v, err := c.Load("lineitem/0/shipdate", func() (any, error) {
				atomic.AddInt64(&loads, 1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Load = %v, %v", v, err)
			}
		})
	}
	wg.Wait()
	if loads != 1 {
		t.Fatalf("loaded %d times, want 1 (batch execution)", loads)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 49 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestBatchCachePropagatesError(t *testing.T) {
	c := NewBatchCache()
	want := errors.New("io")
	_, err := c.Load("k", func() (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	// Error is cached too: loader must not run again.
	_, err = c.Load("k", func() (any, error) { t.Fatal("reloaded"); return nil, nil })
	if !errors.Is(err, want) {
		t.Fatalf("second err = %v", err)
	}
}
