package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAll(t *testing.T) {
	p := NewPool(4)
	var count int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 100 {
		t.Fatalf("ran %d tasks", count)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var cur, max int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		p.Submit(func() {
			c := atomic.AddInt64(&cur, 1)
			mu.Lock()
			if c > max {
				max = c
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -1)
		})
	}
	p.Wait()
	if max > 3 {
		t.Fatalf("observed %d concurrent tasks in pool of 3", max)
	}
}

func TestParallelChunksCoversRange(t *testing.T) {
	p := NewPool(4)
	covered := make([]int32, 1000)
	p.ParallelChunks(1000, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	p.ParallelChunks(0, func(int, int) { t.Fatal("empty range should not call fn") })
}

func TestParallelMapPreservesOrder(t *testing.T) {
	p := NewPool(8)
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	out, err := ParallelMap(p, in, func(v int) int { return v * v })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestSubmitPanicSurfacesInWait(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() { panic("kaboom") })
	err := p.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait() = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	// The error is cleared: a reused pool starts clean.
	p.Submit(func() {})
	if err := p.Wait(); err != nil {
		t.Fatalf("second Wait() = %v", err)
	}
}

func TestSubmitDoesNotLeakGoroutinesUnderSaturation(t *testing.T) {
	p := NewPool(2)
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		p.Submit(func() { <-release })
	}
	before := runtime.NumGoroutine()
	// Submitting into a saturated pool must block the submitter rather
	// than park one goroutine per pending task.
	go func() {
		for i := 0; i < 200; i++ {
			p.Submit(func() {})
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+10 {
		t.Fatalf("goroutines grew from %d to %d under saturation", before, after)
	}
	close(release)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitCtxCancelledWhileSaturated(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	p.Submit(func() { <-release })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.SubmitCtx(ctx, func() { t.Error("must not run") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx = %v, want context.Canceled", err)
	}
	close(release)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelChunksErrPropagatesFirstError(t *testing.T) {
	p := NewPool(4)
	want := errors.New("block failed")
	err := p.ParallelChunksErr(context.Background(), 1000, func(start, end int) error {
		if start == 0 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelChunksErrCapturesPanic(t *testing.T) {
	p := NewPool(4)
	err := p.ParallelChunksErr(context.Background(), 100, func(start, end int) error {
		panic("chunk panic")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	// The panic stayed local to the chunk: pool-level Wait is clean.
	if werr := p.Wait(); werr != nil {
		t.Fatalf("Wait() = %v", werr)
	}
}

func TestParallelChunksErrHonorsCancelledContext(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := p.ParallelChunksErr(ctx, 1000, func(start, end int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d chunks ran under a cancelled context", ran)
	}
}

func TestStreamLazyAndFused(t *testing.T) {
	calls := 0
	s := Map(Generate(10, func(i int) int { calls++; return i }), func(v int) int { return v * 2 })
	if calls != 0 {
		t.Fatal("building a pipeline must not evaluate it (lazy)")
	}
	sum := Reduce(s, 0, func(a, v int) int { return a + v })
	if sum != 90 {
		t.Fatalf("sum = %d", sum)
	}
	if calls != 10 {
		t.Fatalf("generator called %d times", calls)
	}
}

func TestStreamFilterCollect(t *testing.T) {
	got := Filter(FromSlice([]int{1, 2, 3, 4, 5, 6}), func(v int) bool { return v%2 == 0 }).Collect()
	if len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestStreamParallelForEach(t *testing.T) {
	p := NewPool(4)
	var sum int64
	FromSlice([]int{1, 2, 3, 4, 5}).ParallelForEach(p, func(v int) {
		atomic.AddInt64(&sum, int64(v))
	})
	if sum != 15 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestGraphRespectsDependencies(t *testing.T) {
	g := NewGraph()
	var mu sync.Mutex
	var order []string
	record := func(id string) func() error {
		return func() error {
			time.Sleep(time.Millisecond)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	// The Figure 3 shape: two independent scan stages feed a join stage,
	// which feeds an aggregation stage.
	g.AddStage("scanA", record("scanA"))
	g.AddStage("scanB", record("scanB"))
	g.AddStage("join", record("join"), "scanA", "scanB")
	g.AddStage("agg", record("agg"), "join")
	if err := g.Run(NewPool(4)); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != 4 {
		t.Fatalf("ran %d stages", len(order))
	}
	if pos["join"] < pos["scanA"] || pos["join"] < pos["scanB"] || pos["agg"] < pos["join"] {
		t.Fatalf("bad order %v", order)
	}
	d := g.StageDurations()
	if d["join"] <= 0 {
		t.Fatal("durations not recorded")
	}
}

func TestGraphErrorSkipsDependents(t *testing.T) {
	g := NewGraph()
	ran := false
	g.AddStage("bad", func() error { return errors.New("boom") })
	g.AddStage("after", func() error { ran = true; return nil }, "bad")
	err := g.Run(NewPool(2))
	if err == nil {
		t.Fatal("expected error")
	}
	if ran {
		t.Fatal("dependent of failed stage must not run")
	}
}

func TestGraphUnknownDepIsError(t *testing.T) {
	g := NewGraph()
	if err := g.AddStage("x", func() error { return nil }, "missing"); err == nil {
		t.Fatal("unknown dependency must be an AddStage error")
	}
	if err := g.Build(); err == nil {
		t.Fatal("Build must report the AddStage error")
	}
	if err := g.Run(NewPool(2)); err == nil {
		t.Fatal("Run must refuse a graph that failed Build")
	}
}

func TestGraphDuplicateStageIsError(t *testing.T) {
	g := NewGraph()
	if err := g.AddStage("a", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := g.AddStage("a", func() error { return nil }); err == nil {
		t.Fatal("duplicate stage must be an AddStage error")
	}
}

func TestGraphStagePanicBecomesError(t *testing.T) {
	g := NewGraph()
	if err := g.AddStage("boom", func() error { panic("stage exploded") }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := g.AddStage("after", func() error { ran = true; return nil }, "boom"); err != nil {
		t.Fatal(err)
	}
	err := g.Run(NewPool(2))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want wrapped *PanicError", err)
	}
	if ran {
		t.Fatal("dependent of panicked stage must not run")
	}
}

func TestGraphDeepChainOnPoolOfOne(t *testing.T) {
	// A linear chain on a single-slot pool: child launches must not
	// deadlock against the slot their parent still holds.
	g := NewGraph()
	var order []string
	var mu sync.Mutex
	prev := ""
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		id := id
		deps := []string{}
		if prev != "" {
			deps = append(deps, prev)
		}
		if err := g.AddStage(id, func() error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}, deps...); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	if err := g.Run(NewPool(1)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d stages: %v", len(order), order)
	}
}

func TestBatchCacheSingleLoad(t *testing.T) {
	c := NewBatchCache()
	var loads int64
	p := NewPool(8)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			v, err := c.Load("lineitem/0/shipdate", func() (any, error) {
				atomic.AddInt64(&loads, 1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Load = %v, %v", v, err)
			}
		})
	}
	wg.Wait()
	if loads != 1 {
		t.Fatalf("loaded %d times, want 1 (batch execution)", loads)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 49 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestBatchCachePropagatesError(t *testing.T) {
	c := NewBatchCache()
	want := errors.New("io")
	_, err := c.Load("k", func() (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	// Error is cached too: loader must not run again.
	_, err = c.Load("k", func() (any, error) { t.Fatal("reloaded"); return nil, nil })
	if !errors.Is(err, want) {
		t.Fatalf("second err = %v", err)
	}
}
