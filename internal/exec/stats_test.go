package exec

import (
	"context"
	"sync"
	"testing"
)

// TestPoolCounters verifies the satellite gauges: Completed advances per
// task, InFlight reflects currently running tasks and returns to zero,
// and Panics counts recovered panics from both Submit tasks and
// ParallelChunksErr chunks (whose per-chunk recover bypasses run's).
func TestPoolCounters(t *testing.T) {
	p := NewPool(2)

	// InFlight while a task is blocked inside the pool.
	started := make(chan struct{})
	release := make(chan struct{})
	p.Submit(func() {
		close(started)
		<-release
	})
	<-started
	if got := p.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	close(release)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after Wait = %d, want 0", got)
	}
	if got := p.Completed(); got != 1 {
		t.Fatalf("Completed = %d, want 1", got)
	}

	// Completed counts every finished task, panicked or not.
	const tasks = 20
	for i := 0; i < tasks; i++ {
		p.Submit(func() {})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := p.Completed(); got != 1+tasks {
		t.Fatalf("Completed = %d, want %d", got, 1+tasks)
	}

	// A Submit panic is counted by run's recover.
	p.Submit(func() { panic("boom") })
	if err := p.Wait(); err == nil {
		t.Fatal("Wait must surface the panic")
	}
	if got := p.Panics(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}

	// A ParallelChunksErr chunk panic is recovered by the per-chunk
	// deferred recover before run sees it; it must still be counted,
	// exactly once.
	err := p.ParallelChunksErr(context.Background(), 4, func(start, end int) error {
		if start == 0 {
			panic("chunk boom")
		}
		return nil
	})
	if _, ok := err.(*PanicError); !ok {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if got := p.Panics(); got != 2 {
		t.Fatalf("Panics = %d, want 2", got)
	}
	// The chunk panic must not also be recorded in the pool's Wait error.
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait after chunk panic = %v, want nil", err)
	}
}

// TestGlobalStatsAdvance checks the process-wide mirror tracks pool
// activity across concurrent pools.
func TestGlobalStatsAdvance(t *testing.T) {
	before := GlobalStats()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewPool(2)
			for j := 0; j < 10; j++ {
				p.Submit(func() {})
			}
			if err := p.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	after := GlobalStats()
	if got := after.Completed - before.Completed; got < 30 {
		t.Fatalf("global Completed advanced by %d, want >= 30", got)
	}
	if after.InFlight < 0 {
		t.Fatalf("global InFlight = %d, want >= 0", after.InFlight)
	}
}
