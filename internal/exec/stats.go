package exec

import "sync/atomic"

// Process-wide task counters, mirrored alongside every per-pool update.
// They back the metrics registry's codecdb_exec_* series without the
// registry needing a handle on each pool; cost is one atomic add per
// task transition. Never reset.

var totals struct {
	inFlight  atomic.Int64
	completed atomic.Int64
	panics    atomic.Int64
}

// PoolStats is a snapshot of task counters, either for one pool or
// process-wide.
type PoolStats struct {
	InFlight  int64 // tasks currently executing
	Completed int64 // cumulative finished tasks (including panicked ones)
	Panics    int64 // cumulative recovered worker panics
}

// GlobalStats returns process-wide task counters aggregated across every
// pool since process start.
func GlobalStats() PoolStats {
	return PoolStats{
		InFlight:  totals.inFlight.Load(),
		Completed: totals.completed.Load(),
		Panics:    totals.panics.Load(),
	}
}
