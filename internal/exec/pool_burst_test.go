package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewPoolDefaultSizeIsGOMAXPROCS(t *testing.T) {
	for _, size := range []int{0, -1} {
		if got, want := NewPool(size).Size(), runtime.GOMAXPROCS(0); got != want {
			t.Fatalf("NewPool(%d).Size() = %d, want %d", size, got, want)
		}
	}
	if got := NewPool(3).Size(); got != 3 {
		t.Fatalf("NewPool(3).Size() = %d", got)
	}
}

// TestPoolBurstNeverExceedsSize floods a small pool with SubmitCtx calls
// from many goroutines and asserts the number of concurrently running
// workers never exceeds the pool size.
func TestPoolBurstNeverExceedsSize(t *testing.T) {
	const size = 3
	const submitters = 16
	const perSubmitter = 50
	p := NewPool(size)

	var running, maxRunning atomic.Int64
	work := func() {
		n := running.Add(1)
		for {
			m := maxRunning.Load()
			if n <= m || maxRunning.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		running.Add(-1)
	}

	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				if err := p.SubmitCtx(context.Background(), work); err != nil {
					t.Errorf("SubmitCtx: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := maxRunning.Load(); got > size {
		t.Fatalf("observed %d concurrent workers, pool size %d", got, size)
	}
	if running.Load() != 0 {
		t.Fatalf("workers still running after Wait")
	}
}
