package exec

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestParallelMorselsWorkerLocalState is the isolation regression test:
// a worker state handed to fn is never in use by two morsels at once, so
// morsel code may mutate it without synchronization. Each state carries a
// re-entrancy counter that would exceed 1 the instant two concurrent
// morsels shared a state.
func TestParallelMorselsWorkerLocalState(t *testing.T) {
	type state struct {
		depth   atomic.Int32
		morsels int
	}
	const n = 256
	p := NewPool(8)
	var shared atomic.Int32
	seen := make([]atomic.Int32, n)
	states, err := ParallelMorsels(context.Background(), p, n,
		func(worker int) *state { return &state{} },
		func(ctx context.Context, s *state, m int) error {
			if s.depth.Add(1) != 1 {
				shared.Add(1)
			}
			runtime.Gosched() // widen the window a concurrent reuse would need
			s.morsels++
			seen[m].Add(1)
			s.depth.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Load() != 0 {
		t.Fatalf("worker state observed concurrently by %d morsels", shared.Load())
	}
	total := 0
	for _, s := range states {
		if s != nil {
			total += s.morsels
		}
	}
	if total != n {
		t.Fatalf("morsels run = %d, want %d", total, n)
	}
	for m := range seen {
		if got := seen[m].Load(); got != 1 {
			t.Fatalf("morsel %d ran %d times, want exactly once", m, got)
		}
	}
	if len(states) > p.Size() {
		t.Fatalf("states = %d, want at most pool size %d", len(states), p.Size())
	}
}

// TestParallelMorselsError checks the first error wins, cancels the rest
// promptly, and the partial states still come back for cleanup.
func TestParallelMorselsError(t *testing.T) {
	p := NewPool(4)
	boom := errors.New("boom")
	var ran atomic.Int64
	states, err := ParallelMorsels(context.Background(), p, 1000,
		func(worker int) int { return worker },
		func(ctx context.Context, s int, m int) error {
			if ran.Add(1) == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if states == nil {
		t.Fatal("states must be returned on error for resource release")
	}
	if ran.Load() > 1000 {
		t.Fatalf("morsels kept running after the error: %d", ran.Load())
	}
}

// TestParallelMorselsCancellation checks a cancelled context stops the
// fan-out between morsels and is returned.
func TestParallelMorselsCancellation(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := ParallelMorsels(ctx, p, 1 << 20,
		func(worker int) struct{} { return struct{}{} },
		func(ctx context.Context, s struct{}, m int) error {
			if ran.Add(1) == 4 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 1<<20 {
		t.Fatal("cancellation did not stop the morsel loop")
	}
}

// TestParallelMorselsPanic checks a panicking morsel surfaces as a
// *PanicError instead of crashing the process.
func TestParallelMorselsPanic(t *testing.T) {
	p := NewPool(2)
	_, err := ParallelMorsels(context.Background(), p, 8,
		func(worker int) struct{} { return struct{}{} },
		func(ctx context.Context, s struct{}, m int) error {
			if m == 3 {
				panic("morsel exploded")
			}
			return nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "morsel exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

// TestParallelMorselsEmpty checks the degenerate fan-outs.
func TestParallelMorselsEmpty(t *testing.T) {
	p := NewPool(4)
	states, err := ParallelMorsels(context.Background(), p, 0,
		func(worker int) int { return 1 },
		func(ctx context.Context, s int, m int) error { return nil })
	if err != nil || states != nil {
		t.Fatalf("n=0: states=%v err=%v, want nil/nil", states, err)
	}
	states, err = ParallelMorsels(context.Background(), p, 1,
		func(worker int) int { return 7 },
		func(ctx context.Context, s int, m int) error { return nil })
	if err != nil || len(states) != 1 || states[0] != 7 {
		t.Fatalf("n=1: states=%v err=%v", states, err)
	}
}
