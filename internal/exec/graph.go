package exec

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Graph is the lazily evaluated operator DAG of §5.2. Each node is a
// pipeline stage — the run of non-blocking operators ending at one
// blocking operator (sort, aggregation, hash-table build). Building the
// graph does no work; Run executes stages as their dependencies finish,
// so independent stages (e.g. filters over different columns) run in
// parallel on the operator pool.
type Graph struct {
	nodes  []*node
	byID   map[string]*node
	addErr error // first AddStage error, reported by Build and Run
}

type node struct {
	id       string
	fn       func() error
	deps     []*node
	children []*node
	duration time.Duration
}

// NewGraph returns an empty operator graph.
func NewGraph() *Graph {
	return &Graph{byID: map[string]*node{}}
}

// AddStage registers a pipeline stage under id, depending on the named
// prior stages. The stage function runs once all dependencies succeed.
// Duplicate ids and unknown dependencies are errors; the first such error
// is also remembered and returned by Build and Run, so callers may batch
// registrations and check once.
func (g *Graph) AddStage(id string, fn func() error, deps ...string) error {
	fail := func(err error) error {
		if g.addErr == nil {
			g.addErr = err
		}
		return err
	}
	if _, dup := g.byID[id]; dup {
		return fail(fmt.Errorf("exec: duplicate stage %q", id))
	}
	n := &node{id: id, fn: fn}
	for _, d := range deps {
		dn, ok := g.byID[d]
		if !ok {
			return fail(fmt.Errorf("exec: stage %q depends on unknown %q", id, d))
		}
		n.deps = append(n.deps, dn)
		dn.children = append(dn.children, n)
	}
	g.nodes = append(g.nodes, n)
	g.byID[id] = n
	return nil
}

// Build validates the registered stages, returning the first AddStage
// error. A graph that fails Build also fails Run with the same error.
func (g *Graph) Build() error { return g.addErr }

// runStage executes a stage function, converting a panic into an error so
// one misbehaving operator fails the query instead of the process.
func runStage(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Run executes the graph on the pool. Each stage is submitted as one
// worker task (operator-level parallelism); a task blocks until all its
// ancestors finish (§5.2). Run returns the first error encountered —
// including a stage panic, reported as a *PanicError — and dependents of
// a failed stage are skipped.
func (g *Graph) Run(p *Pool) error {
	if err := g.Build(); err != nil {
		return err
	}
	var (
		mu       sync.Mutex
		firstErr error
	)
	remaining := map[*node]int{}
	ready := make([]*node, 0, len(g.nodes))
	for _, n := range g.nodes {
		remaining[n] = len(n.deps)
		if len(n.deps) == 0 {
			ready = append(ready, n)
		}
	}
	var wg sync.WaitGroup
	// launch runs in its own goroutine (Submit blocks while the pool is
	// saturated, and a worker's slot is not released until its task
	// returns); the caller must have done wg.Add(1) for n already, so the
	// counter can never reach zero while work is still pending.
	var launch func(n *node)
	launch = func(n *node) {
		p.Submit(func() {
			defer wg.Done()
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			var err error
			if !failed {
				start := time.Now()
				err = runStage(n.fn)
				n.duration = time.Since(start)
			}
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("stage %s: %w", n.id, err)
			}
			var next []*node
			for _, c := range n.children {
				remaining[c]--
				if remaining[c] == 0 {
					next = append(next, c)
				}
			}
			mu.Unlock()
			for _, c := range next {
				wg.Add(1)
				go launch(c)
			}
		})
	}
	for _, n := range ready {
		wg.Add(1)
		go launch(n)
	}
	wg.Wait()
	return firstErr
}

// StageDurations reports per-stage wall time from the last Run, for the
// cost-breakdown experiments.
func (g *Graph) StageDurations() map[string]time.Duration {
	out := make(map[string]time.Duration, len(g.nodes))
	for _, n := range g.nodes {
		out[n.id] = n.duration
	}
	return out
}

// BatchCache deduplicates column reads across operators in one query
// (§5.2 batch execution): the first operator to request a key performs the
// load, later operators reuse the cached result. Loads for distinct keys
// proceed concurrently.
type BatchCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewBatchCache returns an empty cache.
func NewBatchCache() *BatchCache {
	return &BatchCache{entries: map[string]*cacheEntry{}}
}

// Load returns the cached value for key, invoking load exactly once per
// key across all callers.
func (c *BatchCache) Load(key string, load func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = load() })
	return e.val, e.err
}

// Stats reports cache hits and misses.
func (c *BatchCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
