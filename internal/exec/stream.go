package exec

// Stream is the demand-driven data stream of §5.2: nothing flows until a
// terminal operation (ForEach/Collect/Reduce) runs, at which point the
// whole pipeline executes per element. Map stages registered on a stream
// are fused — there are no intermediate collections.
type Stream[T any] struct {
	// each drives the stream: it calls yield for every element and stops
	// early when yield returns false.
	each func(yield func(T) bool)
}

// FromSlice streams the elements of s.
func FromSlice[T any](s []T) *Stream[T] {
	return &Stream[T]{each: func(yield func(T) bool) {
		for _, v := range s {
			if !yield(v) {
				return
			}
		}
	}}
}

// Generate streams n elements produced by gen(i).
func Generate[T any](n int, gen func(i int) T) *Stream[T] {
	return &Stream[T]{each: func(yield func(T) bool) {
		for i := 0; i < n; i++ {
			if !yield(gen(i)) {
				return
			}
		}
	}}
}

// Map adds a transformation stage to the pipeline. (A package function
// because Go methods cannot introduce type parameters.)
func Map[T, S any](s *Stream[T], fn func(T) S) *Stream[S] {
	return &Stream[S]{each: func(yield func(S) bool) {
		s.each(func(v T) bool { return yield(fn(v)) })
	}}
}

// Filter keeps elements satisfying pred.
func Filter[T any](s *Stream[T], pred func(T) bool) *Stream[T] {
	return &Stream[T]{each: func(yield func(T) bool) {
		s.each(func(v T) bool {
			if pred(v) {
				return yield(v)
			}
			return true
		})
	}}
}

// ForEach executes the pipeline, invoking fn per element. This is the
// terminal call that triggers evaluation (§5.2).
func (s *Stream[T]) ForEach(fn func(T)) {
	s.each(func(v T) bool {
		fn(v)
		return true
	})
}

// Collect executes the pipeline into a slice.
func (s *Stream[T]) Collect() []T {
	var out []T
	s.ForEach(func(v T) { out = append(out, v) })
	return out
}

// Reduce folds the stream with fn starting from init.
func Reduce[T, A any](s *Stream[T], init A, fn func(A, T) A) A {
	acc := init
	s.ForEach(func(v T) { acc = fn(acc, v) })
	return acc
}

// ParallelForEach executes the pipeline with elements dispatched to the
// pool; ordering is not preserved. It materialises the upstream lazily in
// the caller goroutine and fans out the final stage. A panicking element
// is reported as a *PanicError.
func (s *Stream[T]) ParallelForEach(p *Pool, fn func(T)) error {
	var pending []T
	s.ForEach(func(v T) { pending = append(pending, v) })
	_, err := ParallelMap(p, pending, func(v T) struct{} {
		fn(v)
		return struct{}{}
	})
	return err
}
