package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetGetClear(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Cardinality(); got != 8 {
		t.Fatalf("cardinality = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Cardinality(); got != 7 {
		t.Fatalf("cardinality = %d, want 7", got)
	}
}

func TestBitmapSetRange(t *testing.T) {
	cases := []struct{ from, to int }{
		{0, 0}, {0, 1}, {5, 5}, {3, 70}, {64, 128}, {60, 68}, {0, 200}, {199, 200},
	}
	for _, c := range cases {
		b := NewBitmap(200)
		b.SetRange(c.from, c.to)
		for i := 0; i < 200; i++ {
			want := i >= c.from && i < c.to
			if b.Get(i) != want {
				t.Fatalf("SetRange(%d,%d): bit %d = %v, want %v", c.from, c.to, i, b.Get(i), want)
			}
		}
		if got, want := b.Cardinality(), c.to-c.from; got != want && !(c.from >= c.to && got == 0) {
			t.Fatalf("SetRange(%d,%d) cardinality %d", c.from, c.to, got)
		}
	}
}

func TestBitmapSetAllNotMask(t *testing.T) {
	b := NewBitmap(70)
	b.SetAll()
	if got := b.Cardinality(); got != 70 {
		t.Fatalf("SetAll cardinality = %d, want 70", got)
	}
	b.Not()
	if got := b.Cardinality(); got != 0 {
		t.Fatalf("Not(SetAll) cardinality = %d, want 0", got)
	}
	b.Not()
	if got := b.Cardinality(); got != 70 {
		t.Fatalf("double Not cardinality = %d, want 70", got)
	}
}

func TestBitmapLogicalOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	a, b := NewBitmap(n), NewBitmap(n)
	ref := make([]struct{ a, b bool }, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			a.Set(i)
			ref[i].a = true
		}
		if rng.Intn(2) == 1 {
			b.Set(i)
			ref[i].b = true
		}
	}
	and := a.Clone().And(b)
	or := a.Clone().Or(b)
	andnot := a.Clone().AndNot(b)
	xor := a.Clone().Xor(b)
	for i := 0; i < n; i++ {
		if and.Get(i) != (ref[i].a && ref[i].b) {
			t.Fatalf("And bit %d wrong", i)
		}
		if or.Get(i) != (ref[i].a || ref[i].b) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if andnot.Get(i) != (ref[i].a && !ref[i].b) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
		if xor.Get(i) != (ref[i].a != ref[i].b) {
			t.Fatalf("Xor bit %d wrong", i)
		}
	}
}

func TestBitmapLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewBitmap(10).And(NewBitmap(11))
}

func TestBitmapNextSetAndIterator(t *testing.T) {
	b := NewBitmap(200)
	set := []int{0, 3, 63, 64, 130, 199}
	for _, i := range set {
		b.Set(i)
	}
	got := []int{}
	it := b.Iter()
	for i := it.Next(); i >= 0; i = it.Next() {
		got = append(got, i)
	}
	if len(got) != len(set) {
		t.Fatalf("iterator yielded %v, want %v", got, set)
	}
	for i := range set {
		if got[i] != set[i] {
			t.Fatalf("iterator yielded %v, want %v", got, set)
		}
	}
	if b.NextSet(200) != -1 {
		t.Fatal("NextSet past end should be -1")
	}
	if b.NextSet(65) != 130 {
		t.Fatalf("NextSet(65) = %d, want 130", b.NextSet(65))
	}
}

func TestBitmapPositionsMatchForEach(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		b := NewBitmap(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		pos := b.Positions()
		if len(pos) != b.Cardinality() {
			return false
		}
		for _, p := range pos {
			if !b.Get(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan's law holds on bitmaps of arbitrary length.
func TestBitmapDeMorganProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		a, b := NewBitmap(n), NewBitmap(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		lhs := a.Clone().And(b).Not()
		rhs := a.Clone().Not().Or(b.Clone().Not())
		for i := 0; i < n; i++ {
			if lhs.Get(i) != rhs.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSectionalBitmapBasics(t *testing.T) {
	s := NewSectionalBitmap(250, 64)
	if s.NumSections() != 4 {
		t.Fatalf("NumSections = %d, want 4", s.NumSections())
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(249)
	if s.Cardinality() != 4 {
		t.Fatalf("cardinality = %d", s.Cardinality())
	}
	if !s.Get(63) || s.Get(62) {
		t.Fatal("Get wrong")
	}
	if s.SectionEmpty(0) || !s.SectionEmpty(2) {
		t.Fatal("SectionEmpty wrong")
	}
	flat := s.Flatten()
	if flat.Cardinality() != 4 || !flat.Get(249) {
		t.Fatal("Flatten wrong")
	}
}

func TestSectionalBitmapOps(t *testing.T) {
	a := NewSectionalBitmap(200, 50)
	b := NewSectionalBitmap(200, 50)
	for i := 0; i < 200; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	inter := cloneSectional(a).And(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 && i < 100 && i%3 == 0
		if inter.Get(i) != want {
			t.Fatalf("And bit %d = %v, want %v", i, inter.Get(i), want)
		}
	}
	// Sections 2 and 3 must have become empty (skippable).
	if !inter.SectionEmpty(2) || !inter.SectionEmpty(3) {
		t.Fatal("And should empty out sections with no overlap")
	}
	un := cloneSectional(a).Or(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 || (i < 100 && i%3 == 0)
		if un.Get(i) != want {
			t.Fatalf("Or bit %d wrong", i)
		}
	}
	diff := cloneSectional(a).AndNot(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 && !(i < 100 && i%3 == 0)
		if diff.Get(i) != want {
			t.Fatalf("AndNot bit %d wrong", i)
		}
	}
}

func cloneSectional(s *SectionalBitmap) *SectionalBitmap {
	c := NewSectionalBitmap(s.Len(), s.SectionSize())
	s.ForEach(func(i int) { c.Set(i) })
	return c
}

func TestSectionalBitmapCompressRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := NewSectionalBitmap(n, 37)
		ref := map[int]bool{}
		// Runs of set bits exercise the RLE path.
		for i := 0; i < n; {
			if rng.Intn(3) == 0 {
				l := 1 + rng.Intn(10)
				for j := i; j < i+l && j < n; j++ {
					s.Set(j)
					ref[j] = true
				}
				i += l
			} else {
				i++
			}
		}
		for i := 0; i < s.NumSections(); i++ {
			s.Compress(i)
		}
		for i := 0; i < n; i++ {
			if s.Get(i) != ref[i] {
				return false
			}
		}
		// Mutation after compression must decompress transparently.
		s.Set(0)
		return s.Get(0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSectionalBitmapCompressedSize(t *testing.T) {
	s := NewSectionalBitmap(4096, 1024)
	// One long run in section 0: should compress to a single run (16 bytes).
	for i := 0; i < 100; i++ {
		s.Set(i)
	}
	uncompressed := s.CompressedSizeBytes()
	s.Compress(0)
	compressed := s.CompressedSizeBytes()
	if compressed >= uncompressed {
		t.Fatalf("RLE did not shrink: %d -> %d", uncompressed, compressed)
	}
	if compressed != 16 {
		t.Fatalf("one run should cost 16 bytes, got %d", compressed)
	}
}
