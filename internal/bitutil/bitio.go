package bitutil

// Writer packs values of arbitrary bit width into a byte stream, LSB-first
// within each byte — the layout assumed by the SWAR scan kernels in
// internal/sboost and by the bit-packed encodings.
type Writer struct {
	buf  []byte
	acc  uint64
	nacc uint // bits currently buffered in acc
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the low width bits of v to the stream. Width must be
// in [0, 64]; wide writes are split so the accumulator never overflows.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width > 64 {
		panic("bitutil: bit width too large")
	}
	if width > 32 {
		w.writeBits(v&(1<<32-1), 32)
		w.writeBits(v>>32, width-32)
		return
	}
	w.writeBits(v, width)
}

func (w *Writer) writeBits(v uint64, width uint) {
	w.acc |= (v & ((1 << width) - 1)) << w.nacc
	w.nacc += width
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// Bytes flushes any partial byte (zero-padded) and returns the stream.
func (w *Writer) Bytes() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.nacc = 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nacc) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
}

// Reader extracts fixed-width values from a byte stream produced by Writer.
type Reader struct {
	buf  []byte
	pos  int // next byte index
	acc  uint64
	nacc uint
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits consumes and returns the next width bits. Reading past the end
// of the stream yields zero bits, matching the writer's zero padding.
// Width must be in [0, 64].
func (r *Reader) ReadBits(width uint) uint64 {
	if width > 64 {
		panic("bitutil: bit width too large")
	}
	if width > 32 {
		lo := r.readBits(32)
		hi := r.readBits(width - 32)
		return lo | hi<<32
	}
	return r.readBits(width)
}

func (r *Reader) readBits(width uint) uint64 {
	for r.nacc < width {
		var b byte
		if r.pos < len(r.buf) {
			b = r.buf[r.pos]
			r.pos++
		} else {
			r.pos++ // track logical position past the end
		}
		r.acc |= uint64(b) << r.nacc
		r.nacc += 8
	}
	v := r.acc & ((1 << width) - 1)
	r.acc >>= width
	r.nacc -= width
	return v
}

// SkipBits discards the next n bits without materializing values — the
// row-level data-skipping primitive for bit-packed pages.
func (r *Reader) SkipBits(n int) {
	if n <= 0 {
		return
	}
	if uint(n) <= r.nacc {
		r.acc >>= uint(n)
		r.nacc -= uint(n)
		return
	}
	n -= int(r.nacc)
	r.acc, r.nacc = 0, 0
	r.pos += n / 8
	if rem := uint(n % 8); rem > 0 {
		var b byte
		if r.pos < len(r.buf) {
			b = r.buf[r.pos]
		}
		r.pos++
		r.acc = uint64(b) >> rem
		r.nacc = 8 - rem
	}
}

// BitsWidth returns the minimum number of bits needed to represent v
// (at least 1, so a stream of zeros still advances).
func BitsWidth(v uint64) uint {
	w := uint(0)
	for v > 0 {
		w++
		v >>= 1
	}
	if w == 0 {
		return 1
	}
	return w
}

// MaxBitsWidth returns the width required for the largest value in vs,
// treating an empty slice as width 1.
func MaxBitsWidth(vs []uint64) uint {
	var m uint64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return BitsWidth(m)
}
