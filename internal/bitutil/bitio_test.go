package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := uint(1 + rng.Intn(57))
		n := 1 + rng.Intn(200)
		vals := make([]uint64, n)
		w := NewWriter()
		for i := range vals {
			vals[i] = rng.Uint64() & ((1 << width) - 1)
			w.WriteBits(vals[i], width)
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			if got := r.ReadBits(width); got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitIOMixedWidths(t *testing.T) {
	w := NewWriter()
	w.WriteBits(5, 3)
	w.WriteBits(1023, 10)
	w.WriteBits(0, 1)
	w.WriteBits(1, 1)
	w.WriteBits(123456789, 27)
	r := NewReader(w.Bytes())
	for _, c := range []struct {
		width uint
		want  uint64
	}{{3, 5}, {10, 1023}, {1, 0}, {1, 1}, {27, 123456789}} {
		if got := r.ReadBits(c.width); got != c.want {
			t.Fatalf("ReadBits(%d) = %d, want %d", c.width, got, c.want)
		}
	}
}

func TestBitReaderSkip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := uint(1 + rng.Intn(30))
		n := 20 + rng.Intn(100)
		vals := make([]uint64, n)
		w := NewWriter()
		for i := range vals {
			vals[i] = rng.Uint64() & ((1 << width) - 1)
			w.WriteBits(vals[i], width)
		}
		buf := w.Bytes()
		// Skip to a random position, then verify subsequent reads.
		skip := rng.Intn(n)
		r := NewReader(buf)
		r.SkipBits(skip * int(width))
		for i := skip; i < n; i++ {
			if r.ReadBits(width) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderPastEndYieldsZero(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if got := r.ReadBits(8); got != 0xFF {
		t.Fatalf("first byte = %x", got)
	}
	if got := r.ReadBits(16); got != 0 {
		t.Fatalf("past end = %x, want 0", got)
	}
}

func TestBitsWidth(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1<<40 - 1, 40}}
	for _, c := range cases {
		if got := BitsWidth(c.v); got != c.want {
			t.Fatalf("BitsWidth(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := MaxBitsWidth([]uint64{1, 7, 300}); got != 9 {
		t.Fatalf("MaxBitsWidth = %d, want 9", got)
	}
	if got := MaxBitsWidth(nil); got != 1 {
		t.Fatalf("MaxBitsWidth(nil) = %d, want 1", got)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(7, 3)
	w.Reset()
	w.WriteBits(1, 1)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 1 {
		t.Fatalf("after reset got %v", b)
	}
}

func TestWriterBitLen(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	w.WriteBits(0, 3)
	if w.BitLen() != 16 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
}
