package bitutil

// SectionalBitmap shards a logically contiguous selection vector into
// fixed-size sections, one per data block (paper §5.1). Sections that are
// entirely empty are stored as nil, which is what lets the column readers
// skip whole blocks; sections may also be individually compressed with
// run-length encoding to shrink the in-memory footprint of selective
// predicates.
type SectionalBitmap struct {
	sectionBits int
	n           int
	sections    []*Bitmap
	compressed  []rleSection
}

type rleSection struct {
	runs []rleRun // present only while a section is compressed
}

type rleRun struct {
	start, length int // run of set bits, section-relative
}

// NewSectionalBitmap creates an all-zero sectional bitmap covering n rows,
// with sectionBits rows per section.
func NewSectionalBitmap(n, sectionBits int) *SectionalBitmap {
	if sectionBits <= 0 {
		panic("bitutil: non-positive section size")
	}
	ns := (n + sectionBits - 1) / sectionBits
	return &SectionalBitmap{
		sectionBits: sectionBits,
		n:           n,
		sections:    make([]*Bitmap, ns),
		compressed:  make([]rleSection, ns),
	}
}

// Len returns the total number of rows covered.
func (s *SectionalBitmap) Len() int { return s.n }

// SectionSize returns the number of rows per section.
func (s *SectionalBitmap) SectionSize() int { return s.sectionBits }

// NumSections returns the number of sections.
func (s *SectionalBitmap) NumSections() int { return len(s.sections) }

func (s *SectionalBitmap) sectionLen(idx int) int {
	if idx == len(s.sections)-1 && s.n%s.sectionBits != 0 {
		return s.n % s.sectionBits
	}
	return s.sectionBits
}

// Section returns the bitmap for section idx, or nil when the section is
// empty. A compressed section is transparently decompressed first.
func (s *SectionalBitmap) Section(idx int) *Bitmap {
	if s.compressed[idx].runs != nil {
		s.decompress(idx)
	}
	return s.sections[idx]
}

// SetSection installs bm as section idx. Passing nil marks the section
// empty. The bitmap length must equal the section length.
func (s *SectionalBitmap) SetSection(idx int, bm *Bitmap) {
	if bm != nil && bm.Len() != s.sectionLen(idx) {
		panic("bitutil: section bitmap length mismatch")
	}
	if bm != nil && !bm.Any() {
		bm = nil
	}
	s.sections[idx] = bm
	s.compressed[idx].runs = nil
}

// Set sets the global bit i.
func (s *SectionalBitmap) Set(i int) {
	idx := i / s.sectionBits
	if s.compressed[idx].runs != nil {
		s.decompress(idx)
	}
	if s.sections[idx] == nil {
		s.sections[idx] = NewBitmap(s.sectionLen(idx))
	}
	s.sections[idx].Set(i % s.sectionBits)
}

// Get reports the value of global bit i.
func (s *SectionalBitmap) Get(i int) bool {
	idx := i / s.sectionBits
	if s.compressed[idx].runs != nil {
		off := i % s.sectionBits
		for _, r := range s.compressed[idx].runs {
			if off >= r.start && off < r.start+r.length {
				return true
			}
		}
		return false
	}
	if s.sections[idx] == nil {
		return false
	}
	return s.sections[idx].Get(i % s.sectionBits)
}

// SectionEmpty reports whether section idx contains no set bits; empty
// sections let the reader skip the corresponding data block entirely.
func (s *SectionalBitmap) SectionEmpty(idx int) bool {
	if s.compressed[idx].runs != nil {
		return len(s.compressed[idx].runs) == 0
	}
	return s.sections[idx] == nil || !s.sections[idx].Any()
}

// Cardinality returns the number of set bits across all sections.
func (s *SectionalBitmap) Cardinality() int {
	c := 0
	for i := range s.sections {
		if s.compressed[i].runs != nil {
			for _, r := range s.compressed[i].runs {
				c += r.length
			}
			continue
		}
		if s.sections[i] != nil {
			c += s.sections[i].Cardinality()
		}
	}
	return c
}

// Clone returns a deep copy of s. Compressed sections are decompressed in
// the copy (the clone exists to be mutated, e.g. by AndNot in NOT-predicate
// evaluation, which works on word storage).
func (s *SectionalBitmap) Clone() *SectionalBitmap {
	out := NewSectionalBitmap(s.n, s.sectionBits)
	for i := range s.sections {
		if sec := s.Section(i); sec != nil {
			out.sections[i] = sec.Clone()
		}
	}
	return out
}

// And intersects s with other section-by-section; sections that become
// empty revert to nil so downstream readers skip them.
func (s *SectionalBitmap) And(other *SectionalBitmap) *SectionalBitmap {
	s.checkShape(other)
	for i := range s.sections {
		a, b := s.Section(i), other.Section(i)
		if a == nil || b == nil {
			s.sections[i] = nil
			continue
		}
		a.And(b)
		if !a.Any() {
			s.sections[i] = nil
		}
	}
	return s
}

// Or unions s with other section-by-section.
func (s *SectionalBitmap) Or(other *SectionalBitmap) *SectionalBitmap {
	s.checkShape(other)
	for i := range s.sections {
		a, b := s.Section(i), other.Section(i)
		switch {
		case b == nil:
		case a == nil:
			s.sections[i] = b.Clone()
		default:
			a.Or(b)
		}
	}
	return s
}

// AndNot removes other's set bits from s section-by-section.
func (s *SectionalBitmap) AndNot(other *SectionalBitmap) *SectionalBitmap {
	s.checkShape(other)
	for i := range s.sections {
		a, b := s.Section(i), other.Section(i)
		if a == nil || b == nil {
			continue
		}
		a.AndNot(b)
		if !a.Any() {
			s.sections[i] = nil
		}
	}
	return s
}

// Flatten concatenates all sections into one contiguous bitmap.
func (s *SectionalBitmap) Flatten() *Bitmap {
	out := NewBitmap(s.n)
	for i := range s.sections {
		sec := s.Section(i)
		if sec == nil {
			continue
		}
		base := i * s.sectionBits
		sec.ForEach(func(j int) { out.Set(base + j) })
	}
	return out
}

// ForEach invokes fn for every set bit in ascending global order.
func (s *SectionalBitmap) ForEach(fn func(i int)) {
	for i := range s.sections {
		sec := s.Section(i)
		if sec == nil {
			continue
		}
		base := i * s.sectionBits
		sec.ForEach(func(j int) { fn(base + j) })
	}
}

// Compress converts section idx to a run-length representation, releasing
// the word storage. Reads transparently decompress.
func (s *SectionalBitmap) Compress(idx int) {
	if s.compressed[idx].runs != nil || s.sections[idx] == nil {
		if s.sections[idx] == nil && s.compressed[idx].runs == nil {
			s.compressed[idx].runs = []rleRun{}
		}
		return
	}
	sec := s.sections[idx]
	runs := []rleRun{}
	i := sec.NextSet(0)
	for i >= 0 {
		j := i
		for j+1 < sec.Len() && sec.Get(j+1) {
			j++
		}
		runs = append(runs, rleRun{start: i, length: j - i + 1})
		i = sec.NextSet(j + 1)
	}
	s.compressed[idx].runs = runs
	s.sections[idx] = nil
}

// CompressedSizeBytes estimates the in-memory footprint of the sectional
// bitmap, counting 16 bytes per RLE run for compressed sections and
// 8 bytes per word for uncompressed ones. Used by the intermediate-result
// accounting in the SSB experiments.
func (s *SectionalBitmap) CompressedSizeBytes() int {
	total := 0
	for i := range s.sections {
		if s.compressed[i].runs != nil {
			total += 16 * len(s.compressed[i].runs)
		} else if s.sections[i] != nil {
			total += 8 * len(s.sections[i].words)
		}
	}
	return total
}

func (s *SectionalBitmap) decompress(idx int) {
	bm := NewBitmap(s.sectionLen(idx))
	any := false
	for _, r := range s.compressed[idx].runs {
		bm.SetRange(r.start, r.start+r.length)
		any = any || r.length > 0
	}
	s.compressed[idx].runs = nil
	if any {
		s.sections[idx] = bm
	} else {
		s.sections[idx] = nil
	}
}

func (s *SectionalBitmap) checkShape(other *SectionalBitmap) {
	if s.n != other.n || s.sectionBits != other.sectionBits {
		panic("bitutil: sectional bitmap shape mismatch")
	}
}
