// Package bitutil provides bit-level primitives used throughout CodecDB:
// word-parallel bitmaps that serve as selection vectors, sectional bitmaps
// that shard a large selection into per-block sections, and bit-granular
// readers and writers used by the encoding layer.
//
// Bitmaps are the universal intermediate result of CodecDB's filter
// operators (paper §5.1). All logical operations work on 64-bit words at a
// time, which is the portable stand-in for the SIMD bitmap kernels in the
// original C++ implementation.
package bitutil

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a fixed-length sequence of bits with word-parallel logical
// operations. Bit i corresponds to row i of the relation being filtered.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap of n bits, all zero.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic("bitutil: negative bitmap length")
	}
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// BitmapFromWords wraps pre-built words into a bitmap of n bits. The slice
// is used directly, not copied. Trailing bits past n in the final word must
// be zero; use Mask to enforce this after bulk writes.
func BitmapFromWords(words []uint64, n int) *Bitmap {
	need := (n + wordBits - 1) / wordBits
	if len(words) < need {
		panic("bitutil: word slice too short for bitmap length")
	}
	return &Bitmap{words: words[:need], n: n}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the underlying word storage. The final word's bits past
// Len() are always zero for bitmaps maintained through the public API.
func (b *Bitmap) Words() []uint64 { return b.words }

// Set sets bit i to one.
func (b *Bitmap) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to zero.
func (b *Bitmap) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetRange sets bits [from, to) to one.
func (b *Bitmap) SetRange(from, to int) {
	if from >= to {
		return
	}
	fw, lw := from/wordBits, (to-1)/wordBits
	fmask := ^uint64(0) << (uint(from) % wordBits)
	lmask := ^uint64(0) >> (uint(wordBits-1) - uint(to-1)%wordBits)
	if fw == lw {
		b.words[fw] |= fmask & lmask
		return
	}
	b.words[fw] |= fmask
	for w := fw + 1; w < lw; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[lw] |= lmask
}

// SetAll sets every bit to one.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.Mask()
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Mask zeroes any bits in the final word beyond Len. Callers that write
// whole words directly (e.g. SWAR kernels) should call Mask afterwards so
// Cardinality and iteration remain correct.
func (b *Bitmap) Mask() {
	if b.n%wordBits != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << (uint(b.n) % wordBits)) - 1
	}
}

// Cardinality returns the number of set bits.
func (b *Bitmap) Cardinality() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [from, to). Out-of-range
// bounds are clamped to [0, Len()).
func (b *Bitmap) CountRange(from, to int) int {
	if from < 0 {
		from = 0
	}
	if to > b.n {
		to = b.n
	}
	if from >= to {
		return 0
	}
	fw, lw := from/wordBits, (to-1)/wordBits
	if fw == lw {
		w := b.words[fw] >> (uint(from) % wordBits)
		return bits.OnesCount64(w << (wordBits - uint(to-from)) >> (wordBits - uint(to-from)))
	}
	c := bits.OnesCount64(b.words[fw] >> (uint(from) % wordBits))
	for i := fw + 1; i < lw; i++ {
		c += bits.OnesCount64(b.words[i])
	}
	tail := uint(to) % wordBits
	last := b.words[lw]
	if tail != 0 {
		last &= (1 << tail) - 1
	}
	return c + bits.OnesCount64(last)
}

// AndRange intersects b with the window src[off : off+b.Len()): bit i of b
// survives only if bit off+i of src is set. The window must lie inside src.
// Word-aligned offsets (the common case: pages start at multiples of 64
// rows) run word-parallel; unaligned offsets stitch adjacent source words.
func (b *Bitmap) AndRange(src *Bitmap, off int) *Bitmap {
	if off < 0 || off+b.n > src.n {
		panic("bitutil: AndRange window outside source bitmap")
	}
	if off%wordBits == 0 {
		sw := src.words[off/wordBits:]
		for i := range b.words {
			b.words[i] &= sw[i]
		}
		return b
	}
	shift := uint(off) % wordBits
	sw := src.words[off/wordBits:]
	for i := range b.words {
		w := sw[i] >> shift
		if i+1 < len(sw) {
			w |= sw[i+1] << (wordBits - shift)
		}
		b.words[i] &= w
	}
	b.Mask()
	return b
}

// And replaces b with b AND other. The bitmaps must have equal length.
func (b *Bitmap) And(other *Bitmap) *Bitmap {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
	return b
}

// Or replaces b with b OR other. The bitmaps must have equal length.
func (b *Bitmap) Or(other *Bitmap) *Bitmap {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
	return b
}

// AndNot replaces b with b AND NOT other. The bitmaps must have equal length.
func (b *Bitmap) AndNot(other *Bitmap) *Bitmap {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
	return b
}

// Xor replaces b with b XOR other. The bitmaps must have equal length.
func (b *Bitmap) Xor(other *Bitmap) *Bitmap {
	b.checkLen(other)
	for i := range b.words {
		b.words[i] ^= other.words[i]
	}
	return b
}

// Not inverts every bit in place.
func (b *Bitmap) Not() *Bitmap {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.Mask()
	return b
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first set bit at or after from, or -1 if
// none exists. It is the core of the fast position iterator used by the
// data-skipping column readers.
func (b *Bitmap) NextSet(from int) int {
	if from >= b.n {
		return -1
	}
	wi := from / wordBits
	w := b.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// ForEach invokes fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Positions returns the indexes of all set bits.
func (b *Bitmap) Positions() []int {
	out := make([]int, 0, b.Cardinality())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

func (b *Bitmap) checkLen(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitutil: bitmap length mismatch %d vs %d", b.n, other.n))
	}
}

// Iterator walks the set bits of a bitmap without allocating.
type Iterator struct {
	b   *Bitmap
	pos int
}

// Iter returns an iterator positioned before the first set bit.
func (b *Bitmap) Iter() *Iterator { return &Iterator{b: b, pos: -1} }

// Next advances to the next set bit and returns its index, or -1 when the
// iteration is exhausted.
func (it *Iterator) Next() int {
	it.pos = it.b.NextSet(it.pos + 1)
	return it.pos
}
