// Package core is CodecDB itself (paper §3): the storage engine that
// samples incoming columns, runs data-driven encoding selection, encodes
// and persists tables in the columnar format, and keeps encoding metadata
// both on disk and in memory; and the query engine runtime — operator and
// data thread pools, per-query batch caches, and cost instrumentation —
// that the hand-coded query plans execute against.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/features"
	"codecdb/internal/obs"
	"codecdb/internal/selector"
	"codecdb/internal/shard"
	"codecdb/internal/vfs"
)

// sampleBytes is the head-sample budget for runtime encoding selection
// (§6.2.2: the default setting samples the first 1M bytes).
const sampleBytes = 1 << 20

// Options configures a database instance.
type Options struct {
	// OperatorThreads sizes the operator pool (default GOMAXPROCS).
	OperatorThreads int
	// DataThreads sizes the shared data-processing pool, which bounds
	// per-query memory (§5.2; default GOMAXPROCS).
	DataThreads int
	// Selector is the trained encoding selector; nil falls back to
	// exhaustive selection on the head sample.
	Selector *selector.Learned
	// FS is the filesystem the durable write path (WAL, shards,
	// manifests) and static table readers go through; nil selects the
	// real one. The seam the crash-injection tests and the beyond-RAM
	// I/O benchmarks (simulated device latency) use.
	FS vfs.FS
	// PageCacheBytes, when positive, sizes a process-wide cache of
	// decompressed page bodies shared by every reader this DB opens
	// (static tables and ingest shards alike). Zero disables caching —
	// the historical behavior, which the IO-accounting property tests
	// rely on.
	PageCacheBytes int64
	// Logger receives the engine's structured events (flush,
	// quarantine, recovery, torn-tail truncation, slow queries). Nil
	// drops them, mirroring the tracer's nil-safety.
	Logger *obs.Logger
}

// DB is a CodecDB database: a directory of encoded column files plus the
// encoding metadata catalog.
type DB struct {
	dir       string
	opts      Options
	fs        vfs.FS
	opPool    *exec.Pool
	dataPool  *exec.Pool
	pageCache *colstore.PageCache

	mu      sync.Mutex
	tables  map[string]*Table
	catalog catalog
}

// catalog is the on-disk metadata (§3: "persists the metadata on disk as a
// plain text file and maintains it in memory as a hashmap").
type catalog struct {
	Tables map[string]tableMeta `json:"tables"`
}

type tableMeta struct {
	File      string            `json:"file"`
	Rows      int64             `json:"rows"`
	Encodings map[string]string `json:"encodings"` // column -> encoding name
	// Kind distinguishes static single-file tables ("", the historical
	// default) from WAL-backed sharded tables ("sharded").
	Kind string `json:"kind,omitempty"`
	// Dir is the sharded table's directory, relative to the DB root.
	Dir string `json:"dir,omitempty"`
	// Columns preserves a sharded table's schema (name + type) so it can
	// be reopened before any shard exists.
	Columns []FieldMeta `json:"columns,omitempty"`
}

// FieldMeta is one column of a sharded table's catalogued schema.
type FieldMeta struct {
	Name string        `json:"name"`
	Type colstore.Type `json:"type"`
}

// Table is an opened table: either a static single-file table (R set) or
// a WAL-backed sharded table (S set).
type Table struct {
	Name string
	R    *colstore.Reader
	S    *shard.Table
}

// Open opens (or initialises) a database rooted at dir.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	db := &DB{
		dir:      dir,
		opts:     opts,
		fs:       fsys,
		opPool:   exec.NewPool(opts.OperatorThreads),
		dataPool: exec.NewPool(opts.DataThreads),
		tables:   map[string]*Table{},
		catalog:  catalog{Tables: map[string]tableMeta{}},
	}
	if opts.PageCacheBytes > 0 {
		db.pageCache = colstore.NewPageCache(opts.PageCacheBytes)
	}
	if raw, err := os.ReadFile(db.catalogPath()); err == nil {
		if err := json.Unmarshal(raw, &db.catalog); err != nil {
			return nil, fmt.Errorf("core: corrupt catalog: %w", err)
		}
	}
	if opts.Logger != nil {
		// The flight recorder emits slow-query events through the same
		// injected logger, joining logs and records on the query ID.
		obs.DefaultRecorder().SetLogger(opts.Logger)
	}
	return db, nil
}

// Close releases all open tables.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, t := range db.tables {
		var err error
		if t.S != nil {
			err = t.S.Close()
		} else {
			err = t.R.Close()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	db.tables = map[string]*Table{}
	return first
}

// PageCache returns the shared decompressed-page cache, nil when
// disabled.
func (db *DB) PageCache() *colstore.PageCache { return db.pageCache }

// OperatorPool returns the operator-level pool.
func (db *DB) OperatorPool() *exec.Pool { return db.opPool }

// DataPool returns the block-level data pool.
func (db *DB) DataPool() *exec.Pool { return db.dataPool }

func (db *DB) catalogPath() string { return filepath.Join(db.dir, "catalog.json") }

// ColumnSpec describes one column being loaded. Encoding is optional: the
// zero value KindPlain plus AutoEncode selects data-driven.
type ColumnSpec struct {
	Name string
	Type colstore.Type
	// Encoding forces a scheme when AutoEncode is false.
	Encoding encoding.Kind
	// AutoEncode runs data-driven selection on a head sample.
	AutoEncode bool
	// DictGroup joins columns sharing one global dictionary.
	DictGroup string
	// Compression optionally names a page compressor.
	Compression string
}

// LoadTable encodes data into a new table file: each AutoEncode column is
// head-sampled, featurised, and routed through the encoding selector, then
// all columns are written with the chosen schemes (§3 runtime module).
func (db *DB) LoadTable(name string, specs []ColumnSpec, data []colstore.ColumnData, opts colstore.Options) (*Table, error) {
	if len(specs) != len(data) {
		return nil, fmt.Errorf("core: %d specs for %d columns", len(specs), len(data))
	}
	cols := make([]colstore.Column, len(specs))
	encodings := map[string]string{}
	for i, s := range specs {
		kind := s.Encoding
		if s.AutoEncode {
			kind = db.selectEncoding(s, data[i])
		}
		kind, compression := normaliseKind(s, kind)
		cols[i] = colstore.Column{
			Name: s.Name, Type: s.Type, Encoding: kind,
			Compression: compression, DictGroup: s.DictGroup,
		}
		encodings[s.Name] = kind.String()
	}
	path := filepath.Join(db.dir, name+".cdb")
	if err := colstore.WriteFile(path, colstore.Schema{Columns: cols}, data, opts); err != nil {
		return nil, err
	}
	r, err := colstore.OpenFS(db.fs, path)
	if err != nil {
		return nil, err
	}
	r.SetPageCache(db.pageCache)
	t := &Table{Name: name, R: r}
	db.mu.Lock()
	db.tables[name] = t
	db.catalog.Tables[name] = tableMeta{File: name + ".cdb", Rows: r.NumRows(), Encodings: encodings}
	err = db.persistCatalogLocked()
	db.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return t, nil
}

// selectEncoding picks a scheme for one column using the configured
// selector on a head sample, or exhaustive selection when no model is
// loaded. Each decision is emitted as an "encoding_decision" structured
// event (features in, per-candidate scores out) when an event sink is
// installed.
func (db *DB) selectEncoding(s ColumnSpec, data colstore.ColumnData) encoding.Kind {
	switch s.Type {
	case colstore.TypeInt64:
		sample := features.HeadSampleInts(data.Ints, sampleBytes)
		if db.opts.Selector != nil {
			v := features.ExtractInts(sample)
			kind := db.opts.Selector.SelectIntFromVector(v)
			emitDecision(s.Name, "learned", v.Slice(), ratioScores(db.opts.Selector.ScoresInt(v)), kind)
			return kind
		}
		kind, _, err := selector.BestInt(sample)
		if err != nil {
			return encoding.KindPlain
		}
		if obs.EventsEnabled() {
			sizes, _ := selector.SizesInt(sample, encoding.IntCandidates())
			fv := features.ExtractInts(sample)
			emitDecision(s.Name, "exhaustive", fv.Slice(), sizeScores(sizes), kind)
		}
		return kind
	case colstore.TypeString:
		sample := features.HeadSampleStrings(data.Strings, sampleBytes)
		if db.opts.Selector != nil {
			v := features.ExtractStrings(sample)
			kind := db.opts.Selector.SelectStringFromVector(v)
			emitDecision(s.Name, "learned", v.Slice(), ratioScores(db.opts.Selector.ScoresString(v)), kind)
			return kind
		}
		kind, _, err := selector.BestString(sample)
		if err != nil {
			return encoding.KindPlain
		}
		if obs.EventsEnabled() {
			sizes, _ := selector.SizesString(sample, encoding.StringCandidates())
			fv := features.ExtractStrings(sample)
			emitDecision(s.Name, "exhaustive", fv.Slice(), sizeScores(sizes), kind)
		}
		return kind
	default:
		return encoding.KindPlain
	}
}

// emitDecision publishes one encoding-selection outcome as a structured
// event: the feature vector that went in, the per-candidate scores that
// came out (predicted ratios for the learned path, encoded byte sizes
// for the exhaustive path), and the chosen scheme.
func emitDecision(col, mode string, feats []float64, scores map[string]float64, chosen encoding.Kind) {
	if !obs.EventsEnabled() {
		return
	}
	obs.Emit("encoding_decision", map[string]any{
		"column":   col,
		"mode":     mode,
		"features": feats,
		"names":    features.Names(),
		"scores":   scores,
		"chosen":   chosen.String(),
	})
}

func ratioScores(m map[encoding.Kind]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, s := range m {
		out[k.String()] = s
	}
	return out
}

func sizeScores(m map[encoding.Kind]int) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, s := range m {
		out[k.String()] = float64(s)
	}
	return out
}

// normaliseKind maps selector outputs onto what the storage layer writes:
// byte-compression "encodings" become plain pages with that compressor,
// and schemes that do not apply to the column type fall back to a safe
// default.
func normaliseKind(s ColumnSpec, kind encoding.Kind) (encoding.Kind, string) {
	compression := s.Compression
	switch kind {
	case encoding.KindSnappy:
		return encoding.KindPlain, "snappy"
	case encoding.KindGzip:
		return encoding.KindPlain, "gzip"
	}
	switch s.Type {
	case colstore.TypeInt64:
		if _, err := encoding.IntCodecFor(kind); err != nil {
			return encoding.KindPlain, compression
		}
	case colstore.TypeString:
		if kind != encoding.KindDict && kind != encoding.KindDictRLE {
			if _, err := encoding.StringCodecFor(kind); err != nil {
				return encoding.KindPlain, compression
			}
		}
	case colstore.TypeFloat64:
		if kind == encoding.KindXorFloat {
			return kind, compression
		}
		return encoding.KindPlain, compression
	}
	return kind, compression
}

// Table returns the opened table, loading it from the catalog on first
// access.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	tm, ok := db.catalog.Tables[name]
	if !ok {
		return nil, fmt.Errorf("core: no table %q", name)
	}
	if tm.Kind == KindSharded {
		return db.openShardedLocked(name, tm)
	}
	r, err := colstore.OpenFS(db.fs, filepath.Join(db.dir, tm.File))
	if err != nil {
		return nil, err
	}
	r.SetPageCache(db.pageCache)
	t := &Table{Name: name, R: r}
	db.tables[name] = t
	return t, nil
}

// TableNames lists catalogued tables.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.catalog.Tables))
	for n := range db.catalog.Tables {
		out = append(out, n)
	}
	return out
}

// Encodings returns the per-column encoding names recorded at load time
// (static tables) or chosen by the most recent flush of each column
// (sharded tables, where selection re-runs per shard).
func (db *DB) Encodings(table string) (map[string]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tm, ok := db.catalog.Tables[table]
	if !ok {
		return nil, fmt.Errorf("core: no table %q", table)
	}
	if tm.Kind == KindSharded {
		t, err := db.openShardedLocked(table, tm)
		if err != nil {
			return nil, err
		}
		return t.S.Encodings(), nil
	}
	out := make(map[string]string, len(tm.Encodings))
	for k, v := range tm.Encodings {
		out[k] = v
	}
	return out, nil
}

func (db *DB) persistCatalogLocked() error {
	raw, err := json.MarshalIndent(&db.catalog, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(db.catalogPath(), raw, 0o644)
}

// QueryStats is the per-query cost report used by the Fig 8 breakdown and
// Fig 9 memory-footprint experiments.
type QueryStats struct {
	Wall         time.Duration
	IO           time.Duration // time inside ReadAt across touched readers
	CPU          time.Duration // Wall - IO
	PagesRead    int64
	PagesPruned  int64 // rejected by page zone maps, never fetched
	PagesSkipped int64 // fetched or considered, no selected rows
	BytesRead    int64
	// AllocBytes is the total heap allocated during the query — the
	// working-set proxy for memory footprint.
	AllocBytes uint64
}

// Measure runs fn and reports its cost, attributing IO time from the given
// readers (instrumentation is reset before the run).
func Measure(readers []*colstore.Reader, fn func() error) (QueryStats, error) {
	for _, r := range readers {
		r.ResetStats()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	st := QueryStats{Wall: wall, AllocBytes: after.TotalAlloc - before.TotalAlloc}
	for _, r := range readers {
		io := r.Stats()
		st.PagesRead += io.PagesRead
		st.PagesPruned += io.PagesPruned
		st.PagesSkipped += io.PagesSkipped
		st.BytesRead += io.BytesRead
		st.IO += time.Duration(io.IONanos)
	}
	if st.IO > st.Wall {
		st.IO = st.Wall // parallel reads can overlap; clamp for reporting
	}
	st.CPU = st.Wall - st.IO
	return st, err
}
