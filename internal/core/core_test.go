package core

import (
	"testing"

	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

func testData(n int) ([]ColumnSpec, []colstore.ColumnData) {
	sorted := make([]int64, n)
	lowCard := make([]int64, n)
	strs := make([][]byte, n)
	modes := [][]byte{[]byte("A"), []byte("B"), []byte("C")}
	for i := 0; i < n; i++ {
		sorted[i] = int64(100000 + i)
		lowCard[i] = int64(i % 4)
		strs[i] = modes[i%3]
	}
	specs := []ColumnSpec{
		{Name: "id", Type: colstore.TypeInt64, AutoEncode: true},
		{Name: "status", Type: colstore.TypeInt64, AutoEncode: true},
		{Name: "mode", Type: colstore.TypeString, AutoEncode: true},
	}
	data := []colstore.ColumnData{{Ints: sorted}, {Ints: lowCard}, {Strings: strs}}
	return specs, data
}

func TestLoadTableAutoEncoding(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	specs, data := testData(5000)
	tbl, err := db.LoadTable("events", specs, data, colstore.Options{RowGroupRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.R.NumRows() != 5000 {
		t.Fatalf("rows = %d", tbl.R.NumRows())
	}
	encs, err := db.Encodings("events")
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive fallback selection: sorted → delta, low-card strings → dict.
	if encs["id"] != "DELTA_BINARY_PACKED" {
		t.Fatalf("id encoding = %s, want delta", encs["id"])
	}
	if encs["mode"] != "DICTIONARY" {
		t.Fatalf("mode encoding = %s, want dictionary", encs["mode"])
	}
	// Round trip through the reader.
	got, err := tbl.R.Chunk(0, 0).Ints()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100000 || got[1999] != 101999 {
		t.Fatal("decoded values wrong")
	}
}

func TestCatalogPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	specs, data := testData(1000)
	if _, err := db.LoadTable("t1", specs, data, colstore.Options{}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	names := db2.TableNames()
	if len(names) != 1 || names[0] != "t1" {
		t.Fatalf("names = %v", names)
	}
	tbl, err := db2.Table("t1")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.R.NumRows() != 1000 {
		t.Fatalf("rows = %d", tbl.R.NumRows())
	}
	if _, err := db2.Table("missing"); err == nil {
		t.Fatal("missing table should error")
	}
	if _, err := db2.Encodings("missing"); err == nil {
		t.Fatal("missing table should error")
	}
}

func TestForcedEncodingAndNormalisation(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n := 500
	ints := make([]int64, n)
	for i := range ints {
		ints[i] = int64(i)
	}
	// Forcing the SNAPPY pseudo-kind must become plain + snappy pages.
	specs := []ColumnSpec{{Name: "v", Type: colstore.TypeInt64, Encoding: encoding.KindSnappy}}
	tbl, err := db.LoadTable("t", specs, []colstore.ColumnData{{Ints: ints}}, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := tbl.R.Schema().Columns[0]
	if col.Encoding != encoding.KindPlain || col.Compression != "snappy" {
		t.Fatalf("normalised to %v/%s", col.Encoding, col.Compression)
	}
	// A string-only kind forced on an int column falls back to plain.
	specs2 := []ColumnSpec{{Name: "v", Type: colstore.TypeInt64, Encoding: encoding.KindDeltaLength}}
	tbl2, err := db.LoadTable("t2", specs2, []colstore.ColumnData{{Ints: ints}}, colstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.R.Schema().Columns[0].Encoding != encoding.KindPlain {
		t.Fatal("invalid kind should fall back to plain")
	}
}

func TestEndToEndFilterOnLoadedTable(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n := 4000
	status := make([]int64, n)
	for i := range status {
		status[i] = int64(i % 7)
	}
	specs := []ColumnSpec{{Name: "status", Type: colstore.TypeInt64, Encoding: encoding.KindDict}}
	tbl, err := db.LoadTable("s", specs, []colstore.ColumnData{{Ints: status}}, colstore.Options{RowGroupRows: 1024, PageRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	f := &ops.DictFilter{Col: "status", Op: sboost.OpEq, IntValue: 3}
	bm, err := f.Apply(tbl.R, db.DataPool())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range status {
		if v == 3 {
			want++
		}
	}
	if bm.Cardinality() != want {
		t.Fatalf("matched %d rows, want %d", bm.Cardinality(), want)
	}
}

func TestMeasureAttributesCosts(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	specs, data := testData(10000)
	tbl, err := db.LoadTable("m", specs, data, colstore.Options{RowGroupRows: 2048})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Measure([]*colstore.Reader{tbl.R}, func() error {
		pool := exec.NewPool(2)
		_, err := (&ops.StrPredicateFilter{Col: "mode", Pred: func(b []byte) bool { return len(b) > 0 }}).Apply(tbl.R, pool)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Wall <= 0 || st.PagesRead == 0 || st.BytesRead == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.CPU+st.IO != st.Wall {
		t.Fatalf("CPU+IO != Wall: %+v", st)
	}
	if st.AllocBytes == 0 {
		t.Fatal("alloc bytes not recorded")
	}
}

func TestLoadTableValidation(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, err = db.LoadTable("bad", []ColumnSpec{{Name: "a", Type: colstore.TypeInt64}}, nil, colstore.Options{})
	if err == nil {
		t.Fatal("spec/data mismatch should error")
	}
}
