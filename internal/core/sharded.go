package core

import (
	"fmt"
	"os"
	"path/filepath"

	"codecdb/internal/colstore"
	"codecdb/internal/memtable"
	"codecdb/internal/shard"
)

// KindSharded marks a WAL-backed sharded table in the catalog.
const KindSharded = "sharded"

// CreateShardedTable creates an empty WAL-backed table: rows go in
// through Table.S.Append (durable on return), sealed memtables flush in
// the background through the encoding selector into immutable shard
// files, and a manifest governs the live shard set. Schema types are
// colstore types; strings are ingested as bytes.
func (db *DB) CreateShardedTable(name string, fields []FieldMeta, opts shard.Options) (*Table, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("core: sharded table %q needs at least one column", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.catalog.Tables[name]; exists {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	tm := tableMeta{
		Kind:    KindSharded,
		Dir:     name + ".shard",
		Columns: append([]FieldMeta(nil), fields...),
	}
	if err := os.MkdirAll(filepath.Join(db.dir, tm.Dir), 0o755); err != nil {
		return nil, err
	}
	t, err := db.openShardTable(name, tm, opts)
	if err != nil {
		return nil, err
	}
	db.catalog.Tables[name] = tm
	if err := db.persistCatalogLocked(); err != nil {
		t.S.Close()
		delete(db.catalog.Tables, name)
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// openShardedLocked opens a catalogued sharded table (recovering its
// WAL tail and quarantining damaged shards). Caller holds db.mu.
func (db *DB) openShardedLocked(name string, tm tableMeta) (*Table, error) {
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	t, err := db.openShardTable(name, tm, shard.Options{})
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

func (db *DB) openShardTable(name string, tm tableMeta, opts shard.Options) (*Table, error) {
	if opts.Name == "" {
		opts.Name = name
	}
	if opts.Logger == nil {
		opts.Logger = db.opts.Logger
	}
	if opts.PageCache == nil {
		opts.PageCache = db.pageCache
	}
	cols := make([]shard.Column, len(tm.Columns))
	for i, f := range tm.Columns {
		ct, err := memTypeOf(f.Type)
		if err != nil {
			return nil, fmt.Errorf("core: table %q column %q: %w", name, f.Name, err)
		}
		cols[i] = shard.Column{Name: f.Name, Type: ct}
	}
	dir := filepath.ToSlash(filepath.Join(db.dir, tm.Dir))
	st, err := shard.Open(db.fs, dir, cols, opts, db.shardFlushFunc(tm.Columns))
	if err != nil {
		return nil, fmt.Errorf("core: open sharded table %q: %w", name, err)
	}
	return &Table{Name: name, S: st}, nil
}

// shardFlushFunc builds the FlushFunc that encodes one sealed memtable
// into a shard file: every column goes through data-driven selection on
// its actual data (the selector re-runs per flush, so each shard gets
// the encodings its rows deserve), then the columns are written in the
// current checksummed format.
func (db *DB) shardFlushFunc(fields []FieldMeta) shard.FlushFunc {
	return func(mem *memtable.ColumnTable, path string) (map[string]string, error) {
		specs := make([]ColumnSpec, len(fields))
		data := make([]colstore.ColumnData, len(fields))
		for i, f := range fields {
			specs[i] = ColumnSpec{Name: f.Name, Type: f.Type, AutoEncode: true}
			switch f.Type {
			case colstore.TypeInt64:
				data[i] = colstore.ColumnData{Ints: mem.Ints(i)}
			case colstore.TypeFloat64:
				data[i] = colstore.ColumnData{Floats: mem.Floats(i)}
			case colstore.TypeString:
				bins := mem.Binaries(i)
				strs := make([][]byte, len(bins))
				for j, b := range bins {
					strs[j] = b
				}
				data[i] = colstore.ColumnData{Strings: strs}
			}
		}
		cols := make([]colstore.Column, len(specs))
		encodings := make(map[string]string, len(specs))
		for i, s := range specs {
			kind, compression := normaliseKind(s, db.selectEncoding(s, data[i]))
			cols[i] = colstore.Column{Name: s.Name, Type: s.Type, Encoding: kind, Compression: compression}
			encodings[s.Name] = kind.String()
		}
		err := colstore.WriteFileFS(db.fs, path, colstore.Schema{Columns: cols}, data, colstore.Options{})
		if err != nil {
			return nil, err
		}
		return encodings, nil
	}
}

// memTypeOf maps a colstore schema type onto the memtable type domain.
func memTypeOf(t colstore.Type) (memtable.ColType, error) {
	switch t {
	case colstore.TypeInt64:
		return memtable.ColInt64, nil
	case colstore.TypeFloat64:
		return memtable.ColFloat64, nil
	case colstore.TypeString:
		return memtable.ColBinary, nil
	}
	return 0, fmt.Errorf("core: unsupported column type %v", t)
}
