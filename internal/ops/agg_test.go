package ops

import (
	"math/rand"
	"sort"
	"testing"

	"codecdb/internal/exec"
)

// refAggregate computes the expected grouped result with plain maps.
func refAggregate(keys []int64, specs []VecAgg) map[int64][]float64 {
	out := map[int64][]float64{}
	counts := map[int64]int64{}
	for i, k := range keys {
		if _, ok := out[k]; !ok {
			slots := make([]float64, len(specs))
			for j, s := range specs {
				if s.Kind == AggMinInt {
					slots[j] = 1e300
				}
				if s.Kind == AggMaxInt {
					slots[j] = -1e300
				}
			}
			out[k] = slots
		}
		counts[k]++
		for j, s := range specs {
			switch s.Kind {
			case AggCount:
				out[k][j]++
			case AggSumInt:
				out[k][j] += float64(s.Ints[i])
			case AggSumFloat:
				out[k][j] += s.Floats[i]
			case AggMinInt:
				if v := float64(s.Ints[i]); v < out[k][j] {
					out[k][j] = v
				}
			case AggMaxInt:
				if v := float64(s.Ints[i]); v > out[k][j] {
					out[k][j] = v
				}
			}
		}
	}
	return out
}

func checkAgg(t *testing.T, res *AggResult, keys []int64, specs []VecAgg) {
	t.Helper()
	want := refAggregate(keys, specs)
	if len(res.Keys) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Keys), len(want))
	}
	wantCounts := map[int64]int64{}
	for _, k := range keys {
		wantCounts[k]++
	}
	for g, k := range res.Keys {
		if res.Counts[g] != wantCounts[k] {
			t.Fatalf("group %d count = %d, want %d", k, res.Counts[g], wantCounts[k])
		}
		for j := range specs {
			got := res.Out[j][g]
			if diff := got - want[k][j]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("group %d spec %d = %v, want %v", k, j, got, want[k][j])
			}
		}
	}
}

func genAggInput(n, keySpace int, seed int64) ([]int64, []VecAgg) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	ints := make([]int64, n)
	floats := make([]float64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(keySpace))
		ints[i] = rng.Int63n(1000)
		floats[i] = rng.Float64() * 100
	}
	specs := []VecAgg{
		{Kind: AggCount},
		{Kind: AggSumInt, Ints: ints},
		{Kind: AggSumFloat, Floats: floats},
		{Kind: AggMinInt, Ints: ints},
		{Kind: AggMaxInt, Ints: ints},
	}
	return keys, specs
}

func TestArrayAggregate(t *testing.T) {
	pool := exec.NewPool(4)
	keys, specs := genAggInput(10000, 37, 1)
	res, err := ArrayAggregate(pool, keys, 37, specs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgg(t, res, keys, specs)
	// Array aggregation yields ascending keys.
	if !sort.SliceIsSorted(res.Keys, func(i, j int) bool { return res.Keys[i] < res.Keys[j] }) {
		t.Fatal("array agg keys not ascending")
	}
}

func TestArrayAggregateSparseKeySpace(t *testing.T) {
	pool := exec.NewPool(4)
	keys := []int64{5, 5, 900, 5}
	res, err := ArrayAggregate(pool, keys, 1000, []VecAgg{{Kind: AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 2 {
		t.Fatalf("groups = %d", res.NumGroups())
	}
	if res.Keys[0] != 5 || res.Counts[0] != 3 || res.Keys[1] != 900 || res.Counts[1] != 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestArrayAggregateValidation(t *testing.T) {
	pool := exec.NewPool(2)
	if _, err := ArrayAggregate(pool, []int64{1}, 0, nil); err == nil {
		t.Fatal("zero key space should error")
	}
	if _, err := ArrayAggregate(pool, []int64{1, 2}, 10, []VecAgg{{Kind: AggSumInt, Ints: []int64{1}}}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestStripeHashAggregate(t *testing.T) {
	pool := exec.NewPool(4)
	// Large sparse key space: the stripe-hash path.
	keys, specs := genAggInput(20000, 1<<20, 2)
	res, err := StripeHashAggregate(pool, keys, specs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgg(t, res, keys, specs)
}

func TestStripeMatchesArrayAndOblivious(t *testing.T) {
	pool := exec.NewPool(4)
	keys, specs := genAggInput(5000, 64, 3)
	arr, err := ArrayAggregate(pool, keys, 64, specs)
	if err != nil {
		t.Fatal(err)
	}
	str, err := StripeHashAggregate(pool, keys, specs)
	if err != nil {
		t.Fatal(err)
	}
	obl, err := HashAggregate(keys, specs)
	if err != nil {
		t.Fatal(err)
	}
	toMap := func(r *AggResult) map[int64][]float64 {
		m := map[int64][]float64{}
		for g, k := range r.Keys {
			row := []float64{float64(r.Counts[g])}
			for j := range r.Out {
				row = append(row, r.Out[j][g])
			}
			m[k] = row
		}
		return m
	}
	ma, ms, mo := toMap(arr), toMap(str), toMap(obl)
	if len(ma) != len(ms) || len(ma) != len(mo) {
		t.Fatalf("group counts differ: %d %d %d", len(ma), len(ms), len(mo))
	}
	for k, row := range ma {
		for j := range row {
			if d := row[j] - ms[k][j]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("stripe differs at key %d", k)
			}
			if d := row[j] - mo[k][j]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("oblivious differs at key %d", k)
			}
		}
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	pool := exec.NewPool(2)
	res, err := ArrayAggregate(pool, nil, 10, []VecAgg{{Kind: AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 0 {
		t.Fatal("empty input should have no groups")
	}
	res2, err := StripeHashAggregate(pool, nil, []VecAgg{{Kind: AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumGroups() != 0 {
		t.Fatal("empty input should have no groups")
	}
}
