package ops

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"codecdb/internal/exec"
)

// sortPairs canonicalizes a join result to (probe, build) order so the
// parallel probe's chunk order doesn't affect comparison.
func sortPairs(j *JoinPairs) [][2]int64 {
	out := make([][2]int64, j.Len())
	for i := range out {
		out[i] = [2]int64{j.Probe[i], j.Build[i]}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// nestedLoopOracle is the trivially-correct equi-join: every matching
// (probe, build) index pair.
func nestedLoopOracle(buildKeys, probeKeys []int64) [][2]int64 {
	var out [][2]int64
	for p, pk := range probeKeys {
		for b, bk := range buildKeys {
			if pk == bk {
				out = append(out, [2]int64{int64(p), int64(b)})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

func pairsEqual(a, b [][2]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHashJoinMatchesNestedLoopOracle is the join-correctness property:
// HashJoinBuild/Probe must produce exactly the pair set of the naive
// nested loop across randomized inputs — duplicate keys on both sides
// (cross products), empty sides, and heavily skewed multi-maps.
func TestHashJoinMatchesNestedLoopOracle(t *testing.T) {
	pool := exec.NewPool(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buildN := rng.Intn(200)
		probeN := rng.Intn(300)
		// A small key domain forces duplicates and multi-map chains; a
		// skew key makes one chain much longer than the rest.
		domain := int64(1 + rng.Intn(20))
		skew := rng.Int63n(domain)
		draw := func() int64 {
			if rng.Intn(3) == 0 {
				return skew
			}
			return rng.Int63n(domain)
		}
		buildKeys := make([]int64, buildN)
		for i := range buildKeys {
			buildKeys[i] = draw()
		}
		probeKeys := make([]int64, probeN)
		for i := range probeKeys {
			probeKeys[i] = draw()
		}
		m := HashJoinBuild(pool, buildKeys, nil)
		got := sortPairs(HashJoinProbe(pool, m, probeKeys, nil))
		want := nestedLoopOracle(buildKeys, probeKeys)
		if !pairsEqual(got, want) {
			t.Logf("seed %d: got %d pairs, want %d", seed, len(got), len(want))
			return false
		}
		// The single-threaded baseline must agree too.
		if !pairsEqual(sortPairs(ObliviousHashJoin(buildKeys, probeKeys)), want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHashJoinEmptySides covers the degenerate inputs explicitly.
func TestHashJoinEmptySides(t *testing.T) {
	pool := exec.NewPool(2)
	keys := []int64{1, 2, 3}
	if got := HashJoinProbe(pool, HashJoinBuild(pool, nil, nil), keys, nil); got.Len() != 0 {
		t.Fatalf("empty build side joined %d pairs", got.Len())
	}
	if got := HashJoinProbe(pool, HashJoinBuild(pool, keys, nil), nil, nil); got.Len() != 0 {
		t.Fatalf("empty probe side joined %d pairs", got.Len())
	}
}

// TestHashJoinExplicitRowIDs checks the rows parameters remap pair ids.
func TestHashJoinExplicitRowIDs(t *testing.T) {
	pool := exec.NewPool(2)
	m := HashJoinBuild(pool, []int64{7, 8}, []int64{100, 200})
	got := sortPairs(HashJoinProbe(pool, m, []int64{8, 7}, []int64{10, 20}))
	want := [][2]int64{{10, 200}, {20, 100}}
	if !pairsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
