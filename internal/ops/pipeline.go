package ops

import (
	"errors"
	"fmt"
	"time"

	"context"

	"codecdb/internal/arena"
	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
)

// This file is the morsel-driven pipelined executor (paper §5.2 taken to
// its conclusion): instead of running each operator over the whole table
// behind a barrier, a planned query compiles into a per-row-group pipeline
// — filter conjuncts in planned order, then the terminal's selective
// gather and partial aggregation — and pool workers each claim one row
// group at a time and run it through the entire pipeline with
// worker-local state. Every selected page is fetched, verified, and
// decompressed at most once per query, intermediates never exceed one row
// group, and no operator waits for another to finish the table.

// TermKind names the terminal a pipeline feeds.
type TermKind int

const (
	// TermCount counts selected rows.
	TermCount TermKind = iota
	// TermRowIDs collects global ids of selected rows.
	TermRowIDs
	// TermInts gathers an integer column.
	TermInts
	// TermFloats gathers a float column.
	TermFloats
	// TermStrings gathers a string column.
	TermStrings
	// TermGroupCount array-aggregates counts by dictionary key.
	TermGroupCount
	// TermSumFloat sums a float column over the selection.
	TermSumFloat
	// TermRel feeds a relational plan: join/filter stages then a grouped
	// or collected sink (see RelPlan).
	TermRel
)

// String names the terminal for display (flight recorder, debug pages).
func (t TermKind) String() string {
	switch t {
	case TermCount:
		return "Count"
	case TermRowIDs:
		return "RowIDs"
	case TermInts:
		return "Ints"
	case TermFloats:
		return "Floats"
	case TermStrings:
		return "Strings"
	case TermGroupCount:
		return "GroupCount"
	case TermSumFloat:
		return "SumFloat"
	case TermRel:
		return "Rel"
	}
	return "?"
}

// PipelineResult carries whichever output the terminal produced; Count is
// always the selected-row cardinality.
type PipelineResult struct {
	Count   int64
	RowIDs  []int64
	Ints    []int64
	Floats  []float64
	Strings [][]byte
	Group   *AggResult
	Sum     float64
	Rel     *Batch
}

// pipeLeaf is one compiled filter stage: the prepared filter plus the
// bookkeeping the traced path needs (stable stage index, display name,
// planner estimate). name is only rendered when traced, so untraced
// builds leave it empty rather than paying a format per query.
type pipeLeaf struct {
	idx  int
	name string
	f    Filter
	est  float64
	pf   preparedFilter
}

// pipeNode mirrors the plan tree over compiled leaves, preserving the
// planner's execution order.
type pipeNode struct {
	kind PredKind
	leaf *pipeLeaf // PredLeaf, PredNot
	kids []*pipeNode
}

// errNotPreparable flags a plan leaf whose filter does not implement the
// kernel interface (an external Filter); the pipeline then computes the
// selection through the legacy barrier path and morselizes only the
// terminal.
var errNotPreparable = errors.New("ops: filter has no row-group kernel")

// pipeline is one compiled query: the filter tree, the terminal, and the
// per-query constants every worker shares read-only.
type pipeline struct {
	r    *colstore.Reader
	pool *exec.Pool
	plan *Plan

	root   *pipeNode
	leaves []*pipeLeaf
	// fallback routes selection through plan.Execute (operator-at-a-time)
	// when some leaf has no kernel; the terminal still runs morsel-wise.
	fallback bool

	term TermKind
	col  string
	ci   int

	// rel is the relational plan a TermRel pipeline executes after its
	// filter stages: per-row-group join probes and residual filters, then
	// a grouped or collected sink.
	rel *RelPlan

	// fetch is the per-query page prefetcher (nil when prefetch is off,
	// the plan fell back to the barrier path, or nothing is worth
	// scheduling). It is started before the morsel loop and closed when
	// the run returns.
	fetch *colstore.PageFetcher

	keySpace int
	aggKinds []AggKind
	aggSpecs []VecAgg

	// rgStart is each row group's first global row id (TermRowIDs).
	rgStart []int64

	traced  bool
	workers []*pipeWorker

	// slab storage for the compiled tree and the worker states: the hot
	// path builds one pipeline per query, so nodes, leaves, workers, and
	// kernel slots come out of backing arrays instead of one heap object
	// each. Small trees (the common case) fit the inline arrays and cost
	// no allocation at all beyond the pipeline itself.
	leafBuf []pipeLeaf
	nodeBuf []pipeNode
	wbuf    []pipeWorker
	kbuf    []filterRG
	leafArr [4]pipeLeaf
	nodeArr [8]pipeNode
	lptrArr [4]*pipeLeaf

	// parts and res live in the pipeline so a run allocates neither.
	parts pipeParts
	res   PipelineResult
}

// stageStats is one stage's merged-across-morsels measurement: row flow,
// summed worker busy time, and whether a pushed selection ever restricted
// the stage.
type stageStats struct {
	rowsIn  int64
	rowsOut int64
	nanos   int64
	pushed  bool
}

// pipeWorker is the worker-local execution state: one scratch arena, one
// kernel instance per filter stage, partial terminal accumulators, and —
// when traced — per-stage IO taps and row/time stats. Nothing here is
// shared between workers, so morsels run lock-free.
type pipeWorker struct {
	p       *pipeline
	sc      *arena.Scratch
	kernels []filterRG
	count   int64
	agg     *PartialArrayAgg
	taps    []colstore.IOTap
	stats   []stageStats

	// relational sink partials (TermRel): one of these per worker.
	relGroup *relGroupAcc
	relTop   *relTopK
}

// pipeParts holds per-row-group output slots; workers write disjoint
// indices, so the final concatenation needs no synchronization.
type pipeParts struct {
	rowIDs [][]int64
	ints   [][]int64
	floats [][]float64
	strs   [][][]byte
	// sums holds one partial sum per row group; the merge folds them in
	// row-group order, so the result does not depend on which worker
	// claimed which morsel.
	sums []float64
	// rel holds one collected batch fragment per row group (TermRel with
	// an unsorted or fully-sorted collect sink).
	rel []*Batch
}

// buildPipeline compiles a planned query against one reader: every plan
// leaf is prepared into a kernel (or the whole selection falls back to the
// barrier path), terminal columns are resolved, and — because lazy
// dictionary faults bypass the per-stage IO taps — every dictionary any
// stage could touch is faulted now, inside the Prepare window.
func buildPipeline(r *colstore.Reader, pool *exec.Pool, pl *Plan, term TermKind, col string, rp *RelPlan, traced bool) (*pipeline, error) {
	p := &pipeline{r: r, pool: pool, plan: pl, term: term, col: col, ci: -1, traced: traced}
	if pl != nil {
		nLeaves, nNodes := countPlan(pl.Root)
		if nLeaves <= len(p.leafArr) {
			p.leafBuf = p.leafArr[:0]
			p.leaves = p.lptrArr[:0]
		} else {
			p.leafBuf = make([]pipeLeaf, 0, nLeaves)
			p.leaves = make([]*pipeLeaf, 0, nLeaves)
		}
		if nNodes <= len(p.nodeArr) {
			p.nodeBuf = p.nodeArr[:0]
		} else {
			p.nodeBuf = make([]pipeNode, 0, nNodes)
		}
		root, err := p.compileNode(pl.Root)
		switch {
		case errors.Is(err, errNotPreparable):
			p.fallback = true
			p.root = nil
			p.leaves = nil
		case err != nil:
			return nil, err
		default:
			p.root = root
		}
		if traced {
			p.prefaultDicts(pl.Root.Pred)
		}
	}
	switch term {
	case TermInts, TermFloats, TermStrings, TermSumFloat:
		ci, c, err := r.Column(col)
		if err != nil {
			return nil, err
		}
		p.ci = ci
		p.faultDict(ci, c)
	case TermGroupCount:
		ci, c, err := r.Column(col)
		if err != nil {
			return nil, err
		}
		p.ci = ci
		ks, err := dictLength(r, ci, c)
		if err != nil {
			return nil, err
		}
		if ks <= 0 {
			return nil, fmt.Errorf("ops: non-positive key space %d", ks)
		}
		p.keySpace = ks
		p.aggKinds = []AggKind{AggCount}
		p.aggSpecs = []VecAgg{{Kind: AggCount}}
	case TermRowIDs:
		p.rgStart = make([]int64, r.NumRowGroups())
		var off int64
		for i := range p.rgStart {
			p.rgStart[i] = off
			off += int64(r.RowGroupRows(i))
		}
	case TermRel:
		if rp == nil {
			return nil, fmt.Errorf("ops: TermRel pipeline without a relational plan")
		}
		p.rel = rp
		if err := p.buildRel(rp); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// relStageCount reports how many relational stages sit between the filter
// stages and the sink (0 for scalar terminals).
func (p *pipeline) relStageCount() int {
	if p.rel == nil {
		return 0
	}
	return len(p.rel.Stages)
}

// countPlan sizes the compile slabs: leaves and total nodes in the plan
// tree.
func countPlan(n *PlanNode) (leaves, nodes int) {
	nodes = 1
	switch n.Pred.Kind {
	case PredLeaf, PredNot:
		leaves = 1
	default:
		for _, kid := range n.Kids {
			l, nd := countPlan(kid)
			leaves += l
			nodes += nd
		}
	}
	return leaves, nodes
}

// compileNode turns one plan node into its pipeline mirror, appending
// leaves depth-first in planned order so stage indices follow execution
// order. Nodes and leaves come out of the pre-sized slabs, so the
// returned pointers stay valid for the pipeline's lifetime.
func (p *pipeline) compileNode(n *PlanNode) (*pipeNode, error) {
	switch n.Pred.Kind {
	case PredLeaf, PredNot:
		pb, ok := n.Pred.Leaf.(preparable)
		if !ok {
			return nil, errNotPreparable
		}
		pf, err := pb.prepare(p.r)
		if err != nil {
			return nil, err
		}
		name := ""
		if p.traced {
			name = FilterName(n.Pred.Leaf)
		}
		p.leafBuf = append(p.leafBuf, pipeLeaf{idx: len(p.leaves), name: name, f: n.Pred.Leaf, est: n.Est.Sel, pf: pf})
		lf := &p.leafBuf[len(p.leafBuf)-1]
		p.leaves = append(p.leaves, lf)
		p.nodeBuf = append(p.nodeBuf, pipeNode{kind: n.Pred.Kind, leaf: lf})
		return &p.nodeBuf[len(p.nodeBuf)-1], nil
	case PredAnd, PredOr:
		p.nodeBuf = append(p.nodeBuf, pipeNode{kind: n.Pred.Kind, kids: make([]*pipeNode, 0, len(n.Kids))})
		node := &p.nodeBuf[len(p.nodeBuf)-1]
		for _, kid := range n.Kids {
			cn, err := p.compileNode(kid)
			if err != nil {
				return nil, err
			}
			node.kids = append(node.kids, cn)
		}
		return node, nil
	}
	return nil, fmt.Errorf("ops: unknown predicate kind %d", n.Pred.Kind)
}

// filterColumns lists the columns a package filter reads.
func filterColumns(f Filter) []string {
	switch t := f.(type) {
	case *DictFilter:
		return []string{t.Col}
	case *DictInFilter:
		return []string{t.Col}
	case *DictLikeFilter:
		return []string{t.Col}
	case *BitPackedFilter:
		return []string{t.Col}
	case *DictIntPredFilter:
		return []string{t.Col}
	case *TwoColumnFilter:
		return []string{t.ColA, t.ColB}
	case *DeltaFilter:
		return []string{t.Col}
	case *IntPredicateFilter:
		return []string{t.Col}
	case *StrPredicateFilter:
		return []string{t.Col}
	case *FloatPredicateFilter:
		return []string{t.Col}
	}
	return nil
}

// prefaultDicts faults the dictionary of every dict-encoded column the
// predicate tree touches. Dictionary reads bump the reader's byte counters
// without flowing through any chunk tap, so letting a worker fault one
// mid-morsel would leave IO the stage taps cannot account for; faulting
// during build keeps the traced invariant (Prepare + Σ stages = pipeline)
// exact. Errors are ignored — the owning filter surfaces them with its own
// message when it runs.
func (p *pipeline) prefaultDicts(pred *Pred) {
	switch pred.Kind {
	case PredLeaf, PredNot:
		for _, name := range filterColumns(pred.Leaf) {
			if ci, c, err := p.r.Column(name); err == nil {
				p.faultDict(ci, c)
			}
		}
	case PredAnd, PredOr:
		for _, kid := range pred.Kids {
			p.prefaultDicts(kid)
		}
	}
}

// faultDict loads a dict-encoded column's dictionary into the reader's
// cache, attributing the read to the caller's window. Untraced runs skip
// it: a lazy fault mid-morsel books into the global counters correctly,
// and only the traced per-stage invariant needs the read pinned to the
// Prepare window.
func (p *pipeline) faultDict(ci int, c *colstore.Column) {
	if !p.traced {
		return
	}
	if c.Encoding != encoding.KindDict && c.Encoding != encoding.KindDictRLE {
		return
	}
	switch c.Type {
	case colstore.TypeInt64:
		_, _ = p.r.IntDict(ci)
	case colstore.TypeString:
		_, _ = p.r.StrDict(ci)
	}
}

// dictLength returns the dictionary cardinality — the array-aggregation
// key space.
func dictLength(r *colstore.Reader, ci int, c *colstore.Column) (int, error) {
	switch c.Type {
	case colstore.TypeInt64:
		dict, err := r.IntDict(ci)
		return len(dict), err
	case colstore.TypeString:
		dict, err := r.StrDict(ci)
		return len(dict), err
	}
	return 0, fmt.Errorf("ops: column %s has no dictionary", c.Name)
}

// newWorker builds one worker's private state in slot wi of the worker
// slab: scratch, one kernel instance per stage (lazily built lookup
// tables live in the kernel closure), a partial aggregate table, and
// per-stage taps when traced. Slots are disjoint slices of shared
// backing arrays; each is written by exactly one worker goroutine.
func (p *pipeline) newWorker(wi int) *pipeWorker {
	nk := len(p.leaves)
	w := &p.wbuf[wi]
	w.p = p
	w.sc = arena.Get()
	w.kernels = p.kbuf[wi*nk : (wi+1)*nk : (wi+1)*nk]
	for i, lf := range p.leaves {
		if !lf.pf.empty && lf.pf.newKernel != nil {
			w.kernels[i] = lf.pf.newKernel()
		}
	}
	if p.term == TermGroupCount {
		w.agg = NewPartialArrayAgg(p.keySpace, p.aggKinds)
	}
	if p.rel != nil {
		switch {
		case p.rel.Sink.Group != nil:
			w.relGroup = newRelGroupAcc(p.rel.Sink.Group, p.rel.Sink.Inputs)
		case p.rel.Sink.Collect != nil && p.rel.Sink.Collect.K > 0:
			w.relTop = newRelTopK(&p.rel.Sink)
		}
	}
	if p.traced {
		w.taps = make([]colstore.IOTap, nk+p.relStageCount()+1)
		w.stats = make([]stageStats, nk+p.relStageCount()+1)
	}
	return w
}

// run executes the compiled pipeline: one fallback barrier pass when some
// filter has no kernel, then every row group claimed morsel-at-a-time and
// driven through filters and terminal by one worker, then a final merge of
// the worker partials.
func (p *pipeline) run(ctx context.Context) (*PipelineResult, error) {
	var fsel *bitutil.SectionalBitmap
	if p.fallback {
		var err error
		fsel, err = p.plan.Execute(ctx, p.r, p.pool)
		if err != nil {
			return nil, err
		}
	}
	n := p.r.NumRowGroups()
	parts := p.initParts(n)
	nw := p.pool.Size()
	if lim := MaxWorkersFrom(ctx); lim > 0 && nw > lim {
		nw = lim
	}
	if nw > n {
		nw = n
	}
	p.initWorkers(nw)
	var hooks exec.MorselHooks
	if f := p.buildFetcher(ctx); f != nil {
		p.fetch = f
		defer f.Close()
		ctx = colstore.ContextWithFetcher(ctx, f)
		// Release a row group's staged pages the moment its morsel
		// finishes, so the budget recycles into lookahead.
		hooks.OnDone = f.FinishGroup
	}
	if lq := obs.QueryFrom(ctx); lq != nil {
		// Flight-recorder progress: the live entry learns the scan size
		// here and ticks per finished morsel. One atomic add per morsel;
		// queries outside a recorded terminal skip the whole block.
		lq.AddMorsels(n, nw)
		prev := hooks.OnDone
		hooks.OnDone = func(m int) {
			if prev != nil {
				prev(m)
			}
			lq.MorselDone()
		}
	}
	workers, err := exec.ParallelMorselsLimited(ctx, p.pool, n, nw,
		p.newWorker,
		func(mctx context.Context, w *pipeWorker, rg int) error {
			return p.runMorsel(mctx, w, rg, fsel, parts)
		}, hooks)
	p.workers = workers
	p.releaseWorkers(workers)
	if err != nil {
		return nil, err
	}
	return p.merge(workers), nil
}

// initParts sizes the per-row-group output slots for n morsels and
// returns them; workers write disjoint indices.
func (p *pipeline) initParts(n int) *pipeParts {
	parts := &p.parts
	switch p.term {
	case TermRowIDs:
		parts.rowIDs = make([][]int64, n)
	case TermInts:
		parts.ints = make([][]int64, n)
	case TermFloats:
		parts.floats = make([][]float64, n)
	case TermStrings:
		parts.strs = make([][][]byte, n)
	case TermSumFloat:
		parts.sums = make([]float64, n)
	case TermRel:
		if p.rel.Sink.Collect != nil && p.rel.Sink.Collect.K == 0 {
			parts.rel = make([]*Batch, n)
		}
	}
	return parts
}

// initWorkers sizes the worker and kernel slabs for nw workers; newWorker
// then carves its slot out of them.
func (p *pipeline) initWorkers(nw int) {
	p.wbuf = make([]pipeWorker, nw)
	p.kbuf = make([]filterRG, nw*len(p.leaves))
}

// releaseWorkers returns every worker's scratch arena to the pool. Safe
// on the partial slices an errored run leaves behind.
func (p *pipeline) releaseWorkers(workers []*pipeWorker) {
	for _, w := range workers {
		if w != nil && w.sc != nil {
			arena.Put(w.sc)
			w.sc = nil
		}
	}
}

// merge folds the worker partials and per-row-group parts into the final
// result: counts sum, ordered outputs concatenate in row-group order (so
// the result is independent of which worker claimed which morsel), and
// aggregate tables merge.
func (p *pipeline) merge(workers []*pipeWorker) *PipelineResult {
	parts := &p.parts
	res := &p.res
	for _, w := range workers {
		if w == nil {
			continue
		}
		res.Count += w.count
	}
	switch p.term {
	case TermRowIDs:
		res.RowIDs = concat(parts.rowIDs)
	case TermInts:
		res.Ints = concat(parts.ints)
	case TermFloats:
		res.Floats = concat(parts.floats)
	case TermStrings:
		res.Strings = concat(parts.strs)
	case TermSumFloat:
		for _, s := range parts.sums {
			res.Sum += s
		}
	case TermGroupCount:
		total := NewPartialArrayAgg(p.keySpace, p.aggKinds)
		for _, w := range workers {
			if w != nil && w.agg != nil {
				total.Merge(w.agg)
			}
		}
		res.Group = total.Result()
	case TermRel:
		res.Rel = p.mergeRel(workers)
	}
	return res
}

// schedSet is one column's surviving pages for one row group — the unit
// of the prefetch schedule a prepared filter can predict from metadata
// alone (zone maps, page row ranges), mirroring the dispositions its
// kernel will make.
type schedSet struct {
	col   int
	pages []int
}

// schedAllPages schedules every page of one column: the shape of a
// full-scan gather and of filters with no zone-map story.
func schedAllPages(r *colstore.Reader, ci int) func(rg int) []schedSet {
	return func(rg int) []schedSet {
		n := r.Chunk(rg, ci).NumPages()
		pages := make([]int, n)
		for i := range pages {
			pages[i] = i
		}
		return []schedSet{{col: ci, pages: pages}}
	}
}

// prefetchKey carries per-query prefetch overrides through the context.
type prefetchKey struct{}

type prefetchOpt struct {
	off bool
	cfg colstore.FetchConfig
}

// ContextWithoutPrefetch disables async page prefetch for pipelines run
// under the returned context. Prefetch is on by default; the equivalence
// property tests run both arms.
func ContextWithoutPrefetch(ctx context.Context) context.Context {
	return context.WithValue(ctx, prefetchKey{}, prefetchOpt{off: true})
}

// ContextWithPrefetchConfig overrides the prefetcher's budget/slop for
// pipelines run under the returned context (bench and test hook).
func ContextWithPrefetchConfig(ctx context.Context, cfg colstore.FetchConfig) context.Context {
	return context.WithValue(ctx, prefetchKey{}, prefetchOpt{cfg: cfg})
}

// maxWorkersKey carries a per-query parallelism budget through the
// context.
type maxWorkersKey struct{}

// ContextWithMaxWorkers caps the number of pool workers a pipeline run
// under the returned context may occupy (0 or negative means no cap).
// This is the knob a serving layer turns so one query cannot monopolise
// the shared worker pool while others queue.
func ContextWithMaxWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, maxWorkersKey{}, n)
}

// MaxWorkersFrom reports the per-query worker cap carried by ctx, 0 when
// none was set.
func MaxWorkersFrom(ctx context.Context) int {
	n, _ := ctx.Value(maxWorkersKey{}).(int)
	if n < 0 {
		return 0
	}
	return n
}

// buildFetcher computes the query's page schedule and starts the
// background prefetcher, or returns nil when there is nothing to gain:
// prefetch disabled, barrier fallback (the legacy path owns its own
// reads), a provably-empty first stage, or a terminal that reads no
// pages. Only the first planned stage is scheduled — it is the one stage
// guaranteed to run over the unrestricted selection, so its metadata
// disposition exactly predicts its kernel's page fetches; later stages
// see selections that depend on data, which metadata cannot predict
// without risking speculative reads of pages the query never touches.
func (p *pipeline) buildFetcher(ctx context.Context) *colstore.PageFetcher {
	opt, _ := ctx.Value(prefetchKey{}).(prefetchOpt)
	if opt.off || p.fallback {
		return nil
	}
	var sched func(rg int) []schedSet
	switch {
	case len(p.leaves) > 0:
		lf := p.leaves[0]
		if lf.pf.empty || lf.pf.sched == nil {
			return nil
		}
		sched = lf.pf.sched
	case p.ci >= 0:
		sched = schedAllPages(p.r, p.ci)
	default:
		return nil
	}
	f := colstore.NewPageFetcher(p.r, opt.cfg)
	scheduled := false
	for rg := 0; rg < p.r.NumRowGroups(); rg++ {
		for _, s := range sched(rg) {
			if len(s.pages) > 0 {
				f.Schedule(rg, s.col, s.pages)
				scheduled = true
			}
		}
	}
	if !scheduled {
		return nil
	}
	f.Start(ctx)
	return f
}

// runMorsel drives one row group through the whole pipeline on one worker.
func (p *pipeline) runMorsel(ctx context.Context, w *pipeWorker, rg int, fsel *bitutil.SectionalBitmap, parts *pipeParts) error {
	var bm *bitutil.Bitmap
	switch {
	case p.fallback:
		sec, skip := sectionSelection(fsel, rg)
		if !skip {
			if sec == nil {
				bm = fullGroupBitmap(p.r.RowGroupRows(rg))
			} else {
				bm = sec
			}
		}
	case p.root != nil:
		var err error
		bm, err = w.evalNode(ctx, rg, p.root, nil)
		if err != nil {
			return err
		}
	default:
		bm = fullGroupBitmap(p.r.RowGroupRows(rg))
	}
	if p.term == TermRel {
		return p.relTerminal(w, rg, bm, parts)
	}
	return p.terminal(w, rg, bm, parts)
}

// terminal runs the pipeline's sink over one row group's selection: count,
// row-id collection, a selective gather, or partial aggregation into the
// worker's table. An empty selection touches no chunk — no pages, no skip
// marks — matching the historical sweep.
func (p *pipeline) terminal(w *pipeWorker, rg int, bm *bitutil.Bitmap, parts *pipeParts) error {
	var start time.Time
	if w.stats != nil {
		start = time.Now()
	}
	card := 0
	if bm != nil {
		card = bm.Cardinality()
	}
	w.count += int64(card)
	var tap *colstore.IOTap
	if w.taps != nil {
		tap = &w.taps[len(w.taps)-1]
	}
	produced := int64(card)
	var err error
	if card > 0 {
		switch p.term {
		case TermRowIDs:
			base := p.rgStart[rg]
			ids := make([]int64, 0, card)
			bm.ForEach(func(i int) { ids = append(ids, base+int64(i)) })
			parts.rowIDs[rg] = ids
		case TermInts:
			var vals []int64
			vals, err = p.r.Chunk(rg, p.ci).Tap(tap).Fetch(p.fetch).GatherInts(bm)
			parts.ints[rg] = vals
			produced = int64(len(vals))
		case TermFloats:
			var vals []float64
			vals, err = p.r.Chunk(rg, p.ci).Tap(tap).Fetch(p.fetch).GatherFloats(bm)
			parts.floats[rg] = vals
			produced = int64(len(vals))
		case TermStrings:
			var vals [][]byte
			vals, err = p.r.Chunk(rg, p.ci).Tap(tap).Fetch(p.fetch).GatherStrings(bm)
			parts.strs[rg] = vals
			produced = int64(len(vals))
		case TermGroupCount:
			var keys []int64
			keys, err = p.r.Chunk(rg, p.ci).Tap(tap).Fetch(p.fetch).GatherKeys(bm)
			if err == nil {
				err = w.agg.Accumulate(keys, p.aggSpecs)
			}
			produced = int64(len(keys))
		case TermSumFloat:
			var vals []float64
			vals, err = p.r.Chunk(rg, p.ci).Tap(tap).Fetch(p.fetch).GatherFloats(bm)
			var s float64
			for _, v := range vals {
				s += v
			}
			parts.sums[rg] = s
			produced = int64(len(vals))
		}
	}
	if w.stats != nil {
		st := &w.stats[len(w.stats)-1]
		st.rowsIn += int64(card)
		st.rowsOut += produced
		st.nanos += time.Since(start).Nanoseconds()
	}
	return err
}

// evalNode evaluates one pipeline subtree over one row group, restricted
// to secSel (nil means every row of the group). The section-level algebra
// mirrors execNode/execOr exactly: AND threads the shrinking selection and
// stops when it empties, OR evaluates each branch only over rows no
// earlier branch matched, NOT subtracts the leaf from its selection. When
// a short-circuit strands later filters, their pages are marked
// selection-skipped just as their own sweep would have.
func (w *pipeWorker) evalNode(ctx context.Context, rg int, n *pipeNode, secSel *bitutil.Bitmap) (*bitutil.Bitmap, error) {
	switch n.kind {
	case PredLeaf:
		return w.runLeaf(ctx, rg, n.leaf, secSel)
	case PredNot:
		bm, err := w.runLeaf(ctx, rg, n.leaf, secSel)
		if err != nil {
			return nil, err
		}
		base := secSel
		if base == nil {
			base = fullGroupBitmap(w.p.r.RowGroupRows(rg))
		} else {
			base = base.Clone()
		}
		return base.AndNot(bm), nil
	case PredAnd:
		acc := secSel
		for i, kid := range n.kids {
			bm, err := w.evalNode(ctx, rg, kid, acc)
			if err != nil {
				return nil, err
			}
			acc = bm
			if !acc.Any() {
				w.markSkipped(n.kids[i+1:], rg)
				break
			}
		}
		if acc == nil {
			acc = fullGroupBitmap(w.p.r.RowGroupRows(rg))
		}
		return acc, nil
	case PredOr:
		result := bitutil.NewBitmap(w.p.r.RowGroupRows(rg))
		remaining := secSel
		for i, kid := range n.kids {
			bm, err := w.evalNode(ctx, rg, kid, remaining)
			if err != nil {
				return nil, err
			}
			result.Or(bm)
			if remaining == nil {
				remaining = fullGroupBitmap(w.p.r.RowGroupRows(rg))
			} else {
				remaining = remaining.Clone()
			}
			remaining.AndNot(bm)
			if !remaining.Any() {
				w.markSkipped(n.kids[i+1:], rg)
				break
			}
		}
		return result, nil
	}
	return nil, fmt.Errorf("ops: unknown pipeline node kind %d", n.kind)
}

// runLeaf runs one filter kernel over one row group and enforces the
// subset invariant against the pushed selection (the kernel may set rows
// wholesale via zone maps or provably-all rewrites).
func (w *pipeWorker) runLeaf(ctx context.Context, rg int, lf *pipeLeaf, secSel *bitutil.Bitmap) (*bitutil.Bitmap, error) {
	var start time.Time
	if w.stats != nil {
		start = time.Now()
	}
	var tap *colstore.IOTap
	if w.taps != nil {
		tap = &w.taps[lf.idx]
	}
	rows := w.p.r.RowGroupRows(rg)
	var bm *bitutil.Bitmap
	switch {
	case lf.pf.empty:
		bm = bitutil.NewBitmap(rows)
	case secSel != nil && !secSel.Any():
		lf.pf.skip(rg, tap)
		bm = bitutil.NewBitmap(rows)
	default:
		var err error
		bm, err = w.kernels[lf.idx](ctx, rg, w.sc, secSel, tap)
		if err != nil {
			return nil, err
		}
		if secSel != nil {
			bm.And(secSel)
		}
	}
	if w.stats != nil {
		st := &w.stats[lf.idx]
		if secSel != nil {
			st.rowsIn += int64(secSel.Cardinality())
			st.pushed = true
		} else {
			st.rowsIn += int64(rows)
		}
		st.rowsOut += int64(bm.Cardinality())
		st.nanos += time.Since(start).Nanoseconds()
	}
	return bm, nil
}

// markSkipped records every page of the stranded subtrees' chunks as
// selection-skipped for row group rg — the marks their own sweeps would
// have made on an empty section.
func (w *pipeWorker) markSkipped(nodes []*pipeNode, rg int) {
	for _, n := range nodes {
		if n.leaf != nil && !n.leaf.pf.empty && n.leaf.pf.skip != nil {
			var tap *colstore.IOTap
			if w.taps != nil {
				tap = &w.taps[n.leaf.idx]
			}
			n.leaf.pf.skip(rg, tap)
		}
		w.markSkipped(n.kids, rg)
	}
}

func fullGroupBitmap(rows int) *bitutil.Bitmap {
	bm := bitutil.NewBitmap(rows)
	bm.SetAll()
	return bm
}

// RunPipeline compiles and executes a planned query against one terminal.
// pl nil means no predicate (every row selected). When ctx carries an
// obs.Span, the run is traced as a "Pipeline[...]" child whose stage
// children (Prepare, one per filter, the terminal) account every page the
// reader touched: the stage IO sums to the pipeline span's own delta, the
// invariant ExplainAnalyze verifies against Table.IOStats.
func RunPipeline(ctx context.Context, r *colstore.Reader, pool *exec.Pool, pl *Plan, term TermKind, col string) (*PipelineResult, error) {
	sp := obs.SpanFrom(ctx)
	if sp == nil {
		p, err := buildPipeline(r, pool, pl, term, col, nil, false)
		if err != nil {
			return nil, err
		}
		return p.run(ctx)
	}
	return runPipelineTraced(ctx, sp, r, pool, pl, term, col, nil)
}

// RunRelPipeline compiles and executes a relational plan: the predicate
// plan's filter stages, then rp's join/filter stages and sink, all per row
// group on the morsel pipeline. Traced runs render each join stage and
// the sink as stage spans whose IO keeps the Σ-stages = pipeline-delta
// invariant (joins on dictionary keys book only key-page reads — build
// and probe never touch string pages).
func RunRelPipeline(ctx context.Context, r *colstore.Reader, pool *exec.Pool, pl *Plan, rp *RelPlan) (*Batch, error) {
	sp := obs.SpanFrom(ctx)
	var res *PipelineResult
	var err error
	if sp == nil {
		var p *pipeline
		p, err = buildPipeline(r, pool, pl, TermRel, "", rp, false)
		if err != nil {
			return nil, err
		}
		res, err = p.run(ctx)
	} else {
		res, err = runPipelineTraced(ctx, sp, r, pool, pl, TermRel, "", rp)
	}
	if err != nil {
		return nil, err
	}
	return res.Rel, nil
}

// runPipelineTraced is RunPipeline under a span: per-stage taps and stats
// are merged across workers into one stage child each after the run, with
// summed worker busy time as each stage's duration (wall clock cannot
// express work interleaved across morsels).
func runPipelineTraced(ctx context.Context, sp *obs.Span, r *colstore.Reader, pool *exec.Pool, pl *Plan, term TermKind, col string, rp *RelPlan) (*PipelineResult, error) {
	child := sp.StartChild("Pipeline[" + pipelineLabel(term, col) + "]")
	cctx := obs.ContextWithSpan(ctx, child)
	ioBefore := r.Stats()
	tasksBefore := pool.Completed()
	prepStart := time.Now()
	p, err := buildPipeline(r, pool, pl, term, col, rp, true)
	prepIO := ioDelta(ioBefore, r.Stats())
	prepDur := time.Since(prepStart)
	var res *PipelineResult
	if err == nil {
		res, err = p.run(cctx)
	}
	ioAfter := r.Stats()

	prep := child.StartChild("Prepare")
	prep.AddIO(prepIO)
	prep.End()
	prep.SetDuration(prepDur)
	if p != nil {
		if !p.fallback {
			for _, lf := range p.leaves {
				fs := child.StartChild("Filter[" + lf.name + "]")
				for _, d := range DescribeFilter(lf.f, r) {
					fs.AddDetail("%s", d)
				}
				st := p.mergedStats(lf.idx)
				if st.pushed {
					fs.AddDetail("selection-pushed: %d of %d rows remain", st.rowsIn, r.NumRows())
				}
				if st.rowsIn > 0 {
					fs.AddDetail("selectivity est=%.4f actual=%.4f", lf.est, float64(st.rowsOut)/float64(st.rowsIn))
				}
				fs.SetRows(st.rowsIn, st.rowsOut)
				tap := p.mergedIOTap(lf.idx)
				addStageTimeDetails(fs, &tap, st.nanos)
				fs.AddIO(spanIOFromTap(&tap))
				fs.End()
				fs.SetDuration(time.Duration(st.nanos))
			}
		}
		if p.rel != nil {
			for si := range p.rel.Stages {
				stg := &p.rel.Stages[si]
				js := child.StartChild(relStageSpanName(stg))
				if stg.Kind != RelRowFilter {
					js.AddDetail("build rows=%d", stg.Table.Len())
					for _, k := range stg.Keys {
						if k.Kind == RelKey {
							js.AddDetail("probe key %s: dictionary codes", k.Col)
						} else {
							js.AddDetail("probe key %s: int values", k.Col)
						}
					}
				}
				st := p.mergedStats(len(p.leaves) + si)
				js.SetRows(st.rowsIn, st.rowsOut)
				tap := p.mergedIOTap(len(p.leaves) + si)
				addStageTimeDetails(js, &tap, st.nanos)
				js.AddIO(spanIOFromTap(&tap))
				js.End()
				js.SetDuration(time.Duration(st.nanos))
			}
		}
		termIdx := len(p.leaves) + p.relStageCount()
		name := terminalSpanName(term, col)
		if p.rel != nil {
			name = relSinkSpanName(p.rel)
		}
		ts := child.StartChild(name)
		st := p.mergedStats(termIdx)
		rowsOut := st.rowsOut
		if term == TermRel && res != nil && res.Rel != nil {
			// Worker partials over-count sink output (each worker's top-K
			// buffer and group cells merge later); report the merged size.
			rowsOut = int64(res.Rel.N)
		}
		ts.SetRows(st.rowsIn, rowsOut)
		tap := p.mergedIOTap(termIdx)
		addStageTimeDetails(ts, &tap, st.nanos)
		ts.AddIO(spanIOFromTap(&tap))
		ts.End()
		ts.SetDuration(time.Duration(st.nanos))
	}
	if err != nil {
		child.AddDetail("error=%v", err)
	}
	if res != nil {
		child.SetRows(r.NumRows(), res.Count)
	}
	workers := pool.Size()
	if n := r.NumRowGroups(); n < workers {
		workers = n
	}
	child.AddDetail("morsels=%d workers<=%d", r.NumRowGroups(), workers)
	child.AddIO(ioDelta(ioBefore, ioAfter))
	child.AddTasks(pool.Completed() - tasksBefore)
	child.End()
	if lq := obs.QueryFrom(ctx); lq != nil && p != nil {
		// Traced runs carry per-stage IO taps; total their wait and
		// decompress time into the live entry so the finished record can
		// split wall time into wait/decompress/scan.
		var wait, dec int64
		for i := 0; i <= len(p.leaves)+p.relStageCount(); i++ {
			tap := p.mergedIOTap(i)
			wait += tap.WaitNanos
			dec += tap.DecompressNanos
		}
		lq.AddIOTimes(wait, dec)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// mergedIOTap sums one stage's IO across workers, keeping the prefetch
// and timing fields that SpanIO does not carry.
func (p *pipeline) mergedIOTap(idx int) colstore.IOTap {
	var t colstore.IOTap
	for _, w := range p.workers {
		if w != nil && w.taps != nil {
			t.Add(&w.taps[idx])
		}
	}
	return t
}

func spanIOFromTap(t *colstore.IOTap) obs.SpanIO {
	return obs.SpanIO{
		PagesRead:         t.PagesRead,
		PagesPruned:       t.PagesPruned,
		PagesSkipped:      t.PagesSkipped,
		BytesRead:         t.BytesRead,
		BytesDecompressed: t.BytesDecompressed,
	}
}

// addStageTimeDetails attributes a stage's busy time to waiting on
// prefetched reads, decompression, and the remainder (the scan/decode
// kernel itself), and reports prefetch effectiveness when a fetcher ran.
func addStageTimeDetails(s *obs.Span, t *colstore.IOTap, busyNanos int64) {
	if t.PrefetchHits > 0 || t.PrefetchMisses > 0 || t.WaitNanos > 0 {
		s.AddDetail("prefetch: %d hit / %d miss, io-wait %v",
			t.PrefetchHits, t.PrefetchMisses, time.Duration(t.WaitNanos))
	}
	if t.WaitNanos > 0 || t.DecompressNanos > 0 {
		scan := busyNanos - t.WaitNanos - t.DecompressNanos
		if scan < 0 {
			scan = 0
		}
		s.AddDetail("time: wait=%v decompress=%v scan=%v",
			time.Duration(t.WaitNanos), time.Duration(t.DecompressNanos), time.Duration(scan))
	}
}

// mergedStats sums one stage's row flow and busy time across workers.
func (p *pipeline) mergedStats(idx int) stageStats {
	var st stageStats
	for _, w := range p.workers {
		if w != nil && w.stats != nil {
			st.rowsIn += w.stats[idx].rowsIn
			st.rowsOut += w.stats[idx].rowsOut
			st.nanos += w.stats[idx].nanos
			st.pushed = st.pushed || w.stats[idx].pushed
		}
	}
	return st
}

// pipelineLabel names the pipeline span after its terminal.
func pipelineLabel(term TermKind, col string) string {
	switch term {
	case TermCount:
		return "count"
	case TermRowIDs:
		return "rowids"
	case TermInts, TermFloats, TermStrings:
		return "gather " + col
	case TermGroupCount:
		return "group " + col
	case TermSumFloat:
		return "sum " + col
	case TermRel:
		return "relational"
	}
	return "?"
}

// terminalSpanName names the terminal stage span.
func terminalSpanName(term TermKind, col string) string {
	switch term {
	case TermCount:
		return "Count"
	case TermRowIDs:
		return "Collect[rowids]"
	case TermInts, TermFloats, TermStrings:
		return "Gather[" + col + "]"
	case TermGroupCount:
		return "Aggregate[count by " + col + "]"
	case TermSumFloat:
		return "Sum[" + col + "]"
	case TermRel:
		return "Sink"
	}
	return "?"
}

// relStageSpanName names one relational stage's span.
func relStageSpanName(st *RelStage) string {
	if st.Kind == RelRowFilter {
		return "RowFilter[" + st.Name + "]"
	}
	return "Join[" + st.Name + " " + st.Kind.String() + "]"
}

// relSinkSpanName names the relational sink's span after what it does.
func relSinkSpanName(rp *RelPlan) string {
	if g := rp.Sink.Group; g != nil {
		return fmt.Sprintf("GroupBy[%d keys, %d aggs]", len(g.Keys), len(g.Aggs))
	}
	c := rp.Sink.Collect
	switch {
	case c.K > 0:
		return fmt.Sprintf("Sort[top %d]", c.K)
	case len(c.Sort) > 0:
		return "Sort[all]"
	}
	return "Collect[rows]"
}
