package ops

import (
	"context"
	"fmt"

	"codecdb/internal/exec"
)

// AggKind selects an aggregate function.
type AggKind uint8

// Aggregate kinds. Averages are computed by plans as SumX/Count.
const (
	AggCount AggKind = iota
	AggSumInt
	AggSumFloat
	AggMinInt
	AggMaxInt
)

// VecAgg is one aggregate over a value vector aligned with the key vector.
// Ints or Floats must be set to match the kind (AggCount needs neither).
type VecAgg struct {
	Kind   AggKind
	Ints   []int64
	Floats []float64
}

// AggResult is a grouped aggregation result: Keys[i] is the group key and
// column j of Out holds the j-th aggregate. Counts always accompanies the
// result. Keys are ascending for array aggregation and unordered for hash
// aggregation.
type AggResult struct {
	Keys   []int64
	Counts []int64
	Out    [][]float64 // [spec][group]
}

// NumGroups returns the number of populated groups.
func (r *AggResult) NumGroups() int { return len(r.Keys) }

// PartialArrayAgg is a worker-local partial array aggregation (§5.4):
// group keys are dictionary codes in [0, keySpace), so each aggregate
// lives in a flat array indexed by key — no hashing, no collisions, and
// block-level partials merge with one addition per slot. A pipeline worker
// accumulates each of its row groups into one PartialArrayAgg; the final
// merge folds the per-worker partials together.
type PartialArrayAgg struct {
	kinds  []AggKind
	counts []int64
	accs   [][]float64
}

// NewPartialArrayAgg builds an empty partial for keySpace groups and one
// accumulator per aggregate kind.
func NewPartialArrayAgg(keySpace int, kinds []AggKind) *PartialArrayAgg {
	p := &PartialArrayAgg{
		kinds:  kinds,
		counts: make([]int64, keySpace),
		accs:   make([][]float64, len(kinds)),
	}
	for j, k := range kinds {
		p.accs[j] = newAccArray(k, keySpace)
	}
	return p
}

// Accumulate folds one block of keys into the partial. specs must align
// with the partial's kinds and carry value vectors matching len(keys).
func (p *PartialArrayAgg) Accumulate(keys []int64, specs []VecAgg) error {
	if len(specs) != len(p.kinds) {
		return fmt.Errorf("ops: %d specs, want %d", len(specs), len(p.kinds))
	}
	for j, s := range specs {
		if s.Kind != p.kinds[j] {
			return fmt.Errorf("ops: spec %d kind %d, want %d", j, s.Kind, p.kinds[j])
		}
		if err := s.validate(len(keys)); err != nil {
			return fmt.Errorf("ops: spec %d: %w", j, err)
		}
	}
	for i, k := range keys {
		p.counts[k]++
		for j, spec := range specs {
			accumulate(p.accs[j], spec, k, i)
		}
	}
	return nil
}

// Merge folds another partial into p (§5.4: merging arrays is one pass,
// unlike merging hash tables). Both must come from NewPartialArrayAgg with
// the same keySpace and kinds.
func (p *PartialArrayAgg) Merge(o *PartialArrayAgg) {
	for k := range o.counts {
		if o.counts[k] == 0 {
			continue
		}
		p.counts[k] += o.counts[k]
		for j, kind := range p.kinds {
			mergeSlot(p.accs[j], o.accs[j], kind, k)
		}
	}
}

// Result compacts the partial into the grouped result, dropping empty
// groups; keys come out ascending.
func (p *PartialArrayAgg) Result() *AggResult {
	specs := make([]VecAgg, len(p.kinds))
	for j, k := range p.kinds {
		specs[j] = VecAgg{Kind: k}
	}
	return compactResult(p.counts, p.accs, specs)
}

// ArrayAggregate is the whole-table array aggregation entry point, now a
// thin wrapper over the partial-aggregate kernels: the key vector splits
// into morsels, each worker accumulates its morsels into one private
// partial, and the partials merge.
func ArrayAggregate(pool *exec.Pool, keys []int64, keySpace int, specs []VecAgg) (*AggResult, error) {
	if keySpace <= 0 {
		return nil, fmt.Errorf("ops: non-positive key space %d", keySpace)
	}
	for i, s := range specs {
		if err := s.validate(len(keys)); err != nil {
			return nil, fmt.Errorf("ops: spec %d: %w", i, err)
		}
	}
	kinds := make([]AggKind, len(specs))
	for j, s := range specs {
		kinds[j] = s.Kind
	}
	chunk := (len(keys) + pool.Size() - 1) / pool.Size()
	if chunk == 0 {
		chunk = 1
	}
	nMorsels := (len(keys) + chunk - 1) / chunk
	parts, err := exec.ParallelMorsels(context.Background(), pool, nMorsels,
		func(worker int) *PartialArrayAgg { return NewPartialArrayAgg(keySpace, kinds) },
		func(ctx context.Context, p *PartialArrayAgg, m int) error {
			s := m * chunk
			e := s + chunk
			if e > len(keys) {
				e = len(keys)
			}
			sub := make([]VecAgg, len(specs))
			for j, sp := range specs {
				sub[j] = VecAgg{Kind: sp.Kind}
				if sp.Ints != nil {
					sub[j].Ints = sp.Ints[s:e]
				}
				if sp.Floats != nil {
					sub[j].Floats = sp.Floats[s:e]
				}
			}
			return p.Accumulate(keys[s:e], sub)
		})
	if err != nil {
		return nil, err
	}
	total := NewPartialArrayAgg(keySpace, kinds)
	for _, p := range parts {
		if p != nil {
			total.Merge(p)
		}
	}
	return total.Result(), nil
}

func (s VecAgg) validate(n int) error {
	switch s.Kind {
	case AggCount:
		return nil
	case AggSumInt, AggMinInt, AggMaxInt:
		if len(s.Ints) != n {
			return fmt.Errorf("int vector length %d, want %d", len(s.Ints), n)
		}
	case AggSumFloat:
		if len(s.Floats) != n {
			return fmt.Errorf("float vector length %d, want %d", len(s.Floats), n)
		}
	}
	return nil
}

func newAccArray(kind AggKind, n int) []float64 {
	acc := make([]float64, n)
	switch kind {
	case AggMinInt:
		for i := range acc {
			acc[i] = float64(int64(^uint64(0) >> 1)) // +inf sentinel
		}
	case AggMaxInt:
		for i := range acc {
			acc[i] = -float64(int64(^uint64(0) >> 1))
		}
	}
	return acc
}

func accumulate(acc []float64, spec VecAgg, k int64, i int) {
	switch spec.Kind {
	case AggCount:
		acc[k]++
	case AggSumInt:
		acc[k] += float64(spec.Ints[i])
	case AggSumFloat:
		acc[k] += spec.Floats[i]
	case AggMinInt:
		if v := float64(spec.Ints[i]); v < acc[k] {
			acc[k] = v
		}
	case AggMaxInt:
		if v := float64(spec.Ints[i]); v > acc[k] {
			acc[k] = v
		}
	}
}

func mergeSlot(dst, src []float64, kind AggKind, k int) {
	switch kind {
	case AggMinInt:
		if src[k] < dst[k] {
			dst[k] = src[k]
		}
	case AggMaxInt:
		if src[k] > dst[k] {
			dst[k] = src[k]
		}
	default:
		dst[k] += src[k]
	}
}

func compactResult(counts []int64, accs [][]float64, specs []VecAgg) *AggResult {
	res := &AggResult{Out: make([][]float64, len(specs))}
	for k, c := range counts {
		if c == 0 {
			continue
		}
		res.Keys = append(res.Keys, int64(k))
		res.Counts = append(res.Counts, c)
		for j := range specs {
			res.Out[j] = append(res.Out[j], accs[j][k])
		}
	}
	return res
}

// stripeCount is the default stripe fan-out for stripe hash aggregation
// (§6.3 uses 32 stripes).
const stripeCount = 32

// StripeHashAggregate is the stripe hash aggregation operator (§5.4) for
// key spaces too large for arrays: rows are partitioned into stripes by
// key (stripe = key mod stripes, as in the paper's implementation), each
// stripe hash-aggregates independently in parallel, and same-index stripes
// merge without contention because a key occurs in exactly one stripe.
func StripeHashAggregate(pool *exec.Pool, keys []int64, specs []VecAgg) (*AggResult, error) {
	return StripeHashAggregateN(pool, keys, specs, stripeCount)
}

// StripeHashAggregateN is StripeHashAggregate with an explicit stripe
// fan-out, exposed for the stripe-count ablation study.
func StripeHashAggregateN(pool *exec.Pool, keys []int64, specs []VecAgg, stripes int) (*AggResult, error) {
	for i, s := range specs {
		if err := s.validate(len(keys)); err != nil {
			return nil, fmt.Errorf("ops: spec %d: %w", i, err)
		}
	}
	if stripes <= 0 {
		stripes = stripeCount
	}
	// Partition phase: one counting pass sizes a single backing array, so
	// the per-stripe row lists are built without reallocation.
	counts0 := make([]int32, stripes)
	for _, k := range keys {
		counts0[uint64(k)%uint64(stripes)]++
	}
	backing := make([]int32, len(keys))
	rowLists := make([][]int32, stripes)
	off := int32(0)
	for s := 0; s < stripes; s++ {
		rowLists[s] = backing[off : off : off+counts0[s]]
		off += counts0[s]
	}
	for i, k := range keys {
		s := uint64(k) % uint64(stripes)
		rowLists[s] = append(rowLists[s], int32(i))
	}
	// Aggregation phase: each stripe fills a flat open-addressing table in
	// parallel — the "several small hashtables" of §5.4, with better cache
	// locality than one big table and no collision chains.
	results, err := exec.ParallelMap(pool, rowLists, func(rows []int32) *stripeTable {
		st := newStripeTable(len(rows), specs)
		for _, ri := range rows {
			i := int(ri)
			slot := st.slot(keys[i])
			st.counts[slot]++
			for j, spec := range specs {
				st.accumulate(j, slot, spec, i)
			}
		}
		return st
	})
	if err != nil {
		return nil, err
	}
	res := &AggResult{Out: make([][]float64, len(specs))}
	for _, st := range results {
		for slot, k := range st.keys {
			if !st.occupied[slot] {
				continue
			}
			res.Keys = append(res.Keys, k)
			res.Counts = append(res.Counts, st.counts[slot])
			for j := range specs {
				res.Out[j] = append(res.Out[j], st.accs[j][slot])
			}
		}
	}
	return res, nil
}

// stripeTable is a flat open-addressing aggregation table for one stripe.
type stripeTable struct {
	mask     uint64
	keys     []int64
	occupied []bool
	counts   []int64
	accs     [][]float64
	specs    []VecAgg
}

func newStripeTable(rows int, specs []VecAgg) *stripeTable {
	capacity := 16
	for capacity < rows*2 {
		capacity *= 2
	}
	st := &stripeTable{
		mask:     uint64(capacity - 1),
		keys:     make([]int64, capacity),
		occupied: make([]bool, capacity),
		counts:   make([]int64, capacity),
		accs:     make([][]float64, len(specs)),
		specs:    specs,
	}
	for j := range specs {
		st.accs[j] = make([]float64, capacity)
	}
	return st
}

// slot returns the table index for k, claiming a free slot on first use.
func (st *stripeTable) slot(k int64) int {
	i := hash64(k) & st.mask
	for {
		if !st.occupied[i] {
			st.occupied[i] = true
			st.keys[i] = k
			for j, spec := range st.specs {
				switch spec.Kind {
				case AggMinInt:
					st.accs[j][i] = 1e300
				case AggMaxInt:
					st.accs[j][i] = -1e300
				}
			}
			return int(i)
		}
		if st.keys[i] == k {
			return int(i)
		}
		i = (i + 1) & st.mask
	}
}

func (st *stripeTable) accumulate(j, slot int, spec VecAgg, i int) {
	switch spec.Kind {
	case AggCount:
		st.accs[j][slot]++
	case AggSumInt:
		st.accs[j][slot] += float64(spec.Ints[i])
	case AggSumFloat:
		st.accs[j][slot] += spec.Floats[i]
	case AggMinInt:
		if v := float64(spec.Ints[i]); v < st.accs[j][slot] {
			st.accs[j][slot] = v
		}
	case AggMaxInt:
		if v := float64(spec.Ints[i]); v > st.accs[j][slot] {
			st.accs[j][slot] = v
		}
	}
}

func accumulateMap(acc map[int64]float64, spec VecAgg, k int64, i int) {
	switch spec.Kind {
	case AggCount:
		acc[k]++
	case AggSumInt:
		acc[k] += float64(spec.Ints[i])
	case AggSumFloat:
		acc[k] += spec.Floats[i]
	case AggMinInt:
		v := float64(spec.Ints[i])
		if old, ok := acc[k]; !ok || v < old {
			acc[k] = v
		}
	case AggMaxInt:
		v := float64(spec.Ints[i])
		if old, ok := acc[k]; !ok || v > old {
			acc[k] = v
		}
	}
}

// HashAggregate is the encoding-oblivious baseline: one hash table, one
// thread, no striping — the competitor configuration in the Fig 6
// aggregation micro-benchmarks.
func HashAggregate(keys []int64, specs []VecAgg) (*AggResult, error) {
	for i, s := range specs {
		if err := s.validate(len(keys)); err != nil {
			return nil, fmt.Errorf("ops: spec %d: %w", i, err)
		}
	}
	counts := make(map[int64]int64)
	accs := make([]map[int64]float64, len(specs))
	for j := range specs {
		accs[j] = make(map[int64]float64)
	}
	for i, k := range keys {
		counts[k]++
		for j, spec := range specs {
			accumulateMap(accs[j], spec, k, i)
		}
	}
	res := &AggResult{Out: make([][]float64, len(specs))}
	for k, c := range counts {
		res.Keys = append(res.Keys, k)
		res.Counts = append(res.Counts, c)
		for j := range specs {
			res.Out[j] = append(res.Out[j], accs[j][k])
		}
	}
	return res, nil
}
