package ops

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortRowsSingleKey(t *testing.T) {
	vals := []int64{5, 1, 9, 3}
	idx := SortRows(4, []SortKey{{Col: 0}}, []RowComparator{IntComparator(vals)})
	want := []int{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v", idx)
		}
	}
	desc := SortRows(4, []SortKey{{Col: 0, Desc: true}}, []RowComparator{IntComparator(vals)})
	if desc[0] != 2 || desc[3] != 1 {
		t.Fatalf("desc = %v", desc)
	}
}

func TestSortRowsMultiKeyStable(t *testing.T) {
	groups := [][]byte{[]byte("b"), []byte("a"), []byte("b"), []byte("a")}
	vals := []float64{2, 9, 1, 9}
	idx := SortRows(4, []SortKey{{Col: 0}, {Col: 1, Desc: true}},
		[]RowComparator{BytesComparator(groups), FloatComparator(vals)})
	// a/9, a/9 (stable: row 1 before 3), b/2, b/1
	want := []int{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

func TestTopN(t *testing.T) {
	vals := []int64{50, 10, 40, 20, 30}
	less := func(i, j int) bool { return vals[i] < vals[j] }
	top := TopN(5, 3, less)
	if len(top) != 3 || vals[top[0]] != 10 || vals[top[1]] != 20 || vals[top[2]] != 30 {
		t.Fatalf("top = %v", top)
	}
	if got := TopN(5, 10, less); len(got) != 5 {
		t.Fatalf("n>total should clamp: %v", got)
	}
	if TopN(0, 3, less) != nil || TopN(5, 0, less) != nil {
		t.Fatal("degenerate cases should be nil")
	}
}

func TestTopNMatchesFullSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(20)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
		}
		less := func(i, j int) bool { return vals[i] < vals[j] }
		top := TopN(n, k, less)
		full := SortRows(n, []SortKey{{Col: 0}}, []RowComparator{IntComparator(vals)})
		if k > n {
			k = n
		}
		for i := 0; i < k; i++ {
			if vals[top[i]] != vals[full[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExternalSortSmallStaysInMemory(t *testing.T) {
	vals := []int64{3, 1, 2}
	got, err := ExternalSortInts(vals, 100, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	// Input must not be mutated.
	if vals[0] != 3 {
		t.Fatal("input mutated")
	}
}

func TestExternalSortSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 10000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 40)
	}
	got, err := ExternalSortInts(vals, 777, t.TempDir()) // forces ~13 runs
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("lost values: %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("not sorted")
	}
	// Same multiset.
	want := append([]int64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestExternalSortEmpty(t *testing.T) {
	got, err := ExternalSortInts(nil, 10, t.TempDir())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sort: %v %v", got, err)
	}
}

func runFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestExternalSortCleansRunsOnSuccess(t *testing.T) {
	dir := t.TempDir()
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(5000 - i)
	}
	if _, err := ExternalSortInts(vals, 1000, dir); err != nil {
		t.Fatal(err)
	}
	if left := runFiles(t, dir); len(left) != 0 {
		t.Fatalf("run files left behind: %v", left)
	}
}

func TestExternalSortCleansRunsOnWriteError(t *testing.T) {
	dir := t.TempDir()
	// Plant a directory where the third run file would be created, so
	// writeRun fails after two runs have already spilled.
	if err := os.Mkdir(filepath.Join(dir, "run-2.bin"), 0o755); err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(i)
	}
	if _, err := ExternalSortInts(vals, 1000, dir); err == nil {
		t.Fatal("expected write error")
	}
	for _, name := range runFiles(t, dir) {
		if name != "run-2.bin" {
			t.Fatalf("run file %s leaked after error", name)
		}
	}
}

// cancelAfterCtx reports cancellation after Err has been consulted n
// times, making mid-sort cancellation deterministic.
type cancelAfterCtx struct {
	context.Context
	n int
}

func (c *cancelAfterCtx) Err() error {
	if c.n <= 0 {
		return context.Canceled
	}
	c.n--
	return nil
}

func TestExternalSortCleansRunsOnCancellation(t *testing.T) {
	dir := t.TempDir()
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(i * 3 % 5000)
	}
	// Allow three run spills, then cancel before the fourth.
	ctx := &cancelAfterCtx{Context: context.Background(), n: 3}
	if _, err := ExternalSortIntsCtx(ctx, vals, 1000, dir); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if left := runFiles(t, dir); len(left) != 0 {
		t.Fatalf("run files left behind after cancellation: %v", left)
	}
	// Cancellation during the merge phase cleans up too.
	ctx = &cancelAfterCtx{Context: context.Background(), n: 5} // all spills pass, merge's first check fails
	if _, err := ExternalSortIntsCtx(ctx, vals, 1000, dir); err != context.Canceled {
		t.Fatalf("merge phase: want context.Canceled, got %v", err)
	}
	if left := runFiles(t, dir); len(left) != 0 {
		t.Fatalf("run files left behind after merge cancellation: %v", left)
	}
}
