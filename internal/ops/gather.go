package ops

import (
	"context"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
)

// The gather helpers implement late materialization (§5.2): after filters
// produce a sectional bitmap, only the selected rows of payload columns
// are fetched, with page- and row-level skipping done by the chunk
// readers. Row groups are processed in parallel on the data pool and
// results concatenate in row order. Each helper has a Ctx variant that
// honors cancellation between row groups; the plain form runs with
// context.Background().

// GatherInts fetches the selected rows of an integer column.
func GatherInts(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]int64, error) {
	return GatherIntsCtx(context.Background(), r, col, sel, pool)
}

// GatherIntsCtx is GatherInts under a cancellable context.
func GatherIntsCtx(ctx context.Context, r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]int64, error) {
	return gatherCtx(ctx, r, col, sel, pool, func(chunk *colstore.Chunk, bm *bitutil.Bitmap) ([]int64, error) {
		return chunk.GatherInts(bm)
	})
}

// GatherFloats fetches the selected rows of a float column.
func GatherFloats(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]float64, error) {
	return GatherFloatsCtx(context.Background(), r, col, sel, pool)
}

// GatherFloatsCtx is GatherFloats under a cancellable context.
func GatherFloatsCtx(ctx context.Context, r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]float64, error) {
	return gatherCtx(ctx, r, col, sel, pool, func(chunk *colstore.Chunk, bm *bitutil.Bitmap) ([]float64, error) {
		return chunk.GatherFloats(bm)
	})
}

// GatherStrings fetches the selected rows of a string column. Values alias
// decode buffers (zero-copy).
func GatherStrings(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([][]byte, error) {
	return GatherStringsCtx(context.Background(), r, col, sel, pool)
}

// GatherStringsCtx is GatherStrings under a cancellable context.
func GatherStringsCtx(ctx context.Context, r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([][]byte, error) {
	return gatherCtx(ctx, r, col, sel, pool, func(chunk *colstore.Chunk, bm *bitutil.Bitmap) ([][]byte, error) {
		return chunk.GatherStrings(bm)
	})
}

// GatherKeys fetches dictionary keys of the selected rows — the preferred
// group-by input for array aggregation, since keys are dense codes.
func GatherKeys(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]int64, error) {
	return GatherKeysCtx(context.Background(), r, col, sel, pool)
}

// GatherKeysCtx is GatherKeys under a cancellable context.
func GatherKeysCtx(ctx context.Context, r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]int64, error) {
	return gatherCtx(ctx, r, col, sel, pool, func(chunk *colstore.Chunk, bm *bitutil.Bitmap) ([]int64, error) {
		return chunk.GatherKeys(bm)
	})
}

// gatherCtx runs one selective fetch per row group on the pool, skipping
// empty sections, honoring ctx between row groups, and concatenating in
// row order. Error collection is synchronized by ParallelChunksErr. When
// ctx carries an obs.Span the gather is traced as a child span; with no
// span the only added cost is one context lookup.
func gatherCtx[T any](ctx context.Context, r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool,
	fetch func(*colstore.Chunk, *bitutil.Bitmap) ([]T, error)) ([]T, error) {
	sp := obs.SpanFrom(ctx)
	if sp == nil {
		return gatherCtxImpl(ctx, r, col, sel, pool, fetch)
	}
	child := sp.StartChild("Gather[" + col + "]")
	ioBefore := r.Stats()
	tasksBefore := pool.Completed()
	vals, err := gatherCtxImpl(ctx, r, col, sel, pool, fetch)
	child.AddIO(ioDelta(ioBefore, r.Stats()))
	child.AddTasks(pool.Completed() - tasksBefore)
	in := r.NumRows()
	if sel != nil {
		in = int64(sel.Cardinality())
	}
	child.SetRows(in, int64(len(vals)))
	if err != nil {
		child.AddDetail("error=%v", err)
	}
	child.End()
	return vals, err
}

func gatherCtxImpl[T any](ctx context.Context, r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool,
	fetch func(*colstore.Chunk, *bitutil.Bitmap) ([]T, error)) ([]T, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	return sweepRowGroups(ctx, r, pool, func(rg int) ([]T, error) {
		return gatherRG(r, ci, rg, sel, nil, fetch)
	})
}

// gatherRG fetches the selected rows of one row group — the single-row-group
// gather kernel the morsel pipeline drives directly. An empty section
// returns nil without touching the chunk (no pages, no skip marks, matching
// the historical sweep). A non-nil tap attributes the chunk's IO to the
// calling worker.
func gatherRG[T any](r *colstore.Reader, ci, rg int, sel *bitutil.SectionalBitmap, tap *colstore.IOTap,
	fetch func(*colstore.Chunk, *bitutil.Bitmap) ([]T, error)) ([]T, error) {
	if sel != nil && sel.SectionEmpty(rg) {
		return nil, nil
	}
	chunk := r.Chunk(rg, ci).Tap(tap)
	return fetch(chunk, sectionOrFull(sel, rg, chunk.Rows()))
}

// sweepRowGroups runs fn once per row group on the pool, honoring ctx
// between row groups, and concatenates the per-group results in row order
// — the shared barrier sweep under the gather and read-all families.
func sweepRowGroups[T any](ctx context.Context, r *colstore.Reader, pool *exec.Pool, fn func(rg int) ([]T, error)) ([]T, error) {
	parts := make([][]T, r.NumRowGroups())
	err := pool.ParallelChunksErr(ctx, r.NumRowGroups(), func(start, end int) error {
		for rg := start; rg < end; rg++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			vals, err := fn(rg)
			if err != nil {
				return err
			}
			parts[rg] = vals
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concat(parts), nil
}

// SelectedRows flattens the bitmap into global row ids, aligned with the
// vectors the gather helpers return.
func SelectedRows(sel *bitutil.SectionalBitmap) []int64 {
	out := make([]int64, 0, sel.Cardinality())
	sel.ForEach(func(i int) { out = append(out, int64(i)) })
	return out
}

// ReadAllInts decodes a whole integer column — the encoding-oblivious
// access path (every page decompressed and decoded).
func ReadAllInts(r *colstore.Reader, col string, pool *exec.Pool) ([]int64, error) {
	return ReadAllIntsCtx(context.Background(), r, col, pool)
}

// ReadAllIntsCtx is ReadAllInts under a cancellable context.
func ReadAllIntsCtx(ctx context.Context, r *colstore.Reader, col string, pool *exec.Pool) ([]int64, error) {
	return readAllCtx(ctx, r, col, pool, (*colstore.Chunk).Ints)
}

// ReadAllFloats decodes a whole float column.
func ReadAllFloats(r *colstore.Reader, col string, pool *exec.Pool) ([]float64, error) {
	return ReadAllFloatsCtx(context.Background(), r, col, pool)
}

// ReadAllFloatsCtx is ReadAllFloats under a cancellable context.
func ReadAllFloatsCtx(ctx context.Context, r *colstore.Reader, col string, pool *exec.Pool) ([]float64, error) {
	return readAllCtx(ctx, r, col, pool, (*colstore.Chunk).Floats)
}

// ReadAllStrings decodes a whole string column.
func ReadAllStrings(r *colstore.Reader, col string, pool *exec.Pool) ([][]byte, error) {
	return ReadAllStringsCtx(context.Background(), r, col, pool)
}

// ReadAllStringsCtx is ReadAllStrings under a cancellable context.
func ReadAllStringsCtx(ctx context.Context, r *colstore.Reader, col string, pool *exec.Pool) ([][]byte, error) {
	return readAllCtx(ctx, r, col, pool, (*colstore.Chunk).Strings)
}

// readAllCtx decodes every row group of one column on the pool.
func readAllCtx[T any](ctx context.Context, r *colstore.Reader, col string, pool *exec.Pool,
	decode func(*colstore.Chunk) ([]T, error)) ([]T, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	return sweepRowGroups(ctx, r, pool, func(rg int) ([]T, error) {
		return decode(r.Chunk(rg, ci))
	})
}

func sectionOrFull(sel *bitutil.SectionalBitmap, rg, rows int) *bitutil.Bitmap {
	if sel == nil {
		bm := bitutil.NewBitmap(rows)
		bm.SetAll()
		return bm
	}
	sec := sel.Section(rg)
	if sec == nil {
		return bitutil.NewBitmap(rows)
	}
	return sec
}

func concat[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
