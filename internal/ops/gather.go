package ops

import (
	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/exec"
)

// The gather helpers implement late materialization (§5.2): after filters
// produce a sectional bitmap, only the selected rows of payload columns
// are fetched, with page- and row-level skipping done by the chunk
// readers. Row groups are processed in parallel on the data pool and
// results concatenate in row order.

// GatherInts fetches the selected rows of an integer column.
func GatherInts(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]int64, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	parts := make([][]int64, r.NumRowGroups())
	var firstErr error
	pool.ParallelChunks(r.NumRowGroups(), func(start, end int) {
		for rg := start; rg < end; rg++ {
			if sel != nil && sel.SectionEmpty(rg) {
				continue
			}
			chunk := r.Chunk(rg, ci)
			vals, err := chunk.GatherInts(sectionOrFull(sel, rg, chunk.Rows()))
			if err != nil {
				firstErr = err
				return
			}
			parts[rg] = vals
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return concat(parts), nil
}

// GatherFloats fetches the selected rows of a float column.
func GatherFloats(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]float64, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	parts := make([][]float64, r.NumRowGroups())
	var firstErr error
	pool.ParallelChunks(r.NumRowGroups(), func(start, end int) {
		for rg := start; rg < end; rg++ {
			if sel != nil && sel.SectionEmpty(rg) {
				continue
			}
			chunk := r.Chunk(rg, ci)
			vals, err := chunk.GatherFloats(sectionOrFull(sel, rg, chunk.Rows()))
			if err != nil {
				firstErr = err
				return
			}
			parts[rg] = vals
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return concat(parts), nil
}

// GatherStrings fetches the selected rows of a string column. Values alias
// decode buffers (zero-copy).
func GatherStrings(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([][]byte, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	parts := make([][][]byte, r.NumRowGroups())
	var firstErr error
	pool.ParallelChunks(r.NumRowGroups(), func(start, end int) {
		for rg := start; rg < end; rg++ {
			if sel != nil && sel.SectionEmpty(rg) {
				continue
			}
			chunk := r.Chunk(rg, ci)
			vals, err := chunk.GatherStrings(sectionOrFull(sel, rg, chunk.Rows()))
			if err != nil {
				firstErr = err
				return
			}
			parts[rg] = vals
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return concat(parts), nil
}

// GatherKeys fetches dictionary keys of the selected rows — the preferred
// group-by input for array aggregation, since keys are dense codes.
func GatherKeys(r *colstore.Reader, col string, sel *bitutil.SectionalBitmap, pool *exec.Pool) ([]int64, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	parts := make([][]int64, r.NumRowGroups())
	var firstErr error
	pool.ParallelChunks(r.NumRowGroups(), func(start, end int) {
		for rg := start; rg < end; rg++ {
			if sel != nil && sel.SectionEmpty(rg) {
				continue
			}
			chunk := r.Chunk(rg, ci)
			vals, err := chunk.GatherKeys(sectionOrFull(sel, rg, chunk.Rows()))
			if err != nil {
				firstErr = err
				return
			}
			parts[rg] = vals
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return concat(parts), nil
}

// SelectedRows flattens the bitmap into global row ids, aligned with the
// vectors the gather helpers return.
func SelectedRows(sel *bitutil.SectionalBitmap) []int64 {
	out := make([]int64, 0, sel.Cardinality())
	sel.ForEach(func(i int) { out = append(out, int64(i)) })
	return out
}

// ReadAllInts decodes a whole integer column — the encoding-oblivious
// access path (every page decompressed and decoded).
func ReadAllInts(r *colstore.Reader, col string, pool *exec.Pool) ([]int64, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	parts := make([][]int64, r.NumRowGroups())
	var firstErr error
	pool.ParallelChunks(r.NumRowGroups(), func(start, end int) {
		for rg := start; rg < end; rg++ {
			vals, err := r.Chunk(rg, ci).Ints()
			if err != nil {
				firstErr = err
				return
			}
			parts[rg] = vals
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return concat(parts), nil
}

// ReadAllFloats decodes a whole float column.
func ReadAllFloats(r *colstore.Reader, col string, pool *exec.Pool) ([]float64, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	parts := make([][]float64, r.NumRowGroups())
	var firstErr error
	pool.ParallelChunks(r.NumRowGroups(), func(start, end int) {
		for rg := start; rg < end; rg++ {
			vals, err := r.Chunk(rg, ci).Floats()
			if err != nil {
				firstErr = err
				return
			}
			parts[rg] = vals
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return concat(parts), nil
}

// ReadAllStrings decodes a whole string column.
func ReadAllStrings(r *colstore.Reader, col string, pool *exec.Pool) ([][]byte, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	parts := make([][][]byte, r.NumRowGroups())
	var firstErr error
	pool.ParallelChunks(r.NumRowGroups(), func(start, end int) {
		for rg := start; rg < end; rg++ {
			vals, err := r.Chunk(rg, ci).Strings()
			if err != nil {
				firstErr = err
				return
			}
			parts[rg] = vals
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return concat(parts), nil
}

func sectionOrFull(sel *bitutil.SectionalBitmap, rg, rows int) *bitutil.Bitmap {
	if sel == nil {
		bm := bitutil.NewBitmap(rows)
		bm.SetAll()
		return bm
	}
	sec := sel.Section(rg)
	if sec == nil {
		return bitutil.NewBitmap(rows)
	}
	return sec
}

func concat[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
