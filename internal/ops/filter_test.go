package ops

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/sboost"
)

// testReader writes a small lineitem-like table and opens it.
func testReader(t *testing.T, n int) (*colstore.Reader, []int64, []int64, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ship := make([]int64, n)    // dict int: dates 0..999
	commit := make([]int64, n)  // shares dict with receipt
	receipt := make([]int64, n) // shares dict with commit
	mode := make([][]byte, n)
	qty := make([]int64, n) // delta encoded
	modes := [][]byte{[]byte("AIR"), []byte("MAIL"), []byte("RAIL"), []byte("SHIP"), []byte("TRUCK")}
	for i := 0; i < n; i++ {
		ship[i] = int64(rng.Intn(1000))
		commit[i] = int64(rng.Intn(500))
		receipt[i] = int64(rng.Intn(500))
		mode[i] = modes[rng.Intn(len(modes))]
		qty[i] = int64(i) // sorted, delta-friendly
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "shipdate", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
		{Name: "commitdate", Type: colstore.TypeInt64, Encoding: encoding.KindDict, DictGroup: "dates"},
		{Name: "receiptdate", Type: colstore.TypeInt64, Encoding: encoding.KindDict, DictGroup: "dates"},
		{Name: "shipmode", Type: colstore.TypeString, Encoding: encoding.KindDict},
		{Name: "qty", Type: colstore.TypeInt64, Encoding: encoding.KindDelta},
	}}
	path := filepath.Join(t.TempDir(), "t.cdb")
	err := colstore.WriteFile(path, schema, []colstore.ColumnData{
		{Ints: ship}, {Ints: commit}, {Ints: receipt}, {Strings: mode}, {Ints: qty},
	}, colstore.Options{RowGroupRows: 1024, PageRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, ship, commit, mode
}

func checkBitmap(t *testing.T, got *bitutil.SectionalBitmap, n int, want func(i int) bool) {
	t.Helper()
	if got.Len() != n {
		t.Fatalf("bitmap length %d, want %d", got.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got.Get(i) != want(i) {
			t.Fatalf("row %d: got %v, want %v", i, got.Get(i), want(i))
		}
	}
}

func TestDictFilterAllOps(t *testing.T) {
	const n = 3000
	r, ship, _, _ := testReader(t, n)
	pool := exec.NewPool(4)
	for _, op := range []sboost.Op{sboost.OpEq, sboost.OpNe, sboost.OpLt, sboost.OpLe, sboost.OpGt, sboost.OpGe} {
		target := ship[42]
		f := &DictFilter{Col: "shipdate", Op: op, IntValue: target}
		bm, err := f.Apply(r, pool)
		if err != nil {
			t.Fatal(err)
		}
		checkBitmap(t, bm, n, func(i int) bool { return chunkMatch(ship[i], op, target) })
	}
}

func TestDictFilterAbsentValue(t *testing.T) {
	const n = 2000
	r, ship, _, _ := testReader(t, n)
	pool := exec.NewPool(2)
	// 1500 is absent from dict (values are < 1000): Eq empty, Lt = all,
	// Gt = none, Ne = all.
	cases := []struct {
		op   sboost.Op
		want func(v int64) bool
	}{
		{sboost.OpEq, func(v int64) bool { return false }},
		{sboost.OpNe, func(v int64) bool { return true }},
		{sboost.OpLt, func(v int64) bool { return v < 1500 }},
		{sboost.OpLe, func(v int64) bool { return v <= 1500 }},
		{sboost.OpGt, func(v int64) bool { return v > 1500 }},
		{sboost.OpGe, func(v int64) bool { return v >= 1500 }},
	}
	for _, c := range cases {
		f := &DictFilter{Col: "shipdate", Op: c.op, IntValue: 1500}
		bm, err := f.Apply(r, pool)
		if err != nil {
			t.Fatal(err)
		}
		checkBitmap(t, bm, n, func(i int) bool { return c.want(ship[i]) })
	}
	// Absent but in range: e.g. -1 (below all): Ge = all, Lt = none.
	f := &DictFilter{Col: "shipdate", Op: sboost.OpGe, IntValue: -1}
	bm, err := f.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Cardinality() != n {
		t.Fatalf("Ge below-min should match all, got %d", bm.Cardinality())
	}
}

// TestDictFilterPowerOfTwoDictOverflow pins a regression: with exactly
// 2^w dictionary entries, the lower-bound key for an above-all-entries
// probe value is 2^w, which does not fit in the key width — the predicate
// must resolve statically rather than let the broadcast wrap to zero.
func TestDictFilterPowerOfTwoDictOverflow(t *testing.T) {
	n := 4096
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 1024) // exactly 1024 distinct values, width 10
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "v", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
	}}
	path := filepath.Join(t.TempDir(), "pow2.cdb")
	if err := colstore.WriteFile(path, schema, []colstore.ColumnData{{Ints: vals}},
		colstore.Options{RowGroupRows: 2048, PageRows: 512}); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pool := exec.NewPool(2)
	for _, c := range []struct {
		op   sboost.Op
		v    int64
		want int
	}{
		{sboost.OpLt, 5000, n}, // above all entries: everything is smaller
		{sboost.OpLe, 5000, n},
		{sboost.OpGt, 5000, 0},
		{sboost.OpGe, 5000, 0},
		{sboost.OpEq, 5000, 0},
		{sboost.OpNe, 5000, n},
	} {
		bm, err := (&DictFilter{Col: "v", Op: c.op, IntValue: c.v}).Apply(r, pool)
		if err != nil {
			t.Fatal(err)
		}
		if bm.Cardinality() != c.want {
			t.Fatalf("op=%v value=%d: got %d rows, want %d", c.op, c.v, bm.Cardinality(), c.want)
		}
	}
}

func TestDictFilterString(t *testing.T) {
	const n = 2500
	r, _, _, mode := testReader(t, n)
	pool := exec.NewPool(4)
	f := &DictFilter{Col: "shipmode", Op: sboost.OpEq, StrValue: []byte("MAIL")}
	bm, err := f.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkBitmap(t, bm, n, func(i int) bool { return bytes.Equal(mode[i], []byte("MAIL")) })
	// Range on order-preserving string dict: < "RAIL" means AIR, MAIL.
	f2 := &DictFilter{Col: "shipmode", Op: sboost.OpLt, StrValue: []byte("RAIL")}
	bm2, err := f2.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkBitmap(t, bm2, n, func(i int) bool { return string(mode[i]) < "RAIL" })
}

func TestDictInFilter(t *testing.T) {
	const n = 2500
	r, _, _, mode := testReader(t, n)
	pool := exec.NewPool(4)
	f := &DictInFilter{Col: "shipmode", StrValues: [][]byte{[]byte("MAIL"), []byte("SHIP"), []byte("HOVERCRAFT")}}
	bm, err := f.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkBitmap(t, bm, n, func(i int) bool {
		return bytes.Equal(mode[i], []byte("MAIL")) || bytes.Equal(mode[i], []byte("SHIP"))
	})
	// All absent: empty result.
	f2 := &DictInFilter{Col: "shipmode", StrValues: [][]byte{[]byte("X")}}
	bm2, err := f2.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	if bm2.Cardinality() != 0 {
		t.Fatal("absent IN list should match nothing")
	}
}

func TestDictLikeFilter(t *testing.T) {
	const n = 2000
	r, _, _, mode := testReader(t, n)
	pool := exec.NewPool(4)
	// LIKE '%AIL' — matches MAIL and RAIL.
	f := &DictLikeFilter{Col: "shipmode", Match: func(e []byte) bool { return bytes.HasSuffix(e, []byte("AIL")) }}
	bm, err := f.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkBitmap(t, bm, n, func(i int) bool { return bytes.HasSuffix(mode[i], []byte("AIL")) })
}

func TestTwoColumnFilter(t *testing.T) {
	const n = 3000
	r, _, commit, _ := testReader(t, n)
	pool := exec.NewPool(4)
	receipt, err := r.Chunk(0, 2).Ints()
	if err != nil {
		t.Fatal(err)
	}
	all := receipt
	for rg := 1; rg < r.NumRowGroups(); rg++ {
		vals, _ := r.Chunk(rg, 2).Ints()
		all = append(all, vals...)
	}
	f := &TwoColumnFilter{ColA: "commitdate", ColB: "receiptdate", Op: sboost.OpLt}
	bm, err := f.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkBitmap(t, bm, n, func(i int) bool { return commit[i] < all[i] })
	// Columns without a shared dictionary must be rejected.
	bad := &TwoColumnFilter{ColA: "shipdate", ColB: "commitdate", Op: sboost.OpLt}
	if _, err := bad.Apply(r, pool); err == nil {
		t.Fatal("unshared dictionaries should error")
	}
}

func TestDeltaFilter(t *testing.T) {
	const n = 3000
	r, _, _, _ := testReader(t, n)
	pool := exec.NewPool(4)
	f := &DeltaFilter{Col: "qty", Op: sboost.OpLe, Value: 1234}
	bm, err := f.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkBitmap(t, bm, n, func(i int) bool { return int64(i) <= 1234 })
	// Wrong encoding rejected.
	bad := &DeltaFilter{Col: "shipdate", Op: sboost.OpEq, Value: 1}
	if _, err := bad.Apply(r, pool); err == nil {
		t.Fatal("delta filter on dict column should error")
	}
}

func TestObliviousFiltersMatchAware(t *testing.T) {
	const n = 2500
	r, ship, _, mode := testReader(t, n)
	pool := exec.NewPool(4)
	aware, err := (&DictFilter{Col: "shipdate", Op: sboost.OpLe, IntValue: 500}).Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	obliv, err := (&IntPredicateFilter{Col: "shipdate", Pred: func(v int64) bool { return v <= 500 }}).Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if aware.Get(i) != obliv.Get(i) {
			t.Fatalf("row %d: aware %v oblivious %v (value %d)", i, aware.Get(i), obliv.Get(i), ship[i])
		}
	}
	strBm, err := (&StrPredicateFilter{Col: "shipmode", Pred: func(v []byte) bool { return len(v) == 4 }}).Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkBitmap(t, strBm, n, func(i int) bool { return len(mode[i]) == 4 })
}

func TestFullAndEmptyTableBitmaps(t *testing.T) {
	r, _, _, _ := testReader(t, 1000)
	full := FullTableBitmap(r)
	if full.Cardinality() != 1000 {
		t.Fatalf("full bitmap has %d bits", full.Cardinality())
	}
	empty := NewTableBitmap(r)
	if empty.Cardinality() != 0 {
		t.Fatal("new bitmap should be empty")
	}
}

func TestFilterUnknownColumn(t *testing.T) {
	r, _, _, _ := testReader(t, 100)
	pool := exec.NewPool(1)
	if _, err := (&DictFilter{Col: "nope", Op: sboost.OpEq, IntValue: 1}).Apply(r, pool); err == nil {
		t.Fatal("unknown column should error")
	}
}
