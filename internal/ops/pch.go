package ops

import (
	"math"
	"sync/atomic"
)

// PCH is a phase-concurrent hash map for int64 keys (Shun & Blelloch,
// SPAA'14; paper §5.5): operations of one type — insert-only, search-only,
// or delete-only — may run from many goroutines at once with no locks.
// CodecDB's hash joins are naturally phased: the build phase only inserts,
// the probe phase only searches, and hash-based exist-joins only delete.
//
// The table is open-addressed with linear probing over a power-of-two slot
// array. Insert claims a slot with a CAS on the key word; the value word
// is written only by the claiming goroutine. A deleted slot becomes a
// tombstone that searches probe through.
type PCH struct {
	keys []int64 // emptyKey = free, tombKey = deleted
	vals []int64
	mask uint64
	size atomic.Int64
}

const (
	emptyKey int64 = math.MinInt64
	tombKey  int64 = math.MinInt64 + 1
)

// NewPCH creates a map sized for about n entries.
func NewPCH(n int) *PCH {
	capacity := 16
	for capacity < n*2 {
		capacity *= 2
	}
	m := &PCH{keys: make([]int64, capacity), vals: make([]int64, capacity), mask: uint64(capacity - 1)}
	for i := range m.keys {
		m.keys[i] = emptyKey
	}
	return m
}

// Len returns the number of live entries.
func (m *PCH) Len() int { return int(m.size.Load()) }

func hash64(k int64) uint64 {
	// Fibonacci-style mix; good dispersion for sequential keys.
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Insert adds (k, v), keeping the first value when the key is already
// present. Keys MinInt64 and MinInt64+1 are reserved. Insert may run
// concurrently with other Inserts only (phase-concurrency contract).
func (m *PCH) Insert(k, v int64) {
	if k == emptyKey || k == tombKey {
		panic("ops: reserved key")
	}
	i := hash64(k) & m.mask
	for {
		cur := atomic.LoadInt64(&m.keys[i])
		if cur == k {
			return // first writer wins
		}
		if cur == emptyKey {
			if atomic.CompareAndSwapInt64(&m.keys[i], emptyKey, k) {
				atomic.StoreInt64(&m.vals[i], v)
				m.size.Add(1)
				return
			}
			continue // lost the race: re-read this slot
		}
		i = (i + 1) & m.mask
	}
}

// Get returns the value for k. It may run concurrently with other Gets.
func (m *PCH) Get(k int64) (int64, bool) {
	i := hash64(k) & m.mask
	for probes := uint64(0); probes <= m.mask; probes++ {
		cur := atomic.LoadInt64(&m.keys[i])
		if cur == k {
			return atomic.LoadInt64(&m.vals[i]), true
		}
		if cur == emptyKey {
			return 0, false
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// Delete removes k, returning whether it was present. It may run
// concurrently with other Deletes (hash-based exist join, §5.5).
func (m *PCH) Delete(k int64) bool {
	i := hash64(k) & m.mask
	for probes := uint64(0); probes <= m.mask; probes++ {
		cur := atomic.LoadInt64(&m.keys[i])
		if cur == k {
			if atomic.CompareAndSwapInt64(&m.keys[i], k, tombKey) {
				m.size.Add(-1)
				return true
			}
			return false // another deleter got it
		}
		if cur == emptyKey {
			return false
		}
		i = (i + 1) & m.mask
	}
	return false
}

// Keys returns the live keys (single-threaded use, for result collection).
func (m *PCH) Keys() []int64 {
	out := make([]int64, 0, m.Len())
	for i, k := range m.keys {
		if k != emptyKey && k != tombKey {
			_ = i
			out = append(out, k)
		}
	}
	return out
}

// PCHMulti is the multi-value variant: each key maps to the list of rows
// inserted under it, for joins with duplicate build keys. Lists are
// lock-free linked lists threaded through preallocated arrays.
type PCHMulti struct {
	slots  []int64 // key per slot, emptyKey = free
	heads  []int64 // head index+1 into rows/next; 0 = empty
	rows   []int64
	next   []int64
	cursor atomic.Int64
	mask   uint64
}

// NewPCHMulti creates a multi-map for up to n insertions.
func NewPCHMulti(n int) *PCHMulti {
	capacity := 16
	for capacity < n*2 {
		capacity *= 2
	}
	m := &PCHMulti{
		slots: make([]int64, capacity),
		heads: make([]int64, capacity),
		rows:  make([]int64, n),
		next:  make([]int64, n),
		mask:  uint64(capacity - 1),
	}
	for i := range m.slots {
		m.slots[i] = emptyKey
	}
	return m
}

// Insert appends row under key k. Insert-only phase.
func (m *PCHMulti) Insert(k, row int64) {
	if k == emptyKey || k == tombKey {
		panic("ops: reserved key")
	}
	idx := m.cursor.Add(1) - 1
	if int(idx) >= len(m.rows) {
		panic("ops: PCHMulti capacity exceeded")
	}
	m.rows[idx] = row
	i := hash64(k) & m.mask
	for {
		cur := atomic.LoadInt64(&m.slots[i])
		if cur == k {
			break
		}
		if cur == emptyKey {
			if atomic.CompareAndSwapInt64(&m.slots[i], emptyKey, k) {
				break
			}
			continue
		}
		i = (i + 1) & m.mask
	}
	// Push onto the slot's list with an atomic head swap.
	for {
		head := atomic.LoadInt64(&m.heads[i])
		m.next[idx] = head
		if atomic.CompareAndSwapInt64(&m.heads[i], head, idx+1) {
			return
		}
	}
}

// Each invokes fn for every row stored under k. Search-only phase.
func (m *PCHMulti) Each(k int64, fn func(row int64)) {
	i := hash64(k) & m.mask
	for probes := uint64(0); probes <= m.mask; probes++ {
		cur := atomic.LoadInt64(&m.slots[i])
		if cur == k {
			for idx := atomic.LoadInt64(&m.heads[i]); idx != 0; idx = m.next[idx-1] {
				fn(m.rows[idx-1])
			}
			return
		}
		if cur == emptyKey {
			return
		}
		i = (i + 1) & m.mask
	}
}

// Contains reports whether k has at least one row.
func (m *PCHMulti) Contains(k int64) bool {
	found := false
	m.Each(k, func(int64) { found = true })
	return found
}
