package ops

import (
	"sync"

	"codecdb/internal/bitutil"
	"codecdb/internal/exec"
)

// JoinPairs is the positional output of a join: row i of the result joins
// Probe[i] on the probe side with Build[i] on the build side. Plans gather
// payload columns through these row lists (late materialization, §5.2).
type JoinPairs struct {
	Probe []int64
	Build []int64
}

// Len returns the number of joined pairs.
func (j *JoinPairs) Len() int { return len(j.Probe) }

// HashJoinBuild builds a phase-concurrent multi-map from the build side in
// parallel (§5.5: "we can build a hash table using multiple threads").
// keys[i] is inserted under row id rows[i]; rows may be nil, in which case
// row ids are 0..len(keys)-1.
func HashJoinBuild(pool *exec.Pool, keys []int64, rows []int64) *PCHMulti {
	m := NewPCHMulti(len(keys))
	pool.ParallelChunks(len(keys), func(start, end int) {
		for i := start; i < end; i++ {
			row := int64(i)
			if rows != nil {
				row = rows[i]
			}
			m.Insert(keys[i], row)
		}
	})
	return m
}

// HashJoinProbe probes the map with every probe key in parallel and
// returns the matching pairs. Pair order is deterministic: ascending probe
// row, build rows in insertion-list order.
func HashJoinProbe(pool *exec.Pool, m *PCHMulti, probeKeys []int64, probeRows []int64) *JoinPairs {
	workers := pool.Size()
	chunk := (len(probeKeys) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	nChunks := (len(probeKeys) + chunk - 1) / chunk
	partials := make([]*JoinPairs, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		start := c * chunk
		end := start + chunk
		if end > len(probeKeys) {
			end = len(probeKeys)
		}
		wg.Add(1)
		c, start, end := c, start, end
		pool.Submit(func() {
			defer wg.Done()
			// FK joins produce ~one match per probe row; pre-size for that.
			p := &JoinPairs{
				Probe: make([]int64, 0, end-start),
				Build: make([]int64, 0, end-start),
			}
			for i := start; i < end; i++ {
				probeRow := int64(i)
				if probeRows != nil {
					probeRow = probeRows[i]
				}
				m.Each(probeKeys[i], func(buildRow int64) {
					p.Probe = append(p.Probe, probeRow)
					p.Build = append(p.Build, buildRow)
				})
			}
			partials[c] = p
		})
	}
	wg.Wait()
	out := &JoinPairs{}
	for _, p := range partials {
		out.Probe = append(out.Probe, p.Probe...)
		out.Build = append(out.Build, p.Build...)
	}
	return out
}

// SemiJoinBitmap marks probe positions whose key exists in the build map —
// the bitmap form used when the join only filters (e.g. customer segment
// restricting orders).
func SemiJoinBitmap(pool *exec.Pool, m *PCHMulti, probeKeys []int64) *bitutil.Bitmap {
	out := bitutil.NewBitmap(len(probeKeys))
	var mu sync.Mutex
	pool.ParallelChunks(len(probeKeys), func(start, end int) {
		local := []int{}
		for i := start; i < end; i++ {
			if m.Contains(probeKeys[i]) {
				local = append(local, i)
			}
		}
		mu.Lock()
		for _, i := range local {
			out.Set(i)
		}
		mu.Unlock()
	})
	return out
}

// AntiJoinBitmap marks probe positions whose key is absent from the build
// map (NOT EXISTS).
func AntiJoinBitmap(pool *exec.Pool, m *PCHMulti, probeKeys []int64) *bitutil.Bitmap {
	out := SemiJoinBitmap(pool, m, probeKeys)
	return out.Not()
}

// NestedLoopJoin is the quadratic fallback for tiny inputs or non-equi
// predicates: every (probe, build) pair satisfying pred joins.
func NestedLoopJoin(probeN, buildN int, pred func(p, b int) bool) *JoinPairs {
	out := &JoinPairs{}
	for p := 0; p < probeN; p++ {
		for b := 0; b < buildN; b++ {
			if pred(p, b) {
				out.Probe = append(out.Probe, int64(p))
				out.Build = append(out.Build, int64(b))
			}
		}
	}
	return out
}

// blockNLBlock is the block size for block nested-loop join.
const blockNLBlock = 256

// BlockNestedLoopJoin evaluates the same result as NestedLoopJoin but
// iterates in cache-friendly blocks (§5.5).
func BlockNestedLoopJoin(probeN, buildN int, pred func(p, b int) bool) *JoinPairs {
	out := &JoinPairs{}
	for pb := 0; pb < probeN; pb += blockNLBlock {
		pe := pb + blockNLBlock
		if pe > probeN {
			pe = probeN
		}
		for bb := 0; bb < buildN; bb += blockNLBlock {
			be := bb + blockNLBlock
			if be > buildN {
				be = buildN
			}
			for p := pb; p < pe; p++ {
				for b := bb; b < be; b++ {
					if pred(p, b) {
						out.Probe = append(out.Probe, int64(p))
						out.Build = append(out.Build, int64(b))
					}
				}
			}
		}
	}
	return out
}

// ObliviousHashJoin is the baseline single-threaded map-based join used by
// the Fig 6 join micro-benchmark's competitor: build with a Go map, probe
// sequentially.
func ObliviousHashJoin(buildKeys, probeKeys []int64) *JoinPairs {
	m := make(map[int64][]int64, len(buildKeys))
	for i, k := range buildKeys {
		m[k] = append(m[k], int64(i))
	}
	out := &JoinPairs{}
	for i, k := range probeKeys {
		for _, b := range m[k] {
			out.Probe = append(out.Probe, int64(i))
			out.Build = append(out.Build, b)
		}
	}
	return out
}
