package ops

import (
	"math/rand"
	"path/filepath"
	"testing"

	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/sboost"
)

func bitpackedReader(t *testing.T, vals []int64) *colstore.Reader {
	t.Helper()
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "v", Type: colstore.TypeInt64, Encoding: encoding.KindBitPacked},
	}}
	path := filepath.Join(t.TempDir(), "bp.cdb")
	if err := colstore.WriteFile(path, schema, []colstore.ColumnData{{Ints: vals}},
		colstore.Options{RowGroupRows: 1000, PageRows: 200}); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestBitPackedFilterNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = rng.Int63n(500)
	}
	r := bitpackedReader(t, vals)
	pool := exec.NewPool(4)
	for _, op := range []sboost.Op{sboost.OpEq, sboost.OpNe, sboost.OpLt, sboost.OpLe, sboost.OpGt, sboost.OpGe} {
		for _, target := range []int64{0, 123, 499, 600, -5} {
			bm, err := (&BitPackedFilter{Col: "v", Op: op, Value: target}).Apply(r, pool)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range vals {
				if bm.Get(i) != chunkMatch(v, op, target) {
					t.Fatalf("op=%v target=%d row %d (value %d): got %v", op, target, i, v, bm.Get(i))
				}
			}
		}
	}
}

func TestBitPackedFilterWithNegatives(t *testing.T) {
	// Negative values force the decode fallback for range ops while
	// equality stays in situ; results must be exact either way.
	rng := rand.New(rand.NewSource(22))
	vals := make([]int64, 2500)
	for i := range vals {
		vals[i] = rng.Int63n(400) - 200
	}
	r := bitpackedReader(t, vals)
	pool := exec.NewPool(4)
	for _, op := range []sboost.Op{sboost.OpEq, sboost.OpLt, sboost.OpGe} {
		for _, target := range []int64{-150, -1, 0, 7, 180} {
			bm, err := (&BitPackedFilter{Col: "v", Op: op, Value: target}).Apply(r, pool)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for i, v := range vals {
				if chunkMatch(v, op, target) {
					count++
				}
				if bm.Get(i) != chunkMatch(v, op, target) {
					t.Fatalf("op=%v target=%d row %d (value %d)", op, target, i, v)
				}
			}
			if bm.Cardinality() != count {
				t.Fatalf("cardinality mismatch")
			}
		}
	}
}

func TestBitPackedFilterWrongEncodingRejected(t *testing.T) {
	vals := []int64{1, 2, 3}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "v", Type: colstore.TypeInt64, Encoding: encoding.KindPlain},
	}}
	path := filepath.Join(t.TempDir(), "p.cdb")
	if err := colstore.WriteFile(path, schema, []colstore.ColumnData{{Ints: vals}}, colstore.Options{}); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := (&BitPackedFilter{Col: "v", Op: sboost.OpEq, Value: 1}).Apply(r, exec.NewPool(1)); err == nil {
		t.Fatal("plain column should be rejected")
	}
}
