package ops

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"codecdb/internal/exec"
)

func TestPCHBasic(t *testing.T) {
	m := NewPCH(100)
	for i := int64(0); i < 100; i++ {
		m.Insert(i*3, i)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := int64(0); i < 100; i++ {
		v, ok := m.Get(i * 3)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i*3, v, ok)
		}
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("missing key found")
	}
	if !m.Delete(3) {
		t.Fatal("delete failed")
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("deleted key still found")
	}
	// Keys past a tombstone must remain reachable (linear probing).
	if _, ok := m.Get(6); !ok {
		t.Fatal("probe chain broken after delete")
	}
	if m.Delete(3) {
		t.Fatal("double delete should fail")
	}
}

func TestPCHDuplicateInsertKeepsFirst(t *testing.T) {
	m := NewPCH(10)
	m.Insert(7, 100)
	m.Insert(7, 200)
	v, ok := m.Get(7)
	if !ok || v != 100 {
		t.Fatalf("Get = %d, want first value 100", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestPCHConcurrentPhases(t *testing.T) {
	const n = 50000
	m := NewPCH(n)
	// Phase 1: concurrent inserts.
	var wg sync.WaitGroup
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				m.Insert(int64(i), int64(i)*2)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	// Phase 2: concurrent searches.
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if v, ok := m.Get(int64(i)); !ok || v != int64(i)*2 {
					select {
					case errs <- "bad get":
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	// Phase 3: concurrent deletes of the even keys.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if i%2 == 0 {
					m.Delete(int64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != n/2 {
		t.Fatalf("after deletes Len = %d, want %d", m.Len(), n/2)
	}
}

func TestPCHMultiDuplicates(t *testing.T) {
	m := NewPCHMulti(10)
	m.Insert(5, 100)
	m.Insert(5, 101)
	m.Insert(9, 200)
	var rows []int64
	m.Each(5, func(r int64) { rows = append(rows, r) })
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	if len(rows) != 2 || rows[0] != 100 || rows[1] != 101 {
		t.Fatalf("rows = %v", rows)
	}
	if !m.Contains(9) || m.Contains(6) {
		t.Fatal("Contains wrong")
	}
}

func TestPCHReservedKeysPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPCH(4).Insert(emptyKey, 1)
}

func joinToSet(j *JoinPairs) map[[2]int64]int {
	m := map[[2]int64]int{}
	for i := range j.Probe {
		m[[2]int64{j.Probe[i], j.Build[i]}]++
	}
	return m
}

func TestHashJoinMatchesOblivious(t *testing.T) {
	pool := exec.NewPool(4)
	rng := rand.New(rand.NewSource(4))
	build := make([]int64, 2000)
	probe := make([]int64, 5000)
	for i := range build {
		build[i] = int64(rng.Intn(500)) // duplicates on the build side
	}
	for i := range probe {
		probe[i] = int64(rng.Intn(800))
	}
	m := HashJoinBuild(pool, build, nil)
	got := HashJoinProbe(pool, m, probe, nil)
	want := ObliviousHashJoin(build, probe)
	gs, ws := joinToSet(got), joinToSet(want)
	if len(gs) != len(ws) {
		t.Fatalf("pair sets differ: %d vs %d", len(gs), len(ws))
	}
	for k, c := range ws {
		if gs[k] != c {
			t.Fatalf("pair %v count %d, want %d", k, gs[k], c)
		}
	}
}

func TestHashJoinCustomRowIDs(t *testing.T) {
	pool := exec.NewPool(2)
	m := HashJoinBuild(pool, []int64{10, 20}, []int64{777, 888})
	pairs := HashJoinProbe(pool, m, []int64{20, 10, 30}, []int64{5, 6, 7})
	set := joinToSet(pairs)
	if len(set) != 2 || set[[2]int64{5, 888}] != 1 || set[[2]int64{6, 777}] != 1 {
		t.Fatalf("pairs = %+v", set)
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	pool := exec.NewPool(4)
	m := HashJoinBuild(pool, []int64{1, 3, 5}, nil)
	probe := []int64{0, 1, 2, 3, 4, 5, 6}
	semi := SemiJoinBitmap(pool, m, probe)
	anti := AntiJoinBitmap(pool, m, probe)
	for i, k := range probe {
		in := k == 1 || k == 3 || k == 5
		if semi.Get(i) != in {
			t.Fatalf("semi row %d", i)
		}
		if anti.Get(i) != !in {
			t.Fatalf("anti row %d", i)
		}
	}
}

func TestNestedLoopVariantsAgree(t *testing.T) {
	pred := func(p, b int) bool { return (p+b)%7 == 0 }
	a := NestedLoopJoin(300, 200, pred)
	b := BlockNestedLoopJoin(300, 200, pred)
	as, bs := joinToSet(a), joinToSet(b)
	if len(as) != len(bs) {
		t.Fatalf("NL %d pairs, BNL %d pairs", len(as), len(bs))
	}
	for k := range as {
		if bs[k] != as[k] {
			t.Fatalf("pair %v differs", k)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	pool := exec.NewPool(2)
	m := HashJoinBuild(pool, nil, nil)
	pairs := HashJoinProbe(pool, m, []int64{1, 2}, nil)
	if pairs.Len() != 0 {
		t.Fatal("join against empty build should be empty")
	}
	pairs2 := HashJoinProbe(pool, HashJoinBuild(pool, []int64{1}, nil), nil, nil)
	if pairs2.Len() != 0 {
		t.Fatal("empty probe should be empty")
	}
}
