package ops

import (
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SortKey describes one sort column by index into the comparators given to
// SortRows.
type SortKey struct {
	Col  int
	Desc bool
}

// RowComparator compares two row indexes on one column.
type RowComparator func(i, j int) int

// SortRows returns the permutation ordering rows by keys, with cmp[c]
// comparing column c. It is the in-memory sort operator (§5.5).
func SortRows(n int, keys []SortKey, cmp []RowComparator) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, k := range keys {
			c := cmp[k.Col](idx[a], idx[b])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return idx
}

// IntComparator adapts an int column to a RowComparator.
func IntComparator(vals []int64) RowComparator {
	return func(i, j int) int {
		switch {
		case vals[i] < vals[j]:
			return -1
		case vals[i] > vals[j]:
			return 1
		default:
			return 0
		}
	}
}

// FloatComparator adapts a float column to a RowComparator.
func FloatComparator(vals []float64) RowComparator {
	return func(i, j int) int {
		switch {
		case vals[i] < vals[j]:
			return -1
		case vals[i] > vals[j]:
			return 1
		default:
			return 0
		}
	}
}

// BytesComparator adapts a byte-string column to a RowComparator.
func BytesComparator(vals [][]byte) RowComparator {
	return func(i, j int) int {
		a, b := vals[i], vals[j]
		switch {
		case string(a) < string(b):
			return -1
		case string(a) > string(b):
			return 1
		default:
			return 0
		}
	}
}

// TopN is the heap-based top-n operator (§5.5): it retains the n smallest
// rows under less without sorting the full input.
func TopN(total, n int, less func(i, j int) bool) []int {
	if n <= 0 || total == 0 {
		return nil
	}
	if n > total {
		n = total
	}
	h := &rowHeap{less: func(i, j int) bool { return less(j, i) }} // max-heap of the kept set
	for i := 0; i < total; i++ {
		if h.Len() < n {
			heap.Push(h, i)
		} else if less(i, h.rows[0]) {
			h.rows[0] = i
			heap.Fix(h, 0)
		}
	}
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(int)
	}
	return out
}

type rowHeap struct {
	rows []int
	less func(i, j int) bool
}

func (h *rowHeap) Len() int           { return len(h.rows) }
func (h *rowHeap) Less(a, b int) bool { return h.less(h.rows[a], h.rows[b]) }
func (h *rowHeap) Swap(a, b int)      { h.rows[a], h.rows[b] = h.rows[b], h.rows[a] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.(int)) }
func (h *rowHeap) Pop() any {
	x := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return x
}

// ExternalSortInts sorts vals using at most memBudget values in memory at
// once, spilling sorted runs to tmpDir and k-way merging them — the
// external merge sort operator (§5.5).
func ExternalSortInts(vals []int64, memBudget int, tmpDir string) ([]int64, error) {
	return ExternalSortIntsCtx(context.Background(), vals, memBudget, tmpDir)
}

// ExternalSortIntsCtx is ExternalSortInts with cancellation: the sort
// stops between run spills and periodically during the merge, and every
// temp run file — including a partially written one — is removed on any
// exit path.
func ExternalSortIntsCtx(ctx context.Context, vals []int64, memBudget int, tmpDir string) ([]int64, error) {
	if memBudget <= 0 {
		memBudget = 1 << 20
	}
	if len(vals) <= memBudget {
		out := append([]int64(nil), vals...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	var runs []string
	defer func() {
		for _, r := range runs {
			os.Remove(r)
		}
	}()
	for start := 0; start < len(vals); start += memBudget {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := start + memBudget
		if end > len(vals) {
			end = len(vals)
		}
		run := append([]int64(nil), vals[start:end]...)
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		path := filepath.Join(tmpDir, fmt.Sprintf("run-%d.bin", len(runs)))
		// Register before writing so a failed write's partial file is
		// still removed by the deferred cleanup.
		runs = append(runs, path)
		if err := writeRun(path, run); err != nil {
			return nil, err
		}
	}
	return mergeRuns(ctx, runs, len(vals))
}

func writeRun(path string, run []int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 8*len(run))
	for i, v := range run {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	_, err = f.Write(buf)
	return err
}

type runReader struct {
	f   *os.File
	buf [8]byte
	cur int64
	eof bool
}

func (r *runReader) next() error {
	_, err := io.ReadFull(r.f, r.buf[:])
	if err == io.EOF {
		r.eof = true
		return nil
	}
	if err != nil {
		return err
	}
	r.cur = int64(binary.LittleEndian.Uint64(r.buf[:]))
	return nil
}

type runHeap []*runReader

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(a, b int) bool { return h[a].cur < h[b].cur }
func (h runHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func mergeRuns(ctx context.Context, paths []string, total int) ([]int64, error) {
	h := runHeap{}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r := &runReader{f: f}
		if err := r.next(); err != nil {
			return nil, err
		}
		if !r.eof {
			h = append(h, r)
		}
	}
	heap.Init(&h)
	out := make([]int64, 0, total)
	for h.Len() > 0 {
		if len(out)&8191 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		r := h[0]
		out = append(out, r.cur)
		if err := r.next(); err != nil {
			return nil, err
		}
		if r.eof {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out, nil
}
