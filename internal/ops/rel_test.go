package ops

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/sboost"
)

// relTestReader writes an orders-like probe table: a dict string column
// (cust), a dict int column (date), a plain-ish int (key, delta) and a
// float (price).
func relTestReader(t *testing.T, n int) (*colstore.Reader, string, [][]byte, []int64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	key := make([]int64, n)
	cust := make([][]byte, n)
	date := make([]int64, n)
	price := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		cust[i] = []byte(fmt.Sprintf("cust#%03d", rng.Intn(40)))
		date[i] = int64(1992 + rng.Intn(7))
		price[i] = float64(rng.Intn(10000)) / 100
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "key", Type: colstore.TypeInt64, Encoding: encoding.KindDelta},
		{Name: "cust", Type: colstore.TypeString, Encoding: encoding.KindDict},
		{Name: "date", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
		{Name: "price", Type: colstore.TypeFloat64, Encoding: encoding.KindPlain},
	}}
	path := filepath.Join(t.TempDir(), "rel.cdb")
	err := colstore.WriteFile(path, schema, []colstore.ColumnData{
		{Ints: key}, {Strings: cust}, {Ints: date}, {Floats: price},
	}, colstore.Options{RowGroupRows: 512, PageRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, path, cust, date, price
}

func runRel(t *testing.T, r *colstore.Reader, pl *Plan, rp *RelPlan) *Batch {
	t.Helper()
	pool := exec.NewPool(4)
	b, err := RunRelPipeline(context.Background(), r, pool, pl, rp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRelSemiJoinOnDictKeys checks a semi join probing on dict codes
// against a per-row oracle.
func TestRelSemiJoinOnDictKeys(t *testing.T) {
	const n = 3000
	r, _, cust, date, _ := relTestReader(t, n)
	ci, _, err := r.Column("cust")
	if err != nil {
		t.Fatal(err)
	}
	dict, err := r.StrDict(ci)
	if err != nil {
		t.Fatal(err)
	}
	// Build side: every even dictionary code.
	var keys []int64
	inBuild := map[string]bool{}
	for k := range dict {
		if k%2 == 0 {
			keys = append(keys, int64(k))
			inBuild[string(dict[k])] = true
		}
	}
	pl := BuildPlan(LeafPred(&DictFilter{Col: "date", Op: sboost.OpGe, IntValue: 1995}), r)
	rp := &RelPlan{
		Stages: []RelStage{{
			Name: "build", Kind: RelSemi,
			Keys:  []RelInput{{FromStage: -1, Col: "cust", Kind: RelKey}},
			Table: NewJoinTable(keys),
		}},
		Sink:  RelSink{Inputs: []RelInput{{FromStage: -1, Col: "key", Kind: RelInt}}, Collect: &RelCollect{}},
		Names: []string{"key"},
	}
	b := runRel(t, r, pl, rp)
	want := []int64{}
	for i := 0; i < n; i++ {
		if date[i] >= 1995 && inBuild[string(cust[i])] {
			want = append(want, int64(i))
		}
	}
	if b.N != len(want) {
		t.Fatalf("semi join rows = %d, want %d", b.N, len(want))
	}
	for i, w := range want {
		if b.Ints[0][i] != w {
			t.Fatalf("row %d: key %d, want %d", i, b.Ints[0][i], w)
		}
	}
}

// TestRelInnerJoinPayloadAndGroup checks an inner join attaching build
// payload, grouped on a dict-key column with a payload-side aggregate.
func TestRelInnerJoinPayloadAndGroup(t *testing.T) {
	const n = 2500
	r, _, cust, date, price := relTestReader(t, n)
	ci, _, _ := r.Column("cust")
	dict, _ := r.StrDict(ci)
	// Build: one row per odd dict code, payload weight = code*10.
	var keys []int64
	var weights []int64
	weightOf := map[string]int64{}
	for k := range dict {
		if k%2 == 1 {
			keys = append(keys, int64(k))
			weights = append(weights, int64(k*10))
			weightOf[string(dict[k])] = int64(k * 10)
		}
	}
	pay := (&Batch{}).AddInts("weight", weights)
	rp := &RelPlan{
		Stages: []RelStage{{
			Name: "w", Kind: RelInner,
			Keys:    []RelInput{{FromStage: -1, Col: "cust", Kind: RelKey}},
			Table:   NewJoinTable(keys),
			Payload: pay,
		}},
		Sink: RelSink{
			Inputs: []RelInput{
				{FromStage: -1, Col: "date", Kind: RelInt},
				{FromStage: 0, Col: "weight"},
				{FromStage: -1, Col: "price", Kind: RelFloat},
			},
			Group: &RelGroup{
				Keys: []RelGroupKey{{Input: 0, Lo: 1992, Hi: 1999}},
				Aggs: []RelAgg{
					{Kind: RelAggCount},
					{Kind: RelAggSumInt, Input: 1},
					{Kind: RelAggSumFloat, Input: 2},
				},
			},
		},
		Names: []string{"date", "rows", "wsum", "psum"},
	}
	b := runRel(t, r, nil, rp)
	wantCount := map[int64]int64{}
	wantW := map[int64]int64{}
	wantP := map[int64]float64{}
	for i := 0; i < n; i++ {
		w, ok := weightOf[string(cust[i])]
		if !ok {
			continue
		}
		wantCount[date[i]]++
		wantW[date[i]] += w
		wantP[date[i]] += price[i]
	}
	if b.N != len(wantCount) {
		t.Fatalf("groups = %d, want %d", b.N, len(wantCount))
	}
	for i := 0; i < b.N; i++ {
		d := b.Ints[0][i]
		if i > 0 && d <= b.Ints[0][i-1] {
			t.Fatalf("group keys not sorted: %v", b.Ints[0])
		}
		if b.Ints[1][i] != wantCount[d] {
			t.Errorf("date %d count = %d, want %d", d, b.Ints[1][i], wantCount[d])
		}
		if b.Ints[2][i] != wantW[d] {
			t.Errorf("date %d wsum = %d, want %d", d, b.Ints[2][i], wantW[d])
		}
		if diff := b.Floats[3][i] - wantP[d]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("date %d psum = %v, want %v", d, b.Floats[3][i], wantP[d])
		}
	}
}

// TestRelTopKMatchesFullSort checks the top-K short-circuit returns
// exactly the first K rows of the fully sorted output, ties broken by
// table order.
func TestRelTopKMatchesFullSort(t *testing.T) {
	const n, k = 4000, 25
	r, _, _, _, _ := relTestReader(t, n)
	sink := func(kk int) RelSink {
		return RelSink{
			Inputs: []RelInput{
				{FromStage: -1, Col: "price", Kind: RelFloat},
				{FromStage: -1, Col: "key", Kind: RelInt},
			},
			Collect: &RelCollect{
				Sort: []RelSortKey{{Input: 0, Desc: true}},
				K:    kk,
			},
		}
	}
	top := runRel(t, r, nil, &RelPlan{Sink: sink(k), Names: []string{"price", "key"}})
	full := runRel(t, r, nil, &RelPlan{Sink: sink(0), Names: []string{"price", "key"}})
	if top.N != k {
		t.Fatalf("top-K rows = %d, want %d", top.N, k)
	}
	for i := 0; i < k; i++ {
		if top.Floats[0][i] != full.Floats[0][i] || top.Ints[1][i] != full.Ints[1][i] {
			t.Fatalf("row %d: top (%v, %d) != full (%v, %d)",
				i, top.Floats[0][i], top.Ints[1][i], full.Floats[0][i], full.Ints[1][i])
		}
	}
}

// TestRelLeftJoinAndRowFilter checks left-join miss semantics and a
// residual row filter mixing scan and payload inputs.
func TestRelLeftJoinAndRowFilter(t *testing.T) {
	const n = 1500
	r, _, _, date, _ := relTestReader(t, n)
	// Build keyed on date, only 1992-1994 present; payload cap = year-1990.
	keys := []int64{1992, 1993, 1994}
	pay := (&Batch{}).AddInts("cap", []int64{2, 3, 4})
	rp := &RelPlan{
		Stages: []RelStage{
			{
				Name: "caps", Kind: RelLeft,
				Keys:    []RelInput{{FromStage: -1, Col: "date", Kind: RelInt}},
				Table:   NewJoinTable(keys),
				Payload: pay,
			},
			{
				Name: "residual", Kind: RelRowFilter,
				Inputs: []RelInput{
					{FromStage: 0, Col: "cap"},
					{FromStage: -1, Col: "key", Kind: RelInt},
				},
				// Keep rows whose cap is zero (left miss) or whose key
				// is divisible by cap.
				Keep: func(e *RelEnv, i int) bool {
					c := e.I[0][i]
					return c == 0 || e.I[1][i]%c == 0
				},
			},
		},
		Sink:  RelSink{Inputs: []RelInput{{FromStage: -1, Col: "key", Kind: RelInt}}, Collect: &RelCollect{}},
		Names: []string{"key"},
	}
	b := runRel(t, r, nil, rp)
	want := []int64{}
	capOf := map[int64]int64{1992: 2, 1993: 3, 1994: 4}
	for i := 0; i < n; i++ {
		c := capOf[date[i]]
		if c == 0 || int64(i)%c == 0 {
			want = append(want, int64(i))
		}
	}
	if b.N != len(want) {
		t.Fatalf("rows = %d, want %d", b.N, len(want))
	}
	for i, w := range want {
		if b.Ints[0][i] != w {
			t.Fatalf("row %d: key %d, want %d", i, b.Ints[0][i], w)
		}
	}
}

// TestRelStringGroupKeys exercises the encoded-bytes group key fallback.
func TestRelStringGroupKeys(t *testing.T) {
	const n = 2000
	r, _, cust, date, _ := relTestReader(t, n)
	rp := &RelPlan{
		Sink: RelSink{
			Inputs: []RelInput{
				{FromStage: -1, Col: "cust", Kind: RelStr},
				{FromStage: -1, Col: "date", Kind: RelInt},
			},
			Group: &RelGroup{
				Keys: []RelGroupKey{{Input: 0, Str: true}, {Input: 1}},
				Aggs: []RelAgg{{Kind: RelAggCount}},
			},
		},
		Names: []string{"cust", "date", "rows"},
	}
	b := runRel(t, r, nil, rp)
	want := map[string]int64{}
	for i := 0; i < n; i++ {
		want[fmt.Sprintf("%s|%d", cust[i], date[i])]++
	}
	if b.N != len(want) {
		t.Fatalf("groups = %d, want %d", b.N, len(want))
	}
	for i := 0; i < b.N; i++ {
		kk := fmt.Sprintf("%s|%d", b.Strs[0][i], b.Ints[1][i])
		if b.Ints[2][i] != want[kk] {
			t.Errorf("group %s count = %d, want %d", kk, b.Ints[2][i], want[kk])
		}
		if i > 0 {
			prev := fmt.Sprintf("%s|%d", b.Strs[0][i-1], b.Ints[1][i-1])
			if bytes.Compare(b.Strs[0][i-1], b.Strs[0][i]) > 0 {
				t.Fatalf("string group keys unsorted at %d: %s then %s", i, prev, kk)
			}
		}
	}
}

// TestRelDictJoinNeverDecodesStrings pins the late-materialization
// guarantee: probing a join on a dict-encoded string column reads exactly
// the key pages a raw key gather reads — no value decode, no dictionary
// fault. A value-materializing scan of the same column must read strictly
// more (the dictionary blob), proving the assertion has teeth.
func TestRelDictJoinNeverDecodesStrings(t *testing.T) {
	const n = 3000
	_, path, _, _, _ := relTestReader(t, n)
	pool := exec.NewPool(4)

	measure := func(fn func(rr *colstore.Reader)) colstore.IOStats {
		rr, err := colstore.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer rr.Close()
		fn(rr)
		return rr.Stats()
	}

	// Build keys are dict codes straight from the build side's key space —
	// no probe-side dictionary access needed.
	buildKeys := []int64{0, 2, 4, 6, 8, 10, 12}

	joinIO := measure(func(rr *colstore.Reader) {
		rp := &RelPlan{
			Stages: []RelStage{{
				Name: "b", Kind: RelSemi,
				Keys:  []RelInput{{FromStage: -1, Col: "cust", Kind: RelKey}},
				Table: NewJoinTable(buildKeys),
			}},
			Sink: RelSink{Group: &RelGroup{Aggs: []RelAgg{{Kind: RelAggCount}}}},
			Names: []string{"count"},
		}
		if _, err := RunRelPipeline(context.Background(), rr, pool, nil, rp); err != nil {
			t.Fatal(err)
		}
	})

	keysIO := measure(func(rr *colstore.Reader) {
		ci, _, err := rr.Column("cust")
		if err != nil {
			t.Fatal(err)
		}
		for rg := 0; rg < rr.NumRowGroups(); rg++ {
			bm := fullGroupBitmap(rr.RowGroupRows(rg))
			if _, err := rr.Chunk(rg, ci).GatherKeys(bm); err != nil {
				t.Fatal(err)
			}
		}
	})

	strsIO := measure(func(rr *colstore.Reader) {
		ci, _, err := rr.Column("cust")
		if err != nil {
			t.Fatal(err)
		}
		for rg := 0; rg < rr.NumRowGroups(); rg++ {
			bm := fullGroupBitmap(rr.RowGroupRows(rg))
			if _, err := rr.Chunk(rg, ci).GatherStrings(bm); err != nil {
				t.Fatal(err)
			}
		}
	})

	if joinIO.PagesRead != keysIO.PagesRead || joinIO.BytesRead != keysIO.BytesRead {
		t.Fatalf("dict-key join IO (pages=%d bytes=%d) != raw key gather IO (pages=%d bytes=%d): join touched value data",
			joinIO.PagesRead, joinIO.BytesRead, keysIO.PagesRead, keysIO.BytesRead)
	}
	if strsIO.BytesRead <= keysIO.BytesRead {
		t.Fatalf("string gather bytes %d not > key gather bytes %d: assertion has no teeth",
			strsIO.BytesRead, keysIO.BytesRead)
	}
}

// TestJoinTableReservedKeys checks the PCH-reserved key side lists.
func TestJoinTableReservedKeys(t *testing.T) {
	keys := []int64{int64(-1) << 62, 5, emptyKey, tombKey, 5, emptyKey}
	jt := NewJoinTable(keys)
	if !jt.Contains(emptyKey) || !jt.Contains(tombKey) || !jt.Contains(5) {
		t.Fatal("missing reserved or normal keys")
	}
	var got []int32
	jt.Each(emptyKey, func(r int32) { got = append(got, r) })
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("emptyKey rows = %v, want [2 5]", got)
	}
	got = nil
	jt.Each(5, func(r int32) { got = append(got, r) })
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("key 5 rows = %v, want [1 4]", got)
	}
	if jt.Contains(6) {
		t.Fatal("contains absent key")
	}
}
