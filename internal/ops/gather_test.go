package ops

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
)

// gatherFixture writes a 4-column table across several row groups.
func gatherFixture(t *testing.T) (*colstore.Reader, []int64, []float64, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	const n = 5000
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([][]byte, n)
	words := [][]byte{[]byte("red"), []byte("green"), []byte("blue")}
	for i := 0; i < n; i++ {
		ints[i] = rng.Int63n(100)
		floats[i] = float64(i) / 3
		strs[i] = words[i%3]
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "i", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
		{Name: "f", Type: colstore.TypeFloat64, Encoding: encoding.KindPlain},
		{Name: "s", Type: colstore.TypeString, Encoding: encoding.KindDict},
		{Name: "p", Type: colstore.TypeInt64, Encoding: encoding.KindPlain},
	}}
	path := filepath.Join(t.TempDir(), "g.cdb")
	if err := colstore.WriteFile(path, schema,
		[]colstore.ColumnData{{Ints: ints}, {Floats: floats}, {Strings: strs}, {Ints: ints}},
		colstore.Options{RowGroupRows: 1500, PageRows: 300}); err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, ints, floats, strs
}

func TestGatherHelpersAgainstReference(t *testing.T) {
	r, ints, floats, strs := gatherFixture(t)
	pool := exec.NewPool(4)
	n := int(r.NumRows())
	sel := bitutil.NewSectionalBitmap(n, 1500)
	rng := rand.New(rand.NewSource(32))
	var wantRows []int
	for i := 0; i < n; i++ {
		if rng.Intn(7) == 0 {
			sel.Set(i)
			wantRows = append(wantRows, i)
		}
	}
	gi, err := GatherInts(r, "i", sel, pool)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := GatherFloats(r, "f", sel, pool)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GatherStrings(r, "s", sel, pool)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := GatherInts(r, "p", sel, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(gi) != len(wantRows) {
		t.Fatalf("gathered %d, want %d", len(gi), len(wantRows))
	}
	for k, row := range wantRows {
		if gi[k] != ints[row] || gp[k] != ints[row] {
			t.Fatalf("int row %d mismatch", row)
		}
		if gf[k] != floats[row] {
			t.Fatalf("float row %d mismatch", row)
		}
		if !bytes.Equal(gs[k], strs[row]) {
			t.Fatalf("string row %d mismatch", row)
		}
	}
	// SelectedRows must align with the gathered vectors.
	rows := SelectedRows(sel)
	for k, row := range wantRows {
		if rows[k] != int64(row) {
			t.Fatalf("SelectedRows[%d] = %d, want %d", k, rows[k], row)
		}
	}
	// Keys gather maps through the dictionary consistently.
	keys, err := GatherKeys(r, "i", sel, pool)
	if err != nil {
		t.Fatal(err)
	}
	ci, _, _ := r.Column("i")
	dict, _ := r.IntDict(ci)
	for k := range wantRows {
		if dict[keys[k]] != gi[k] {
			t.Fatalf("key %d does not map back to value", k)
		}
	}
}

func TestGatherNilSelectionEqualsReadAll(t *testing.T) {
	r, ints, floats, strs := gatherFixture(t)
	pool := exec.NewPool(4)
	gi, err := GatherInts(r, "i", nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := ReadAllInts(r, "i", pool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gi, ri) || !reflect.DeepEqual(gi, ints) {
		t.Fatal("nil selection should read everything")
	}
	rf, err := ReadAllFloats(r, "f", pool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rf, floats) {
		t.Fatal("ReadAllFloats mismatch")
	}
	rs, err := ReadAllStrings(r, "s", pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range strs {
		if !bytes.Equal(rs[i], strs[i]) {
			t.Fatalf("string %d mismatch", i)
		}
	}
}

func TestGatherUnknownColumn(t *testing.T) {
	r, _, _, _ := gatherFixture(t)
	pool := exec.NewPool(1)
	for _, err := range []error{
		errOf(GatherInts(r, "nope", nil, pool)),
		errOf(GatherFloats(r, "nope", nil, pool)),
		errOf(GatherStrings(r, "nope", nil, pool)),
		errOf(GatherKeys(r, "nope", nil, pool)),
		errOf(ReadAllInts(r, "nope", pool)),
		errOf(ReadAllFloats(r, "nope", pool)),
		errOf(ReadAllStrings(r, "nope", pool)),
	} {
		if err == nil {
			t.Fatal("unknown column should error")
		}
	}
}

func errOf[T any](_ T, err error) error { return err }

func TestDictIntPredFilterDirect(t *testing.T) {
	r, ints, _, _ := gatherFixture(t)
	pool := exec.NewPool(2)
	f := &DictIntPredFilter{Col: "i", Pred: func(v int64) bool { return v%7 == 0 }}
	bm, err := f.Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ints {
		if bm.Get(i) != (v%7 == 0) {
			t.Fatalf("row %d (value %d)", i, v)
		}
	}
	// Predicate on a string column must be rejected.
	if _, err := (&DictIntPredFilter{Col: "s", Pred: func(int64) bool { return true }}).Apply(r, pool); err == nil {
		t.Fatal("string column should be rejected")
	}
}

func TestFloatPredicateFilterDirect(t *testing.T) {
	r, _, floats, _ := gatherFixture(t)
	pool := exec.NewPool(2)
	bm, err := (&FloatPredicateFilter{Col: "f", Pred: func(v float64) bool { return v > 1000 }}).Apply(r, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range floats {
		if bm.Get(i) != (v > 1000) {
			t.Fatalf("row %d", i)
		}
	}
}

func TestPCHKeysAccessor(t *testing.T) {
	m := NewPCH(8)
	m.Insert(10, 1)
	m.Insert(20, 2)
	m.Delete(10)
	keys := m.Keys()
	if len(keys) != 1 || keys[0] != 20 {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestNonDictKeysRejected(t *testing.T) {
	r, _, _, _ := gatherFixture(t)
	pool := exec.NewPool(1)
	sel := bitutil.NewSectionalBitmap(int(r.NumRows()), 1500)
	sel.Set(0)
	if _, err := GatherKeys(r, "p", sel, pool); err == nil {
		t.Fatal("plain column has no dictionary keys")
	}
}
