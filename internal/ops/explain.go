package ops

import (
	"bytes"
	"context"
	"fmt"
	"runtime"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
)

// This file is the observability seam for the operator layer: filter and
// gather calls route through traced wrappers when the context carries an
// obs.Span, and stay byte-for-byte on the untraced path otherwise. IO is
// attributed to spans by before/after deltas of the reader's counters, so
// per-node page totals always sum to the reader's IOStats for the query.
// Instrumentation lives here in the wrappers — never inside ApplyCtx —
// which keeps the kernels clean and lets tests assert the disabled-tracer
// path adds zero allocations.

// FilterName returns a short operator label for a filter, e.g.
// "DictFilter(shipdate < 40)".
func FilterName(f Filter) string {
	switch f := f.(type) {
	case *DictFilter:
		if f.StrValue != nil {
			return fmt.Sprintf("DictFilter(%s %s %q)", f.Col, f.Op, f.StrValue)
		}
		return fmt.Sprintf("DictFilter(%s %s %d)", f.Col, f.Op, f.IntValue)
	case *DictInFilter:
		n := len(f.IntValues)
		if n == 0 {
			n = len(f.StrValues)
		}
		return fmt.Sprintf("DictInFilter(%s IN <%d values>)", f.Col, n)
	case *DictLikeFilter:
		return fmt.Sprintf("DictLikeFilter(%s LIKE ...)", f.Col)
	case *DictIntPredFilter:
		return fmt.Sprintf("DictIntPredFilter(%s)", f.Col)
	case *BitPackedFilter:
		return fmt.Sprintf("BitPackedFilter(%s %s %d)", f.Col, f.Op, f.Value)
	case *DeltaFilter:
		return fmt.Sprintf("DeltaFilter(%s %s %d)", f.Col, f.Op, f.Value)
	case *TwoColumnFilter:
		return fmt.Sprintf("TwoColumnFilter(%s %s %s)", f.ColA, f.Op, f.ColB)
	case *IntPredicateFilter:
		return fmt.Sprintf("IntPredicateFilter(%s)", f.Col)
	case *StrPredicateFilter:
		return fmt.Sprintf("StrPredicateFilter(%s)", f.Col)
	case *FloatPredicateFilter:
		return fmt.Sprintf("FloatPredicateFilter(%s)", f.Col)
	default:
		return fmt.Sprintf("%T", f)
	}
}

// DescribeFilter reports the plan choices the filter will make against r:
// dictionary predicate rewrites (including provably-empty/all outcomes),
// the SBoost kernel selected, and whether zone maps can dispose pages.
// It re-runs the same decision procedures the apply paths use, without
// touching any packed data.
func DescribeFilter(f Filter, r *colstore.Reader) []string {
	switch f := f.(type) {
	case *DictFilter:
		ci, col, err := r.Column(f.Col)
		if err != nil {
			return []string{"error: " + err.Error()}
		}
		lb, exact, dictLen, err := dictLowerBound(r, ci, col, f.IntValue, f.StrValue)
		if err != nil {
			return []string{"error: " + err.Error()}
		}
		op, match, all := rewriteDictPredicate(f.Op, lb, exact, dictLen)
		switch {
		case all:
			return []string{fmt.Sprintf("dict rewrite: provably all rows (dict=%d entries, no scan)", dictLen)}
		case !match:
			return []string{fmt.Sprintf("dict rewrite: provably empty (dict=%d entries, no scan)", dictLen)}
		}
		return []string{
			fmt.Sprintf("dict rewrite: value %s → key %s %d (dict=%d entries, exact=%v)", f.Op, op, lb, dictLen, exact),
			"kernel=sboost.ScanPacked",
			"zone-maps=key-domain min/max per page",
		}
	case *DictInFilter:
		keys, err := describeResolveIn(f, r)
		if err != nil {
			return []string{"error: " + err.Error()}
		}
		return append([]string{fmt.Sprintf("dict rewrite: %d of %d IN values present as keys",
			keys, len(f.IntValues)+len(f.StrValues))}, describeKeysIn(keys)...)
	case *DictLikeFilter:
		return []string{
			"LIKE rewrite: pattern evaluated per dictionary entry, matches become an IN key set",
			"zone-maps=key-domain per page (prune when no key in [min,max])",
		}
	case *DictIntPredFilter:
		return []string{
			"predicate rewrite: evaluated per dictionary entry, matches become an IN key set",
			"zone-maps=key-domain per page (prune when no key in [min,max])",
		}
	case *BitPackedFilter:
		zz := func(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
		op, target, match, all := rewriteZigzagPredicate(f.Op, f.Value, zz)
		switch {
		case all:
			return []string{"zigzag rewrite: provably all rows (negative target, no scan)"}
		case !match:
			return []string{"zigzag rewrite: provably empty (negative target, no scan)"}
		}
		return []string{
			fmt.Sprintf("zigzag rewrite: value %s %d → packed %s %d (in-situ on chunks with min >= 0, else decode-and-test)",
				f.Op, f.Value, op, target),
			"kernel=sboost.ScanPacked",
			"zone-maps=zigzag-domain min/max per page",
		}
	case *DeltaFilter:
		return []string{
			fmt.Sprintf("delta scan: SWAR cumulative-sum reconstruct, compare %s %d", f.Op, f.Value),
			"kernel=sboost.CumSum",
		}
	case *TwoColumnFilter:
		return []string{
			"two-column compare: shared order-preserving dictionary, packed key streams compared directly",
			"kernel=sboost.CompareStreams",
		}
	case *IntPredicateFilter, *StrPredicateFilter, *FloatPredicateFilter:
		return []string{"encoding-oblivious: decode every row, test predicate"}
	default:
		return nil
	}
}

// describeResolveIn counts how many IN values resolve to dictionary keys,
// mirroring DictInFilter.ApplyCtx's resolution.
func describeResolveIn(f *DictInFilter, r *colstore.Reader) (int, error) {
	ci, col, err := r.Column(f.Col)
	if err != nil {
		return 0, err
	}
	n := 0
	switch col.Type {
	case colstore.TypeInt64:
		dict, err := r.IntDict(ci)
		if err != nil {
			return 0, err
		}
		for _, v := range f.IntValues {
			lb := lowerBoundInt(dict, v)
			if lb < int64(len(dict)) && dict[lb] == v {
				n++
			}
		}
	case colstore.TypeString:
		dict, err := r.StrDict(ci)
		if err != nil {
			return 0, err
		}
		for _, v := range f.StrValues {
			lb := lowerBoundStr(dict, v)
			if lb < int64(len(dict)) && bytes.Equal(dict[lb], v) {
				n++
			}
		}
	}
	return n, nil
}

// describeKeysIn names the scan strategy scanKeysIn will pick for a key
// set of the given size (the contiguity and width checks are data-
// dependent, so the description covers the candidates).
func describeKeysIn(keys int) []string {
	switch {
	case keys == 0:
		return []string{"kernel=none (empty key set, provably empty)"}
	case keys <= swarInThreshold:
		return []string{fmt.Sprintf("kernel=sboost.ScanPackedRange if keys contiguous, else ScanPackedIn (SWAR disjunction, %d keys)", keys)}
	default:
		return []string{fmt.Sprintf("kernel=sboost.ScanPackedRange if keys contiguous, else lookup table (%d keys; ScanPackedIn above width 24)", keys)}
	}
}

// ioDelta converts a before/after pair of reader snapshots into span IO.
func ioDelta(before, after colstore.IOStats) obs.SpanIO {
	return obs.SpanIO{
		PagesRead:         after.PagesRead - before.PagesRead,
		PagesPruned:       after.PagesPruned - before.PagesPruned,
		PagesSkipped:      after.PagesSkipped - before.PagesSkipped,
		BytesRead:         after.BytesRead - before.BytesRead,
		BytesDecompressed: after.BytesDecompressed - before.BytesDecompressed,
	}
}

// applyFilterTraced is ApplyFilter with a span: it opens a child span
// named for the filter, records the plan choices, runs the filter, and
// attributes the IO delta, pool task count, row counts, and alloc bytes.
// With a selection the span's rows-in is the selection cardinality — the
// rows this operator actually had to consider — rather than the table size.
func applyFilterTraced(ctx context.Context, parent *obs.Span, f Filter, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	return applyFilterTracedEst(ctx, parent, f, r, pool, sel, nil)
}

// applyFilterTracedEst is applyFilterTraced plus the planner's estimate:
// when est is non-nil the span carries an estimated-vs-actual selectivity
// line, the EXPLAIN ANALYZE evidence for the chosen conjunct order.
func applyFilterTracedEst(ctx context.Context, parent *obs.Span, f Filter, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap, est *PredEstimate) (*bitutil.SectionalBitmap, error) {
	child := parent.StartChild("Filter[" + FilterName(f) + "]")
	// Snapshot before describing: plan resolution may lazily fault in the
	// column dictionary, and that IO belongs to this operator's span (the
	// span sums must equal the reader's IOStats delta for the query).
	ioBefore := r.Stats()
	tasksBefore := pool.Completed()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	for _, d := range DescribeFilter(f, r) {
		child.AddDetail("%s", d)
	}
	rowsIn := r.NumRows()
	if sel != nil {
		rowsIn = int64(sel.Cardinality())
		child.AddDetail("selection-pushed: %d of %d rows remain", rowsIn, r.NumRows())
	}

	bm, err := applyFilterRaw(ctx, f, r, pool, sel)

	runtime.ReadMemStats(&msAfter)
	child.AddIO(ioDelta(ioBefore, r.Stats()))
	child.AddTasks(pool.Completed() - tasksBefore)
	child.SetAllocBytes(msAfter.TotalAlloc - msBefore.TotalAlloc)
	if err != nil {
		child.AddDetail("error=%v", err)
	} else if bm != nil {
		if est != nil {
			child.AddDetail("selectivity est=%.4f actual=%.4f", est.Sel, actualSel(bm, rowsIn))
		}
		child.SetRows(rowsIn, int64(bm.Cardinality()))
	}
	child.End()
	return bm, err
}
