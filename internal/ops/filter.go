// Package ops implements CodecDB's query operators (paper §5.3–§5.5):
// encoding-aware filters built on the SBoost in-situ scan kernels
// (dictionary predicates, LIKE/IN rewriting, two-column packed comparison,
// delta filtering via SWAR cumulative sum), array and stripe-hash
// aggregation, phase-concurrent hash joins, sorts, and top-n — plus the
// encoding-oblivious versions of each operator that the micro-benchmarks
// (Fig 6) compare against.
//
// Filter operators return sectional bitmaps with one section per row
// group, the shape the data-skipping column readers consume (§5.1, §5.2).
package ops

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"codecdb/internal/arena"
	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
	"codecdb/internal/sboost"
)

// NewTableBitmap creates an all-zero sectional bitmap shaped to the
// reader's row groups.
func NewTableBitmap(r *colstore.Reader) *bitutil.SectionalBitmap {
	section := 1
	if r.NumRowGroups() > 0 {
		section = r.RowGroupRows(0)
	}
	if section == 0 {
		section = 1
	}
	return bitutil.NewSectionalBitmap(int(r.NumRows()), section)
}

// FullTableBitmap creates an all-ones sectional bitmap (no predicate).
func FullTableBitmap(r *colstore.Reader) *bitutil.SectionalBitmap {
	s := NewTableBitmap(r)
	for rg := 0; rg < r.NumRowGroups(); rg++ {
		bm := bitutil.NewBitmap(r.RowGroupRows(rg))
		bm.SetAll()
		s.SetSection(rg, bm)
	}
	return s
}

// Filter evaluates a predicate over one table and yields a sectional
// bitmap.
type Filter interface {
	Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error)
}

// ContextFilter is implemented by filters that honor cancellation and
// deadlines mid-scan. All filters in this package implement it; Apply is
// ApplyCtx with context.Background().
type ContextFilter interface {
	Filter
	ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error)
}

// SelectionFilter is implemented by filters that consume an input selection
// (paper §5.2's lazy pipelined evaluation): rows outside sel are never
// evaluated, row groups and pages whose selection is empty are never
// fetched, and the result is always a subset of sel. A nil selection means
// "all rows" and degrades to ApplyCtx behaviour. All filters in this
// package implement it.
type SelectionFilter interface {
	Filter
	ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error)
}

// ApplyFilter runs f under ctx, pushing the selection sel into the scan
// when f supports it (nil sel means no restriction). External Filter
// implementations without selection or context support still work: their
// result is intersected with sel afterwards, preserving the subset
// invariant the pipelined executor relies on. When ctx carries an obs.Span
// the call is traced as a child span (see explain.go); with no span the
// only added cost is one context lookup.
func ApplyFilter(ctx context.Context, f Filter, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	if sp := obs.SpanFrom(ctx); sp != nil {
		return applyFilterTraced(ctx, sp, f, r, pool, sel)
	}
	return applyFilterRaw(ctx, f, r, pool, sel)
}

// applyFilterRaw is ApplyFilter without the tracing wrapper.
func applyFilterRaw(ctx context.Context, f Filter, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	if sel != nil {
		if sf, ok := f.(SelectionFilter); ok {
			return sf.ApplySel(ctx, r, pool, sel)
		}
	}
	var bm *bitutil.SectionalBitmap
	var err error
	if cf, ok := f.(ContextFilter); ok {
		bm, err = cf.ApplyCtx(ctx, r, pool)
	} else {
		bm, err = f.Apply(r, pool)
	}
	if err == nil && sel != nil && bm != nil {
		bm.And(sel)
	}
	return bm, err
}

// filterRG is the single-row-group filter kernel: evaluate one prepared
// predicate against row group rg, restricted to secSel (nil means every
// row of the group), using the worker-local scratch sc, and return the
// group-local match bitmap. A non-nil tap attributes the kernel's page IO
// to the caller (one pipeline stage on one worker). Kernels are created
// per worker via preparedFilter.newKernel, so any lazily built per-worker
// state (lookup tables) lives in the kernel closure and is never shared.
type filterRG func(ctx context.Context, rg int, sc *arena.Scratch, secSel *bitutil.Bitmap, tap *colstore.IOTap) (*bitutil.Bitmap, error)

// preparedFilter is a filter resolved against one reader: per-query work
// (column lookup, dictionary probes, predicate rewrites) is done once at
// prepare time, leaving a kernel that any worker can run against any row
// group. It is the unit both execution strategies consume — the legacy
// barrier sweep (applyPrepared) and the morsel pipeline (pipeline.go).
type preparedFilter struct {
	// empty marks the whole predicate provably false (e.g. equality on a
	// value absent from the dictionary): no row group is visited and no
	// counter moves, matching the historical early-return.
	empty bool
	// newKernel builds one worker-private kernel instance.
	newKernel func() filterRG
	// skip records the pages of row group rg as selection-skipped without
	// evaluating the kernel — used when the incoming selection already
	// rules out every row of the group.
	skip func(rg int, tap *colstore.IOTap)
	// sched predicts, from metadata alone, which pages the unrestricted
	// kernel will fetch for row group rg — the input to the prefetcher's
	// coalescing schedule. Bytes are booked only when a page is served,
	// so an over-approximation is safe (just wasted read-ahead), but a
	// precise schedule mirrors the kernel's own zone-map dispositions.
	// sched runs before any worker and must not touch taps or counters.
	// Nil means the filter cannot predict its reads; the pipeline then
	// runs it without prefetch.
	sched func(rg int) []schedSet
}

// preparable is implemented by every filter in this package; the morsel
// pipeline compiles plan leaves through it.
type preparable interface {
	Filter
	prepare(r *colstore.Reader) (preparedFilter, error)
}

// skipWholeChunk is the common skip behaviour: mark every page of the
// row group's chunk as bypassed by selection pushdown.
func skipWholeChunk(r *colstore.Reader, ci int) func(rg int, tap *colstore.IOTap) {
	return func(rg int, tap *colstore.IOTap) {
		chunk := r.Chunk(rg, ci).Tap(tap)
		chunk.MarkSkipped(chunk.NumPages())
	}
}

// applyPrepared runs a prepared filter over all row groups with the
// operator-at-a-time barrier strategy: one parallel sweep, one kernel and
// one scratch per worker, sections installed as they complete. Every
// ApplySel entry point is a thin wrapper over this — the same kernels the
// morsel pipeline drives row group by row group.
func applyPrepared(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap, pf preparedFilter) (*bitutil.SectionalBitmap, error) {
	out := NewTableBitmap(r)
	if pf.empty {
		return out, nil
	}
	err := pool.ParallelChunksErr(ctx, r.NumRowGroups(), func(start, end int) error {
		sc := arena.Get()
		defer arena.Put(sc)
		kern := pf.newKernel()
		for rg := start; rg < end; rg++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			secSel, skip := sectionSelection(sel, rg)
			if skip {
				pf.skip(rg, nil)
				continue
			}
			section, err := kern(ctx, rg, sc, secSel, nil)
			if err != nil {
				return err
			}
			finishSection(out, rg, section, secSel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mergePage transfers a page-local result bitmap into the section bitmap
// at row offset firstRow. Word-aligned offsets (the common case: page rows
// are multiples of 64) copy whole words.
func mergePage(section *bitutil.Bitmap, page *bitutil.Bitmap, firstRow int) {
	if firstRow%64 == 0 {
		dst := section.Words()[firstRow/64:]
		src := page.Words()
		for i := 0; i < len(src) && i < len(dst); i++ {
			dst[i] |= src[i]
		}
		section.Mask()
		return
	}
	page.ForEach(func(i int) { section.Set(firstRow + i) })
}

// DictFilter is the single-column comparison on a dictionary-encoded
// column (§5.3): the predicate value is translated to a key through the
// order-preserving dictionary and the bit-packed key stream is scanned in
// place — no row is decoded.
type DictFilter struct {
	Col string
	Op  sboost.Op
	// Exactly one of IntValue/StrValue is used, matching the column type.
	IntValue int64
	StrValue []byte
}

// Apply runs the filter.
func (f *DictFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *DictFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *DictFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare resolves the predicate value through the dictionary once and
// yields the per-row-group scan kernel.
func (f *DictFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, col, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	lb, exact, dictLen, err := dictLowerBound(r, ci, col, f.IntValue, f.StrValue)
	if err != nil {
		return preparedFilter{}, err
	}
	op, match, all := rewriteDictPredicate(f.Op, lb, exact, dictLen)
	pf := preparedFilter{skip: skipWholeChunk(r, ci)}
	if !match && !all {
		pf.empty = true // e.g. equality on a value absent from the dictionary
		return pf, nil
	}
	pf.newKernel = func() filterRG {
		return func(ctx context.Context, rg int, sc *arena.Scratch, secSel *bitutil.Bitmap, tap *colstore.IOTap) (*bitutil.Bitmap, error) {
			section := bitutil.NewBitmap(r.RowGroupRows(rg))
			if all {
				section.SetAll()
				return section, nil
			}
			chunk := r.Chunk(rg, ci).Tap(tap).Fetch(colstore.FetcherFrom(ctx))
			for p := 0; p < chunk.NumPages(); p++ {
				if secSel != nil && !chunk.PageSelected(secSel, p) {
					chunk.MarkSkipped(1)
					continue
				}
				// Dictionary keys are order-preserving, so the key-domain
				// zone map disposes every operator soundly.
				if st := chunk.PageStatsOf(p); st != nil {
					switch sboost.Dispose(op, uint64(lb), st.Min, st.Max) {
					case sboost.DispNone:
						chunk.MarkPruned()
						continue
					case sboost.DispAll:
						first, last := chunk.PageRowRange(p)
						section.SetRange(first, last)
						chunk.MarkPruned()
						continue
					}
				}
				pp, err := chunk.PackedPageAt(p, sc)
				if err != nil {
					return nil, err
				}
				bm := sc.Bitmap(pp.N)
				sboost.ScanPackedIntoSel(bm, pp.Data, pp.Width, op, uint64(lb), secSel, pp.FirstRow)
				mergePage(section, bm, pp.FirstRow)
			}
			return section, nil
		}
	}
	if !all {
		// Mirror the kernel's zone-map walk over metadata: only DispMixed
		// pages (and pages with no zone map) are ever fetched.
		pf.sched = func(rg int) []schedSet {
			chunk := r.Chunk(rg, ci)
			var pages []int
			for p := 0; p < chunk.NumPages(); p++ {
				if st := chunk.PageStatsOf(p); st != nil {
					if sboost.Dispose(op, uint64(lb), st.Min, st.Max) != sboost.DispMixed {
						continue
					}
				}
				pages = append(pages, p)
			}
			return []schedSet{{col: ci, pages: pages}}
		}
	}
	return pf, nil
}

// sectionSelection resolves the selection for row group rg: (nil, false)
// when sel is nil (no restriction), (nil, true) when the section is empty —
// the caller skips the group entirely — and (bitmap, false) otherwise.
// Workers touch disjoint row groups, so the lazy decompression inside
// Section is race-free.
func sectionSelection(sel *bitutil.SectionalBitmap, rg int) (*bitutil.Bitmap, bool) {
	if sel == nil {
		return nil, false
	}
	if sel.SectionEmpty(rg) {
		return nil, true
	}
	return sel.Section(rg), false
}

// finishSection intersects the section result with the selection — the
// cheap word-parallel pass that keeps the subset invariant across paths
// that set rows wholesale (zone-map DispAll ranges, provably-all rewrites)
// — and installs it into out.
func finishSection(out *bitutil.SectionalBitmap, rg int, section, secSel *bitutil.Bitmap) {
	if secSel != nil {
		section.And(secSel)
	}
	out.SetSection(rg, section)
}

// dictLowerBound resolves the predicate value against the column's global
// dictionary: the smallest key whose entry is >= value, and whether the
// value is present exactly.
func dictLowerBound(r *colstore.Reader, ci int, col *colstore.Column, iv int64, sv []byte) (lb int64, exact bool, dictLen int, err error) {
	switch col.Type {
	case colstore.TypeInt64:
		dict, err := r.IntDict(ci)
		if err != nil {
			return 0, false, 0, err
		}
		lb = lowerBoundInt(dict, iv)
		exact = lb < int64(len(dict)) && dict[lb] == iv
		return lb, exact, len(dict), nil
	case colstore.TypeString:
		dict, err := r.StrDict(ci)
		if err != nil {
			return 0, false, 0, err
		}
		lb = lowerBoundStr(dict, sv)
		exact = lb < int64(len(dict)) && bytes.Equal(dict[lb], sv)
		return lb, exact, len(dict), nil
	}
	return 0, false, 0, fmt.Errorf("ops: dictionary filter on %v column", col.Type)
}

// rewriteDictPredicate maps a value-domain comparison to a key-domain
// comparison against the lower-bound key. match=false means the result is
// provably empty; all=true means provably every row matches.
func rewriteDictPredicate(op sboost.Op, lb int64, exact bool, dictLen int) (sboost.Op, bool, bool) {
	switch op {
	case sboost.OpEq:
		return sboost.OpEq, exact, false
	case sboost.OpNe:
		if !exact {
			return 0, false, true
		}
		return sboost.OpNe, true, false
	case sboost.OpLt:
		if lb == 0 {
			return 0, false, false
		}
		if lb >= int64(dictLen) {
			return 0, false, true // every entry is below the probe value
		}
		return sboost.OpLt, true, false
	case sboost.OpLe:
		if exact {
			return sboost.OpLe, true, false
		}
		if lb == 0 {
			return 0, false, false
		}
		if lb >= int64(dictLen) {
			return 0, false, true
		}
		return sboost.OpLt, true, false
	case sboost.OpGt:
		if exact {
			return sboost.OpGt, true, false
		}
		if lb >= int64(dictLen) {
			return 0, false, false
		}
		return sboost.OpGe, true, false
	case sboost.OpGe:
		if lb >= int64(dictLen) {
			return 0, false, false
		}
		return sboost.OpGe, true, false
	}
	return 0, false, false
}

func lowerBoundInt(dict []int64, v int64) int64 {
	lo, hi := 0, len(dict)
	for lo < hi {
		mid := (lo + hi) / 2
		if dict[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

func lowerBoundStr(dict [][]byte, v []byte) int64 {
	lo, hi := 0, len(dict)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(dict[mid], v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

// DictInFilter is `col IN (v1, v2, ...)` on a dictionary column: each
// value resolves to a key and the packed stream is scanned once with the
// disjunction of equalities (§5.3, e.g. l_shipmode IN ('MAIL','SHIP')).
type DictInFilter struct {
	Col       string
	IntValues []int64
	StrValues [][]byte
}

// Apply runs the filter.
func (f *DictInFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *DictInFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *DictInFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare resolves each IN value to its dictionary key once.
func (f *DictInFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, col, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	var keys []uint64
	switch col.Type {
	case colstore.TypeInt64:
		dict, err := r.IntDict(ci)
		if err != nil {
			return preparedFilter{}, err
		}
		for _, v := range f.IntValues {
			lb := lowerBoundInt(dict, v)
			if lb < int64(len(dict)) && dict[lb] == v {
				keys = append(keys, uint64(lb))
			}
		}
	case colstore.TypeString:
		dict, err := r.StrDict(ci)
		if err != nil {
			return preparedFilter{}, err
		}
		for _, v := range f.StrValues {
			lb := lowerBoundStr(dict, v)
			if lb < int64(len(dict)) && bytes.Equal(dict[lb], v) {
				keys = append(keys, uint64(lb))
			}
		}
	default:
		return preparedFilter{}, fmt.Errorf("ops: IN filter on %v column", col.Type)
	}
	return prepareKeysIn(r, ci, keys), nil
}

// DictLikeFilter is `col LIKE pattern` on a dictionary string column
// (§5.3): the pattern is evaluated once per dictionary entry — thousands
// of entries, not millions of rows — and the matching keys become one
// IN-scan over the packed keys.
type DictLikeFilter struct {
	Col string
	// Match decides whether a dictionary entry satisfies the pattern.
	Match func([]byte) bool
}

// Apply runs the filter.
func (f *DictLikeFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *DictLikeFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *DictLikeFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare evaluates the pattern over the dictionary once.
func (f *DictLikeFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, col, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	if col.Type != colstore.TypeString {
		return preparedFilter{}, fmt.Errorf("ops: LIKE filter on %v column", col.Type)
	}
	dict, err := r.StrDict(ci)
	if err != nil {
		return preparedFilter{}, err
	}
	var keys []uint64
	for k, e := range dict {
		if f.Match(e) {
			keys = append(keys, uint64(k))
		}
	}
	return prepareKeysIn(r, ci, keys), nil
}

// BitPackedFilter compares a bit-packed integer column against a constant
// in place (§5.3's core SBoost capability). Entries are stored
// zigzag-mapped; equality rewrites directly, and order comparisons
// rewrite when the chunk holds no negatives (zigzag is monotone on
// non-negative values, which the chunk statistics prove). Chunks with
// negatives fall back to decode-and-test.
type BitPackedFilter struct {
	Col   string
	Op    sboost.Op
	Value int64
}

// Apply runs the filter.
func (f *BitPackedFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *BitPackedFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *BitPackedFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare validates the column and yields the per-row-group kernel. The
// in-situ/decode decision stays inside the kernel: it depends on each
// chunk's statistics.
func (f *BitPackedFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, col, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	if col.Encoding != encoding.KindBitPacked || col.Type != colstore.TypeInt64 {
		return preparedFilter{}, fmt.Errorf("ops: bit-packed filter needs a bit-packed int column")
	}
	zz := func(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
	pf := preparedFilter{skip: skipWholeChunk(r, ci)}
	pf.newKernel = func() filterRG {
		return func(ctx context.Context, rg int, sc *arena.Scratch, secSel *bitutil.Bitmap, tap *colstore.IOTap) (*bitutil.Bitmap, error) {
			chunk := r.Chunk(rg, ci).Tap(tap).Fetch(colstore.FetcherFrom(ctx))
			section := bitutil.NewBitmap(chunk.Rows())
			inSitu := f.Op == sboost.OpEq || f.Op == sboost.OpNe || chunk.Stats().MinInt >= 0
			if !inSitu {
				// Negatives present: decode-and-test for this chunk,
				// gathering only the selected rows when a selection exists.
				if secSel != nil {
					vals, err := chunk.GatherInts(secSel)
					if err != nil {
						return nil, err
					}
					i := 0
					secSel.ForEach(func(row int) {
						if chunkMatch(vals[i], f.Op, f.Value) {
							section.Set(row)
						}
						i++
					})
					return section, nil
				}
				vals, err := chunk.Ints()
				if err != nil {
					return nil, err
				}
				for i, v := range vals {
					if chunkMatch(v, f.Op, f.Value) {
						section.Set(i)
					}
				}
				return section, nil
			}
			op, target, match, all := rewriteZigzagPredicate(f.Op, f.Value, zz)
			if all {
				section.SetAll()
				return section, nil
			}
			if !match {
				return section, nil
			}
			for p := 0; p < chunk.NumPages(); p++ {
				if secSel != nil && !chunk.PageSelected(secSel, p) {
					chunk.MarkSkipped(1)
					continue
				}
				// The zone map is in the zigzag domain, exactly where op and
				// target now live: equality disposes soundly everywhere
				// (zigzag is a bijection), and order ops only reach this
				// path on chunks proven non-negative, where zigzag is
				// monotone.
				if st := chunk.PageStatsOf(p); st != nil {
					switch sboost.Dispose(op, target, st.Min, st.Max) {
					case sboost.DispNone:
						chunk.MarkPruned()
						continue
					case sboost.DispAll:
						first, last := chunk.PageRowRange(p)
						section.SetRange(first, last)
						chunk.MarkPruned()
						continue
					}
				}
				pp, err := chunk.PackedPageAt(p, sc)
				if err != nil {
					return nil, err
				}
				// A target wider than the page's packed width cannot occur
				// in the page: resolve the comparison statically instead of
				// letting the broadcast wrap.
				if pp.Width < 64 && target >= 1<<pp.Width {
					switch op {
					case sboost.OpNe, sboost.OpLt, sboost.OpLe:
						first, last := chunk.PageRowRange(p)
						section.SetRange(first, last)
					}
					continue // Eq/Gt/Ge: no rows in this page match
				}
				bm := sc.Bitmap(pp.N)
				sboost.ScanPackedIntoSel(bm, pp.Data, pp.Width, op, target, secSel, pp.FirstRow)
				mergePage(section, bm, pp.FirstRow)
			}
			return section, nil
		}
	}
	pf.sched = func(rg int) []schedSet {
		chunk := r.Chunk(rg, ci)
		inSitu := f.Op == sboost.OpEq || f.Op == sboost.OpNe || chunk.Stats().MinInt >= 0
		var pages []int
		if !inSitu {
			// Decode-and-test reads every page of the chunk.
			for p := 0; p < chunk.NumPages(); p++ {
				pages = append(pages, p)
			}
			return []schedSet{{col: ci, pages: pages}}
		}
		op, target, match, all := rewriteZigzagPredicate(f.Op, f.Value, zz)
		if all || !match {
			return nil
		}
		for p := 0; p < chunk.NumPages(); p++ {
			if st := chunk.PageStatsOf(p); st != nil {
				if sboost.Dispose(op, target, st.Min, st.Max) != sboost.DispMixed {
					continue
				}
			}
			pages = append(pages, p)
		}
		return []schedSet{{col: ci, pages: pages}}
	}
	return pf, nil
}

// rewriteZigzagPredicate maps a value-domain comparison onto the zigzag
// packed domain for chunks known non-negative. A negative target against
// non-negative data resolves to provably-all or provably-none.
func rewriteZigzagPredicate(op sboost.Op, v int64, zz func(int64) uint64) (sboost.Op, uint64, bool, bool) {
	if op == sboost.OpEq || op == sboost.OpNe {
		return op, zz(v), true, false
	}
	if v < 0 {
		switch op {
		case sboost.OpLt, sboost.OpLe:
			return 0, 0, false, false // nothing below a negative target
		default:
			return 0, 0, false, true // everything above it
		}
	}
	// zigzag(x) = 2x for x >= 0, strictly increasing: compare directly.
	return op, zz(v), true, false
}

// DictIntPredFilter evaluates an arbitrary predicate over the entries of
// an integer dictionary — once per distinct value, not once per row — and
// scans the packed keys with the resulting IN-set. It generalises the
// LIKE rewrite to computed predicates (e.g. "week-in-year of this date
// key is 6").
type DictIntPredFilter struct {
	Col  string
	Pred func(int64) bool
}

// Apply runs the filter.
func (f *DictIntPredFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *DictIntPredFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *DictIntPredFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare evaluates the predicate over the dictionary once.
func (f *DictIntPredFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, col, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	if col.Type != colstore.TypeInt64 {
		return preparedFilter{}, fmt.Errorf("ops: dict int predicate on %v column", col.Type)
	}
	dict, err := r.IntDict(ci)
	if err != nil {
		return preparedFilter{}, err
	}
	var keys []uint64
	for k, e := range dict {
		if f.Pred(e) {
			keys = append(keys, uint64(k))
		}
	}
	return prepareKeysIn(r, ci, keys), nil
}

// swarInThreshold is the IN-set size above which the per-target SWAR
// disjunction loses to a single lookup-table pass.
const swarInThreshold = 8

// scanKeysIn scans packed keys for membership in keys. A non-nil sel
// restricts the scan to the selected rows.
func scanKeysIn(ctx context.Context, r *colstore.Reader, ci int, keys []uint64, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	return applyPrepared(ctx, r, pool, sel, prepareKeysIn(r, ci, keys))
}

// prepareKeysIn builds the IN-set membership kernel, choosing the cheapest
// strategy: a contiguous key set becomes one SWAR range scan, a small set
// the SWAR disjunction, and a large scattered set a lookup table.
func prepareKeysIn(r *colstore.Reader, ci int, keys []uint64) preparedFilter {
	pf := preparedFilter{skip: skipWholeChunk(r, ci)}
	if len(keys) == 0 {
		pf.empty = true
		return pf
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Collapse duplicates: a multiset like [1,3,3] would otherwise pass the
	// contiguity test and widen the range scan to keys never asked for.
	uniq := sorted[:1]
	for _, k := range sorted[1:] {
		if k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	sorted = uniq
	lo, hi := sorted[0], sorted[len(sorted)-1]
	contiguous := hi-lo == uint64(len(sorted)-1)
	// dispose classifies a page from its key-domain zone map: a contiguous
	// key set is a range predicate (full All/None resolution); a scattered
	// set prunes when no member falls inside [Min, Max].
	dispose := func(st *colstore.PageStats) sboost.Disposition {
		if contiguous {
			return sboost.DisposeRange(lo, hi, st.Min, st.Max)
		}
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= st.Min })
		if i == len(sorted) || sorted[i] > st.Max {
			return sboost.DispNone
		}
		return sboost.DispMixed
	}
	pf.newKernel = func() filterRG {
		// The lookup table is built once per worker, not once per page, and
		// lives in this kernel closure so workers never share it.
		var table []bool
		return func(ctx context.Context, rg int, sc *arena.Scratch, secSel *bitutil.Bitmap, tap *colstore.IOTap) (*bitutil.Bitmap, error) {
			chunk := r.Chunk(rg, ci).Tap(tap).Fetch(colstore.FetcherFrom(ctx))
			section := bitutil.NewBitmap(r.RowGroupRows(rg))
			for p := 0; p < chunk.NumPages(); p++ {
				if secSel != nil && !chunk.PageSelected(secSel, p) {
					chunk.MarkSkipped(1)
					continue
				}
				if st := chunk.PageStatsOf(p); st != nil {
					switch dispose(st) {
					case sboost.DispNone:
						chunk.MarkPruned()
						continue
					case sboost.DispAll:
						first, last := chunk.PageRowRange(p)
						section.SetRange(first, last)
						chunk.MarkPruned()
						continue
					}
				}
				pp, err := chunk.PackedPageAt(p, sc)
				if err != nil {
					return nil, err
				}
				bm := sc.Bitmap(pp.N)
				switch {
				case contiguous:
					sboost.ScanPackedRangeIntoSel(bm, pp.Data, pp.Width, lo, hi, secSel, pp.FirstRow)
				case len(sorted) <= swarInThreshold || pp.Width > 24:
					sboost.ScanPackedInIntoSel(bm, pp.Data, pp.Width, sorted, secSel, pp.FirstRow)
				default:
					if len(table) != 1<<pp.Width {
						table = make([]bool, 1<<pp.Width)
						for _, k := range sorted {
							table[k] = true
						}
					}
					sboost.ScanPackedLookupIntoSel(bm, pp.Data, pp.Width, table, secSel, pp.FirstRow)
				}
				mergePage(section, bm, pp.FirstRow)
			}
			return section, nil
		}
	}
	pf.sched = func(rg int) []schedSet {
		chunk := r.Chunk(rg, ci)
		var pages []int
		for p := 0; p < chunk.NumPages(); p++ {
			if st := chunk.PageStatsOf(p); st != nil && dispose(st) != sboost.DispMixed {
				continue
			}
			pages = append(pages, p)
		}
		return []schedSet{{col: ci, pages: pages}}
	}
	return pf
}

// TwoColumnFilter compares two columns that share one order-preserving
// global dictionary (§5.3, e.g. l_commitdate < l_receiptdate): key order
// equals value order, so the two packed key streams are compared directly.
type TwoColumnFilter struct {
	ColA, ColB string
	Op         sboost.Op
}

// Apply runs the filter.
func (f *TwoColumnFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *TwoColumnFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *TwoColumnFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare validates the shared dictionary once. The kernel borrows a
// second scratch per row group: two pages are live at once.
func (f *TwoColumnFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ca, _, err := r.Column(f.ColA)
	if err != nil {
		return preparedFilter{}, err
	}
	cb, _, err := r.Column(f.ColB)
	if err != nil {
		return preparedFilter{}, err
	}
	if !r.SharedDict(ca, cb) {
		return preparedFilter{}, fmt.Errorf("ops: %s and %s do not share a dictionary", f.ColA, f.ColB)
	}
	pf := preparedFilter{skip: func(rg int, tap *colstore.IOTap) {
		chA := r.Chunk(rg, ca).Tap(tap)
		chB := r.Chunk(rg, cb).Tap(tap)
		chA.MarkSkipped(chA.NumPages())
		chB.MarkSkipped(chB.NumPages())
	}}
	pf.newKernel = func() filterRG {
		return func(ctx context.Context, rg int, scA *arena.Scratch, secSel *bitutil.Bitmap, tap *colstore.IOTap) (*bitutil.Bitmap, error) {
			scB := arena.Get()
			defer arena.Put(scB)
			fetch := colstore.FetcherFrom(ctx)
			chA := r.Chunk(rg, ca).Tap(tap).Fetch(fetch)
			chB := r.Chunk(rg, cb).Tap(tap).Fetch(fetch)
			if chA.NumPages() != chB.NumPages() {
				return nil, fmt.Errorf("ops: page layout mismatch between %s and %s", f.ColA, f.ColB)
			}
			section := bitutil.NewBitmap(r.RowGroupRows(rg))
			for p := 0; p < chA.NumPages(); p++ {
				if secSel != nil && !chA.PageSelected(secSel, p) {
					chA.MarkSkipped(1)
					chB.MarkSkipped(1)
					continue
				}
				// Shared dictionary: both zone maps live in the same
				// order-preserving key domain, so disjoint ranges resolve
				// every row without reading either page.
				stA, stB := chA.PageStatsOf(p), chB.PageStatsOf(p)
				if stA != nil && stB != nil {
					switch sboost.DisposeStreams(f.Op, stA.Min, stA.Max, stB.Min, stB.Max) {
					case sboost.DispNone:
						chA.MarkPruned()
						chB.MarkPruned()
						continue
					case sboost.DispAll:
						first, last := chA.PageRowRange(p)
						section.SetRange(first, last)
						chA.MarkPruned()
						chB.MarkPruned()
						continue
					}
				}
				a, err := chA.PackedPageAt(p, scA)
				if err != nil {
					return nil, err
				}
				b, err := chB.PackedPageAt(p, scB)
				if err != nil {
					return nil, err
				}
				bm := scA.Bitmap(a.N)
				sboost.CompareStreamsIntoSel(bm, a.Data, b.Data, a.Width, f.Op, secSel, a.FirstRow)
				mergePage(section, bm, a.FirstRow)
			}
			return section, nil
		}
	}
	pf.sched = func(rg int) []schedSet {
		chA := r.Chunk(rg, ca)
		chB := r.Chunk(rg, cb)
		if chA.NumPages() != chB.NumPages() {
			return nil
		}
		var pages []int
		for p := 0; p < chA.NumPages(); p++ {
			stA, stB := chA.PageStatsOf(p), chB.PageStatsOf(p)
			if stA != nil && stB != nil &&
				sboost.DisposeStreams(f.Op, stA.Min, stA.Max, stB.Min, stB.Max) != sboost.DispMixed {
				continue
			}
			pages = append(pages, p)
		}
		return []schedSet{{col: ca, pages: pages}, {col: cb, pages: pages}}
	}
	return pf, nil
}

// DeltaFilter compares a delta-encoded integer column against a constant
// (§5.3): pages decode through the SWAR cumulative-sum kernel rather than
// the scalar running-sum path, then a tight comparison loop builds the
// bitmap.
type DeltaFilter struct {
	Col   string
	Op    sboost.Op
	Value int64
}

// Apply runs the filter.
func (f *DeltaFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *DeltaFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows). Delta
// pages are self-contained (header value plus deltas), so deselected pages
// are skipped whole; a selected page still reconstructs every row in it —
// the running sum needs them — but only rows the section keeps survive.
func (f *DeltaFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare validates the column and yields the per-row-group kernel. The
// zigzag rewrite stays inside the kernel: whether the zone maps apply
// depends on each chunk's statistics.
func (f *DeltaFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, col, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	if col.Encoding != encoding.KindDelta || col.Type != colstore.TypeInt64 {
		return preparedFilter{}, fmt.Errorf("ops: delta filter needs a delta-encoded int column")
	}
	zz := func(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
	pf := preparedFilter{skip: skipWholeChunk(r, ci)}
	pf.newKernel = func() filterRG {
		return func(ctx context.Context, rg int, sc *arena.Scratch, secSel *bitutil.Bitmap, tap *colstore.IOTap) (*bitutil.Bitmap, error) {
			chunk := r.Chunk(rg, ci).Tap(tap).Fetch(colstore.FetcherFrom(ctx))
			section := bitutil.NewBitmap(chunk.Rows())
			// Delta pages carry their zone map in the zigzag domain of the
			// reconstructed values, so the same rewrite the bit-packed
			// filter uses disposes pages here: equality always, order ops
			// on chunks proven non-negative.
			var (
				zop     sboost.Op
				ztarget uint64
				canZone bool
			)
			if f.Op == sboost.OpEq || f.Op == sboost.OpNe || chunk.Stats().MinInt >= 0 {
				var match, all bool
				zop, ztarget, match, all = rewriteZigzagPredicate(f.Op, f.Value, zz)
				canZone = match && !all
				if all {
					section.SetAll()
					return section, nil
				}
				if !match {
					// Provably empty for the whole chunk (negative target
					// against non-negative data).
					return section, nil
				}
			}
			for p := 0; p < chunk.NumPages(); p++ {
				rowFirst, rowLast := chunk.PageRowRange(p)
				if rowFirst == rowLast {
					continue
				}
				if secSel != nil && !chunk.PageSelected(secSel, p) {
					chunk.MarkSkipped(1)
					continue
				}
				if canZone {
					if st := chunk.PageStatsOf(p); st != nil {
						switch sboost.Dispose(zop, ztarget, st.Min, st.Max) {
						case sboost.DispNone:
							chunk.MarkPruned()
							continue
						case sboost.DispAll:
							section.SetRange(rowFirst, rowLast)
							chunk.MarkPruned()
							continue
						}
					}
				}
				body, err := chunk.PageBodyScratch(p, sc)
				if err != nil {
					return nil, err
				}
				first, sums, err := (encoding.DeltaInt{}).AppendDeltas(sc.Ints(rowLast-rowFirst), body)
				if err != nil {
					return nil, err
				}
				sc.KeepInts(sums)
				sboost.CumulativeSum(sums, sums) // in-place prefix sum
				if chunkMatch(first, f.Op, f.Value) {
					section.Set(rowFirst)
				}
				for i, s := range sums {
					if chunkMatch(first+s, f.Op, f.Value) {
						section.Set(rowFirst + 1 + i)
					}
				}
			}
			return section, nil
		}
	}
	pf.sched = func(rg int) []schedSet {
		chunk := r.Chunk(rg, ci)
		var (
			zop     sboost.Op
			ztarget uint64
			canZone bool
		)
		if f.Op == sboost.OpEq || f.Op == sboost.OpNe || chunk.Stats().MinInt >= 0 {
			var match, all bool
			zop, ztarget, match, all = rewriteZigzagPredicate(f.Op, f.Value, zz)
			canZone = match && !all
			if all || !match {
				// Chunk resolves without touching any page.
				return nil
			}
		}
		var pages []int
		for p := 0; p < chunk.NumPages(); p++ {
			rowFirst, rowLast := chunk.PageRowRange(p)
			if rowFirst == rowLast {
				continue
			}
			if canZone {
				if st := chunk.PageStatsOf(p); st != nil {
					if sboost.Dispose(zop, ztarget, st.Min, st.Max) != sboost.DispMixed {
						continue
					}
				}
			}
			pages = append(pages, p)
		}
		return []schedSet{{col: ci, pages: pages}}
	}
	return pf, nil
}

func chunkMatch(v int64, op sboost.Op, target int64) bool {
	switch op {
	case sboost.OpEq:
		return v == target
	case sboost.OpNe:
		return v != target
	case sboost.OpLt:
		return v < target
	case sboost.OpLe:
		return v <= target
	case sboost.OpGt:
		return v > target
	case sboost.OpGe:
		return v >= target
	}
	return false
}

// IntPredicateFilter is the encoding-oblivious baseline filter: decode
// every row, evaluate a Go predicate. The Fig 6 micro-benchmarks compare
// the encoding-aware operators against this.
type IntPredicateFilter struct {
	Col  string
	Pred func(int64) bool
}

// Apply runs the filter.
func (f *IntPredicateFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *IntPredicateFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows). With a
// selection the chunk is read through the gathering decoder, which skips
// pages holding no selected row and decodes only surviving entries.
func (f *IntPredicateFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare yields the decode-and-test kernel.
func (f *IntPredicateFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, _, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	return prepareOblivious(r, ci,
		(*colstore.Chunk).GatherInts,
		(*colstore.Chunk).Ints,
		f.Pred), nil
}

// prepareOblivious builds the kernel shared by the encoding-oblivious
// predicate filters: with a selection the chunk is read through the
// gathering decoder (pages holding no selected row are skipped, only
// surviving entries decode); without one, every row decodes and tests.
func prepareOblivious[T any](r *colstore.Reader, ci int,
	gather func(*colstore.Chunk, *bitutil.Bitmap) ([]T, error),
	decode func(*colstore.Chunk) ([]T, error),
	pred func(T) bool) preparedFilter {
	pf := preparedFilter{skip: skipWholeChunk(r, ci)}
	pf.newKernel = func() filterRG {
		return func(ctx context.Context, rg int, sc *arena.Scratch, secSel *bitutil.Bitmap, tap *colstore.IOTap) (*bitutil.Bitmap, error) {
			chunk := r.Chunk(rg, ci).Tap(tap).Fetch(colstore.FetcherFrom(ctx))
			if secSel != nil {
				vals, err := gather(chunk, secSel)
				if err != nil {
					return nil, err
				}
				section := bitutil.NewBitmap(chunk.Rows())
				i := 0
				secSel.ForEach(func(row int) {
					if pred(vals[i]) {
						section.Set(row)
					}
					i++
				})
				return section, nil
			}
			vals, err := decode(chunk)
			if err != nil {
				return nil, err
			}
			section := bitutil.NewBitmap(len(vals))
			for i, v := range vals {
				if pred(v) {
					section.Set(i)
				}
			}
			return section, nil
		}
	}
	pf.sched = schedAllPages(r, ci)
	return pf
}

// StrPredicateFilter is the oblivious string filter.
type StrPredicateFilter struct {
	Col  string
	Pred func([]byte) bool
}

// Apply runs the filter.
func (f *StrPredicateFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *StrPredicateFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *StrPredicateFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare yields the decode-and-test kernel.
func (f *StrPredicateFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, _, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	return prepareOblivious(r, ci,
		(*colstore.Chunk).GatherStrings,
		(*colstore.Chunk).Strings,
		f.Pred), nil
}

// FloatPredicateFilter is the oblivious float filter.
type FloatPredicateFilter struct {
	Col  string
	Pred func(float64) bool
}

// Apply runs the filter.
func (f *FloatPredicateFilter) Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplyCtx(context.Background(), r, pool)
}

// ApplyCtx runs the filter under ctx.
func (f *FloatPredicateFilter) ApplyCtx(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return f.ApplySel(ctx, r, pool, nil)
}

// ApplySel runs the filter restricted to sel (nil means all rows).
func (f *FloatPredicateFilter) ApplySel(ctx context.Context, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	pf, err := f.prepare(r)
	if err != nil {
		return nil, err
	}
	return applyPrepared(ctx, r, pool, sel, pf)
}

// prepare yields the decode-and-test kernel.
func (f *FloatPredicateFilter) prepare(r *colstore.Reader) (preparedFilter, error) {
	ci, _, err := r.Column(f.Col)
	if err != nil {
		return preparedFilter{}, err
	}
	return prepareOblivious(r, ci,
		(*colstore.Chunk).GatherFloats,
		(*colstore.Chunk).Floats,
		f.Pred), nil
}
