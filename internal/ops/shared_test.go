package ops

import (
	"context"
	"fmt"
	"testing"

	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/sboost"
)

// sharedItems builds a mixed wave: different predicates, different
// terminals, one select-all.
func sharedItems() []SharedItem {
	return []SharedItem{
		{Plan: nil, Term: TermCount},
		{Term: TermCount},
		{Term: TermRowIDs},
		{Term: TermGroupCount, Col: "shipmode"},
		{Term: TermInts, Col: "qty"},
	}
}

// sharedPlans attaches per-item plans against r (plans bind to a reader,
// so they are rebuilt per call).
func sharedPlans(r *colstore.Reader, items []SharedItem) []SharedItem {
	preds := []*Pred{
		nil,
		LeafPred(&DictFilter{Col: "shipdate", Op: sboost.OpLt, IntValue: 500}),
		AndPred(
			LeafPred(&DictFilter{Col: "shipdate", Op: sboost.OpLt, IntValue: 700}),
			LeafPred(&DictFilter{Col: "commitdate", Op: sboost.OpGe, IntValue: 100}),
		),
		LeafPred(&DictFilter{Col: "shipdate", Op: sboost.OpGe, IntValue: 200}),
		LeafPred(&DictFilter{Col: "shipdate", Op: sboost.OpLt, IntValue: 900}),
	}
	out := make([]SharedItem, len(items))
	for i, it := range items {
		out[i] = it
		if preds[i] != nil {
			out[i].Plan = BuildPlan(preds[i], r)
		}
	}
	return out
}

// TestRunSharedMatchesSerial is the shared-scan correctness property: a
// wave of K queries returns exactly what K serial RunPipeline calls
// return.
func TestRunSharedMatchesSerial(t *testing.T) {
	const n = 5000
	r, _, _, _ := testReader(t, n)
	pool := exec.NewPool(4)
	ctx := context.Background()

	items := sharedPlans(r, sharedItems())
	got, errs, fatal := RunShared(ctx, r, pool, items)
	if fatal != nil {
		t.Fatal(fatal)
	}
	for i := range items {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
	}
	want := make([]*PipelineResult, len(items))
	serial := sharedPlans(r, sharedItems())
	for i, it := range serial {
		res, err := RunPipeline(ctx, r, pool, it.Plan, it.Term, it.Col)
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		want[i] = res
	}
	for i := range items {
		g, w := got[i], want[i]
		if g.Count != w.Count {
			t.Fatalf("item %d: count %d, want %d", i, g.Count, w.Count)
		}
		if fmt.Sprint(g.RowIDs) != fmt.Sprint(w.RowIDs) {
			t.Fatalf("item %d: rowids differ", i)
		}
		if fmt.Sprint(g.Ints) != fmt.Sprint(w.Ints) {
			t.Fatalf("item %d: ints differ", i)
		}
		if g.Group != nil || w.Group != nil {
			if fmt.Sprint(g.Group) != fmt.Sprint(w.Group) {
				t.Fatalf("item %d: groups differ:\n got %v\nwant %v", i, g.Group, w.Group)
			}
		}
	}
}

// TestRunSharedDecompressOnce is the decompress-once property: with a
// page cache attached, a wave of K identical scans decompresses each
// page once — bytesDecompressed grows with the table, not with K.
func TestRunSharedDecompressOnce(t *testing.T) {
	const n = 8000
	r, _, _, _ := testReader(t, n)
	r.SetPageCache(colstore.NewPageCache(32 << 20))
	pool := exec.NewPool(4)
	ctx := context.Background()

	runWaveOf := func(k int) int64 {
		items := make([]SharedItem, k)
		for i := range items {
			items[i] = SharedItem{
				Plan: BuildPlan(LeafPred(&DictFilter{Col: "shipdate", Op: sboost.OpLt, IntValue: 800}), r),
				Term: TermCount,
			}
		}
		before := r.Stats().BytesDecompressed
		_, errs, fatal := RunShared(ctx, r, pool, items)
		if fatal != nil {
			t.Fatal(fatal)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("item %d: %v", i, e)
			}
		}
		return r.Stats().BytesDecompressed - before
	}
	d1 := runWaveOf(1)
	// Cache is now warm: further waves should decompress nothing no
	// matter how wide.
	d8 := runWaveOf(8)
	if d8 != 0 {
		t.Fatalf("warm wave of 8 decompressed %d bytes (first wave: %d); want 0", d8, d1)
	}
}

// TestRunSharedMemberFailure proves error isolation: one member with an
// unknown column fails alone; the rest of the wave completes.
func TestRunSharedMemberFailure(t *testing.T) {
	const n = 3000
	r, _, _, _ := testReader(t, n)
	pool := exec.NewPool(4)
	items := []SharedItem{
		{Term: TermCount},
		{Term: TermInts, Col: "no_such_column"},
	}
	got, errs, fatal := RunShared(context.Background(), r, pool, items)
	if fatal != nil {
		t.Fatal(fatal)
	}
	if errs[0] != nil || got[0] == nil || got[0].Count != int64(n) {
		t.Fatalf("healthy member: res=%v err=%v", got[0], errs[0])
	}
	if errs[1] == nil {
		t.Fatal("bad member did not error")
	}
}

// TestRunSharedWorkerCap: the MaxWorkers context budget flows into the
// wave (smoke — correctness under a cap of 1, the serial degeneration).
func TestRunSharedWorkerCap(t *testing.T) {
	const n = 4000
	r, _, _, _ := testReader(t, n)
	pool := exec.NewPool(8)
	ctx := ContextWithMaxWorkers(context.Background(), 1)
	items := sharedPlans(r, sharedItems())
	got, errs, fatal := RunShared(ctx, r, pool, items)
	if fatal != nil {
		t.Fatal(fatal)
	}
	for i := range items {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
	}
	res, err := RunPipeline(context.Background(), r, pool, nil, TermCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Count != res.Count {
		t.Fatalf("capped wave count %d, want %d", got[0].Count, res.Count)
	}
}
