package ops

import (
	"fmt"
	"sort"
	"time"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
)

// This file extends the morsel pipeline from single-table predicates to
// relational plans: late-materialized hash-join probe stages, row-level
// residual filters, multi-column group-by with packed composite keys, and
// order-by/limit with a per-worker top-K short-circuit. A RelPlan rides on
// the same compiled pipeline as the filter stages (TermRel), so every row
// group flows filter → probes → sink on one worker with worker-local
// partials merged deterministically in row-group order.

// RelValKind types one relational input vector.
type RelValKind int

const (
	// RelInt is a decoded int64 column or batch column.
	RelInt RelValKind = iota
	// RelFloat is a float64 column or batch column.
	RelFloat
	// RelStr is a byte-string column or batch column.
	RelStr
	// RelKey is the dictionary-code view of a dict-encoded scan column:
	// the join and group fast path that never touches value pages.
	RelKey
)

// RelJoinKind discriminates probe-stage semantics.
type RelJoinKind int

const (
	// RelSemi keeps rows whose key exists in the build table.
	RelSemi RelJoinKind = iota
	// RelAnti keeps rows whose key is absent from the build table.
	RelAnti
	// RelInner expands each row by its build matches and attaches the
	// build row for payload access.
	RelInner
	// RelLeft is RelInner keeping unmatched rows with build row -1.
	RelLeft
	// RelRowFilter is a residual row-level predicate over scan columns
	// and earlier stages' payloads (non-equi join conditions).
	RelRowFilter
)

func (k RelJoinKind) String() string {
	switch k {
	case RelSemi:
		return "semi"
	case RelAnti:
		return "anti"
	case RelInner:
		return "inner"
	case RelLeft:
		return "left"
	case RelRowFilter:
		return "filter"
	}
	return "?"
}

// Batch is a small materialized columnar intermediate — a build side, a
// grouped partial's merge result, or a collected projection. Exactly one
// of Ints/Floats/Strs is non-nil per column.
type Batch struct {
	N      int
	Names  []string
	Kinds  []RelValKind
	Ints   [][]int64
	Floats [][]float64
	Strs   [][][]byte
}

// Col returns the index of the named column, -1 if absent.
func (b *Batch) Col(name string) int {
	for i, n := range b.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// AddInts appends an int64 column.
func (b *Batch) AddInts(name string, vals []int64) *Batch {
	b.N = len(vals)
	b.Names = append(b.Names, name)
	b.Kinds = append(b.Kinds, RelInt)
	b.Ints = append(b.Ints, vals)
	b.Floats = append(b.Floats, nil)
	b.Strs = append(b.Strs, nil)
	return b
}

// AddFloats appends a float64 column.
func (b *Batch) AddFloats(name string, vals []float64) *Batch {
	b.N = len(vals)
	b.Names = append(b.Names, name)
	b.Kinds = append(b.Kinds, RelFloat)
	b.Ints = append(b.Ints, nil)
	b.Floats = append(b.Floats, vals)
	b.Strs = append(b.Strs, nil)
	return b
}

// AddStrs appends a byte-string column.
func (b *Batch) AddStrs(name string, vals [][]byte) *Batch {
	b.N = len(vals)
	b.Names = append(b.Names, name)
	b.Kinds = append(b.Kinds, RelStr)
	b.Ints = append(b.Ints, nil)
	b.Floats = append(b.Floats, nil)
	b.Strs = append(b.Strs, vals)
	return b
}

// JoinTable is a hash multi-map over build-side keys, probed per row group
// by the pipeline's join stages. Build is single-threaded so match lists
// are insertion-ordered and results are deterministic run to run. The two
// PCH-reserved keys are diverted to side lists rather than rejected.
type JoinTable struct {
	m       *PCHMulti
	special [2][]int32
	n       int
}

// NewJoinTable builds the hash table over keys; keys[i] maps to build row
// i. Duplicate keys multi-map.
func NewJoinTable(keys []int64) *JoinTable {
	t := &JoinTable{n: len(keys)}
	if len(keys) == 0 {
		return t
	}
	t.m = NewPCHMulti(len(keys))
	for i, k := range keys {
		if k == emptyKey || k == tombKey {
			t.special[k-emptyKey] = append(t.special[k-emptyKey], int32(i))
			continue
		}
		t.m.Insert(k, int64(i))
	}
	return t
}

// Len reports the number of build rows.
func (t *JoinTable) Len() int { return t.n }

// Contains reports whether any build row carries key k.
func (t *JoinTable) Contains(k int64) bool {
	if k == emptyKey || k == tombKey {
		return len(t.special[k-emptyKey]) > 0
	}
	return t.m != nil && t.m.Contains(k)
}

// Each calls fn for every build row carrying key k, in insertion order.
func (t *JoinTable) Each(k int64, fn func(row int32)) {
	if k == emptyKey || k == tombKey {
		for _, r := range t.special[k-emptyKey] {
			fn(r)
		}
		return
	}
	if t.m == nil {
		return
	}
	// PCHMulti lists iterate newest-first; reverse to insertion order so
	// probe output is stable against the build sequence.
	var buf [8]int64
	rows := buf[:0]
	t.m.Each(k, func(row int64) { rows = append(rows, row) })
	for i := len(rows) - 1; i >= 0; i-- {
		fn(int32(rows[i]))
	}
}

// RelInput names one value vector a stage or sink consumes: a scan column
// of the probe table (FromStage -1) in one of the four kinds, or a payload
// column of an earlier inner/left join stage's build batch.
type RelInput struct {
	FromStage int
	Col       string
	Kind      RelValKind

	ci   int // resolved scan column index
	bcol int // resolved batch column index
}

// RelEnv is the materialized row-aligned view of a stage's or sink's
// inputs for one row group: slot j holds input j in the slice matching its
// kind.
type RelEnv struct {
	N int
	I [][]int64
	F [][]float64
	S [][][]byte
}

// RelStage is one probe or residual-filter stage of a relational plan.
type RelStage struct {
	Name string
	Kind RelJoinKind

	// Join stages: probe keys are int-typed scan inputs (RelInt/RelKey),
	// combined by KeyFn (nil means the single first key).
	Keys    []RelInput
	KeyFn   func(keys [][]int64, i int) int64
	Table   *JoinTable
	Payload *Batch

	// RelRowFilter stages.
	Inputs []RelInput
	Keep   func(e *RelEnv, i int) bool
}

// RelAggKind names a group-by aggregate.
type RelAggKind int

const (
	// RelAggCount counts rows per group.
	RelAggCount RelAggKind = iota
	// RelAggSumInt sums an int64 expression.
	RelAggSumInt
	// RelAggSumFloat sums a float64 expression.
	RelAggSumFloat
	// RelAggMinInt keeps the minimum of an int64 expression.
	RelAggMinInt
	// RelAggMaxInt keeps the maximum of an int64 expression.
	RelAggMaxInt
	// RelAggMinFloat keeps the minimum of a float64 expression.
	RelAggMinFloat
	// RelAggMaxFloat keeps the maximum of a float64 expression.
	RelAggMaxFloat
	// RelAggCountDistinct counts distinct values of an int64 expression.
	RelAggCountDistinct
)

// intAgg reports whether the aggregate's output column is integer-typed.
func (k RelAggKind) intAgg() bool {
	switch k {
	case RelAggCount, RelAggSumInt, RelAggMinInt, RelAggMaxInt, RelAggCountDistinct:
		return true
	}
	return false
}

// RelGroupKey is one group-by key: a sink input (int or string typed) or a
// computed int expression over the sink env. [Lo,Hi) is the declared value
// domain; when every key has one and the widths pack into 62 bits the
// accumulator runs on packed int64 composite keys, otherwise on an encoded
// byte-string fallback.
type RelGroupKey struct {
	Input  int
	Fn     func(e *RelEnv, i int) int64
	Lo, Hi int64
	Str    bool
}

// RelAgg is one aggregate: a direct sink input or a computed expression.
type RelAgg struct {
	Kind  RelAggKind
	Input int
	FnI   func(e *RelEnv, i int) int64
	FnF   func(e *RelEnv, i int) float64
}

// RelGroup is a grouped sink.
type RelGroup struct {
	Keys []RelGroupKey
	Aggs []RelAgg
}

// RelSortKey orders collected rows by one sink input.
type RelSortKey struct {
	Input int
	Desc  bool
}

// RelCollect is a row-collection sink: the sink inputs become output
// columns in row-group order, optionally sorted (K == 0) or top-K reduced
// per worker before a deterministic merge (K > 0).
type RelCollect struct {
	Sort []RelSortKey
	K    int
}

// RelSink is the plan's terminal: exactly one of Group or Collect.
type RelSink struct {
	Inputs  []RelInput
	Group   *RelGroup
	Collect *RelCollect
}

// RelPlan is a compiled relational query over one probe table: ordered
// probe/filter stages then a sink. Names label the output batch columns
// (group: keys then aggregates; collect: one per sink input).
type RelPlan struct {
	Stages []RelStage
	Sink   RelSink
	Names  []string
}

// resolveRelInput binds one input against the probe reader and the plan's
// stage payload batches.
func resolveRelInput(r *colstore.Reader, stages []RelStage, in *RelInput) error {
	if in.FromStage < 0 {
		ci, c, err := r.Column(in.Col)
		if err != nil {
			return err
		}
		in.ci = ci
		switch in.Kind {
		case RelKey:
			if c.Encoding != encoding.KindDict && c.Encoding != encoding.KindDictRLE {
				return fmt.Errorf("ops: dict-key input %q on non-dictionary column", in.Col)
			}
		case RelInt:
			if c.Type != colstore.TypeInt64 {
				return fmt.Errorf("ops: int input %q on %v column", in.Col, c.Type)
			}
		case RelFloat:
			if c.Type != colstore.TypeFloat64 {
				return fmt.Errorf("ops: float input %q on %v column", in.Col, c.Type)
			}
		case RelStr:
			if c.Type != colstore.TypeString {
				return fmt.Errorf("ops: string input %q on %v column", in.Col, c.Type)
			}
		}
		return nil
	}
	if in.FromStage >= len(stages) {
		return fmt.Errorf("ops: input %q references stage %d of %d", in.Col, in.FromStage, len(stages))
	}
	st := &stages[in.FromStage]
	if st.Kind != RelInner && st.Kind != RelLeft {
		return fmt.Errorf("ops: payload input %q on %s stage %q", in.Col, st.Kind, st.Name)
	}
	if st.Payload == nil {
		return fmt.Errorf("ops: stage %q carries no payload", st.Name)
	}
	bc := st.Payload.Col(in.Col)
	if bc < 0 {
		return fmt.Errorf("ops: stage %q payload has no column %q", st.Name, in.Col)
	}
	in.bcol = bc
	in.Kind = st.Payload.Kinds[bc]
	return nil
}

// buildRel validates and resolves a relational plan against the probe
// reader, and (traced) prefaults every dictionary its gathers could touch
// so stage taps account all IO.
func (p *pipeline) buildRel(rp *RelPlan) error {
	for si := range rp.Stages {
		st := &rp.Stages[si]
		switch st.Kind {
		case RelRowFilter:
			if st.Keep == nil {
				return fmt.Errorf("ops: filter stage %q has no predicate", st.Name)
			}
			for j := range st.Inputs {
				in := &st.Inputs[j]
				if in.FromStage >= si {
					return fmt.Errorf("ops: stage %q input %q references a later stage", st.Name, in.Col)
				}
				if err := resolveRelInput(p.r, rp.Stages, in); err != nil {
					return err
				}
				p.prefaultRelInput(in)
			}
		default:
			if st.Table == nil {
				return fmt.Errorf("ops: join stage %q has no build table", st.Name)
			}
			if len(st.Keys) == 0 {
				return fmt.Errorf("ops: join stage %q has no probe key", st.Name)
			}
			for j := range st.Keys {
				in := &st.Keys[j]
				if in.FromStage >= 0 {
					return fmt.Errorf("ops: join stage %q probes a payload column", st.Name)
				}
				if in.Kind != RelInt && in.Kind != RelKey {
					return fmt.Errorf("ops: join stage %q key %q is not int-typed", st.Name, in.Col)
				}
				if err := resolveRelInput(p.r, rp.Stages, in); err != nil {
					return err
				}
				p.prefaultRelInput(in)
			}
		}
	}
	sk := &rp.Sink
	if (sk.Group == nil) == (sk.Collect == nil) {
		return fmt.Errorf("ops: relational sink needs exactly one of Group/Collect")
	}
	for j := range sk.Inputs {
		if err := resolveRelInput(p.r, rp.Stages, &sk.Inputs[j]); err != nil {
			return err
		}
		p.prefaultRelInput(&sk.Inputs[j])
	}
	if g := sk.Group; g != nil {
		for _, k := range g.Keys {
			if k.Fn == nil && (k.Input < 0 || k.Input >= len(sk.Inputs)) {
				return fmt.Errorf("ops: group key input %d out of range", k.Input)
			}
		}
		for _, a := range g.Aggs {
			if a.Kind != RelAggCount && a.FnI == nil && a.FnF == nil &&
				(a.Input < 0 || a.Input >= len(sk.Inputs)) {
				return fmt.Errorf("ops: aggregate input %d out of range", a.Input)
			}
		}
	}
	if c := sk.Collect; c != nil {
		for _, s := range c.Sort {
			if s.Input < 0 || s.Input >= len(sk.Inputs) {
				return fmt.Errorf("ops: sort key input %d out of range", s.Input)
			}
		}
	}
	return nil
}

// prefaultRelInput faults the dictionary behind one scan input (traced
// runs only — see faultDict).
func (p *pipeline) prefaultRelInput(in *RelInput) {
	if in.FromStage >= 0 {
		return
	}
	if _, c, err := p.r.Column(in.Col); err == nil {
		p.faultDict(in.ci, c)
	}
}

// relRows tracks the current row set of one morsel through the probe
// stages, relative to the basis selection bitmap the filter stages
// produced: src maps each live row to its position in bitmap-gather order
// (nil = identity), builds[s] holds the attached build row per live row
// for inner/left stage s (-1 = left miss).
type relRows struct {
	n      int
	src    []int32
	builds [][]int32
}

// apply reshapes the row set by perm (new row i was old row perm[i]).
func (st *relRows) apply(perm []int32) {
	if st.src == nil {
		st.src = perm
	} else {
		ns := make([]int32, len(perm))
		for i, o := range perm {
			ns[i] = st.src[o]
		}
		st.src = ns
	}
	for t, b := range st.builds {
		if b == nil {
			continue
		}
		nb := make([]int32, len(perm))
		for i, o := range perm {
			nb[i] = b[o]
		}
		st.builds[t] = nb
	}
	st.n = len(perm)
}

// relMorsel is the per-row-group execution state: the basis bitmap and a
// cache of gathered basis vectors, so a column any number of stages and
// the sink consume is fetched and decoded exactly once per row group (by
// the first stage to touch it, which books the IO on its tap).
type relMorsel struct {
	p      *pipeline
	w      *pipeWorker
	rg     int
	bm     *bitutil.Bitmap
	ints   map[int][]int64
	keys   map[int][]int64
	floats map[int][]float64
	strs   map[int][][]byte
}

func (m *relMorsel) scanInts(ci int, tap *colstore.IOTap) ([]int64, error) {
	if v, ok := m.ints[ci]; ok {
		return v, nil
	}
	v, err := m.p.r.Chunk(m.rg, ci).Tap(tap).Fetch(m.p.fetch).GatherInts(m.bm)
	if err != nil {
		return nil, err
	}
	m.ints[ci] = v
	return v, nil
}

func (m *relMorsel) scanKeys(ci int, tap *colstore.IOTap) ([]int64, error) {
	if v, ok := m.keys[ci]; ok {
		return v, nil
	}
	v, err := m.p.r.Chunk(m.rg, ci).Tap(tap).Fetch(m.p.fetch).GatherKeys(m.bm)
	if err != nil {
		return nil, err
	}
	m.keys[ci] = v
	return v, nil
}

func (m *relMorsel) scanFloats(ci int, tap *colstore.IOTap) ([]float64, error) {
	if v, ok := m.floats[ci]; ok {
		return v, nil
	}
	v, err := m.p.r.Chunk(m.rg, ci).Tap(tap).Fetch(m.p.fetch).GatherFloats(m.bm)
	if err != nil {
		return nil, err
	}
	m.floats[ci] = v
	return v, nil
}

func (m *relMorsel) scanStrs(ci int, tap *colstore.IOTap) ([][]byte, error) {
	if v, ok := m.strs[ci]; ok {
		return v, nil
	}
	v, err := m.p.r.Chunk(m.rg, ci).Tap(tap).Fetch(m.p.fetch).GatherStrings(m.bm)
	if err != nil {
		return nil, err
	}
	m.strs[ci] = v
	return v, nil
}

// env materializes inputs row-aligned to the current row set: scan vectors
// are indexed through src, payload columns through the owning stage's
// build attachment (left misses read zero values).
func (m *relMorsel) env(inputs []RelInput, st *relRows, tap *colstore.IOTap) (*RelEnv, error) {
	e := &RelEnv{
		N: st.n,
		I: make([][]int64, len(inputs)),
		F: make([][]float64, len(inputs)),
		S: make([][][]byte, len(inputs)),
	}
	for j := range inputs {
		in := &inputs[j]
		if in.FromStage < 0 {
			switch in.Kind {
			case RelInt:
				base, err := m.scanInts(in.ci, tap)
				if err != nil {
					return nil, err
				}
				e.I[j] = indexInts(base, st.src)
			case RelKey:
				base, err := m.scanKeys(in.ci, tap)
				if err != nil {
					return nil, err
				}
				e.I[j] = indexInts(base, st.src)
			case RelFloat:
				base, err := m.scanFloats(in.ci, tap)
				if err != nil {
					return nil, err
				}
				e.F[j] = indexFloats(base, st.src)
			case RelStr:
				base, err := m.scanStrs(in.ci, tap)
				if err != nil {
					return nil, err
				}
				e.S[j] = indexStrs(base, st.src)
			}
			continue
		}
		b := st.builds[in.FromStage]
		pay := m.p.rel.Stages[in.FromStage].Payload
		switch pay.Kinds[in.bcol] {
		case RelInt:
			src := pay.Ints[in.bcol]
			out := make([]int64, st.n)
			for i, r := range b {
				if r >= 0 {
					out[i] = src[r]
				}
			}
			e.I[j] = out
		case RelFloat:
			src := pay.Floats[in.bcol]
			out := make([]float64, st.n)
			for i, r := range b {
				if r >= 0 {
					out[i] = src[r]
				}
			}
			e.F[j] = out
		case RelStr:
			src := pay.Strs[in.bcol]
			out := make([][]byte, st.n)
			for i, r := range b {
				if r >= 0 {
					out[i] = src[r]
				}
			}
			e.S[j] = out
		}
	}
	return e, nil
}

func indexInts(base []int64, src []int32) []int64 {
	if src == nil {
		return base
	}
	out := make([]int64, len(src))
	for i, o := range src {
		out[i] = base[o]
	}
	return out
}

func indexFloats(base []float64, src []int32) []float64 {
	if src == nil {
		return base
	}
	out := make([]float64, len(src))
	for i, o := range src {
		out[i] = base[o]
	}
	return out
}

func indexStrs(base [][]byte, src []int32) [][]byte {
	if src == nil {
		return base
	}
	out := make([][]byte, len(src))
	for i, o := range src {
		out[i] = base[o]
	}
	return out
}

// probeKeys computes the probe key per live row for one join stage.
func (m *relMorsel) probeKeys(st *RelStage, rows *relRows, tap *colstore.IOTap) ([]int64, error) {
	vecs := make([][]int64, len(st.Keys))
	for j := range st.Keys {
		in := &st.Keys[j]
		var base []int64
		var err error
		if in.Kind == RelKey {
			base, err = m.scanKeys(in.ci, tap)
		} else {
			base, err = m.scanInts(in.ci, tap)
		}
		if err != nil {
			return nil, err
		}
		vecs[j] = base
	}
	keys := make([]int64, rows.n)
	for i := 0; i < rows.n; i++ {
		o := i
		if rows.src != nil {
			o = int(rows.src[i])
		}
		if st.KeyFn != nil {
			keys[i] = st.KeyFn(vecs, o)
		} else {
			keys[i] = vecs[0][o]
		}
	}
	return keys, nil
}

// runRelStage executes one probe/filter stage over the morsel's current
// row set, recording row flow on the stage's stats slot.
func (m *relMorsel) runRelStage(si int, rows *relRows) error {
	p, w := m.p, m.w
	st := &p.rel.Stages[si]
	var start time.Time
	if w.stats != nil {
		start = time.Now()
	}
	var tap *colstore.IOTap
	if w.taps != nil {
		tap = &w.taps[len(p.leaves)+si]
	}
	rowsIn := rows.n
	var err error
	switch st.Kind {
	case RelSemi, RelAnti:
		var keys []int64
		keys, err = m.probeKeys(st, rows, tap)
		if err == nil {
			want := st.Kind == RelSemi
			perm := make([]int32, 0, rows.n)
			for i := 0; i < rows.n; i++ {
				if st.Table.Contains(keys[i]) == want {
					perm = append(perm, int32(i))
				}
			}
			rows.apply(perm)
		}
	case RelInner, RelLeft:
		var keys []int64
		keys, err = m.probeKeys(st, rows, tap)
		if err == nil {
			perm := make([]int32, 0, rows.n)
			build := make([]int32, 0, rows.n)
			for i := 0; i < rows.n; i++ {
				matched := false
				st.Table.Each(keys[i], func(r int32) {
					matched = true
					perm = append(perm, int32(i))
					build = append(build, r)
				})
				if !matched && st.Kind == RelLeft {
					perm = append(perm, int32(i))
					build = append(build, -1)
				}
			}
			rows.apply(perm)
			rows.builds[si] = build
		}
	case RelRowFilter:
		var e *RelEnv
		e, err = m.env(st.Inputs, rows, tap)
		if err == nil {
			perm := make([]int32, 0, rows.n)
			for i := 0; i < rows.n; i++ {
				if st.Keep(e, i) {
					perm = append(perm, int32(i))
				}
			}
			rows.apply(perm)
		}
	}
	if w.stats != nil {
		s := &w.stats[len(p.leaves)+si]
		s.rowsIn += int64(rowsIn)
		s.rowsOut += int64(rows.n)
		s.nanos += time.Since(start).Nanoseconds()
	}
	return err
}

// relTerminal drives one row group's selection through the plan's probe
// stages and sink. An empty selection touches nothing, like the scalar
// terminals.
func (p *pipeline) relTerminal(w *pipeWorker, rg int, bm *bitutil.Bitmap, parts *pipeParts) error {
	card := 0
	if bm != nil {
		card = bm.Cardinality()
	}
	if card == 0 {
		return nil
	}
	m := &relMorsel{
		p: p, w: w, rg: rg, bm: bm,
		ints:   map[int][]int64{},
		keys:   map[int][]int64{},
		floats: map[int][]float64{},
		strs:   map[int][][]byte{},
	}
	rows := &relRows{n: card, builds: make([][]int32, len(p.rel.Stages))}
	for si := range p.rel.Stages {
		if err := m.runRelStage(si, rows); err != nil {
			return err
		}
		if rows.n == 0 {
			break
		}
	}
	var start time.Time
	if w.stats != nil {
		start = time.Now()
	}
	var tap *colstore.IOTap
	if w.taps != nil {
		tap = &w.taps[len(w.taps)-1]
	}
	var err error
	if rows.n > 0 {
		var e *RelEnv
		e, err = m.env(p.rel.Sink.Inputs, rows, tap)
		if err == nil {
			w.count += int64(rows.n)
			switch {
			case p.rel.Sink.Group != nil:
				w.relGroup.accumulate(e)
			case p.rel.Sink.Collect != nil:
				if w.relTop != nil {
					w.relTop.add(e, rg)
				} else {
					parts.rel[rg] = collectBatch(e, &p.rel.Sink)
				}
			}
		}
	}
	if w.stats != nil {
		s := &w.stats[len(w.stats)-1]
		s.rowsIn += int64(rows.n)
		s.rowsOut += int64(rows.n)
		s.nanos += time.Since(start).Nanoseconds()
	}
	return err
}

// collectBatch freezes one row group's sink env as a batch fragment.
func collectBatch(e *RelEnv, sk *RelSink) *Batch {
	b := &Batch{N: e.N}
	for j := range sk.Inputs {
		name := sk.Inputs[j].Col
		switch {
		case e.I[j] != nil:
			b.Names = append(b.Names, name)
			b.Kinds = append(b.Kinds, RelInt)
			b.Ints = append(b.Ints, e.I[j])
			b.Floats = append(b.Floats, nil)
			b.Strs = append(b.Strs, nil)
		case e.F[j] != nil:
			b.AddFloats(name, e.F[j])
		default:
			b.AddStrs(name, e.S[j])
		}
		b.N = e.N
	}
	return b
}

// mergeRel folds the worker partials into the final batch: grouped cells
// merge then sort by key; collected fragments concatenate in row-group
// order then sort (and truncate) when requested.
func (p *pipeline) mergeRel(workers []*pipeWorker) *Batch {
	sk := &p.rel.Sink
	if sk.Group != nil {
		total := newRelGroupAcc(sk.Group, sk.Inputs)
		for _, w := range workers {
			if w != nil && w.relGroup != nil {
				total.merge(w.relGroup)
			}
		}
		return total.result(p.rel)
	}
	if sk.Collect.K > 0 {
		top := newRelTopK(sk)
		for _, w := range workers {
			if w != nil && w.relTop != nil {
				top.rows = append(top.rows, w.relTop.rows...)
			}
		}
		top.trim(sk.Collect.K)
		return top.batch(p.rel)
	}
	frags := make([]*Batch, 0, len(p.parts.rel))
	for _, f := range p.parts.rel {
		if f != nil && f.N > 0 {
			frags = append(frags, f)
		}
	}
	out := concatBatches(frags, sk, p.rel)
	if len(sk.Collect.Sort) > 0 {
		sortBatch(out, sk.Collect.Sort)
	}
	return out
}

// concatBatches concatenates fragments (already in row-group order) into
// one output batch named by the plan.
func concatBatches(frags []*Batch, sk *RelSink, rp *RelPlan) *Batch {
	out := &Batch{}
	total := 0
	for _, f := range frags {
		total += f.N
	}
	for j := range sk.Inputs {
		name := rp.Names[j]
		kind := RelInt
		if len(frags) > 0 {
			kind = frags[0].Kinds[j]
		} else {
			kind = sinkInputKind(&sk.Inputs[j])
		}
		switch kind {
		case RelFloat:
			col := make([]float64, 0, total)
			for _, f := range frags {
				col = append(col, f.Floats[j]...)
			}
			out.AddFloats(name, col)
		case RelStr:
			col := make([][]byte, 0, total)
			for _, f := range frags {
				col = append(col, f.Strs[j]...)
			}
			out.AddStrs(name, col)
		default:
			col := make([]int64, 0, total)
			for _, f := range frags {
				col = append(col, f.Ints[j]...)
			}
			out.AddInts(name, col)
		}
	}
	out.N = total
	return out
}

func sinkInputKind(in *RelInput) RelValKind {
	if in.Kind == RelKey {
		return RelInt
	}
	return in.Kind
}

// SortBatch stable-sorts a batch in place by the given keys (post-
// processing hook for result batches outside the pipeline).
func SortBatch(b *Batch, keys []RelSortKey) { sortBatch(b, keys) }

// sortBatch stable-sorts a batch in place by the sink sort keys.
func sortBatch(b *Batch, keys []RelSortKey) {
	perm := make([]int, b.N)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return compareBatchRows(b, keys, perm[x], perm[y]) < 0
	})
	for j := range b.Names {
		switch {
		case b.Ints[j] != nil:
			src := b.Ints[j]
			out := make([]int64, len(perm))
			for i, o := range perm {
				out[i] = src[o]
			}
			b.Ints[j] = out
		case b.Floats[j] != nil:
			src := b.Floats[j]
			out := make([]float64, len(perm))
			for i, o := range perm {
				out[i] = src[o]
			}
			b.Floats[j] = out
		default:
			src := b.Strs[j]
			out := make([][]byte, len(perm))
			for i, o := range perm {
				out[i] = src[o]
			}
			b.Strs[j] = out
		}
	}
}

func compareBatchRows(b *Batch, keys []RelSortKey, x, y int) int {
	for _, k := range keys {
		j := k.Input
		var c int
		switch {
		case b.Ints[j] != nil:
			c = compareI64(b.Ints[j][x], b.Ints[j][y])
		case b.Floats[j] != nil:
			c = compareF64(b.Floats[j][x], b.Floats[j][y])
		default:
			c = compareBytes(b.Strs[j][x], b.Strs[j][y])
		}
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

func compareI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareBytes(a, b []byte) int {
	sa, sb := string(a), string(b)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	}
	return 0
}
