package ops

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
)

// This file is the cooperative shared-scan executor: several planned
// queries against the same reader run as ONE morsel pass over the table.
// Each worker claims a row group and drives it through every member
// pipeline in turn, so a page decompressed for the first member is a
// page-cache (or prefetch) hit for the rest — the wave fetches and
// decompresses each page once regardless of how many queries share it.
// This is what makes a multi-user serving layer affordable: K concurrent
// scans cost ~one scan of IO plus K filter/terminal passes over decoded
// morsels that are already hot in cache.

// SharedItem is one member query of a shared wave: a planned predicate
// (nil means select-all) plus the terminal it feeds.
type SharedItem struct {
	Plan *Plan
	Term TermKind
	Col  string
}

// sharedWorker is one pool worker's private state for a whole wave: one
// pipeWorker per member, all carved from the members' own slabs.
type sharedWorker struct {
	ws []*pipeWorker
}

// RunShared executes every item against r in a single morsel-driven pass.
// It returns one result and one error slot per item — a member that fails
// to build or errors mid-scan fails alone; the others complete. The third
// return is fatal: pool submission failure, worker panic, or context
// cancellation, in which case per-item results are not meaningful.
//
// Items whose plan cannot compile to kernels (external filters) cannot
// join the wave; they run solo through RunPipeline after the wave so the
// caller still gets every answer from one call.
func RunShared(ctx context.Context, r *colstore.Reader, pool *exec.Pool, items []SharedItem) ([]*PipelineResult, []error, error) {
	results := make([]*PipelineResult, len(items))
	errs := make([]error, len(items))
	var (
		members   []*pipeline
		memberIdx []int
		solo      []int
	)
	for i, it := range items {
		p, err := buildPipeline(r, pool, it.Plan, it.Term, it.Col, nil, false)
		if err != nil {
			errs[i] = err
			continue
		}
		if p.fallback {
			solo = append(solo, i)
			continue
		}
		members = append(members, p)
		memberIdx = append(memberIdx, i)
	}
	if len(members) > 0 {
		if err := runWave(ctx, r, pool, members, memberIdx, results, errs); err != nil {
			return results, errs, err
		}
	}
	for _, i := range solo {
		results[i], errs[i] = RunPipeline(ctx, r, pool, items[i].Plan, items[i].Term, items[i].Col)
	}
	return results, errs, ctx.Err()
}

// runWave runs the non-fallback members as one morsel pass. A member
// error is recorded in its errs slot and the member sits out the rest of
// the wave; only cancellation or a panic aborts the pass itself.
func runWave(ctx context.Context, r *colstore.Reader, pool *exec.Pool, members []*pipeline, memberIdx []int, results []*PipelineResult, errs []error) error {
	nrg := r.NumRowGroups()
	nw := pool.Size()
	if lim := MaxWorkersFrom(ctx); lim > 0 && nw > lim {
		nw = lim
	}
	if nrg > 0 && nw > nrg {
		nw = nrg
	}
	for _, p := range members {
		p.initParts(nrg)
		p.initWorkers(nw)
	}
	var hooks exec.MorselHooks
	if f := buildSharedFetcher(ctx, r, members); f != nil {
		defer f.Close()
		ctx = colstore.ContextWithFetcher(ctx, f)
		for _, p := range members {
			p.fetch = f
		}
		// One release per row group, after ALL members are done with it.
		hooks.OnDone = f.FinishGroup
	}
	if lq := obs.QueryFrom(ctx); lq != nil {
		lq.AddMorsels(nrg, nw)
		prev := hooks.OnDone
		hooks.OnDone = func(m int) {
			if prev != nil {
				prev(m)
			}
			lq.MorselDone()
		}
	}
	failed := make([]atomic.Bool, len(members))
	var errMu sync.Mutex
	states, waveErr := exec.ParallelMorselsLimited(ctx, pool, nrg, nw,
		func(wi int) *sharedWorker {
			sw := &sharedWorker{ws: make([]*pipeWorker, len(members))}
			for j, p := range members {
				sw.ws[j] = p.newWorker(wi)
			}
			return sw
		},
		func(mctx context.Context, sw *sharedWorker, rg int) error {
			for j, p := range members {
				if failed[j].Load() {
					continue
				}
				if merr := p.runMorsel(mctx, sw.ws[j], rg, nil, &p.parts); merr != nil {
					if mctx.Err() != nil {
						// Cancellation surfaces through every member at
						// once; abort the wave instead of failing them all.
						return merr
					}
					if failed[j].CompareAndSwap(false, true) {
						errMu.Lock()
						errs[memberIdx[j]] = merr
						errMu.Unlock()
					}
				}
			}
			return nil
		}, hooks)
	// Regroup the shared states into per-member worker slices so the
	// per-pipeline release and merge paths apply unchanged.
	for j, p := range members {
		mws := make([]*pipeWorker, 0, len(states))
		for _, sw := range states {
			if sw != nil && sw.ws[j] != nil {
				mws = append(mws, sw.ws[j])
			}
		}
		p.workers = mws
		p.releaseWorkers(mws)
	}
	if waveErr != nil {
		return waveErr
	}
	for j, p := range members {
		if errs[memberIdx[j]] == nil {
			results[memberIdx[j]] = p.merge(p.workers)
		}
	}
	return nil
}

// buildSharedFetcher computes the union page schedule across every
// member's first planned stage (the stage whose metadata disposition is
// exact; see buildFetcher) and starts one prefetcher serving the whole
// wave. Pages wanted by several members are scheduled once.
func buildSharedFetcher(ctx context.Context, r *colstore.Reader, members []*pipeline) *colstore.PageFetcher {
	opt, _ := ctx.Value(prefetchKey{}).(prefetchOpt)
	if opt.off {
		return nil
	}
	var scheds []func(rg int) []schedSet
	for _, p := range members {
		switch {
		case len(p.leaves) > 0:
			lf := p.leaves[0]
			if lf.pf.empty || lf.pf.sched == nil {
				continue
			}
			scheds = append(scheds, lf.pf.sched)
		case p.ci >= 0:
			scheds = append(scheds, schedAllPages(r, p.ci))
		}
	}
	if len(scheds) == 0 {
		return nil
	}
	f := colstore.NewPageFetcher(r, opt.cfg)
	scheduled := false
	for rg := 0; rg < r.NumRowGroups(); rg++ {
		byCol := make(map[int]map[int]struct{})
		for _, sched := range scheds {
			for _, s := range sched(rg) {
				set := byCol[s.col]
				if set == nil {
					set = make(map[int]struct{})
					byCol[s.col] = set
				}
				for _, pg := range s.pages {
					set[pg] = struct{}{}
				}
			}
		}
		cols := make([]int, 0, len(byCol))
		for col := range byCol {
			cols = append(cols, col)
		}
		sort.Ints(cols)
		for _, col := range cols {
			set := byCol[col]
			if len(set) == 0 {
				continue
			}
			pages := make([]int, 0, len(set))
			for pg := range set {
				pages = append(pages, pg)
			}
			sort.Ints(pages)
			f.Schedule(rg, col, pages)
			scheduled = true
		}
	}
	if !scheduled {
		return nil
	}
	f.Start(ctx)
	return f
}
