package ops

import (
	"context"
	"fmt"
	"strings"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
	"codecdb/internal/sboost"
)

// This file is the predicate-tree planner (paper §5.2): queries arrive as a
// small IR of filters composed with AND/OR/NOT, the planner orders AND
// conjuncts by estimated selectivity per unit cost using metadata the files
// already carry for free (encoding kind, dictionary size, page zone maps,
// column byte volume), and the executor threads the accumulated selection
// into each subsequent filter so row groups and pages whose selection is
// already empty are never fetched, CRC-verified, or decompressed.

// PredKind discriminates predicate-tree nodes.
type PredKind int

const (
	// PredLeaf is a single filter.
	PredLeaf PredKind = iota
	// PredAnd is a conjunction; the planner reorders its children.
	PredAnd
	// PredOr is a disjunction, evaluated as a bitmap union with branch
	// short-circuiting.
	PredOr
	// PredNot negates a leaf filter.
	PredNot
)

// Pred is a node of the predicate IR: a leaf filter, a conjunction, a
// disjunction, or the negation of a leaf.
type Pred struct {
	Kind PredKind
	Leaf Filter  // PredLeaf, PredNot
	Kids []*Pred // PredAnd, PredOr
}

// LeafPred wraps a filter as a predicate-tree leaf.
func LeafPred(f Filter) *Pred { return &Pred{Kind: PredLeaf, Leaf: f} }

// AndPred builds a conjunction. Nested conjunctions are flattened so the
// planner ranks all conjuncts together.
func AndPred(kids ...*Pred) *Pred {
	flat := make([]*Pred, 0, len(kids))
	for _, k := range kids {
		if k.Kind == PredAnd {
			flat = append(flat, k.Kids...)
			continue
		}
		flat = append(flat, k)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Pred{Kind: PredAnd, Kids: flat}
}

// OrPred builds a disjunction. Nested disjunctions are flattened.
func OrPred(kids ...*Pred) *Pred {
	flat := make([]*Pred, 0, len(kids))
	for _, k := range kids {
		if k.Kind == PredOr {
			flat = append(flat, k.Kids...)
			continue
		}
		flat = append(flat, k)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Pred{Kind: PredOr, Kids: flat}
}

// NotPred negates a leaf filter.
func NotPred(f Filter) *Pred { return &Pred{Kind: PredNot, Leaf: f} }

// PredEstimate carries the planner's guess for one node: Sel is the
// estimated fraction of table rows the predicate keeps, Cost an abstract
// full-scan price (compressed column bytes weighted by decode effort).
type PredEstimate struct {
	Sel  float64
	Cost float64
}

// Cost weights per scan strategy: in-situ packed SWAR scans touch each
// byte once, two-column scans touch two streams, delta scans reconstruct
// values through the cumulative sum, and oblivious scans fully decode.
const (
	costPacked    = 1.0
	costKeySet    = 1.2
	costTwoCol    = 2.0
	costDelta     = 3.0
	costOblivious = 6.0
)

// PlanNode is one node of a built plan: the predicate, its estimate, and —
// for AND/OR — the children in chosen execution order.
type PlanNode struct {
	Pred *Pred
	Est  PredEstimate
	Kids []*PlanNode
}

// Plan is an ordered, executable predicate pipeline over one table.
type Plan struct {
	Root *PlanNode
}

// BuildPlan estimates every node of the predicate tree against r's
// metadata and fixes the execution order: AND children ascending by
// (Sel-1)/Cost — the most rows eliminated per unit of work runs first, so
// its selection shrinks every later scan — and OR children ascending by
// Cost/Sel, so cheap high-coverage branches shrink the remaining selection
// before expensive branches run. Estimation reads footers and cached
// dictionaries only; no page data is fetched.
func BuildPlan(p *Pred, r *colstore.Reader) *Plan {
	return &Plan{Root: buildNode(p, r)}
}

func buildNode(p *Pred, r *colstore.Reader) *PlanNode {
	n := &PlanNode{Pred: p}
	switch p.Kind {
	case PredLeaf:
		n.Est = estimateLeaf(p.Leaf, r)
	case PredNot:
		e := estimateLeaf(p.Leaf, r)
		n.Est = PredEstimate{Sel: 1 - e.Sel, Cost: e.Cost}
	case PredAnd:
		n.Kids = make([]*PlanNode, len(p.Kids))
		sel, cost := 1.0, 0.0
		for i, k := range p.Kids {
			n.Kids[i] = buildNode(k, r)
			sel *= n.Kids[i].Est.Sel
			cost += n.Kids[i].Est.Cost
		}
		sortStable(n.Kids, func(a, b *PlanNode) bool {
			return (a.Est.Sel-1)/(a.Est.Cost+1) < (b.Est.Sel-1)/(b.Est.Cost+1)
		})
		n.Est = PredEstimate{Sel: sel, Cost: cost}
	case PredOr:
		n.Kids = make([]*PlanNode, len(p.Kids))
		miss, cost := 1.0, 0.0
		for i, k := range p.Kids {
			n.Kids[i] = buildNode(k, r)
			miss *= 1 - n.Kids[i].Est.Sel
			cost += n.Kids[i].Est.Cost
		}
		sortStable(n.Kids, func(a, b *PlanNode) bool {
			return (a.Est.Cost+1)/(a.Est.Sel+0.001) < (b.Est.Cost+1)/(b.Est.Sel+0.001)
		})
		n.Est = PredEstimate{Sel: 1 - miss, Cost: cost}
	}
	return n
}

// sortStable is insertion sort — plan fan-outs are a handful of nodes, and
// stability keeps the user's order for ties.
func sortStable(nodes []*PlanNode, less func(a, b *PlanNode) bool) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && less(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// estimateLeaf prices one filter against the reader's free metadata.
func estimateLeaf(f Filter, r *colstore.Reader) PredEstimate {
	switch f := f.(type) {
	case *DictFilter:
		ci, col, err := r.Column(f.Col)
		if err != nil {
			return unknownEstimate(r)
		}
		est := PredEstimate{Cost: costPacked * bytesOf(r, ci)}
		lb, exact, dictLen, err := dictLowerBound(r, ci, col, f.IntValue, f.StrValue)
		if err != nil {
			est.Sel = 0.5
			return est
		}
		op, match, all := rewriteDictPredicate(f.Op, lb, exact, dictLen)
		switch {
		case all:
			est.Sel = 1
		case !match:
			est.Sel = 0
		default:
			if s, ok := zoneSelectivity(r, ci, op, uint64(lb)); ok {
				est.Sel = s
			} else {
				est.Sel = dictPositionSelectivity(op, lb, dictLen)
			}
		}
		return est
	case *DictInFilter:
		return keySetEstimate(f, r)
	case *DictLikeFilter:
		return keySetEstimate(f, r)
	case *DictIntPredFilter:
		return keySetEstimate(f, r)
	case *BitPackedFilter:
		ci, _, err := r.Column(f.Col)
		if err != nil {
			return unknownEstimate(r)
		}
		est := PredEstimate{Cost: costPacked * bytesOf(r, ci)}
		est.Sel = zigzagSelectivity(r, ci, f.Op, f.Value)
		return est
	case *DeltaFilter:
		ci, _, err := r.Column(f.Col)
		if err != nil {
			return unknownEstimate(r)
		}
		est := PredEstimate{Cost: costDelta * bytesOf(r, ci)}
		est.Sel = zigzagSelectivity(r, ci, f.Op, f.Value)
		return est
	case *TwoColumnFilter:
		ca, _, errA := r.Column(f.ColA)
		cb, _, errB := r.Column(f.ColB)
		if errA != nil || errB != nil {
			return unknownEstimate(r)
		}
		est := PredEstimate{Cost: costTwoCol * (bytesOf(r, ca) + bytesOf(r, cb))}
		switch f.Op {
		case sboost.OpEq:
			est.Sel = 0.1
		case sboost.OpNe:
			est.Sel = 0.9
		default:
			est.Sel = 0.5
		}
		return est
	case *IntPredicateFilter:
		return obliviousEstimate(f.Col, r)
	case *StrPredicateFilter:
		return obliviousEstimate(f.Col, r)
	case *FloatPredicateFilter:
		return obliviousEstimate(f.Col, r)
	default:
		return unknownEstimate(r)
	}
}

// keySetEstimate prices the IN-family filters: the predicate resolves to a
// key set over the dictionary, so selectivity is keys/dictLen under the
// uniform assumption.
func keySetEstimate(f Filter, r *colstore.Reader) PredEstimate {
	var col string
	switch f := f.(type) {
	case *DictInFilter:
		col = f.Col
	case *DictLikeFilter:
		col = f.Col
	case *DictIntPredFilter:
		col = f.Col
	}
	ci, _, err := r.Column(col)
	if err != nil {
		return unknownEstimate(r)
	}
	est := PredEstimate{Cost: costKeySet * bytesOf(r, ci)}
	keys, dictLen, err := resolveKeyCount(f, r, ci)
	if err != nil || dictLen == 0 {
		est.Sel = 0.3
		return est
	}
	est.Sel = clamp01(float64(keys) / float64(dictLen))
	return est
}

// resolveKeyCount counts dictionary keys the filter's predicate keeps —
// the same resolution the apply path performs, against the cached
// dictionary.
func resolveKeyCount(f Filter, r *colstore.Reader, ci int) (keys, dictLen int, err error) {
	switch f := f.(type) {
	case *DictInFilter:
		switch {
		case len(f.IntValues) > 0:
			dict, err := r.IntDict(ci)
			if err != nil {
				return 0, 0, err
			}
			for _, v := range f.IntValues {
				lb := lowerBoundInt(dict, v)
				if lb < int64(len(dict)) && dict[lb] == v {
					keys++
				}
			}
			return keys, len(dict), nil
		default:
			dict, err := r.StrDict(ci)
			if err != nil {
				return 0, 0, err
			}
			for _, v := range f.StrValues {
				lb := lowerBoundStr(dict, v)
				if lb < int64(len(dict)) && string(dict[lb]) == string(v) {
					keys++
				}
			}
			return keys, len(dict), nil
		}
	case *DictLikeFilter:
		dict, err := r.StrDict(ci)
		if err != nil {
			return 0, 0, err
		}
		for _, e := range dict {
			if f.Match(e) {
				keys++
			}
		}
		return keys, len(dict), nil
	case *DictIntPredFilter:
		dict, err := r.IntDict(ci)
		if err != nil {
			return 0, 0, err
		}
		for _, e := range dict {
			if f.Pred(e) {
				keys++
			}
		}
		return keys, len(dict), nil
	}
	return 0, 0, fmt.Errorf("ops: not a key-set filter")
}

// zoneSelectivity walks column ci's page zone maps, classifying each page
// against the packed-domain comparison exactly as the scan will: DispAll
// pages contribute every row, DispNone none, and mixed pages interpolate
// from the page's min/max span (equality uses 1/distinct). Returns ok=false
// when no page carries statistics (v1/v2 files), so the caller can fall
// back to a structural heuristic. Metadata only — no page is fetched.
func zoneSelectivity(r *colstore.Reader, ci int, op sboost.Op, target uint64) (float64, bool) {
	var rows, est float64
	saw := false
	for rg := 0; rg < r.NumRowGroups(); rg++ {
		chunk := r.Chunk(rg, ci)
		for p := 0; p < chunk.NumPages(); p++ {
			n := float64(chunk.PageValues(p))
			rows += n
			st := chunk.PageStatsOf(p)
			if st == nil {
				est += n / 2
				continue
			}
			saw = true
			switch sboost.Dispose(op, target, st.Min, st.Max) {
			case sboost.DispNone:
			case sboost.DispAll:
				est += n
			default:
				est += n * mixedPageFraction(op, target, st)
			}
		}
	}
	if !saw || rows == 0 {
		return 0, false
	}
	return clamp01(est / rows), true
}

// mixedPageFraction estimates the matching fraction of one page whose zone
// map straddles the target, assuming values spread uniformly over
// [Min, Max].
func mixedPageFraction(op sboost.Op, target uint64, st *colstore.PageStats) float64 {
	span := float64(st.Max-st.Min) + 1
	switch op {
	case sboost.OpEq:
		if st.Distinct > 0 {
			return 1 / float64(st.Distinct)
		}
		return 1 / span
	case sboost.OpNe:
		if st.Distinct > 0 {
			return 1 - 1/float64(st.Distinct)
		}
		return 1 - 1/span
	case sboost.OpLt:
		return clamp01(float64(target-st.Min) / span)
	case sboost.OpLe:
		return clamp01((float64(target-st.Min) + 1) / span)
	case sboost.OpGt:
		return clamp01(float64(st.Max-target) / span)
	case sboost.OpGe:
		return clamp01((float64(st.Max-target) + 1) / span)
	}
	return 0.5
}

// dictPositionSelectivity is the zone-map-free fallback for dictionary
// comparisons: with an order-preserving dictionary, the rewritten key
// bound's position inside the dictionary is itself a uniform-assumption
// selectivity estimate.
func dictPositionSelectivity(op sboost.Op, lb int64, dictLen int) float64 {
	if dictLen == 0 {
		return 0
	}
	d := float64(dictLen)
	switch op {
	case sboost.OpEq:
		return 1 / d
	case sboost.OpNe:
		return 1 - 1/d
	case sboost.OpLt:
		return clamp01(float64(lb) / d)
	case sboost.OpLe:
		return clamp01((float64(lb) + 1) / d)
	case sboost.OpGt:
		return clamp01((d - float64(lb) - 1) / d)
	case sboost.OpGe:
		return clamp01((d - float64(lb)) / d)
	}
	return 0.5
}

// zigzagSelectivity estimates a plain-integer comparison by rewriting it
// into the zigzag packed domain (the domain delta and bit-packed zone maps
// live in) and walking page statistics; files without page statistics fall
// back to fixed per-operator guesses.
func zigzagSelectivity(r *colstore.Reader, ci int, op sboost.Op, value int64) float64 {
	zz := func(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
	zop, target, match, all := rewriteZigzagPredicate(op, value, zz)
	switch {
	case all:
		return 1
	case !match:
		return 0
	}
	if s, ok := zoneSelectivity(r, ci, zop, target); ok {
		return s
	}
	switch op {
	case sboost.OpEq:
		return 0.1
	case sboost.OpNe:
		return 0.9
	default:
		return 1.0 / 3
	}
}

func obliviousEstimate(col string, r *colstore.Reader) PredEstimate {
	ci, _, err := r.Column(col)
	if err != nil {
		return unknownEstimate(r)
	}
	return PredEstimate{Sel: 0.5, Cost: costOblivious * bytesOf(r, ci)}
}

// unknownEstimate prices a filter the planner cannot introspect: assume it
// keeps half the rows and must fully decode every column byte.
func unknownEstimate(r *colstore.Reader) PredEstimate {
	var total float64
	for ci := range r.Schema().Columns {
		total += bytesOf(r, ci)
	}
	return PredEstimate{Sel: 0.5, Cost: costOblivious * total}
}

func bytesOf(r *colstore.Reader, ci int) float64 {
	return float64(r.ColumnBytes(ci) + 1)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Execute runs the planned pipeline. AND children run in planned order,
// each receiving the selection accumulated so far, so later filters skip
// row groups and pages already eliminated; an empty accumulated selection
// stops the chain. OR children run against the rows not yet matched, so a
// branch that saturates the selection short-circuits the rest. The result
// of every node is a subset of the selection it received.
func (pl *Plan) Execute(ctx context.Context, r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error) {
	return execNode(ctx, pl.Root, r, pool, nil)
}

// execNode evaluates node restricted to sel (nil means all rows).
func execNode(ctx context.Context, node *PlanNode, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	switch node.Pred.Kind {
	case PredLeaf:
		return applyPlannedLeaf(ctx, node, r, pool, sel)
	case PredNot:
		bm, err := applyPlannedLeaf(ctx, node, r, pool, sel)
		if err != nil {
			return nil, err
		}
		base := sel
		if base == nil {
			base = FullTableBitmap(r)
		} else {
			base = base.Clone()
		}
		return base.AndNot(bm), nil
	case PredAnd:
		acc := sel
		for _, kid := range node.Kids {
			bm, err := execNode(ctx, kid, r, pool, acc)
			if err != nil {
				return nil, err
			}
			acc = bm
			if acc.Cardinality() == 0 {
				break
			}
		}
		if acc == nil {
			// Conjunction of zero predicates keeps everything.
			acc = FullTableBitmap(r)
		}
		return acc, nil
	case PredOr:
		return execOr(ctx, node, r, pool, sel)
	}
	return nil, fmt.Errorf("ops: unknown predicate kind %d", node.Pred.Kind)
}

// execOr unions the branches of a disjunction. Each branch is evaluated
// only over the rows no earlier branch matched: rows already in the result
// need no retesting (the union cannot lose them), so a cheap high-coverage
// first branch shrinks — and with clustered data often empties — the
// selection the remaining branches see. An empty remainder short-circuits.
func execOr(ctx context.Context, node *PlanNode, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	sp := obs.SpanFrom(ctx)
	var child *obs.Span
	if sp != nil {
		// The OR node gets one span covering the whole union: its IO delta
		// accounts every branch, so the one-level sum over a parent span's
		// children still equals the reader's IOStats delta; branch spans
		// nest inside for drill-down.
		child = sp.StartChild(fmt.Sprintf("Or[%d branches]", len(node.Kids)))
		ioBefore := r.Stats()
		defer func() {
			child.AddIO(ioDelta(ioBefore, r.Stats()))
			child.End()
		}()
		ctx = obs.ContextWithSpan(ctx, child)
	}
	result := NewTableBitmap(r)
	remaining := sel // nil = all rows
	for i, kid := range node.Kids {
		if remaining != nil && remaining.Cardinality() == 0 {
			if child != nil {
				child.AddDetail("short-circuit: %d of %d branches skipped, selection saturated", len(node.Kids)-i, len(node.Kids))
			}
			break
		}
		bm, err := execNode(ctx, kid, r, pool, remaining)
		if err != nil {
			return nil, err
		}
		result.Or(bm)
		if remaining == nil {
			remaining = FullTableBitmap(r)
			if sel != nil {
				remaining = sel.Clone()
			}
		} else {
			remaining = remaining.Clone()
		}
		remaining.AndNot(bm)
	}
	if child != nil {
		rowsIn := r.NumRows()
		if sel != nil {
			rowsIn = int64(sel.Cardinality())
		}
		child.AddDetail("selectivity est=%.4f actual=%.4f", node.Est.Sel, actualSel(result, rowsIn))
		child.SetRows(rowsIn, int64(result.Cardinality()))
	}
	return result, nil
}

// applyPlannedLeaf is the leaf execution path: ApplyFilter with the
// selection, plus the planner's estimate-vs-actual annotation on the
// filter's span when tracing is on.
func applyPlannedLeaf(ctx context.Context, node *PlanNode, r *colstore.Reader, pool *exec.Pool, sel *bitutil.SectionalBitmap) (*bitutil.SectionalBitmap, error) {
	if sp := obs.SpanFrom(ctx); sp != nil {
		return applyFilterTracedEst(ctx, sp, node.Pred.Leaf, r, pool, sel, &node.Est)
	}
	return applyFilterRaw(ctx, node.Pred.Leaf, r, pool, sel)
}

func actualSel(bm *bitutil.SectionalBitmap, rowsIn int64) float64 {
	if rowsIn == 0 {
		return 0
	}
	return float64(bm.Cardinality()) / float64(rowsIn)
}

// Describe renders the plan as an indented tree, one line per node, with
// the chosen order and each node's estimates — the static half of EXPLAIN.
func (pl *Plan) Describe() []string {
	var out []string
	describeNode(pl.Root, 0, &out)
	return out
}

func describeNode(n *PlanNode, depth int, out *[]string) {
	pad := strings.Repeat("  ", depth)
	switch n.Pred.Kind {
	case PredLeaf:
		*out = append(*out, fmt.Sprintf("%s%s  est-sel=%.4f cost=%.0f", pad, FilterName(n.Pred.Leaf), n.Est.Sel, n.Est.Cost))
	case PredNot:
		*out = append(*out, fmt.Sprintf("%sNot[%s]  est-sel=%.4f cost=%.0f", pad, FilterName(n.Pred.Leaf), n.Est.Sel, n.Est.Cost))
	case PredAnd:
		*out = append(*out, fmt.Sprintf("%sAnd[%d conjuncts, planned order]  est-sel=%.4f", pad, len(n.Kids), n.Est.Sel))
		for _, k := range n.Kids {
			describeNode(k, depth+1, out)
		}
	case PredOr:
		*out = append(*out, fmt.Sprintf("%sOr[%d branches, cheap-first]  est-sel=%.4f", pad, len(n.Kids), n.Est.Sel))
		for _, k := range n.Kids {
			describeNode(k, depth+1, out)
		}
	}
}
