package ops

import (
	"encoding/binary"
	"math"
	"sort"
)

// Worker-local group-by accumulation for relational plans. When every
// group key declares an int domain [Lo,Hi) and the widths pack into 62
// bits, keys compose into one packed int64 and cells live in a flat
// int64-keyed map; otherwise keys serialize into an order-preserving byte
// encoding. Either way partials merge cell-wise at the end of the run and
// the result batch is sorted by key tuple, so output is deterministic
// regardless of worker count or morsel schedule.

// relCell is one group's running aggregate state.
type relCell struct {
	keyI []int64
	keyS [][]byte
	avs  []relAggVal
}

type relAggVal struct {
	i int64
	f float64
	d map[int64]struct{}
}

// relGroupAcc is one worker's (or the merged) grouped partial.
type relGroupAcc struct {
	g      *RelGroup
	inputs []RelInput
	packed bool
	shift  []uint
	lo     []int64
	pm     map[int64]*relCell
	bm     map[string]*relCell
	kbuf   []byte
}

func newRelGroupAcc(g *RelGroup, inputs []RelInput) *relGroupAcc {
	a := &relGroupAcc{g: g, inputs: inputs}
	a.packed = true
	bits := uint(0)
	for _, k := range g.Keys {
		if k.Str || k.Hi <= k.Lo {
			a.packed = false
			break
		}
		w := uint(0)
		for span := uint64(k.Hi - k.Lo); span > 0; span >>= 1 {
			w++
		}
		bits += w
	}
	if a.packed && bits <= 62 {
		a.shift = make([]uint, len(g.Keys))
		a.lo = make([]int64, len(g.Keys))
		at := uint(0)
		for i := len(g.Keys) - 1; i >= 0; i-- {
			k := g.Keys[i]
			a.shift[i] = at
			a.lo[i] = k.Lo
			for span := uint64(k.Hi - k.Lo); span > 0; span >>= 1 {
				at++
			}
		}
		a.pm = make(map[int64]*relCell)
	} else {
		a.packed = false
		a.bm = make(map[string]*relCell)
	}
	return a
}

// keyOf evaluates group key j for env row i.
func (a *relGroupAcc) keyOf(j int, e *RelEnv, i int) int64 {
	k := &a.g.Keys[j]
	if k.Fn != nil {
		return k.Fn(e, i)
	}
	return e.I[k.Input][i]
}

// cell returns (creating if needed) the cell for env row i.
func (a *relGroupAcc) cell(e *RelEnv, i int) *relCell {
	if a.packed {
		var pk int64
		for j := range a.g.Keys {
			pk |= (a.keyOf(j, e, i) - a.lo[j]) << a.shift[j]
		}
		c := a.pm[pk]
		if c == nil {
			c = a.newCell(e, i)
			a.pm[pk] = c
		}
		return c
	}
	a.kbuf = a.kbuf[:0]
	for j := range a.g.Keys {
		k := &a.g.Keys[j]
		if k.Str {
			s := e.S[k.Input][i]
			a.kbuf = binary.BigEndian.AppendUint32(a.kbuf, uint32(len(s)))
			a.kbuf = append(a.kbuf, s...)
			continue
		}
		a.kbuf = binary.BigEndian.AppendUint64(a.kbuf, uint64(a.keyOf(j, e, i)))
	}
	c := a.bm[string(a.kbuf)]
	if c == nil {
		c = a.newCell(e, i)
		a.bm[string(a.kbuf)] = c
	}
	return c
}

func (a *relGroupAcc) newCell(e *RelEnv, i int) *relCell {
	c := &relCell{avs: make([]relAggVal, len(a.g.Aggs))}
	for j := range a.g.Keys {
		k := &a.g.Keys[j]
		if k.Str {
			s := e.S[k.Input][i]
			c.keyS = append(c.keyS, append([]byte(nil), s...))
			c.keyI = append(c.keyI, 0)
			continue
		}
		c.keyI = append(c.keyI, a.keyOf(j, e, i))
		c.keyS = append(c.keyS, nil)
	}
	for j, ag := range a.g.Aggs {
		switch ag.Kind {
		case RelAggMinInt:
			c.avs[j].i = math.MaxInt64
		case RelAggMaxInt:
			c.avs[j].i = math.MinInt64
		case RelAggMinFloat:
			c.avs[j].f = math.Inf(1)
		case RelAggMaxFloat:
			c.avs[j].f = math.Inf(-1)
		case RelAggCountDistinct:
			c.avs[j].d = make(map[int64]struct{})
		}
	}
	return c
}

func (a *relGroupAcc) aggI(ag *RelAgg, e *RelEnv, i int) int64 {
	if ag.FnI != nil {
		return ag.FnI(e, i)
	}
	return e.I[ag.Input][i]
}

func (a *relGroupAcc) aggF(ag *RelAgg, e *RelEnv, i int) float64 {
	if ag.FnF != nil {
		return ag.FnF(e, i)
	}
	return e.F[ag.Input][i]
}

// accumulate folds every env row into the partial.
func (a *relGroupAcc) accumulate(e *RelEnv) {
	for i := 0; i < e.N; i++ {
		c := a.cell(e, i)
		for j := range a.g.Aggs {
			ag := &a.g.Aggs[j]
			v := &c.avs[j]
			switch ag.Kind {
			case RelAggCount:
				v.i++
			case RelAggSumInt:
				v.i += a.aggI(ag, e, i)
			case RelAggSumFloat:
				v.f += a.aggF(ag, e, i)
			case RelAggMinInt:
				if x := a.aggI(ag, e, i); x < v.i {
					v.i = x
				}
			case RelAggMaxInt:
				if x := a.aggI(ag, e, i); x > v.i {
					v.i = x
				}
			case RelAggMinFloat:
				if x := a.aggF(ag, e, i); x < v.f {
					v.f = x
				}
			case RelAggMaxFloat:
				if x := a.aggF(ag, e, i); x > v.f {
					v.f = x
				}
			case RelAggCountDistinct:
				v.d[a.aggI(ag, e, i)] = struct{}{}
			}
		}
	}
}

// merge folds another worker's partial into this one.
func (a *relGroupAcc) merge(o *relGroupAcc) {
	if a.packed {
		for pk, oc := range o.pm {
			if c := a.pm[pk]; c != nil {
				mergeCells(a.g, c, oc)
			} else {
				a.pm[pk] = oc
			}
		}
		return
	}
	for bk, oc := range o.bm {
		if c := a.bm[bk]; c != nil {
			mergeCells(a.g, c, oc)
		} else {
			a.bm[bk] = oc
		}
	}
}

func mergeCells(g *RelGroup, c, oc *relCell) {
	for j := range g.Aggs {
		v, ov := &c.avs[j], &oc.avs[j]
		switch g.Aggs[j].Kind {
		case RelAggCount, RelAggSumInt:
			v.i += ov.i
		case RelAggSumFloat:
			v.f += ov.f
		case RelAggMinInt:
			if ov.i < v.i {
				v.i = ov.i
			}
		case RelAggMaxInt:
			if ov.i > v.i {
				v.i = ov.i
			}
		case RelAggMinFloat:
			if ov.f < v.f {
				v.f = ov.f
			}
		case RelAggMaxFloat:
			if ov.f > v.f {
				v.f = ov.f
			}
		case RelAggCountDistinct:
			for x := range ov.d {
				v.d[x] = struct{}{}
			}
		}
	}
}

// result sorts the merged cells by key tuple and lays them out as the
// output batch: key columns first, then one column per aggregate.
func (a *relGroupAcc) result(rp *RelPlan) *Batch {
	var cells []*relCell
	if a.packed {
		cells = make([]*relCell, 0, len(a.pm))
		for _, c := range a.pm {
			cells = append(cells, c)
		}
	} else {
		cells = make([]*relCell, 0, len(a.bm))
		for _, c := range a.bm {
			cells = append(cells, c)
		}
	}
	g := a.g
	sort.Slice(cells, func(x, y int) bool {
		cx, cy := cells[x], cells[y]
		for j := range g.Keys {
			if g.Keys[j].Str {
				if c := compareBytes(cx.keyS[j], cy.keyS[j]); c != 0 {
					return c < 0
				}
				continue
			}
			if cx.keyI[j] != cy.keyI[j] {
				return cx.keyI[j] < cy.keyI[j]
			}
		}
		return false
	})
	out := &Batch{}
	col := 0
	for j := range g.Keys {
		name := rp.Names[col]
		col++
		if g.Keys[j].Str {
			vals := make([][]byte, len(cells))
			for i, c := range cells {
				vals[i] = c.keyS[j]
			}
			out.AddStrs(name, vals)
			continue
		}
		vals := make([]int64, len(cells))
		for i, c := range cells {
			vals[i] = c.keyI[j]
		}
		out.AddInts(name, vals)
	}
	for j := range g.Aggs {
		name := rp.Names[col]
		col++
		if g.Aggs[j].Kind.intAgg() {
			vals := make([]int64, len(cells))
			for i, c := range cells {
				if g.Aggs[j].Kind == RelAggCountDistinct {
					vals[i] = int64(len(c.avs[j].d))
				} else {
					vals[i] = c.avs[j].i
				}
			}
			out.AddInts(name, vals)
			continue
		}
		vals := make([]float64, len(cells))
		for i, c := range cells {
			vals[i] = c.avs[j].f
		}
		out.AddFloats(name, vals)
	}
	out.N = len(cells)
	return out
}

// relTopK is a per-worker bounded row buffer for order-by + limit: rows
// keep a stable (rowGroup, sequence) ordinal so ties break by table order
// and the merge is deterministic.
type relTopK struct {
	sk   *RelSink
	rows []relTopRow
	seq  int64
	lim  int
}

type relTopRow struct {
	ord int64
	i   []int64
	f   []float64
	s   [][]byte
}

func newRelTopK(sk *RelSink) *relTopK {
	k := sk.Collect.K
	return &relTopK{sk: sk, lim: 4 * k, rows: make([]relTopRow, 0, k)}
}

// add buffers every env row; past 4·K (min 4096) the buffer is sorted and
// truncated back to K so memory stays bounded on large scans.
func (t *relTopK) add(e *RelEnv, rg int) {
	for i := 0; i < e.N; i++ {
		r := relTopRow{
			ord: int64(rg)<<32 | t.seq,
			i:   make([]int64, len(t.sk.Inputs)),
			f:   make([]float64, len(t.sk.Inputs)),
		}
		t.seq++
		for j := range t.sk.Inputs {
			switch {
			case e.I[j] != nil:
				r.i[j] = e.I[j][i]
			case e.F[j] != nil:
				r.f[j] = e.F[j][i]
			default:
				if r.s == nil {
					r.s = make([][]byte, len(t.sk.Inputs))
				}
				r.s[j] = e.S[j][i]
			}
		}
		t.rows = append(t.rows, r)
	}
	bound := t.lim
	if bound < 4096 {
		bound = 4096
	}
	if len(t.rows) > bound {
		t.trim(t.sk.Collect.K)
	}
}

// trim sorts by the collect keys (ordinal tiebreak) and truncates to k.
func (t *relTopK) trim(k int) {
	keys := t.sk.Collect.Sort
	sort.Slice(t.rows, func(x, y int) bool {
		rx, ry := &t.rows[x], &t.rows[y]
		for _, sk := range keys {
			j := sk.Input
			var c int
			switch sinkInputKind(&t.sk.Inputs[j]) {
			case RelStr:
				var bx, by []byte
				if rx.s != nil {
					bx = rx.s[j]
				}
				if ry.s != nil {
					by = ry.s[j]
				}
				c = compareBytes(bx, by)
			case RelFloat:
				c = compareF64(rx.f[j], ry.f[j])
			default:
				c = compareI64(rx.i[j], ry.i[j])
			}
			if sk.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return rx.ord < ry.ord
	})
	if len(t.rows) > k {
		t.rows = t.rows[:k]
	}
}

// batch lays the trimmed rows out as the output batch.
func (t *relTopK) batch(rp *RelPlan) *Batch {
	sk := t.sk
	out := &Batch{}
	for j := range sk.Inputs {
		name := rp.Names[j]
		switch sinkInputKind(&sk.Inputs[j]) {
		case RelFloat:
			vals := make([]float64, len(t.rows))
			for i := range t.rows {
				vals[i] = t.rows[i].f[j]
			}
			out.AddFloats(name, vals)
		case RelStr:
			vals := make([][]byte, len(t.rows))
			for i := range t.rows {
				if t.rows[i].s != nil {
					vals[i] = t.rows[i].s[j]
				}
			}
			out.AddStrs(name, vals)
		default:
			vals := make([]int64, len(t.rows))
			for i := range t.rows {
				vals[i] = t.rows[i].i[j]
			}
			out.AddInts(name, vals)
		}
	}
	out.N = len(t.rows)
	return out
}
