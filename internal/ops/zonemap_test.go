package ops

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"codecdb/internal/bitutil"
	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/exec"
	"codecdb/internal/sboost"
)

func TestLowerBoundEdges(t *testing.T) {
	if got := lowerBoundInt(nil, 5); got != 0 {
		t.Fatalf("empty dict lower bound = %d", got)
	}
	dict := []int64{10, 20, 30}
	cases := []struct {
		v    int64
		want int64
	}{
		{5, 0}, {10, 0}, {15, 1}, {30, 2}, {31, 3}, {1000, 3},
	}
	for _, c := range cases {
		if got := lowerBoundInt(dict, c.v); got != c.want {
			t.Fatalf("lowerBoundInt(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	sdict := [][]byte{[]byte("b"), []byte("d")}
	if got := lowerBoundStr(sdict, []byte("a")); got != 0 {
		t.Fatalf("below-first string lower bound = %d", got)
	}
	if got := lowerBoundStr(sdict, []byte("z")); got != 2 {
		t.Fatalf("past-last string lower bound = %d", got)
	}
	if got := lowerBoundStr(nil, []byte("a")); got != 0 {
		t.Fatalf("empty string dict lower bound = %d", got)
	}
}

// TestRewriteDictPredicateEdges pins the static resolutions at the dict
// boundaries: a probe value below the first entry, past the last entry,
// exactly on an entry, and against an empty dictionary.
func TestRewriteDictPredicateEdges(t *testing.T) {
	const dictLen = 8
	cases := []struct {
		name      string
		op        sboost.Op
		lb        int64
		exact     bool
		dictLen   int
		wantOp    sboost.Op
		wantMatch bool
		wantAll   bool
	}{
		// Empty dictionary: every predicate resolves statically.
		{"empty/eq", sboost.OpEq, 0, false, 0, 0, false, false},
		{"empty/ne", sboost.OpNe, 0, false, 0, 0, false, true},
		{"empty/lt", sboost.OpLt, 0, false, 0, 0, false, false},
		{"empty/ge", sboost.OpGe, 0, false, 0, 0, false, false},
		// Below the first entry (lb=0, not exact).
		{"below/eq", sboost.OpEq, 0, false, dictLen, sboost.OpEq, false, false},
		{"below/lt", sboost.OpLt, 0, false, dictLen, 0, false, false},
		{"below/le", sboost.OpLe, 0, false, dictLen, 0, false, false},
		{"below/gt", sboost.OpGt, 0, false, dictLen, sboost.OpGe, true, false},
		{"below/ge", sboost.OpGe, 0, false, dictLen, sboost.OpGe, true, false},
		// Past the last entry (lb=dictLen, not exact).
		{"past/eq", sboost.OpEq, dictLen, false, dictLen, sboost.OpEq, false, false},
		{"past/ne", sboost.OpNe, dictLen, false, dictLen, 0, false, true},
		{"past/lt", sboost.OpLt, dictLen, false, dictLen, 0, false, true},
		{"past/le", sboost.OpLe, dictLen, false, dictLen, 0, false, true},
		{"past/gt", sboost.OpGt, dictLen, false, dictLen, 0, false, false},
		{"past/ge", sboost.OpGe, dictLen, false, dictLen, 0, false, false},
		// Exact hit on an interior entry: <= keeps Le, >= keeps Ge.
		{"exact/le", sboost.OpLe, 3, true, dictLen, sboost.OpLe, true, false},
		{"exact/ge", sboost.OpGe, 3, true, dictLen, sboost.OpGe, true, false},
		{"exact/eq", sboost.OpEq, 3, true, dictLen, sboost.OpEq, true, false},
		{"exact/ne", sboost.OpNe, 3, true, dictLen, sboost.OpNe, true, false},
		// Absent interior value: <= and < both become Lt on the lower bound.
		{"interior/le", sboost.OpLe, 3, false, dictLen, sboost.OpLt, true, false},
		{"interior/lt", sboost.OpLt, 3, false, dictLen, sboost.OpLt, true, false},
		{"interior/gt", sboost.OpGt, 3, false, dictLen, sboost.OpGe, true, false},
	}
	for _, c := range cases {
		op, match, all := rewriteDictPredicate(c.op, c.lb, c.exact, c.dictLen)
		if all != c.wantAll || match != c.wantMatch || (match && op != c.wantOp) {
			t.Errorf("%s: got (op=%v match=%v all=%v), want (op=%v match=%v all=%v)",
				c.name, op, match, all, c.wantOp, c.wantMatch, c.wantAll)
		}
	}
}

type appliable interface {
	Apply(r *colstore.Reader, pool *exec.Pool) (*bitutil.SectionalBitmap, error)
}

// runPrunedAndUnpruned applies the filter twice — with page pruning on and
// off — and fails unless the bitmaps agree bit-for-bit and the pruned run
// actually consulted the zone maps.
func runPrunedAndUnpruned(t *testing.T, r *colstore.Reader, pool *exec.Pool, f appliable, label string) {
	t.Helper()
	r.SetPagePruning(false)
	want, err := f.Apply(r, pool)
	if err != nil {
		t.Fatalf("%s unpruned: %v", label, err)
	}
	r.SetPagePruning(true)
	r.ResetStats()
	got, err := f.Apply(r, pool)
	if err != nil {
		t.Fatalf("%s pruned: %v", label, err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: pruned len %d, unpruned len %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Get(i) != want.Get(i) {
			t.Fatalf("%s: row %d pruned=%v unpruned=%v", label, i, got.Get(i), want.Get(i))
		}
	}
}

// TestZoneMapPruningMatchesFullScan is the soundness property test: on
// random data with clustered pages (so zone maps have teeth), every filter
// type must produce identical bitmaps with pruning on and off.
func TestZoneMapPruningMatchesFullScan(t *testing.T) {
	const n = 6000
	rng := rand.New(rand.NewSource(99))
	// Clustered values: each page-sized run draws from a narrow band, so
	// many pages are prunable for point and range predicates.
	clustered := make([]int64, n)
	signed := make([]int64, n)
	sorted := make([]int64, n)
	strs := make([][]byte, n)
	twoA := make([]int64, n)
	twoB := make([]int64, n)
	for i := 0; i < n; i++ {
		band := int64((i / 256) % 8 * 100)
		clustered[i] = band + rng.Int63n(50)
		signed[i] = rng.Int63n(400) - 200
		sorted[i] = int64(i / 3)
		strs[i] = []byte(fmt.Sprintf("key-%03d", band/10+rng.Int63n(5)))
		twoA[i] = band + rng.Int63n(30)
		twoB[i] = band + rng.Int63n(30)
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "dict", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
		{Name: "bp", Type: colstore.TypeInt64, Encoding: encoding.KindBitPacked},
		{Name: "neg", Type: colstore.TypeInt64, Encoding: encoding.KindBitPacked},
		{Name: "delta", Type: colstore.TypeInt64, Encoding: encoding.KindDelta},
		{Name: "str", Type: colstore.TypeString, Encoding: encoding.KindDict},
		{Name: "a", Type: colstore.TypeInt64, Encoding: encoding.KindDict, DictGroup: "ab"},
		{Name: "b", Type: colstore.TypeInt64, Encoding: encoding.KindDict, DictGroup: "ab"},
	}}
	path := filepath.Join(t.TempDir(), "zm.cdb")
	err := colstore.WriteFile(path, schema, []colstore.ColumnData{
		{Ints: clustered}, {Ints: clustered}, {Ints: signed}, {Ints: sorted},
		{Strings: strs}, {Ints: twoA}, {Ints: twoB},
	}, colstore.Options{RowGroupRows: 2048, PageRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pool := exec.NewPool(4)

	ops := []sboost.Op{sboost.OpEq, sboost.OpNe, sboost.OpLt, sboost.OpLe, sboost.OpGt, sboost.OpGe}
	targets := []int64{0, 125, 349, 700, 7000, -1}
	for _, op := range ops {
		for _, v := range targets {
			runPrunedAndUnpruned(t, r, pool,
				&DictFilter{Col: "dict", Op: op, IntValue: v}, fmt.Sprintf("dict op=%v v=%d", op, v))
			runPrunedAndUnpruned(t, r, pool,
				&BitPackedFilter{Col: "bp", Op: op, Value: v}, fmt.Sprintf("bp op=%v v=%d", op, v))
			runPrunedAndUnpruned(t, r, pool,
				&BitPackedFilter{Col: "neg", Op: op, Value: v - 150}, fmt.Sprintf("neg op=%v v=%d", op, v-150))
			runPrunedAndUnpruned(t, r, pool,
				&DeltaFilter{Col: "delta", Op: op, Value: v}, fmt.Sprintf("delta op=%v v=%d", op, v))
		}
		runPrunedAndUnpruned(t, r, pool,
			&DictFilter{Col: "str", Op: op, StrValue: []byte("key-035")}, fmt.Sprintf("str op=%v", op))
		runPrunedAndUnpruned(t, r, pool,
			&TwoColumnFilter{ColA: "a", ColB: "b", Op: op}, fmt.Sprintf("two op=%v", op))
	}
	runPrunedAndUnpruned(t, r, pool,
		&DictInFilter{Col: "dict", IntValues: []int64{3, 120, 121, 655, 9999}}, "in scattered")
	runPrunedAndUnpruned(t, r, pool,
		&DictInFilter{Col: "dict", IntValues: []int64{100, 101, 102, 103}}, "in contiguous")

	// The zone maps must actually fire on this layout: a point probe in
	// the lowest band cannot touch pages of the higher bands.
	r.ResetStats()
	if _, err := (&DictFilter{Col: "dict", Op: sboost.OpEq, IntValue: 10}).Apply(r, pool); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.PagesPruned == 0 {
		t.Fatalf("expected pruned pages on clustered data, stats %+v", st)
	}
}

// TestZoneMapPruningRandomProperty fuzzes predicates over uniform random
// data — fewer prunable pages, but the agreement property must still hold.
func TestZoneMapPruningRandomProperty(t *testing.T) {
	const n = 4000
	rng := rand.New(rand.NewSource(1234))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(2000)
	}
	schema := colstore.Schema{Columns: []colstore.Column{
		{Name: "d", Type: colstore.TypeInt64, Encoding: encoding.KindDict},
		{Name: "p", Type: colstore.TypeInt64, Encoding: encoding.KindBitPacked},
	}}
	path := filepath.Join(t.TempDir(), "rand.cdb")
	err := colstore.WriteFile(path, schema, []colstore.ColumnData{{Ints: vals}, {Ints: vals}},
		colstore.Options{RowGroupRows: 1024, PageRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	r, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pool := exec.NewPool(4)
	ops := []sboost.Op{sboost.OpEq, sboost.OpNe, sboost.OpLt, sboost.OpLe, sboost.OpGt, sboost.OpGe}
	for trial := 0; trial < 40; trial++ {
		op := ops[rng.Intn(len(ops))]
		v := rng.Int63n(2400) - 200
		runPrunedAndUnpruned(t, r, pool,
			&DictFilter{Col: "d", Op: op, IntValue: v}, fmt.Sprintf("trial %d dict op=%v v=%d", trial, op, v))
		runPrunedAndUnpruned(t, r, pool,
			&BitPackedFilter{Col: "p", Op: op, Value: v}, fmt.Sprintf("trial %d bp op=%v v=%d", trial, op, v))
	}
}
