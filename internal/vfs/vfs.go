// Package vfs is the storage layer's filesystem seam. The column file
// writer and reader go through the FS interface instead of os.* directly,
// so tests can substitute a FaultFS that injects I/O errors, short reads,
// bit flips, and latency deterministically — the foundation for the
// storage robustness suite (corruption must be detected and reported, not
// crash or silently return wrong answers).
//
// The write side of the interface carries the durability primitives the
// crash-safe ingestion path needs: WFile.Sync for fsync barriers, Rename
// for atomic publication of temp files, SyncDir for making renames and
// unlinks durable, and ReadDir/Remove for recovery sweeps. FaultFS
// injects faults into all of them, including deterministic "crash
// points" where every write-side operation from some point on fails —
// the model the crash-point matrix tests replay.
package vfs

import (
	"io"
	"os"
	"sort"
)

// File is a readable handle: random-access reads plus size, the two
// operations the column reader needs.
type File interface {
	io.ReaderAt
	io.Closer
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
}

// WFile is a writable handle. Sync must not return until previously
// written bytes are durable; the WAL and shard flush path rely on it as
// their commit barrier.
type WFile interface {
	io.Writer
	io.Closer
	Sync() error
}

// FS opens files for reading and creates files for writing, plus the
// directory-level operations the crash-safe write path needs.
type FS interface {
	Open(path string) (File, error)
	Create(path string) (WFile, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename
	// semantics: readers see either the old or the new file, never a mix).
	Rename(oldpath, newpath string) error
	// Remove unlinks a file.
	Remove(path string) error
	// ReadDir lists the names (not paths) of a directory's entries in
	// sorted order.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs a directory, making completed renames/unlinks inside
	// it durable.
	SyncDir(dir string) error
}

// OS returns the real operating-system filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Create(path string) (WFile, error) { return os.Create(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
