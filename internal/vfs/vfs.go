// Package vfs is the storage layer's filesystem seam. The column file
// writer and reader go through the FS interface instead of os.* directly,
// so tests can substitute a FaultFS that injects I/O errors, short reads,
// bit flips, and latency deterministically — the foundation for the
// storage robustness suite (corruption must be detected and reported, not
// crash or silently return wrong answers).
package vfs

import (
	"io"
	"os"
)

// File is a readable handle: random-access reads plus size, the two
// operations the column reader needs.
type File interface {
	io.ReaderAt
	io.Closer
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
}

// FS opens files for reading and creates files for writing.
type FS interface {
	Open(path string) (File, error)
	Create(path string) (io.WriteCloser, error)
}

// OS returns the real operating-system filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Create(path string) (io.WriteCloser, error) { return os.Create(path) }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
