package vfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the base error of every fault the FaultFS injects;
// tests match it with errors.Is to separate injected faults from real
// filesystem failures.
var ErrInjected = errors.New("vfs: injected I/O error")

// FaultConfig tunes the fault mix. Probabilities are per ReadAt call and
// evaluated from one seeded PRNG, so a given (seed, operation sequence)
// replays the same faults.
type FaultConfig struct {
	// Seed makes the injection deterministic.
	Seed int64
	// ErrProb is the probability a read fails outright with ErrInjected.
	// Failures are transient by construction: the PRNG advances per call,
	// so an immediate retry of the same read usually succeeds — the shape
	// of a flaky disk or network filesystem that a bounded retry policy
	// should absorb.
	ErrProb float64
	// ShortReadProb is the probability a read returns only a prefix of
	// the requested bytes with io.ErrUnexpectedEOF.
	ShortReadProb float64
	// BitFlipProb is the probability one random bit of the returned
	// buffer is flipped — silent corruption that only checksum
	// verification can catch.
	BitFlipProb float64
	// Latency is an optional per-read delay.
	Latency time.Duration
}

// FaultFS wraps an FS and injects faults into reads according to the
// config. Writes pass through untouched. Injection starts disabled so a
// test can open a file cleanly first; flip it on with SetEnabled(true).
type FaultFS struct {
	inner FS
	cfg   FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	enabled bool

	// Fault counters, guarded by mu.
	errs       int64
	shortReads int64
	bitFlips   int64
}

// NewFaultFS wraps inner with fault injection per cfg, initially disabled.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetEnabled switches injection on or off.
func (ff *FaultFS) SetEnabled(on bool) {
	ff.mu.Lock()
	ff.enabled = on
	ff.mu.Unlock()
}

// Injected reports how many faults of each kind have fired.
func (ff *FaultFS) Injected() (errs, shortReads, bitFlips int64) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.errs, ff.shortReads, ff.bitFlips
}

// Open opens the file through the inner FS and wraps its reads.
func (ff *FaultFS) Open(path string) (File, error) {
	f, err := ff.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, fs: ff}, nil
}

// Create passes through to the inner FS.
func (ff *FaultFS) Create(path string) (io.WriteCloser, error) { return ff.inner.Create(path) }

// fault draws the fault decision for one read of length n. It returns the
// kind of fault to apply ("" for none) and, for short reads, the number
// of bytes to deliver, or for bit flips, the bit position to flip.
func (ff *FaultFS) fault(n int) (kind string, arg int) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if !ff.enabled || n == 0 {
		return "", 0
	}
	switch r := ff.rng.Float64(); {
	case r < ff.cfg.ErrProb:
		ff.errs++
		return "err", 0
	case r < ff.cfg.ErrProb+ff.cfg.ShortReadProb:
		ff.shortReads++
		return "short", ff.rng.Intn(n)
	case r < ff.cfg.ErrProb+ff.cfg.ShortReadProb+ff.cfg.BitFlipProb:
		ff.bitFlips++
		return "flip", ff.rng.Intn(n * 8)
	}
	return "", 0
}

type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if d := f.fs.cfg.Latency; d > 0 {
		time.Sleep(d)
	}
	kind, arg := f.fs.fault(len(p))
	if kind == "err" {
		return 0, fmt.Errorf("%w (off=%d len=%d)", ErrInjected, off, len(p))
	}
	if kind == "short" {
		n, err := f.File.ReadAt(p[:arg], off)
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return n, err
	}
	n, err := f.File.ReadAt(p, off)
	if kind == "flip" && err == nil && n > 0 {
		bit := arg % (n * 8)
		p[bit/8] ^= byte(1 << (bit % 8))
	}
	return n, err
}
