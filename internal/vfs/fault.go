package vfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the base error of every fault the FaultFS injects;
// tests match it with errors.Is to separate injected faults from real
// filesystem failures.
var ErrInjected = errors.New("vfs: injected I/O error")

// ErrCrashed is returned by every write-side operation after a crash
// point armed with CrashAfterWriteOps has tripped: the process model is
// "the machine died here", so nothing writes, syncs, renames, or removes
// until the FS is replaced by a fresh one (a reopen). ErrCrashed wraps
// ErrInjected.
var ErrCrashed = fmt.Errorf("%w: crashed", ErrInjected)

// FaultConfig tunes the fault mix. Probabilities are per call and
// evaluated from one seeded PRNG, so a given (seed, operation sequence)
// replays the same faults.
type FaultConfig struct {
	// Seed makes the injection deterministic.
	Seed int64
	// ErrProb is the probability a read fails outright with ErrInjected.
	// Failures are transient by construction: the PRNG advances per call,
	// so an immediate retry of the same read usually succeeds — the shape
	// of a flaky disk or network filesystem that a bounded retry policy
	// should absorb.
	ErrProb float64
	// ShortReadProb is the probability a read returns only a prefix of
	// the requested bytes with io.ErrUnexpectedEOF.
	ShortReadProb float64
	// BitFlipProb is the probability one random bit of the returned
	// buffer is flipped — silent corruption that only checksum
	// verification can catch.
	BitFlipProb float64
	// Latency is an optional per-read delay.
	Latency time.Duration

	// WriteErrProb is the probability a write fails outright with
	// ErrInjected, persisting nothing.
	WriteErrProb float64
	// ShortWriteProb is the probability a write persists only a random
	// prefix of its bytes and then fails — a torn write, the on-disk
	// shape a crash mid-write leaves behind.
	ShortWriteProb float64
	// SyncErrProb is the probability a Sync or SyncDir reports failure.
	// Bytes already written remain on disk (they may well be durable);
	// only the durability guarantee is withdrawn, so recovery may observe
	// more data than was acknowledged — never less.
	SyncErrProb float64
	// RenameErrProb is the probability a Rename fails without effect:
	// the old name still holds the old file.
	RenameErrProb float64
}

// FaultCounts itemises injected faults by kind.
type FaultCounts struct {
	ReadErrs    int64
	ShortReads  int64
	BitFlips    int64
	WriteErrs   int64
	ShortWrites int64
	SyncErrs    int64
	RenameErrs  int64
	CrashErrs   int64 // write-side ops refused because the crash point tripped
}

// FaultFS wraps an FS and injects faults according to the config.
// Injection starts disabled so a test can set up files cleanly first;
// flip it on with SetEnabled(true). Independent of the probabilistic
// mix, CrashAfterWriteOps arms a deterministic crash point counted in
// write-side operations.
type FaultFS struct {
	inner FS
	cfg   FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	enabled bool

	// Crash-point state, guarded by mu. crashArmed counts down across
	// write-side ops; when it reaches zero the FS is "crashed" and every
	// write-side op fails with ErrCrashed.
	crashArmed int64
	crashed    bool
	writeOps   int64

	counts FaultCounts
}

// NewFaultFS wraps inner with fault injection per cfg, initially disabled.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), crashArmed: -1}
}

// SetEnabled switches injection on or off.
func (ff *FaultFS) SetEnabled(on bool) {
	ff.mu.Lock()
	ff.enabled = on
	ff.mu.Unlock()
}

// CrashAfterWriteOps arms a deterministic crash point: the first n-1
// write-side operations (Create, Write, Sync, Rename, Remove, SyncDir)
// succeed, the n-th crashes the filesystem — it fails with ErrCrashed,
// and a Write landing on the crash point persists a deterministic
// prefix of its bytes first, a torn write — and every operation after
// it fails with ErrCrashed too. n <= 0 disarms.
func (ff *FaultFS) CrashAfterWriteOps(n int64) {
	ff.mu.Lock()
	if n <= 0 {
		ff.crashArmed = -1
	} else {
		ff.crashArmed = n
	}
	ff.crashed = false
	ff.mu.Unlock()
}

// Crashed reports whether the armed crash point has tripped.
func (ff *FaultFS) Crashed() bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.crashed
}

// WriteOps returns how many write-side operations have been issued, the
// count a crash-point matrix dry run measures to size its sweep.
func (ff *FaultFS) WriteOps() int64 {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.writeOps
}

// Injected reports totals in the legacy three-counter shape. Write-side
// faults flow through the same accounting as reads: outright failures
// (write, sync, rename, crash-point refusals) count into errs and torn
// writes into shortReads, so a test asserting "faults fired" needs no
// separate write-side plumbing.
func (ff *FaultFS) Injected() (errs, shortReads, bitFlips int64) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	c := ff.counts
	errs = c.ReadErrs + c.WriteErrs + c.SyncErrs + c.RenameErrs + c.CrashErrs
	return errs, c.ShortReads + c.ShortWrites, c.BitFlips
}

// InjectedDetail itemises every injected fault by kind.
func (ff *FaultFS) InjectedDetail() FaultCounts {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.counts
}

// Open opens the file through the inner FS and wraps its reads.
func (ff *FaultFS) Open(path string) (File, error) {
	f, err := ff.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, fs: ff}, nil
}

// Create counts as a write-side operation and returns a handle whose
// Write and Sync inject faults.
func (ff *FaultFS) Create(path string) (WFile, error) {
	if err := ff.writeOp(); err != nil {
		return nil, err
	}
	f, err := ff.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultWFile{inner: f, fs: ff}, nil
}

// Rename counts as a write-side operation and can fail injected (without
// effect: the destination keeps its previous content).
func (ff *FaultFS) Rename(oldpath, newpath string) error {
	if err := ff.writeOp(); err != nil {
		return err
	}
	ff.mu.Lock()
	fail := ff.enabled && ff.rng.Float64() < ff.cfg.RenameErrProb
	if fail {
		ff.counts.RenameErrs++
	}
	ff.mu.Unlock()
	if fail {
		return fmt.Errorf("%w (rename %s -> %s)", ErrInjected, oldpath, newpath)
	}
	return ff.inner.Rename(oldpath, newpath)
}

// Remove counts as a write-side operation.
func (ff *FaultFS) Remove(path string) error {
	if err := ff.writeOp(); err != nil {
		return err
	}
	return ff.inner.Remove(path)
}

// ReadDir passes through (metadata reads are not faulted).
func (ff *FaultFS) ReadDir(dir string) ([]string, error) { return ff.inner.ReadDir(dir) }

// SyncDir counts as a write-side operation and can fail injected.
func (ff *FaultFS) SyncDir(dir string) error {
	if err := ff.writeOp(); err != nil {
		return err
	}
	ff.mu.Lock()
	fail := ff.enabled && ff.rng.Float64() < ff.cfg.SyncErrProb
	if fail {
		ff.counts.SyncErrs++
	}
	ff.mu.Unlock()
	if fail {
		return fmt.Errorf("%w (syncdir %s)", ErrInjected, dir)
	}
	return ff.inner.SyncDir(dir)
}

// writeOp advances the write-op counter and the crash-point countdown.
// It returns ErrCrashed once the crash point has tripped.
func (ff *FaultFS) writeOp() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	_, err := ff.writeOpLocked()
	return err
}

// writeOpLocked advances the counters. tripped reports that this very
// operation is the one that crashed the filesystem (so a Write may tear
// instead of failing flat).
func (ff *FaultFS) writeOpLocked() (tripped bool, err error) {
	ff.writeOps++
	if ff.crashed {
		ff.counts.CrashErrs++
		return false, ErrCrashed
	}
	if ff.crashArmed > 0 {
		ff.crashArmed--
		if ff.crashArmed == 0 {
			ff.crashed = true
			ff.counts.CrashErrs++
			return true, ErrCrashed
		}
	}
	return false, nil
}

// fault draws the fault decision for one read of length n. It returns the
// kind of fault to apply ("" for none) and, for short reads, the number
// of bytes to deliver, or for bit flips, the bit position to flip.
func (ff *FaultFS) fault(n int) (kind string, arg int) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if !ff.enabled || n == 0 {
		return "", 0
	}
	switch r := ff.rng.Float64(); {
	case r < ff.cfg.ErrProb:
		ff.counts.ReadErrs++
		return "err", 0
	case r < ff.cfg.ErrProb+ff.cfg.ShortReadProb:
		ff.counts.ShortReads++
		return "short", ff.rng.Intn(n)
	case r < ff.cfg.ErrProb+ff.cfg.ShortReadProb+ff.cfg.BitFlipProb:
		ff.counts.BitFlips++
		return "flip", ff.rng.Intn(n * 8)
	}
	return "", 0
}

type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if d := f.fs.cfg.Latency; d > 0 {
		time.Sleep(d)
	}
	kind, arg := f.fs.fault(len(p))
	if kind == "err" {
		return 0, fmt.Errorf("%w (off=%d len=%d)", ErrInjected, off, len(p))
	}
	if kind == "short" {
		n, err := f.File.ReadAt(p[:arg], off)
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return n, err
	}
	n, err := f.File.ReadAt(p, off)
	if kind == "flip" && err == nil && n > 0 {
		bit := arg % (n * 8)
		p[bit/8] ^= byte(1 << (bit % 8))
	}
	return n, err
}

type faultWFile struct {
	inner WFile
	fs    *FaultFS
}

// writeFault draws the fault decision for one write of length n under
// the FS lock, combining the crash-point countdown with the
// probabilistic mix. kind is "" (clean), "crash" (persist prefix, then
// the FS is dead), "err" (persist nothing), or "short" (persist prefix);
// arg is the prefix length for torn writes.
func (ff *FaultFS) writeFault(n int) (kind string, arg int) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if tripped, err := ff.writeOpLocked(); err != nil {
		if tripped && n > 0 {
			// The op that trips the crash point tears: a deterministic
			// prefix reaches the disk before the machine dies.
			ff.counts.ShortWrites++
			return "crash", ff.rng.Intn(n + 1)
		}
		return "crash", 0
	}
	if !ff.enabled || n == 0 {
		return "", 0
	}
	switch r := ff.rng.Float64(); {
	case r < ff.cfg.WriteErrProb:
		ff.counts.WriteErrs++
		return "err", 0
	case r < ff.cfg.WriteErrProb+ff.cfg.ShortWriteProb:
		ff.counts.ShortWrites++
		return "short", ff.rng.Intn(n)
	}
	return "", 0
}

func (f *faultWFile) Write(p []byte) (int, error) {
	kind, arg := f.fs.writeFault(len(p))
	switch kind {
	case "crash":
		n := 0
		if arg > 0 {
			n, _ = f.inner.Write(p[:arg])
		}
		return n, fmt.Errorf("%w (torn write: %d of %d bytes)", ErrCrashed, arg, len(p))
	case "err":
		return 0, fmt.Errorf("%w (write len=%d)", ErrInjected, len(p))
	case "short":
		n, err := f.inner.Write(p[:arg])
		if err == nil {
			err = fmt.Errorf("%w (short write: %d of %d bytes)", ErrInjected, n, len(p))
		}
		return n, err
	}
	return f.inner.Write(p)
}

func (f *faultWFile) Sync() error {
	if err := f.fs.writeOp(); err != nil {
		return err
	}
	f.fs.mu.Lock()
	fail := f.fs.enabled && f.fs.rng.Float64() < f.fs.cfg.SyncErrProb
	if fail {
		f.fs.counts.SyncErrs++
	}
	f.fs.mu.Unlock()
	if fail {
		// The bytes stay written (likely durable); only the guarantee is
		// withdrawn, so recovery may see more than was acknowledged.
		return fmt.Errorf("%w (sync)", ErrInjected)
	}
	return f.inner.Sync()
}

// Close never injects: a crashed process's descriptors close anyway.
func (f *faultWFile) Close() error { return f.inner.Close() }
