package vfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOSRoundTrip(t *testing.T) {
	fsys := OS()
	p := filepath.Join(t.TempDir(), "out")
	w, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if sz, err := f.Size(); err != nil || sz != 11 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil || string(buf) != "world" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
}

// TestFaultFSDisabledIsTransparent checks the injector starts inert.
func TestFaultFSDisabledIsTransparent(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 4096)
	ffs := NewFaultFS(OS(), FaultConfig{Seed: 1, ErrProb: 1.0})
	f, err := ffs.Open(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("disabled injector interfered: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("disabled injector corrupted data")
	}
	if e, s, b := ffs.Injected(); e+s+b != 0 {
		t.Fatalf("counters moved while disabled: %d %d %d", e, s, b)
	}
}

// TestFaultFSDeterministic: same seed, same operation sequence, same
// faults.
func TestFaultFSDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte{0x5C}, 1024)
	path := writeTemp(t, data)
	run := func(seed int64) []string {
		ffs := NewFaultFS(OS(), FaultConfig{Seed: seed, ErrProb: 0.3, ShortReadProb: 0.2, BitFlipProb: 0.2})
		f, err := ffs.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		ffs.SetEnabled(true)
		var log []string
		for i := 0; i < 100; i++ {
			buf := make([]byte, 64)
			_, err := f.ReadAt(buf, int64(i%16)*64)
			switch {
			case errors.Is(err, ErrInjected):
				log = append(log, "err")
			case errors.Is(err, io.ErrUnexpectedEOF):
				log = append(log, "short")
			case err != nil:
				t.Fatalf("unexpected error kind: %v", err)
			case !bytes.Equal(buf, data[(i%16)*64:(i%16)*64+64]):
				log = append(log, "flip")
			default:
				log = append(log, "ok")
			}
		}
		return log
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestFaultFSInjectsEveryKind checks each configured fault actually fires
// and is counted.
func TestFaultFSInjectsEveryKind(t *testing.T) {
	data := bytes.Repeat([]byte{0x77}, 512)
	ffs := NewFaultFS(OS(), FaultConfig{Seed: 3, ErrProb: 0.2, ShortReadProb: 0.2, BitFlipProb: 0.2})
	f, err := ffs.Open(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.SetEnabled(true)
	var sawErr, sawShort, sawFlip bool
	for i := 0; i < 300; i++ {
		buf := make([]byte, 128)
		n, err := f.ReadAt(buf, 0)
		switch {
		case errors.Is(err, ErrInjected):
			sawErr = true
		case errors.Is(err, io.ErrUnexpectedEOF):
			sawShort = true
			if n >= len(buf) {
				t.Fatal("short read delivered the full buffer")
			}
		case err != nil:
			t.Fatalf("unexpected error: %v", err)
		case !bytes.Equal(buf, data[:128]):
			sawFlip = true
			diff := 0
			for j := range buf {
				for bit := 0; bit < 8; bit++ {
					if (buf[j]^data[j])&(1<<bit) != 0 {
						diff++
					}
				}
			}
			if diff != 1 {
				t.Fatalf("bit flip changed %d bits, want exactly 1", diff)
			}
		}
	}
	if !sawErr || !sawShort || !sawFlip {
		t.Fatalf("fault kinds seen: err=%v short=%v flip=%v", sawErr, sawShort, sawFlip)
	}
	e, s, b := ffs.Injected()
	if e == 0 || s == 0 || b == 0 {
		t.Fatalf("counters: %d %d %d", e, s, b)
	}
}
