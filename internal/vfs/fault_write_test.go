package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFaultsFlowThroughInjected covers the regression where Create
// passed straight through to the inner FS: write-side faults must fire
// and must be visible through the same Injected() counters reads use.
func TestWriteFaultsFlowThroughInjected(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS(), FaultConfig{
		Seed: 11, WriteErrProb: 0.2, ShortWriteProb: 0.2, SyncErrProb: 0.2, RenameErrProb: 0.5,
	})
	ff.SetEnabled(true)

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	var failures int
	for i := 0; i < 200; i++ {
		p := filepath.Join(dir, "f")
		f, err := ff.Create(p)
		if err != nil {
			t.Fatalf("create: %v", err) // no crash armed, Create itself never fails
		}
		if _, err := f.Write(payload); err != nil {
			failures++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write fault not ErrInjected: %v", err)
			}
		}
		if err := f.Sync(); err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("sync fault not ErrInjected: %v", err)
		}
		f.Close()
		if err := ff.Rename(p, p+".x"); err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("rename fault not ErrInjected: %v", err)
		}
	}
	if failures == 0 {
		t.Fatal("no write faults fired at 40% probability over 200 writes")
	}
	d := ff.InjectedDetail()
	if d.WriteErrs == 0 || d.ShortWrites == 0 || d.SyncErrs == 0 || d.RenameErrs == 0 {
		t.Fatalf("every write fault kind should fire: %+v", d)
	}
	errs, short, _ := ff.Injected()
	if errs < d.WriteErrs+d.SyncErrs+d.RenameErrs || short < d.ShortWrites {
		t.Fatalf("Injected() does not account write faults: errs=%d short=%d detail=%+v", errs, short, d)
	}
}

// TestShortWritePersistsPrefix: a torn write leaves exactly the reported
// prefix on disk — the shape recovery code must tolerate.
func TestShortWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS(), FaultConfig{Seed: 3, ShortWriteProb: 1.0})
	ff.SetEnabled(true)
	p := filepath.Join(dir, "torn")
	f, err := ff.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("want torn-write error")
	}
	f.Close()
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(n) || int64(n) >= int64(len(payload)) {
		t.Fatalf("on-disk size %d, reported prefix %d, payload %d", st.Size(), n, len(payload))
	}
}

// TestCrashPointDeterministic: the same seed and op sequence crash at
// the same op with the same torn prefix, and every later write-side op
// fails with ErrCrashed while reads keep working.
func TestCrashPointDeterministic(t *testing.T) {
	run := func(dir string) (sizes []int64) {
		ff := NewFaultFS(OS(), FaultConfig{Seed: 99})
		// Each file costs three ops (create, write, sync); op 8 is the
		// third file's write, so that write tears.
		ff.CrashAfterWriteOps(8)
		for i := 0; i < 5; i++ {
			p := filepath.Join(dir, "f"+string(rune('a'+i)))
			f, err := ff.Create(p)
			if err != nil {
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("create: %v", err)
				}
				sizes = append(sizes, -1)
				continue
			}
			if _, err := f.Write(make([]byte, 1000)); err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("write: %v", err)
			}
			if err := f.Sync(); err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("sync: %v", err)
			}
			f.Close()
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, st.Size())
		}
		if !ff.Crashed() {
			t.Fatal("crash point never tripped")
		}
		return sizes
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("runs diverge: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash point not deterministic: %v vs %v", a, b)
		}
	}
	// The crash write tears, so file 3 must hold a strict prefix and
	// files 4,5 must not have been created.
	if a[2] < 0 || a[2] >= 1000 {
		t.Fatalf("file at crash point should hold a torn prefix, got size %d", a[2])
	}
	if a[3] != -1 || a[4] != -1 {
		t.Fatalf("files after crash point should fail creation: %v", a)
	}
}
