package obs

import (
	"strings"
	"testing"
)

// TestEscapeLabelValue covers the Prometheus text-format 0.0.4 escaping
// rules for label values: backslash, double-quote, and line feed must
// be escaped; everything else (including Unicode and other control
// characters) passes through untouched.
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"plain", "snappy", "snappy"},
		{"backslash", `C:\data\pages`, `C:\\data\\pages`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"all three", "a\\b\"c\nd", `a\\b\"c\nd`},
		{"consecutive", "\\\\\n\n\"\"", `\\\\\n\n\"\"`},
		{"unicode untouched", "naïve—café", "naïve—café"},
		{"tab untouched", "a\tb", "a\tb"},
		{"empty", "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := EscapeLabelValue(tc.in); got != tc.want {
				t.Fatalf("EscapeLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

// TestWritePromEscapedLabels registers series whose label values carry
// every character the spec requires escaping and checks the exposition
// output line by line: one HELP/TYPE header per family, each series on
// one line (an unescaped newline would split it), values escaped.
func TestWritePromEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter(SeriesName("esc_total", "codec", `snap\py`), "Escaping test.").Add(1)
	r.Counter(SeriesName("esc_total", "codec", `quo"te`), "Escaping test.").Add(2)
	r.Counter(SeriesName("esc_total", "codec", "two\nlines"), "Escaping test.").Add(3)
	r.Histogram(SeriesName("esc_seconds", "path", `a\b"c`+"\n"), "Labeled histogram.",
		[]float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		`esc_total{codec="snap\\py"} 1`,
		`esc_total{codec="quo\"te"} 2`,
		`esc_total{codec="two\nlines"} 3`,
		`esc_seconds_bucket{path="a\\b\"c\n",le="1"} 1`,
		`esc_seconds_bucket{path="a\\b\"c\n",le="+Inf"} 1`,
		`esc_seconds_sum{path="a\\b\"c\n"} 0.5`,
		`esc_seconds_count{path="a\\b\"c\n"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q\ngot:\n%s", want, out)
		}
	}
	// The newline in the label value must not have split any line: every
	// non-comment line is `name{labels} value`.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	// One shared header per family despite three series.
	if got := strings.Count(out, "# TYPE esc_total counter"); got != 1 {
		t.Errorf("esc_total TYPE header appears %d times", got)
	}
	if got := strings.Count(out, "# TYPE esc_seconds histogram"); got != 1 {
		t.Errorf("esc_seconds TYPE header appears %d times", got)
	}
}

// TestHistogramQuantile pins the linear-interpolation estimate used by
// the scrub summary display.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.2, 0.4})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 10 observations in (0.1, 0.2]: the median interpolates halfway.
	for i := 0; i < 10; i++ {
		h.Observe(0.15)
	}
	if got := h.Quantile(0.5); got < 0.14 || got > 0.16 {
		t.Fatalf("p50 = %v, want ≈0.15", got)
	}
	// Ranks past every finite bucket clamp to the highest finite bound.
	h.Observe(99)
	if got := h.Quantile(1); got != 0.4 {
		t.Fatalf("p100 with +Inf tail = %v, want clamp to 0.4", got)
	}
	if got := h.Mean(); got < 9 || got > 10 {
		t.Fatalf("mean = %v", got)
	}
}
