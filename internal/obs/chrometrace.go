package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Chrome trace-event export: a recorded span tree rendered as the JSON
// object format ({"traceEvents":[...]}) that Perfetto and
// chrome://tracing load directly. Each span becomes one complete ("X")
// event carrying its measured stats in args, so the trace shows exactly
// the tree ExplainAnalyze prints.
//
// Pipeline stage spans carry summed per-worker busy time via
// SetDuration, so their recorded durations are not wall-clock nestable
// (children can sum past the parent). The exporter therefore lays
// spans out synthetically: siblings are placed end to end in creation
// order and every parent is stretched to cover its children. Timestamps
// in the trace are layout, not wall clock; the measured numbers are in
// each event's args.

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTraceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// layoutDur returns the synthetic extent of s: its recorded duration,
// widened to fit its children laid end to end. A floor of 1µs keeps
// zero-duration spans visible in the viewer.
func layoutDur(s *Span) time.Duration {
	var kids time.Duration
	for _, c := range s.Children() {
		kids += layoutDur(c)
	}
	d := s.Duration()
	if kids > d {
		d = kids
	}
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

func spanArgs(s *Span) map[string]any {
	args := map[string]any{
		"durationNs": int64(s.Duration()),
	}
	if in, out := s.Rows(); in != 0 || out != 0 {
		args["rowsIn"], args["rowsOut"] = in, out
	}
	if io := s.IO(); io != (SpanIO{}) {
		args["pagesRead"] = io.PagesRead
		args["pagesPruned"] = io.PagesPruned
		args["pagesSkipped"] = io.PagesSkipped
		args["bytesRead"] = io.BytesRead
		args["bytesDecompressed"] = io.BytesDecompressed
	}
	if t := s.Tasks(); t > 0 {
		args["tasks"] = t
	}
	if a := s.AllocBytes(); a > 0 {
		args["allocBytes"] = a
	}
	if d := s.Details(); len(d) > 0 {
		args["details"] = strings.Join(d, "; ")
	}
	return args
}

func emitSpan(events *[]traceEvent, s *Span, ts time.Duration, tid int) {
	if s == nil {
		return
	}
	ext := layoutDur(s)
	*events = append(*events, traceEvent{
		Name: s.Name(),
		Ph:   "X",
		Ts:   float64(ts) / float64(time.Microsecond),
		Dur:  float64(ext) / float64(time.Microsecond),
		Pid:  1,
		Tid:  tid,
		Args: spanArgs(s),
	})
	at := ts
	for _, c := range s.Children() {
		emitSpan(events, c, at, tid)
		at += layoutDur(c)
	}
}

// WriteChromeTrace serializes root (and, when rec is non-nil, the
// record's identity and end-to-end stats as trace metadata) as Chrome
// trace-event JSON. rec may be nil for a bare span tree.
func WriteChromeTrace(w io.Writer, root *Span, rec *QueryRecord) error {
	if root == nil {
		return fmt.Errorf("obs: no span tree to export")
	}
	var events []traceEvent
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "codecdb"},
	})
	threadName := "query"
	if rec != nil {
		threadName = fmt.Sprintf("%s %d", rec.KindName, rec.ID)
	}
	events = append(events, traceEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": threadName},
	})
	emitSpan(&events, root, 0, 1)

	file := chromeTraceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
	}
	if rec != nil {
		file.Metadata = map[string]any{
			"queryId":   rec.ID,
			"kind":      rec.KindName,
			"table":     rec.Table,
			"terminal":  rec.Terminal,
			"predicate": rec.Predicate,
			"wallNs":    int64(rec.Wall),
			"rowsOut":   rec.RowsOut,
			"pagesRead": rec.IO.PagesRead,
			"bytesRead": rec.IO.BytesRead,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
