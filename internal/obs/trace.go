package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// SpanIO is the per-span slice of the storage-layer instrumentation:
// what the reader did while the span was open.
type SpanIO struct {
	PagesRead         int64
	PagesPruned       int64
	PagesSkipped      int64
	BytesRead         int64
	BytesDecompressed int64
}

// Add accumulates another delta into io.
func (io *SpanIO) Add(d SpanIO) {
	io.PagesRead += d.PagesRead
	io.PagesPruned += d.PagesPruned
	io.PagesSkipped += d.PagesSkipped
	io.BytesRead += d.BytesRead
	io.BytesDecompressed += d.BytesDecompressed
}

// Span is one timed node of a query trace: an operator application, a
// gather, or the query itself. A nil *Span is a valid no-op receiver for
// every method, so instrumented code paths need only a single nil check
// (or none at all) and the disabled-tracer cost is a context lookup.
//
// Spans are safe for concurrent child creation (parallel operators), but
// each individual span's setters are expected to be called from the
// goroutine that started it.
type Span struct {
	mu       sync.Mutex
	name     string
	detail   []string
	start    time.Time
	dur      time.Duration
	rowsIn   int64
	rowsOut  int64
	io       SpanIO
	tasks    int64
	allocB   uint64
	children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts and attaches a child span; on a nil receiver it
// returns nil, keeping the whole instrumentation chain no-op.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
}

// SetDuration overrides the span's duration. Pipeline stage spans use it
// to carry summed per-worker busy time, which wall-clock End cannot
// express for work interleaved across morsels.
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.dur = d
}

// AddDetail appends one plan-choice note (e.g. the kernel chosen or a
// dictionary rewrite outcome).
func (s *Span) AddDetail(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.detail = append(s.detail, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

// SetRows records input and output cardinality.
func (s *Span) SetRows(in, out int64) {
	if s == nil {
		return
	}
	s.rowsIn, s.rowsOut = in, out
}

// AddIO accumulates a storage-instrumentation delta.
func (s *Span) AddIO(d SpanIO) {
	if s == nil {
		return
	}
	s.io.Add(d)
}

// AddTasks records worker-pool tasks completed on behalf of this span.
func (s *Span) AddTasks(n int64) {
	if s == nil {
		return
	}
	s.tasks += n
}

// SetAllocBytes records heap bytes allocated while the span was open
// (process-wide TotalAlloc delta — a working-set proxy, not an exact
// attribution under concurrent queries).
func (s *Span) SetAllocBytes(b uint64) {
	if s == nil {
		return
	}
	s.allocB = b
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time (zero on nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the recorded wall time.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Rows returns the recorded input and output cardinality.
func (s *Span) Rows() (in, out int64) {
	if s == nil {
		return 0, 0
	}
	return s.rowsIn, s.rowsOut
}

// IO returns the accumulated storage delta.
func (s *Span) IO() SpanIO {
	if s == nil {
		return SpanIO{}
	}
	return s.io
}

// Tasks returns the recorded pool-task count.
func (s *Span) Tasks() int64 {
	if s == nil {
		return 0
	}
	return s.tasks
}

// AllocBytes returns the recorded allocation delta.
func (s *Span) AllocBytes() uint64 {
	if s == nil {
		return 0
	}
	return s.allocB
}

// Details returns the plan-choice notes.
func (s *Span) Details() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.detail...)
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// SumIO totals the IO of the span's direct children — the figure that
// must line up with the reader's own counters over the same window.
func (s *Span) SumIO() SpanIO {
	var total SpanIO
	for _, c := range s.Children() {
		io := c.IO()
		total.Add(io)
	}
	return total
}

// spanKey is the context key the tracer travels under.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the current span from ctx, or nil when the query is
// untraced. This is the only cost the disabled-tracer fast path pays.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Render draws the span tree with per-node stats, EXPLAIN ANALYZE style:
//
//	Query(lineitem)  time=1.82ms rows=60175→724
//	├─ Filter[DictFilter] ...
//	│    kernel=ScanPacked op=Lt key=12
//	└─ Filter[BitPackedFilter] ...
func (s *Span) Render() string {
	var b strings.Builder
	s.render(&b, "", "")
	return b.String()
}

func (s *Span) render(b *strings.Builder, head, tail string) {
	if s == nil {
		return
	}
	b.WriteString(head)
	b.WriteString(s.name)
	b.WriteString("  ")
	b.WriteString(s.statLine())
	b.WriteByte('\n')
	for _, d := range s.Details() {
		b.WriteString(tail)
		b.WriteString("    ")
		b.WriteString(d)
		b.WriteByte('\n')
	}
	children := s.Children()
	for i, c := range children {
		if i < len(children)-1 {
			c.render(b, tail+"├─ ", tail+"│  ")
		} else {
			c.render(b, tail+"└─ ", tail+"   ")
		}
	}
}

// statLine formats the measured numbers for one node.
func (s *Span) statLine() string {
	parts := []string{fmt.Sprintf("time=%s", s.dur.Round(time.Microsecond))}
	if s.rowsIn != 0 || s.rowsOut != 0 {
		parts = append(parts, fmt.Sprintf("rows=%d→%d", s.rowsIn, s.rowsOut))
	}
	if s.io != (SpanIO{}) {
		parts = append(parts, fmt.Sprintf("pages[read=%d pruned=%d skipped=%d]",
			s.io.PagesRead, s.io.PagesPruned, s.io.PagesSkipped))
		parts = append(parts, fmt.Sprintf("bytes[read=%d decompressed=%d]",
			s.io.BytesRead, s.io.BytesDecompressed))
	}
	if s.tasks > 0 {
		parts = append(parts, fmt.Sprintf("tasks=%d", s.tasks))
	}
	if s.allocB > 0 {
		parts = append(parts, fmt.Sprintf("alloc=%dB", s.allocB))
	}
	return strings.Join(parts, " ")
}
