// Package obs is CodecDB's observability layer: a zero-dependency
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms) with Prometheus text-format exposition and expvar
// publishing, a span-based query tracer threaded through the engine via
// context.Context, and a structured event log that records encoding
// decisions as training signal for learned-advisor work.
//
// Everything here is built for the disabled case: an untraced query sees
// only a context value lookup and nil checks, and registry updates are
// single atomic adds, so the hot scan paths stay allocation-free.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets in seconds: 10µs to 10s,
// roughly half-decade steps — wide enough for a page fetch and a full
// TPC-H query to land in interior buckets.
var DefBuckets = []float64{
	10e-6, 50e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3,
	1, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, by convention). Observations and exposition are lock-free.
type Histogram struct {
	bounds []float64      // upper bounds, ascending
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	count  atomic.Int64
	// sum is accumulated in nanoseconds to stay an integer add; the
	// exposition divides back to seconds.
	sumNanos atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(seconds * 1e9))
}

// ObserveDuration records one observation from a duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNanos.Load()) / 1e9 }

// Mean returns the mean observation in seconds (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the bucket the rank falls into, the same
// estimate Prometheus' histogram_quantile computes. Returns 0 when the
// histogram is empty; ranks landing in the +Inf bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return bound
			}
			return lo + (bound-lo)*((rank-float64(cum))/float64(c))
		}
		cum += c
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// metricKind tags registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered entry. name may carry a literal label set
// ("x_total{codec=\"snappy\"}"); base is the name with labels stripped,
// used for the HELP/TYPE header shared by all series of that family.
type metric struct {
	name, base, help string
	kind             metricKind
	counter          *Counter
	gauge            *Gauge
	hist             *Histogram
	fn               func() float64
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// name returns the existing collector (functions are replaced), so
// package wiring can re-run without error.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: map[string]*metric{}} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the engine's built-in
// metrics register into.
func Default() *Registry { return defaultRegistry }

// baseName strips a literal label suffix from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelBody returns the inside of a name's literal label set
// (`codec="snappy"` for `x{codec="snappy"}`), or "" when unlabeled.
func labelBody(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	body := name[i+1:]
	return strings.TrimSuffix(body, "}")
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format 0.0.4: backslash, double-quote, and line feed
// become \\, \", and \n; everything else passes through untouched.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// SeriesName builds a metric name carrying a literal label set with
// spec-escaped values: SeriesName("x_total", "codec", "snappy") returns
// `x_total{codec="snappy"}`. Pairs are emitted in argument order; an
// odd trailing key is ignored.
func SeriesName(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, base: baseName(name), help: help, kind: kind}
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (DefBuckets when nil) on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		m.hist = newHistogram(buckets)
	}
	return m.hist
}

// FindHistogram returns the named histogram if one is registered, else
// nil — for display paths (scrub) that summarize without registering.
func (r *Registry) FindHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.kind == kindHistogram {
		return m.hist
	}
	return nil
}

// CounterFunc registers (or replaces) a counter whose value is read from
// fn at exposition time — the bridge for package-level atomic counters
// maintained elsewhere (colstore, exec, xcompress).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindCounterFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers (or replaces) a gauge read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGaugeFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// snapshot returns the metrics sorted by name for deterministic output.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value())
	case kindGauge:
		return float64(m.gauge.Value())
	default:
		return m.fn()
	}
}

// WriteProm renders every metric in Prometheus text exposition format
// (version 0.0.4). Series sharing a base name share one HELP/TYPE
// header.
func (r *Registry) WriteProm(w io.Writer) error {
	lastBase := ""
	for _, m := range r.snapshot() {
		if m.base != lastBase {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.base, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.base, m.kind.promType()); err != nil {
				return err
			}
			lastBase = m.base
		}
		if m.kind == kindHistogram {
			if err := writePromHistogram(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.value())); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *metric) error {
	h := m.hist
	// A labeled histogram series merges its own labels with le; the
	// _sum/_count series keep the label set as-is.
	labels := labelBody(m.name)
	bucket := func(le string, cum int64) error {
		if labels != "" {
			_, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", m.base, labels, le, cum)
			return err
		}
		_, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", m.base, le, cum)
		return err
	}
	suffixed := func(suffix string) string {
		if labels != "" {
			return m.base + suffix + "{" + labels + "}"
		}
		return m.base + suffix
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := bucket(EscapeLabelValue(formatFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := bucket("+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", suffixed("_sum"), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixed("_count"), h.Count())
	return err
}

// formatFloat renders integral values without an exponent so counters
// read naturally ("12345", not "1.2345e+04").
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// expvarPublished guards against double-publishing (expvar panics on a
// duplicate name).
var expvarPublished sync.Map // name -> struct{}

// PublishExpvar publishes the registry under the given expvar name as a
// JSON map of metric -> value (histograms expose count/sum/buckets).
// Safe to call more than once.
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := expvarPublished.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]any{}
		for _, m := range r.snapshot() {
			if m.kind == kindHistogram {
				buckets := map[string]int64{}
				cum := int64(0)
				for i, b := range m.hist.bounds {
					cum += m.hist.counts[i].Load()
					buckets[formatFloat(b)] = cum
				}
				out[m.name] = map[string]any{
					"count": m.hist.Count(), "sum": m.hist.Sum(), "buckets": buckets,
				}
				continue
			}
			out[m.name] = m.value()
		}
		return out
	}))
}
