package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Debug HTTP surface for the flight recorder: plain-text views (with
// progress bars) by default, JSON with ?format=json, so the endpoints
// read equally well from curl and from tooling. Handlers are methods on
// *Recorder so they test with httptest and mount on any mux.

func wantJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// progressBar renders `[=====>    ] 12/34` for a morsel counter; an
// unsized scan ("0/0") renders as a spinner-less pending bar.
func progressBar(done, total int32) string {
	const width = 24
	if total <= 0 {
		return fmt.Sprintf("[%s] ?/?", strings.Repeat(" ", width))
	}
	filled := int(int64(done) * width / int64(total))
	if filled > width {
		filled = width
	}
	bar := strings.Repeat("=", filled)
	if filled < width && done > 0 {
		bar += ">"
	}
	return fmt.Sprintf("[%-*s] %d/%d", width, bar, done, total)
}

// HandleInFlight serves /debug/queries: every in-flight query with its
// row-group progress bar.
func (r *Recorder) HandleInFlight(w http.ResponseWriter, req *http.Request) {
	live := r.InFlight()
	if wantJSON(req) {
		writeJSON(w, map[string]any{"inflight": live})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "in-flight queries: %d\n\n", len(live))
	for _, q := range live {
		fmt.Fprintf(w, "#%-6d %-8s %-16s %-14s %s  elapsed=%s workers=%d\n",
			q.ID, q.Kind, q.Table, q.Terminal,
			progressBar(q.MorselsDone, q.MorselsTotal),
			q.Elapsed.Round(time.Millisecond), q.Workers)
		if q.Predicate != "" {
			fmt.Fprintf(w, "        where %s\n", q.Predicate)
		}
	}
}

func writeRecordText(w http.ResponseWriter, recs []*QueryRecord) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, rec := range recs {
		status := "ok"
		if rec.Cancelled {
			status = "cancelled"
		} else if rec.Err != "" {
			status = "error: " + rec.Err
		}
		fmt.Fprintf(w, "#%-6d %-8s %-16s %-14s wall=%-10s rows=%d→%d  %s\n",
			rec.ID, rec.KindName, rec.Table, rec.Terminal,
			rec.Wall.Round(time.Microsecond), rec.RowsIn, rec.RowsOut, status)
		if rec.Predicate != "" {
			fmt.Fprintf(w, "        where %s\n", rec.Predicate)
		}
		fmt.Fprintf(w, "        pages[read=%d pruned=%d skipped=%d coalesced=%d] bytes[read=%d decompressed=%d] io=%s scan=%s workers=%d\n",
			rec.IO.PagesRead, rec.IO.PagesPruned, rec.IO.PagesSkipped, rec.IO.PagesCoalesced,
			rec.IO.BytesRead, rec.IO.BytesDecomp,
			rec.IORead.Round(time.Microsecond), rec.Scan.Round(time.Microsecond), rec.Workers)
	}
}

// HandleRecent serves /debug/queries/recent: the completion ring,
// newest first.
func (r *Recorder) HandleRecent(w http.ResponseWriter, req *http.Request) {
	recs := r.Recent()
	if wantJSON(req) {
		writeJSON(w, map[string]any{"recent": recs})
		return
	}
	writeRecordText(w, recs)
}

// HandleSlow serves /debug/queries/slow: ring entries at or above the
// slow threshold (override with ?threshold=250ms), slowest first.
func (r *Recorder) HandleSlow(w http.ResponseWriter, req *http.Request) {
	d := time.Duration(0)
	if t := req.URL.Query().Get("threshold"); t != "" {
		var err error
		if d, err = time.ParseDuration(t); err != nil {
			http.Error(w, "bad threshold: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	recs := r.Slow(d)
	if wantJSON(req) {
		writeJSON(w, map[string]any{"threshold": r.pickThreshold(d).String(), "slow": recs})
		return
	}
	writeRecordText(w, recs)
}

func (r *Recorder) pickThreshold(d time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return r.SlowThreshold()
}

// HandleTrace serves /debug/queries/trace?id=N: the recorded span tree
// as Chrome trace-event JSON (404 when the record is gone from the
// ring or was untraced).
func (r *Recorder) HandleTrace(w http.ResponseWriter, req *http.Request) {
	var id uint64
	if _, err := fmt.Sscanf(req.URL.Query().Get("id"), "%d", &id); err != nil {
		http.Error(w, "missing or bad id parameter", http.StatusBadRequest)
		return
	}
	rec := r.Find(id)
	if rec == nil {
		http.Error(w, "no such record (evicted from ring?)", http.StatusNotFound)
		return
	}
	if rec.TraceRoot == nil {
		http.Error(w, "record was not traced; re-run via the trace subcommand", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = WriteChromeTrace(w, rec.TraceRoot, rec)
}

var processStart = time.Now()

// HealthzHandler returns a readiness probe handler: 200 with uptime and
// in-flight/recorded counts once the process is serving.
func HealthzHandler(r *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		body := map[string]any{
			"status":   "ok",
			"uptime":   time.Since(processStart).Round(time.Millisecond).String(),
			"inflight": len(r.InFlight()),
			"recorded": len(r.Recent()),
		}
		if wantJSON(req) {
			writeJSON(w, body)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s inflight=%d recorded=%d\n",
			body["uptime"], body["inflight"], body["recorded"])
	}
}
