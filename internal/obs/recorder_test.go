package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderBeginFinishLifecycle(t *testing.T) {
	r := NewRecorder(8)
	q := r.Begin(KindQuery, "events", "Count", `status = "ERROR"`)
	if q == nil {
		t.Fatal("Begin returned nil on an enabled recorder")
	}
	if len(r.InFlight()) != 1 {
		t.Fatalf("in-flight = %d, want 1", len(r.InFlight()))
	}
	q.AddMorsels(4, 2)
	q.MorselDone()
	q.MorselDone()
	if done, total, workers := q.Progress(); done != 2 || total != 4 || workers != 2 {
		t.Fatalf("progress = %d/%d workers=%d", done, total, workers)
	}
	r.Finish(q, &QueryRecord{RowsIn: 100, RowsOut: 25})
	if len(r.InFlight()) != 0 {
		t.Fatal("registry did not drain after Finish")
	}
	recs := r.Recent()
	if len(recs) != 1 {
		t.Fatalf("recent = %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != q.ID || rec.Table != "events" || rec.Terminal != "Count" ||
		rec.Predicate != `status = "ERROR"` || rec.KindName != "query" {
		t.Fatalf("identity fields not filled: %+v", rec)
	}
	if rec.MorselsDone != 2 || rec.MorselsTotal != 4 || rec.Workers != 2 {
		t.Fatalf("progress fields not filled: %+v", rec)
	}
	if rec.Wall <= 0 {
		t.Fatal("Wall not filled")
	}
	if got := r.Find(q.ID); got != rec {
		t.Fatalf("Find(%d) = %v", q.ID, got)
	}
}

func TestRecorderDisabledAndNil(t *testing.T) {
	r := NewRecorder(4)
	r.SetEnabled(false)
	if q := r.Begin(KindQuery, "t", "Count", ""); q != nil {
		t.Fatal("disabled recorder must return a nil LiveQuery")
	}
	// Every downstream call must be safe on nil receivers.
	var nq *LiveQuery
	nq.AddMorsels(1, 1)
	nq.MorselDone()
	nq.AddIOTimes(1, 1)
	nq.Progress()
	r.Finish(nil, &QueryRecord{})
	var nr *Recorder
	nr.SetEnabled(true)
	nr.Finish(nil, nil)
	if nr.InFlight() != nil || nr.Recent() != nil || nr.Find(1) != nil {
		t.Fatal("nil recorder must return empty views")
	}
	if ContextWithQuery(context.Background(), nil) == nil {
		t.Fatal("ContextWithQuery(nil) must return ctx")
	}
	if QueryFrom(context.Background()) != nil {
		t.Fatal("QueryFrom on a bare context must be nil")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	var lastID uint64
	for i := 0; i < 10; i++ {
		q := r.Begin(KindQuery, "t", "Count", "")
		r.Finish(q, &QueryRecord{RowsOut: int64(i)})
		lastID = q.ID
	}
	recs := r.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	// Newest first, and only the last four IDs survive.
	for i, rec := range recs {
		if want := lastID - uint64(i); rec.ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d", i, rec.ID, want)
		}
	}
	if r.Find(lastID-9) != nil {
		t.Fatal("evicted record still findable")
	}
}

func TestRecorderOverflowStillRecords(t *testing.T) {
	r := NewRecorder(liveSlots + 16)
	live := make([]*LiveQuery, 0, liveSlots+8)
	for i := 0; i < liveSlots+8; i++ {
		live = append(live, r.Begin(KindQuery, "t", "Count", ""))
	}
	if got := len(r.InFlight()); got != liveSlots {
		t.Fatalf("in-flight = %d, want the %d registry slots", got, liveSlots)
	}
	for _, q := range live {
		r.Finish(q, &QueryRecord{})
	}
	if len(r.InFlight()) != 0 {
		t.Fatal("registry did not drain")
	}
	// Overflow entries (slot -1) still landed in the ring.
	if got := len(r.Recent()); got != liveSlots+8 {
		t.Fatalf("recorded = %d, want %d", got, liveSlots+8)
	}
}

func TestRecorderSlowListingAndLog(t *testing.T) {
	r := NewRecorder(8)
	var buf bytes.Buffer
	r.SetLogger(NewLogger(slog.New(slog.NewJSONHandler(&buf, nil))))
	r.SetSlowThreshold(50 * time.Millisecond)

	fast := r.Begin(KindQuery, "t", "Count", "")
	r.Finish(fast, &QueryRecord{Wall: time.Millisecond})
	slow := r.Begin(KindQuery, "t", "Count", "v < 3")
	r.Finish(slow, &QueryRecord{Wall: 200 * time.Millisecond})

	recs := r.Slow(0)
	if len(recs) != 1 || recs[0].ID != slow.ID {
		t.Fatalf("Slow(0) = %+v, want only the 200ms record", recs)
	}
	if got := r.Slow(time.Microsecond); len(got) != 2 || got[0].ID != slow.ID {
		t.Fatalf("Slow(1µs) must return both, slowest first: %+v", got)
	}
	var ev struct {
		Msg string `json:"msg"`
		ID  uint64 `json:"id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("slow-query log is not one JSON object: %v (%q)", err, buf.String())
	}
	if ev.Msg != "slow query" || ev.ID != slow.ID {
		t.Fatalf("slow-query event = %+v", ev)
	}
}

// TestRecorderConcurrentConsistency is the satellite race test: many
// writers register, progress, and finish queries while readers snapshot
// the live registry and the ring. Every observed record must be
// internally consistent (all fields derived from the same ID) — torn
// stats would show as a mismatched derived field.
func TestRecorderConcurrentConsistency(t *testing.T) {
	r := NewRecorder(64)
	const writers = 8
	const perWriter = 200

	check := func(rec *QueryRecord) {
		if rec.RowsIn != int64(rec.ID)*7 || rec.RowsOut != int64(rec.ID)*3 ||
			rec.IO.PagesRead != int64(rec.ID)*11 || rec.Wall != time.Duration(rec.ID) {
			t.Errorf("torn record: %+v", rec)
		}
		if rec.MorselsDone != rec.MorselsTotal {
			t.Errorf("record published before progress settled: %d/%d",
				rec.MorselsDone, rec.MorselsTotal)
		}
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r.InFlight()
				for _, rec := range r.Recent() {
					check(rec)
				}
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				q := r.Begin(KindQuery, "t", "Count", "")
				q.AddMorsels(3, 2)
				q.MorselDone()
				q.MorselDone()
				q.MorselDone()
				r.Finish(q, &QueryRecord{
					Wall:   time.Duration(q.ID),
					RowsIn: int64(q.ID) * 7, RowsOut: int64(q.ID) * 3,
					IO: RecordIO{PagesRead: int64(q.ID) * 11},
				})
			}
		}()
	}
	writersWG.Wait()
	close(done)
	readers.Wait()

	if n := len(r.InFlight()); n != 0 {
		t.Fatalf("registry holds %d entries after all writers finished", n)
	}
	for _, rec := range r.Recent() {
		check(rec)
	}
}

func TestProgressBar(t *testing.T) {
	if got := progressBar(0, 0); !strings.Contains(got, "?/?") {
		t.Fatalf("unsized bar = %q", got)
	}
	half := progressBar(17, 34)
	if !strings.Contains(half, "17/34") || !strings.Contains(half, "=>") {
		t.Fatalf("half bar = %q", half)
	}
	full := progressBar(34, 34)
	if !strings.Contains(full, "34/34") || strings.Contains(full, " ]") {
		t.Fatalf("full bar = %q", full)
	}
}

func TestDebugHandlers(t *testing.T) {
	r := NewRecorder(8)
	inflight := r.Begin(KindQuery, "events", "Count", `status = "ERROR"`)
	inflight.AddMorsels(10, 4)
	inflight.MorselDone()
	finished := r.Begin(KindFlush, "events", "Flush", "")
	r.Finish(finished, &QueryRecord{Wall: 300 * time.Millisecond, RowsIn: 42, RowsOut: 42})

	// /debug/queries text: shows the live entry with a progress bar.
	w := httptest.NewRecorder()
	r.HandleInFlight(w, httptest.NewRequest("GET", "/debug/queries", nil))
	if body := w.Body.String(); !strings.Contains(body, "1/10") || !strings.Contains(body, "events") ||
		!strings.Contains(body, `status = "ERROR"`) {
		t.Fatalf("in-flight text view: %q", body)
	}
	// JSON view round-trips.
	w = httptest.NewRecorder()
	r.HandleInFlight(w, httptest.NewRequest("GET", "/debug/queries?format=json", nil))
	var live struct {
		InFlight []LiveSnapshot `json:"inflight"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &live); err != nil || len(live.InFlight) != 1 {
		t.Fatalf("in-flight JSON: err=%v body=%q", err, w.Body.String())
	}
	if live.InFlight[0].ID != inflight.ID || live.InFlight[0].MorselsTotal != 10 {
		t.Fatalf("in-flight JSON entry = %+v", live.InFlight[0])
	}

	// /debug/queries/recent shows the flush record.
	w = httptest.NewRecorder()
	r.HandleRecent(w, httptest.NewRequest("GET", "/debug/queries/recent", nil))
	if body := w.Body.String(); !strings.Contains(body, "flush") || !strings.Contains(body, "rows=42") {
		t.Fatalf("recent text view: %q", body)
	}

	// /debug/queries/slow with an explicit threshold filter.
	w = httptest.NewRecorder()
	r.HandleSlow(w, httptest.NewRequest("GET", "/debug/queries/slow?threshold=100ms", nil))
	if body := w.Body.String(); !strings.Contains(body, fmt.Sprintf("#%d", finished.ID)) {
		t.Fatalf("slow view must include the 300ms flush: %q", body)
	}
	w = httptest.NewRecorder()
	r.HandleSlow(w, httptest.NewRequest("GET", "/debug/queries/slow?threshold=1h", nil))
	if body := w.Body.String(); strings.Contains(body, fmt.Sprintf("#%d", finished.ID)) {
		t.Fatalf("1h threshold must filter the flush out: %q", body)
	}
	w = httptest.NewRecorder()
	r.HandleSlow(w, httptest.NewRequest("GET", "/debug/queries/slow?threshold=bogus", nil))
	if w.Code != 400 {
		t.Fatalf("bad threshold: code = %d", w.Code)
	}

	// /debug/queries/trace: 404 for evicted/untraced, 400 for bad id.
	w = httptest.NewRecorder()
	r.HandleTrace(w, httptest.NewRequest("GET", "/debug/queries/trace", nil))
	if w.Code != 400 {
		t.Fatalf("missing id: code = %d", w.Code)
	}
	w = httptest.NewRecorder()
	r.HandleTrace(w, httptest.NewRequest("GET",
		fmt.Sprintf("/debug/queries/trace?id=%d", finished.ID), nil))
	if w.Code != 404 {
		t.Fatalf("untraced record: code = %d", w.Code)
	}

	// A traced record serves Chrome trace JSON.
	traced := r.Begin(KindQuery, "events", "Count", "")
	root := NewSpan("Query(events)")
	root.End()
	r.Finish(traced, &QueryRecord{TraceRoot: root})
	w = httptest.NewRecorder()
	r.HandleTrace(w, httptest.NewRequest("GET",
		fmt.Sprintf("/debug/queries/trace?id=%d", traced.ID), nil))
	if w.Code != 200 {
		t.Fatalf("traced record: code = %d body=%q", w.Code, w.Body.String())
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &tf); err != nil || len(tf.TraceEvents) == 0 {
		t.Fatalf("trace JSON: err=%v", err)
	}

	// /healthz reports counts.
	w = httptest.NewRecorder()
	HealthzHandler(r)(w, httptest.NewRequest("GET", "/healthz", nil))
	if body := w.Body.String(); !strings.Contains(body, "ok") || !strings.Contains(body, "inflight=1") {
		t.Fatalf("healthz: %q", body)
	}
}

func TestChromeTraceLayout(t *testing.T) {
	root := NewSpan("Query(t)")
	plan := root.StartChild("Plan")
	plan.End()
	pipe := root.StartChild("Pipeline")
	s1 := pipe.StartChild("Filter[a]")
	s1.SetDuration(5 * time.Millisecond) // summed busy time, > parent wall
	s1.SetRows(100, 40)
	s2 := pipe.StartChild("Count")
	s2.SetDuration(2 * time.Millisecond)
	pipe.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root, &QueryRecord{ID: 9, KindName: "query", Table: "t"}); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if tf.Metadata["queryId"].(float64) != 9 {
		t.Fatalf("metadata = %v", tf.Metadata)
	}
	byName := map[string]int{}
	var rootEv, s1Ev *struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	}
	for i := range tf.TraceEvents {
		ev := &tf.TraceEvents[i]
		if ev.Ph != "X" {
			continue
		}
		byName[ev.Name]++
		switch ev.Name {
		case "Query(t)":
			rootEv = ev
		case "Filter[a]":
			s1Ev = ev
		}
	}
	for _, name := range []string{"Query(t)", "Plan", "Pipeline", "Filter[a]", "Count"} {
		if byName[name] != 1 {
			t.Fatalf("span %q appears %d times in the trace", name, byName[name])
		}
	}
	// The layout stretches parents over their children: the root extent
	// must cover the 7ms of summed stage time.
	if rootEv == nil || rootEv.Dur < 7000 {
		t.Fatalf("root extent %v µs, want >= 7000", rootEv)
	}
	// Measured stats ride in args.
	if s1Ev == nil || s1Ev.Args["durationNs"].(float64) != float64(5*time.Millisecond) ||
		s1Ev.Args["rowsOut"].(float64) != 40 {
		t.Fatalf("stage args = %+v", s1Ev)
	}
	if err := WriteChromeTrace(&buf, nil, nil); err == nil {
		t.Fatal("nil root must error")
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	l.Info("dropped", "k", "v")
	l.Warn("dropped")
	l.Error("dropped")
	if l.With("k", "v") != nil {
		t.Fatal("nil Logger.With must stay nil")
	}
	if NewLogger(nil) != nil {
		t.Fatal("NewLogger(nil) must be nil")
	}
	var buf bytes.Buffer
	jl := NewJSONLogger(&buf).With("table", "events")
	jl.Info("flush", "rows", 7)
	var ev struct {
		Msg   string `json:"msg"`
		Table string `json:"table"`
		Rows  int    `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("JSON logger output: %v (%q)", err, buf.String())
	}
	if ev.Msg != "flush" || ev.Table != "events" || ev.Rows != 7 {
		t.Fatalf("event = %+v", ev)
	}
}
