package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("codecdb_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("codecdb_test_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	g := r.Gauge("codecdb_test_gauge", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	h := r.Histogram("codecdb_test_seconds", "a histogram", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5) // above every bound: +Inf bucket
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() < 5.0 {
		t.Fatalf("histogram sum = %v, want >= 5", h.Sum())
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("codecdb_pages_pruned_total", "pages pruned").Add(42)
	r.Gauge("codecdb_inflight", "tasks in flight").Set(3)
	r.CounterFunc("codecdb_fn_total{codec=\"snappy\"}", "per-codec", func() float64 { return 9 })
	h := r.Histogram("codecdb_query_seconds", "query latency", []float64{0.001, 1})
	h.Observe(0.0005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE codecdb_pages_pruned_total counter",
		"codecdb_pages_pruned_total 42",
		"# TYPE codecdb_inflight gauge",
		"codecdb_inflight 3",
		"# TYPE codecdb_fn_total counter",
		`codecdb_fn_total{codec="snappy"} 9`,
		"# TYPE codecdb_query_seconds histogram",
		`codecdb_query_seconds_bucket{le="0.001"} 1`,
		`codecdb_query_seconds_bucket{le="+Inf"} 2`,
		"codecdb_query_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("codecdb_conc_total", "x").Inc()
				r.Histogram("codecdb_conc_seconds", "x", nil).Observe(0.001)
				var buf bytes.Buffer
				if j%100 == 0 {
					r.WriteProm(&buf)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("codecdb_conc_total", "x").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestSpanTreeAndContext(t *testing.T) {
	root := NewSpan("Query(t)")
	ctx := ContextWithSpan(context.Background(), root)
	if SpanFrom(ctx) != root {
		t.Fatal("SpanFrom did not round-trip")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("SpanFrom on a bare context must be nil")
	}

	child := SpanFrom(ctx).StartChild("Filter[DictFilter]")
	child.AddDetail("kernel=%s", "ScanPacked")
	child.SetRows(1000, 10)
	child.AddIO(SpanIO{PagesRead: 2, PagesPruned: 5, BytesRead: 128})
	child.AddIO(SpanIO{PagesRead: 1})
	child.AddTasks(4)
	child.End()
	root.SetRows(1000, 10)
	root.End()

	if got := root.SumIO(); got.PagesRead != 3 || got.PagesPruned != 5 {
		t.Fatalf("SumIO = %+v", got)
	}
	out := root.Render()
	for _, want := range []string{"Query(t)", "└─ Filter[DictFilter]", "kernel=ScanPacked",
		"rows=1000→10", "pages[read=3 pruned=5 skipped=0]", "tasks=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	// Every instrumentation entry point must be callable on nil.
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("StartChild on nil must return nil")
	}
	s.End()
	s.AddDetail("d")
	s.SetRows(1, 2)
	s.AddIO(SpanIO{PagesRead: 1})
	s.AddTasks(1)
	s.SetAllocBytes(1)
	if s.Name() != "" || s.Tasks() != 0 || len(s.Children()) != 0 {
		t.Fatal("nil span accessors must return zero values")
	}
}

func TestConcurrentChildren(t *testing.T) {
	root := NewSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.StartChild("c")
			sp.AddIO(SpanIO{PagesRead: 1})
			sp.End()
		}()
	}
	wg.Wait()
	if n := len(root.Children()); n != 16 {
		t.Fatalf("children = %d, want 16", n)
	}
	if io := root.SumIO(); io.PagesRead != 16 {
		t.Fatalf("SumIO.PagesRead = %d, want 16", io.PagesRead)
	}
}

func TestEventsSink(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	prev := SetEventSink(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	defer SetEventSink(prev)

	if !EventsEnabled() {
		t.Fatal("EventsEnabled must be true with a sink installed")
	}
	Emit("encoding_decision", map[string]any{"column": "l_shipmode", "chosen": "dict"})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Name != "encoding_decision" || got[0].Fields["column"] != "l_shipmode" {
		t.Fatalf("events = %+v", got)
	}
}

func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	prev := SetEventSink(JSONSink(&buf))
	defer SetEventSink(prev)
	Emit("e1", map[string]any{"k": 1})
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("sink output is not JSON: %v (%q)", err, buf.String())
	}
	if e.Name != "e1" {
		t.Fatalf("event name = %q", e.Name)
	}
}

func TestEventsDisabled(t *testing.T) {
	prev := SetEventSink(nil)
	defer SetEventSink(prev)
	if EventsEnabled() {
		t.Fatal("EventsEnabled must be false with no sink")
	}
	Emit("dropped", nil) // must not panic
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("codecdb_expvar_total", "x").Add(3)
	r.PublishExpvar("codecdb_test_expvar")
	r.PublishExpvar("codecdb_test_expvar") // second publish must not panic
}
