package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured engine event — today the encoding decisions
// the selector makes at load time ("features in, scores out"), recorded
// so future learned-advisor work has a training signal to mine.
type Event struct {
	Time   time.Time      `json:"time"`
	Name   string         `json:"name"`
	Fields map[string]any `json:"fields"`
}

// EventSink consumes events. Sinks must be safe for concurrent use.
type EventSink func(Event)

// sink holds the installed EventSink; nil means events are dropped (the
// default), so Emit on the disabled path is one atomic load.
var sink atomic.Value // EventSink

// SetEventSink installs fn as the process-wide event consumer; nil
// disables event collection. It returns the previously installed sink so
// tests can restore it.
func SetEventSink(fn EventSink) EventSink {
	prev, _ := sink.Swap(fn).(EventSink)
	return prev
}

func init() { sink.Store(EventSink(nil)) }

// Emit records one event if a sink is installed. The fields map is
// handed to the sink as-is; callers must not mutate it afterwards.
func Emit(name string, fields map[string]any) {
	fn, _ := sink.Load().(EventSink)
	if fn == nil {
		return
	}
	fn(Event{Time: time.Now(), Name: name, Fields: fields})
}

// EventsEnabled reports whether a sink is installed, so callers can skip
// building an expensive fields map when nobody is listening.
func EventsEnabled() bool {
	fn, _ := sink.Load().(EventSink)
	return fn != nil
}

// JSONSink returns an EventSink that writes one JSON object per line to
// w, serialising writes with a mutex.
func JSONSink(w io.Writer) EventSink {
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(e) // best-effort: an unencodable field drops the event
	}
}
