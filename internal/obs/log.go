package obs

import (
	"io"
	"log/slog"
)

// Logger is a nil-safe wrapper over log/slog: a nil *Logger drops every
// event, so instrumented code logs unconditionally and callers opt in
// by injecting one (mirroring the tracer's nil-Span discipline). The
// write path and the flight recorder emit one structured event per
// flush, quarantine, recovery, torn-tail truncation, and slow query,
// each carrying the query/flush ID so logs, metrics, and traces join
// on one key.
type Logger struct {
	s *slog.Logger
}

// NewLogger wraps an existing slog logger; nil returns nil.
func NewLogger(s *slog.Logger) *Logger {
	if s == nil {
		return nil
	}
	return &Logger{s: s}
}

// NewJSONLogger returns a Logger emitting one JSON object per line to
// w, the shape `codecdb serve -log` installs.
func NewJSONLogger(w io.Writer) *Logger {
	return &Logger{s: slog.New(slog.NewJSONHandler(w, nil))}
}

// Slog exposes the wrapped slog.Logger (nil for a nil Logger), for
// callers that want to add context attrs with l.Slog().With(...).
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.s
}

// With returns a Logger whose events all carry the given attrs.
// Nil-safe: nil stays nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil || l.s == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// Info logs at info level. Nil-safe.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil || l.s == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at warn level. Nil-safe.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil || l.s == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at error level. Nil-safe.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil || l.s == nil {
		return
	}
	l.s.Error(msg, args...)
}
