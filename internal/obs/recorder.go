package obs

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// Query flight recorder: every query terminal (and every ingest flush /
// recovery pass) gets a monotonic ID and a QueryRecord. In-flight work
// registers in a small fixed array of atomic slots with morsel-level
// progress; completed records are published into a fixed-size ring of
// atomic pointers. Records are immutable once published, so readers can
// never observe torn stats: a snapshot is a pointer load, not a field
// copy under a lock. The whole structure is allocation-free on the
// per-morsel path (progress is one atomic add) and nil-safe like the
// tracer: a nil *Recorder or nil *LiveQuery no-ops everywhere.

// RecordKind says what produced a record: a query terminal, an ingest
// flush, or a WAL recovery pass at open.
type RecordKind uint8

const (
	KindQuery RecordKind = iota
	KindFlush
	KindRecovery
)

func (k RecordKind) String() string {
	switch k {
	case KindFlush:
		return "flush"
	case KindRecovery:
		return "recovery"
	default:
		return "query"
	}
}

var queryIDs atomic.Uint64

// NextQueryID returns the next process-wide monotonic ID. Queries,
// flushes, and recovery passes draw from the same sequence so a single
// key joins logs, metrics, and traces.
func NextQueryID() uint64 { return queryIDs.Add(1) }

// RecordIO is the page/byte IO attributed to one record. The fields
// mirror colstore.IOStats so a record's IO equals the Table.IOStats
// delta observed across the query.
type RecordIO struct {
	PagesRead      int64 `json:"pagesRead"`
	PagesPruned    int64 `json:"pagesPruned"`
	PagesSkipped   int64 `json:"pagesSkipped"`
	PagesCoalesced int64 `json:"pagesCoalesced"`
	BytesRead      int64 `json:"bytesRead"`
	BytesDecomp    int64 `json:"bytesDecompressed"`
	PrefetchHits   int64 `json:"prefetchHits"`
	PrefetchMisses int64 `json:"prefetchMisses"`
}

// QueryRecord is one completed query/flush/recovery. Published records
// are immutable; never mutate one after handing it to Finish.
type QueryRecord struct {
	ID        uint64     `json:"id"`
	Kind      RecordKind `json:"-"`
	KindName  string     `json:"kind"`
	Table     string     `json:"table"`
	Terminal  string     `json:"terminal"`
	Predicate string     `json:"predicate,omitempty"`

	Start time.Time     `json:"start"`
	Wall  time.Duration `json:"wallNs"`
	// IORead is wall time inside file reads (the IOStats.IONanos
	// delta); Wait and Decompress are the prefetch-stall and
	// decompression components, populated on traced runs where the
	// per-stage IO taps are live. Scan is the residual compute time.
	IORead     time.Duration `json:"ioReadNs"`
	Wait       time.Duration `json:"waitNs"`
	Decompress time.Duration `json:"decompressNs"`
	Scan       time.Duration `json:"scanNs"`

	RowsIn  int64    `json:"rowsIn"`
	RowsOut int64    `json:"rowsOut"`
	IO      RecordIO `json:"io"`
	// AllocBytes is the traced allocation attribution from the span
	// tree (zero on untraced runs — the recorder itself never calls
	// ReadMemStats on the hot path).
	AllocBytes   int64 `json:"allocBytes"`
	Workers      int   `json:"workers"`
	MorselsTotal int32 `json:"morselsTotal"`
	MorselsDone  int32 `json:"morselsDone"`

	Err       string `json:"error,omitempty"`
	Cancelled bool   `json:"cancelled,omitempty"`

	// TraceRoot is the span tree when the run was traced (e.g. via
	// ExplainAnalyze or the trace subcommand); nil otherwise.
	TraceRoot *Span `json:"-"`
}

// LiveQuery is one in-flight query's registry entry. Progress fields
// are atomics updated from worker goroutines; everything else is set
// once at Begin and read-only afterwards.
type LiveQuery struct {
	ID        uint64
	Kind      RecordKind
	Table     string
	Terminal  string
	Predicate string
	Start     time.Time

	workers      atomic.Int32
	morselsTotal atomic.Int32
	morselsDone  atomic.Int32
	waitNanos    atomic.Int64
	decompNanos  atomic.Int64

	rec  *Recorder
	slot int32 // index into rec.live, -1 when the registry was full
}

// AddMorsels accumulates the morsel (row-group) total once a pipeline
// has sized its scan; sharded terminals call it once per shard, so the
// total grows as the query advances through the snapshot. Nil-safe.
func (q *LiveQuery) AddMorsels(total, workers int) {
	if q == nil {
		return
	}
	q.morselsTotal.Add(int32(total))
	q.workers.Store(int32(workers))
}

// AddIOTimes accumulates traced prefetch-wait and decompression nanos
// (from the per-stage IO taps). Nil-safe.
func (q *LiveQuery) AddIOTimes(waitNanos, decompressNanos int64) {
	if q == nil {
		return
	}
	q.waitNanos.Add(waitNanos)
	q.decompNanos.Add(decompressNanos)
}

// IOTimes returns the accumulated traced wait/decompress nanos.
func (q *LiveQuery) IOTimes() (waitNanos, decompressNanos int64) {
	if q == nil {
		return 0, 0
	}
	return q.waitNanos.Load(), q.decompNanos.Load()
}

// MorselDone marks one morsel finished. Nil-safe; one atomic add.
func (q *LiveQuery) MorselDone() {
	if q == nil {
		return
	}
	q.morselsDone.Add(1)
}

// Progress returns (done, total, workers) for display.
func (q *LiveQuery) Progress() (done, total, workers int32) {
	if q == nil {
		return 0, 0, 0
	}
	return q.morselsDone.Load(), q.morselsTotal.Load(), q.workers.Load()
}

type liveCtxKey struct{}

// ContextWithQuery attaches a live registry entry to ctx so the
// pipeline layers can report progress without new plumbing.
func ContextWithQuery(ctx context.Context, q *LiveQuery) context.Context {
	if q == nil {
		return ctx
	}
	return context.WithValue(ctx, liveCtxKey{}, q)
}

// QueryFrom returns the live entry attached to ctx, or nil. The
// disabled path costs one context lookup, mirroring SpanFrom.
func QueryFrom(ctx context.Context) *LiveQuery {
	q, _ := ctx.Value(liveCtxKey{}).(*LiveQuery)
	return q
}

const liveSlots = 128

// Recorder is the flight recorder: a live registry of in-flight
// queries plus a ring of completed records.
type Recorder struct {
	disabled  atomic.Bool
	slowNanos atomic.Int64
	logger    atomic.Pointer[Logger]

	cursor atomic.Uint64
	ring   []atomic.Pointer[QueryRecord]
	live   [liveSlots]atomic.Pointer[LiveQuery]
}

// NewRecorder returns a recorder whose ring holds the most recent
// `capacity` completed records (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &Recorder{ring: make([]atomic.Pointer[QueryRecord], capacity)}
	r.slowNanos.Store(int64(100 * time.Millisecond))
	return r
}

var defaultRecorder = NewRecorder(256)

// DefaultRecorder returns the process-wide flight recorder. It is
// always on; SetEnabled(false) turns it into a no-op.
func DefaultRecorder() *Recorder { return defaultRecorder }

// SetEnabled turns recording on or off. Disabled, Begin returns nil
// and every downstream call no-ops.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.disabled.Store(!on)
	}
}

// Enabled reports whether the recorder is accepting records.
func (r *Recorder) Enabled() bool { return r != nil && !r.disabled.Load() }

// SetSlowThreshold sets the wall-time threshold at or above which a
// finished record is logged as a slow query (and returned by the
// default Slow listing).
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	if r != nil {
		r.slowNanos.Store(int64(d))
	}
}

// SlowThreshold returns the current slow-query threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowNanos.Load())
}

// SetLogger installs the structured logger slow-query events are
// emitted to. A nil logger silences them.
func (r *Recorder) SetLogger(l *Logger) {
	if r != nil {
		r.logger.Store(l)
	}
}

// Begin allocates an ID and registers an in-flight entry. Returns nil
// (safe everywhere) when the recorder is nil or disabled.
func (r *Recorder) Begin(kind RecordKind, table, terminal, predicate string) *LiveQuery {
	if r == nil || r.disabled.Load() {
		return nil
	}
	q := &LiveQuery{
		ID:        NextQueryID(),
		Kind:      kind,
		Table:     table,
		Terminal:  terminal,
		Predicate: predicate,
		Start:     time.Now(),
		rec:       r,
		slot:      -1,
	}
	for i := range r.live {
		if r.live[i].CompareAndSwap(nil, q) {
			q.slot = int32(i)
			break
		}
	}
	return q
}

// Finish deregisters q and publishes rec into the ring, filling the
// identity, timing, and progress fields from the live entry. rec may
// be partially populated by the caller (IO delta, rows, error); it
// must not be mutated after Finish returns. Nil-safe on both sides.
func (r *Recorder) Finish(q *LiveQuery, rec *QueryRecord) {
	if r == nil || q == nil {
		return
	}
	if q.slot >= 0 {
		r.live[q.slot].CompareAndSwap(q, nil)
	}
	if rec == nil {
		return
	}
	rec.ID = q.ID
	rec.Kind = q.Kind
	rec.KindName = q.Kind.String()
	if rec.Table == "" {
		rec.Table = q.Table
	}
	if rec.Terminal == "" {
		rec.Terminal = q.Terminal
	}
	if rec.Predicate == "" {
		rec.Predicate = q.Predicate
	}
	rec.Start = q.Start
	if rec.Wall == 0 {
		rec.Wall = time.Since(q.Start)
	}
	rec.MorselsDone, rec.MorselsTotal, _ = progress3(q)
	if rec.Workers == 0 {
		rec.Workers = int(q.workers.Load())
	}
	if rec.Scan == 0 {
		if scan := rec.Wall - rec.IORead - rec.Decompress; scan > 0 {
			rec.Scan = scan
		}
	}
	slot := (r.cursor.Add(1) - 1) % uint64(len(r.ring))
	r.ring[slot].Store(rec)
	if slow := r.slowNanos.Load(); slow > 0 && int64(rec.Wall) >= slow {
		r.logger.Load().Warn("slow query",
			"id", rec.ID, "kind", rec.KindName, "table", rec.Table,
			"terminal", rec.Terminal, "predicate", rec.Predicate,
			"wall", rec.Wall, "pagesRead", rec.IO.PagesRead,
			"bytesRead", rec.IO.BytesRead, "rowsOut", rec.RowsOut)
	}
}

func progress3(q *LiveQuery) (done, total, workers int32) {
	return q.morselsDone.Load(), q.morselsTotal.Load(), q.workers.Load()
}

// LiveSnapshot is a plain-value copy of one in-flight entry.
type LiveSnapshot struct {
	ID           uint64        `json:"id"`
	Kind         string        `json:"kind"`
	Table        string        `json:"table"`
	Terminal     string        `json:"terminal"`
	Predicate    string        `json:"predicate,omitempty"`
	Start        time.Time     `json:"start"`
	Elapsed      time.Duration `json:"elapsedNs"`
	MorselsDone  int32         `json:"morselsDone"`
	MorselsTotal int32         `json:"morselsTotal"`
	Workers      int32         `json:"workers"`
}

// InFlight snapshots the live registry, oldest first.
func (r *Recorder) InFlight() []LiveSnapshot {
	if r == nil {
		return nil
	}
	now := time.Now()
	var out []LiveSnapshot
	for i := range r.live {
		q := r.live[i].Load()
		if q == nil {
			continue
		}
		done, total, workers := progress3(q)
		out = append(out, LiveSnapshot{
			ID: q.ID, Kind: q.Kind.String(), Table: q.Table,
			Terminal: q.Terminal, Predicate: q.Predicate,
			Start: q.Start, Elapsed: now.Sub(q.Start),
			MorselsDone: done, MorselsTotal: total, Workers: workers,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Recent returns the ring contents, newest first.
func (r *Recorder) Recent() []*QueryRecord {
	if r == nil {
		return nil
	}
	out := make([]*QueryRecord, 0, len(r.ring))
	for i := range r.ring {
		if rec := r.ring[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Slow returns recorded entries with wall time >= d, slowest first.
// d <= 0 uses the recorder's slow threshold.
func (r *Recorder) Slow(d time.Duration) []*QueryRecord {
	if r == nil {
		return nil
	}
	if d <= 0 {
		d = r.SlowThreshold()
	}
	var out []*QueryRecord
	for _, rec := range r.Recent() {
		if rec.Wall >= d {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

// Find returns the recorded entry with the given ID, or nil.
func (r *Recorder) Find(id uint64) *QueryRecord {
	if r == nil {
		return nil
	}
	for i := range r.ring {
		if rec := r.ring[i].Load(); rec != nil && rec.ID == id {
			return rec
		}
	}
	return nil
}
