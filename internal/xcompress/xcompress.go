// Package xcompress provides the byte-level compression schemes CodecDB
// compares its lightweight encodings against (paper §2): an LZ77 block
// codec in the style of Snappy (match/literal tags, no entropy coding,
// built for speed) and DEFLATE via the standard library's gzip (LZ77 +
// Huffman, built for ratio).
//
// The Snappy-style codec is a from-scratch implementation — the original
// Google library is a substitution documented in DESIGN.md — but keeps the
// defining trade-off: it emits raw tuples without an entropy stage, so it
// compresses less than gzip and runs much faster.
package xcompress

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Compressor is a one-shot block compressor.
type Compressor interface {
	Name() string
	Compress(src []byte) ([]byte, error)
	Decompress(src []byte) ([]byte, error)
	// DecompressInto decompresses src into dst's storage, overwriting it
	// from the start, and returns the decompressed bytes — dst is grown as
	// needed, so passing a pooled buffer with sufficient capacity makes
	// decompression allocation-free. Identity codecs may return src
	// itself; callers must treat the result as aliasing either argument.
	DecompressInto(dst, src []byte) ([]byte, error)
}

// For returns the compressor registered under name ("snappy", "gzip",
// "none").
func For(name string) (Compressor, error) {
	switch name {
	case "snappy":
		return Snappy{}, nil
	case "gzip":
		return Gzip{}, nil
	case "none", "":
		return None{}, nil
	default:
		return nil, fmt.Errorf("xcompress: unknown compressor %q", name)
	}
}

// None is the identity compressor.
type None struct{}

// Name returns "none".
func (None) Name() string { return "none" }

// Compress returns src unchanged.
func (None) Compress(src []byte) ([]byte, error) { return src, nil }

// Decompress returns src unchanged.
func (None) Decompress(src []byte) ([]byte, error) { return src, nil }

// DecompressInto returns src unchanged; dst is untouched.
func (None) DecompressInto(dst, src []byte) ([]byte, error) { return src, nil }

// Gzip wraps compress/gzip at the default level.
type Gzip struct {
	// Level overrides the compression level when non-zero.
	Level int
}

// Name returns "gzip".
func (Gzip) Name() string { return "gzip" }

// Compress DEFLATE-compresses src.
func (g Gzip) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	level := g.Level
	if level == 0 {
		level = gzip.DefaultCompression
	}
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress reverses Compress.
func (g Gzip) Decompress(src []byte) ([]byte, error) {
	return g.DecompressInto(nil, src)
}

// DecompressInto reverses Compress into dst's storage.
func (Gzip) DecompressInto(dst, src []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			recordDecompress(codecGzip, len(dst))
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
