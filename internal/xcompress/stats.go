package xcompress

import "sync/atomic"

// Process-wide per-codec decompression counters. Both Decompress and
// DecompressInto funnel through DecompressInto for the real codecs, so
// each block is counted exactly once; the identity codec is not counted
// (it does no decompression work). The counters back the metrics
// registry's codecdb_codec_* series and are never reset.

const (
	codecSnappy = iota
	codecGzip
	numCodecs
)

type codecCounters struct {
	calls atomic.Int64
	bytes atomic.Int64 // decompressed output bytes
}

var decompStats [numCodecs]codecCounters

func recordDecompress(codec int, n int) {
	decompStats[codec].calls.Add(1)
	decompStats[codec].bytes.Add(int64(n))
}

// CodecStats is a snapshot of one codec's cumulative decompression work.
type CodecStats struct {
	Codec             string
	Decompressions    int64
	DecompressedBytes int64
}

// DecompressStats returns cumulative per-codec decompression counters
// since process start, in a fixed order (snappy, gzip).
func DecompressStats() []CodecStats {
	return []CodecStats{
		{"snappy", decompStats[codecSnappy].calls.Load(), decompStats[codecSnappy].bytes.Load()},
		{"gzip", decompStats[codecGzip].calls.Load(), decompStats[codecGzip].bytes.Load()},
	}
}
