package xcompress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func compressors() []Compressor {
	return []Compressor{Snappy{}, Gzip{}, None{}}
}

func TestRoundTripFixtures(t *testing.T) {
	fixtures := map[string][]byte{
		"empty":      {},
		"single":     {0x42},
		"repetitive": bytes.Repeat([]byte("abcabcabc"), 500),
		"runs":       bytes.Repeat([]byte{0}, 10000),
		"text": []byte(strings.Repeat(
			"the quick brown fox jumps over the lazy dog. ", 200)),
		"short": []byte("xy"),
	}
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 4096)
	rng.Read(random)
	fixtures["random"] = random
	for _, c := range compressors() {
		for name, data := range fixtures {
			comp, err := c.Compress(data)
			if err != nil {
				t.Fatalf("%s/%s compress: %v", c.Name(), name, err)
			}
			got, err := c.Decompress(comp)
			if err != nil {
				t.Fatalf("%s/%s decompress: %v", c.Name(), name, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%s round trip mismatch: %d vs %d bytes", c.Name(), name, len(got), len(data))
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range compressors() {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := rng.Intn(5000)
			data := make([]byte, n)
			// Mix of random and repetitive sections exercises both
			// literal and copy paths.
			for i := 0; i < n; {
				if rng.Intn(2) == 0 {
					l := 1 + rng.Intn(50)
					b := byte(rng.Intn(4))
					for j := i; j < i+l && j < n; j++ {
						data[j] = b
					}
					i += l
				} else {
					data[i] = byte(rng.Intn(256))
					i++
				}
			}
			comp, err := c.Compress(data)
			if err != nil {
				return false
			}
			got, err := c.Decompress(comp)
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestSnappyCompressesRepetitiveData(t *testing.T) {
	data := bytes.Repeat([]byte("SHIPMODE=TRUCK;"), 1000)
	comp, _ := Snappy{}.Compress(data)
	if len(comp)*10 > len(data) {
		t.Fatalf("snappy should compress repetitive data ≥10x: %d -> %d", len(data), len(comp))
	}
}

func TestGzipBeatsSnappyOnText(t *testing.T) {
	// The defining trade-off: gzip's entropy stage wins on ratio.
	rng := rand.New(rand.NewSource(9))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	var sb strings.Builder
	for i := 0; i < 20000; i++ {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	data := []byte(sb.String())
	s, _ := Snappy{}.Compress(data)
	g, _ := Gzip{}.Compress(data)
	if len(g) >= len(s) {
		t.Fatalf("gzip (%d) should beat snappy (%d) on ratio", len(g), len(s))
	}
}

func TestSnappyCorruptInput(t *testing.T) {
	data := []byte("hello hello hello hello hello hello")
	comp, _ := Snappy{}.Compress(data)
	for cut := 0; cut < len(comp); cut++ {
		if _, err := (Snappy{}).Decompress(comp[:cut]); err == nil && cut < len(comp) {
			// Some prefixes decode cleanly only if they are complete; a
			// complete decode must match a prefix of the input length claim,
			// which the length check rejects. So err == nil is a bug.
			t.Fatalf("truncated input at %d decoded without error", cut)
		}
	}
	if _, err := (Snappy{}).Decompress(nil); err == nil {
		t.Fatal("empty buffer should be corrupt")
	}
	// Copy with offset past the start must error, not panic.
	bad := []byte{4, 0x01, 0xFF} // len 4, copy1 with big offset
	if _, err := (Snappy{}).Decompress(bad); err == nil {
		t.Fatal("out-of-range back-reference should error")
	}
}

func TestSnappyOverlappingCopy(t *testing.T) {
	// "aaaa..." forces offset < length back-references.
	data := bytes.Repeat([]byte{'a'}, 1000)
	comp, _ := Snappy{}.Compress(data)
	got, err := Snappy{}.Decompress(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("overlapping copy round trip failed: %v", err)
	}
}

func TestForRegistry(t *testing.T) {
	for _, name := range []string{"snappy", "gzip", "none", ""} {
		if _, err := For(name); err != nil {
			t.Fatalf("For(%q): %v", name, err)
		}
	}
	if _, err := For("lz4"); err == nil {
		t.Fatal("unknown compressor should error")
	}
}
