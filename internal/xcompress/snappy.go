package xcompress

import (
	"encoding/binary"
	"errors"
)

// Snappy is an LZ77 block codec modeled on the Snappy wire idea: a varint
// uncompressed length followed by a tag stream of literals and copies.
// There is no entropy stage — matches are emitted verbatim — which is what
// gives the family its speed-over-ratio trade-off (paper §2).
//
// Tag byte layout (low 2 bits select the element type):
//
//	00 literal:  upper 6 bits = length-1 (0..59); 60..63 select 1..4
//	             extra length bytes (little-endian)
//	01 copy1:    3 bits length-4 (4..11), 3 bits offset high; 1 offset byte
//	             (offset 1..2047)
//	10 copy2:    6 bits length-1 (1..64); 2 offset bytes (offset 1..65535)
type Snappy struct{}

// Name returns "snappy".
func (Snappy) Name() string { return "snappy" }

const (
	snapTagLiteral = 0x00
	snapTagCopy1   = 0x01
	snapTagCopy2   = 0x02

	snapMinMatch  = 4
	snapMaxOffset = 1 << 16
	hashTableBits = 14
)

var errSnappyCorrupt = errors.New("xcompress: corrupt snappy block")

// Compress LZ77-compresses src.
func (Snappy) Compress(src []byte) ([]byte, error) {
	dst := binary.AppendUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return dst, nil
	}
	var table [1 << hashTableBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	for i+snapMinMatch <= len(src) {
		h := snapHash(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand < snapMaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			// Extend the match.
			matchLen := snapMinMatch
			for i+matchLen < len(src) && src[cand+matchLen] == src[i+matchLen] {
				matchLen++
			}
			dst = snapEmitLiteral(dst, src[litStart:i])
			dst = snapEmitCopy(dst, i-cand, matchLen)
			i += matchLen
			litStart = i
			continue
		}
		i++
	}
	return snapEmitLiteral(dst, src[litStart:]), nil
}

// Decompress reverses Compress.
func (s Snappy) Decompress(src []byte) ([]byte, error) {
	return s.DecompressInto(nil, src)
}

// DecompressInto reverses Compress into dst's storage.
func (Snappy) DecompressInto(dst, src []byte) ([]byte, error) {
	n, hdr := binary.Uvarint(src)
	if hdr <= 0 {
		return nil, errSnappyCorrupt
	}
	src = src[hdr:]
	if cap(dst) < int(n) {
		dst = make([]byte, 0, n)
	}
	dst = dst[:0]
	for len(src) > 0 {
		tag := src[0]
		switch tag & 0x03 {
		case snapTagLiteral:
			length := int(tag>>2) + 1
			src = src[1:]
			if length > 60 {
				extra := length - 60
				if len(src) < extra {
					return nil, errSnappyCorrupt
				}
				length = 0
				for b := extra - 1; b >= 0; b-- {
					length = length<<8 | int(src[b])
				}
				length++
				src = src[extra:]
			}
			if len(src) < length {
				return nil, errSnappyCorrupt
			}
			dst = append(dst, src[:length]...)
			src = src[length:]
		case snapTagCopy1:
			if len(src) < 2 {
				return nil, errSnappyCorrupt
			}
			length := int(tag>>2)&0x07 + snapMinMatch
			offset := int(tag>>5)<<8 | int(src[1])
			src = src[2:]
			if err := snapAppendCopy(&dst, offset, length); err != nil {
				return nil, err
			}
		case snapTagCopy2:
			if len(src) < 3 {
				return nil, errSnappyCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint16(src[1:]))
			src = src[3:]
			if err := snapAppendCopy(&dst, offset, length); err != nil {
				return nil, err
			}
		default:
			return nil, errSnappyCorrupt
		}
	}
	if uint64(len(dst)) != n {
		return nil, errSnappyCorrupt
	}
	recordDecompress(codecSnappy, len(dst))
	return dst, nil
}

func snapHash(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashTableBits)
}

func snapEmitLiteral(dst, lit []byte) []byte {
	for len(lit) > 0 {
		chunk := lit
		n := len(chunk)
		switch {
		case n <= 60:
			dst = append(dst, byte(n-1)<<2|snapTagLiteral)
		case n < 1<<8:
			dst = append(dst, 60<<2|snapTagLiteral, byte(n-1))
		case n < 1<<16:
			dst = append(dst, 61<<2|snapTagLiteral, byte(n-1), byte((n-1)>>8))
		case n < 1<<24:
			dst = append(dst, 62<<2|snapTagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16))
		default:
			dst = append(dst, 63<<2|snapTagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16), byte((n-1)>>24))
		}
		dst = append(dst, chunk...)
		lit = lit[n:]
	}
	return dst
}

func snapEmitCopy(dst []byte, offset, length int) []byte {
	// Long matches are split into <=64-byte copy2 elements; a final short
	// remainder uses copy1 when the offset fits.
	for length > 0 {
		n := length
		if n > 64 {
			n = 64
			// Avoid leaving a tail shorter than the minimum match.
			if length-n < snapMinMatch && length-n > 0 {
				n = length - snapMinMatch
			}
		}
		if n >= snapMinMatch && n <= 11 && offset < 1<<11 {
			dst = append(dst, byte(offset>>8)<<5|byte(n-snapMinMatch)<<2|snapTagCopy1, byte(offset))
		} else {
			dst = append(dst, byte(n-1)<<2|snapTagCopy2, byte(offset), byte(offset>>8))
		}
		length -= n
	}
	return dst
}

func snapAppendCopy(dst *[]byte, offset, length int) error {
	d := *dst
	if offset <= 0 || offset > len(d) || length <= 0 {
		return errSnappyCorrupt
	}
	// Overlapping copies are the LZ77 back-reference semantics: copy byte
	// by byte so runs (offset < length) replicate correctly.
	pos := len(d) - offset
	for i := 0; i < length; i++ {
		d = append(d, d[pos+i])
	}
	*dst = d
	return nil
}
