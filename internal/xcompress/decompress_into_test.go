package xcompress

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecompressIntoReusesBuffer checks the DecompressInto contract for
// every codec: the output equals Decompress, a sufficiently large dst is
// reused (no growth), and dirty dst contents are overwritten from the
// start.
func TestDecompressIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("the quick brown fox "), 200),
		make([]byte, 10000),
	}
	for i := range payloads[3] {
		payloads[3][i] = byte(rng.Intn(256))
	}
	for _, c := range []Compressor{None{}, Snappy{}, Gzip{}} {
		for pi, plain := range payloads {
			comp, err := c.Compress(plain)
			if err != nil {
				t.Fatalf("%s payload %d: compress: %v", c.Name(), pi, err)
			}
			// Dirty oversized buffer: contents must be fully overwritten.
			dst := bytes.Repeat([]byte{0xFF}, len(plain)+64)
			got, err := c.DecompressInto(dst, comp)
			if err != nil {
				t.Fatalf("%s payload %d: decompress into: %v", c.Name(), pi, err)
			}
			if !bytes.Equal(got, plain) {
				t.Fatalf("%s payload %d: round trip mismatch (%d vs %d bytes)",
					c.Name(), pi, len(got), len(plain))
			}
			// Identity codecs may return src; real codecs with enough
			// capacity must reuse dst's storage.
			if c.Name() != "none" && len(plain) > 0 && &got[0] != &dst[0] {
				t.Fatalf("%s payload %d: oversized dst not reused", c.Name(), pi)
			}
			// Undersized dst (including nil) must still work by growing.
			got2, err := c.DecompressInto(nil, comp)
			if err != nil {
				t.Fatalf("%s payload %d: decompress into nil: %v", c.Name(), pi, err)
			}
			if !bytes.Equal(got2, plain) {
				t.Fatalf("%s payload %d: nil-dst round trip mismatch", c.Name(), pi)
			}
		}
	}
}

// TestNoneDecompressIntoAliasesSrc pins the identity-codec behaviour the
// reader's aliasing guard depends on: None returns src itself, so callers
// must not fold the result back into a scratch body buffer.
func TestNoneDecompressIntoAliasesSrc(t *testing.T) {
	src := []byte("hello world")
	got, err := None{}.DecompressInto(make([]byte, 0, 64), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) || &got[0] != &src[0] {
		t.Fatalf("None.DecompressInto must return src unchanged")
	}
}

// TestDecompressIntoRepeatedReuse simulates the page loop: one buffer
// cycles through pages of varying sizes without corruption.
func TestDecompressIntoRepeatedReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range []Compressor{Snappy{}, Gzip{}} {
		var dst []byte
		for page := 0; page < 20; page++ {
			n := 1 + rng.Intn(5000)
			plain := make([]byte, n)
			for i := range plain {
				plain[i] = byte(rng.Intn(8)) // compressible
			}
			comp, err := c.Compress(plain)
			if err != nil {
				t.Fatal(err)
			}
			dst, err = c.DecompressInto(dst, comp)
			if err != nil {
				t.Fatalf("%s page %d: %v", c.Name(), page, err)
			}
			if !bytes.Equal(dst, plain) {
				t.Fatalf("%s page %d: mismatch", c.Name(), page)
			}
		}
	}
}
