package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrShed means admission rejected the query outright — the queue is
// full or the declared memory budget can never be satisfied. Clients
// should back off before retrying.
var ErrShed = errors.New("serve: query shed")

// ErrAdmissionTimeout means the query waited in the admission queue
// longer than its wait budget without a slot freeing up.
var ErrAdmissionTimeout = errors.New("serve: admission wait timed out")

// AdmitConfig bounds the controller. Zero fields take the defaults
// noted per field.
type AdmitConfig struct {
	// MaxConcurrent is the number of queries allowed to execute at
	// once (default 4).
	MaxConcurrent int
	// MaxQueued bounds waiting queries across all clients; arrivals
	// beyond it are shed (default 64).
	MaxQueued int
	// MaxMemory bounds the sum of admitted queries' declared memory
	// budgets (default 1 GiB). A single query declaring more than
	// MaxMemory is shed immediately — it can never be satisfied.
	MaxMemory int64
	// DefaultQueryMemory is charged for queries that declare no budget
	// (default 64 MiB).
	DefaultQueryMemory int64
	// MaxWait bounds time in the queue before admission_timeout
	// (default 2s). Per-request contexts can only shorten it.
	MaxWait time.Duration
}

func (c AdmitConfig) withDefaults() AdmitConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.MaxMemory <= 0 {
		c.MaxMemory = 1 << 30
	}
	if c.DefaultQueryMemory <= 0 {
		c.DefaultQueryMemory = 64 << 20
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Second
	}
	return c
}

// admitWaiter is one queued query. The dispatcher grants it by setting
// granted and closing ready under the controller lock; Acquire observes
// exactly one of granted / its own timeout under the same lock, so a
// grant is never both delivered and abandoned.
type admitWaiter struct {
	mem     int64
	ready   chan struct{}
	granted bool
	gone    bool // abandoned by timeout/cancel; dispatcher skips it
}

// Controller is the admission gate: queries Acquire a slot before
// executing and Release it after. Waiting queries queue per client,
// and slots hand off round-robin across clients, so one flooding
// client cannot starve the others (its requests wait behind each other,
// not in front of everyone else's).
type Controller struct {
	cfg AdmitConfig

	mu      sync.Mutex
	running int
	memUsed int64
	queued  int
	queues  map[string][]*admitWaiter
	order   []string // round-robin rotation of clients with waiters
	next    int
}

// NewController builds an admission controller from cfg (zero fields
// take defaults).
func NewController(cfg AdmitConfig) *Controller {
	return &Controller{
		cfg:    cfg.withDefaults(),
		queues: make(map[string][]*admitWaiter),
	}
}

// Grant is an admitted query's slot; Release it when the query
// finishes (safe to call once).
type Grant struct {
	c        *Controller
	mem      int64
	released bool
}

// AdmitStats is a point-in-time snapshot of the controller.
type AdmitStats struct {
	Running int
	Queued  int
	MemUsed int64
}

// Stats snapshots the controller's occupancy.
func (c *Controller) Stats() AdmitStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return AdmitStats{Running: c.running, Queued: c.queued, MemUsed: c.memUsed}
}

// Acquire admits one query for client, charging mem bytes (0 charges
// the configured default). It returns immediately when capacity is
// free and no one is queued ahead; otherwise it waits up to MaxWait
// (or ctx's deadline, whichever ends first). Errors are ErrShed,
// ErrAdmissionTimeout, or ctx.Err().
func (c *Controller) Acquire(ctx context.Context, client string, mem int64) (*Grant, error) {
	if mem <= 0 {
		mem = c.cfg.DefaultQueryMemory
	}
	if mem > c.cfg.MaxMemory {
		shedTotal.Inc()
		return nil, ErrShed
	}
	if client == "" {
		client = "default"
	}

	c.mu.Lock()
	// Fast path: free capacity and an empty queue (jumping a non-empty
	// queue would undo the fairness rotation).
	if c.queued == 0 && c.canAdmitLocked(mem) {
		c.admitLocked(mem)
		c.mu.Unlock()
		return &Grant{c: c, mem: mem}, nil
	}
	if c.queued >= c.cfg.MaxQueued {
		c.mu.Unlock()
		shedTotal.Inc()
		return nil, ErrShed
	}
	w := &admitWaiter{mem: mem, ready: make(chan struct{})}
	c.enqueueLocked(client, w)
	c.mu.Unlock()

	timer := time.NewTimer(c.cfg.MaxWait)
	defer timer.Stop()
	var werr error
	select {
	case <-w.ready:
	case <-timer.C:
		werr = ErrAdmissionTimeout
	case <-ctx.Done():
		werr = ctx.Err()
	}

	c.mu.Lock()
	if w.granted {
		// The grant may have raced the timeout; it wins (the slot is
		// already charged, and the query still has its own deadline).
		c.mu.Unlock()
		return &Grant{c: c, mem: mem}, nil
	}
	w.gone = true
	c.queued--
	c.mu.Unlock()
	if errors.Is(werr, ErrAdmissionTimeout) {
		admissionTimeouts.Inc()
	}
	return nil, werr
}

// Release returns the query's slot and dispatches queued waiters.
func (g *Grant) Release() {
	if g == nil || g.released {
		return
	}
	g.released = true
	c := g.c
	c.mu.Lock()
	c.running--
	c.memUsed -= g.mem
	c.dispatchLocked()
	c.mu.Unlock()
}

func (c *Controller) canAdmitLocked(mem int64) bool {
	return c.running < c.cfg.MaxConcurrent && c.memUsed+mem <= c.cfg.MaxMemory
}

func (c *Controller) admitLocked(mem int64) {
	c.running++
	c.memUsed += mem
}

func (c *Controller) enqueueLocked(client string, w *admitWaiter) {
	if _, ok := c.queues[client]; !ok {
		c.order = append(c.order, client)
	}
	c.queues[client] = append(c.queues[client], w)
	c.queued++
}

// dispatchLocked hands freed capacity to queued waiters, one client
// per step in round-robin order, FIFO within a client. It stops when
// capacity runs out or every queue is drained.
func (c *Controller) dispatchLocked() {
	for c.queued > 0 && len(c.order) > 0 {
		if c.next >= len(c.order) {
			c.next = 0
		}
		client := c.order[c.next]
		q := c.queues[client]
		// Drop abandoned waiters from the head (their queued count was
		// already settled by Acquire's exit path).
		for len(q) > 0 && q[0].gone {
			q = q[1:]
		}
		if len(q) == 0 {
			delete(c.queues, client)
			c.order = append(c.order[:c.next], c.order[c.next+1:]...)
			continue
		}
		c.queues[client] = q
		w := q[0]
		if !c.canAdmitLocked(w.mem) {
			// Head-of-line blocks: a big query keeps its place rather
			// than being overtaken forever by small ones.
			return
		}
		c.admitLocked(w.mem)
		w.granted = true
		close(w.ready)
		c.queues[client] = q[1:]
		c.queued--
		c.next++
	}
}
