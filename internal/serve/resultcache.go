package serve

import (
	"container/list"
	"sync"
)

// ResultCache is a byte-budgeted LRU of finished query responses keyed
// on (table, data epoch, canonical predicate, terminal, column). The
// epoch lives inside the key, so an ingest that bumps the table's epoch
// invalidates every cached result for it implicitly: new queries form
// new keys and the stale entries age out.
type ResultCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List
	byKey  map[string]*list.Element

	hits, misses, evictions int64
}

type rcEntry struct {
	key  string
	size int64
	resp *QueryResponse
}

// NewResultCache builds a cache bounded to budget bytes; budget <= 0
// returns nil, and a nil cache is a valid always-miss cache.
func NewResultCache(budget int64) *ResultCache {
	if budget <= 0 {
		return nil
	}
	return &ResultCache{
		budget: budget,
		ll:     list.New(),
		byKey:  make(map[string]*list.Element),
	}
}

// Get returns the cached response for key, or nil.
func (c *ResultCache) Get(key string) *QueryResponse {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		resultCacheMisses.Inc()
		return nil
	}
	c.ll.MoveToFront(el)
	c.hits++
	resultCacheHits.Inc()
	return el.Value.(*rcEntry).resp
}

// Put stores resp under key. Entries larger than half the budget are
// refused rather than wiping the whole cache for one giant rowid list.
func (c *ResultCache) Put(key string, resp *QueryResponse) {
	if c == nil || resp == nil {
		return
	}
	size := responseSize(resp)
	if size > c.budget/2 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		old := el.Value.(*rcEntry)
		c.bytes += size - old.size
		old.size, old.resp = size, resp
		c.ll.MoveToFront(el)
	} else {
		c.byKey[key] = c.ll.PushFront(&rcEntry{key: key, size: size, resp: resp})
		c.bytes += size
	}
	for c.bytes > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ent := c.ll.Remove(el).(*rcEntry)
		delete(c.byKey, ent.key)
		c.bytes -= ent.size
		c.evictions++
	}
}

// ResultCacheStats is a point-in-time snapshot.
type ResultCacheStats struct {
	Hits, Misses, Evictions int64
	Bytes                   int64
	Entries                 int
}

// Stats snapshots the cache; zero value on a nil cache.
func (c *ResultCache) Stats() ResultCacheStats {
	if c == nil {
		return ResultCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Bytes: c.bytes, Entries: c.ll.Len(),
	}
}

// responseSize approximates a response's retained footprint.
func responseSize(r *QueryResponse) int64 {
	s := int64(128)
	s += int64(len(r.RowIDs)) * 8
	for k := range r.Groups {
		s += int64(len(k)) + 24
	}
	return s
}
