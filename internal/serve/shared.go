package serve

import (
	"context"
	"sync"
	"time"

	"codecdb"
)

// waveBatcher group-commits concurrent queries on one table into
// cooperative scan waves. The first arrival on an idle table leads a
// wave of one and runs immediately; arrivals while a wave is scanning
// attach to the next batch, whose leader blocks on the per-table run
// lock until the current wave drains and then seals whatever
// accumulated. Batching therefore needs no timing window: under load,
// wave size grows with concurrency while each wave stays one scan —
// every page fetched and decompressed once per wave regardless of how
// many queries ride it.
type waveBatcher struct {
	mu     sync.Mutex
	tables map[string]*tableWaves
}

type tableWaves struct {
	runMu sync.Mutex // one wave in flight per table

	mu      sync.Mutex
	pending *waveBatch
}

type waveBatch struct {
	queries   []codecdb.WaveQuery
	deadlines []time.Time
	done      chan struct{}
	results   []codecdb.WaveResult
	err       error
}

func newWaveBatcher() *waveBatcher {
	return &waveBatcher{tables: make(map[string]*tableWaves)}
}

func (b *waveBatcher) forTable(name string) *tableWaves {
	b.mu.Lock()
	defer b.mu.Unlock()
	tw, ok := b.tables[name]
	if !ok {
		tw = &tableWaves{}
		b.tables[name] = tw
	}
	return tw
}

// run evaluates wq against tbl through the table's wave pipeline and
// returns that member's result. base is the server's lifetime context
// (waves outlive any single member's request); deadline, if nonzero, is
// this member's execution deadline, and the sealed wave runs under the
// latest member deadline so no member is cut short by a stranger's
// budget. exec carries the wave-wide worker cap.
func (b *waveBatcher) run(base context.Context, tbl *codecdb.Table, wq codecdb.WaveQuery, deadline time.Time, exec codecdb.ExecOptions) (codecdb.WaveResult, error) {
	tw := b.forTable(tbl.Name())

	tw.mu.Lock()
	batch := tw.pending
	leader := batch == nil
	if leader {
		batch = &waveBatch{done: make(chan struct{})}
		tw.pending = batch
	}
	idx := len(batch.queries)
	batch.queries = append(batch.queries, wq)
	batch.deadlines = append(batch.deadlines, deadline)
	tw.mu.Unlock()

	if leader {
		tw.runMu.Lock()
		// Seal: everything that attached while the previous wave ran
		// rides this one.
		tw.mu.Lock()
		tw.pending = nil
		qs := batch.queries
		latest, all := latestDeadline(batch.deadlines)
		tw.mu.Unlock()

		if all {
			exec.Deadline = latest
		}
		wctx, cancel := exec.Context(base)
		batch.results, batch.err = tbl.Wave(wctx, qs)
		cancel()
		tw.runMu.Unlock()

		wavesTotal.Inc()
		waveMembers.Add(int64(len(qs)))
		close(batch.done)
	} else {
		<-batch.done
	}
	if batch.err != nil {
		return codecdb.WaveResult{}, batch.err
	}
	return batch.results[idx], nil
}

// latestDeadline returns the maximum deadline and whether every member
// declared one — a single unbounded member makes the wave unbounded
// (the server's own request timeout still applies upstream).
func latestDeadline(ds []time.Time) (time.Time, bool) {
	var latest time.Time
	for _, d := range ds {
		if d.IsZero() {
			return time.Time{}, false
		}
		if d.After(latest) {
			latest = d
		}
	}
	return latest, len(ds) > 0
}
