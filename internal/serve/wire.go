// Package serve is the multi-user query serving layer: a versioned JSON
// query API over one codecdb.DB, with admission control (per-query
// memory and global concurrency budgets, per-client fairness, queue
// timeout and shed), cooperative shared scans (concurrent queries on
// one table batch into a single wave so each page is fetched and
// decompressed once per wave), and an epoch-keyed result cache.
package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"codecdb"
)

// Wire error codes. Every /v1/query failure carries exactly one.
const (
	CodeBadRequest       = "bad_request"       // malformed JSON, missing/unknown fields
	CodeBadPredicate     = "bad_predicate"     // predicate failed validation against the schema
	CodeNotFound         = "not_found"         // unknown table
	CodeAdmissionTimeout = "admission_timeout" // queued longer than the admission wait budget
	CodeShed             = "shed"              // rejected outright: queue full or budget unsatisfiable
	CodeCorruption       = "corruption"        // stored data failed checksum verification mid-scan
	CodeCanceled         = "canceled"          // deadline or client disconnect mid-query
	CodeInternal         = "internal"          // everything else
)

// WirePred is the JSON predicate tree. Kind selects the shape:
//
//	{"kind":"cmp","col":"level","op":"ge","value":4}
//	{"kind":"in","col":"status","values":["ERROR","FATAL"]}
//	{"kind":"and","kids":[...]}   {"kind":"or","kids":[...]}
//	{"kind":"not","kids":[<one leaf>]}
//
// Numbers decode as int64 when integer-valued, float64 otherwise.
type WirePred struct {
	Kind   string      `json:"kind"`
	Col    string      `json:"col,omitempty"`
	Op     string      `json:"op,omitempty"`
	Value  any         `json:"value,omitempty"`
	Values []any       `json:"values,omitempty"`
	Kids   []*WirePred `json:"kids,omitempty"`
}

// Budget carries the per-query resource hints admission control and the
// executor enforce.
type Budget struct {
	// TimeoutMS bounds the whole request: admission wait plus
	// execution. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MemoryBytes declares the query's working-set budget; admission
	// counts it against the global memory budget. 0 means the server's
	// per-query default.
	MemoryBytes int64 `json:"memory_bytes,omitempty"`
	// MaxWorkers caps the query's pool-worker share (0 = server
	// default).
	MaxWorkers int `json:"max_workers,omitempty"`
}

// WireJoin declares a two-table equi-join: the request's table is the
// probe side, Table here the build side. Kind is "inner" (default),
// "semi" (EXISTS), or "anti" (NOT EXISTS); Predicate filters the build
// side before the join. Inner joins make the build table's columns
// referencable in columns/order_by.
type WireJoin struct {
	Table     string    `json:"table"`
	LeftCol   string    `json:"left_col"`
	RightCol  string    `json:"right_col"`
	Kind      string    `json:"kind,omitempty"`
	Predicate *WirePred `json:"predicate,omitempty"`
}

// WireOrder is one output ordering key for the "rows" terminal.
type WireOrder struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Table     string    `json:"table"`
	Predicate *WirePred `json:"predicate,omitempty"`
	// Terminal is one of "count", "rowids", "sum", "group_count",
	// "rows".
	Terminal string `json:"terminal"`
	// Column names the measured column for sum/group_count.
	Column string `json:"column,omitempty"`
	// Join, OrderBy, Limit, and Columns shape relational requests:
	// join composes with "count" and "rows"; order_by/limit and columns
	// belong to "rows". Relational results bypass the result cache.
	Join    *WireJoin   `json:"join,omitempty"`
	OrderBy []WireOrder `json:"order_by,omitempty"`
	Limit   int         `json:"limit,omitempty"`
	Columns []string    `json:"columns,omitempty"`
	Budget  Budget      `json:"budget,omitempty"`
	NoCache bool        `json:"no_cache,omitempty"`
	// Client identifies the caller for admission fairness; requests
	// sharing a Client share one FIFO queue. Empty means "default".
	Client string `json:"client,omitempty"`
}

// relational reports whether the request needs the relational executor
// (joins, ordering, limits, or row output) rather than a scan-wave
// terminal.
func (r *QueryRequest) relational() bool {
	return r.Join != nil || len(r.OrderBy) > 0 || r.Limit != 0 || r.Terminal == "rows"
}

// WireError is the structured failure payload.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// QueryResponse is the /v1/query result envelope. Exactly the field
// matching the terminal is populated.
type QueryResponse struct {
	QueryID  uint64           `json:"query_id,omitempty"`
	Table    string           `json:"table,omitempty"`
	Epoch    uint64           `json:"epoch,omitempty"`
	Terminal string           `json:"terminal,omitempty"`
	Count    int64            `json:"count"`
	RowIDs   []int64          `json:"rowids,omitempty"`
	Sum      float64          `json:"sum,omitempty"`
	Groups   map[string]int64 `json:"groups,omitempty"`
	Columns  []string         `json:"columns,omitempty"`
	Rows     [][]any          `json:"rows,omitempty"`
	Cached   bool             `json:"cached,omitempty"`
	WallMS   float64          `json:"wall_ms,omitempty"`
	Error    *WireError       `json:"error,omitempty"`
}

// wireOps maps wire operator names onto engine operators.
var wireOps = map[string]codecdb.CmpOp{
	"eq": codecdb.Eq, "ne": codecdb.Ne,
	"lt": codecdb.Lt, "le": codecdb.Le,
	"gt": codecdb.Gt, "ge": codecdb.Ge,
}

// wireTerminals maps wire terminal names onto engine terminals.
var wireTerminals = map[string]codecdb.Terminal{
	"count":       codecdb.TerminalCount,
	"rowids":      codecdb.TerminalRowIDs,
	"sum":         codecdb.TerminalSum,
	"group_count": codecdb.TerminalGroupCount,
}

// DecodeRequest parses a /v1/query body. Numbers keep full int64
// precision (UseNumber); unknown fields are rejected so typos fail
// loudly instead of silently meaning something else.
func DecodeRequest(body []byte) (*QueryRequest, error) {
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	return &req, nil
}

// coerceWireValue normalises a predicate value for the engine:
// json.Number becomes int64 when integral, float64 otherwise. Native Go
// numerics pass through (requests built in-process rather than decoded
// from JSON carry those).
func coerceWireValue(v any) (any, error) {
	switch x := v.(type) {
	case json.Number:
		if iv, err := x.Int64(); err == nil {
			return iv, nil
		}
		fv, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("bad number %q", x.String())
		}
		return fv, nil
	case int:
		return int64(x), nil
	case int64, float64, string, bool, nil:
		return x, nil
	}
	return nil, fmt.Errorf("unsupported value type %T", v)
}

// ToPred lowers a wire predicate onto the engine's predicate algebra.
// nil means select-all. Structural problems (unknown kind/op, missing
// fields) surface here; schema problems surface when the pred binds to
// a table.
func (p *WirePred) ToPred() (codecdb.Pred, error) {
	if p == nil {
		return codecdb.Pred{}, nil
	}
	switch p.Kind {
	case "cmp":
		op, ok := wireOps[p.Op]
		if !ok {
			return codecdb.Pred{}, fmt.Errorf("unknown op %q", p.Op)
		}
		if p.Col == "" {
			return codecdb.Pred{}, fmt.Errorf("cmp needs col")
		}
		v, err := coerceWireValue(p.Value)
		if err != nil {
			return codecdb.Pred{}, err
		}
		return codecdb.Col(p.Col, op, v), nil
	case "in":
		if p.Col == "" || len(p.Values) == 0 {
			return codecdb.Pred{}, fmt.Errorf("in needs col and values")
		}
		vals := make([]any, len(p.Values))
		for i, raw := range p.Values {
			v, err := coerceWireValue(raw)
			if err != nil {
				return codecdb.Pred{}, err
			}
			vals[i] = v
		}
		return codecdb.In(p.Col, vals...), nil
	case "and", "or":
		if len(p.Kids) == 0 {
			return codecdb.Pred{}, fmt.Errorf("%s needs kids", p.Kind)
		}
		kids := make([]codecdb.Pred, len(p.Kids))
		for i, k := range p.Kids {
			kp, err := k.ToPred()
			if err != nil {
				return codecdb.Pred{}, err
			}
			kids[i] = kp
		}
		if p.Kind == "and" {
			return codecdb.AllOf(kids...), nil
		}
		return codecdb.AnyOf(kids...), nil
	case "not":
		if len(p.Kids) != 1 {
			return codecdb.Pred{}, fmt.Errorf("not needs exactly one kid")
		}
		kp, err := p.Kids[0].ToPred()
		if err != nil {
			return codecdb.Pred{}, err
		}
		return codecdb.Not(kp), nil
	}
	return codecdb.Pred{}, fmt.Errorf("unknown predicate kind %q", p.Kind)
}

// Canonical renders the predicate in a deterministic normal form:
// children of and/or are sorted by their own canonical form, so
// logically identical trees written in different orders share one
// result-cache key.
func (p *WirePred) Canonical() string {
	if p == nil {
		return "*"
	}
	switch p.Kind {
	case "cmp":
		return p.Col + " " + p.Op + " " + canonValue(p.Value)
	case "in":
		vals := make([]string, len(p.Values))
		for i, v := range p.Values {
			vals[i] = canonValue(v)
		}
		sort.Strings(vals)
		return p.Col + " in (" + strings.Join(vals, ",") + ")"
	case "and", "or":
		kids := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			kids[i] = k.Canonical()
		}
		sort.Strings(kids)
		return p.Kind + "(" + strings.Join(kids, ";") + ")"
	case "not":
		if len(p.Kids) == 1 {
			return "not(" + p.Kids[0].Canonical() + ")"
		}
	}
	return "?" + p.Kind
}

func canonValue(v any) string {
	switch x := v.(type) {
	case json.Number:
		return x.String()
	case string:
		return strconv.Quote(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// cacheKey is the result-cache identity of one request: table, data
// epoch, canonical predicate, terminal, column. Epoch in the key makes
// invalidation implicit — a bumped epoch never matches old entries, and
// the stale ones age out by LRU.
func cacheKey(table string, epoch uint64, pred *WirePred, terminal, column string) string {
	return table + "|" + strconv.FormatUint(epoch, 10) + "|" + pred.Canonical() + "|" + terminal + "|" + column
}
