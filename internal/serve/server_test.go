package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"codecdb"
	"codecdb/internal/vfs"
)

// newEventsDB opens a fresh DB holding an "events" table shaped like
// the root fixtures: ts ints, status dict strings, level dict ints,
// latency floats; small pages so scans touch many of them.
func newEventsDB(t testing.TB, n int, opts codecdb.Options) (*codecdb.DB, *codecdb.Table) {
	t.Helper()
	db, err := codecdb.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	statuses := []string{"OK", "OK", "OK", "ERROR", "RETRY", "TIMEOUT"}
	ts := make([]int64, n)
	status := make([][]byte, n)
	level := make([]int64, n)
	latency := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(1700000000 + i)
		status[i] = []byte(statuses[i%len(statuses)])
		level[i] = int64(i % 5)
		latency[i] = float64(i%97) / 9.7
	}
	tbl, err := db.LoadTable("events", []codecdb.Column{
		{Name: "ts", Ints: ts},
		{Name: "status", Strings: status},
		{Name: "level", Ints: level},
		{Name: "latency", Floats: latency},
	}, codecdb.LoadOptions{RowGroupRows: 1024, PageRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// post runs one /v1/query round trip through a real HTTP server.
func post(t *testing.T, url string, req any) (int, *QueryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out
}

func newTestServer(t *testing.T, db *codecdb.DB, cfg Config) (*Server, string) {
	t.Helper()
	s := New(db, cfg)
	t.Cleanup(s.Close)
	mux := http.NewServeMux()
	s.Register(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return s, hs.URL
}

// TestV1QueryTerminals: every terminal round-trips through HTTP and
// matches the direct query API.
func TestV1QueryTerminals(t *testing.T) {
	db, tbl := newEventsDB(t, 4000, codecdb.Options{})
	_, url := newTestServer(t, db, Config{})

	errPred := &WirePred{Kind: "cmp", Col: "status", Op: "eq", Value: "ERROR"}

	code, r := post(t, url, QueryRequest{Table: "events", Terminal: "count", Predicate: errPred})
	wantN, _ := tbl.Where("status", codecdb.Eq, "ERROR").Count()
	if code != 200 || r.Count != wantN {
		t.Fatalf("count: %d %+v want %d", code, r, wantN)
	}
	if r.Terminal != "count" || r.Table != "events" || r.QueryID == 0 {
		t.Fatalf("envelope: %+v", r)
	}

	code, r = post(t, url, QueryRequest{
		Table: "events", Terminal: "rowids",
		Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "ge", Value: 3},
	})
	wantIDs, _ := tbl.Where("level", codecdb.Ge, 3).RowIDs()
	if code != 200 || !reflect.DeepEqual(r.RowIDs, wantIDs) {
		t.Fatalf("rowids differ (%d ids vs %d)", len(r.RowIDs), len(wantIDs))
	}

	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "sum", Column: "latency", Predicate: errPred})
	wantSum, _ := tbl.Where("status", codecdb.Eq, "ERROR").SumFloat("latency")
	if code != 200 || r.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", r.Sum, wantSum)
	}

	code, r = post(t, url, QueryRequest{
		Table: "events", Terminal: "group_count", Column: "status",
		Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "lt", Value: 4},
	})
	wantG, _ := tbl.Where("level", codecdb.Lt, 4).GroupCount("status")
	if code != 200 || !reflect.DeepEqual(r.Groups, wantG) {
		t.Fatalf("groups = %v, want %v", r.Groups, wantG)
	}

	// Composite predicate: and/or/in/not all at once.
	code, r = post(t, url, QueryRequest{
		Table: "events", Terminal: "count",
		Predicate: &WirePred{Kind: "and", Kids: []*WirePred{
			{Kind: "or", Kids: []*WirePred{
				{Kind: "in", Col: "status", Values: []any{"ERROR", "RETRY"}},
				{Kind: "cmp", Col: "level", Op: "ge", Value: 4},
			}},
			{Kind: "not", Kids: []*WirePred{{Kind: "cmp", Col: "ts", Op: "lt", Value: 1700000100}}},
		}},
	})
	wantC, _ := tbl.All().
		AndPred(codecdb.AnyOf(codecdb.In("status", "ERROR", "RETRY"), codecdb.Col("level", codecdb.Ge, 4))).
		AndPred(codecdb.Not(codecdb.Col("ts", codecdb.Lt, 1700000100))).
		Count()
	if code != 200 || r.Count != wantC {
		t.Fatalf("composite count = %d (%d), want %d", r.Count, code, wantC)
	}
}

// TestV1QueryErrorCodes: every structured error code round-trips with
// its HTTP status.
func TestV1QueryErrorCodes(t *testing.T) {
	db, _ := newEventsDB(t, 1000, codecdb.Options{})
	s, url := newTestServer(t, db, Config{
		Admit: AdmitConfig{MaxConcurrent: 1, MaxQueued: 4, MaxMemory: 1 << 30, MaxWait: 50 * time.Millisecond},
	})

	check := func(code int, wantStatus int, r *QueryResponse, wantCode string) {
		t.Helper()
		if code != wantStatus || r.Error == nil || r.Error.Code != wantCode {
			t.Fatalf("status %d resp %+v, want %d/%s", code, r.Error, wantStatus, wantCode)
		}
	}

	// bad_request: missing table, unknown terminal, missing column.
	code, r := post(t, url, QueryRequest{Terminal: "count"})
	check(code, 400, r, CodeBadRequest)
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "median"})
	check(code, 400, r, CodeBadRequest)
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "sum"})
	check(code, 400, r, CodeBadRequest)

	// bad_predicate: unknown kind, unknown op, unknown column.
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "count",
		Predicate: &WirePred{Kind: "xor", Kids: []*WirePred{{Kind: "cmp", Col: "level", Op: "eq", Value: 1}}}})
	check(code, 400, r, CodeBadPredicate)
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "count",
		Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "=~", Value: 1}})
	check(code, 400, r, CodeBadPredicate)
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "count",
		Predicate: &WirePred{Kind: "cmp", Col: "nope", Op: "eq", Value: 1}})
	check(code, 400, r, CodeBadPredicate)

	// bad_predicate: mistyped measure columns. sum on an int or string
	// column would reinterpret pages as float bits; group_count needs a
	// dictionary column. Both must fail before execution.
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "sum", Column: "level"})
	check(code, 400, r, CodeBadPredicate)
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "sum", Column: "status"})
	check(code, 400, r, CodeBadPredicate)
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "group_count", Column: "latency"})
	check(code, 400, r, CodeBadPredicate)

	// not_found.
	code, r = post(t, url, QueryRequest{Table: "ghosts", Terminal: "count"})
	check(code, 404, r, CodeNotFound)

	// shed: a memory budget no configuration can satisfy.
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "count",
		Budget: Budget{MemoryBytes: 2 << 40}})
	check(code, 503, r, CodeShed)

	// admission_timeout: the only slot is held, MaxWait is 50ms.
	hog, err := s.Admission().Acquire(context.Background(), "hog", 0)
	if err != nil {
		t.Fatal(err)
	}
	code, r = post(t, url, QueryRequest{Table: "events", Terminal: "count", NoCache: true})
	check(code, 503, r, CodeAdmissionTimeout)
	hog.Release()

	// Malformed JSON body.
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader([]byte(`{"table":`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	// Wrong method on the endpoint.
	resp, err = http.Get(url + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d", resp.StatusCode)
	}
}

// TestV1QueryCanceled: a timeout too small for the scan under injected
// IO latency surfaces as code "canceled". The predicate is chosen so
// zone maps cannot answer it — pages must actually be read, and every
// read costs more than the whole budget.
func TestV1QueryCanceled(t *testing.T) {
	db, _ := newEventsDB(t, 4000, codecdb.Options{
		FS: vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Latency: 10 * time.Millisecond}),
	})
	_, url := newTestServer(t, db, Config{})
	code, r := post(t, url, QueryRequest{Table: "events", Terminal: "count",
		NoCache: true, Budget: Budget{TimeoutMS: 5},
		Predicate: &WirePred{Kind: "cmp", Col: "latency", Op: "ge", Value: 4.5}})
	if code != http.StatusRequestTimeout || r.Error == nil || r.Error.Code != CodeCanceled {
		t.Fatalf("status %d resp %+v, want %d/%s", code, r.Error, http.StatusRequestTimeout, CodeCanceled)
	}
}

// TestV1QueryCorruption: flipping bytes in the stored file surfaces as
// code "corruption", not a panic or silent wrong answer.
func TestV1QueryCorruption(t *testing.T) {
	dir := t.TempDir()
	db, err := codecdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Pseudo-random values, so zone maps cannot answer a mid-range
	// predicate and every page must be read (and checksum-verified).
	n := 4000
	ints := make([]int64, n)
	wantGe := int64(0)
	for i := range ints {
		ints[i] = int64(i) * 2654435761 % 10007
		if ints[i] >= 5000 {
			wantGe++
		}
	}
	if _, err := db.LoadTable("events", []codecdb.Column{{Name: "v", Ints: ints}},
		codecdb.LoadOptions{RowGroupRows: 1024, PageRows: 256}); err != nil {
		t.Fatal(err)
	}
	_, url := newTestServer(t, db, Config{})

	scanReq := QueryRequest{Table: "events", Terminal: "count", NoCache: true,
		Predicate: &WirePred{Kind: "cmp", Col: "v", Op: "ge", Value: 5000}}

	// Healthy first.
	code, r := post(t, url, scanReq)
	if code != 200 || r.Count != wantGe {
		t.Fatalf("pre-corruption: %d %+v want %d", code, r, wantGe)
	}

	// Flip a swath of bytes in the middle of the data region.
	path := filepath.Join(dir, "events.cdb")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(raw) / 3
	for i := off; i < off+256 && i < len(raw)-1024; i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	code, r = post(t, url, scanReq)
	if code != 500 || r.Error == nil || r.Error.Code != CodeCorruption {
		t.Fatalf("post-corruption: status %d resp %+v, want 500/%s", code, r.Error, CodeCorruption)
	}
}

// TestResultCacheHitAndInvalidation: identical queries hit the cache;
// an ingest append bumps the epoch and the next query recomputes.
func TestResultCacheHitAndInvalidation(t *testing.T) {
	db, err := codecdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateIngestTable("logs", []codecdb.Field{{Name: "level", Type: codecdb.Int64Field}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tbl.Append(int64(i % 5)); err != nil {
			t.Fatal(err)
		}
	}
	_, url := newTestServer(t, db, Config{ResultCacheBytes: 1 << 20})

	req := QueryRequest{Table: "logs", Terminal: "count",
		Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "ge", Value: 3}}
	code, r1 := post(t, url, req)
	if code != 200 || r1.Count != 20 || r1.Cached {
		t.Fatalf("cold: %d %+v", code, r1)
	}
	_, r2 := post(t, url, req)
	if !r2.Cached || r2.Count != 20 {
		t.Fatalf("warm not cached: %+v", r2)
	}
	// A logically identical predicate written differently shares the key.
	_, r3 := post(t, url, QueryRequest{Table: "logs", Terminal: "count",
		Predicate: &WirePred{Kind: "and", Kids: []*WirePred{
			{Kind: "cmp", Col: "level", Op: "ge", Value: 3},
		}}})
	_ = r3 // and() of one kid canonicalises differently from the bare leaf; only assert correctness
	if r3.Count != 20 {
		t.Fatalf("rewritten predicate: %+v", r3)
	}

	// Ingest bumps the epoch: the cached answer must not survive.
	if err := tbl.Append(int64(4)); err != nil {
		t.Fatal(err)
	}
	_, r4 := post(t, url, req)
	if r4.Cached || r4.Count != 21 {
		t.Fatalf("post-ingest: %+v (want fresh count 21)", r4)
	}
	if r4.Epoch <= r1.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", r1.Epoch, r4.Epoch)
	}
}

// TestCanonicalPredicateSharing: and/or child order does not split the
// cache key.
func TestCanonicalPredicateSharing(t *testing.T) {
	a := &WirePred{Kind: "and", Kids: []*WirePred{
		{Kind: "cmp", Col: "x", Op: "eq", Value: 1},
		{Kind: "in", Col: "s", Values: []any{"b", "a"}},
	}}
	b := &WirePred{Kind: "and", Kids: []*WirePred{
		{Kind: "in", Col: "s", Values: []any{"a", "b"}},
		{Kind: "cmp", Col: "x", Op: "eq", Value: 1},
	}}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical split: %q vs %q", a.Canonical(), b.Canonical())
	}
	if cacheKey("t", 1, a, "count", "") != cacheKey("t", 1, b, "count", "") {
		t.Fatal("cache keys differ")
	}
	if cacheKey("t", 1, a, "count", "") == cacheKey("t", 2, a, "count", "") {
		t.Fatal("epoch not in key")
	}
}

// TestResultCacheEviction: the byte budget holds.
func TestResultCacheEviction(t *testing.T) {
	c := NewResultCache(4096)
	for i := 0; i < 100; i++ {
		ids := make([]int64, 16)
		c.Put(fmt.Sprintf("k%d", i), &QueryResponse{RowIDs: ids})
	}
	st := c.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("over budget: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("nothing evicted: %+v", st)
	}
	// Oversize entries are refused, not cached.
	c.Put("big", &QueryResponse{RowIDs: make([]int64, 10000)})
	if c.Get("big") != nil {
		t.Fatal("oversize entry cached")
	}
}

// newJoinDB extends the events fixture with a "services" dimension
// keyed by status, for exercising the wire join spec.
func newJoinDB(t *testing.T, n int) (*codecdb.DB, *codecdb.Table, *codecdb.Table) {
	db, tbl := newEventsDB(t, n, codecdb.Options{})
	classes := map[string]string{"OK": "good", "ERROR": "bad", "RETRY": "bad", "TIMEOUT": "slow"}
	var names, cls [][]byte
	for _, s := range []string{"OK", "ERROR", "RETRY", "TIMEOUT"} {
		names = append(names, []byte(s))
		cls = append(cls, []byte(classes[s]))
	}
	svc, err := db.LoadTable("services", []codecdb.Column{
		{Name: "s_status", Strings: names},
		{Name: "s_class", Strings: cls},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl, svc
}

// TestV1QueryRowsOrderByLimit: the "rows" terminal with order_by/limit
// round-trips and matches the direct query API.
func TestV1QueryRowsOrderByLimit(t *testing.T) {
	db, tbl, _ := newJoinDB(t, 4000)
	_, url := newTestServer(t, db, Config{})

	code, r := post(t, url, QueryRequest{
		Table: "events", Terminal: "rows",
		Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "ge", Value: 3},
		Columns:   []string{"latency", "status"},
		OrderBy:   []WireOrder{{Col: "latency", Desc: true}},
		Limit:     7,
	})
	if code != 200 || r.Error != nil {
		t.Fatalf("rows: %d %+v", code, r.Error)
	}
	want, err := tbl.Where("level", codecdb.Ge, 3).
		OrderBy("latency", true).Limit(7).
		Rows("latency", "status")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Columns, want.Cols) || len(r.Rows) != len(want.Data) {
		t.Fatalf("shape: %v/%d vs %v/%d", r.Columns, len(r.Rows), want.Cols, len(want.Data))
	}
	for i, row := range want.Data {
		// JSON round-trips numbers as float64.
		if got := r.Rows[i][0].(float64); got != row[0].(float64) {
			t.Fatalf("row %d latency = %v, want %v", i, got, row[0])
		}
		if got := r.Rows[i][1].(string); got != row[1].(string) {
			t.Fatalf("row %d status = %q, want %q", i, got, row[1])
		}
	}
	if r.Count != int64(len(want.Data)) {
		t.Fatalf("count = %d, want %d", r.Count, len(want.Data))
	}
}

// TestV1QueryJoin: inner/semi/anti joins round-trip and match the direct
// API, including build-side payload columns in rows output.
func TestV1QueryJoin(t *testing.T) {
	db, tbl, svc := newJoinDB(t, 4000)
	_, url := newTestServer(t, db, Config{ResultCacheBytes: 1 << 20})

	badSvc := &WirePred{Kind: "cmp", Col: "s_class", Op: "eq", Value: "bad"}
	join := &WireJoin{Table: "services", LeftCol: "status", RightCol: "s_status", Predicate: badSvc}

	code, r := post(t, url, QueryRequest{Table: "events", Terminal: "count", Join: join})
	wantN, err := tbl.All().
		JoinOn(svc.Where("s_class", codecdb.Eq, "bad"), "status", "s_status").
		Count()
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || r.Count != wantN {
		t.Fatalf("join count = %d (%d), want %d", r.Count, code, wantN)
	}
	if wantN == 0 {
		t.Fatal("vacuous join")
	}
	// Relational results bypass the result cache even when it is enabled.
	_, r2 := post(t, url, QueryRequest{Table: "events", Terminal: "count", Join: join})
	if r2.Cached {
		t.Fatal("relational result served from cache")
	}

	// Semi and anti partition the probe rows.
	semiJoin := &WireJoin{Table: "services", LeftCol: "status", RightCol: "s_status", Kind: "semi", Predicate: badSvc}
	antiJoin := &WireJoin{Table: "services", LeftCol: "status", RightCol: "s_status", Kind: "anti", Predicate: badSvc}
	_, rs := post(t, url, QueryRequest{Table: "events", Terminal: "count", Join: semiJoin})
	_, ra := post(t, url, QueryRequest{Table: "events", Terminal: "count", Join: antiJoin})
	if rs.Count != wantN {
		t.Fatalf("semi count = %d, want %d", rs.Count, wantN)
	}
	if rs.Count+ra.Count != int64(tbl.NumRows()) {
		t.Fatalf("semi %d + anti %d != %d rows", rs.Count, ra.Count, tbl.NumRows())
	}

	// Rows with a build-side payload column.
	code, rr := post(t, url, QueryRequest{
		Table: "events", Terminal: "rows",
		Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "eq", Value: 4},
		Join:      join,
		Columns:   []string{"status", "s_class", "latency"},
		OrderBy:   []WireOrder{{Col: "latency", Desc: false}},
		Limit:     5,
	})
	if code != 200 || rr.Error != nil {
		t.Fatalf("join rows: %d %+v", code, rr.Error)
	}
	wantRows, err := tbl.Where("level", codecdb.Eq, 4).
		JoinOn(svc.Where("s_class", codecdb.Eq, "bad"), "status", "s_status").
		OrderBy("latency", false).Limit(5).
		Rows("status", "s_class", "latency")
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Rows) != len(wantRows.Data) {
		t.Fatalf("join rows = %d, want %d", len(rr.Rows), len(wantRows.Data))
	}
	for i, row := range wantRows.Data {
		if rr.Rows[i][0].(string) != row[0].(string) || rr.Rows[i][1].(string) != row[1].(string) {
			t.Fatalf("row %d = %v, want %v", i, rr.Rows[i], row)
		}
	}
}

// TestV1QueryRelationalValidation: every malformed relational shape
// fails with a structured code before execution.
func TestV1QueryRelationalValidation(t *testing.T) {
	db, _, _ := newJoinDB(t, 500)
	_, url := newTestServer(t, db, Config{})

	check := func(req QueryRequest, wantStatus int, wantCode string) {
		t.Helper()
		code, r := post(t, url, req)
		if code != wantStatus || r.Error == nil || r.Error.Code != wantCode {
			t.Fatalf("req %+v: status %d resp %+v, want %d/%s", req, code, r.Error, wantStatus, wantCode)
		}
	}
	join := &WireJoin{Table: "services", LeftCol: "status", RightCol: "s_status"}

	// bad_request: shape problems.
	check(QueryRequest{Table: "events", Terminal: "rows"}, 400, CodeBadRequest)
	check(QueryRequest{Table: "events", Terminal: "count", Columns: []string{"ts"}}, 400, CodeBadRequest)
	check(QueryRequest{Table: "events", Terminal: "count", OrderBy: []WireOrder{{Col: "ts"}}}, 400, CodeBadRequest)
	check(QueryRequest{Table: "events", Terminal: "sum", Column: "latency", Join: join}, 400, CodeBadRequest)
	check(QueryRequest{Table: "events", Terminal: "rows", Columns: []string{"ts"}, Limit: -3}, 400, CodeBadRequest)
	check(QueryRequest{Table: "events", Terminal: "count",
		Join: &WireJoin{Table: "services", LeftCol: "status"}}, 400, CodeBadRequest)
	check(QueryRequest{Table: "events", Terminal: "count",
		Join: &WireJoin{Table: "services", LeftCol: "status", RightCol: "s_status", Kind: "cross"}}, 400, CodeBadRequest)
	check(QueryRequest{Table: "events", Terminal: "rows", Columns: []string{"ts"},
		OrderBy: []WireOrder{{}}}, 400, CodeBadRequest)

	// bad_predicate: schema problems.
	check(QueryRequest{Table: "events", Terminal: "rows", Columns: []string{"nope"}}, 400, CodeBadPredicate)
	check(QueryRequest{Table: "events", Terminal: "rows", Columns: []string{"ts"},
		OrderBy: []WireOrder{{Col: "latency"}}}, 400, CodeBadPredicate)
	check(QueryRequest{Table: "events", Terminal: "count",
		Join: &WireJoin{Table: "services", LeftCol: "nope", RightCol: "s_status"}}, 400, CodeBadPredicate)
	check(QueryRequest{Table: "events", Terminal: "count",
		Join: &WireJoin{Table: "services", LeftCol: "status", RightCol: "nope"}}, 400, CodeBadPredicate)
	check(QueryRequest{Table: "events", Terminal: "count",
		Join: &WireJoin{Table: "services", LeftCol: "status", RightCol: "s_status",
			Predicate: &WirePred{Kind: "cmp", Col: "nope", Op: "eq", Value: 1}}}, 400, CodeBadPredicate)
	// Semi join hides the build table's columns.
	check(QueryRequest{Table: "events", Terminal: "rows", Columns: []string{"s_class"},
		Join: &WireJoin{Table: "services", LeftCol: "status", RightCol: "s_status", Kind: "semi"}}, 400, CodeBadPredicate)

	// not_found: unknown join table.
	check(QueryRequest{Table: "events", Terminal: "count",
		Join: &WireJoin{Table: "ghosts", LeftCol: "status", RightCol: "s_status"}}, 404, CodeNotFound)
}
