package serve

import "codecdb/internal/obs"

// Serving-layer metrics, registered once in the process-wide registry
// next to the engine's own counters, so one /metrics scrape covers
// admission behaviour, cache efficacy, and wave batching.
var (
	requestsTotal = obs.Default().Counter(
		"codecdb_serve_requests_total", "v1 query requests received.")
	errorsTotal = obs.Default().Counter(
		"codecdb_serve_errors_total", "v1 query requests that returned an error code.")
	shedTotal = obs.Default().Counter(
		"codecdb_serve_shed_total", "Queries rejected by admission control (queue full or unsatisfiable budget).")
	admissionTimeouts = obs.Default().Counter(
		"codecdb_serve_admission_timeouts_total", "Queries that timed out waiting in the admission queue.")
	admissionWait = obs.Default().Histogram(
		"codecdb_serve_admission_wait_seconds", "Time spent waiting for admission.", obs.DefBuckets)
	resultCacheHits = obs.Default().Counter(
		"codecdb_serve_result_cache_hits_total", "Responses served from the result cache.")
	resultCacheMisses = obs.Default().Counter(
		"codecdb_serve_result_cache_misses_total", "Result-cache lookups that missed.")
	wavesTotal = obs.Default().Counter(
		"codecdb_serve_waves_total", "Cooperative scan waves executed.")
	waveMembers = obs.Default().Counter(
		"codecdb_serve_wave_members_total", "Queries answered through waves (members summed over waves).")
)
