package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"codecdb"
	"codecdb/internal/vfs"
)

func ctxBG() context.Context { return context.Background() }

// TestSharedScanMatchesSerial: N concurrent clients with mixed
// terminals get exactly the answers the serial API gives, and — with
// the page cache on, the serving configuration — total page IO is
// bounded by the number of distinct pages, not the number of clients.
// Injected IO latency holds the first wave open long enough that the
// remaining clients provably batch.
func TestSharedScanMatchesSerial(t *testing.T) {
	const rows, pageRows = 4000, 256
	db, tbl := newEventsDB(t, rows, codecdb.Options{
		FS:             vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Latency: 2 * time.Millisecond}),
		PageCacheBytes: 32 << 20,
	})
	// Plenty of admission slots: this test isolates the batcher, so the
	// controller must not be the thing serialising arrivals.
	s, _ := newTestServer(t, db, Config{
		Admit: AdmitConfig{MaxConcurrent: 64, MaxQueued: 64, MaxWait: 10 * time.Second},
	})

	// Expected answers come from a second DB over identical data, so the
	// serving DB's page cache stays cold until the burst.
	_, ref := newEventsDB(t, rows, codecdb.Options{})
	wantErr, _ := ref.Where("status", codecdb.Eq, "ERROR").Count()
	wantHi, _ := ref.Where("level", codecdb.Ge, 3).Count()
	wantSum, _ := ref.Where("status", codecdb.Eq, "RETRY").SumFloat("latency")

	reqs := []QueryRequest{
		{Table: "events", Terminal: "count", NoCache: true,
			Predicate: &WirePred{Kind: "cmp", Col: "status", Op: "eq", Value: "ERROR"}},
		{Table: "events", Terminal: "count", NoCache: true,
			Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "ge", Value: 3}},
		{Table: "events", Terminal: "sum", Column: "latency", NoCache: true,
			Predicate: &WirePred{Kind: "cmp", Col: "status", Op: "eq", Value: "RETRY"}},
	}

	runBurst := func() {
		const perReq = 8 // 24 concurrent clients total
		var wg sync.WaitGroup
		var mu sync.Mutex
		var fails []string
		start := make(chan struct{})
		for i := 0; i < perReq; i++ {
			for j := range reqs {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					<-start
					req := reqs[j]
					resp, werr := s.Query(ctxBG(), &req)
					var bad string
					switch {
					case werr != nil:
						bad = "error: " + werr.Message
					case j == 0 && resp.Count != wantErr:
						bad = "ERROR count mismatch"
					case j == 1 && resp.Count != wantHi:
						bad = "level count mismatch"
					case j == 2 && resp.Sum != wantSum:
						bad = "sum mismatch"
					}
					if bad != "" {
						mu.Lock()
						fails = append(fails, bad)
						mu.Unlock()
					}
				}(j)
			}
		}
		close(start)
		wg.Wait()
		for _, f := range fails {
			t.Error(f)
		}
	}

	// Cold burst: 24 clients over 3 distinct scans. Unshared that is
	// 24 full column scans (~24 × rows/pageRows pages). Shared, page IO
	// is bounded by the distinct pages the waves touch: 3 columns ×
	// rows/pageRows pages, with slack for concurrent same-page misses.
	tbl.ResetIOStats()
	runBurst()
	pagesPerCol := int64(rows / pageRows)
	distinct := 3 * pagesPerCol
	burstPages := tbl.IOStats().PagesRead
	if burstPages == 0 {
		t.Fatal("burst read no pages")
	}
	if burstPages > 3*distinct {
		t.Fatalf("24 concurrent clients read %d pages (distinct pages = %d): shared scan not batching",
			burstPages, distinct)
	}

	// Warm burst: every page is cached; no page is read or decompressed
	// again regardless of client count.
	st1 := tbl.IOStats()
	runBurst()
	st2 := tbl.IOStats()
	if st2.PagesRead != st1.PagesRead || st2.BytesDecompressed != st1.BytesDecompressed {
		t.Fatalf("warm burst did IO: %+v -> %+v", st1, st2)
	}
	if st2.PageCacheHits == st1.PageCacheHits {
		t.Fatal("warm burst recorded no page-cache hits")
	}
}

// TestWaveBatcherGroupCommit drives the batcher directly: a member
// attaching while a wave is in flight rides the next wave, and both
// get correct answers.
func TestWaveBatcherGroupCommit(t *testing.T) {
	db, tbl := newEventsDB(t, 2000, codecdb.Options{
		FS: vfs.NewFaultFS(vfs.OS(), vfs.FaultConfig{Latency: 2 * time.Millisecond}),
	})
	b := newWaveBatcher()
	want, _ := tbl.All().Count()

	const k = 6
	var wg sync.WaitGroup
	results := make([]codecdb.WaveResult, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = b.run(ctxBG(), tbl,
				codecdb.WaveQuery{Terminal: codecdb.TerminalCount},
				time.Time{}, codecdb.ExecOptions{})
		}(i)
		// Stagger so later members attach mid-wave.
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil || results[i].Err != nil {
			t.Fatalf("member %d: %v / %v", i, errs[i], results[i].Err)
		}
		if results[i].Count != want {
			t.Fatalf("member %d: count %d, want %d", i, results[i].Count, want)
		}
	}
	_ = db
}
