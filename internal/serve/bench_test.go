package serve

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"codecdb"
)

// BenchmarkServeConcurrency drives the full serving path — validation,
// admission, wave batching, page cache — with K concurrent clients
// looping over three query shapes against one table, and reports tail
// latency (p50/p99 ms), the shed rate, and page reads per request.
// Result caching is disabled per request so every request exercises
// execution; the decompressed-page cache is on (the serving
// configuration), so waves after the first mostly decode from memory
// and the benchmark measures serving overhead plus sharing, not disk.
func BenchmarkServeConcurrency(b *testing.B) {
	for _, k := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			db, tbl := newEventsDB(b, 20000, codecdb.Options{PageCacheBytes: 64 << 20})
			s := New(db, Config{
				Admit: AdmitConfig{
					MaxConcurrent: 8,
					MaxQueued:     2 * k,
					MaxWait:       500 * time.Millisecond,
				},
			})
			defer s.Close()

			reqs := []QueryRequest{
				{Table: "events", Terminal: "count", NoCache: true,
					Predicate: &WirePred{Kind: "cmp", Col: "status", Op: "eq", Value: "ERROR"}},
				{Table: "events", Terminal: "sum", Column: "latency", NoCache: true,
					Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "ge", Value: 3}},
				{Table: "events", Terminal: "group_count", Column: "status", NoCache: true,
					Predicate: &WirePred{Kind: "cmp", Col: "level", Op: "lt", Value: 4}},
			}

			var mu sync.Mutex
			var lat []time.Duration
			var shed, total int64
			tbl.ResetIOStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < k; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						req := reqs[c%len(reqs)]
						req.Client = fmt.Sprintf("client-%d", c%4)
						start := time.Now()
						_, werr := s.Query(ctxBG(), &req)
						d := time.Since(start)
						mu.Lock()
						total++
						if werr != nil {
							if werr.Code == CodeShed || werr.Code == CodeAdmissionTimeout {
								shed++
							} else {
								b.Errorf("query: %+v", werr)
							}
						} else {
							lat = append(lat, d)
						}
						mu.Unlock()
					}(c)
				}
				wg.Wait()
			}
			b.StopTimer()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			pct := func(p float64) float64 {
				if len(lat) == 0 {
					return 0
				}
				i := int(p * float64(len(lat)-1))
				return float64(lat[i].Microseconds()) / 1000
			}
			b.ReportMetric(pct(0.50), "p50-ms")
			b.ReportMetric(pct(0.99), "p99-ms")
			b.ReportMetric(float64(shed)/float64(total), "shedRate")
			b.ReportMetric(float64(tbl.IOStats().PagesRead)/float64(total), "pagesRead/req")
		})
	}
}
