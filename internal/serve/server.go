package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"codecdb"
	"codecdb/internal/obs"
)

// Config tunes a Server. Zero values take the noted defaults.
type Config struct {
	// Admit bounds admission control (see AdmitConfig for defaults).
	Admit AdmitConfig
	// ResultCacheBytes budgets the result cache; 0 disables it.
	ResultCacheBytes int64
	// DefaultTimeout bounds requests that declare no timeout_ms
	// (default 30s; negative means unbounded).
	DefaultTimeout time.Duration
	// MaxWorkersPerQuery caps each wave's pool-worker share (0 = the
	// engine default). Per-request budget.max_workers can only lower it.
	MaxWorkersPerQuery int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server answers POST /v1/query against one codecdb.DB: requests pass
// validation, the result cache, admission control, and then execute as
// members of per-table cooperative scan waves. Build with New, mount
// with Register, stop background waves with Close.
type Server struct {
	db     *codecdb.DB
	cfg    Config
	admit  *Controller
	cache  *ResultCache
	waves  *waveBatcher
	base   context.Context
	cancel context.CancelFunc
}

// New builds a Server over db.
func New(db *codecdb.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		db:     db,
		cfg:    cfg,
		admit:  NewController(cfg.Admit),
		cache:  NewResultCache(cfg.ResultCacheBytes),
		waves:  newWaveBatcher(),
		base:   base,
		cancel: cancel,
	}
}

// Close cancels in-flight waves. The Server must not be used after.
func (s *Server) Close() { s.cancel() }

// Admission exposes the controller (occupancy snapshots, tests).
func (s *Server) Admission() *Controller { return s.admit }

// ResultCache exposes the result cache (nil when disabled).
func (s *Server) ResultCache() *ResultCache { return s.cache }

// Register mounts the v1 API on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/query", s.HandleV1Query)
}

// HandleV1Query serves one POST /v1/query request.
func (s *Server) HandleV1Query(w http.ResponseWriter, r *http.Request) {
	requestsTotal.Inc()
	start := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "read body: "+err.Error())
		return
	}
	req, err := DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	resp, werr := s.Query(r.Context(), req)
	if werr != nil {
		writeError(w, httpStatus(werr.Code), werr.Code, werr.Message)
		return
	}
	resp.WallMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// Query runs one decoded request through the full serving path:
// validation, result cache, admission, wave execution, cache fill.
// It returns exactly one of response or error.
func (s *Server) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, *WireError) {
	if req.Table == "" {
		return nil, wireErr(CodeBadRequest, "missing table")
	}
	if req.relational() {
		return s.relQuery(ctx, req)
	}
	term, ok := wireTerminals[req.Terminal]
	if !ok {
		return nil, wireErr(CodeBadRequest, "unknown terminal %q", req.Terminal)
	}
	needsCol := term == codecdb.TerminalSum || term == codecdb.TerminalGroupCount
	if needsCol && req.Column == "" {
		return nil, wireErr(CodeBadRequest, "terminal %q needs column", req.Terminal)
	}
	if len(req.Columns) > 0 {
		return nil, wireErr(CodeBadRequest, "columns needs terminal \"rows\"")
	}
	pred, err := req.Predicate.ToPred()
	if err != nil {
		return nil, wireErr(CodeBadPredicate, "%v", err)
	}
	tbl, err := s.db.Table(req.Table)
	if err != nil {
		return nil, wireErr(CodeNotFound, "table %q: %v", req.Table, err)
	}
	// Schema-check referenced columns up front so a typo'd column is
	// bad_predicate, not a mid-wave execution error.
	have := make(map[string]bool)
	for _, c := range tbl.Columns() {
		have[c] = true
	}
	for _, c := range predColumns(req.Predicate, nil) {
		if !have[c] {
			return nil, wireErr(CodeBadPredicate, "unknown column %q", c)
		}
	}
	if needsCol && !have[req.Column] {
		return nil, wireErr(CodeBadPredicate, "unknown column %q", req.Column)
	}
	// Type-check the measured column the same way: sum reinterprets the
	// column's pages as float bits and group_count needs a dictionary, so
	// a mistyped column is a client error, not an execution failure.
	if term == codecdb.TerminalSum {
		if typ, ok := tbl.ColumnType(req.Column); ok && typ != "FLOAT64" {
			return nil, wireErr(CodeBadPredicate, "terminal \"sum\" needs a FLOAT64 column, %q is %s", req.Column, typ)
		}
	}
	if term == codecdb.TerminalGroupCount {
		if typ, ok := tbl.ColumnType(req.Column); ok && typ != "STRING" {
			return nil, wireErr(CodeBadPredicate, "terminal \"group_count\" needs a dictionary (string) column, %q is %s", req.Column, typ)
		}
	}

	epoch := tbl.Epoch()
	key := cacheKey(req.Table, epoch, req.Predicate, req.Terminal, req.Column)
	if !req.NoCache {
		if hit := s.cache.Get(key); hit != nil {
			out := *hit
			out.Cached = true
			return &out, nil
		}
	}

	// The request deadline covers admission wait plus execution.
	timeout := s.cfg.DefaultTimeout
	if req.Budget.TimeoutMS > 0 {
		timeout = time.Duration(req.Budget.TimeoutMS) * time.Millisecond
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	waitStart := time.Now()
	grant, err := s.admit.Acquire(ctx, req.Client, req.Budget.MemoryBytes)
	admissionWait.Observe(time.Since(waitStart).Seconds())
	if err != nil {
		errorsTotal.Inc()
		return nil, wireErr(admissionCode(err), "%v", err)
	}
	defer grant.Release()

	var lq *obs.LiveQuery
	fr := obs.DefaultRecorder()
	if fr.Enabled() {
		lq = fr.Begin(obs.KindQuery, req.Table, "v1/"+req.Terminal, req.Predicate.Canonical())
	}

	workers := s.cfg.MaxWorkersPerQuery
	if req.Budget.MaxWorkers > 0 && (workers == 0 || req.Budget.MaxWorkers < workers) {
		workers = req.Budget.MaxWorkers
	}
	wq := codecdb.WaveQuery{Pred: pred, Terminal: term, Col: req.Column}
	res, werr := s.waves.run(s.base, tbl, wq, deadline, codecdb.ExecOptions{MaxWorkers: workers})
	if werr == nil {
		werr = res.Err
	}
	if lq != nil {
		rec := &obs.QueryRecord{Wall: time.Since(lq.Start), RowsOut: res.Count}
		if werr != nil {
			rec.Err = werr.Error()
			rec.Cancelled = errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded)
		}
		fr.Finish(lq, rec)
	}
	if werr != nil {
		errorsTotal.Inc()
		return nil, wireErr(classifyExecErr(werr), "%v", werr)
	}

	resp := &QueryResponse{
		Table:    req.Table,
		Epoch:    epoch,
		Terminal: req.Terminal,
		Count:    res.Count,
		RowIDs:   res.RowIDs,
		Sum:      res.Sum,
		Groups:   res.Groups,
	}
	if lq != nil {
		resp.QueryID = lq.ID
	}
	if !req.NoCache {
		s.cache.Put(key, resp)
	}
	return resp, nil
}

// relQuery serves the relational request shapes: two-table joins,
// order_by/limit, and the "rows" terminal. These execute through the
// engine's relational planner instead of a shared scan wave, and their
// results bypass the result cache — the cache key does not encode the
// relational shape, and row sets are poor cache citizens anyway.
func (s *Server) relQuery(ctx context.Context, req *QueryRequest) (*QueryResponse, *WireError) {
	// Shape checks first (bad_request), schema checks after
	// (bad_predicate) — the same split the scalar terminals use.
	switch req.Terminal {
	case "rows":
		if len(req.Columns) == 0 {
			return nil, wireErr(CodeBadRequest, "terminal \"rows\" needs columns")
		}
	case "count":
		if len(req.OrderBy) > 0 || req.Limit != 0 || len(req.Columns) > 0 {
			return nil, wireErr(CodeBadRequest, "order_by, limit, and columns need terminal \"rows\"")
		}
	default:
		return nil, wireErr(CodeBadRequest, "terminal %q does not compose with join/order_by/limit", req.Terminal)
	}
	if req.Limit < 0 {
		return nil, wireErr(CodeBadRequest, "limit must be positive, got %d", req.Limit)
	}
	if j := req.Join; j != nil {
		if j.Table == "" || j.LeftCol == "" || j.RightCol == "" {
			return nil, wireErr(CodeBadRequest, "join needs table, left_col, and right_col")
		}
		switch j.Kind {
		case "", "inner", "semi", "anti":
		default:
			return nil, wireErr(CodeBadRequest, "unknown join kind %q (want inner, semi, or anti)", j.Kind)
		}
	}
	for _, o := range req.OrderBy {
		if o.Col == "" {
			return nil, wireErr(CodeBadRequest, "order_by needs col")
		}
	}

	pred, err := req.Predicate.ToPred()
	if err != nil {
		return nil, wireErr(CodeBadPredicate, "%v", err)
	}
	tbl, err := s.db.Table(req.Table)
	if err != nil {
		return nil, wireErr(CodeNotFound, "table %q: %v", req.Table, err)
	}
	if werr := checkColumns(tbl, req.Table, predColumns(req.Predicate, nil)); werr != nil {
		return nil, werr
	}
	q := tbl.All()
	if req.Predicate != nil {
		q = q.AndPred(pred)
	}

	// The build side: its own table, predicate, and join kind. An inner
	// join makes the build table's columns referencable downstream.
	var buildTbl *codecdb.Table
	innerJoin := false
	if j := req.Join; j != nil {
		buildTbl, err = s.db.Table(j.Table)
		if err != nil {
			return nil, wireErr(CodeNotFound, "join table %q: %v", j.Table, err)
		}
		bpred, err := j.Predicate.ToPred()
		if err != nil {
			return nil, wireErr(CodeBadPredicate, "join predicate: %v", err)
		}
		if werr := checkColumns(buildTbl, j.Table, predColumns(j.Predicate, nil)); werr != nil {
			return nil, werr
		}
		if _, ok := tbl.ColumnType(j.LeftCol); !ok {
			return nil, wireErr(CodeBadPredicate, "unknown column %q in table %q", j.LeftCol, req.Table)
		}
		if _, ok := buildTbl.ColumnType(j.RightCol); !ok {
			return nil, wireErr(CodeBadPredicate, "unknown column %q in table %q", j.RightCol, j.Table)
		}
		bq := buildTbl.All()
		if j.Predicate != nil {
			bq = bq.AndPred(bpred)
		}
		switch j.Kind {
		case "semi":
			q = q.SemiJoin(bq, j.LeftCol, j.RightCol)
		case "anti":
			q = q.AntiJoin(bq, j.LeftCol, j.RightCol)
		default:
			innerJoin = true
			q = q.JoinOn(bq, j.LeftCol, j.RightCol)
		}
	}

	// Output columns resolve against the probe table, or the build table
	// on inner joins; order_by keys must be selected.
	haveCol := func(c string) bool {
		if _, ok := tbl.ColumnType(c); ok {
			return true
		}
		if innerJoin {
			if _, ok := buildTbl.ColumnType(c); ok {
				return true
			}
		}
		return false
	}
	selected := make(map[string]bool, len(req.Columns))
	for _, c := range req.Columns {
		if !haveCol(c) {
			return nil, wireErr(CodeBadPredicate, "unknown column %q", c)
		}
		selected[c] = true
	}
	for _, o := range req.OrderBy {
		if !selected[o.Col] {
			return nil, wireErr(CodeBadPredicate, "order_by column %q is not in columns", o.Col)
		}
		q = q.OrderBy(o.Col, o.Desc)
	}
	if req.Limit > 0 {
		q = q.Limit(req.Limit)
	}

	// The request deadline covers admission wait plus execution, exactly
	// like the wave path.
	timeout := s.cfg.DefaultTimeout
	if req.Budget.TimeoutMS > 0 {
		timeout = time.Duration(req.Budget.TimeoutMS) * time.Millisecond
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	waitStart := time.Now()
	grant, err := s.admit.Acquire(ctx, req.Client, req.Budget.MemoryBytes)
	admissionWait.Observe(time.Since(waitStart).Seconds())
	if err != nil {
		errorsTotal.Inc()
		return nil, wireErr(admissionCode(err), "%v", err)
	}
	defer grant.Release()

	var lq *obs.LiveQuery
	fr := obs.DefaultRecorder()
	if fr.Enabled() {
		lq = fr.Begin(obs.KindQuery, req.Table, "v1/"+req.Terminal, req.Predicate.Canonical())
	}

	workers := s.cfg.MaxWorkersPerQuery
	if req.Budget.MaxWorkers > 0 && (workers == 0 || req.Budget.MaxWorkers < workers) {
		workers = req.Budget.MaxWorkers
	}
	q = q.WithContext(ctx).WithExec(codecdb.ExecOptions{
		MaxWorkers:  workers,
		Deadline:    deadline,
		MemoryBytes: req.Budget.MemoryBytes,
	})

	resp := &QueryResponse{Table: req.Table, Epoch: tbl.Epoch(), Terminal: req.Terminal}
	var execErr error
	switch req.Terminal {
	case "rows":
		var rows *codecdb.Rows
		rows, execErr = q.Rows(req.Columns...)
		if execErr == nil {
			resp.Columns = rows.Cols
			resp.Rows = rows.Data
			resp.Count = int64(len(rows.Data))
		}
	default:
		resp.Count, execErr = q.Count()
	}
	if lq != nil {
		rec := &obs.QueryRecord{Wall: time.Since(lq.Start), RowsOut: resp.Count}
		if execErr != nil {
			rec.Err = execErr.Error()
			rec.Cancelled = errors.Is(execErr, context.Canceled) || errors.Is(execErr, context.DeadlineExceeded)
		}
		fr.Finish(lq, rec)
		resp.QueryID = lq.ID
	}
	if execErr != nil {
		errorsTotal.Inc()
		return nil, wireErr(classifyExecErr(execErr), "%v", execErr)
	}
	return resp, nil
}

// checkColumns maps unknown referenced columns onto bad_predicate.
func checkColumns(tbl *codecdb.Table, name string, cols []string) *WireError {
	have := make(map[string]bool)
	for _, c := range tbl.Columns() {
		have[c] = true
	}
	for _, c := range cols {
		if !have[c] {
			return wireErr(CodeBadPredicate, "unknown column %q in table %q", c, name)
		}
	}
	return nil
}

// predColumns collects every column a wire predicate references.
func predColumns(p *WirePred, out []string) []string {
	if p == nil {
		return out
	}
	if p.Col != "" {
		out = append(out, p.Col)
	}
	for _, k := range p.Kids {
		out = predColumns(k, out)
	}
	return out
}

// admissionCode maps an Acquire failure onto a wire code: a deadline
// that fired while queued is an admission timeout from the client's
// point of view — the wait budget ran out either way.
func admissionCode(err error) string {
	switch {
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, ErrAdmissionTimeout), errors.Is(err, context.DeadlineExceeded):
		return CodeAdmissionTimeout
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	return CodeInternal
}

// classifyExecErr maps a mid-execution failure onto a wire code.
func classifyExecErr(err error) string {
	var ce *codecdb.CorruptionError
	switch {
	case errors.As(err, &ce):
		return CodeCorruption
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return CodeCanceled
	// group_count on a string column stored without a dictionary (the
	// type pre-check can't see encodings) is still the client's request
	// shape, not a server fault.
	case strings.Contains(err.Error(), "needs a dictionary column"):
		return CodeBadPredicate
	}
	return CodeInternal
}

// httpStatus maps a wire code onto an HTTP status.
func httpStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeBadPredicate:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeShed, CodeAdmissionTimeout:
		return http.StatusServiceUnavailable
	case CodeCanceled:
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

func wireErr(code, format string, args ...any) *WireError {
	return &WireError{Code: code, Message: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	if code == CodeShed {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, &QueryResponse{Error: &WireError{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
