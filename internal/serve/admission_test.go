package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitQueued spins until the controller reports n queued waiters.
func waitQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, c.Stats().Queued)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestAdmissionImmediate: free capacity admits without waiting.
func TestAdmissionImmediate(t *testing.T) {
	c := NewController(AdmitConfig{MaxConcurrent: 2})
	g1, err := c.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Acquire(context.Background(), "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Running != 2 {
		t.Fatalf("running = %d", st.Running)
	}
	g1.Release()
	g2.Release()
	if st := c.Stats(); st.Running != 0 || st.MemUsed != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

// TestAdmissionShed: a full queue and an unsatisfiable budget both shed
// immediately instead of queueing a request that can never run.
func TestAdmissionShed(t *testing.T) {
	c := NewController(AdmitConfig{MaxConcurrent: 1, MaxQueued: 1, MaxWait: time.Minute})
	g, err := c.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()

	// One waiter fits in the queue...
	done := make(chan error, 1)
	go func() {
		wg, err := c.Acquire(context.Background(), "a", 0)
		if err == nil {
			wg.Release()
		}
		done <- err
	}()
	waitQueued(t, c, 1)
	// ...the second is shed.
	if _, err := c.Acquire(context.Background(), "b", 0); !errors.Is(err, ErrShed) {
		t.Fatalf("full queue: err = %v, want ErrShed", err)
	}
	// A budget above MaxMemory is shed with free capacity.
	c2 := NewController(AdmitConfig{MaxMemory: 1 << 20})
	if _, err := c2.Acquire(context.Background(), "a", 2<<20); !errors.Is(err, ErrShed) {
		t.Fatalf("oversize budget: err = %v, want ErrShed", err)
	}
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// TestAdmissionTimeout: a waiter that never gets a slot times out with
// ErrAdmissionTimeout after MaxWait.
func TestAdmissionTimeout(t *testing.T) {
	c := NewController(AdmitConfig{MaxConcurrent: 1, MaxWait: 20 * time.Millisecond})
	g, err := c.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if _, err := c.Acquire(context.Background(), "b", 0); !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("err = %v, want ErrAdmissionTimeout", err)
	}
	if st := c.Stats(); st.Queued != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", st)
	}
}

// TestAdmissionCancel: the caller's context cancels the wait.
func TestAdmissionCancel(t *testing.T) {
	c := NewController(AdmitConfig{MaxConcurrent: 1, MaxWait: time.Minute})
	g, err := c.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "b", 0)
		done <- err
	}()
	waitQueued(t, c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestAdmissionFairness: with one slot, a flooding client's waiters do
// not starve another client's — slots hand off round-robin across
// clients, FIFO within one. Client A queues 4, client B queues 2: the
// grant order must be A B A B A A.
func TestAdmissionFairness(t *testing.T) {
	c := NewController(AdmitConfig{MaxConcurrent: 1, MaxQueued: 16, MaxWait: 10 * time.Second})
	hog, err := c.Acquire(context.Background(), "seed", 0)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 8)
	launch := func(client string, n int) {
		for i := 0; i < n; i++ {
			queued := c.Stats().Queued
			go func() {
				g, err := c.Acquire(context.Background(), client, 0)
				if err != nil {
					order <- "err:" + err.Error()
					return
				}
				order <- client
				g.Release()
			}()
			waitQueued(t, c, queued+1)
		}
	}
	launch("A", 4)
	launch("B", 2)

	hog.Release() // cascade: each waiter releases after recording
	var got []string
	for i := 0; i < 6; i++ {
		select {
		case s := <-order:
			got = append(got, s)
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %v", got)
		}
	}
	want := []string{"A", "B", "A", "B", "A", "A"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

// TestAdmissionMemoryGate: concurrent slots free but memory exhausted
// — the next query waits for memory, not a concurrency slot.
func TestAdmissionMemoryGate(t *testing.T) {
	c := NewController(AdmitConfig{MaxConcurrent: 8, MaxMemory: 100, DefaultQueryMemory: 1, MaxWait: 5 * time.Second})
	g1, err := c.Acquire(context.Background(), "a", 80)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		g2, err := c.Acquire(context.Background(), "a", 40)
		if err == nil {
			g2.Release()
		}
		done <- err
	}()
	waitQueued(t, c, 1)
	g1.Release()
	if err := <-done; err != nil {
		t.Fatalf("waiter after memory freed: %v", err)
	}
}
