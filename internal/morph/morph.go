// Package morph implements the MorphStore-like baseline engine for the
// SSB comparison (paper §6.3, Fig 10). MorphStore's defining design — the
// one the paper credits for the gap — is eager materialization of
// compressed intermediates: every operator consumes a position list,
// decompresses it, evaluates, and emits a new compressed position list.
// There is no lazy bitmap pipeline and no late materialization; what is
// saved is intermediate memory, at the cost of compress/decompress work
// per operator.
//
// Position lists are compressed with the RLE/bit-packed hybrid from
// internal/encoding applied to the position deltas, which matches
// MorphStore's use of lightweight compression on intermediates.
package morph

import (
	"sync/atomic"

	"codecdb/internal/encoding"
)

// PosList is a compressed intermediate: the sorted row positions that
// survive an operator.
type PosList struct {
	data []byte
	n    int
}

// Compress builds a PosList from ascending row positions. The positions
// are delta-encoded then RLE/bit-packed.
func Compress(rows []int64) PosList {
	deltas := make([]int64, len(rows))
	prev := int64(0)
	for i, r := range rows {
		deltas[i] = r - prev
		prev = r
	}
	buf, err := encoding.RLEInt{}.Encode(deltas)
	if err != nil {
		panic("morph: position compression failed: " + err.Error())
	}
	return PosList{data: buf, n: len(rows)}
}

// Decompress expands the position list.
func (p PosList) Decompress() []int64 {
	if p.n == 0 {
		return nil
	}
	deltas, err := encoding.RLEInt{}.Decode(p.data)
	if err != nil {
		panic("morph: position decompression failed: " + err.Error())
	}
	out := make([]int64, len(deltas))
	acc := int64(0)
	for i, d := range deltas {
		acc += d
		out[i] = acc
	}
	return out
}

// Len returns the number of positions.
func (p PosList) Len() int { return p.n }

// SizeBytes is the compressed footprint of the intermediate.
func (p PosList) SizeBytes() int { return len(p.data) }

// Runner tracks the total size of intermediates materialised during one
// query — the Fig 10 lower panel metric.
type Runner struct {
	intermediateBytes atomic.Int64
	intermediates     atomic.Int64
}

// Materialize records and returns a compressed intermediate.
func (r *Runner) Materialize(rows []int64) PosList {
	p := Compress(rows)
	r.intermediateBytes.Add(int64(p.SizeBytes()))
	r.intermediates.Add(1)
	return p
}

// MaterializeVecBytes records a non-positional intermediate (e.g. a
// gathered value vector) of the given byte size.
func (r *Runner) MaterializeVecBytes(n int64) {
	r.intermediateBytes.Add(n)
	r.intermediates.Add(1)
}

// IntermediateBytes returns the accumulated intermediate footprint.
func (r *Runner) IntermediateBytes() int64 { return r.intermediateBytes.Load() }

// Intermediates returns the number of materialised intermediates.
func (r *Runner) Intermediates() int64 { return r.intermediates.Load() }

// FilterPositions applies pred to the rows of a previous intermediate
// (nil means all rows in [0, n)) and materialises the surviving
// positions — the eager operator-at-a-time execution model.
func (r *Runner) FilterPositions(prev *PosList, n int, pred func(row int64) bool) PosList {
	var out []int64
	if prev == nil {
		for i := int64(0); i < int64(n); i++ {
			if pred(i) {
				out = append(out, i)
			}
		}
	} else {
		for _, row := range prev.Decompress() {
			if pred(row) {
				out = append(out, row)
			}
		}
	}
	return r.Materialize(out)
}
