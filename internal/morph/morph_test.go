package morph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPosListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		rows := make([]int64, 0, n)
		cur := int64(0)
		for i := 0; i < n; i++ {
			cur += int64(rng.Intn(10) + 1)
			rows = append(rows, cur)
		}
		p := Compress(rows)
		got := p.Decompress()
		if len(got) != len(rows) {
			return false
		}
		for i := range rows {
			if got[i] != rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPosListCompressesRuns(t *testing.T) {
	// Consecutive positions (delta = 1 runs) must compress massively.
	rows := make([]int64, 100000)
	for i := range rows {
		rows[i] = int64(i)
	}
	p := Compress(rows)
	if p.SizeBytes() > 100 {
		t.Fatalf("consecutive positions took %d bytes", p.SizeBytes())
	}
	if p.Len() != 100000 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestRunnerAccounting(t *testing.T) {
	var r Runner
	p1 := r.FilterPositions(nil, 1000, func(row int64) bool { return row%2 == 0 })
	if p1.Len() != 500 {
		t.Fatalf("filter kept %d", p1.Len())
	}
	p2 := r.FilterPositions(&p1, 1000, func(row int64) bool { return row%4 == 0 })
	if p2.Len() != 250 {
		t.Fatalf("chained filter kept %d", p2.Len())
	}
	if r.Intermediates() != 2 {
		t.Fatalf("intermediates = %d", r.Intermediates())
	}
	if r.IntermediateBytes() <= 0 {
		t.Fatal("bytes not tracked")
	}
	r.MaterializeVecBytes(128)
	if r.Intermediates() != 3 {
		t.Fatal("vec intermediate not counted")
	}
}

func TestEmptyPosList(t *testing.T) {
	p := Compress(nil)
	if p.Len() != 0 || len(p.Decompress()) != 0 {
		t.Fatal("empty list should stay empty")
	}
}
