package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"

	"codecdb/internal/vfs"
)

// ManifestName is the single manifest file inside a sharded table's
// directory. It is only ever replaced whole, by rename.
const ManifestName = "MANIFEST"

// manifestMagic begins every manifest file.
var manifestMagic = []byte("CDBM")

// manifestVersion is the current manifest format version.
const manifestVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ShardMeta is one live shard in the manifest.
type ShardMeta struct {
	// File is the shard's file name inside the table directory.
	File string `json:"file"`
	// Rows is the shard's row count.
	Rows int64 `json:"rows"`
	// Encodings records the per-column scheme the selector chose when
	// this shard was encoded (selection re-runs at every flush, so
	// different shards of one table may disagree).
	Encodings map[string]string `json:"encodings,omitempty"`
}

// Manifest is the root of trust for a sharded table: the exact set of
// live shard files, in ingest order, plus the WAL floor — the lowest
// segment sequence that may still hold unflushed rows. Everything else
// in the directory (unlisted shard files, stale segments, temp files)
// is crash debris that recovery removes.
type Manifest struct {
	// Seq is the manifest generation, bumped on every rewrite.
	Seq uint64 `json:"seq"`
	// WalFloor: segments with sequence < WalFloor are fully flushed and
	// dead; recovery replays every segment >= WalFloor.
	WalFloor uint64 `json:"wal_floor"`
	// NextFile numbers the next shard file, monotonically, so reused
	// names never collide with crash debris.
	NextFile uint64 `json:"next_file"`
	// Shards lists the live shards in ingest order.
	Shards []ShardMeta `json:"shards"`
}

// CorruptManifestError reports a manifest that failed structural or
// checksum verification — real metadata damage, since manifests are
// only ever published by atomic rename of a fully-synced temp file.
type CorruptManifestError struct {
	Path   string
	Detail string
}

func (e *CorruptManifestError) Error() string {
	return fmt.Sprintf("shard: corrupt manifest %s: %s", e.Path, e.Detail)
}

// encodeManifest frames the manifest:
//
//	"CDBM" | u32 version | u32 len | u32 crc32c(payload) | payload(JSON)
func encodeManifest(m *Manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 16+len(payload))
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...), nil
}

func decodeManifest(path string, raw []byte) (*Manifest, error) {
	bad := func(detail string) (*Manifest, error) {
		return nil, &CorruptManifestError{Path: path, Detail: detail}
	}
	if len(raw) < 16 {
		return bad(fmt.Sprintf("%d bytes, want >= 16", len(raw)))
	}
	if string(raw[:4]) != string(manifestMagic) {
		return bad("bad magic")
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != manifestVersion {
		return bad(fmt.Sprintf("unsupported version %d", v))
	}
	n := binary.LittleEndian.Uint32(raw[8:12])
	if int(n) != len(raw)-16 {
		return bad(fmt.Sprintf("payload length %d, file holds %d", n, len(raw)-16))
	}
	payload := raw[16:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(raw[12:16]); got != want {
		return bad(fmt.Sprintf("payload checksum %08x, want %08x", got, want))
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return bad(fmt.Sprintf("payload: %v", err))
	}
	return &m, nil
}

// writeManifest atomically publishes m at dir/MANIFEST: temp file,
// write, fsync, rename, directory fsync — the same pattern as
// Selector.Save, so a crash at any point leaves either the previous
// manifest or the new one, never a mix.
func writeManifest(fsys vfs.FS, dir string, m *Manifest) error {
	raw, err := encodeManifest(m)
	if err != nil {
		return err
	}
	tmp := join(dir, ManifestName+".tmp")
	final := join(dir, ManifestName)
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// loadManifest reads dir/MANIFEST. A missing manifest is not an error:
// it returns the zero manifest of a freshly created (or never flushed)
// table.
func loadManifest(fsys vfs.FS, dir string) (*Manifest, error) {
	path := join(dir, ManifestName)
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return &Manifest{WalFloor: 1, NextFile: 1}, nil
		}
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, size)
	if _, err := f.ReadAt(raw, 0); err != nil {
		return nil, fmt.Errorf("shard: read manifest: %w", err)
	}
	return decodeManifest(path, raw)
}

// join is filepath.Join for the forward-slash paths the vfs layer uses.
func join(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}
