package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/memtable"
	"codecdb/internal/ops"
	"codecdb/internal/vfs"
	"codecdb/internal/wal"
)

// testCols is the schema every test table uses.
func testCols() []Column {
	return []Column{
		{Name: "id", Type: memtable.ColInt64},
		{Name: "score", Type: memtable.ColFloat64},
		{Name: "tag", Type: memtable.ColBinary},
	}
}

// testFlushFn encodes a memtable with plain encodings — the selector is
// exercised elsewhere; these tests care about durability.
func testFlushFn(fsys vfs.FS) FlushFunc {
	return func(mem *memtable.ColumnTable, path string) (map[string]string, error) {
		strs := make([][]byte, mem.NumRows())
		for i, b := range mem.Binaries(2) {
			strs[i] = b
		}
		schema := colstore.Schema{Columns: []colstore.Column{
			{Name: "id", Type: colstore.TypeInt64},
			{Name: "score", Type: colstore.TypeFloat64},
			{Name: "tag", Type: colstore.TypeString},
		}}
		data := []colstore.ColumnData{
			{Ints: mem.Ints(0)}, {Floats: mem.Floats(1)}, {Strings: strs},
		}
		if err := colstore.WriteFileFS(fsys, path, schema, data, colstore.Options{}); err != nil {
			return nil, err
		}
		return map[string]string{"id": "PLAIN", "score": "PLAIN", "tag": "PLAIN"}, nil
	}
}

func openTestTable(t *testing.T, fsys vfs.FS, dir string, opts Options) *Table {
	t.Helper()
	tbl, err := Open(fsys, dir, testCols(), opts, testFlushFn(fsys))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// collectIDs reads every id in snapshot order (shards then tail).
func collectIDs(t *testing.T, tbl *Table) []int64 {
	t.Helper()
	pool := exec.NewPool(2)
	var ids []int64
	v := tbl.Snapshot()
	for _, sv := range v.Shards {
		vals, err := ops.GatherInts(sv.Reader, "id", ops.FullTableBitmap(sv.Reader), pool)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, vals...)
	}
	for _, mem := range v.Tail {
		ids = append(ids, mem.Ints(0)...)
	}
	return ids
}

func appendN(t *testing.T, tbl *Table, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := tbl.Append(int64(i), float64(i)/2, fmt.Sprintf("tag-%d", i%7)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func wantIDs(t *testing.T, got []int64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d rows, want %d", len(got), n)
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("row %d has id %d, want %d", i, id, i)
		}
	}
}

func TestAppendFlushReopen(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	appendN(t, tbl, 0, 100)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr := tbl.LastFlushTrace(); tr == "" {
		t.Fatal("no flush trace recorded")
	}
	appendN(t, tbl, 100, 50) // stays in the tail
	wantIDs(t, collectIDs(t, tbl), 150)
	if n := tbl.NumRows(); n != 150 {
		t.Fatalf("NumRows = %d, want 150", n)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	wantIDs(t, collectIDs(t, tbl), 150) // shard rows + replayed WAL tail
	if got := tbl.Encodings()["id"]; got != "PLAIN" {
		t.Fatalf("Encodings lost across reopen: %q", got)
	}
	rep, err := tbl.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("scrub: %+v", rep)
	}
}

// TestSizeSealRotatesWAL: crossing the seal threshold must rotate the
// WAL and background-flush without any explicit Flush call.
func TestSizeSealRotatesWAL(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{SealBytes: 1 << 10})
	appendN(t, tbl, 0, 500)
	if err := tbl.Flush(); err != nil { // drain whatever is queued
		t.Fatal(err)
	}
	v := tbl.Snapshot()
	if len(v.Shards) < 2 {
		t.Fatalf("size seal produced %d shards, want >= 2", len(v.Shards))
	}
	wantIDs(t, collectIDs(t, tbl), 500)
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	wantIDs(t, collectIDs(t, tbl), 500)
}

// TestConcurrentAppend: concurrent appenders with background seals; no
// acked row may be lost or duplicated, before or after reopen.
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{SealBytes: 4 << 10})
	const goroutines, each = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := int64(g*each + i)
				if err := tbl.Append(id, float64(id), "x"); err != nil {
					t.Errorf("append %d: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	seen := map[int64]bool{}
	for _, id := range collectIDs(t, tbl) {
		if seen[id] {
			t.Fatalf("row %d recovered twice", id)
		}
		seen[id] = true
	}
	if len(seen) != goroutines*each {
		t.Fatalf("recovered %d rows, want %d", len(seen), goroutines*each)
	}
}

// TestRecoveryEmptyWAL: a fresh directory and a directory holding only
// an empty (header-only) segment both recover to an empty table.
func TestRecoveryEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	// The directory now holds one header-only segment and no manifest.
	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	if n := tbl.NumRows(); n != 0 {
		t.Fatalf("empty WAL recovered %d rows", n)
	}
	rep, err := tbl.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.WalTorn != 0 {
		t.Fatalf("empty WAL reported torn: %+v", rep)
	}
}

// TestRecoveryTornOnlyWAL: a WAL whose only content beyond the header
// is a torn record must recover to an empty table, silently.
func TestRecoveryTornOnlyWAL(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	if err := tbl.Append(int64(1), 1.0, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the single record: chop the segment mid-record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	for _, seg := range segs {
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > 20 { // header is 16; leave a torn stub
			if err := os.Truncate(seg, 20); err != nil {
				t.Fatal(err)
			}
		}
	}
	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	if n := tbl.NumRows(); n != 0 {
		t.Fatalf("torn-only WAL recovered %d rows, want 0", n)
	}
}

// TestQuarantineMissingShard: a manifest naming a shard file that no
// longer exists must open (serving the remaining shards), quarantine
// the missing one, and report it via Scrub.
func TestQuarantineMissingShard(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	appendN(t, tbl, 0, 10)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	appendN(t, tbl, 10, 10)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	first := tbl.Snapshot().Shards[0].File
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, first)); err != nil {
		t.Fatal(err)
	}

	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	quar := tbl.Quarantined()
	if len(quar) != 1 || quar[0].File != first {
		t.Fatalf("quarantined = %+v, want [%s]", quar, first)
	}
	// The second shard's rows survive.
	ids := collectIDs(t, tbl)
	if len(ids) != 10 || ids[0] != 10 {
		t.Fatalf("surviving rows = %v", ids)
	}
	rep, err := tbl.Scrub(context.Background())
	if err != nil {
		t.Fatalf("scrub must report quarantine, not fail: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("scrub report: %+v", rep)
	}
}

// TestQuarantineCorruptShard: bit damage inside a shard file is caught
// by open-time verification and quarantined.
func TestQuarantineCorruptShard(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	appendN(t, tbl, 0, 50)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	file := tbl.Snapshot().Shards[0].File
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, file)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	if quar := tbl.Quarantined(); len(quar) != 1 {
		t.Fatalf("quarantined = %+v", quar)
	}
	if n := tbl.NumRows(); n != 0 {
		t.Fatalf("corrupt shard still counted: %d rows", n)
	}
}

// TestDoubleCrashTempLeftover: a temp file left by a crashed flush —
// then a second crash before the retry finished — must be swept on open
// and never shadow the real flush.
func TestDoubleCrashTempLeftover(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	appendN(t, tbl, 0, 20)
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate flush debris: the temp file of the shard the next flush
	// will want to write, plus an orphan shard never committed.
	for _, junk := range []string{"shard-00000001.cdb.tmp", "MANIFEST.tmp", "shard-00000042.cdb"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	if quar := tbl.Quarantined(); len(quar) != 0 {
		t.Fatalf("debris quarantined: %+v", quar)
	}
	wantIDs(t, collectIDs(t, tbl), 20)
	if err := tbl.Flush(); err != nil { // must not collide with debris names
		t.Fatal(err)
	}
	wantIDs(t, collectIDs(t, tbl), 20)
	for _, junk := range []string{"shard-00000001.cdb.tmp", "MANIFEST.tmp", "shard-00000042.cdb"} {
		if _, err := os.Stat(filepath.Join(dir, junk)); !os.IsNotExist(err) {
			t.Fatalf("debris %s survived recovery", junk)
		}
	}
}

// TestCorruptManifestFailsOpen: manifest damage is metadata loss, not
// shard damage — Open must fail loudly with CorruptManifestError rather
// than silently treating the table as empty (which would orphan every
// shard).
func TestCorruptManifestFailsOpen(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	appendN(t, tbl, 0, 10)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(fsys, dir, testCols(), Options{}, testFlushFn(fsys))
	var cme *CorruptManifestError
	if err == nil {
		t.Fatal("corrupt manifest opened")
	}
	if !errors.As(err, &cme) {
		t.Fatalf("err = %v, want CorruptManifestError", err)
	}
}

// TestWALFloorTrim: flushing must advance the WAL floor and delete dead
// segments, and reopening afterwards must not duplicate flushed rows.
func TestWALFloorTrim(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS()
	tbl := openTestTable(t, fsys, dir, Options{})
	appendN(t, tbl, 0, 30)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	appendN(t, tbl, 30, 5)
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := loadManifest(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if seq, ok := wal.ParseSegmentName(n); ok && seq < man.WalFloor {
			t.Fatalf("dead segment %s (floor %d) survived flush", n, man.WalFloor)
		}
	}
	tbl = openTestTable(t, fsys, dir, Options{})
	defer tbl.Close()
	wantIDs(t, collectIDs(t, tbl), 35)
}
