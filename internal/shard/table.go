// Package shard is the durable write path behind a CodecDB table: a
// group-committed write-ahead log feeding an in-memory ingest buffer,
// background flushes that encode sealed memtables into immutable column
// shards, and a checksummed MANIFEST — atomically replaced, never
// patched — that names the exact live shard set.
//
// The crash safety contract (DESIGN.md):
//
//   - An Append that returns nil is durable: the row was fsynced into
//     the WAL before the ack, and recovery replays it.
//   - Recovery returns the table to exactly the acknowledged state,
//     plus possibly rows whose WAL write reached disk but whose ack was
//     lost — never a torn, partial, or corrupt row.
//   - A shard that fails verification at open is quarantined, not
//     fatal: the table serves the remaining shards and reports the
//     damage through Scrub.
//   - Everything in the table directory that the MANIFEST does not name
//     is crash debris (temp files, orphaned shards, dead WAL segments)
//     and is swept on open.
package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codecdb/internal/colstore"
	"codecdb/internal/memtable"
	"codecdb/internal/obs"
	"codecdb/internal/vfs"
	"codecdb/internal/wal"
)

var (
	flushesTotal = obs.Default().Counter(
		"codecdb_flushes_total", "Memtable flushes committed (shard published + manifest advanced).")
	flushRowsTotal = obs.Default().Counter(
		"codecdb_flush_rows_total", "Rows moved from memtables into shards by flushes.")
	quarantinedTotal = obs.Default().Counter(
		"codecdb_quarantined_shards_total", "Shards quarantined at open after failing verification.")
	flushSeconds = obs.Default().Histogram(
		"codecdb_flush_seconds",
		"Flush duration (encode, publish, manifest, trim) in seconds.", nil)
)

// FlushFunc encodes one sealed memtable into a column shard file at
// path (through the table's filesystem). It returns the per-column
// encodings chosen — the learned selector re-runs on every flush, so
// encodings track the data each shard actually holds.
type FlushFunc func(mem *memtable.ColumnTable, path string) (encodings map[string]string, err error)

// Options tunes a sharded table.
type Options struct {
	// SealBytes is the memtable seal threshold (payload bytes); <= 0
	// selects memtable.DefaultSealBytes.
	SealBytes int
	// SkipVerifyOnOpen skips the full checksum scrub of each shard
	// during Open. The default (false) verifies every shard and
	// quarantines failures; skipping trades open latency for detecting
	// page-level damage only when a query touches it.
	SkipVerifyOnOpen bool
	// Name labels the table in structured log events and flight-recorder
	// records; "" falls back to the directory base name.
	Name string
	// Logger receives one structured event per flush, quarantine,
	// recovery, and torn-tail truncation; nil drops them (nil-safe).
	Logger *obs.Logger
	// PageCache, when non-nil, is attached to every shard reader so
	// decompressed page bodies are shared across queries (and across
	// shards of one cache budget). Readers invalidate their entries on
	// close.
	PageCache *colstore.PageCache
}

func (o Options) withDefaults() Options {
	if o.SealBytes <= 0 {
		o.SealBytes = memtable.DefaultSealBytes
	}
	return o
}

// name labels the table for logs and records.
func (t *Table) name() string {
	if t.opts.Name != "" {
		return t.opts.Name
	}
	return t.dir[strings.LastIndexByte(t.dir, '/')+1:]
}

// logger returns the injected structured logger (nil drops events).
func (t *Table) logger() *obs.Logger { return t.opts.Logger }

// liveID returns a live entry's ID, 0 when the recorder is off.
func liveID(lq *obs.LiveQuery) uint64 {
	if lq == nil {
		return 0
	}
	return lq.ID
}

// QuarantinedShard names a manifest shard that failed verification at
// open and is excluded from queries.
type QuarantinedShard struct {
	File string
	Err  string
}

// shardHandle is one live (opened, verified) shard.
type shardHandle struct {
	meta ShardMeta
	r    *colstore.Reader
}

// sealedEntry is a sealed memtable awaiting flush. start is the WAL
// segment that was active when its buffer started accepting rows: every
// row in mem lives in segments [start, sealing rotation), so once mem
// is flushed, segments below the *next* entry's start are dead.
type sealedEntry struct {
	mem   *memtable.ColumnTable
	start uint64
}

// Table is a sharded, WAL-backed table.
type Table struct {
	fs      vfs.FS
	dir     string
	cols    []Column
	opts    Options
	flushFn FlushFunc

	// epochMu orders appends against seal/rotate: appenders hold it
	// shared across (WAL append, memtable insert) so a rotation never
	// slips between the two — the pair lands in one WAL epoch, which is
	// what makes segment trimming safe.
	epochMu sync.RWMutex

	// dataEpoch versions the visible row set: bumped on every durable
	// append and every published flush, it is what epoch-keyed caches
	// (query results, decompressed pages) compare to detect staleness.
	dataEpoch atomic.Uint64

	mu          sync.Mutex
	cond        *sync.Cond
	man         *Manifest
	shards      []*shardHandle
	quarantined []QuarantinedShard
	buf         *memtable.Buffer
	sealedQ     []sealedEntry
	w           *wal.Writer
	walSeq      uint64 // active segment sequence
	activeStart uint64 // segment holding the active buffer's oldest row
	flushErr    error
	trimmedTo   uint64 // segments below this are already deleted
	kicks       int    // flush wake generation; failed flushes wait for the next kick
	closed      bool
	flusherDone chan struct{}
	lastFlush   string // rendered span tree of the last committed flush
}

// Open opens (or creates) a sharded table in dir, recovering it to the
// acknowledged state: live shards are opened and verified (failures
// quarantined, not fatal), crash debris is swept, and every WAL segment
// at or above the manifest's floor is replayed into the memtable —
// stopping cleanly at torn tails. The directory must exist.
func Open(fsys vfs.FS, dir string, cols []Column, opts Options, flushFn FlushFunc) (*Table, error) {
	opts = opts.withDefaults()
	man, err := loadManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	t := &Table{
		fs: fsys, dir: dir, cols: cols, opts: opts, flushFn: flushFn,
		man:         man,
		flusherDone: make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	names := make([]string, len(cols))
	types := make([]memtable.ColType, len(cols))
	for i, c := range cols {
		names[i], types[i] = c.Name, c.Type
	}
	// The buffer never self-seals: sealing must rotate the WAL in the
	// same critical section, so the table drives it off SizeBytes.
	t.buf = memtable.NewBuffer(names, types, math.MaxInt)

	if err := t.openShards(); err != nil {
		return nil, err
	}
	if err := t.recover(); err != nil {
		t.closeShardsLocked()
		return nil, err
	}
	go t.flusher()
	return t, nil
}

// openShards opens and verifies every manifest shard, quarantining
// failures.
func (t *Table) openShards() error {
	live := make(map[string]bool, len(t.man.Shards))
	for _, sm := range t.man.Shards {
		live[sm.File] = true
		r, err := colstore.OpenFS(t.fs, join(t.dir, sm.File))
		if err == nil {
			r.SetPageCache(t.opts.PageCache)
		}
		if err == nil && !t.opts.SkipVerifyOnOpen {
			if verr := r.Verify(context.Background()); verr != nil {
				r.Close()
				r, err = nil, verr
			}
		}
		if err != nil {
			t.quarantined = append(t.quarantined, QuarantinedShard{File: sm.File, Err: err.Error()})
			quarantinedTotal.Inc()
			t.logger().Error("shard quarantined",
				"table", t.name(), "shard", sm.File, "err", err.Error())
			continue
		}
		t.shards = append(t.shards, &shardHandle{meta: sm, r: r})
	}
	return nil
}

// recover sweeps crash debris and replays the WAL tail into the
// memtable, recording the pass in the flight recorder and logging a
// summary (plus one event per torn tail) when a logger is injected.
func (t *Table) recover() error {
	fr := obs.DefaultRecorder()
	lq := fr.Begin(obs.KindRecovery, t.name(), "Recovery", "")
	start := time.Now()
	st, err := t.recoverWAL(lq)
	rec := &obs.QueryRecord{
		Wall:    time.Since(start),
		RowsIn:  int64(st.records),
		RowsOut: int64(st.records),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	fr.Finish(lq, rec)
	if err == nil && st.segments > 0 {
		t.logger().Info("recovery",
			"id", liveID(lq), "table", t.name(),
			"segments", st.segments, "records", st.records, "torn", st.torn)
	}
	return err
}

// recoverStats summarizes one recovery pass.
type recoverStats struct {
	segments int // WAL segments replayed
	records  int // records restored into the memtable
	torn     int // segments truncated at a torn tail
}

func (t *Table) recoverWAL(lq *obs.LiveQuery) (recoverStats, error) {
	var st recoverStats
	entries, err := t.fs.ReadDir(t.dir)
	if err != nil {
		return st, err
	}
	live := make(map[string]bool, len(t.man.Shards))
	for _, sm := range t.man.Shards {
		live[sm.File] = true
	}
	var segs []uint64
	maxSeen := t.man.WalFloor - 1
	for _, name := range entries {
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Double-crash debris: a flush died mid-encode (or
			// mid-manifest-write), then the retry died too. The data is
			// still in the WAL; the temp file is garbage.
			t.fs.Remove(join(t.dir, name))
		case strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".cdb"):
			if !live[name] {
				// Renamed into place but never committed to the
				// manifest: the flush's manifest write crashed. The rows
				// are still in the WAL; the orphan must go, or a later
				// flush could collide with its name.
				t.fs.Remove(join(t.dir, name))
			}
		default:
			if seq, ok := wal.ParseSegmentName(name); ok {
				if seq < t.man.WalFloor {
					t.fs.Remove(join(t.dir, name)) // fully flushed, dead
				} else {
					segs = append(segs, seq)
				}
				if seq > maxSeen {
					maxSeen = seq
				}
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for _, seq := range segs {
		res, err := wal.Replay(t.fs, join(t.dir, wal.SegmentName(seq)), func(payload []byte) error {
			vals, err := decodeRow(t.cols, payload)
			if err != nil {
				// CRC-valid but undecodable: treat like a torn tail —
				// stop this segment, keep what was intact.
				return errStopReplay
			}
			_, aerr := t.buf.Append(vals...)
			return aerr
		})
		if err != nil && err != errStopReplay {
			return st, fmt.Errorf("shard: replay %s: %w", wal.SegmentName(seq), err)
		}
		st.segments++
		st.records += res.Records
		if res.Torn {
			st.torn++
			t.logger().Warn("wal torn tail truncated",
				"id", liveID(lq), "table", t.name(),
				"segment", wal.SegmentName(seq), "offset", res.TornAt)
		}
	}

	// Fresh active segment after everything seen; the replayed rows sit
	// in the active buffer, whose oldest row may date back to the floor.
	newSeq := maxSeen + 1
	w, err := wal.Create(t.fs, join(t.dir, wal.SegmentName(newSeq)), newSeq)
	if err != nil {
		return st, fmt.Errorf("shard: create wal segment: %w", err)
	}
	t.w, t.walSeq = w, newSeq
	t.activeStart = t.man.WalFloor
	t.trimmedTo = t.man.WalFloor // recovery just swept everything below
	return st, nil
}

// errStopReplay aborts one segment's replay without failing recovery.
var errStopReplay = fmt.Errorf("shard: stop replay")

// Cols returns the schema.
func (t *Table) Cols() []Column { return t.cols }

// Dir returns the table directory.
func (t *Table) Dir() string { return t.dir }

// Epoch identifies the current data version: it advances on every
// durable append and every published flush. Epoch-keyed caches compare
// it to detect staleness; equality guarantees the visible row set has
// not changed.
func (t *Table) Epoch() uint64 { return t.dataEpoch.Load() }

// Append durably adds one row: it returns nil only after the row is
// fsynced into the WAL (group-committed with concurrent appenders) and
// visible in the memtable. On error nothing is acknowledged.
func (t *Table) Append(vals ...any) error {
	payload, err := encodeRow(t.cols, vals)
	if err != nil {
		return err
	}
	t.epochMu.RLock()
	w, buf := t.w, t.buf
	if w == nil {
		t.epochMu.RUnlock()
		return fmt.Errorf("shard: table closed")
	}
	if err := w.Append(payload); err != nil {
		t.epochMu.RUnlock()
		return err
	}
	if _, err := buf.Append(vals...); err != nil {
		t.epochMu.RUnlock()
		return fmt.Errorf("shard: row durable but not applied: %w", err)
	}
	needSeal := buf.SizeBytes() >= t.opts.SealBytes
	t.dataEpoch.Add(1)
	t.epochMu.RUnlock()
	if needSeal {
		t.maybeSeal()
	}
	return nil
}

// maybeSeal seals and rotates if the buffer is still over threshold by
// the time the exclusive lock arrives (another appender may have sealed
// already).
func (t *Table) maybeSeal() {
	t.epochMu.Lock()
	defer t.epochMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.buf.SizeBytes() < t.opts.SealBytes {
		return
	}
	t.sealAndRotateLocked()
}

// sealAndRotateLocked seals the active buffer into the flush queue and
// rotates the WAL, as one atomic step: rows appended after it return go
// to the new segment, so every sealed row lives strictly below the new
// segment — the invariant that makes trimming after flush safe. Callers
// hold epochMu (exclusive) and mu. Errors are recorded in flushErr (the
// seal is abandoned; rows stay in the active buffer and WAL).
func (t *Table) sealAndRotateLocked() {
	if t.buf.Rows() == 0 {
		return
	}
	newSeq := t.walSeq + 1
	nw, err := wal.Create(t.fs, join(t.dir, wal.SegmentName(newSeq)), newSeq)
	if err != nil {
		t.flushErr = fmt.Errorf("shard: rotate wal: %w", err)
		t.cond.Broadcast()
		return
	}
	sealed := t.buf.Seal()
	if sealed == nil {
		nw.Close()
		t.fs.Remove(join(t.dir, wal.SegmentName(newSeq)))
		return
	}
	t.w.Close()
	t.w, t.walSeq = nw, newSeq
	t.sealedQ = append(t.sealedQ, sealedEntry{mem: sealed, start: t.activeStart})
	t.activeStart = newSeq
	t.kicks++
	t.cond.Broadcast()
}

// Flush seals whatever the active buffer holds and blocks until the
// flush queue drains (or a flush fails). It is the synchronous
// counterpart of the background flusher.
func (t *Table) Flush() error {
	t.epochMu.Lock()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.epochMu.Unlock()
		return fmt.Errorf("shard: table closed")
	}
	t.flushErr = nil
	t.sealAndRotateLocked()
	err := t.flushErr
	t.kicks++
	t.cond.Broadcast()
	t.mu.Unlock()
	t.epochMu.Unlock()
	if err != nil {
		return err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.sealedQ) > 0 && t.flushErr == nil && !t.closed {
		t.cond.Wait()
	}
	return t.flushErr
}

// flusher is the background flush loop: one goroutine drains the sealed
// queue in order. After a failure it parks until the next kick (a new
// seal or an explicit Flush) rather than spinning against a sick disk.
func (t *Table) flusher() {
	defer close(t.flusherDone)
	lastFailedKick := -1
	for {
		t.mu.Lock()
		for !t.closed && (len(t.sealedQ) == 0 || t.kicks == lastFailedKick) {
			t.cond.Wait()
		}
		if t.closed {
			t.mu.Unlock()
			return
		}
		e := t.sealedQ[0]
		kick := t.kicks
		t.mu.Unlock()

		if err := t.flushOne(e); err != nil {
			t.mu.Lock()
			t.flushErr = err
			lastFailedKick = kick
			t.cond.Broadcast()
			t.mu.Unlock()
			continue
		}
		lastFailedKick = -1
	}
}

// flushOne runs one flush under a flight-recorder entry: the flush gets
// a process-wide ID, its duration lands in the flush histogram, its
// span tree is kept on the completed record, and one structured log
// event reports the outcome.
func (t *Table) flushOne(e sealedEntry) error {
	rows := int64(e.mem.NumRows())
	fr := obs.DefaultRecorder()
	lq := fr.Begin(obs.KindFlush, t.name(), "Flush", "")
	start := time.Now()
	sp, file, err := t.flushShard(e, liveID(lq))
	d := time.Since(start)
	flushSeconds.Observe(d.Seconds())
	rec := &obs.QueryRecord{Wall: d, RowsIn: rows, RowsOut: rows, TraceRoot: sp}
	if err != nil {
		rec.Err = err.Error()
		rec.RowsOut = 0
	}
	fr.Finish(lq, rec)
	if err != nil {
		t.logger().Error("flush failed",
			"id", liveID(lq), "table", t.name(), "rows", rows, "err", err.Error())
		return err
	}
	t.logger().Info("flush",
		"id", liveID(lq), "table", t.name(), "shard", file,
		"rows", rows, "duration", d)
	return nil
}

// flushShard encodes one sealed memtable into a shard, publishes it by
// rename, commits the manifest, and trims dead WAL segments. Traced as
// a Flush span (Encode → Publish → Manifest → Trim) retrievable via
// LastFlushTrace.
func (t *Table) flushShard(e sealedEntry, id uint64) (*obs.Span, string, error) {
	sp := obs.NewSpan("Flush")
	sp.SetRows(int64(e.mem.NumRows()), int64(e.mem.NumRows()))

	t.mu.Lock()
	fileNum := t.man.NextFile
	t.mu.Unlock()
	file := fmt.Sprintf("shard-%08d.cdb", fileNum)
	tmp := join(t.dir, file+".tmp")
	final := join(t.dir, file)

	enc := sp.StartChild("Encode")
	encodings, err := t.flushFn(e.mem, tmp)
	enc.AddDetail("%d rows -> %s", e.mem.NumRows(), file)
	enc.End()
	if err != nil {
		t.fs.Remove(tmp) // best effort; recovery sweeps leftovers anyway
		sp.End()
		return sp, file, fmt.Errorf("shard: encode %s: %w", file, err)
	}

	pub := sp.StartChild("Publish")
	err = t.fs.Rename(tmp, final)
	if err == nil {
		err = t.fs.SyncDir(t.dir)
	}
	var r *colstore.Reader
	if err == nil {
		r, err = colstore.OpenFS(t.fs, final)
		if err == nil {
			r.SetPageCache(t.opts.PageCache)
		}
	}
	pub.End()
	if err != nil {
		sp.End()
		return sp, file, fmt.Errorf("shard: publish %s: %w", file, err)
	}

	// The manifest's new WAL floor: the oldest segment any still-unflushed
	// row can live in. Queue order is ingest order, so that is the next
	// queued entry's start, or the active buffer's.
	t.mu.Lock()
	var floor uint64
	if len(t.sealedQ) > 1 {
		floor = t.sealedQ[1].start
	} else {
		floor = t.activeStart
	}
	newMan := &Manifest{
		Seq:      t.man.Seq + 1,
		WalFloor: floor,
		NextFile: fileNum + 1,
		Shards:   append(append([]ShardMeta(nil), t.man.Shards...), ShardMeta{File: file, Rows: r.NumRows(), Encodings: encodings}),
	}
	t.mu.Unlock()

	msp := sp.StartChild("Manifest")
	err = writeManifest(t.fs, t.dir, newMan)
	msp.AddDetail("seq=%d shards=%d wal_floor=%d", newMan.Seq, len(newMan.Shards), newMan.WalFloor)
	msp.End()
	if err != nil {
		r.Close()
		sp.End()
		return sp, file, fmt.Errorf("shard: manifest: %w", err)
	}

	// Trim dead segments. The manifest is already durable, so failure is
	// harmless — recovery re-sweeps — and cannot fail the flush.
	trim := sp.StartChild("Trim")
	t.mu.Lock()
	from := t.trimmedTo
	if floor > t.trimmedTo {
		t.trimmedTo = floor
	}
	t.mu.Unlock()
	trimmed := 0
	for seq := from; seq < floor; seq++ {
		if t.fs.Remove(join(t.dir, wal.SegmentName(seq))) == nil {
			trimmed++
		}
	}
	trim.AddDetail("%d segments below floor %d", trimmed, floor)
	trim.End()
	sp.End()

	// Commit in memory; the shard is now queryable and waiters wake.
	t.mu.Lock()
	t.man = newMan
	t.shards = append(t.shards, &shardHandle{meta: newMan.Shards[len(newMan.Shards)-1], r: r})
	t.dataEpoch.Add(1)
	t.sealedQ = t.sealedQ[1:]
	t.lastFlush = sp.Render()
	t.cond.Broadcast()
	t.mu.Unlock()
	flushesTotal.Inc()
	flushRowsTotal.Add(int64(e.mem.NumRows()))
	if obs.EventsEnabled() {
		obs.Emit("flush", map[string]any{
			"flush_id": id, "shard": file, "rows": e.mem.NumRows(),
			"wal_floor": floor, "encodings": encodings, "manifest_seq": newMan.Seq,
		})
	}
	return sp, file, nil
}

// LastFlushTrace returns the rendered span tree of the most recent
// committed flush ("" before the first).
func (t *Table) LastFlushTrace() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastFlush
}

// FlushErr returns the sticky error of the last failed flush or
// seal/rotate, nil when healthy. Appends keep succeeding while flushes
// fail — rows accumulate durably in the WAL — so ingestion degrades
// gracefully instead of going dark.
func (t *Table) FlushErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushErr
}

// Encodings returns the per-column encoding the most recent flush chose
// (the selector re-runs each flush, so later shards win; columns never
// flushed are absent).
func (t *Table) Encodings() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]string{}
	for _, sm := range t.man.Shards {
		for c, e := range sm.Encodings {
			out[c] = e
		}
	}
	return out
}

// Quarantined lists shards excluded at open for failing verification.
func (t *Table) Quarantined() []QuarantinedShard {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]QuarantinedShard(nil), t.quarantined...)
}

// NumRows returns the live row count: shards + sealed + active buffer.
func (t *Table) NumRows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, h := range t.shards {
		n += h.meta.Rows
	}
	for _, e := range t.sealedQ {
		n += int64(e.mem.NumRows())
	}
	return n + int64(t.buf.Rows())
}

// ShardView is one immutable shard in a snapshot.
type ShardView struct {
	File   string
	Rows   int64
	Reader *colstore.Reader
}

// View is a consistent snapshot of the table for one query: the live
// shards in ingest order followed by the in-memory tail (sealed
// memtables, then a frozen view of the active buffer). Row IDs are
// assigned in that order. The shards and sealed tables are immutable;
// the active view is stable by construction.
type View struct {
	Shards []ShardView
	Tail   []*memtable.ColumnTable
}

// NumRows is the snapshot's total row count.
func (v *View) NumRows() int64 {
	var n int64
	for _, s := range v.Shards {
		n += s.Rows
	}
	for _, m := range v.Tail {
		n += int64(m.NumRows())
	}
	return n
}

// Snapshot captures a consistent view for query execution.
func (t *Table) Snapshot() *View {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := &View{}
	for _, h := range t.shards {
		v.Shards = append(v.Shards, ShardView{File: h.meta.File, Rows: h.meta.Rows, Reader: h.r})
	}
	for _, e := range t.sealedQ {
		v.Tail = append(v.Tail, e.mem)
	}
	v.Tail = append(v.Tail, t.buf.Snapshot())
	return v
}

// ScrubReport is the result of a full integrity scrub.
type ScrubReport struct {
	ManifestSeq uint64
	Shards      int // live shards verified clean
	WalSegments int // non-active segments scrubbed
	WalRecords  int // intact records across them
	WalTorn     int // segments with a torn tail (discarded on recovery)
	Quarantined []QuarantinedShard
}

// Scrub verifies the manifest (reload + checksum), every live shard's
// checksums, and every non-active WAL segment's records. Quarantined
// shards are reported, not failed; corruption in live data is returned
// as an error.
func (t *Table) Scrub(ctx context.Context) (ScrubReport, error) {
	t.mu.Lock()
	shards := append([]*shardHandle(nil), t.shards...)
	rep := ScrubReport{Quarantined: append([]QuarantinedShard(nil), t.quarantined...)}
	activeSeq := t.walSeq
	floor := t.man.WalFloor
	t.mu.Unlock()

	man, err := loadManifest(t.fs, t.dir)
	if err != nil {
		return rep, err
	}
	rep.ManifestSeq = man.Seq
	for _, h := range shards {
		if err := h.r.Verify(ctx); err != nil {
			return rep, fmt.Errorf("shard %s: %w", h.meta.File, err)
		}
		rep.Shards++
	}
	entries, err := t.fs.ReadDir(t.dir)
	if err != nil {
		return rep, err
	}
	for _, name := range entries {
		seq, ok := wal.ParseSegmentName(name)
		if !ok || seq < floor || seq == activeSeq {
			continue // dead (pre-floor) or being written right now
		}
		res, err := wal.Scrub(t.fs, join(t.dir, name))
		if err != nil {
			return rep, fmt.Errorf("wal %s: %w", name, err)
		}
		rep.WalSegments++
		rep.WalRecords += res.Records
		if res.Torn {
			rep.WalTorn++
		}
	}
	return rep, nil
}

// Close stops the flusher and releases the WAL and shard readers.
// Sealed-but-unflushed memtables are NOT flushed: their rows are
// already durable in the WAL and replay on the next open (fast, crash-
// equivalent shutdown).
func (t *Table) Close() error {
	t.epochMu.Lock()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.epochMu.Unlock()
		return nil
	}
	t.closed = true
	t.cond.Broadcast()
	w := t.w
	t.w = nil
	t.mu.Unlock()
	t.epochMu.Unlock()
	<-t.flusherDone

	var first error
	if w != nil {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.closeShardsLocked(); err != nil && first == nil {
		first = err
	}
	return first
}

func (t *Table) closeShardsLocked() error {
	var first error
	for _, h := range t.shards {
		if err := h.r.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.shards = nil
	return first
}
