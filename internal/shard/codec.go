package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"codecdb/internal/memtable"
)

// Column is one column of a sharded table's schema, in the memtable
// type domain the WAL codec and ingest buffer share.
type Column struct {
	Name string
	Type memtable.ColType
}

// encodeRow frames one row as a WAL record payload: column values in
// schema order, int64/float64 as 8 little-endian bytes, binaries
// length-prefixed (FORMAT.md "WAL record payload"). It validates value
// types so malformed appends fail before touching the log.
func encodeRow(cols []Column, vals []any) ([]byte, error) {
	if len(vals) != len(cols) {
		return nil, fmt.Errorf("shard: %d values for %d columns", len(vals), len(cols))
	}
	size := 0
	for i, c := range cols {
		switch c.Type {
		case memtable.ColInt64, memtable.ColFloat64:
			size += 8
		case memtable.ColBinary:
			switch v := vals[i].(type) {
			case []byte:
				size += 4 + len(v)
			case string:
				size += 4 + len(v)
			case memtable.Binary:
				size += 4 + len(v)
			}
		}
	}
	buf := make([]byte, 0, size)
	for i, c := range cols {
		v := vals[i]
		switch c.Type {
		case memtable.ColInt64:
			switch x := v.(type) {
			case int64:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
			case int:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(x)))
			default:
				return nil, fmt.Errorf("shard: column %q wants int64, got %T", c.Name, v)
			}
		case memtable.ColFloat64:
			x, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("shard: column %q wants float64, got %T", c.Name, v)
			}
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		case memtable.ColBinary:
			var b []byte
			switch x := v.(type) {
			case []byte:
				b = x
			case string:
				b = []byte(x)
			case memtable.Binary:
				b = x
			default:
				return nil, fmt.Errorf("shard: column %q wants bytes, got %T", c.Name, v)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
			buf = append(buf, b...)
		default:
			return nil, fmt.Errorf("shard: column %q has unknown type %v", c.Name, c.Type)
		}
	}
	return buf, nil
}

// decodeRow parses one WAL record payload back into schema-typed
// values. Byte payloads are copied (record buffers are transient).
func decodeRow(cols []Column, payload []byte) ([]any, error) {
	vals := make([]any, len(cols))
	off := 0
	for i, c := range cols {
		switch c.Type {
		case memtable.ColInt64:
			if off+8 > len(payload) {
				return nil, fmt.Errorf("shard: record truncated at column %q", c.Name)
			}
			vals[i] = int64(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		case memtable.ColFloat64:
			if off+8 > len(payload) {
				return nil, fmt.Errorf("shard: record truncated at column %q", c.Name)
			}
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		case memtable.ColBinary:
			if off+4 > len(payload) {
				return nil, fmt.Errorf("shard: record truncated at column %q", c.Name)
			}
			n := int(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
			if off+n > len(payload) {
				return nil, fmt.Errorf("shard: record truncated at column %q", c.Name)
			}
			vals[i] = append([]byte(nil), payload[off:off+n]...)
			off += n
		}
	}
	if off != len(payload) {
		return nil, fmt.Errorf("shard: record has %d trailing bytes", len(payload)-off)
	}
	return vals, nil
}
