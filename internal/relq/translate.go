package relq

import (
	"bytes"
	"fmt"
	"sort"

	"codecdb/internal/colstore"
	"codecdb/internal/encoding"
	"codecdb/internal/ops"
)

// Key-space translation: to probe a join on dictionary codes, build-side
// values must first be mapped into the probe column's dict space. The
// dictionaries are order-preserving (sorted), so each value binary-
// searches to its code; absent values map to -1, a code no probe row
// carries, making the miss semantics of semi/anti/inner joins fall out
// naturally. This runs once per query over the (small) build side — the
// probe side never decodes a value.

// TranslateStr maps build-side string values into col's dictionary code
// space; values absent from the dictionary become -1.
func TranslateStr(r *colstore.Reader, col string, vals [][]byte) ([]int64, error) {
	ci, c, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	if c.Encoding != encoding.KindDict && c.Encoding != encoding.KindDictRLE {
		return nil, fmt.Errorf("relq: %q is not dictionary-encoded", col)
	}
	dict, err := r.StrDict(ci)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		k := sort.Search(len(dict), func(j int) bool { return bytes.Compare(dict[j], v) >= 0 })
		if k < len(dict) && bytes.Equal(dict[k], v) {
			out[i] = int64(k)
		} else {
			out[i] = -1
		}
	}
	return out, nil
}

// TranslateInt maps build-side int values into col's dictionary code
// space; values absent from the dictionary become -1.
func TranslateInt(r *colstore.Reader, col string, vals []int64) ([]int64, error) {
	ci, c, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	if c.Encoding != encoding.KindDict && c.Encoding != encoding.KindDictRLE {
		return nil, fmt.Errorf("relq: %q is not dictionary-encoded", col)
	}
	dict, err := r.IntDict(ci)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		k := sort.Search(len(dict), func(j int) bool { return dict[j] >= v })
		if k < len(dict) && dict[k] == v {
			out[i] = int64(k)
		} else {
			out[i] = -1
		}
	}
	return out, nil
}

// StrCode returns one string's code in col's dictionary, or -1.
func StrCode(r *colstore.Reader, col string, v []byte) int64 {
	codes, err := TranslateStr(r, col, [][]byte{v})
	if err != nil {
		return -1
	}
	return codes[0]
}

// DecodeKeys maps an int64 batch column of dict codes for col back to
// values (the final projection of a late-materialized plan). Code -1
// decodes to nil.
func DecodeKeys(r *colstore.Reader, col string, codes []int64) ([][]byte, error) {
	ci, _, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	dict, err := r.StrDict(ci)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(codes))
	for i, k := range codes {
		if k >= 0 && int(k) < len(dict) {
			out[i] = dict[k]
		}
	}
	return out, nil
}

// DecodeBatchKeys rewrites batch column name (dict codes for col) into
// its decoded string values in place.
func DecodeBatchKeys(r *colstore.Reader, b *ops.Batch, name, col string) error {
	j := b.Col(name)
	if j < 0 {
		return fmt.Errorf("relq: batch has no column %q", name)
	}
	if b.Kinds[j] != ops.RelInt {
		return fmt.Errorf("relq: batch column %q is not int-typed", name)
	}
	vals, err := DecodeKeys(r, col, b.Ints[j])
	if err != nil {
		return err
	}
	b.Kinds[j] = ops.RelStr
	b.Ints[j] = nil
	b.Strs[j] = vals
	return nil
}
