// Package relq is the relational query builder over the morsel pipeline:
// it compiles filters, late-materialized hash joins, residual row
// predicates, multi-column group-by, and order-by/limit into an
// ops.RelPlan and runs it through ops.RunRelPipeline. Both benchmark
// suites (internal/tpch, internal/ssb) and the public codecdb.Query API
// compile through this package, so there is exactly one relational
// executor in the engine.
//
// The central trick is the dictionary key space: a column name prefixed
// with "#" denotes the dict-code view of a dict-encoded column. Joins
// probe on those codes, and build sides are translated into the probe
// side's code space once per query (TranslateStr/TranslateInt), so
// equi-joins over encoded columns never decode a string. Group-by keys on
// "#col" automatically learn the dictionary cardinality as their packed
// domain.
package relq

import (
	"context"
	"fmt"
	"strings"

	"codecdb/internal/colstore"
	"codecdb/internal/exec"
	"codecdb/internal/obs"
	"codecdb/internal/ops"
)

// Q is an under-construction relational query over one probe table.
// Builder methods accumulate; the first error sticks and surfaces at the
// terminal.
type Q struct {
	r      *colstore.Reader
	pool   *exec.Pool
	ctx    context.Context
	preds  []*ops.Pred
	stages []ops.RelStage
	err    error
}

// Scan starts a query over one table.
func Scan(r *colstore.Reader, pool *exec.Pool) *Q {
	return &Q{r: r, pool: pool, ctx: context.Background()}
}

// WithContext sets the execution context (tracing spans, prefetch and
// worker knobs, cancellation).
func (q *Q) WithContext(ctx context.Context) *Q {
	q.ctx = ctx
	return q
}

func (q *Q) fail(err error) *Q {
	if q.err == nil {
		q.err = err
	}
	return q
}

// Where adds a scan filter conjunct (planned and morselized with the rest
// of the predicate tree, ahead of every join stage).
func (q *Q) Where(f ops.Filter) *Q {
	q.preds = append(q.preds, ops.LeafPred(f))
	return q
}

// WherePred adds an arbitrary predicate tree conjunct.
func (q *Q) WherePred(p *ops.Pred) *Q {
	q.preds = append(q.preds, p)
	return q
}

// input parses a column reference: "#name" is the dictionary-code view of
// a dict-encoded scan column, "stage.name" a payload column of an earlier
// join stage, plain "name" a scan column typed from the schema.
func (q *Q) input(ref string) (ops.RelInput, error) {
	if strings.HasPrefix(ref, "#") {
		return ops.RelInput{FromStage: -1, Col: ref[1:], Kind: ops.RelKey}, nil
	}
	if dot := strings.IndexByte(ref, '.'); dot >= 0 {
		stage, col := ref[:dot], ref[dot+1:]
		for si := range q.stages {
			if q.stages[si].Name == stage {
				in := ops.RelInput{FromStage: si, Col: col}
				if p := q.stages[si].Payload; p != nil {
					if bc := p.Col(col); bc >= 0 {
						in.Kind = p.Kinds[bc]
					}
				}
				return in, nil
			}
		}
		return ops.RelInput{}, fmt.Errorf("relq: no stage %q for input %q", stage, ref)
	}
	_, c, err := q.r.Column(ref)
	if err != nil {
		return ops.RelInput{}, err
	}
	kind := ops.RelInt
	switch c.Type {
	case colstore.TypeFloat64:
		kind = ops.RelFloat
	case colstore.TypeString:
		kind = ops.RelStr
	}
	return ops.RelInput{FromStage: -1, Col: ref, Kind: kind}, nil
}

func (q *Q) inputs(refs []string) ([]ops.RelInput, error) {
	out := make([]ops.RelInput, len(refs))
	for i, ref := range refs {
		in, err := q.input(ref)
		if err != nil {
			return nil, err
		}
		out[i] = in
	}
	return out, nil
}

// join appends one probe stage keyed on a single probe column.
func (q *Q) join(kind ops.RelJoinKind, name string, keys []int64, payload *ops.Batch, probeKey string) *Q {
	if q.err != nil {
		return q
	}
	in, err := q.input(probeKey)
	if err != nil {
		return q.fail(err)
	}
	if in.Kind != ops.RelInt && in.Kind != ops.RelKey {
		return q.fail(fmt.Errorf("relq: join key %q is not int-typed", probeKey))
	}
	q.stages = append(q.stages, ops.RelStage{
		Name: name, Kind: kind,
		Keys:    []ops.RelInput{in},
		Table:   ops.NewJoinTable(keys),
		Payload: payload,
	})
	return q
}

// Semi keeps probe rows whose probeKey value appears in keys.
func (q *Q) Semi(name string, keys []int64, probeKey string) *Q {
	return q.join(ops.RelSemi, name, keys, nil, probeKey)
}

// Anti keeps probe rows whose probeKey value does not appear in keys.
func (q *Q) Anti(name string, keys []int64, probeKey string) *Q {
	return q.join(ops.RelAnti, name, keys, nil, probeKey)
}

// Join inner-joins the build batch on probeKey = keys[i] (build row i),
// attaching the batch's columns as "name.col" payload inputs.
func (q *Q) Join(name string, keys []int64, payload *ops.Batch, probeKey string) *Q {
	return q.join(ops.RelInner, name, keys, payload, probeKey)
}

// LeftJoin is Join keeping unmatched probe rows (payload reads as zero
// values).
func (q *Q) LeftJoin(name string, keys []int64, payload *ops.Batch, probeKey string) *Q {
	return q.join(ops.RelLeft, name, keys, payload, probeKey)
}

// JoinOn is Join with a composite probe key: fn combines the probe
// columns' values (given as vecs[j][i]) into the int64 key space the
// build keys live in.
func (q *Q) JoinOn(kind ops.RelJoinKind, name string, keys []int64, payload *ops.Batch,
	probeKeys []string, fn func(vecs [][]int64, i int) int64) *Q {
	if q.err != nil {
		return q
	}
	ins := make([]ops.RelInput, len(probeKeys))
	for j, ref := range probeKeys {
		in, err := q.input(ref)
		if err != nil {
			return q.fail(err)
		}
		ins[j] = in
	}
	q.stages = append(q.stages, ops.RelStage{
		Name: name, Kind: kind,
		Keys: ins, KeyFn: fn,
		Table:   ops.NewJoinTable(keys),
		Payload: payload,
	})
	return q
}

// Row is a positional row view over a residual filter's or sink's inputs.
type Row struct {
	E *ops.RelEnv
	I int
}

// Int reads input j of the row as int64 (also dict codes).
func (r Row) Int(j int) int64 { return r.E.I[j][r.I] }

// Float reads input j of the row as float64.
func (r Row) Float(j int) float64 { return r.E.F[j][r.I] }

// Str reads input j of the row as bytes.
func (r Row) Str(j int) []byte { return r.E.S[j][r.I] }

// WhereRow adds a residual row-level filter over the named inputs
// (non-equi join conditions, cross-column predicates). It runs after
// every earlier stage, in input order.
func (q *Q) WhereRow(name string, refs []string, keep func(Row) bool) *Q {
	if q.err != nil {
		return q
	}
	ins, err := q.inputs(refs)
	if err != nil {
		return q.fail(err)
	}
	q.stages = append(q.stages, ops.RelStage{
		Name: name, Kind: ops.RelRowFilter,
		Inputs: ins,
		Keep:   func(e *ops.RelEnv, i int) bool { return keep(Row{E: e, I: i}) },
	})
	return q
}

// GKey is one group-by key. Ref names a sink input; a "#col" ref groups
// on dict codes and learns [0, cardinality) as its packed domain
// automatically. Fn, when set, computes the key from the whole row
// instead (declare Lo/Hi to keep the packed fast path).
type GKey struct {
	Name   string
	Ref    string
	Fn     func(Row) int64
	Lo, Hi int64
}

// GAgg is one aggregate over the sink inputs.
type GAgg struct {
	Name string
	Kind ops.RelAggKind
	Ref  string
	FnI  func(Row) int64
	FnF  func(Row) float64
}

// GroupBy executes the plan with a grouped sink and returns the result
// batch: key columns first (sorted ascending by key tuple), then one
// column per aggregate.
func (q *Q) GroupBy(keys []GKey, aggs []GAgg) (*ops.Batch, error) {
	return q.GroupByOver(nil, keys, aggs)
}

// GroupByOver is GroupBy with explicitly pre-registered sink inputs: refs
// become row inputs 0..len(refs)-1 in order, so Fn-computed keys and
// aggregates can address them positionally via Row.Int/Float/Str. Ref-based
// keys and aggregates dedupe against the same slots.
func (q *Q) GroupByOver(refs []string, keys []GKey, aggs []GAgg) (*ops.Batch, error) {
	if q.err != nil {
		return nil, q.err
	}
	sink := ops.RelSink{Group: &ops.RelGroup{}}
	names := make([]string, 0, len(keys)+len(aggs))
	refIdx := map[string]int{}
	addInput := func(ref string) (int, error) {
		if j, ok := refIdx[ref]; ok {
			return j, nil
		}
		in, err := q.input(ref)
		if err != nil {
			return 0, err
		}
		sink.Inputs = append(sink.Inputs, in)
		refIdx[ref] = len(sink.Inputs) - 1
		return len(sink.Inputs) - 1, nil
	}
	for _, ref := range refs {
		if _, err := addInput(ref); err != nil {
			return nil, err
		}
	}
	for _, k := range keys {
		gk := ops.RelGroupKey{Lo: k.Lo, Hi: k.Hi, Input: -1}
		if k.Fn != nil {
			fn := k.Fn
			gk.Fn = func(e *ops.RelEnv, i int) int64 { return fn(Row{E: e, I: i}) }
		} else {
			j, err := addInput(k.Ref)
			if err != nil {
				return nil, err
			}
			gk.Input = j
			in := sink.Inputs[j]
			switch {
			case in.Kind == ops.RelStr:
				gk.Str = true
			case in.Kind == ops.RelKey && gk.Hi <= gk.Lo:
				card, err := q.dictCard(in.Col)
				if err != nil {
					return nil, err
				}
				gk.Lo, gk.Hi = 0, int64(card)
			}
		}
		sink.Group.Keys = append(sink.Group.Keys, gk)
		names = append(names, k.Name)
	}
	for _, a := range aggs {
		ga := ops.RelAgg{Kind: a.Kind, Input: -1}
		switch {
		case a.FnI != nil:
			fn := a.FnI
			ga.FnI = func(e *ops.RelEnv, i int) int64 { return fn(Row{E: e, I: i}) }
		case a.FnF != nil:
			fn := a.FnF
			ga.FnF = func(e *ops.RelEnv, i int) float64 { return fn(Row{E: e, I: i}) }
		case a.Kind != ops.RelAggCount:
			j, err := addInput(a.Ref)
			if err != nil {
				return nil, err
			}
			ga.Input = j
		}
		sink.Group.Aggs = append(sink.Group.Aggs, ga)
		names = append(names, a.Name)
	}
	return q.run(sink, names)
}

// SortBy orders a collected output by one column.
type SortBy struct {
	Ref  string
	Desc bool
}

// Rows executes the plan with a collect sink and returns the named inputs
// as output columns in table order.
func (q *Q) Rows(refs ...string) (*ops.Batch, error) {
	return q.collect(refs, nil, 0)
}

// Sorted is Rows ordered by the given keys (full sort at merge).
func (q *Q) Sorted(refs []string, by ...SortBy) (*ops.Batch, error) {
	return q.collect(refs, by, 0)
}

// TopK is Sorted with a per-worker top-k short-circuit: each worker keeps
// a bounded buffer, and the merge sorts only the survivors. Ties break by
// table order, so the result is deterministic.
func (q *Q) TopK(refs []string, k int, by ...SortBy) (*ops.Batch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("relq: TopK needs k > 0, got %d", k)
	}
	if len(by) == 0 {
		return nil, fmt.Errorf("relq: TopK needs at least one sort key")
	}
	return q.collect(refs, by, k)
}

func (q *Q) collect(refs []string, by []SortBy, k int) (*ops.Batch, error) {
	if q.err != nil {
		return nil, q.err
	}
	ins, err := q.inputs(refs)
	if err != nil {
		return nil, err
	}
	sink := ops.RelSink{Inputs: ins, Collect: &ops.RelCollect{K: k}}
	for _, s := range by {
		found := -1
		for j, ref := range refs {
			if ref == s.Ref {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("relq: sort key %q is not a collected column", s.Ref)
		}
		sink.Collect.Sort = append(sink.Collect.Sort, ops.RelSortKey{Input: found, Desc: s.Desc})
	}
	names := make([]string, len(refs))
	for i, ref := range refs {
		names[i] = strings.TrimPrefix(ref, "#")
	}
	return q.run(sink, names)
}

// Count executes the plan and returns the number of rows reaching the
// sink.
func (q *Q) Count() (int64, error) {
	b, err := q.GroupBy(nil, []GAgg{{Name: "count", Kind: ops.RelAggCount}})
	if err != nil {
		return 0, err
	}
	if b.N == 0 {
		return 0, nil
	}
	return b.Ints[0][0], nil
}

// run assembles the RelPlan and executes it on the morsel pipeline.
func (q *Q) run(sink ops.RelSink, names []string) (*ops.Batch, error) {
	var plan *ops.Plan
	if len(q.preds) > 0 {
		// Planning can read dictionaries and column stats (dict rewrites,
		// conjunct ordering); under a trace that IO is booked on a Plan
		// child so the span tree still sums to the reader's IOStats delta.
		sp := obs.SpanFrom(q.ctx)
		var ps *obs.Span
		var before colstore.IOStats
		if sp != nil {
			ps = sp.StartChild("Plan")
			before = q.r.Stats()
		}
		plan = ops.BuildPlan(ops.AndPred(q.preds...), q.r)
		if ps != nil {
			after := q.r.Stats()
			ps.AddIO(obs.SpanIO{
				PagesRead:         after.PagesRead - before.PagesRead,
				PagesPruned:       after.PagesPruned - before.PagesPruned,
				PagesSkipped:      after.PagesSkipped - before.PagesSkipped,
				BytesRead:         after.BytesRead - before.BytesRead,
				BytesDecompressed: after.BytesDecompressed - before.BytesDecompressed,
			})
			ps.End()
		}
	}
	rp := &ops.RelPlan{Stages: q.stages, Sink: sink, Names: names}
	return ops.RunRelPipeline(q.ctx, q.r, q.pool, plan, rp)
}

// dictCard reports the dictionary cardinality of a dict-encoded column.
func (q *Q) dictCard(col string) (int, error) {
	ci, c, err := q.r.Column(col)
	if err != nil {
		return 0, err
	}
	switch c.Type {
	case colstore.TypeInt64:
		d, err := q.r.IntDict(ci)
		return len(d), err
	case colstore.TypeString:
		d, err := q.r.StrDict(ci)
		return len(d), err
	}
	return 0, fmt.Errorf("relq: column %q has no dictionary", col)
}
