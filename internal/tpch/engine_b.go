package tpch

import (
	"bytes"

	"codecdb/internal/memtable"
	"codecdb/internal/ops"
	"codecdb/internal/relq"
	"codecdb/internal/sboost"
)

func q9Engine(t *Tables) (*memtable.RowTable, error) {
	pb, err := relq.Scan(t.P, t.Pool).
		Where(&ops.StrPredicateFilter{Col: "p_name", Pred: func(v []byte) bool {
			return bytes.Contains(v, []byte("green"))
		}}).
		Rows("p_partkey")
	if err != nil {
		return nil, err
	}
	nKey, err := ops.ReadAllInts(t.N, "n_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	nName, err := ops.ReadAllStrings(t.N, "n_name", t.Pool)
	if err != nil {
		return nil, err
	}
	names := map[int64][]byte{}
	for i, k := range nKey {
		names[k] = nName[i]
	}
	oKey, err := ops.ReadAllInts(t.O, "o_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oDate, err := ops.ReadAllInts(t.O, "o_orderdate", t.Pool)
	if err != nil {
		return nil, err
	}
	psPart, err := ops.ReadAllInts(t.PS, "ps_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	psSupp, err := ops.ReadAllInts(t.PS, "ps_suppkey", t.Pool)
	if err != nil {
		return nil, err
	}
	psCost, err := ops.ReadAllFloats(t.PS, "ps_supplycost", t.Pool)
	if err != nil {
		return nil, err
	}
	sKey, sSide, err := suppNationSide(t)
	if err != nil {
		return nil, err
	}
	nSupp := int64(len(sKey))
	psKeys := make([]int64, len(psPart))
	for i := range psPart {
		psKeys[i] = psPart[i]*nSupp + psSupp[i]
	}
	b, err := relq.Scan(t.L, t.Pool).
		Semi("p", bInts(pb, "p_partkey"), "l_partkey").
		JoinOn(ops.RelLeft, "ps", psKeys, (&ops.Batch{}).AddFloats("cost", psCost),
			[]string{"l_partkey", "l_suppkey"},
			func(vecs [][]int64, i int) int64 { return vecs[0][i]*nSupp + vecs[1][i] }).
		Join("o", oKey, (&ops.Batch{}).AddInts("od", oDate), "l_orderkey").
		Join("s", sKey, sSide, "l_suppkey").
		GroupByOver(
			[]string{"s.sn", "o.od", "l_quantity", "l_extendedprice", "l_discount", "ps.cost"},
			[]relq.GKey{
				{Name: "sn", Ref: "s.sn", Lo: 0, Hi: 25},
				{Name: "year", Fn: func(r relq.Row) int64 { return yearOf(r.Int(1)) }, Lo: 1992, Hi: 1999},
			},
			[]relq.GAgg{{Name: "profit", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(3)*(1-r.Float(4)) - r.Float(5)*float64(r.Int(2))
			}}})
	if err != nil {
		return nil, err
	}
	sn, year, profit := bInts(b, "sn"), bInts(b, "year"), bFloats(b, "profit")
	rows := make([][]any, 0, b.N)
	for i := 0; i < b.N; i++ {
		rows = append(rows, []any{bin(names[sn[i]]), year[i], round2(profit[i])})
	}
	sortRows(rows, 0, -2)
	return emit(q9Names, q9Types, rows, 0), nil
}

func q10Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1993, 10, 1), Date(1994, 1, 1)
	ob, err := relq.Scan(t.O, t.Pool).
		Where(dGe("o_orderdate", lo)).
		Where(dLt("o_orderdate", hi)).
		Rows("o_orderkey", "o_custkey")
	if err != nil {
		return nil, err
	}
	lb, err := relq.Scan(t.L, t.Pool).
		Where(dEqS("l_returnflag", "R")).
		Join("o", bInts(ob, "o_orderkey"),
			(&ops.Batch{}).AddInts("ck", bInts(ob, "o_custkey")), "l_orderkey").
		GroupByOver(
			[]string{"o.ck", "l_extendedprice", "l_discount"},
			[]relq.GKey{{Name: "ck", Ref: "o.ck", Lo: 0, Hi: t.C.NumRows() + 1}},
			[]relq.GAgg{{Name: "rev", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(1) * (1 - r.Float(2))
			}}})
	if err != nil {
		return nil, err
	}
	ck, rev := bInts(lb, "ck"), bFloats(lb, "rev")
	revenue := make(map[int64]float64, lb.N)
	for i := 0; i < lb.N; i++ {
		revenue[ck[i]] = rev[i]
	}
	return q10Finish(t, revenue)
}

func q11Engine(t *Tables) (*memtable.RowTable, error) {
	supp, err := germanSuppliers(t)
	if err != nil {
		return nil, err
	}
	suppKeys := make([]int64, 0, len(supp))
	for k := range supp {
		suppKeys = append(suppKeys, k)
	}
	b, err := relq.Scan(t.PS, t.Pool).
		Semi("de", suppKeys, "ps_suppkey").
		GroupByOver(
			[]string{"ps_availqty", "ps_supplycost"},
			[]relq.GKey{{Name: "pk", Ref: "ps_partkey", Lo: 0, Hi: t.P.NumRows() + 1}},
			[]relq.GAgg{{Name: "value", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(1) * float64(r.Int(0))
			}}})
	if err != nil {
		return nil, err
	}
	pk, value := bInts(b, "pk"), bFloats(b, "value")
	var total float64
	for i := 0; i < b.N; i++ {
		total += value[i]
	}
	threshold := total * q11Fraction
	var rows [][]any
	for i := 0; i < b.N; i++ {
		if value[i] > threshold {
			rows = append(rows, []any{pk[i], round2(value[i])})
		}
	}
	sortRows(rows, -2, 0)
	return emit(q11Names, q11Types, rows, 0), nil
}

func q12Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	oKey, err := ops.ReadAllInts(t.O, "o_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	prio, err := ops.ReadAllStrings(t.O, "o_orderpriority", t.Pool)
	if err != nil {
		return nil, err
	}
	b, err := relq.Scan(t.L, t.Pool).
		Where(&ops.DictInFilter{Col: "l_shipmode", StrValues: [][]byte{[]byte("MAIL"), []byte("SHIP")}}).
		Where(&ops.TwoColumnFilter{ColA: "l_commitdate", ColB: "l_receiptdate", Op: sboost.OpLt}).
		Where(&ops.TwoColumnFilter{ColA: "l_shipdate", ColB: "l_commitdate", Op: sboost.OpLt}).
		Where(dGe("l_receiptdate", lo)).
		Where(dLt("l_receiptdate", hi)).
		Join("o", oKey, (&ops.Batch{}).AddStrs("prio", prio), "l_orderkey").
		GroupByOver(
			[]string{"o.prio"},
			[]relq.GKey{{Name: "mode", Ref: "#l_shipmode"}},
			[]relq.GAgg{
				{Name: "high", Kind: ops.RelAggSumInt, FnI: func(r relq.Row) int64 {
					if isHighPriority(r.Str(0)) {
						return 1
					}
					return 0
				}},
				{Name: "low", Kind: ops.RelAggSumInt, FnI: func(r relq.Row) int64 {
					if isHighPriority(r.Str(0)) {
						return 0
					}
					return 1
				}},
			})
	if err != nil {
		return nil, err
	}
	modes, err := relq.DecodeKeys(t.L, "l_shipmode", bInts(b, "mode"))
	if err != nil {
		return nil, err
	}
	high, low := bInts(b, "high"), bInts(b, "low")
	counts := make(map[string][2]int64, b.N)
	for i := 0; i < b.N; i++ {
		counts[string(modes[i])] = [2]int64{high[i], low[i]}
	}
	return q12Finish(counts), nil
}

func q13Engine(t *Tables) (*memtable.RowTable, error) {
	b, err := relq.Scan(t.O, t.Pool).
		Where(&ops.StrPredicateFilter{Col: "o_comment", Pred: func(v []byte) bool {
			i := bytes.Index(v, []byte("special"))
			return i < 0 || !bytes.Contains(v[i:], []byte("requests"))
		}}).
		GroupBy(
			[]relq.GKey{{Name: "ck", Ref: "o_custkey", Lo: 0, Hi: t.C.NumRows() + 1}},
			[]relq.GAgg{{Name: "n", Kind: ops.RelAggCount}})
	if err != nil {
		return nil, err
	}
	ck, n := bInts(b, "ck"), bInts(b, "n")
	counts := make(map[int64]int64, b.N)
	for i := 0; i < b.N; i++ {
		counts[ck[i]] = n[i]
	}
	return q13Shared(t, counts, int(t.C.NumRows())), nil
}

func q14Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1995, 9, 1), Date(1995, 10, 1)
	pb, err := relq.Scan(t.P, t.Pool).
		Where(&ops.DictLikeFilter{Col: "p_type", Match: func(e []byte) bool {
			return bytes.HasPrefix(e, []byte("PROMO"))
		}}).
		Rows("p_partkey")
	if err != nil {
		return nil, err
	}
	promoKeys := bInts(pb, "p_partkey")
	flags := make([]int64, len(promoKeys))
	for i := range flags {
		flags[i] = 1
	}
	b, err := relq.Scan(t.L, t.Pool).
		Where(dGe("l_shipdate", lo)).
		Where(dLt("l_shipdate", hi)).
		LeftJoin("p", promoKeys, (&ops.Batch{}).AddInts("flag", flags), "l_partkey").
		GroupByOver(
			[]string{"l_extendedprice", "l_discount", "p.flag"}, nil,
			[]relq.GAgg{
				{Name: "total", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
					return r.Float(0) * (1 - r.Float(1))
				}},
				{Name: "promo", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
					return r.Float(0) * (1 - r.Float(1)) * float64(r.Int(2))
				}},
			})
	if err != nil {
		return nil, err
	}
	var promo, total float64
	if b.N > 0 {
		total = bFloats(b, "total")[0]
		promo = bFloats(b, "promo")[0]
	}
	return q14Finish(promo, total), nil
}

func q15Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1996, 1, 1), Date(1996, 4, 1)
	b, err := relq.Scan(t.L, t.Pool).
		Where(dGe("l_shipdate", lo)).
		Where(dLt("l_shipdate", hi)).
		GroupByOver(
			[]string{"l_extendedprice", "l_discount"},
			[]relq.GKey{{Name: "sk", Ref: "l_suppkey", Lo: 0, Hi: t.S.NumRows() + 1}},
			[]relq.GAgg{{Name: "rev", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(0) * (1 - r.Float(1))
			}}})
	if err != nil {
		return nil, err
	}
	sk, rev := bInts(b, "sk"), bFloats(b, "rev")
	revenue := make(map[int64]float64, b.N)
	for i := 0; i < b.N; i++ {
		revenue[sk[i]] = rev[i]
	}
	return q15Finish(t, revenue)
}
