package tpch

import (
	"bytes"

	"codecdb/internal/memtable"
	"codecdb/internal/ops"
	"codecdb/internal/relq"
	"codecdb/internal/sboost"
)

func q1Engine(t *Tables) (*memtable.RowTable, error) {
	cutoff := Date(1998, 9, 2)
	b, err := relq.Scan(t.L, t.Pool).
		Where(dLe("l_shipdate", cutoff)).
		GroupByOver(
			[]string{"l_quantity", "l_extendedprice", "l_discount", "l_tax"},
			[]relq.GKey{{Name: "rf", Ref: "#l_returnflag"}, {Name: "ls", Ref: "#l_linestatus"}},
			[]relq.GAgg{
				{Name: "sum_qty", Kind: ops.RelAggSumInt, Ref: "l_quantity"},
				{Name: "sum_base_price", Kind: ops.RelAggSumFloat, Ref: "l_extendedprice"},
				{Name: "sum_disc_price", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
					return r.Float(1) * (1 - r.Float(2))
				}},
				{Name: "sum_charge", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
					return r.Float(1) * (1 - r.Float(2)) * (1 + r.Float(3))
				}},
				{Name: "sum_disc", Kind: ops.RelAggSumFloat, Ref: "l_discount"},
				{Name: "count_order", Kind: ops.RelAggCount},
			})
	if err != nil {
		return nil, err
	}
	rf, err := relq.DecodeKeys(t.L, "l_returnflag", bInts(b, "rf"))
	if err != nil {
		return nil, err
	}
	ls, err := relq.DecodeKeys(t.L, "l_linestatus", bInts(b, "ls"))
	if err != nil {
		return nil, err
	}
	qty, price := bInts(b, "sum_qty"), bFloats(b, "sum_base_price")
	discPrice, charge := bFloats(b, "sum_disc_price"), bFloats(b, "sum_charge")
	disc, count := bFloats(b, "sum_disc"), bInts(b, "count_order")
	rows := make([][]any, 0, b.N)
	for i := 0; i < b.N; i++ {
		n := float64(count[i])
		rows = append(rows, []any{
			bin(rf[i]), bin(ls[i]),
			round2(float64(qty[i])), round2(price[i]), round2(discPrice[i]), round2(charge[i]),
			round2(float64(qty[i]) / n), round2(price[i] / n), round2(disc[i] / n), count[i],
		})
	}
	sortRows(rows, 0, 1)
	return emit(q1Names, q1Types, rows, 0), nil
}

func q2Engine(t *Tables) (*memtable.RowTable, error) {
	pb, err := relq.Scan(t.P, t.Pool).
		Where(&ops.DictLikeFilter{Col: "p_type", Match: func(e []byte) bool {
			return bytes.HasSuffix(e, []byte("BRASS"))
		}}).
		Where(&ops.IntPredicateFilter{Col: "p_size", Pred: func(v int64) bool { return v == 15 }}).
		Rows("p_partkey")
	if err != nil {
		return nil, err
	}
	euroNations, nationName, err := nationsOfRegion(t, "EUROPE")
	if err != nil {
		return nil, err
	}
	sKey, err := ops.ReadAllInts(t.S, "s_suppkey", t.Pool)
	if err != nil {
		return nil, err
	}
	sNation, err := ops.ReadAllInts(t.S, "s_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	sName, err := ops.ReadAllStrings(t.S, "s_name", t.Pool)
	if err != nil {
		return nil, err
	}
	sBal, err := ops.ReadAllFloats(t.S, "s_acctbal", t.Pool)
	if err != nil {
		return nil, err
	}
	var euroSupp []int64
	for i := range sKey {
		if euroNations[sNation[i]] {
			euroSupp = append(euroSupp, sKey[i])
		}
	}
	psb, err := relq.Scan(t.PS, t.Pool).
		Semi("pt", bInts(pb, "p_partkey"), "ps_partkey").
		Semi("eu", euroSupp, "ps_suppkey").
		Rows("ps_partkey", "ps_suppkey", "ps_supplycost")
	if err != nil {
		return nil, err
	}
	pk, sk := bInts(psb, "ps_partkey"), bInts(psb, "ps_suppkey")
	cost := bFloats(psb, "ps_supplycost")
	minCost := map[int64]float64{}
	for i := 0; i < psb.N; i++ {
		if c, ok := minCost[pk[i]]; !ok || cost[i] < c {
			minCost[pk[i]] = cost[i]
		}
	}
	var rows [][]any
	for i := 0; i < psb.N; i++ {
		if cost[i] != minCost[pk[i]] {
			continue
		}
		si := sk[i] - 1
		rows = append(rows, []any{round2(sBal[si]), bin(sName[si]), bin(nationName[sNation[si]]), pk[i]})
	}
	sortRows(rows, -1, 2, 1, 3)
	return emit(q2Names, q2Types, rows, 100), nil
}

func q3Engine(t *Tables) (*memtable.RowTable, error) {
	cutoff := Date(1995, 3, 15)
	cb, err := relq.Scan(t.C, t.Pool).
		Where(dEqS("c_mktsegment", "BUILDING")).
		Rows("c_custkey")
	if err != nil {
		return nil, err
	}
	ob, err := relq.Scan(t.O, t.Pool).
		Where(dLt("o_orderdate", cutoff)).
		Semi("c", bInts(cb, "c_custkey"), "o_custkey").
		Rows("o_orderkey", "o_orderdate")
	if err != nil {
		return nil, err
	}
	orderKeys, oDate := bInts(ob, "o_orderkey"), bInts(ob, "o_orderdate")
	orderDate := make(map[int64]int64, ob.N)
	for i := 0; i < ob.N; i++ {
		orderDate[orderKeys[i]] = oDate[i]
	}
	lb, err := relq.Scan(t.L, t.Pool).
		Where(dGt("l_shipdate", cutoff)).
		Semi("o", orderKeys, "l_orderkey").
		GroupByOver(
			[]string{"l_orderkey", "l_extendedprice", "l_discount"},
			[]relq.GKey{{Name: "ok", Ref: "l_orderkey", Lo: 0, Hi: t.O.NumRows() + 1}},
			[]relq.GAgg{{Name: "rev", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(1) * (1 - r.Float(2))
			}}})
	if err != nil {
		return nil, err
	}
	ok, rev := bInts(lb, "ok"), bFloats(lb, "rev")
	orderRevenue := make(map[int64]float64, lb.N)
	for i := 0; i < lb.N; i++ {
		orderRevenue[ok[i]] = rev[i]
	}
	return q3Finish(t, orderRevenue, orderDate), nil
}

func q4Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1993, 7, 1), Date(1993, 10, 1)
	lb, err := relq.Scan(t.L, t.Pool).
		Where(&ops.TwoColumnFilter{ColA: "l_commitdate", ColB: "l_receiptdate", Op: sboost.OpLt}).
		Rows("l_orderkey")
	if err != nil {
		return nil, err
	}
	ob, err := relq.Scan(t.O, t.Pool).
		Where(dGe("o_orderdate", lo)).
		Where(dLt("o_orderdate", hi)).
		Semi("late", bInts(lb, "l_orderkey"), "o_orderkey").
		GroupBy(
			[]relq.GKey{{Name: "prio", Ref: "#o_orderpriority"}},
			[]relq.GAgg{{Name: "n", Kind: ops.RelAggCount}})
	if err != nil {
		return nil, err
	}
	prios, err := relq.DecodeKeys(t.O, "o_orderpriority", bInts(ob, "prio"))
	if err != nil {
		return nil, err
	}
	n := bInts(ob, "n")
	counts := make(map[string]int64, ob.N)
	for i := 0; i < ob.N; i++ {
		counts[string(prios[i])] = n[i]
	}
	return q4Finish(counts), nil
}

func q5Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	asia, nationName, err := nationsOfRegion(t, "ASIA")
	if err != nil {
		return nil, err
	}
	ob, err := relq.Scan(t.O, t.Pool).
		Where(dGe("o_orderdate", lo)).
		Where(dLt("o_orderdate", hi)).
		Rows("o_orderkey", "o_custkey")
	if err != nil {
		return nil, err
	}
	cNation, err := ops.ReadAllInts(t.C, "c_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oKey, oCust := bInts(ob, "o_orderkey"), bInts(ob, "o_custkey")
	var oks, ocn []int64
	for i := 0; i < ob.N; i++ {
		cn := cNation[oCust[i]-1]
		if asia[cn] {
			oks = append(oks, oKey[i])
			ocn = append(ocn, cn)
		}
	}
	sKey, sSide, err := suppNationSide(t)
	if err != nil {
		return nil, err
	}
	b, err := relq.Scan(t.L, t.Pool).
		Join("o", oks, (&ops.Batch{}).AddInts("cn", ocn), "l_orderkey").
		Join("s", sKey, sSide, "l_suppkey").
		WhereRow("local", []string{"o.cn", "s.sn"}, func(r relq.Row) bool {
			return r.Int(0) == r.Int(1)
		}).
		GroupByOver(
			[]string{"o.cn", "l_extendedprice", "l_discount"},
			[]relq.GKey{{Name: "cn", Ref: "o.cn", Lo: 0, Hi: 25}},
			[]relq.GAgg{{Name: "rev", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(1) * (1 - r.Float(2))
			}}})
	if err != nil {
		return nil, err
	}
	cn, rev := bInts(b, "cn"), bFloats(b, "rev")
	rows := make([][]any, 0, b.N)
	for i := 0; i < b.N; i++ {
		rows = append(rows, []any{bin(nationName[cn[i]]), round2(rev[i])})
	}
	sortRows(rows, -2)
	return emit(q5Names, q5Types, rows, 0), nil
}

func q6Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	b, err := relq.Scan(t.L, t.Pool).
		Where(dGe("l_shipdate", lo)).
		Where(dLt("l_shipdate", hi)).
		Where(&ops.IntPredicateFilter{Col: "l_quantity", Pred: func(v int64) bool { return v < 24 }}).
		Where(&ops.FloatPredicateFilter{Col: "l_discount", Pred: func(v float64) bool {
			return v >= 0.05 && v <= 0.07
		}}).
		GroupByOver(
			[]string{"l_extendedprice", "l_discount"}, nil,
			[]relq.GAgg{{Name: "revenue", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(0) * r.Float(1)
			}}})
	if err != nil {
		return nil, err
	}
	var revenue float64
	if b.N > 0 {
		revenue = bFloats(b, "revenue")[0]
	}
	out := memtable.NewRowTable(q6Names, q6Types)
	out.Append(round2(revenue))
	return out, nil
}

func q7Engine(t *Tables) (*memtable.RowTable, error) {
	nKey, err := ops.ReadAllInts(t.N, "n_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	nName, err := ops.ReadAllStrings(t.N, "n_name", t.Pool)
	if err != nil {
		return nil, err
	}
	var france, germany int64 = -1, -1
	names := map[int64][]byte{}
	for i, k := range nKey {
		names[k] = nName[i]
		if string(nName[i]) == "FRANCE" {
			france = k
		}
		if string(nName[i]) == "GERMANY" {
			germany = k
		}
	}
	cNation, err := ops.ReadAllInts(t.C, "c_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oKey, err := ops.ReadAllInts(t.O, "o_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oCust, err := ops.ReadAllInts(t.O, "o_custkey", t.Pool)
	if err != nil {
		return nil, err
	}
	ocn := make([]int64, len(oKey))
	for i := range oKey {
		ocn[i] = cNation[oCust[i]-1]
	}
	sKey, sSide, err := suppNationSide(t)
	if err != nil {
		return nil, err
	}
	b, err := relq.Scan(t.L, t.Pool).
		Where(dGe("l_shipdate", Date(1995, 1, 1))).
		Where(dLe("l_shipdate", Date(1996, 12, 31))).
		Join("o", oKey, (&ops.Batch{}).AddInts("cn", ocn), "l_orderkey").
		Join("s", sKey, sSide, "l_suppkey").
		WhereRow("pair", []string{"s.sn", "o.cn"}, func(r relq.Row) bool {
			sn, cn := r.Int(0), r.Int(1)
			return (sn == france && cn == germany) || (sn == germany && cn == france)
		}).
		GroupByOver(
			[]string{"s.sn", "o.cn", "l_shipdate", "l_extendedprice", "l_discount"},
			[]relq.GKey{
				{Name: "sn", Ref: "s.sn", Lo: 0, Hi: 25},
				{Name: "cn", Ref: "o.cn", Lo: 0, Hi: 25},
				{Name: "year", Fn: func(r relq.Row) int64 { return yearOf(r.Int(2)) }, Lo: 1992, Hi: 1999},
			},
			[]relq.GAgg{{Name: "rev", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
				return r.Float(3) * (1 - r.Float(4))
			}}})
	if err != nil {
		return nil, err
	}
	sn, cn := bInts(b, "sn"), bInts(b, "cn")
	year, rev := bInts(b, "year"), bFloats(b, "rev")
	rows := make([][]any, 0, b.N)
	for i := 0; i < b.N; i++ {
		rows = append(rows, []any{bin(names[sn[i]]), bin(names[cn[i]]), year[i], round2(rev[i])})
	}
	sortRows(rows, 0, 1, 2)
	return emit(q7Names, q7Types, rows, 0), nil
}

func q8Engine(t *Tables) (*memtable.RowTable, error) {
	lo, hi := Date(1995, 1, 1), Date(1996, 12, 31)
	pb, err := relq.Scan(t.P, t.Pool).
		Where(dEqS("p_type", "ECONOMY ANODIZED STEEL")).
		Rows("p_partkey")
	if err != nil {
		return nil, err
	}
	america, _, err := nationsOfRegion(t, "AMERICA")
	if err != nil {
		return nil, err
	}
	nKey, err := ops.ReadAllInts(t.N, "n_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	nName, err := ops.ReadAllStrings(t.N, "n_name", t.Pool)
	if err != nil {
		return nil, err
	}
	var brazil int64 = -1
	for i := range nKey {
		if string(nName[i]) == "BRAZIL" {
			brazil = nKey[i]
		}
	}
	cNation, err := ops.ReadAllInts(t.C, "c_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oKey, err := ops.ReadAllInts(t.O, "o_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oCust, err := ops.ReadAllInts(t.O, "o_custkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oDate, err := ops.ReadAllInts(t.O, "o_orderdate", t.Pool)
	if err != nil {
		return nil, err
	}
	var oks, ods []int64
	for i := range oKey {
		if oDate[i] < lo || oDate[i] > hi {
			continue
		}
		if !america[cNation[oCust[i]-1]] {
			continue
		}
		oks = append(oks, oKey[i])
		ods = append(ods, oDate[i])
	}
	sKey, sSide, err := suppNationSide(t)
	if err != nil {
		return nil, err
	}
	b, err := relq.Scan(t.L, t.Pool).
		Semi("p", bInts(pb, "p_partkey"), "l_partkey").
		Join("o", oks, (&ops.Batch{}).AddInts("od", ods), "l_orderkey").
		Join("s", sKey, sSide, "l_suppkey").
		GroupByOver(
			[]string{"o.od", "s.sn", "l_extendedprice", "l_discount"},
			[]relq.GKey{{Name: "year", Fn: func(r relq.Row) int64 { return yearOf(r.Int(0)) }, Lo: 1992, Hi: 1999}},
			[]relq.GAgg{
				{Name: "total", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
					return r.Float(2) * (1 - r.Float(3))
				}},
				{Name: "brazil", Kind: ops.RelAggSumFloat, FnF: func(r relq.Row) float64 {
					if r.Int(1) != brazil {
						return 0
					}
					return r.Float(2) * (1 - r.Float(3))
				}},
			})
	if err != nil {
		return nil, err
	}
	year, total, brazilVol := bInts(b, "year"), bFloats(b, "total"), bFloats(b, "brazil")
	rows := make([][]any, 0, b.N)
	for i := 0; i < b.N; i++ {
		share := 0.0
		if total[i] > 0 {
			share = brazilVol[i] / total[i]
		}
		rows = append(rows, []any{year[i], round2(share * 100)})
	}
	sortRows(rows, 0)
	return emit(q8Names, q8Types, rows, 0), nil
}
