// Package tpch implements a from-scratch deterministic TPC-H data
// generator (the dbgen substitution documented in DESIGN.md) and the 22
// benchmark queries, each hand-coded twice: an encoding-aware CodecDB plan
// using the in-situ operators, and an encoding-oblivious baseline plan
// that decodes columns before processing — the paper's experimental
// contrast (Fig 6, Fig 7). The two plans of every query are checked equal
// in tests, which is the correctness argument for both.
//
// Schema, key distributions, date ranges, and the categorical vocabularies
// (ship modes, segments, brands, containers, priorities) follow the TPC-H
// specification closely enough that every query predicate has its intended
// selectivity; text comment fields are synthetic word salads.
package tpch

import (
	"fmt"
	"math/rand"
	"time"
)

// Scale multipliers from the TPC-H spec (rows at SF=1).
const (
	supplierPerSF = 10_000
	customerPerSF = 150_000
	partPerSF     = 200_000
	ordersPerSF   = 1_500_000
)

// Dates are stored as yyyymmdd integers; comparisons work directly and
// dictionary encoding keeps them order-preserving.
var (
	startDate = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	endDate   = time.Date(1998, 8, 2, 0, 0, 0, 0, time.UTC)
)

// totalDays is the orderdate range in days.
var totalDays = int(endDate.Sub(startDate).Hours() / 24)

// ymd converts a day offset from startDate to a yyyymmdd integer.
func ymd(dayOffset int) int64 {
	d := startDate.AddDate(0, 0, dayOffset)
	return int64(d.Year()*10000 + int(d.Month())*100 + d.Day())
}

// Date converts a calendar date to the yyyymmdd representation used in
// query predicates.
func Date(y, m, d int) int64 { return int64(y*10000 + m*100 + d) }

// Fixed TPC-H vocabularies.
var (
	RegionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	NationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	// nationRegion maps nation key to region key (spec Appendix).
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	Segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	ShipModes  = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	Instructs  = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}

	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

	colors = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
		"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki",
		"lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
		"magenta", "maroon", "medium", "metallic", "midnight", "mint",
		"misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
		"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
		"purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
		"spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
		"wheat", "white", "yellow",
	}

	commentWords = []string{
		"carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
		"requests", "accounts", "packages", "instructions", "theodolites",
		"pinto", "beans", "foxes", "ideas", "dependencies", "excuses",
		"platelets", "asymptotes", "courts", "dolphins", "multipliers",
		"sauternes", "warthogs", "frets", "dinos", "attainments", "are",
		"sleep", "nag", "wake", "cajole", "haggle", "hang", "bold", "final",
		"express", "special", "pending", "regular", "even", "silent",
	}
)

// Table column vectors; all tables are struct-of-arrays.
type Region struct {
	RegionKey []int64
	Name      [][]byte
	Comment   [][]byte
}

type Nation struct {
	NationKey []int64
	Name      [][]byte
	RegionKey []int64
	Comment   [][]byte
}

type Supplier struct {
	SuppKey   []int64
	Name      [][]byte
	Address   [][]byte
	NationKey []int64
	Phone     [][]byte
	AcctBal   []float64
	Comment   [][]byte
}

type Customer struct {
	CustKey    []int64
	Name       [][]byte
	Address    [][]byte
	NationKey  []int64
	Phone      [][]byte
	AcctBal    []float64
	MktSegment [][]byte
	Comment    [][]byte
}

type Part struct {
	PartKey     []int64
	Name        [][]byte
	Mfgr        [][]byte
	Brand       [][]byte
	Type        [][]byte
	Size        []int64
	Container   [][]byte
	RetailPrice []float64
	Comment     [][]byte
}

type PartSupp struct {
	PartKey    []int64
	SuppKey    []int64
	AvailQty   []int64
	SupplyCost []float64
	Comment    [][]byte
}

type Orders struct {
	OrderKey      []int64
	CustKey       []int64
	OrderStatus   [][]byte
	TotalPrice    []float64
	OrderDate     []int64
	OrderPriority [][]byte
	Clerk         [][]byte
	ShipPriority  []int64
	Comment       [][]byte
}

type Lineitem struct {
	OrderKey      []int64
	PartKey       []int64
	SuppKey       []int64
	LineNumber    []int64
	Quantity      []int64
	ExtendedPrice []float64
	Discount      []float64
	Tax           []float64
	ReturnFlag    [][]byte
	LineStatus    [][]byte
	ShipDate      []int64
	CommitDate    []int64
	ReceiptDate   []int64
	ShipInstruct  [][]byte
	ShipMode      [][]byte
	Comment       [][]byte
}

// Data is a fully generated TPC-H database.
type Data struct {
	SF       float64
	Region   Region
	Nation   Nation
	Supplier Supplier
	Customer Customer
	Part     Part
	PartSupp PartSupp
	Orders   Orders
	Lineitem Lineitem
}

// Generate produces a deterministic TPC-H dataset at the given scale
// factor.
func Generate(sf float64, seed int64) *Data {
	if sf <= 0 {
		sf = 0.01
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Data{SF: sf}
	d.genRegionNation(rng)
	d.genSupplier(rng, scaled(sf, supplierPerSF))
	d.genCustomer(rng, scaled(sf, customerPerSF))
	d.genPart(rng, scaled(sf, partPerSF))
	d.genPartSupp(rng)
	d.genOrdersLineitem(rng, scaled(sf, ordersPerSF))
	return d
}

func scaled(sf float64, base int) int {
	n := int(sf * float64(base))
	if n < 1 {
		n = 1
	}
	return n
}

func comment(rng *rand.Rand, words int) []byte {
	out := []byte{}
	for i := 0; i < words; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, commentWords[rng.Intn(len(commentWords))]...)
	}
	return out
}

func (d *Data) genRegionNation(rng *rand.Rand) {
	for i, name := range RegionNames {
		d.Region.RegionKey = append(d.Region.RegionKey, int64(i))
		d.Region.Name = append(d.Region.Name, []byte(name))
		d.Region.Comment = append(d.Region.Comment, comment(rng, 5))
	}
	for i, name := range NationNames {
		d.Nation.NationKey = append(d.Nation.NationKey, int64(i))
		d.Nation.Name = append(d.Nation.Name, []byte(name))
		d.Nation.RegionKey = append(d.Nation.RegionKey, nationRegion[i])
		d.Nation.Comment = append(d.Nation.Comment, comment(rng, 6))
	}
}

func phone(rng *rand.Rand, nation int64) []byte {
	return []byte(fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, rng.Intn(900)+100, rng.Intn(900)+100, rng.Intn(9000)+1000))
}

func (d *Data) genSupplier(rng *rand.Rand, n int) {
	s := &d.Supplier
	for i := 1; i <= n; i++ {
		nation := int64(rng.Intn(len(NationNames)))
		s.SuppKey = append(s.SuppKey, int64(i))
		s.Name = append(s.Name, []byte(fmt.Sprintf("Supplier#%09d", i)))
		s.Address = append(s.Address, comment(rng, 2))
		s.NationKey = append(s.NationKey, nation)
		s.Phone = append(s.Phone, phone(rng, nation))
		s.AcctBal = append(s.AcctBal, float64(rng.Intn(1100000)-100000)/100)
		// ~0.05% of suppliers carry the "Customer Complaints" marker (Q16).
		c := comment(rng, 6)
		if rng.Intn(2000) == 0 {
			c = append(c, []byte(" Customer Complaints")...)
		}
		s.Comment = append(s.Comment, c)
	}
}

func (d *Data) genCustomer(rng *rand.Rand, n int) {
	c := &d.Customer
	for i := 1; i <= n; i++ {
		nation := int64(rng.Intn(len(NationNames)))
		c.CustKey = append(c.CustKey, int64(i))
		c.Name = append(c.Name, []byte(fmt.Sprintf("Customer#%09d", i)))
		c.Address = append(c.Address, comment(rng, 2))
		c.NationKey = append(c.NationKey, nation)
		c.Phone = append(c.Phone, phone(rng, nation))
		c.AcctBal = append(c.AcctBal, float64(rng.Intn(1100000)-100000)/100)
		c.MktSegment = append(c.MktSegment, []byte(Segments[rng.Intn(len(Segments))]))
		c.Comment = append(c.Comment, comment(rng, 7))
	}
}

// PartTypeCount is the number of distinct p_type strings.
var PartTypeCount = len(typeSyl1) * len(typeSyl2) * len(typeSyl3)

func (d *Data) genPart(rng *rand.Rand, n int) {
	p := &d.Part
	for i := 1; i <= n; i++ {
		mfgr := rng.Intn(5) + 1
		brand := mfgr*10 + rng.Intn(5) + 1
		typ := fmt.Sprintf("%s %s %s",
			typeSyl1[rng.Intn(len(typeSyl1))],
			typeSyl2[rng.Intn(len(typeSyl2))],
			typeSyl3[rng.Intn(len(typeSyl3))])
		name := fmt.Sprintf("%s %s %s",
			colors[rng.Intn(len(colors))], colors[rng.Intn(len(colors))], colors[rng.Intn(len(colors))])
		p.PartKey = append(p.PartKey, int64(i))
		p.Name = append(p.Name, []byte(name))
		p.Mfgr = append(p.Mfgr, []byte(fmt.Sprintf("Manufacturer#%d", mfgr)))
		p.Brand = append(p.Brand, []byte(fmt.Sprintf("Brand#%d", brand)))
		p.Type = append(p.Type, []byte(typ))
		p.Size = append(p.Size, int64(rng.Intn(50)+1))
		p.Container = append(p.Container, []byte(containerSyl1[rng.Intn(len(containerSyl1))]+" "+containerSyl2[rng.Intn(len(containerSyl2))]))
		p.RetailPrice = append(p.RetailPrice, 900+float64(i%200000)/10)
		p.Comment = append(p.Comment, comment(rng, 3))
	}
}

func (d *Data) genPartSupp(rng *rand.Rand) {
	ps := &d.PartSupp
	nSupp := len(d.Supplier.SuppKey)
	for _, pk := range d.Part.PartKey {
		for j := 0; j < 4; j++ {
			sk := int64((int(pk)+j*(nSupp/4+1))%nSupp) + 1
			ps.PartKey = append(ps.PartKey, pk)
			ps.SuppKey = append(ps.SuppKey, sk)
			ps.AvailQty = append(ps.AvailQty, int64(rng.Intn(9999)+1))
			ps.SupplyCost = append(ps.SupplyCost, float64(rng.Intn(99900)+100)/100)
			ps.Comment = append(ps.Comment, comment(rng, 5))
		}
	}
}

func (d *Data) genOrdersLineitem(rng *rand.Rand, nOrders int) {
	o := &d.Orders
	l := &d.Lineitem
	nCust := len(d.Customer.CustKey)
	nPart := len(d.Part.PartKey)
	nSupp := len(d.Supplier.SuppKey)
	currentYMD := ymd(totalDays) // "today" used for status flags
	for i := 1; i <= nOrders; i++ {
		// Spec uses sparse order keys; dense keys keep joins identical.
		orderKey := int64(i)
		custKey := int64(rng.Intn(nCust) + 1)
		orderDay := rng.Intn(totalDays - 151)
		orderDate := ymd(orderDay)
		nLines := rng.Intn(7) + 1
		var totalPrice float64
		allF, allO := true, true
		for ln := 1; ln <= nLines; ln++ {
			partKey := int64(rng.Intn(nPart) + 1)
			suppKey := int64((int(partKey)+ln*(nSupp/4+1))%nSupp) + 1
			qty := int64(rng.Intn(50) + 1)
			price := float64(qty) * (900 + float64(int(partKey)%200000)/10) / 10
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			shipDay := orderDay + rng.Intn(121) + 1
			commitDay := orderDay + rng.Intn(61) + 30
			receiptDay := shipDay + rng.Intn(30) + 1
			shipDate := ymd(shipDay)
			receiptDate := ymd(receiptDay)
			var returnFlag, lineStatus []byte
			if receiptDate <= currentYMD-170 { // delivered long ago
				if rng.Intn(2) == 0 {
					returnFlag = []byte("R")
				} else {
					returnFlag = []byte("A")
				}
			} else {
				returnFlag = []byte("N")
			}
			if shipDate > Date(1995, 6, 17) {
				lineStatus = []byte("O")
				allF = false
			} else {
				lineStatus = []byte("F")
				allO = false
			}
			l.OrderKey = append(l.OrderKey, orderKey)
			l.PartKey = append(l.PartKey, partKey)
			l.SuppKey = append(l.SuppKey, suppKey)
			l.LineNumber = append(l.LineNumber, int64(ln))
			l.Quantity = append(l.Quantity, qty)
			l.ExtendedPrice = append(l.ExtendedPrice, price)
			l.Discount = append(l.Discount, disc)
			l.Tax = append(l.Tax, tax)
			l.ReturnFlag = append(l.ReturnFlag, returnFlag)
			l.LineStatus = append(l.LineStatus, lineStatus)
			l.ShipDate = append(l.ShipDate, shipDate)
			l.CommitDate = append(l.CommitDate, ymd(commitDay))
			l.ReceiptDate = append(l.ReceiptDate, receiptDate)
			l.ShipInstruct = append(l.ShipInstruct, []byte(Instructs[rng.Intn(len(Instructs))]))
			l.ShipMode = append(l.ShipMode, []byte(ShipModes[rng.Intn(len(ShipModes))]))
			l.Comment = append(l.Comment, comment(rng, 4))
			totalPrice += price * (1 + tax) * (1 - disc)
		}
		status := []byte("P")
		if allF {
			status = []byte("F")
		} else if allO {
			status = []byte("O")
		}
		o.OrderKey = append(o.OrderKey, orderKey)
		o.CustKey = append(o.CustKey, custKey)
		o.OrderStatus = append(o.OrderStatus, status)
		o.TotalPrice = append(o.TotalPrice, totalPrice)
		o.OrderDate = append(o.OrderDate, orderDate)
		o.OrderPriority = append(o.OrderPriority, []byte(Priorities[rng.Intn(len(Priorities))]))
		o.Clerk = append(o.Clerk, []byte(fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1)))
		o.ShipPriority = append(o.ShipPriority, 0)
		o.Comment = append(o.Comment, comment(rng, 5))
	}
}
