package tpch

import (
	"fmt"
	"testing"

	"codecdb/internal/exec"
)

// TestQ3PipelinedMatchesSequential validates the DAG-scheduled plan
// against both the sequential encoding-aware plan and the oblivious plan.
func TestQ3PipelinedMatchesSequential(t *testing.T) {
	opPool := exec.NewPool(4)
	piped, err := sharedTables.Q3Pipelined(opPool)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sharedTables.CodecDB(3)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, 3, piped, seq)
	obliv, err := sharedTables.Oblivious(3)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, 3, piped, obliv)
}

// TestConcurrentQueries runs many different queries at once against the
// shared tables: the reader, dictionary caches, and pools must be safe
// under real plan concurrency, and every result must match a serial run.
func TestConcurrentQueries(t *testing.T) {
	queries := []int{1, 3, 4, 6, 10, 12, 14, 15}
	serial := map[int]int{}
	for _, q := range queries {
		res, err := sharedTables.CodecDB(q)
		if err != nil {
			t.Fatal(err)
		}
		serial[q] = res.NumRows()
	}
	const workers = 4
	errs := make(chan error, workers*len(queries))
	for w := 0; w < workers; w++ {
		go func() {
			for _, q := range queries {
				res, err := sharedTables.CodecDB(q)
				if err != nil {
					errs <- err
					return
				}
				if res.NumRows() != serial[q] {
					errs <- fmt.Errorf("Q%d: %d rows, want %d", q, res.NumRows(), serial[q])
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestQ3PipelinedSerialPool proves the DAG degrades gracefully to a
// single-worker pool (stages serialise but dependencies still hold).
func TestQ3PipelinedSerialPool(t *testing.T) {
	piped, err := sharedTables.Q3Pipelined(exec.NewPool(1))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sharedTables.CodecDB(3)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, 3, piped, seq)
}
