package tpch

import (
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

// The engine plans compile every query through internal/relq into an
// ops.RelPlan — scan filters, late-materialized dict-key joins, residual
// row predicates, multi-column group-by — and execute it on the morsel
// pipeline. Small dimension prep (nation/region lookups, dense-key build
// sides) stays in plain Go; everything touching a fact table runs through
// the relational executor. The legacy hand-coded plans remain registered
// as the oracle (LegacyCodecDB) for the equivalence tests.

func init() {
	registerEngine(1, q1Engine)
	registerEngine(2, q2Engine)
	registerEngine(3, q3Engine)
	registerEngine(4, q4Engine)
	registerEngine(5, q5Engine)
	registerEngine(6, q6Engine)
	registerEngine(7, q7Engine)
	registerEngine(8, q8Engine)
	registerEngine(9, q9Engine)
	registerEngine(10, q10Engine)
	registerEngine(11, q11Engine)
	registerEngine(12, q12Engine)
	registerEngine(13, q13Engine)
	registerEngine(14, q14Engine)
	registerEngine(15, q15Engine)
	registerEngine(16, q16Engine)
	registerEngine(17, q17Engine)
	registerEngine(18, q18Engine)
	registerEngine(19, q19Engine)
	registerEngine(20, q20Engine)
	registerEngine(21, q21Engine)
	registerEngine(22, q22Engine)
}

// ---- engine plan helpers ----

func dGe(col string, v int64) ops.Filter {
	return &ops.DictFilter{Col: col, Op: sboost.OpGe, IntValue: v}
}

func dGt(col string, v int64) ops.Filter {
	return &ops.DictFilter{Col: col, Op: sboost.OpGt, IntValue: v}
}

func dLt(col string, v int64) ops.Filter {
	return &ops.DictFilter{Col: col, Op: sboost.OpLt, IntValue: v}
}

func dLe(col string, v int64) ops.Filter {
	return &ops.DictFilter{Col: col, Op: sboost.OpLe, IntValue: v}
}

func dEqS(col, v string) ops.Filter {
	return &ops.DictFilter{Col: col, Op: sboost.OpEq, StrValue: []byte(v)}
}

func bInts(b *ops.Batch, name string) []int64 { return b.Ints[b.Col(name)] }

func bFloats(b *ops.Batch, name string) []float64 { return b.Floats[b.Col(name)] }

func bStrs(b *ops.Batch, name string) [][]byte { return b.Strs[b.Col(name)] }

// suppNationSide loads the supplier join side: dense supplier keys with
// the nation key as payload column "sn".
func suppNationSide(t *Tables) ([]int64, *ops.Batch, error) {
	sKey, err := ops.ReadAllInts(t.S, "s_suppkey", t.Pool)
	if err != nil {
		return nil, nil, err
	}
	sNation, err := ops.ReadAllInts(t.S, "s_nationkey", t.Pool)
	if err != nil {
		return nil, nil, err
	}
	return sKey, (&ops.Batch{}).AddInts("sn", sNation), nil
}
