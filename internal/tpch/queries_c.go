package tpch

import (
	"bytes"

	"codecdb/internal/memtable"
	"codecdb/internal/ops"
	"codecdb/internal/sboost"
)

func init() {
	register(16, q16Codec, q16Obliv)
	register(17, q17Codec, q17Obliv)
	register(18, q18Codec, q18Obliv)
	register(19, q19Codec, q19Obliv)
	register(20, q20Codec, q20Obliv)
	register(21, q21Codec, q21Obliv)
	register(22, q22Codec, q22Obliv)
}

// ---- Q16: parts/supplier relationship ----

var q16Names = []string{"p_brand", "p_type", "p_size", "supplier_cnt"}
var q16Types = []memtable.ColType{memtable.ColBinary, memtable.ColBinary, memtable.ColInt64, memtable.ColInt64}

var q16Sizes = map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}

func q16Shared(t *Tables, partRows map[int64]int) (*memtable.RowTable, error) {
	// Suppliers with complaints are excluded.
	sComment, err := ops.ReadAllStrings(t.S, "s_comment", t.Pool)
	if err != nil {
		return nil, err
	}
	complained := map[int64]bool{}
	for i, c := range sComment {
		if bytes.Contains(c, []byte("Customer Complaints")) {
			complained[int64(i)+1] = true
		}
	}
	brand, err := ops.ReadAllStrings(t.P, "p_brand", t.Pool)
	if err != nil {
		return nil, err
	}
	ptype, err := ops.ReadAllStrings(t.P, "p_type", t.Pool)
	if err != nil {
		return nil, err
	}
	size, err := ops.ReadAllInts(t.P, "p_size", t.Pool)
	if err != nil {
		return nil, err
	}
	psPart, err := ops.ReadAllInts(t.PS, "ps_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	psSupp, err := ops.ReadAllInts(t.PS, "ps_suppkey", t.Pool)
	if err != nil {
		return nil, err
	}
	type group struct {
		brand, ptype string
		size         int64
	}
	distinct := map[group]map[int64]bool{}
	for i := range psPart {
		row, ok := partRows[psPart[i]]
		if !ok || complained[psSupp[i]] {
			continue
		}
		g := group{string(brand[row]), string(ptype[row]), size[row]}
		if distinct[g] == nil {
			distinct[g] = map[int64]bool{}
		}
		distinct[g][psSupp[i]] = true
	}
	var rows [][]any
	for g, supps := range distinct {
		rows = append(rows, []any{bin([]byte(g.brand)), bin([]byte(g.ptype)), g.size, int64(len(supps))})
	}
	sortRows(rows, -4, 0, 1, 2)
	return emit(q16Names, q16Types, rows, 0), nil
}

func q16PartPred(brand, ptype []byte, size int64) bool {
	return !bytes.Equal(brand, []byte("Brand#45")) &&
		!bytes.HasPrefix(ptype, []byte("MEDIUM POLISHED")) &&
		q16Sizes[size]
}

func q16Codec(t *Tables) (*memtable.RowTable, error) {
	bSel, err := (&ops.DictFilter{Col: "p_brand", Op: sboost.OpNe, StrValue: []byte("Brand#45")}).Apply(t.P, t.Pool)
	if err != nil {
		return nil, err
	}
	tSel, err := (&ops.DictLikeFilter{Col: "p_type", Match: func(e []byte) bool {
		return !bytes.HasPrefix(e, []byte("MEDIUM POLISHED"))
	}}).Apply(t.P, t.Pool)
	if err != nil {
		return nil, err
	}
	zSel, err := (&ops.IntPredicateFilter{Col: "p_size", Pred: func(v int64) bool { return q16Sizes[v] }}).Apply(t.P, t.Pool)
	if err != nil {
		return nil, err
	}
	bSel.And(tSel).And(zSel)
	pk, err := ops.GatherInts(t.P, "p_partkey", bSel, t.Pool)
	if err != nil {
		return nil, err
	}
	rows := ops.SelectedRows(bSel)
	partRows := make(map[int64]int, len(pk))
	for i, k := range pk {
		partRows[k] = int(rows[i])
	}
	return q16Shared(t, partRows)
}

func q16Obliv(t *Tables) (*memtable.RowTable, error) {
	brand, err := ops.ReadAllStrings(t.P, "p_brand", t.Pool)
	if err != nil {
		return nil, err
	}
	ptype, err := ops.ReadAllStrings(t.P, "p_type", t.Pool)
	if err != nil {
		return nil, err
	}
	size, err := ops.ReadAllInts(t.P, "p_size", t.Pool)
	if err != nil {
		return nil, err
	}
	pKey, err := ops.ReadAllInts(t.P, "p_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	partRows := map[int64]int{}
	for i := range pKey {
		if q16PartPred(brand[i], ptype[i], size[i]) {
			partRows[pKey[i]] = i
		}
	}
	return q16Shared(t, partRows)
}

// ---- Q17: small-quantity-order revenue ----

var q17Names = []string{"avg_yearly"}
var q17Types = []memtable.ColType{memtable.ColFloat64}

func q17Shared(t *Tables, partSet map[int64]bool) (*memtable.RowTable, error) {
	lPart, err := ops.ReadAllInts(t.L, "l_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	qty, err := ops.ReadAllInts(t.L, "l_quantity", t.Pool)
	if err != nil {
		return nil, err
	}
	price, err := ops.ReadAllFloats(t.L, "l_extendedprice", t.Pool)
	if err != nil {
		return nil, err
	}
	sum := map[int64]float64{}
	count := map[int64]int64{}
	for i := range lPart {
		if partSet[lPart[i]] {
			sum[lPart[i]] += float64(qty[i])
			count[lPart[i]]++
		}
	}
	var total float64
	for i := range lPart {
		if !partSet[lPart[i]] {
			continue
		}
		avg := sum[lPart[i]] / float64(count[lPart[i]])
		if float64(qty[i]) < 0.2*avg {
			total += price[i]
		}
	}
	out := memtable.NewRowTable(q17Names, q17Types)
	out.Append(round2(total / 7))
	return out, nil
}

func q17Codec(t *Tables) (*memtable.RowTable, error) {
	bSel, err := (&ops.DictFilter{Col: "p_brand", Op: sboost.OpEq, StrValue: []byte("Brand#23")}).Apply(t.P, t.Pool)
	if err != nil {
		return nil, err
	}
	cSel, err := (&ops.DictFilter{Col: "p_container", Op: sboost.OpEq, StrValue: []byte("MED BOX")}).Apply(t.P, t.Pool)
	if err != nil {
		return nil, err
	}
	bSel.And(cSel)
	pk, err := ops.GatherInts(t.P, "p_partkey", bSel, t.Pool)
	if err != nil {
		return nil, err
	}
	partSet := make(map[int64]bool, len(pk))
	for _, k := range pk {
		partSet[k] = true
	}
	return q17Shared(t, partSet)
}

func q17Obliv(t *Tables) (*memtable.RowTable, error) {
	brand, err := ops.ReadAllStrings(t.P, "p_brand", t.Pool)
	if err != nil {
		return nil, err
	}
	cont, err := ops.ReadAllStrings(t.P, "p_container", t.Pool)
	if err != nil {
		return nil, err
	}
	pKey, err := ops.ReadAllInts(t.P, "p_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	partSet := map[int64]bool{}
	for i := range pKey {
		if bytes.Equal(brand[i], []byte("Brand#23")) && bytes.Equal(cont[i], []byte("MED BOX")) {
			partSet[pKey[i]] = true
		}
	}
	return q17Shared(t, partSet)
}

// ---- Q18: large volume customer ----

var q18Names = []string{"c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty"}
var q18Types = []memtable.ColType{memtable.ColInt64, memtable.ColInt64, memtable.ColInt64, memtable.ColFloat64, memtable.ColFloat64}

const q18Threshold = 300

func q18Finish(t *Tables, orderQty map[int64]float64) (*memtable.RowTable, error) {
	oCust, err := ops.ReadAllInts(t.O, "o_custkey", t.Pool)
	if err != nil {
		return nil, err
	}
	oDate, err := ops.ReadAllInts(t.O, "o_orderdate", t.Pool)
	if err != nil {
		return nil, err
	}
	oPrice, err := ops.ReadAllFloats(t.O, "o_totalprice", t.Pool)
	if err != nil {
		return nil, err
	}
	var rows [][]any
	for ok, q := range orderQty {
		if q > q18Threshold {
			row := int(ok) - 1
			rows = append(rows, []any{oCust[row], ok, oDate[row], round2(oPrice[row]), q})
		}
	}
	sortRows(rows, -4, 2, 1)
	return emit(q18Names, q18Types, rows, 100), nil
}

func q18Codec(t *Tables) (*memtable.RowTable, error) {
	// Dense order keys let CodecDB use array aggregation over the whole
	// lineitem with keySpace = |orders|+1 (§5.4).
	lOrder, err := ops.ReadAllInts(t.L, "l_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	qty, err := ops.ReadAllInts(t.L, "l_quantity", t.Pool)
	if err != nil {
		return nil, err
	}
	res, err := ops.ArrayAggregate(t.Pool, lOrder, int(t.O.NumRows())+1, []ops.VecAgg{{Kind: ops.AggSumInt, Ints: qty}})
	if err != nil {
		return nil, err
	}
	orderQty := make(map[int64]float64, res.NumGroups())
	for g, k := range res.Keys {
		if res.Out[0][g] > q18Threshold {
			orderQty[k] = res.Out[0][g]
		}
	}
	return q18Finish(t, orderQty)
}

func q18Obliv(t *Tables) (*memtable.RowTable, error) {
	lOrder, err := ops.ReadAllInts(t.L, "l_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	qty, err := ops.ReadAllInts(t.L, "l_quantity", t.Pool)
	if err != nil {
		return nil, err
	}
	sum := map[int64]float64{}
	for i := range lOrder {
		sum[lOrder[i]] += float64(qty[i])
	}
	orderQty := map[int64]float64{}
	for k, q := range sum {
		if q > q18Threshold {
			orderQty[k] = q
		}
	}
	return q18Finish(t, orderQty)
}

// ---- Q19: discounted revenue ----

var q19Names = []string{"revenue"}
var q19Types = []memtable.ColType{memtable.ColFloat64}

type q19Branch struct {
	brand      string
	containers map[string]bool
	qtyLo      int64
	qtyHi      int64
	sizeHi     int64
}

var q19Branches = []q19Branch{
	{"Brand#12", set("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1, 11, 5},
	{"Brand#23", set("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10, 20, 10},
	{"Brand#34", set("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20, 30, 15},
}

func set(items ...string) map[string]bool {
	m := map[string]bool{}
	for _, s := range items {
		m[s] = true
	}
	return m
}

// q19PartBranch returns which branch (0-2) the part can satisfy, or -1.
func q19PartBranch(brand, container []byte, size int64) int {
	for bi, b := range q19Branches {
		if string(brand) == b.brand && b.containers[string(container)] && size >= 1 && size <= b.sizeHi {
			return bi
		}
	}
	return -1
}

func q19Shared(t *Tables, partBranch map[int64]int) (*memtable.RowTable, error) {
	lPart, err := ops.ReadAllInts(t.L, "l_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	qty, err := ops.ReadAllInts(t.L, "l_quantity", t.Pool)
	if err != nil {
		return nil, err
	}
	mode, err := ops.ReadAllStrings(t.L, "l_shipmode", t.Pool)
	if err != nil {
		return nil, err
	}
	instruct, err := ops.ReadAllStrings(t.L, "l_shipinstruct", t.Pool)
	if err != nil {
		return nil, err
	}
	price, err := ops.ReadAllFloats(t.L, "l_extendedprice", t.Pool)
	if err != nil {
		return nil, err
	}
	disc, err := ops.ReadAllFloats(t.L, "l_discount", t.Pool)
	if err != nil {
		return nil, err
	}
	var revenue float64
	for i := range lPart {
		bi, ok := partBranch[lPart[i]]
		if !ok {
			continue
		}
		m := string(mode[i])
		if m != "AIR" && m != "REG AIR" {
			continue
		}
		if !bytes.Equal(instruct[i], []byte("DELIVER IN PERSON")) {
			continue
		}
		b := q19Branches[bi]
		if qty[i] >= b.qtyLo && qty[i] <= b.qtyHi {
			revenue += price[i] * (1 - disc[i])
		}
	}
	out := memtable.NewRowTable(q19Names, q19Types)
	out.Append(round2(revenue))
	return out, nil
}

func q19Codec(t *Tables) (*memtable.RowTable, error) {
	partBranch := map[int64]int{}
	for bi, b := range q19Branches {
		bSel, err := (&ops.DictFilter{Col: "p_brand", Op: sboost.OpEq, StrValue: []byte(b.brand)}).Apply(t.P, t.Pool)
		if err != nil {
			return nil, err
		}
		var conts [][]byte
		for c := range b.containers {
			conts = append(conts, []byte(c))
		}
		cSel, err := (&ops.DictInFilter{Col: "p_container", StrValues: conts}).Apply(t.P, t.Pool)
		if err != nil {
			return nil, err
		}
		zSel, err := (&ops.IntPredicateFilter{Col: "p_size", Pred: func(v int64) bool {
			return v >= 1 && v <= b.sizeHi
		}}).Apply(t.P, t.Pool)
		if err != nil {
			return nil, err
		}
		bSel.And(cSel).And(zSel)
		pk, err := ops.GatherInts(t.P, "p_partkey", bSel, t.Pool)
		if err != nil {
			return nil, err
		}
		for _, k := range pk {
			partBranch[k] = bi
		}
	}
	return q19Shared(t, partBranch)
}

func q19Obliv(t *Tables) (*memtable.RowTable, error) {
	brand, err := ops.ReadAllStrings(t.P, "p_brand", t.Pool)
	if err != nil {
		return nil, err
	}
	cont, err := ops.ReadAllStrings(t.P, "p_container", t.Pool)
	if err != nil {
		return nil, err
	}
	size, err := ops.ReadAllInts(t.P, "p_size", t.Pool)
	if err != nil {
		return nil, err
	}
	pKey, err := ops.ReadAllInts(t.P, "p_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	partBranch := map[int64]int{}
	for i := range pKey {
		if bi := q19PartBranch(brand[i], cont[i], size[i]); bi >= 0 {
			partBranch[pKey[i]] = bi
		}
	}
	return q19Shared(t, partBranch)
}

// ---- Q20: potential part promotion ----

var q20Names = []string{"s_name", "s_address"}
var q20Types = []memtable.ColType{memtable.ColBinary, memtable.ColBinary}

func q20Shared(t *Tables, forestParts map[int64]bool, shipped map[[2]int64]float64) (*memtable.RowTable, error) {
	nKey, err := ops.ReadAllInts(t.N, "n_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	nName, err := ops.ReadAllStrings(t.N, "n_name", t.Pool)
	if err != nil {
		return nil, err
	}
	var canada int64 = -1
	for i := range nKey {
		if string(nName[i]) == "CANADA" {
			canada = nKey[i]
		}
	}
	sNation, err := ops.ReadAllInts(t.S, "s_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	sName, err := ops.ReadAllStrings(t.S, "s_name", t.Pool)
	if err != nil {
		return nil, err
	}
	sAddr, err := ops.ReadAllStrings(t.S, "s_address", t.Pool)
	if err != nil {
		return nil, err
	}
	psPart, err := ops.ReadAllInts(t.PS, "ps_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	psSupp, err := ops.ReadAllInts(t.PS, "ps_suppkey", t.Pool)
	if err != nil {
		return nil, err
	}
	psQty, err := ops.ReadAllInts(t.PS, "ps_availqty", t.Pool)
	if err != nil {
		return nil, err
	}
	eligible := map[int64]bool{}
	for i := range psPart {
		if !forestParts[psPart[i]] {
			continue
		}
		half := 0.5 * shipped[[2]int64{psPart[i], psSupp[i]}]
		if float64(psQty[i]) > half && half > 0 {
			eligible[psSupp[i]] = true
		}
	}
	var rows [][]any
	for sk := range eligible {
		if sNation[sk-1] == canada {
			rows = append(rows, []any{bin(sName[sk-1]), bin(sAddr[sk-1])})
		}
	}
	sortRows(rows, 0)
	return emit(q20Names, q20Types, rows, 0), nil
}

func q20ForestParts(t *Tables) (map[int64]bool, error) {
	pName, err := ops.ReadAllStrings(t.P, "p_name", t.Pool)
	if err != nil {
		return nil, err
	}
	pKey, err := ops.ReadAllInts(t.P, "p_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	out := map[int64]bool{}
	for i := range pKey {
		if bytes.HasPrefix(pName[i], []byte("forest")) {
			out[pKey[i]] = true
		}
	}
	return out, nil
}

func q20Codec(t *Tables) (*memtable.RowTable, error) {
	forest, err := q20ForestParts(t)
	if err != nil {
		return nil, err
	}
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	ge, err := (&ops.DictFilter{Col: "l_shipdate", Op: sboost.OpGe, IntValue: lo}).Apply(t.L, t.Pool)
	if err != nil {
		return nil, err
	}
	lt, err := (&ops.DictFilter{Col: "l_shipdate", Op: sboost.OpLt, IntValue: hi}).Apply(t.L, t.Pool)
	if err != nil {
		return nil, err
	}
	ge.And(lt)
	lPart, err := ops.GatherInts(t.L, "l_partkey", ge, t.Pool)
	if err != nil {
		return nil, err
	}
	lSupp, err := ops.GatherInts(t.L, "l_suppkey", ge, t.Pool)
	if err != nil {
		return nil, err
	}
	qty, err := ops.GatherInts(t.L, "l_quantity", ge, t.Pool)
	if err != nil {
		return nil, err
	}
	shipped := map[[2]int64]float64{}
	for i := range lPart {
		if forest[lPart[i]] {
			shipped[[2]int64{lPart[i], lSupp[i]}] += float64(qty[i])
		}
	}
	return q20Shared(t, forest, shipped)
}

func q20Obliv(t *Tables) (*memtable.RowTable, error) {
	forest, err := q20ForestParts(t)
	if err != nil {
		return nil, err
	}
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	ship, err := ops.ReadAllInts(t.L, "l_shipdate", t.Pool)
	if err != nil {
		return nil, err
	}
	lPart, err := ops.ReadAllInts(t.L, "l_partkey", t.Pool)
	if err != nil {
		return nil, err
	}
	lSupp, err := ops.ReadAllInts(t.L, "l_suppkey", t.Pool)
	if err != nil {
		return nil, err
	}
	qty, err := ops.ReadAllInts(t.L, "l_quantity", t.Pool)
	if err != nil {
		return nil, err
	}
	shipped := map[[2]int64]float64{}
	for i := range ship {
		if ship[i] >= lo && ship[i] < hi && forest[lPart[i]] {
			shipped[[2]int64{lPart[i], lSupp[i]}] += float64(qty[i])
		}
	}
	return q20Shared(t, forest, shipped)
}

// ---- Q21: suppliers who kept orders waiting ----

var q21Names = []string{"s_name", "numwait"}
var q21Types = []memtable.ColType{memtable.ColBinary, memtable.ColInt64}

// q21Shared counts, per Saudi supplier, lineitems that were the only late
// supplier on a multi-supplier order.
func q21Shared(t *Tables, lOrder, lSupp []int64, late func(i int) bool) (*memtable.RowTable, error) {
	nKey, err := ops.ReadAllInts(t.N, "n_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	nName, err := ops.ReadAllStrings(t.N, "n_name", t.Pool)
	if err != nil {
		return nil, err
	}
	var saudi int64 = -1
	for i := range nKey {
		if string(nName[i]) == "SAUDI ARABIA" {
			saudi = nKey[i]
		}
	}
	sNation, err := ops.ReadAllInts(t.S, "s_nationkey", t.Pool)
	if err != nil {
		return nil, err
	}
	sName, err := ops.ReadAllStrings(t.S, "s_name", t.Pool)
	if err != nil {
		return nil, err
	}
	// Per order: distinct suppliers and distinct late suppliers.
	type orderInfo struct {
		supps     map[int64]bool
		lateSupps map[int64]bool
	}
	orders := map[int64]*orderInfo{}
	for i := range lOrder {
		oi := orders[lOrder[i]]
		if oi == nil {
			oi = &orderInfo{supps: map[int64]bool{}, lateSupps: map[int64]bool{}}
			orders[lOrder[i]] = oi
		}
		oi.supps[lSupp[i]] = true
		if late(i) {
			oi.lateSupps[lSupp[i]] = true
		}
	}
	counted := map[[2]int64]bool{} // (order, supp) counted once
	numWait := map[int64]int64{}
	for i := range lOrder {
		sk := lSupp[i]
		if !late(i) || sNation[sk-1] != saudi {
			continue
		}
		oi := orders[lOrder[i]]
		if len(oi.supps) < 2 {
			continue // exists l2 with different supplier fails
		}
		if len(oi.lateSupps) != 1 {
			continue // not exists l3: another supplier was also late
		}
		key := [2]int64{lOrder[i], sk}
		if counted[key] {
			continue
		}
		counted[key] = true
		numWait[sk]++
	}
	var rows [][]any
	for sk, c := range numWait {
		rows = append(rows, []any{bin(sName[sk-1]), c})
	}
	sortRows(rows, -2, 0)
	return emit(q21Names, q21Types, rows, 100), nil
}

func q21Codec(t *Tables) (*memtable.RowTable, error) {
	lateSel, err := (&ops.TwoColumnFilter{ColA: "l_commitdate", ColB: "l_receiptdate", Op: sboost.OpLt}).Apply(t.L, t.Pool)
	if err != nil {
		return nil, err
	}
	lOrder, err := ops.ReadAllInts(t.L, "l_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	lSupp, err := ops.ReadAllInts(t.L, "l_suppkey", t.Pool)
	if err != nil {
		return nil, err
	}
	flat := lateSel.Flatten()
	return q21Shared(t, lOrder, lSupp, func(i int) bool { return flat.Get(i) })
}

func q21Obliv(t *Tables) (*memtable.RowTable, error) {
	commit, err := ops.ReadAllInts(t.L, "l_commitdate", t.Pool)
	if err != nil {
		return nil, err
	}
	receipt, err := ops.ReadAllInts(t.L, "l_receiptdate", t.Pool)
	if err != nil {
		return nil, err
	}
	lOrder, err := ops.ReadAllInts(t.L, "l_orderkey", t.Pool)
	if err != nil {
		return nil, err
	}
	lSupp, err := ops.ReadAllInts(t.L, "l_suppkey", t.Pool)
	if err != nil {
		return nil, err
	}
	return q21Shared(t, lOrder, lSupp, func(i int) bool { return commit[i] < receipt[i] })
}

// ---- Q22: global sales opportunity ----

var q22Names = []string{"cntrycode", "numcust", "totacctbal"}
var q22Types = []memtable.ColType{memtable.ColBinary, memtable.ColInt64, memtable.ColFloat64}

var q22Codes = map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}

func q22Shared(t *Tables, hasOrders func(custkey int64) bool) (*memtable.RowTable, error) {
	phone, err := ops.ReadAllStrings(t.C, "c_phone", t.Pool)
	if err != nil {
		return nil, err
	}
	bal, err := ops.ReadAllFloats(t.C, "c_acctbal", t.Pool)
	if err != nil {
		return nil, err
	}
	cKey, err := ops.ReadAllInts(t.C, "c_custkey", t.Pool)
	if err != nil {
		return nil, err
	}
	var sum float64
	var n int64
	for i := range phone {
		code := string(phone[i][:2])
		if q22Codes[code] && bal[i] > 0 {
			sum += bal[i]
			n++
		}
	}
	if n == 0 {
		return emit(q22Names, q22Types, nil, 0), nil
	}
	avg := sum / float64(n)
	type acc struct {
		count int64
		total float64
	}
	groups := map[string]*acc{}
	for i := range phone {
		code := string(phone[i][:2])
		if !q22Codes[code] || bal[i] <= avg || hasOrders(cKey[i]) {
			continue
		}
		a := groups[code]
		if a == nil {
			a = &acc{}
			groups[code] = a
		}
		a.count++
		a.total += bal[i]
	}
	var rows [][]any
	for code, a := range groups {
		rows = append(rows, []any{bin([]byte(code)), a.count, round2(a.total)})
	}
	sortRows(rows, 0)
	return emit(q22Names, q22Types, rows, 0), nil
}

func q22Codec(t *Tables) (*memtable.RowTable, error) {
	oCust, err := ops.ReadAllInts(t.O, "o_custkey", t.Pool)
	if err != nil {
		return nil, err
	}
	m := ops.HashJoinBuild(t.Pool, oCust, nil)
	return q22Shared(t, func(ck int64) bool { return m.Contains(ck) })
}

func q22Obliv(t *Tables) (*memtable.RowTable, error) {
	oCust, err := ops.ReadAllInts(t.O, "o_custkey", t.Pool)
	if err != nil {
		return nil, err
	}
	set := map[int64]bool{}
	for _, c := range oCust {
		set[c] = true
	}
	return q22Shared(t, func(ck int64) bool { return set[ck] })
}
