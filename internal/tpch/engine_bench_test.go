package tpch

import (
	"fmt"
	"testing"
)

// benchPlan runs one plan b.N times, reporting pages read per op summed
// across all eight table readers alongside the usual time/alloc metrics.
func benchPlan(b *testing.B, run func() error) {
	b.Helper()
	var before int64
	for _, r := range sharedTables.Readers() {
		before += r.Stats().PagesRead
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var after int64
	for _, r := range sharedTables.Readers() {
		after += r.Stats().PagesRead
	}
	b.ReportMetric(float64(after-before)/float64(b.N), "pagesRead/op")
}

// BenchmarkTPCHEngineVsLegacy runs every TPC-H query through the
// engine-compiled relational plan (relq + morsel pipeline) and the
// legacy hand-coded operator-at-a-time plan, side by side. The paired
// sub-benchmarks feed BENCH_PR10.json, where engine plans must match or
// beat legacy on pages read for the filter-heavy queries.
func BenchmarkTPCHEngineVsLegacy(b *testing.B) {
	for q := 1; q <= QueryCount; q++ {
		b.Run(fmt.Sprintf("Q%02d/engine", q), func(b *testing.B) {
			benchPlan(b, func() error { _, err := sharedTables.CodecDB(q); return err })
		})
		b.Run(fmt.Sprintf("Q%02d/legacy", q), func(b *testing.B) {
			benchPlan(b, func() error { _, err := sharedTables.LegacyCodecDB(q); return err })
		})
	}
}
